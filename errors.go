package flowdiff

import "errors"

// Sentinel errors returned (wrapped) by the public API. Match them with
// errors.Is; the wrapping text carries the operation that failed.
var (
	// ErrEmptyLog reports a nil log, or one with no events: there is
	// nothing to model. BuildSignaturesContext and CompareContext (for
	// the current log) return it.
	ErrEmptyLog = errors.New("empty log")
	// ErrNoBaseline reports a missing baseline: NewMonitor and
	// CompareContext need a known-good log to diff against.
	ErrNoBaseline = errors.New("no baseline")
	// ErrCanceled reports that the context was canceled mid-build and
	// the partial products were discarded. It always wraps the
	// underlying ctx.Err(), so errors.Is(err, context.Canceled) (or
	// DeadlineExceeded) also matches.
	ErrCanceled = errors.New("canceled")
)
