package flowdiff

import "errors"

// Sentinel errors returned (wrapped) by the public API. Match them with
// errors.Is; the wrapping text carries the operation that failed.
var (
	// ErrEmptyLog reports a nil log, or one with no events: there is
	// nothing to model. BuildSignaturesContext and CompareContext (for
	// the current log) return it.
	ErrEmptyLog = errors.New("empty log")
	// ErrNoBaseline reports a missing baseline: NewMonitor and
	// CompareContext need a known-good log to diff against.
	ErrNoBaseline = errors.New("no baseline")
	// ErrCanceled reports that the context was canceled mid-build and
	// the partial products were discarded. It always wraps the
	// underlying ctx.Err(), so errors.Is(err, context.Canceled) (or
	// DeadlineExceeded) also matches.
	ErrCanceled = errors.New("canceled")
	// ErrOutOfOrder reports a control event older than the monitor's
	// current window: ObserveContext requires time-ordered input and
	// refuses to rewrite history.
	ErrOutOfOrder = errors.New("event out of order")
	// ErrBadLog reports a malformed or unreadable flow-log stream:
	// NewColumnarSourceContext returns it (wrapping the decoder's
	// detail) when the columnar header or segment layout fails to
	// validate.
	ErrBadLog = errors.New("bad log")
	// ErrScenario reports that constructing or executing a simulated
	// scenario failed — lab topology, workload attachment, fault
	// injection, or task execution. It wraps the underlying cause.
	ErrScenario = errors.New("scenario failed")
)
