module flowdiff

go 1.22
