package flowdiff

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"flowdiff/internal/flowlog"
)

// The public API's error contract (machine-checked by the sentinelerr
// analyzer): every failure crossing an exported function carries a
// sentinel identity from errors.go. These pin the three boundaries that
// used to export identity-less errors.

// An event older than the monitor's window must surface as
// ErrOutOfOrder, not an anonymous fmt.Errorf.
func TestObserveOutOfOrderSentinel(t *testing.T) {
	baseline := flowlog.New(0, 2*time.Minute)
	baseline.Events = monitorChainEvents(0, 2*time.Minute, 200*time.Millisecond)
	m, err := NewMonitor(context.Background(), baseline, time.Minute, nil, Thresholds{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stale := monitorChainEvents(time.Minute, time.Minute+time.Second, 500*time.Millisecond)[0]
	_, err = m.Observe(context.Background(), stale)
	if err == nil {
		t.Fatal("observing a pre-window event succeeded")
	}
	if !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("error %v does not match ErrOutOfOrder", err)
	}
}

// A stream that is not a columnar log must surface as ErrBadLog.
func TestColumnarSourceBadLogSentinel(t *testing.T) {
	_, err := NewColumnarSource(context.Background(), strings.NewReader("definitely not an FDC1 stream"))
	if err == nil {
		t.Fatal("opening garbage as a columnar source succeeded")
	}
	if !errors.Is(err, ErrBadLog) {
		t.Errorf("error %v does not match ErrBadLog", err)
	}
}

// A scenario that cannot be constructed must surface as ErrScenario.
func TestRunScenarioSentinel(t *testing.T) {
	_, err := RunScenario(Scenario{Case: 99})
	if err == nil {
		t.Fatal("running an unknown case succeeded")
	}
	if !errors.Is(err, ErrScenario) {
		t.Errorf("error %v does not match ErrScenario", err)
	}
}
