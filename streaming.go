package flowdiff

import (
	"context"
	"fmt"
	"io"

	"flowdiff/internal/core/signature"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/flowlog/colseg"
	"flowdiff/internal/obs"
)

// Event is one control message observed at the controller.
type Event = flowlog.Event

// EventSource is a pull-based stream of decoded event batches — the
// streaming counterpart of a materialized Log. colseg.Reader implements
// it over the on-disk columnar format, so signatures can be built from
// a 100M-event capture without ever holding its event slice in memory.
type EventSource = signature.EventSource

// ReadFilter restricts a columnar read to a query's events: a time
// window ([From, To), active when To > From), a host set (flow source
// or destination), and/or a switch set, composed with logical AND.
// Whole segments the on-disk index proves irrelevant are pruned before
// any payload byte is read; within overlapping segments, non-matching
// events are dropped at decode time, never materialized.
type ReadFilter = colseg.Filter

// ColumnSet selects event fields for a projected columnar read; zero
// selects every column. See the Col* constants.
type ColumnSet = colseg.ColumnSet

// Projectable columns for ColumnarOptions.Columns. Combine with |:
// ColTime | ColSrc | ColDst is the flow-endpoint projection window
// counting and suspect-flow resolution need. Unprojected columns leave
// their event fields at the zero value and their payload blocks are
// never decoded.
const (
	ColTime         = colseg.ColTime
	ColType         = colseg.ColType
	ColReason       = colseg.ColReason
	ColProto        = colseg.ColProto
	ColSrc          = colseg.ColSrc
	ColDst          = colseg.ColDst
	ColSrcPort      = colseg.ColSrcPort
	ColDstPort      = colseg.ColDstPort
	ColInPort       = colseg.ColInPort
	ColOutPort      = colseg.ColOutPort
	ColDPID         = colseg.ColDPID
	ColBytes        = colseg.ColBytes
	ColPackets      = colseg.ColPackets
	ColFlowDuration = colseg.ColFlowDuration
	ColSwitch       = colseg.ColSwitch
	AllColumns      = colseg.AllColumns
	FlowColumns     = colseg.FlowColumns
)

// ColumnarOptions tunes a query-aware columnar read: what to keep
// (Filter), what to decode (Columns), and how wide to decode it
// (Parallelism). The zero options read everything serially.
type ColumnarOptions struct {
	Filter  ReadFilter
	Columns ColumnSet
	// Parallelism > 1 decodes segments concurrently behind a bounded
	// readahead that delivers batches strictly in file order — output is
	// identical to a serial read at every worker count.
	Parallelism int
}

// NewColumnarSource opens an FDC1 (segmented columnar) stream —
// as written by `flowdiff convert -to columnar` — as an EventSource for
// BuildSignaturesReader. The header is validated immediately;
// events decode lazily, one bounded batch at a time, with decode
// metrics going to the context's obs registry.
func NewColumnarSource(ctx context.Context, r io.Reader) (EventSource, error) {
	return NewColumnarSourceOptions(ctx, r, ColumnarOptions{})
}

// NewColumnarSourceContext is a deprecated spelling of NewColumnarSource.
//
// Deprecated: the public API is context-first — call NewColumnarSource
// directly.
func NewColumnarSourceContext(ctx context.Context, r io.Reader) (EventSource, error) {
	return NewColumnarSource(ctx, r)
}

// NewColumnarSourceOptionsContext is a deprecated spelling of
// NewColumnarSourceOptions.
//
// Deprecated: the public API is context-first — call
// NewColumnarSourceOptions directly.
func NewColumnarSourceOptionsContext(ctx context.Context, r io.Reader, o ColumnarOptions) (EventSource, error) {
	return NewColumnarSourceOptions(ctx, r, o)
}

// NewColumnarSourceOptions opens an FDC1 stream as an
// EventSource with a query attached: the filter prunes segments from
// the on-disk index and drops non-matching events at decode time, the
// projection decodes only the selected columns, and Parallelism > 1
// decodes segments concurrently with deterministic, file-ordered
// delivery. Counters in the context's obs registry
// (colseg.segments.pruned_by_index, colseg.columns.skipped,
// colseg.events.filtered, colseg.bytes.decoded / .skipped) record the
// work avoided. A time-filtered source reports the filter window from
// Bounds, so signatures built from it cover exactly the queried
// interval.
func NewColumnarSourceOptions(ctx context.Context, r io.Reader, o ColumnarOptions) (EventSource, error) {
	cr, err := colseg.NewReaderContext(ctx, r, colseg.ReaderOptions{
		Filter:      o.Filter,
		Columns:     o.Columns,
		Parallelism: o.Parallelism,
	})
	if err != nil {
		return nil, fmt.Errorf("flowdiff: opening columnar log: %w: %w", ErrBadLog, err)
	}
	return cr, nil
}

// BuildSignaturesReaderContext is a deprecated spelling of
// BuildSignaturesReader.
//
// Deprecated: the public API is context-first — call
// BuildSignaturesReader directly.
func BuildSignaturesReaderContext(ctx context.Context, src EventSource, opts Options) (*Signatures, error) {
	return BuildSignaturesReader(ctx, src, opts)
}

// BuildSignaturesReader runs FlowDiff's modeling phase over a
// streamed event source. The source is drained exactly once: flow
// occurrences are extracted incrementally (sharded by flow-key hash
// across the worker pool), and every other per-log aggregate the
// builds need — including the per-interval slices for the stability
// analysis, sized by Options.Stability — is folded in during the same
// pass. Peak memory is one decoded batch plus the aggregates and
// occurrences; the full event slice is never materialized.
//
// The result is byte-identical to BuildSignatures over the same
// events in memory (an unsorted log serializes to colseg in sorted
// order; the equivalence is against that time-sorted sequence, which is
// the canonical capture order). The returned Signatures carry an
// event-free Log stub recording only the source's bounds.
//
// A nil or event-free source returns ErrEmptyLog; cancellation returns
// ErrCanceled wrapping ctx.Err(); a source read error is returned
// wrapped.
func BuildSignaturesReader(ctx context.Context, src EventSource, opts Options) (*Signatures, error) {
	if src == nil {
		return nil, fmt.Errorf("flowdiff: building signatures: %w", ErrEmptyLog)
	}
	//lint:ignore obsspan same top-level build stage as BuildSignatures on the streaming path; a run enters exactly one of the two, so the timeline never sees both
	defer obs.Span(ctx, "flowdiff.build").End()
	p, err := signature.NewPipelineFromSourceContext(ctx, src, opts.resolver(), opts.sigConfig(), opts.Stability)
	if err != nil {
		if cerr := canceled(ctx); cerr != nil {
			return nil, fmt.Errorf("flowdiff: building signatures: %w", cerr)
		}
		return nil, fmt.Errorf("flowdiff: building signatures: %w", err)
	}
	if p.EventCount() == 0 {
		return nil, fmt.Errorf("flowdiff: building signatures: %w", ErrEmptyLog)
	}
	start, end := src.Bounds()
	return signaturesFromPipeline(ctx, &Log{Start: start, End: end}, p, opts)
}
