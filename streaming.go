package flowdiff

import (
	"context"
	"fmt"
	"io"

	"flowdiff/internal/core/signature"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/flowlog/colseg"
	"flowdiff/internal/obs"
)

// Event is one control message observed at the controller.
type Event = flowlog.Event

// EventSource is a pull-based stream of decoded event batches — the
// streaming counterpart of a materialized Log. colseg.Reader implements
// it over the on-disk columnar format, so signatures can be built from
// a 100M-event capture without ever holding its event slice in memory.
type EventSource = signature.EventSource

// NewColumnarSource is NewColumnarSourceContext with a background
// context.
func NewColumnarSource(r io.Reader) (EventSource, error) {
	return NewColumnarSourceContext(context.Background(), r)
}

// NewColumnarSourceContext opens an FDC1 (segmented columnar) stream —
// as written by `flowdiff convert -to columnar` — as an EventSource for
// BuildSignaturesReaderContext. The header is validated immediately;
// events decode lazily, one bounded batch at a time, with decode
// metrics going to the context's obs registry.
func NewColumnarSourceContext(ctx context.Context, r io.Reader) (EventSource, error) {
	cr, err := colseg.NewReaderContext(ctx, r, colseg.ReaderOptions{})
	if err != nil {
		return nil, fmt.Errorf("flowdiff: opening columnar log: %w: %w", ErrBadLog, err)
	}
	return cr, nil
}

// BuildSignaturesReader is BuildSignaturesReaderContext with a
// background context.
func BuildSignaturesReader(src EventSource, opts Options) (*Signatures, error) {
	return BuildSignaturesReaderContext(context.Background(), src, opts)
}

// BuildSignaturesReaderContext runs FlowDiff's modeling phase over a
// streamed event source. The source is drained exactly once: flow
// occurrences are extracted incrementally (sharded by flow-key hash
// across the worker pool), and every other per-log aggregate the
// builds need — including the per-interval slices for the stability
// analysis, sized by Options.Stability — is folded in during the same
// pass. Peak memory is one decoded batch plus the aggregates and
// occurrences; the full event slice is never materialized.
//
// The result is byte-identical to BuildSignaturesContext over the same
// events in memory (an unsorted log serializes to colseg in sorted
// order; the equivalence is against that time-sorted sequence, which is
// the canonical capture order). The returned Signatures carry an
// event-free Log stub recording only the source's bounds.
//
// A nil or event-free source returns ErrEmptyLog; cancellation returns
// ErrCanceled wrapping ctx.Err(); a source read error is returned
// wrapped.
func BuildSignaturesReaderContext(ctx context.Context, src EventSource, opts Options) (*Signatures, error) {
	if src == nil {
		return nil, fmt.Errorf("flowdiff: building signatures: %w", ErrEmptyLog)
	}
	//lint:ignore obsspan same top-level build stage as BuildSignaturesContext on the streaming path; a run enters exactly one of the two, so the timeline never sees both
	defer obs.Span(ctx, "flowdiff.build").End()
	p, err := signature.NewPipelineFromSourceContext(ctx, src, opts.resolver(), opts.sigConfig(), opts.Stability)
	if err != nil {
		if cerr := canceled(ctx); cerr != nil {
			return nil, fmt.Errorf("flowdiff: building signatures: %w", cerr)
		}
		return nil, fmt.Errorf("flowdiff: building signatures: %w", err)
	}
	if p.EventCount() == 0 {
		return nil, fmt.Errorf("flowdiff: building signatures: %w", ErrEmptyLog)
	}
	start, end := src.Bounds()
	return signaturesFromPipeline(ctx, &Log{Start: start, End: end}, p, opts)
}
