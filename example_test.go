package flowdiff_test

import (
	"context"
	"fmt"
	"log"

	"flowdiff"
	"flowdiff/internal/faults"
)

// Example demonstrates the complete FlowDiff pipeline: simulate the lab
// data center, crash an application server during the second capture,
// and diagnose the difference between the two logs.
func Example() {
	res, err := flowdiff.RunScenario(flowdiff.Scenario{
		Seed:   7,
		Faults: []faults.Injector{faults.AppCrash{Host: "S3"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := flowdiff.Compare(context.Background(), res.L1, res.L2, nil, flowdiff.Thresholds{}, res.Options())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top hypothesis:", report.Problems[0].Problem)
	fmt.Println("top suspect:", report.Ranking[0].Component)
	// Output:
	// top hypothesis: application failure
	// top suspect: S3
}
