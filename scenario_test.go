package flowdiff

import (
	"testing"
	"time"

	"flowdiff/internal/workload"
)

func TestRunScenarioAllCases(t *testing.T) {
	for c := 1; c <= 5; c++ {
		res, err := RunScenario(Scenario{
			Seed: int64(300 + c), Case: c,
			BaselineDur: 30 * time.Second, FaultDur: 30 * time.Second,
		})
		if err != nil {
			t.Fatalf("case %d: %v", c, err)
		}
		if len(res.L1.Events) == 0 || len(res.L2.Events) == 0 {
			t.Errorf("case %d: empty logs (%d, %d)", c, len(res.L1.Events), len(res.L2.Events))
		}
		if res.L1.Duration() != 30*time.Second {
			t.Errorf("case %d: L1 duration %v", c, res.L1.Duration())
		}
	}
}

func TestRunScenarioInvalidCase(t *testing.T) {
	if _, err := RunScenario(Scenario{Seed: 1, Case: 9}); err == nil {
		t.Error("want error for unknown case")
	}
}

func TestRunScenarioCustomParams(t *testing.T) {
	p := workload.Case5Params{MeanA: 50, MeanB: 50, ReuseA: 0.5, ReuseB: 0.5}
	res, err := RunScenario(Scenario{
		Seed: 310, Case5: &p,
		BaselineDur: 30 * time.Second, FaultDur: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.L1.Events) == 0 {
		t.Error("custom-parameter scenario produced no traffic")
	}
}

func TestScenarioTasksRecorded(t *testing.T) {
	script := workload.MountNFS("S1", "NFS")
	res, err := RunScenario(Scenario{
		Seed: 311, BaselineDur: time.Second, FaultDur: time.Minute,
		Tasks: []workload.TaskScript{script, script},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaskRuns) != 2 {
		t.Fatalf("task runs = %d, want 2", len(res.TaskRuns))
	}
	for _, r := range res.TaskRuns {
		if len(r.Flows) == 0 || len(r.Flows) != len(r.Times) {
			t.Errorf("malformed task run %+v", r)
		}
	}
}
