# Convenience entry points; scripts/ holds the real logic so CI and
# humans run exactly the same commands.

.PHONY: test race ci bench

test:
	go test ./...

race:
	go test -race ./...

# Full verification gate: vet + build + race tests + bench smoke.
ci:
	./scripts/ci.sh

# Perf trajectory: runs the hot-path benchmarks and writes
# bench_results/BENCH_<n>.json (see scripts/bench.sh for knobs).
bench:
	./scripts/bench.sh
