# Convenience entry points; scripts/ holds the real logic so CI and
# humans run exactly the same commands.

.PHONY: test race lint lint-ignores ci bench

test:
	go test ./...

race:
	go test -race ./...

# Static analysis: FlowDiff's own analyzer suite (determinism and
# concurrency invariants; see DESIGN.md "Determinism invariants").
# -time reports per-analyzer wall clock so a slow check is visible the
# day it regresses, not when CI starts timing out.
lint:
	go run ./cmd/flowdifflint -time ./...

# Suppression audit: list every //lint:ignore with its reason and fail
# on unknown analyzer names.
lint-ignores:
	go run ./cmd/flowdifflint -ignores ./...

# Full verification gate: vet + build + race tests + bench smoke.
ci:
	./scripts/ci.sh

# Perf trajectory: runs the hot-path benchmarks and writes
# bench_results/BENCH_<n>.json (see scripts/bench.sh for knobs).
bench:
	./scripts/bench.sh
