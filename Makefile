# Convenience entry points; scripts/ holds the real logic so CI and
# humans run exactly the same commands.

.PHONY: test race lint ci bench

test:
	go test ./...

race:
	go test -race ./...

# Static analysis: FlowDiff's own analyzer suite (determinism and
# concurrency invariants; see DESIGN.md "Determinism invariants").
lint:
	go run ./cmd/flowdifflint ./...

# Full verification gate: vet + build + race tests + bench smoke.
ci:
	./scripts/ci.sh

# Perf trajectory: runs the hot-path benchmarks and writes
# bench_results/BENCH_<n>.json (see scripts/bench.sh for knobs).
bench:
	./scripts/bench.sh
