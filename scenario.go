package flowdiff

import (
	"fmt"
	"math/rand"
	"time"

	"flowdiff/internal/faults"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/simnet"
	"flowdiff/internal/topology"
	"flowdiff/internal/workload"
)

// Scenario describes one lab experiment: run a Table II application
// deployment on the lab topology, capture a clean baseline log L1, inject
// faults (and/or execute operator tasks), and capture the problem log L2.
type Scenario struct {
	// Seed drives all randomness.
	Seed int64
	// Case selects the Table II deployment (1..5). Default 5.
	Case int
	// Case5 overrides the case-5 workload parameters (P(x,y), R(m,n)).
	Case5 *workload.Case5Params
	// Specs, when non-empty, replaces the Table II deployment with an
	// explicit set of chain workloads (Case/Case5 are ignored).
	Specs []workload.Spec
	// Incast attaches many-to-one synchronized burst workloads alongside
	// the chains; like them, they run through both intervals.
	Incast []workload.IncastSpec
	// BaselineDur and FaultDur are the L1 and L2 capture lengths.
	// Defaults: 3 min each.
	BaselineDur, FaultDur time.Duration
	// Faults are injected at the start of the L2 interval.
	Faults []faults.Injector
	// Tasks are operator tasks executed during L2 (for validation).
	Tasks []workload.TaskScript
	// Net overrides the simulator configuration.
	Net simnet.Config
}

// ScenarioResult carries both captures and the live simulation handles.
type ScenarioResult struct {
	L1, L2 *flowlog.Log
	Topo   *topology.Topology
	Net    *simnet.Network
	Apps   []*workload.App
	// IncastApps are the attached burst workloads (Scenario.Incast).
	IncastApps []*workload.IncastApp
	// TaskRuns are the flows of the operator tasks executed during L2.
	TaskRuns []workload.TaskRun
}

// Options returns ready-to-use analysis options for the scenario's
// topology (lab service nodes marked as special).
func (r *ScenarioResult) Options() Options {
	return Options{Topo: r.Topo, Special: topology.ServiceNodes}
}

// RunScenario executes the scenario and returns both logs.
func RunScenario(s Scenario) (*ScenarioResult, error) {
	if s.Case == 0 {
		s.Case = 5
	}
	if s.BaselineDur == 0 {
		s.BaselineDur = 3 * time.Minute
	}
	if s.FaultDur == 0 {
		s.FaultDur = 3 * time.Minute
	}
	topo, err := topology.Lab()
	if err != nil {
		return nil, fmt.Errorf("%w: building lab topology: %w", ErrScenario, err)
	}
	cfg := s.Net
	cfg.Seed = s.Seed
	net, err := simnet.NewNetwork(topo, cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: building network: %w", ErrScenario, err)
	}

	var specs []workload.Spec
	if len(s.Specs) > 0 {
		specs = s.Specs
	} else if s.Case == 5 && s.Case5 != nil {
		p := *s.Case5
		if p.Duration == 0 {
			p.Duration = s.BaselineDur
		}
		specs = workload.Case5Specs(p)
	} else {
		specs, err = workload.CaseSpecs(s.Case)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrScenario, err)
		}
	}

	total := s.BaselineDur + s.FaultDur
	apps := make([]*workload.App, 0, len(specs))
	for i, spec := range specs {
		app, err := workload.Attach(net, spec, s.Seed+int64(i)+1)
		if err != nil {
			return nil, fmt.Errorf("%w: attaching app %q: %w", ErrScenario, spec.Name, err)
		}
		app.Run(0, total)
		apps = append(apps, app)
	}
	incasts := make([]*workload.IncastApp, 0, len(s.Incast))
	for i, spec := range s.Incast {
		app, err := workload.AttachIncast(net, spec, s.Seed+int64(len(specs)+i)+1)
		if err != nil {
			return nil, fmt.Errorf("%w: attaching incast app %q: %w", ErrScenario, spec.Name, err)
		}
		app.Run(0, total)
		incasts = append(incasts, app)
	}

	// Capture L1.
	net.Eng.Run(s.BaselineDur)
	l1 := net.Log()
	net.ResetLog()

	// Inject faults and execute tasks at the start of L2.
	res := &ScenarioResult{Topo: topo, Net: net, Apps: apps, IncastApps: incasts}
	for _, f := range s.Faults {
		if err := f.Apply(net, apps); err != nil {
			return nil, fmt.Errorf("%w: applying fault %q: %w", ErrScenario, f.Name(), err)
		}
	}
	if len(s.Tasks) > 0 {
		rng := workloadRNG(s.Seed + 9999)
		at := net.Eng.Now() + 5*time.Second
		for _, script := range s.Tasks {
			run, err := workload.ExecuteTask(net, at, script, rng)
			if err != nil {
				return nil, fmt.Errorf("%w: executing task %q: %w", ErrScenario, script.Name, err)
			}
			res.TaskRuns = append(res.TaskRuns, run)
			at += 30 * time.Second
		}
	}

	net.Eng.Run(s.BaselineDur + s.FaultDur)
	res.L1 = l1
	res.L2 = net.Log()
	return res, nil
}

func workloadRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
