#!/usr/bin/env sh
# Perf-trajectory tracker: runs the benchmarks that gate the hot paths
# (BuildSignatures, occurrence extraction, Monitor flush, stability,
# task mining, group discovery, suspect voting) and writes a
# machine-readable
# bench_results/BENCH_<n>.json, so speedups and regressions are
# comparable across PRs.
#
# Usage: scripts/bench.sh            (default -benchtime 3x)
#        BENCHTIME=10x scripts/bench.sh
#        BENCH_FILTER='BenchmarkOccurrences' scripts/bench.sh
set -eu
cd "$(dirname "$0")/.."

mkdir -p bench_results
n=1
while [ -e "bench_results/BENCH_${n}.json" ]; do n=$((n + 1)); done
out="bench_results/BENCH_${n}.json"

benchtime="${BENCHTIME:-3x}"
filter="${BENCH_FILTER:-BenchmarkBuildSignatures|BenchmarkOccurrences|BenchmarkMonitorFlush|BenchmarkAnalyzeStability|BenchmarkMine|BenchmarkDiscover|BenchmarkRankSuspects|BenchmarkReadColumnar|BenchmarkWriteColumnar|BenchmarkBuildFromReader|BenchmarkCompressionRatio|BenchmarkQueryRead}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench "$filter" -benchmem -benchtime "$benchtime" \
	. ./internal/core/signature ./internal/core/taskmine ./internal/core/appgroup ./internal/core/diagnose ./internal/flowlog/colseg | tee "$raw"

# Record the hardware parallelism the numbers were taken at: worker
# clamping makes workers>GOMAXPROCS runs equivalent to serial, so a
# BENCH_<n>.json is only comparable to another taken at the same width.
numcpu="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 0)"

# Stage-timing breakdown of one representative end-to-end compare
# (cmd/obsbench): records where the wall-clock of a run went, so a
# regression in a BENCH_<n>.json total can be attributed to a stage.
obsjson="$(go run ./cmd/obsbench 2>/dev/null || echo '{}')"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v goversion="$(go version)" \
	-v numcpu="$numcpu" -v obs="$obsjson" '
BEGIN { printf "{\n  \"schema\": 2,\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"num_cpu\": %s,\n  \"obs\": %s,\n", date, goversion, numcpu, obs; nbench = 0 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1; iters = $2
	# The -N suffix of every benchmark name is the GOMAXPROCS the run
	# used (Go appends it only when N != 1); surface it as a top-level
	# field.
	if (gomaxprocs == "" && match(name, /-[0-9]+$/)) gomaxprocs = substr(name, RSTART + 1)
	m = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		if (m != "") m = m ", "
		m = m sprintf("\"%s\": %s", $(i + 1), $i)
		# Surface the on-disk format sizes as a top-level compression
		# object (FDC1 bytes/event plus its ratio vs FDL1 and JSON).
		if (name ~ /^BenchmarkCompressionRatio/) {
			if ($(i + 1) == "fdl1/fdc1-ratio") fdl1ratio = $i
			if ($(i + 1) == "json/fdc1-ratio") jsonratio = $i
			if ($(i + 1) == "fdc1-bytes/event") fdcbytes = $i
		}
		# Surface the query-aware read engine numbers as a top-level
		# read object: per query shape, events/sec plus the payload
		# bytes the query decoded vs skipped.
		if (name ~ /^BenchmarkQueryRead\//) {
			v = name
			sub(/^BenchmarkQueryRead\//, "", v)
			sub(/-[0-9]+$/, "", v)
			if ($(i + 1) == "events/sec") read_eps[v] = $i
			if ($(i + 1) == "decoded-B") read_dec[v] = $i
			if ($(i + 1) == "skipped-B") read_skip[v] = $i
		}
	}
	if (nbench > 0) benches = benches ",\n"
	benches = benches sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {%s}}", name, iters, m)
	nbench++
}
END {
	# No suffix on any name means the runs executed at GOMAXPROCS=1.
	if (gomaxprocs == "") gomaxprocs = (nbench > 0) ? 1 : 0
	printf "  \"gomaxprocs\": %s,\n  \"cpu\": \"%s\",\n", gomaxprocs, cpu
	if (fdl1ratio != "")
		printf "  \"compression\": {\"fdc1_bytes_per_event\": %s, \"fdl1_over_fdc1\": %s, \"json_over_fdc1\": %s},\n", fdcbytes, fdl1ratio, jsonratio
	nshapes = split("full projected pruned parallel", shapes, " ")
	readobj = ""
	for (j = 1; j <= nshapes; j++) {
		v = shapes[j]
		if (!(v in read_eps)) continue
		if (readobj != "") readobj = readobj ", "
		readobj = readobj sprintf("\"%s\": {\"events_per_sec\": %s, \"bytes_decoded\": %s, \"bytes_skipped\": %s}", v, read_eps[v], read_dec[v], read_skip[v])
	}
	if (readobj != "")
		printf "  \"read\": {%s},\n", readobj
	printf "  \"benchmarks\": [\n%s\n  ]\n}\n", benches
}' "$raw" > "$out"

echo "wrote $out"
