#!/usr/bin/env sh
# Perf-trajectory tracker: runs the benchmarks that gate the hot paths
# (BuildSignatures, occurrence extraction, Monitor flush) and writes a
# machine-readable bench_results/BENCH_<n>.json, so speedups and
# regressions are comparable across PRs.
#
# Usage: scripts/bench.sh            (default -benchtime 3x)
#        BENCHTIME=10x scripts/bench.sh
#        BENCH_FILTER='BenchmarkOccurrences' scripts/bench.sh
set -eu
cd "$(dirname "$0")/.."

mkdir -p bench_results
n=1
while [ -e "bench_results/BENCH_${n}.json" ]; do n=$((n + 1)); done
out="bench_results/BENCH_${n}.json"

benchtime="${BENCHTIME:-3x}"
filter="${BENCH_FILTER:-BenchmarkBuildSignatures|BenchmarkOccurrences|BenchmarkMonitorFlush|BenchmarkAnalyzeStability}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench "$filter" -benchmem -benchtime "$benchtime" \
	. ./internal/core/signature | tee "$raw"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v goversion="$(go version)" '
BEGIN { printf "{\n  \"schema\": 1,\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n", date, goversion; nbench = 0 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1; iters = $2
	m = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		if (m != "") m = m ", "
		m = m sprintf("\"%s\": %s", $(i + 1), $i)
	}
	if (nbench > 0) benches = benches ",\n"
	benches = benches sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {%s}}", name, iters, m)
	nbench++
}
END {
	printf "  \"cpu\": \"%s\",\n  \"benchmarks\": [\n%s\n  ]\n}\n", cpu, benches
}' "$raw" > "$out"

echo "wrote $out"
