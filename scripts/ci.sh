#!/usr/bin/env sh
# The full verification gate: static checks, build, tests (with the race
# detector — the parallel extraction engine runs under it), and a 1x
# smoke pass over every benchmark so perf harness rot is caught early.
set -eux
cd "$(dirname "$0")/.."

go vet ./...
# flowdifflint: the repo's own analyzer suite. It machine-checks the
# determinism/concurrency invariants (map-order leaks, wall-clock reads
# in virtual-time packages, float equality in stats comparison, lock
# copies, dropped errors) so a violation fails the build before the race
# tests ever run.
go run ./cmd/flowdifflint ./...
go build ./...
go test -race ./...
# Decoder fuzz targets over their seed corpora (-run mode, no fuzzing
# engine): corrupted or hostile captures must fail with wrapped errors,
# never a panic or an unbounded allocation.
go test -run '^Fuzz' ./internal/flowlog/...
# Localization-accuracy smoke: the evidence-voting suspect ranker must
# keep top-1 >= 80% and top-3 >= 95% across 10 seeds on each fabric
# fault scenario, and strictly beat the change-count baseline on
# equal-cost-link-drop (floors pinned inside the test).
go test -run TestLocalizationAccuracy ./internal/experiments/
# ./... picks up every bench, including the hot-path gates tracked in
# bench_results/ (BuildSignatures, Occurrences, MonitorFlush,
# AnalyzeStability, Mine, Discover) and their retained naive
# *Reference counterparts.
go test -run '^$' -bench . -benchtime 1x ./...
