#!/usr/bin/env sh
# The full verification gate: static checks, build, tests (with the race
# detector — the parallel extraction engine runs under it), and a 1x
# smoke pass over every benchmark so perf harness rot is caught early.
set -eux
cd "$(dirname "$0")/.."

go vet ./...
# flowdifflint: the repo's own analyzer suite. It machine-checks the
# determinism/concurrency invariants (map-order leaks, wall-clock reads
# in virtual-time packages, float equality in stats comparison, lock
# copies, dropped errors, dropped contexts, sentinel-less public errors,
# joinless goroutines, span-table drift, determinism-root order leaks)
# so a violation fails the build before the race tests ever run. The
# -json report is parsed rather than trusting the exit code alone: a
# driver bug that swallowed findings but still exited 0 would otherwise
# pass silently.
LINT_JSON="$(mktemp)"
go run ./cmd/flowdifflint -json ./... > "$LINT_JSON"
grep -q '"count": 0' "$LINT_JSON"
rm -f "$LINT_JSON"
# Suppression audit: every //lint:ignore must name a real analyzer and
# carry a reason, or the typo suppresses nothing while looking like it
# does.
go run ./cmd/flowdifflint -ignores ./... > /dev/null
# Seeded-violation smoke: plant one violation per interprocedural
# analyzer (plus the deferred-close errcheck extension) in throwaway
# overlay packages and require the linter to catch every one. This is
# the end-to-end proof that the analyzers are wired into the driver —
# a suite that silently stopped running would still pass the clean run
# above.
SMOKE_DIR=internal/lintsmoke
SMOKE_FLOWLOG=internal/flowlog/lintsmoke
SMOKE_ROOT=lintsmoke_seed.go
SMOKE_JSON="$(mktemp)"
smoke_cleanup() { rm -rf "$SMOKE_DIR" "$SMOKE_FLOWLOG" "$SMOKE_ROOT" "$SMOKE_JSON"; }
trap smoke_cleanup EXIT
mkdir -p "$SMOKE_DIR" "$SMOKE_FLOWLOG"
cat > "$SMOKE_ROOT" <<'EOF'
package flowdiff

import "errors"

// SmokeSentinel is a CI lint-smoke seed: an exported error with no
// sentinel identity. Never committed; see scripts/ci.sh.
func SmokeSentinel() error { return errors.New("seed") }
EOF
cat > "$SMOKE_DIR/seed.go" <<'EOF'
// Package lintsmoke is a CI seed package: one violation per
// interprocedural analyzer. Never committed; see scripts/ci.sh.
package lintsmoke

import (
	"context"

	"flowdiff/internal/obs"
)

func CtxSeed(ctx context.Context) context.Context {
	_ = ctx
	return context.Background()
}

func SpawnSeed() {
	go func() {}()
}

func ObsSeed(ctx context.Context, name string) {
	defer obs.Span(ctx, name).End()
}

func DetSeed(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
EOF
cat > "$SMOKE_FLOWLOG/seed.go" <<'EOF'
// Package lintsmoke seeds the deferred-close errcheck rule. Never
// committed; see scripts/ci.sh.
package lintsmoke

import "os"

func ErrSeed(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString("x")
	return err
}
EOF
if go run ./cmd/flowdifflint -json -detorder-roots flowdiff/internal/lintsmoke.DetSeed ./... > "$SMOKE_JSON"; then
	echo "lint smoke: seeded violations were not caught" >&2
	exit 1
fi
for name in ctxflow sentinelerr spawnjoin obsspan detorder errcheck; do
	grep -q "\"analyzer\": \"$name\"" "$SMOKE_JSON" || {
		echo "lint smoke: analyzer $name missed its seeded violation" >&2
		exit 1
	}
done
smoke_cleanup
trap - EXIT
go build ./...
go test -race ./...
# Decoder fuzz targets over their seed corpora (-run mode, no fuzzing
# engine): corrupted or hostile captures must fail with wrapped errors,
# never a panic or an unbounded allocation.
go test -run '^Fuzz' ./internal/flowlog/...
# Query-equivalence smoke: projected, index-pruned, and parallel reads
# must be reflect.DeepEqual to the full serial read — at the colseg
# layer over both format versions, and through the public API on the
# canonical scenario capture. A read engine that silently dropped or
# reordered events would pass the benches but fail here.
go test -count=1 -run 'TestQueryReadsMatchReference|TestParallelDecodeMatchesSerial' ./internal/flowlog/colseg
go test -count=1 -run TestQueryReadsEquivalentOnScenarioCapture .
# Serve smoke: boot the real flowdiff binary as a service on a loopback
# port, ingest the canonical Seed-301 capture over HTTP as two tenants,
# and require the fetched reports to be reflect.DeepEqual to an offline
# Monitor run over the same events — the multi-tenant service must
# never diverge from the library pipeline it wraps.
go test -count=1 -run TestServeSmokeTwoTenantsMatchOffline ./cmd/flowdiff
# Localization-accuracy smoke: the evidence-voting suspect ranker must
# keep top-1 >= 80% and top-3 >= 95% across 10 seeds on each fabric
# fault scenario, and strictly beat the change-count baseline on
# equal-cost-link-drop (floors pinned inside the test).
go test -run TestLocalizationAccuracy ./internal/experiments/
# ./... picks up every bench, including the hot-path gates tracked in
# bench_results/ (BuildSignatures, Occurrences, MonitorFlush,
# AnalyzeStability, Mine, Discover) and their retained naive
# *Reference counterparts.
go test -run '^$' -bench . -benchtime 1x ./...
