package flowdiff

// Tuning is the single performance knob-set shared by every flowdiff
// entry point. It replaces the scattered per-subsystem knobs — the
// modeling pool width (Options.Parallelism), the task-mining worker
// count (TaskConfig.Parallelism), and the columnar decode readahead
// (ColumnarOptions.Parallelism) — with one struct a caller (or a
// service config file) sets once and applies everywhere:
//
//	t := flowdiff.NewTuning(flowdiff.Workers(4))
//	sigs, err := flowdiff.BuildSignatures(ctx, log, t.Options(opts))
//	auto, err := flowdiff.MineTask(ctx, name, runs, t.TaskConfig(cfg))
//	src, err := flowdiff.NewColumnarSourceOptions(ctx, r, t.Columnar(co))
//
// Every width follows the parallel.Clamp contract: zero (or negative)
// means one worker per CPU, requests above GOMAXPROCS are clamped down
// to it, and 1 forces fully sequential execution. Output is identical
// at every setting — parallelism is a throughput knob, never a
// semantics knob.
//
// The zero Tuning is valid and changes nothing: applying it leaves the
// target's own knobs untouched, so existing configurations keep
// working unmodified.
type Tuning struct {
	// Workers bounds every compute pool: sharded occurrence
	// extraction, per-group signature builds, stability intervals, the
	// two halves of Compare, and task mining.
	Workers int
	// ReadParallelism bounds the columnar segment-decode readahead
	// separately from the compute pools (decode is I/O-shaped and often
	// wants a different width). Zero falls back to Workers.
	ReadParallelism int
}

// A TuningOption configures one Tuning knob.
type TuningOption func(*Tuning)

// Workers bounds every compute pool (see Tuning.Workers).
func Workers(n int) TuningOption {
	return func(t *Tuning) { t.Workers = n }
}

// ReadParallelism bounds the columnar decode readahead (see
// Tuning.ReadParallelism).
func ReadParallelism(n int) TuningOption {
	return func(t *Tuning) { t.ReadParallelism = n }
}

// NewTuning builds a Tuning from functional options.
func NewTuning(opts ...TuningOption) Tuning {
	var t Tuning
	for _, o := range opts {
		o(&t)
	}
	return t
}

// readWorkers resolves the decode width: ReadParallelism, falling back
// to Workers.
func (t Tuning) readWorkers() int {
	if t.ReadParallelism != 0 {
		return t.ReadParallelism
	}
	return t.Workers
}

// Options returns o with every modeling pool bounded by t.Workers
// (zero leaves o untouched).
func (t Tuning) Options(o Options) Options {
	if t.Workers != 0 {
		o = o.WithWorkers(t.Workers)
	}
	return o
}

// TaskConfig returns c with the mining fan-out bounded by t.Workers
// (zero leaves c untouched).
func (t Tuning) TaskConfig(c TaskConfig) TaskConfig {
	if t.Workers != 0 {
		c.Parallelism = t.Workers
	}
	return c
}

// Columnar returns o with the segment-decode readahead bounded by
// t.ReadParallelism (falling back to t.Workers; zero leaves o
// untouched).
func (t Tuning) Columnar(o ColumnarOptions) ColumnarOptions {
	if w := t.readWorkers(); w != 0 {
		o.Parallelism = w
	}
	return o
}

// WithTuning applies t to o — the Options-side spelling of
// Tuning.Options for call chains that start from an Options value.
func (o Options) WithTuning(t Tuning) Options {
	return t.Options(o)
}
