package flowdiff

import (
	"context"
	"testing"
	"time"

	"flowdiff/internal/core/signature"
	"flowdiff/internal/faults"
	"flowdiff/internal/topology"
	"flowdiff/internal/workload"
)

// runAndDiff executes a scenario and returns the change set between its
// baseline and fault logs.
func runAndDiff(t *testing.T, s Scenario) ([]Change, *ScenarioResult) {
	t.Helper()
	res, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	opts := res.Options()
	base, err := BuildSignatures(context.Background(), res.L1, opts)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := BuildSignatures(context.Background(), res.L2, opts)
	if err != nil {
		t.Fatal(err)
	}
	return Diff(context.Background(), base, cur, Thresholds{}), res
}

func kindSet(changes []Change) map[Kind]bool {
	out := make(map[Kind]bool)
	for _, c := range changes {
		out[c.Kind] = true
	}
	return out
}

func TestCleanScenarioRaisesNoAlarms(t *testing.T) {
	changes, _ := runAndDiff(t, Scenario{Seed: 100})
	if len(changes) != 0 {
		t.Errorf("clean run produced %d changes: %+v", len(changes), changes)
	}
}

func TestTable1LoggingMisconfiguration(t *testing.T) {
	// Table I #1: INFO logging on the app server -> DD changes.
	changes, _ := runAndDiff(t, Scenario{
		Seed:   101,
		Faults: []faults.Injector{faults.EnableLogging{Host: "S3", Overhead: 60 * time.Millisecond}},
	})
	kinds := kindSet(changes)
	if !kinds[signature.KindDD] {
		t.Errorf("logging fault should shift DD; got kinds %v (%d changes)", kinds, len(changes))
	}
	if kinds[signature.KindCG] {
		t.Error("logging fault must not change the connectivity graph")
	}
	// The shifted DD must implicate the overloaded server.
	found := false
	for _, c := range changes {
		if c.Kind == signature.KindDD {
			for _, comp := range c.Components {
				if comp == "S3" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("DD change does not implicate S3")
	}
}

func TestTable1PathLoss(t *testing.T) {
	// Table I #2: loss between web and app server -> FS (byte counts) and
	// DD change.
	changes, _ := runAndDiff(t, Scenario{
		Seed:   102,
		Faults: []faults.Injector{faults.PathLoss{From: "S1", To: "S3", Prob: 0.05}},
	})
	kinds := kindSet(changes)
	if !kinds[signature.KindFS] {
		t.Errorf("loss should inflate FS byte counts; kinds = %v", kinds)
	}
	if kinds[signature.KindCG] {
		t.Error("loss must not change CG")
	}
}

func TestTable1CPUHog(t *testing.T) {
	changes, _ := runAndDiff(t, Scenario{
		Seed:   103,
		Faults: []faults.Injector{faults.CPUHog{Host: "S3", Overhead: 80 * time.Millisecond}},
	})
	kinds := kindSet(changes)
	if !kinds[signature.KindDD] {
		t.Errorf("CPU hog should shift DD; kinds = %v", kinds)
	}
}

func TestTable1AppCrash(t *testing.T) {
	// Table I #4: application crash -> CG and CI change (outgoing edges
	// of the crashed process disappear).
	changes, _ := runAndDiff(t, Scenario{
		Seed:   104,
		Faults: []faults.Injector{faults.AppCrash{Host: "S3"}},
	})
	kinds := kindSet(changes)
	if !kinds[signature.KindCG] {
		t.Errorf("app crash should remove CG edges; kinds = %v", kinds)
	}
	// The lost edge is S3->S8 (outgoing); the incoming edges remain.
	var lostOut, lostIn bool
	for _, c := range changes {
		if c.Kind != signature.KindCG {
			continue
		}
		for i, comp := range c.Components {
			if comp == "S3" && i == 0 {
				lostOut = true
			}
			if comp == "S3" && i == 1 {
				lostIn = true
			}
		}
	}
	if !lostOut {
		t.Error("missing S3->S8 edge change")
	}
	if lostIn {
		t.Error("incoming edges to the crashed app should persist")
	}
}

func TestTable1HostShutdown(t *testing.T) {
	// Table I #5: host shutdown -> CG and CI change; ALL edges at the
	// host disappear.
	changes, _ := runAndDiff(t, Scenario{
		Seed:   105,
		Faults: []faults.Injector{faults.HostShutdown{Host: "S3"}},
	})
	kinds := kindSet(changes)
	if !kinds[signature.KindCG] {
		t.Fatalf("host shutdown should remove CG edges; kinds = %v", kinds)
	}
	var inGone, outGone bool
	for _, c := range changes {
		if c.Kind != signature.KindCG {
			continue
		}
		if len(c.Components) == 2 {
			if c.Components[1] == "S3" {
				inGone = true
			}
			if c.Components[0] == "S3" {
				outGone = true
			}
		}
	}
	if !inGone || !outGone {
		t.Errorf("host shutdown should remove edges in both directions (in=%v out=%v)", inGone, outGone)
	}
}

func TestTable1FirewallBlock(t *testing.T) {
	changes, _ := runAndDiff(t, Scenario{
		Seed:   106,
		Faults: []faults.Injector{faults.FirewallBlock{Host: "S8", Port: workload.PortDB}},
	})
	kinds := kindSet(changes)
	if !kinds[signature.KindCG] {
		t.Errorf("firewall block should remove the blocked edge; kinds = %v", kinds)
	}
}

func TestTable1BackgroundTraffic(t *testing.T) {
	// Table I #7: Iperf background traffic -> congestion: ISL and FS/DD
	// shifts.
	changes, _ := runAndDiff(t, Scenario{
		Seed: 107,
		Faults: []faults.Injector{faults.BackgroundTraffic{
			From: "S24", To: "S4", Flows: 60, FlowBytes: 20 << 20,
			Interval: 250 * time.Millisecond, QueueDelay: 25 * time.Millisecond,
		}},
	})
	kinds := kindSet(changes)
	if !kinds[signature.KindISL] {
		t.Errorf("congestion should shift ISL; kinds = %v", kinds)
	}
}

func TestControllerOverloadShiftsCRT(t *testing.T) {
	changes, _ := runAndDiff(t, Scenario{
		Seed:   108,
		Faults: []faults.Injector{faults.ControllerOverload{ServiceTime: 10 * time.Millisecond}},
	})
	kinds := kindSet(changes)
	if !kinds[signature.KindCRT] {
		t.Errorf("controller overload should shift CRT; kinds = %v", kinds)
	}
}

func TestUnauthorizedAccessDetected(t *testing.T) {
	changes, res := runAndDiff(t, Scenario{
		Seed:   109,
		Faults: []faults.Injector{faults.UnauthorizedAccess{Attacker: "S24", Victim: "S8", Port: workload.PortDB}},
	})
	kinds := kindSet(changes)
	if !kinds[signature.KindCG] {
		t.Fatalf("unauthorized access should add a CG edge; kinds = %v", kinds)
	}
	report := Diagnose(context.Background(), changes, nil, res.Options())
	if len(report.Unknown) == 0 {
		t.Fatal("unauthorized access should remain unexplained")
	}
	if len(report.Problems) == 0 {
		t.Fatal("no problem classification produced")
	}
}

func TestSwitchFailureDetected(t *testing.T) {
	// Kill an edge switch serving case-5 hosts: PT and CG change.
	changes, _ := runAndDiff(t, Scenario{
		Seed:   110,
		Faults: []faults.Injector{faults.SwitchFailure{Switch: "sw2"}},
	})
	kinds := kindSet(changes)
	if !kinds[signature.KindPT] && !kinds[signature.KindCG] {
		t.Errorf("switch failure should surface in PT or CG; kinds = %v", kinds)
	}
}

func TestVMigrationValidatedAsKnownChange(t *testing.T) {
	// Execute a migration-like task during L2 whose flows create new CG
	// edges; with the task automaton known, Diagnose must classify those
	// changes as known.
	script := workload.VMMigration("V1", "V2", "NFS")
	res, err := RunScenario(Scenario{
		Seed:  111,
		Tasks: []workload.TaskScript{script},
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := res.Options()

	// Train the automaton from dedicated runs of the same task.
	trainRes, err := RunScenario(Scenario{
		Seed:        112,
		BaselineDur: time.Second, FaultDur: 10 * time.Minute,
		Tasks: []workload.TaskScript{script, script, script, script, script},
	})
	if err != nil {
		t.Fatal(err)
	}
	var runs [][]FlowKey
	for _, r := range trainRes.TaskRuns {
		runs = append(runs, r.Flows)
	}
	if len(runs) < 5 {
		t.Fatalf("only %d training runs", len(runs))
	}
	automaton, err := MineTask(context.Background(), "vm-migration", runs, TaskConfig{})
	if err != nil {
		t.Fatal(err)
	}

	base, err := BuildSignatures(context.Background(), res.L1, opts)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := BuildSignatures(context.Background(), res.L2, opts)
	if err != nil {
		t.Fatal(err)
	}
	changes := Diff(context.Background(), base, cur, Thresholds{})
	if len(changes) == 0 {
		t.Fatal("task execution should surface as CG changes")
	}

	tasks := DetectTasks(res.L2, []*TaskAutomaton{automaton}, 0)
	if len(tasks) == 0 {
		t.Fatal("task not detected in L2")
	}
	report := Diagnose(context.Background(), changes, tasks, opts)
	if len(report.Known) == 0 {
		t.Errorf("no change was validated by the detected task; unknown = %+v", report.Unknown)
	}
	// Without the task time series everything stays unknown.
	blind := Diagnose(context.Background(), changes, nil, opts)
	if len(blind.Known) != 0 {
		t.Error("without detections nothing should be explained")
	}
}

func TestDependencyMatrixCongestionShape(t *testing.T) {
	// Figure 8a: congestion sets DD/PC/FS rows in the ISL column.
	changes, res := runAndDiff(t, Scenario{
		Seed: 113,
		Faults: []faults.Injector{faults.BackgroundTraffic{
			From: "S24", To: "S4", Flows: 60, FlowBytes: 20 << 20,
			Interval: 250 * time.Millisecond, QueueDelay: 25 * time.Millisecond,
		}},
	})
	report := Diagnose(context.Background(), changes, nil, res.Options())
	m := report.Matrix
	if !m.Cells[signature.KindDD][signature.KindISL] &&
		!m.Cells[signature.KindFS][signature.KindISL] &&
		!m.Cells[signature.KindPC][signature.KindISL] {
		t.Errorf("congestion matrix missing app-sig x ISL cells:\n%s", m)
	}
	if m.Cells[signature.KindCG][signature.KindPT] {
		t.Error("congestion must not set the CG x PT cell")
	}
	// Classification should surface a congestion-flavored hypothesis.
	foundCongestion := false
	for _, p := range report.Problems[:min(3, len(report.Problems))] {
		if p.Problem == "network bottleneck / congestion" || p.Problem == "switch overhead" {
			foundCongestion = true
		}
	}
	if !foundCongestion {
		t.Errorf("congestion not among top hypotheses: %+v", report.Problems)
	}
}

func TestComponentRankingImplicatesFaultyHost(t *testing.T) {
	changes, res := runAndDiff(t, Scenario{
		Seed:   114,
		Faults: []faults.Injector{faults.HostShutdown{Host: "S3"}},
	})
	report := Diagnose(context.Background(), changes, nil, res.Options())
	if len(report.Ranking) == 0 {
		t.Fatal("empty component ranking")
	}
	if report.Ranking[0].Component != "S3" {
		t.Errorf("top-ranked component = %s, want S3 (ranking %+v)",
			report.Ranking[0].Component, report.Ranking)
	}
}

func TestBuildSignaturesValidation(t *testing.T) {
	if _, err := BuildSignatures(context.Background(), nil, Options{}); err == nil {
		t.Error("want error for nil log")
	}
}

func TestOptionsSpecialNodes(t *testing.T) {
	topo, err := topology.Lab()
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Topo: topo, Special: topology.ServiceNodes}
	cfg := o.sigConfig()
	if !cfg.Special["NFS"] {
		t.Error("special nodes not propagated into signature config")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
