package flowdiff

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"time"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/core/signature"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/obs"
)

// Monitor runs FlowDiff continuously: control events are appended as they
// arrive, and every window the accumulated interval is modeled and
// compared against the frozen baseline — the operational mode §III
// sketches ("FlowDiff frequently models the behavior of a data center").
//
// The modeling cost per window is O(window events), independent of how
// long the monitor has been running: occurrence extraction happens
// incrementally as events are observed (signature.StreamExtractor keeps
// per-key open episodes across appends), Flush only closes out the
// window's episodes and hands the shared slice to the signature
// pipeline, and application-group discovery is cached across windows —
// rediscovered only when the window's host edge set changes.
//
// Flush boundaries are aligned to a fixed grid: every automatic window
// is [baseline.End + k·window, baseline.End + (k+1)·window). A burst
// followed by a quiet gap therefore produces normal-width windows and
// then silence — never one oversized window spanning the gap. Grid
// cells with no events produce no report, and windows with fewer flow
// occurrences than Options.Stability.MinSamples (default 3) abstain
// from diagnosis, mirroring the paper's per-interval stability
// abstention: a near-empty sliver (the tail of a burst, or the residue
// a final Flush finds past the last grid boundary) carries too little
// traffic to model and would otherwise always diff as "every group
// disappeared". Detecting total silence is a liveness watchdog's job,
// not a behavior differ's.
//
// Monitor is not safe for concurrent use; feed it from the goroutine that
// owns the event source (the simulator loop or a controller.Server
// drainer).
type Monitor struct {
	opts     Options
	th       Thresholds
	window   time.Duration
	automata []*TaskAutomaton
	baseline *Signatures
	r        *appgroup.Resolver
	sigCfg   signature.Config

	buf *flowlog.Log
	ex  *signature.StreamExtractor
	// origin anchors the window grid (the baseline's end); next is the
	// grid boundary at which the buffered window flushes.
	origin time.Duration
	next   time.Duration

	// Cross-window group-discovery cache: groups is reused as long as a
	// window's host edge set equals groupEdges (discovery is a pure
	// function of the edge set).
	groupEdges  map[appgroup.Edge]int
	groups      []appgroup.Group
	groupsValid bool

	// minOcc is the minimum flow-occurrence count a window needs to be
	// diagnosed; sparser windows abstain.
	minOcc int

	// pending holds occurrences a canceled flush already consumed from
	// the extractor; the retried flush models them with its own so
	// cancellation never loses a window's episodes.
	pending []signature.Occurrence

	reports []MonitorReport
}

// MonitorReport is one window's diagnosis.
type MonitorReport struct {
	// From and To delimit the interval the report covers. Automatic
	// (grid-boundary) flushes cover the half-open [From, To) with To on
	// the window grid; the final manual Flush instead covers the closed
	// [From, To] with To equal to the last observed event's time — the
	// tail event is included rather than stranded in a window that
	// would never flush.
	From, To time.Duration
	Report   Report
}

// NewMonitor creates a monitor against a baseline built from a
// known-good log. window controls how often diffs are produced (default
// 1 minute); automatic flushes land on multiples of window past the
// baseline's end. ctx governs (and its obs registry observes) the
// baseline signature build.
func NewMonitor(ctx context.Context, baseline *Log, window time.Duration, automata []*TaskAutomaton, th Thresholds, opts Options) (*Monitor, error) {
	if window <= 0 {
		window = time.Minute
	}
	if baseline == nil || len(baseline.Events) == 0 {
		return nil, fmt.Errorf("flowdiff: monitor: %w", ErrNoBaseline)
	}
	base, err := BuildSignatures(ctx, baseline, opts)
	if err != nil {
		return nil, fmt.Errorf("flowdiff: building monitor baseline: %w", err)
	}
	sigCfg := opts.sigConfig()
	minOcc := opts.Stability.MinSamples
	if minOcc <= 0 {
		minOcc = 3
	}
	return &Monitor{
		opts:     opts,
		th:       th,
		window:   window,
		automata: automata,
		baseline: base,
		r:        opts.resolver(),
		sigCfg:   sigCfg,
		buf:      flowlog.New(baseline.End, baseline.End),
		ex:       signature.NewStreamExtractor(sigCfg.OccurrenceGap),
		origin:   baseline.End,
		next:     baseline.End + window,
		minOcc:   minOcc,
	}, nil
}

// Baseline exposes the frozen baseline signatures.
func (m *Monitor) Baseline() *Signatures { return m.baseline }

// SwapBaseline hot-swaps the frozen baseline: the new known-good log is
// modeled (under ctx) and replaces the signatures every subsequent
// window diffs against. Everything else survives the swap — the
// buffered window, the incremental extractor's open episodes, the
// window grid, and the report history — so a long-running tenant can
// re-baseline without dropping its stream. On error (empty log,
// cancellation) the old baseline stays in place.
func (m *Monitor) SwapBaseline(ctx context.Context, baseline *Log) error {
	if baseline == nil || len(baseline.Events) == 0 {
		return fmt.Errorf("flowdiff: monitor baseline swap: %w", ErrNoBaseline)
	}
	base, err := BuildSignatures(ctx, baseline, m.opts)
	if err != nil {
		return fmt.Errorf("flowdiff: monitor baseline swap: %w", err)
	}
	m.baseline = base
	return nil
}

// MonitorSnapshot is a point-in-time view of a monitor's live state —
// the status a long-running service reports per tenant.
type MonitorSnapshot struct {
	// WindowStart is the open (buffered, not yet flushed) window's
	// start; Buffered is how many events it holds.
	WindowStart time.Duration
	Buffered    int
	// NextFlush is the grid boundary at which the open window flushes.
	NextFlush time.Duration
	// Windows counts the reports produced so far; Alarmed counts those
	// with unexplained changes.
	Windows, Alarmed int
	// BaselineEvents and BaselineEnd describe the frozen baseline.
	BaselineEvents int
	BaselineEnd    time.Duration
}

// Snapshot reports the monitor's live state. Like every other Monitor
// method it must be called from the goroutine that owns the monitor.
func (m *Monitor) Snapshot() MonitorSnapshot {
	s := MonitorSnapshot{
		WindowStart: m.buf.Start,
		Buffered:    len(m.buf.Events),
		NextFlush:   m.next,
		Windows:     len(m.reports),
	}
	if m.baseline.Log != nil {
		s.BaselineEvents = len(m.baseline.Log.Events)
		s.BaselineEnd = m.baseline.Log.End
	}
	for _, r := range m.reports {
		if len(r.Report.Unknown) > 0 {
			s.Alarmed++
		}
	}
	return s
}

// ObserveContext is a deprecated spelling of Observe.
//
// Deprecated: the public API is context-first — call Observe directly.
func (m *Monitor) ObserveContext(ctx context.Context, e flowlog.Event) (*MonitorReport, error) {
	return m.Observe(ctx, e)
}

// Observe appends one control event. When the event crosses the
// current window's grid boundary, the buffered window is diagnosed
// first and the resulting report returned (nil otherwise); the event
// then opens the grid cell containing it. Events must arrive in time
// order.
//
// ctx governs (and its obs registry observes) only the window flush a
// boundary-crossing event triggers: cancellation mid-flush surfaces as
// ErrCanceled, the window's partial model is discarded, and the event
// itself is still buffered. Cancellation is non-destructive — the
// interrupted window (boundary event included) stays buffered, the
// grid does not advance, and the next boundary crossing retries the
// flush; a retried window therefore keeps its grid To but may model
// trailing events at or past it (the following window's cell start is
// computed from its own first event, so windows never overlap).
// Per-event cost is one counter increment ("monitor.events") plus the
// extractor append.
func (m *Monitor) Observe(ctx context.Context, e flowlog.Event) (*MonitorReport, error) {
	if e.Time < m.buf.Start {
		return nil, fmt.Errorf("flowdiff: %w: event at %v precedes current window start %v", ErrOutOfOrder, e.Time, m.buf.Start)
	}
	obs.From(ctx).Counter("monitor.events").Inc()
	var rep *MonitorReport
	var flushErr error
	if e.Time >= m.next {
		rep, flushErr = m.flushTo(ctx, m.next)
		if flushErr == nil {
			// Jump to the grid cell containing e; cells skipped during a
			// quiet gap produce no windows.
			start := m.origin + (e.Time-m.origin)/m.window*m.window
			m.next = start + m.window
			m.buf = flowlog.New(start, start)
		}
	}
	// The event is buffered whether or not the flush succeeded; a
	// canceled flush must not drop it.
	m.buf.Append(e)
	if e.Time > m.buf.End {
		m.buf.End = e.Time
	}
	m.ex.Append(e)
	return rep, flushErr
}

// FlushContext is a deprecated spelling of Flush.
//
// Deprecated: the public API is context-first — call Flush directly.
func (m *Monitor) FlushContext(ctx context.Context) (*MonitorReport, error) {
	return m.Flush(ctx)
}

// Flush diagnoses the buffered partial window immediately
// (automatic flushes happen inside Observe when a grid boundary is
// crossed). The report covers [window start, last observed event].
// Returns nil when the buffer is empty.
func (m *Monitor) Flush(ctx context.Context) (*MonitorReport, error) {
	if len(m.buf.Events) == 0 {
		return nil, nil
	}
	return m.flushTo(ctx, m.buf.End)
}

// flushTo diagnoses the buffered interval as the window [buf.Start, to)
// and resets the buffer to start at to. An empty buffer (a grid cell
// that saw no events) produces no report.
//
// The whole window diagnosis is timed as the span "monitor.flush";
// diagnosed windows count into "monitor.windows" and sparse ones into
// "monitor.abstained".
func (m *Monitor) flushTo(ctx context.Context, to time.Duration) (*MonitorReport, error) {
	if len(m.buf.Events) == 0 {
		m.buf = flowlog.New(to, to)
		return nil, nil
	}
	// An already-canceled context must leave the monitor untouched:
	// bail out before the destructive extractor flush consumes the
	// window's closed episodes.
	if cerr := canceled(ctx); cerr != nil {
		return nil, fmt.Errorf("flowdiff: monitor flush: %w", cerr)
	}
	prevEnd := m.buf.End
	m.buf.End = to
	occs := m.ex.Flush()
	if len(m.pending) > 0 {
		occs = append(m.pending, occs...)
		m.pending = nil
	}
	if len(occs) < m.minOcc {
		// Too sparse to model; abstain (see the type comment).
		obs.From(ctx).Counter("monitor.abstained").Inc()
		m.buf = flowlog.New(to, to)
		return nil, nil
	}
	sp := obs.Span(ctx, "monitor.flush")
	defer sp.End()
	cur, err := m.signaturesFor(ctx, m.buf, occs)
	if err != nil {
		// Mid-build cancellation: the extractor's episodes were already
		// consumed, so stash them for the retried flush and undo the
		// boundary mutation.
		m.pending = occs
		m.buf.End = prevEnd
		return nil, err
	}
	changes := Diff(ctx, m.baseline, cur, m.th)
	tasks := DetectTasks(m.buf, m.automata, m.opts.Signature.OccurrenceGap)
	rep := MonitorReport{
		From:   m.buf.Start,
		To:     to,
		Report: Diagnose(ctx, changes, tasks, m.opts),
	}
	obs.From(ctx).Counter("monitor.windows").Inc()
	m.reports = append(m.reports, rep)
	m.buf = flowlog.New(to, to)
	return &rep, nil
}

// signaturesFor models one window from its incrementally extracted
// occurrences, reusing the previous window's application groups when
// the host edge set is unchanged.
func (m *Monitor) signaturesFor(ctx context.Context, log *Log, occs []signature.Occurrence) (*Signatures, error) {
	p := signature.NewPipelineFromOccurrencesContext(ctx, log, m.r, m.sigCfg, occs)
	edges := appgroup.BuildEdges(log, m.r)
	if !m.groupsValid || !appgroup.SameEdgeSet(edges, m.groupEdges) {
		m.groups = appgroup.DiscoverFromEdges(edges, m.sigCfg.Special)
		m.groupEdges = edges
		m.groupsValid = true
	}
	p.SetGroups(m.groups)
	return signaturesFromPipeline(ctx, log, p, m.opts)
}

// RediagnoseWindow re-runs one window's diagnosis from an archived FDC1
// capture — the drill-down path: a live window raised an alarm, the
// operator re-reads just that window (optionally narrowed to suspect
// hosts) from the on-disk log and diffs it against the same frozen
// baseline. The columnar read is query-aware: segments outside the
// window (or, on current-format files, segments whose index proves none
// of the hosts appear) are pruned before any payload decode, so the
// cost scales with the window, not the capture.
//
// The window's events stream straight into the signature build and are
// never materialized; task detection needs the raw event sequence, so
// re-diagnosed reports skip task replay and classify changes against
// the baseline alone. The report is not appended to Reports. A window
// with no matching events returns ErrEmptyLog wrapped.
func (m *Monitor) RediagnoseWindow(ctx context.Context, r io.Reader, from, to time.Duration, hosts []netip.Addr) (*MonitorReport, error) {
	src, err := NewColumnarSourceOptions(ctx, r, ColumnarOptions{
		Filter: ReadFilter{From: from, To: to, Hosts: hosts},
	})
	if err != nil {
		return nil, fmt.Errorf("flowdiff: monitor rediagnose: %w", err)
	}
	cur, err := BuildSignaturesReader(ctx, src, m.opts)
	if err != nil {
		return nil, fmt.Errorf("flowdiff: monitor rediagnose: %w", err)
	}
	changes := Diff(ctx, m.baseline, cur, m.th)
	return &MonitorReport{
		From:   from,
		To:     to,
		Report: Diagnose(ctx, changes, nil, m.opts),
	}, nil
}

// Reports returns every report produced so far.
func (m *Monitor) Reports() []MonitorReport { return m.reports }

// Alarms returns the reports that contain unexplained changes.
func (m *Monitor) Alarms() []MonitorReport {
	var out []MonitorReport
	for _, r := range m.reports {
		if len(r.Report.Unknown) > 0 {
			out = append(out, r)
		}
	}
	return out
}
