package flowdiff

import (
	"fmt"
	"time"

	"flowdiff/internal/flowlog"
)

// Monitor runs FlowDiff continuously: control events are appended as they
// arrive, and every window the accumulated interval is modeled and
// compared against the frozen baseline — the operational mode §III
// sketches ("FlowDiff frequently models the behavior of a data center").
//
// Monitor is not safe for concurrent use; feed it from the goroutine that
// owns the event source (the simulator loop or a controller.Server
// drainer).
type Monitor struct {
	opts      Options
	th        Thresholds
	window    time.Duration
	automata  []*TaskAutomaton
	baseline  *Signatures
	buf       *flowlog.Log
	lastFlush time.Duration
	reports   []MonitorReport
}

// MonitorReport is one window's diagnosis.
type MonitorReport struct {
	// Window is the interval [From, To) the report covers.
	From, To time.Duration
	Report   Report
}

// NewMonitor creates a monitor against a baseline built from a
// known-good log. window controls how often diffs are produced (default
// 1 minute).
func NewMonitor(baseline *Log, window time.Duration, automata []*TaskAutomaton, th Thresholds, opts Options) (*Monitor, error) {
	if window <= 0 {
		window = time.Minute
	}
	base, err := BuildSignatures(baseline, opts)
	if err != nil {
		return nil, fmt.Errorf("flowdiff: building monitor baseline: %w", err)
	}
	return &Monitor{
		opts:      opts,
		th:        th,
		window:    window,
		automata:  automata,
		baseline:  base,
		buf:       flowlog.New(baseline.End, baseline.End),
		lastFlush: baseline.End,
	}, nil
}

// Baseline exposes the frozen baseline signatures.
func (m *Monitor) Baseline() *Signatures { return m.baseline }

// Observe appends one control event. Whenever the buffered interval
// reaches the window length, the interval is diagnosed and the resulting
// report returned (nil otherwise). Events must arrive in time order.
func (m *Monitor) Observe(e flowlog.Event) (*MonitorReport, error) {
	if e.Time < m.lastFlush {
		return nil, fmt.Errorf("flowdiff: event at %v precedes current window start %v", e.Time, m.lastFlush)
	}
	m.buf.Append(e)
	m.buf.End = e.Time
	if e.Time-m.lastFlush < m.window {
		return nil, nil
	}
	return m.Flush()
}

// Flush diagnoses the buffered interval immediately (also called
// internally when a window fills). Returns nil when the buffer is empty.
func (m *Monitor) Flush() (*MonitorReport, error) {
	if len(m.buf.Events) == 0 {
		m.lastFlush = m.buf.End
		return nil, nil
	}
	cur, err := BuildSignatures(m.buf, m.opts)
	if err != nil {
		return nil, err
	}
	changes := Diff(m.baseline, cur, m.th)
	tasks := DetectTasks(m.buf, m.automata, m.opts.Signature.OccurrenceGap)
	rep := MonitorReport{
		From:   m.buf.Start,
		To:     m.buf.End,
		Report: Diagnose(changes, tasks, m.opts),
	}
	m.reports = append(m.reports, rep)
	m.buf = flowlog.New(m.buf.End, m.buf.End)
	m.lastFlush = rep.To
	return &rep, nil
}

// Reports returns every report produced so far.
func (m *Monitor) Reports() []MonitorReport { return m.reports }

// Alarms returns the reports that contain unexplained changes.
func (m *Monitor) Alarms() []MonitorReport {
	var out []MonitorReport
	for _, r := range m.reports {
		if len(r.Report.Unknown) > 0 {
			out = append(out, r)
		}
	}
	return out
}
