package flowdiff_test

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"flowdiff"
	"flowdiff/internal/faults"
)

// checkGoroutineLeak snapshots the goroutine count and verifies at
// cleanup, with a settle/retry loop, that it returned to the baseline —
// proof that the sharded extraction and pipeline worker pools drain.
func checkGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		n := runtime.NumGoroutine()
		for n > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n > before {
			t.Errorf("goroutine leak: %d before the test, still %d after settling", before, n)
		}
	})
}

// TestParallelModelingDeterminism is the equivalence gate for the
// parallel signature pipeline: the same log modeled with 1, 4, and
// GOMAXPROCS workers must produce identical signatures, stability
// verdicts, and diff changes, and the concurrent Compare must match the
// sequential one report for report.
func TestParallelModelingDeterminism(t *testing.T) {
	checkGoroutineLeak(t)
	res, err := flowdiff.RunScenario(flowdiff.Scenario{
		Seed:        41,
		BaselineDur: 45 * time.Second,
		FaultDur:    45 * time.Second,
		Faults:      []faults.Injector{faults.HostShutdown{Host: "S3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := res.Options()

	type model struct {
		base, cur *flowdiff.Signatures
		changes   []flowdiff.Change
	}
	build := func(workers int) model {
		o := opts
		o.Parallelism = workers
		base, err := flowdiff.BuildSignatures(context.Background(), res.L1, o)
		if err != nil {
			t.Fatal(err)
		}
		cur, err := flowdiff.BuildSignatures(context.Background(), res.L2, o)
		if err != nil {
			t.Fatal(err)
		}
		return model{base: base, cur: cur, changes: flowdiff.Diff(context.Background(), base, cur, flowdiff.Thresholds{})}
	}

	ref := build(1)
	if len(ref.changes) == 0 {
		t.Fatal("host shutdown produced no changes; the equivalence check would be vacuous")
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := build(workers)
		if !reflect.DeepEqual(got.base.Apps, ref.base.Apps) {
			t.Errorf("workers=%d: baseline app signatures differ", workers)
		}
		if !reflect.DeepEqual(got.base.Infra, ref.base.Infra) {
			t.Errorf("workers=%d: baseline infra signatures differ", workers)
		}
		if !reflect.DeepEqual(got.base.Stability, ref.base.Stability) {
			t.Errorf("workers=%d: baseline stability verdicts differ", workers)
		}
		if !reflect.DeepEqual(got.cur.Apps, ref.cur.Apps) {
			t.Errorf("workers=%d: current app signatures differ", workers)
		}
		if !reflect.DeepEqual(got.changes, ref.changes) {
			t.Errorf("workers=%d: diff changes differ\n got: %v\nwant: %v", workers, got.changes, ref.changes)
		}
	}

	seq := opts
	seq.Parallelism = 1
	par := opts
	par.Parallelism = 4
	seqReport, err := flowdiff.Compare(context.Background(), res.L1, res.L2, nil, flowdiff.Thresholds{}, seq)
	if err != nil {
		t.Fatal(err)
	}
	parReport, err := flowdiff.Compare(context.Background(), res.L1, res.L2, nil, flowdiff.Thresholds{}, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqReport, parReport) {
		t.Errorf("concurrent Compare report differs from sequential:\n got: %+v\nwant: %+v", parReport, seqReport)
	}
}

// TestSuspectRankingDeterministicAcrossParallelism pins the acceptance
// bar for the evidence-voting ranker: the full suspect ranking —
// order, votes, and coverage-adjusted scores — must be identical for
// every Parallelism setting of the one-call Compare pipeline.
func TestSuspectRankingDeterministicAcrossParallelism(t *testing.T) {
	checkGoroutineLeak(t)
	sc := faults.LocalizationScenarios()[0]
	res, err := flowdiff.RunScenario(flowdiff.Scenario{
		Seed:        43,
		Specs:       sc.Specs,
		Incast:      sc.Incast,
		Faults:      sc.Faults,
		BaselineDur: 45 * time.Second,
		FaultDur:    45 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []flowdiff.SuspectScore
	for i, workers := range []int{1, 2, 4, 7} {
		o := res.Options()
		o.Parallelism = workers
		rep, err := flowdiff.Compare(context.Background(), res.L1, res.L2, nil, flowdiff.Thresholds{}, o)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Suspects) == 0 {
			t.Fatalf("workers=%d: no suspects; determinism check would be vacuous", workers)
		}
		if i == 0 {
			want = rep.Suspects
			continue
		}
		if !reflect.DeepEqual(rep.Suspects, want) {
			t.Errorf("workers=%d: suspect ranking differs from sequential:\n%+v\nvs\n%+v",
				workers, rep.Suspects, want)
		}
	}
}
