package flowdiff

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// TestDeprecatedForwardersStillWork pins the deprecation policy: the
// pre-redesign *Context spellings remain thin forwarders onto the
// canonical context-first names, returning identical results. New code
// must not use them (flowdifflint's ctxflow enforces the idiom), but
// existing callers keep compiling and behaving until the next major
// version removes them.
func TestDeprecatedForwardersStillWork(t *testing.T) {
	res, err := RunScenario(Scenario{Seed: 11, Case: 1, BaselineDur: 20 * time.Second, FaultDur: 20 * time.Second})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	ctx := context.Background()
	opts := res.Options()

	canonical, err := BuildSignatures(ctx, res.L1, opts)
	if err != nil {
		t.Fatalf("BuildSignatures: %v", err)
	}
	forwarded, err := BuildSignaturesContext(ctx, res.L1, opts)
	if err != nil {
		t.Fatalf("BuildSignaturesContext: %v", err)
	}
	if !reflect.DeepEqual(forwarded.Apps, canonical.Apps) || !reflect.DeepEqual(forwarded.Infra, canonical.Infra) {
		t.Error("BuildSignaturesContext diverges from BuildSignatures")
	}

	cur, err := BuildSignatures(ctx, res.L2, opts)
	if err != nil {
		t.Fatalf("BuildSignatures(L2): %v", err)
	}
	changes := Diff(ctx, canonical, cur, Thresholds{})
	fwdChanges := DiffContext(ctx, forwarded, cur, Thresholds{})
	if !reflect.DeepEqual(fwdChanges, changes) {
		t.Error("DiffContext diverges from Diff")
	}

	rep, err := Compare(ctx, res.L1, res.L2, nil, Thresholds{}, opts)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	fwdRep, err := CompareContext(ctx, res.L1, res.L2, nil, Thresholds{}, opts)
	if err != nil {
		t.Fatalf("CompareContext: %v", err)
	}
	if !reflect.DeepEqual(fwdRep, rep) {
		t.Error("CompareContext diverges from Compare")
	}

	mon, err := NewMonitor(ctx, res.L1, 10*time.Second, nil, Thresholds{}, opts)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	for _, e := range res.L2.Events {
		if _, err := mon.ObserveContext(ctx, e); err != nil {
			t.Fatalf("ObserveContext: %v", err)
		}
	}
	if _, err := mon.FlushContext(ctx); err != nil {
		t.Fatalf("FlushContext: %v", err)
	}

	mon2, err := NewMonitor(ctx, res.L1, 10*time.Second, nil, Thresholds{}, opts)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	for _, e := range res.L2.Events {
		if _, err := mon2.Observe(ctx, e); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if _, err := mon2.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !reflect.DeepEqual(mon.Reports(), mon2.Reports()) {
		t.Error("ObserveContext/FlushContext monitor run diverges from Observe/Flush")
	}
}
