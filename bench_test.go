// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablation studies listed in DESIGN.md. Each bench
// regenerates its experiment end to end (simulation, modeling, diffing),
// so -bench also doubles as a reproduction driver:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig13bProcessingTime -benchtime=10x
package flowdiff_test

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"flowdiff"
	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/core/signature"
	"flowdiff/internal/experiments"
	"flowdiff/internal/faults"
	"flowdiff/internal/flowlog"
)

// BenchmarkTable1DetectProblems regenerates Table I: inject each of the
// seven operational problems and run the full detection pipeline.
func BenchmarkTable1DetectProblems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if !row.Detected {
				b.Fatalf("problem %d not detected", row.ID)
			}
		}
	}
}

// BenchmarkTable3TaskMatching regenerates Table III: train per-VM startup
// automata and measure matching accuracy.
func BenchmarkTable3TaskMatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(int64(i)+1, 30); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9ByteCountCDF regenerates Figure 9's byte-count and delay
// CDFs under loss and logging faults.
func BenchmarkFig9ByteCountCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.MeanBytes["loss"] <= res.MeanBytes["vanilla"] {
			b.Fatal("loss did not inflate byte counts")
		}
	}
}

// BenchmarkFig10DelayDistribution regenerates Figure 10: DD peak
// stability across workload and reuse settings.
func BenchmarkFig10DelayDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(int64(i)+1, 2*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Panels {
			if p.Samples == 0 {
				b.Fatalf("%s: no samples", p.Setting.Label)
			}
		}
	}
}

// BenchmarkFig11PartialCorrelation regenerates Figure 11a (PC across
// cases 1-4).
func BenchmarkFig11PartialCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11a(int64(i)+1, 2*time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12ComponentInteraction regenerates Figure 12 (CI stability
// at S4 across cases 1-4).
func BenchmarkFig12ComponentInteraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(int64(i)+1, 2*time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13aPacketInRate measures control-traffic generation on the
// 320-server tree for a 9-application workload (Figure 13a's middle
// series).
func BenchmarkFig13aPacketInRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		log, _, err := experiments.Fig13Trace(int64(i)+1, 9, 60*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if len(log.Events) == 0 {
			b.Fatal("no control traffic")
		}
	}
}

// BenchmarkFig13bProcessingTime measures FlowDiff's modeling phase on a
// 19-application trace — the quantity on Figure 13b's y-axis.
func BenchmarkFig13bProcessingTime(b *testing.B) {
	log, topo, err := experiments.Fig13Trace(1, 19, 60*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.FlowDiffProcess(log, topo)
	}
}

// BenchmarkDiffPipeline measures the diff+diagnose phase alone on a
// prepared pair of signature sets (host-shutdown scenario).
func BenchmarkDiffPipeline(b *testing.B) {
	res, err := flowdiff.RunScenario(flowdiff.Scenario{
		Seed:   1,
		Faults: []faults.Injector{faults.HostShutdown{Host: "S3"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	opts := res.Options()
	base, err := flowdiff.BuildSignatures(context.Background(), res.L1, opts)
	if err != nil {
		b.Fatal(err)
	}
	cur, err := flowdiff.BuildSignatures(context.Background(), res.L2, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		changes := flowdiff.Diff(context.Background(), base, cur, flowdiff.Thresholds{})
		flowdiff.Diagnose(context.Background(), changes, nil, opts)
	}
}

// --- modeling-pipeline benches ---------------------------------------

// synthThreeTierLog builds a deterministic control log of roughly
// nEvents events: eight independent three-tier application groups, each
// request producing a front->mid and a mid->back flow (PacketIn+FlowMod
// on two switches plus a FlowRemoved per flow). It exercises every
// signature component (CG/FS/CI/DD/PC) at a controlled event count,
// which the simulator-driven benches cannot.
func synthThreeTierLog(nEvents int) *flowdiff.Log {
	return synthThreeTierStream(0, 5*time.Minute, nEvents)
}

// synthThreeTierStream is synthThreeTierLog generalized to an arbitrary
// interval, so monitor benchmarks can generate a continuous stream that
// starts where the baseline log ends.
func synthThreeTierStream(start, dur time.Duration, nEvents int) *flowdiff.Log {
	const (
		groups       = 8
		eventsPerReq = 10 // 2 flows x (2 PacketIn + 2 FlowMod + 1 FlowRemoved)
	)
	l := flowlog.New(start, start+dur)
	reqs := nEvents / (groups * eventsPerReq)
	if reqs < 1 {
		reqs = 1
	}
	step := dur / time.Duration(reqs+1)
	host := func(g, role int) netip.Addr {
		return netip.AddrFrom4([4]byte{10, byte(g), byte(role), 1})
	}
	emit := func(k flowlog.FlowKey, at time.Duration, sw1, sw2 string) {
		l.Append(flowlog.Event{Time: at, Type: flowlog.EventPacketIn, Switch: sw1, Flow: k})
		l.Append(flowlog.Event{Time: at + time.Millisecond, Type: flowlog.EventFlowMod, Switch: sw1, Flow: k})
		l.Append(flowlog.Event{Time: at + 2*time.Millisecond, Type: flowlog.EventPacketIn, Switch: sw2, Flow: k})
		l.Append(flowlog.Event{Time: at + 3*time.Millisecond, Type: flowlog.EventFlowMod, Switch: sw2, Flow: k})
		l.Append(flowlog.Event{Time: at + 500*time.Millisecond, Type: flowlog.EventFlowRemoved, Switch: sw1, Flow: k,
			Bytes: 30000, Packets: 40, FlowDuration: 400 * time.Millisecond})
	}
	for i := 0; i < reqs; i++ {
		t0 := start + time.Duration(i+1)*step
		port := uint16(1024 + i%50000)
		for g := 0; g < groups; g++ {
			sw1, sw2 := fmt.Sprintf("sw%d-1", g), fmt.Sprintf("sw%d-2", g)
			front := flowlog.FlowKey{Proto: 6, Src: host(g, 1), Dst: host(g, 2), SrcPort: port, DstPort: 80}
			back := flowlog.FlowKey{Proto: 6, Src: host(g, 2), Dst: host(g, 3), SrcPort: port, DstPort: 3306}
			emit(front, t0, sw1, sw2)
			emit(back, t0+10*time.Millisecond, sw1, sw2)
		}
	}
	l.Sort()
	return l
}

// BenchmarkBuildSignatures measures the full modeling phase (app +
// infra + stability, single-pass pipeline) at three log scales, with a
// sequential and a per-CPU worker-pool variant.
func BenchmarkBuildSignatures(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 500_000} {
		log := synthThreeTierLog(n)
		workerCounts := []int{1}
		if p := runtime.GOMAXPROCS(0); p != 1 {
			workerCounts = append(workerCounts, p)
		}
		for _, workers := range workerCounts {
			b.Run(fmt.Sprintf("events=%dk/workers=%d", n/1000, workers), func(b *testing.B) {
				opts := flowdiff.Options{Parallelism: workers}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := flowdiff.BuildSignatures(context.Background(), log, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkOccurrences isolates occurrence extraction — the dominant
// cost of the modeling phase — serial and sharded by flow-key hash
// across worker counts. On a single-CPU host the sharded variants
// measure overhead, not speedup; shards run concurrently only when
// cores exist to carry them.
func BenchmarkOccurrences(b *testing.B) {
	workerCounts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		workerCounts = append(workerCounts, p)
	}
	for _, n := range []int{100_000, 500_000} {
		log := synthThreeTierLog(n)
		for _, workers := range workerCounts {
			b.Run(fmt.Sprintf("events=%dk/workers=%d", n/1000, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					signature.OccurrencesSharded(log, signature.Config{Parallelism: workers})
				}
			})
		}
	}
}

// BenchmarkMonitorFlush drives a monitor over a growing stream with a
// fixed 30s window and constant per-window event density, reporting
// ns/window. Per-window cost staying flat as the stream grows is the
// incremental engine's contract: extraction state is per-window, group
// discovery is cached, and nothing rescans history.
func BenchmarkMonitorFlush(b *testing.B) {
	const (
		window    = 30 * time.Second
		perWindow = 5_000 // events per window
	)
	baseline := synthThreeTierLog(20_000)
	for _, windows := range []int{4, 16, 64} {
		stream := synthThreeTierStream(baseline.End, time.Duration(windows)*window, windows*perWindow)
		b.Run(fmt.Sprintf("windows=%d", windows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer() // the one-off baseline build is not per-window cost
				m, err := flowdiff.NewMonitor(context.Background(), baseline, window, nil, flowdiff.Thresholds{}, flowdiff.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, e := range stream.Events {
					if _, err := m.Observe(context.Background(), e); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := m.Flush(context.Background()); err != nil {
					b.Fatal(err)
				}
				if got := len(m.Reports()); got < windows-1 {
					b.Fatalf("only %d reports for %d windows", got, windows)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*windows), "ns/window")
		})
	}
}

// BenchmarkAnalyzeStability isolates the per-interval stability
// analysis, historically the most extraction-heavy stage (it used to
// re-run occurrence extraction once per interval plus once whole-log).
func BenchmarkAnalyzeStability(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 500_000} {
		log := synthThreeTierLog(n)
		r := appgroup.NewResolver(nil)
		workerCounts := []int{1}
		if p := runtime.GOMAXPROCS(0); p != 1 {
			workerCounts = append(workerCounts, p)
		}
		for _, workers := range workerCounts {
			b.Run(fmt.Sprintf("events=%dk/workers=%d", n/1000, workers), func(b *testing.B) {
				cfg := signature.Config{Parallelism: workers}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := signature.AnalyzeStability(log, r, cfg, signature.StabilityConfig{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- ablation benches (DESIGN.md) ------------------------------------

// BenchmarkAblationDeploymentModes compares control-traffic volume under
// reactive / wildcard / proactive rule installation (§VI).
func BenchmarkAblationDeploymentModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DeploymentModes(int64(i)+1, time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0].PacketIns == 0 {
			b.Fatal("reactive mode produced no control traffic")
		}
	}
}

// BenchmarkAblationClosedPruning measures task mining with closed-pattern
// pruning (automaton size ablation).
func BenchmarkAblationClosedPruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ClosedPruning(int64(i)+1, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInterleaveThreshold measures task detection as the
// interleave bound varies around the paper's 1 s setting.
func BenchmarkAblationInterleaveThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.InterleaveThreshold(int64(i)+1, nil, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStabilityFilter measures the false-alarm suppression
// of the stability filter on clean diffs.
func BenchmarkAblationStabilityFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.StabilityFilter(int64(i)+1, 2)
		if err != nil {
			b.Fatal(err)
		}
		if res.AlarmsWithFilter > res.AlarmsWithoutFilter {
			b.Fatal("stability filter increased alarms")
		}
	}
}

// BenchmarkAblationPCEpoch sweeps the PC epoch length.
func BenchmarkAblationPCEpoch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PCEpoch(int64(i)+1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationControllerScaling measures CRT relief from sharding
// switches across controller instances (§VI distributed controller).
func BenchmarkAblationControllerScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ControllerScaling(int64(i)+1, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		if res.CRTMean[1] >= res.CRTMean[0] {
			b.Fatal("distribution did not reduce CRT")
		}
	}
}

// BenchmarkAblationHybridDeployment measures the §VI incremental
// deployment's granularity trade-off.
func BenchmarkAblationHybridDeployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Hybrid(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.HybridPacketIns >= res.FullPacketIns {
			b.Fatal("hybrid deployment did not reduce control traffic")
		}
	}
}

// BenchmarkAblationTimeoutSweep measures the §III-A soft-timeout
// granularity trade-off.
func BenchmarkAblationTimeoutSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TimeoutSweep(int64(i)+1, nil, time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0].PacketIns == 0 {
			b.Fatal("no control traffic")
		}
	}
}
