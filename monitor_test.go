package flowdiff

import (
	"bytes"
	"context"
	"errors"
	"net/netip"
	"reflect"
	"runtime"
	"testing"
	"time"

	"flowdiff/internal/faults"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/flowlog/colseg"
	"flowdiff/internal/obs"
	"flowdiff/internal/workload"
)

// checkGoroutineLeak snapshots the goroutine count and verifies at
// cleanup, with a settle/retry loop, that it returned to the baseline —
// proof that the pipeline's worker pools drain instead of accumulating
// across Observe/Flush cycles.
func checkGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		n := runtime.NumGoroutine()
		for n > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n > before {
			t.Errorf("goroutine leak: %d before the test, still %d after settling", before, n)
		}
	})
}

// driveMonitor replays a scenario's L2 events through a monitor built on
// its L1.
func driveMonitor(t *testing.T, s Scenario, window time.Duration) (*Monitor, *ScenarioResult) {
	t.Helper()
	checkGoroutineLeak(t)
	res, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(context.Background(), res.L1, window, nil, Thresholds{}, res.Options())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.L2.Events {
		if _, err := m.Observe(context.Background(), e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestMonitorCleanRunStaysQuiet(t *testing.T) {
	m, _ := driveMonitor(t, Scenario{Seed: 200}, time.Minute)
	if len(m.Reports()) == 0 {
		t.Fatal("monitor produced no reports")
	}
	for _, r := range m.Alarms() {
		t.Errorf("clean run raised alarm in [%v,%v): %+v", r.From, r.To, r.Report.Unknown)
	}
}

func TestMonitorDetectsMidStreamFault(t *testing.T) {
	m, _ := driveMonitor(t, Scenario{
		Seed:   201,
		Faults: []faults.Injector{faults.AppCrash{Host: "S3"}},
	}, time.Minute)
	alarms := m.Alarms()
	if len(alarms) == 0 {
		t.Fatal("app crash never raised an alarm")
	}
	// The alarm must implicate S3.
	found := false
	for _, a := range alarms {
		for _, c := range a.Report.Ranking {
			if c.Component == "S3" {
				found = true
			}
		}
	}
	if !found {
		t.Error("alarms do not implicate the crashed server")
	}
}

func TestMonitorWindowing(t *testing.T) {
	m, res := driveMonitor(t, Scenario{Seed: 202}, 30*time.Second)
	// A 3-minute L2 with 30s windows yields ~6 reports.
	if got := len(m.Reports()); got < 4 || got > 8 {
		t.Errorf("got %d reports for 3min/30s windows", got)
	}
	// Windows tile the interval without overlap.
	prev := res.L1.End
	for _, r := range m.Reports() {
		if r.From != prev {
			t.Errorf("window [%v,%v) does not start at previous end %v", r.From, r.To, prev)
		}
		if r.To <= r.From {
			t.Errorf("empty window [%v,%v)", r.From, r.To)
		}
		prev = r.To
	}
}

func TestMonitorValidatesTasks(t *testing.T) {
	script := workload.VMMigration("V1", "V2", "NFS")
	// Train an automaton.
	train, err := RunScenario(Scenario{
		Seed: 203, BaselineDur: time.Second, FaultDur: 10 * time.Minute,
		Tasks: []workload.TaskScript{script, script, script, script, script},
	})
	if err != nil {
		t.Fatal(err)
	}
	var runs [][]FlowKey
	for _, r := range train.TaskRuns {
		runs = append(runs, r.Flows)
	}
	automaton, err := MineTask(context.Background(), "vm-migration", runs, TaskConfig{})
	if err != nil {
		t.Fatal(err)
	}

	res, err := RunScenario(Scenario{Seed: 204, Tasks: []workload.TaskScript{script}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(context.Background(), res.L1, time.Minute, []*TaskAutomaton{automaton}, Thresholds{}, res.Options())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.L2.Events {
		if _, err := m.Observe(context.Background(), e); err != nil {
			t.Fatal(err)
		}
	}
	m.Flush(context.Background())
	known := 0
	for _, r := range m.Reports() {
		known += len(r.Report.Known)
	}
	if known == 0 {
		t.Error("migration changes were not validated by the monitor")
	}
}

// monitorChainEvents emits a burst of A->B / B->C control traffic into
// events, one request every step, over [from, to).
func monitorChainEvents(from, to, step time.Duration) []flowlog.Event {
	host := func(last byte) netip.Addr { return netip.AddrFrom4([4]byte{10, 7, 0, last}) }
	var out []flowlog.Event
	i := 0
	for t0 := from; t0 < to; t0 += step {
		port := uint16(1024 + i%40000)
		i++
		ab := flowlog.FlowKey{Proto: 6, Src: host(1), Dst: host(2), SrcPort: port, DstPort: 80}
		bc := flowlog.FlowKey{Proto: 6, Src: host(2), Dst: host(3), SrcPort: port, DstPort: 3306}
		for _, k := range []flowlog.FlowKey{ab, bc} {
			out = append(out,
				flowlog.Event{Time: t0, Type: flowlog.EventPacketIn, Switch: "sw1", Flow: k},
				flowlog.Event{Time: t0 + time.Millisecond, Type: flowlog.EventFlowMod, Switch: "sw1", Flow: k},
			)
		}
	}
	return out
}

// Regression for the fixed window grid: a burst followed by a long
// quiet gap must never produce one oversized window spanning the gap —
// the old monitor flushed [lastFlush, firstEventAfterGap], so a 7-minute
// silence yielded a 7.5-minute "window".
func TestMonitorGridAlignedWindows(t *testing.T) {
	window := time.Minute
	baseline := flowlog.New(0, 2*time.Minute)
	baseline.Events = monitorChainEvents(0, 2*time.Minute, 200*time.Millisecond)
	m, err := NewMonitor(context.Background(), baseline, window, nil, Thresholds{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	origin := baseline.End
	// Burst for 30s, silence for ~7min, burst again, then a final
	// partial window.
	var stream []flowlog.Event
	stream = append(stream, monitorChainEvents(origin, origin+30*time.Second, 100*time.Millisecond)...)
	stream = append(stream, monitorChainEvents(origin+8*time.Minute, origin+9*time.Minute+30*time.Second, 100*time.Millisecond)...)
	for _, e := range stream {
		if _, err := m.Observe(context.Background(), e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	reports := m.Reports()
	if len(reports) < 3 {
		t.Fatalf("got %d reports, want >= 3 (burst window, post-gap windows, final partial)", len(reports))
	}
	for _, r := range reports {
		if r.To-r.From > window {
			t.Errorf("oversized window [%v,%v): width %v > %v", r.From, r.To, r.To-r.From, window)
		}
		if (r.From-origin)%window != 0 {
			t.Errorf("window [%v,%v) does not start on the grid (origin %v, window %v)", r.From, r.To, origin, window)
		}
	}
	// No report may cover any part of the quiet gap's interior cells.
	gapFrom, gapTo := origin+time.Minute, origin+8*time.Minute
	for _, r := range reports {
		if r.From >= gapFrom && r.To <= gapTo {
			t.Errorf("report [%v,%v) covers the quiet gap; empty cells must stay silent", r.From, r.To)
		}
	}
}

// TestMonitorStreamingMatchesBatch pins the streaming engine end to
// end: every report the monitor produces (incremental extraction,
// cached group discovery, shared occurrence slice) must be identical to
// modeling the same window from scratch with BuildSignatures — for
// sequential and parallel builds.
func TestMonitorStreamingMatchesBatch(t *testing.T) {
	res, err := RunScenario(Scenario{Seed: 207})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		opts := res.Options()
		opts.Parallelism = workers
		m, err := NewMonitor(context.Background(), res.L1, 45*time.Second, nil, Thresholds{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range res.L2.Events {
			if _, err := m.Observe(context.Background(), e); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
		reports := m.Reports()
		if len(reports) < 3 {
			t.Fatalf("workers=%d: only %d reports; equivalence would be vacuous", workers, len(reports))
		}
		base, err := BuildSignatures(context.Background(), res.L1, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range reports {
			wl := flowlog.New(r.From, r.To)
			last := i == len(reports)-1
			for _, e := range res.L2.Events {
				// Automatic windows are [From, To); the final manual
				// flush closes at the last observed event, inclusive.
				if e.Time >= r.From && (e.Time < r.To || (last && e.Time == r.To)) {
					wl.Append(e)
				}
			}
			cur, err := BuildSignatures(context.Background(), wl, opts)
			if err != nil {
				t.Fatal(err)
			}
			changes := Diff(context.Background(), base, cur, Thresholds{})
			want := Diagnose(context.Background(), changes, DetectTasks(wl, nil, opts.Signature.OccurrenceGap), opts)
			if !reflect.DeepEqual(r.Report, want) {
				t.Errorf("workers=%d window [%v,%v): streaming report differs from batch rebuild", workers, r.From, r.To)
			}
		}
	}
}

func TestMonitorRejectsOutOfOrderEvents(t *testing.T) {
	res, err := RunScenario(Scenario{Seed: 205, BaselineDur: time.Minute, FaultDur: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(context.Background(), res.L1, time.Minute, nil, Thresholds{}, res.Options())
	if err != nil {
		t.Fatal(err)
	}
	stale := res.L1.Events[0]
	if _, err := m.Observe(context.Background(), stale); err == nil {
		t.Error("want error for event preceding the window")
	}
}

// TestMonitorCanceledFlushIsNonDestructive is the regression test for
// the ObserveContext cancellation contract: a canceled boundary flush
// must neither drop the boundary-crossing event nor consume the
// window's extractor episodes. The pre-fix code returned before
// buffering the event and after m.ex.Flush(context.Background()) had already destroyed the
// window's occurrences, so the retried flush abstained on an empty
// extractor and the window was lost forever.
func TestMonitorCanceledFlushIsNonDestructive(t *testing.T) {
	window := time.Minute
	baseline := flowlog.New(0, 2*time.Minute)
	baseline.Events = monitorChainEvents(0, 2*time.Minute, 200*time.Millisecond)
	opts := Options{}
	m, err := NewMonitor(context.Background(), baseline, window, nil, Thresholds{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	origin := baseline.End
	winEvents := monitorChainEvents(origin, origin+window, 100*time.Millisecond)
	for _, e := range winEvents {
		if _, err := m.Observe(context.Background(), e); err != nil {
			t.Fatal(err)
		}
	}

	// The boundary-crossing event arrives under a canceled context.
	canceledCtx, cancel := context.WithCancel(context.Background())
	cancel()
	host := func(last byte) netip.Addr { return netip.AddrFrom4([4]byte{10, 7, 0, last}) }
	boundary := flowlog.Event{
		Time: origin + window + time.Millisecond, Type: flowlog.EventPacketIn, Switch: "sw1",
		Flow: flowlog.FlowKey{Proto: 6, Src: host(8), Dst: host(9), SrcPort: 2000, DstPort: 80},
	}
	rep, err := m.Observe(canceledCtx, boundary)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled flush: err = %v, want ErrCanceled", err)
	}
	if rep != nil {
		t.Fatalf("canceled flush returned a report: %+v", rep)
	}
	if len(m.Reports()) != 0 {
		t.Fatalf("canceled flush recorded reports: %+v", m.Reports())
	}

	// The next boundary crossing (live context) retries the flush and
	// must model the full window — the canceled boundary event included.
	later := flowlog.Event{
		Time: origin + window + 2*time.Millisecond, Type: flowlog.EventPacketIn, Switch: "sw1",
		Flow: flowlog.FlowKey{Proto: 6, Src: host(8), Dst: host(9), SrcPort: 2001, DstPort: 80},
	}
	rep, err = m.Observe(context.Background(), later)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("retried flush produced no report (window lost)")
	}
	if rep.From != origin || rep.To != origin+window {
		t.Fatalf("retried window = [%v,%v), want [%v,%v)", rep.From, rep.To, origin, origin+window)
	}

	// The retried report must equal a batch rebuild of the same window
	// (its regular events plus the deferred boundary event).
	base, err := BuildSignatures(context.Background(), baseline, opts)
	if err != nil {
		t.Fatal(err)
	}
	wl := flowlog.New(origin, origin+window)
	wl.Events = append(append([]flowlog.Event(nil), winEvents...), boundary)
	cur, err := BuildSignatures(context.Background(), wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	changes := Diff(context.Background(), base, cur, Thresholds{})
	want := Diagnose(context.Background(), changes, DetectTasks(wl, nil, opts.Signature.OccurrenceGap), opts)
	if !reflect.DeepEqual(rep.Report, want) {
		t.Error("retried report differs from batch rebuild of the full window")
	}
}

// TestMonitorRediagnoseWindow drives a monitored fault run, archives the
// live stream as an FDC1 capture, and re-diagnoses an alarmed window
// from disk — the drill-down path. The re-read is query-aware, so the
// capture's segments outside the window must be pruned without decode.
func TestMonitorRediagnoseWindow(t *testing.T) {
	m, res := driveMonitor(t, Scenario{
		Seed:   201,
		Faults: []faults.Injector{faults.AppCrash{Host: "S3"}},
	}, time.Minute)
	alarms := m.Alarms()
	if len(alarms) == 0 {
		t.Fatal("app crash never raised an alarm")
	}
	a := alarms[0]

	var buf bytes.Buffer
	if err := colseg.Write(&buf, res.L2, colseg.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	reg := obs.New()
	ctx := obs.WithRegistry(context.Background(), reg)
	nReports := len(m.Reports())
	rep, err := m.RediagnoseWindow(ctx, bytes.NewReader(raw), a.From, a.To, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != a.From || rep.To != a.To {
		t.Errorf("report covers [%v,%v), want the queried [%v,%v)", rep.From, rep.To, a.From, a.To)
	}
	if len(rep.Report.Unknown) == 0 {
		t.Error("re-diagnosed alarm window reports no unexplained changes")
	}
	found := false
	for _, c := range rep.Report.Ranking {
		if c.Component == "S3" {
			found = true
		}
	}
	if !found {
		t.Error("re-diagnosed window does not implicate the crashed server")
	}
	if len(m.Reports()) != nReports {
		t.Error("RediagnoseWindow appended to the monitor's report log")
	}
	// The 3-minute capture holds ~6 default-width segments; a 1-minute
	// window must prune the rest before any payload decode.
	if got := reg.Counter("colseg.segments.pruned").Value(); got == 0 {
		t.Error("windowed re-read pruned no segments")
	}

	// Narrowing to the suspect host still produces a report (the
	// membership-filter path through the same capture).
	var host netip.Addr
	for _, e := range res.L2.Events {
		if e.Time >= a.From && e.Time < a.To && e.Flow.Src.IsValid() {
			host = e.Flow.Src
			break
		}
	}
	if !host.IsValid() {
		t.Fatal("no flow events inside the alarmed window")
	}
	if _, err := m.RediagnoseWindow(ctx, bytes.NewReader(raw), a.From, a.To, []netip.Addr{host}); err != nil {
		t.Fatalf("host-narrowed rediagnose: %v", err)
	}

	// A window past the capture's end holds no events.
	if _, err := m.RediagnoseWindow(ctx, bytes.NewReader(raw), res.L2.End+time.Minute, res.L2.End+2*time.Minute, nil); !errors.Is(err, ErrEmptyLog) {
		t.Errorf("empty window returned %v, want ErrEmptyLog", err)
	}
}
