package flowdiff

import (
	"testing"
	"time"

	"flowdiff/internal/faults"
	"flowdiff/internal/workload"
)

// driveMonitor replays a scenario's L2 events through a monitor built on
// its L1.
func driveMonitor(t *testing.T, s Scenario, window time.Duration) (*Monitor, *ScenarioResult) {
	t.Helper()
	res, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(res.L1, window, nil, Thresholds{}, res.Options())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.L2.Events {
		if _, err := m.Observe(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestMonitorCleanRunStaysQuiet(t *testing.T) {
	m, _ := driveMonitor(t, Scenario{Seed: 200}, time.Minute)
	if len(m.Reports()) == 0 {
		t.Fatal("monitor produced no reports")
	}
	for _, r := range m.Alarms() {
		t.Errorf("clean run raised alarm in [%v,%v): %+v", r.From, r.To, r.Report.Unknown)
	}
}

func TestMonitorDetectsMidStreamFault(t *testing.T) {
	m, _ := driveMonitor(t, Scenario{
		Seed:   201,
		Faults: []faults.Injector{faults.AppCrash{Host: "S3"}},
	}, time.Minute)
	alarms := m.Alarms()
	if len(alarms) == 0 {
		t.Fatal("app crash never raised an alarm")
	}
	// The alarm must implicate S3.
	found := false
	for _, a := range alarms {
		for _, c := range a.Report.Ranking {
			if c.Component == "S3" {
				found = true
			}
		}
	}
	if !found {
		t.Error("alarms do not implicate the crashed server")
	}
}

func TestMonitorWindowing(t *testing.T) {
	m, res := driveMonitor(t, Scenario{Seed: 202}, 30*time.Second)
	// A 3-minute L2 with 30s windows yields ~6 reports.
	if got := len(m.Reports()); got < 4 || got > 8 {
		t.Errorf("got %d reports for 3min/30s windows", got)
	}
	// Windows tile the interval without overlap.
	prev := res.L1.End
	for _, r := range m.Reports() {
		if r.From != prev {
			t.Errorf("window [%v,%v) does not start at previous end %v", r.From, r.To, prev)
		}
		if r.To <= r.From {
			t.Errorf("empty window [%v,%v)", r.From, r.To)
		}
		prev = r.To
	}
}

func TestMonitorValidatesTasks(t *testing.T) {
	script := workload.VMMigration("V1", "V2", "NFS")
	// Train an automaton.
	train, err := RunScenario(Scenario{
		Seed: 203, BaselineDur: time.Second, FaultDur: 10 * time.Minute,
		Tasks: []workload.TaskScript{script, script, script, script, script},
	})
	if err != nil {
		t.Fatal(err)
	}
	var runs [][]FlowKey
	for _, r := range train.TaskRuns {
		runs = append(runs, r.Flows)
	}
	automaton, err := MineTask("vm-migration", runs, TaskConfig{})
	if err != nil {
		t.Fatal(err)
	}

	res, err := RunScenario(Scenario{Seed: 204, Tasks: []workload.TaskScript{script}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(res.L1, time.Minute, []*TaskAutomaton{automaton}, Thresholds{}, res.Options())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.L2.Events {
		if _, err := m.Observe(e); err != nil {
			t.Fatal(err)
		}
	}
	m.Flush()
	known := 0
	for _, r := range m.Reports() {
		known += len(r.Report.Known)
	}
	if known == 0 {
		t.Error("migration changes were not validated by the monitor")
	}
}

func TestMonitorRejectsOutOfOrderEvents(t *testing.T) {
	res, err := RunScenario(Scenario{Seed: 205, BaselineDur: time.Minute, FaultDur: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(res.L1, time.Minute, nil, Thresholds{}, res.Options())
	if err != nil {
		t.Fatal(err)
	}
	stale := res.L1.Events[0]
	if _, err := m.Observe(stale); err == nil {
		t.Error("want error for event preceding the window")
	}
}
