// Tests for the context-aware public API and its observability
// contracts: sentinel errors wrap as documented, a canceled build
// drains its worker pool, obs counters are deterministic across worker
// counts, and instrumentation never changes the report.
package flowdiff_test

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"net/netip"
	"runtime"
	"strings"
	"testing"
	"time"

	"flowdiff"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/obs"
)

// taskRuns builds three runs of a toy two-flow task for mining tests.
func taskRuns() [][]flowdiff.FlowKey {
	host := func(n byte) netip.Addr { return netip.AddrFrom4([4]byte{10, 9, n, 1}) }
	mk := func(sp uint16) []flowdiff.FlowKey {
		return []flowdiff.FlowKey{
			{Proto: 6, Src: host(1), Dst: host(2), SrcPort: sp, DstPort: 80},
			{Proto: 6, Src: host(2), Dst: host(3), SrcPort: sp + 1, DstPort: 3306},
		}
	}
	return [][]flowdiff.FlowKey{mk(1000), mk(2000), mk(3000)}
}

// TestSentinelErrors pins every documented error path of the public
// API: which sentinel each entry point returns and what it wraps.
func TestSentinelErrors(t *testing.T) {
	log := synthThreeTierLog(2_000)
	empty := flowlog.New(0, time.Second)
	canceledCtx, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name string
		call func() error
		want []error
	}{
		{
			"BuildSignatures nil log",
			func() error {
				_, err := flowdiff.BuildSignatures(context.Background(), nil, flowdiff.Options{})
				return err
			},
			[]error{flowdiff.ErrEmptyLog},
		},
		{
			"BuildSignatures empty log",
			func() error {
				_, err := flowdiff.BuildSignatures(context.Background(), empty, flowdiff.Options{})
				return err
			},
			[]error{flowdiff.ErrEmptyLog},
		},
		{
			"Compare nil baseline",
			func() error {
				_, err := flowdiff.Compare(context.Background(), nil, log, nil, flowdiff.Thresholds{}, flowdiff.Options{})
				return err
			},
			[]error{flowdiff.ErrNoBaseline},
		},
		{
			"Compare empty baseline",
			func() error {
				_, err := flowdiff.Compare(context.Background(), empty, log, nil, flowdiff.Thresholds{}, flowdiff.Options{})
				return err
			},
			[]error{flowdiff.ErrNoBaseline},
		},
		{
			"Compare nil current",
			func() error {
				_, err := flowdiff.Compare(context.Background(), log, nil, nil, flowdiff.Thresholds{}, flowdiff.Options{})
				return err
			},
			[]error{flowdiff.ErrEmptyLog},
		},
		{
			"NewMonitor nil baseline",
			func() error {
				_, err := flowdiff.NewMonitor(context.Background(), nil, time.Minute, nil, flowdiff.Thresholds{}, flowdiff.Options{})
				return err
			},
			[]error{flowdiff.ErrNoBaseline},
		},
		{
			"BuildSignaturesContext canceled",
			func() error {
				_, err := flowdiff.BuildSignatures(canceledCtx, log, flowdiff.Options{})
				return err
			},
			[]error{flowdiff.ErrCanceled, context.Canceled},
		},
		{
			"CompareContext canceled",
			func() error {
				_, err := flowdiff.Compare(canceledCtx, log, log, nil, flowdiff.Thresholds{}, flowdiff.Options{})
				return err
			},
			[]error{flowdiff.ErrCanceled, context.Canceled},
		},
		{
			"MineTaskContext canceled",
			func() error {
				_, err := flowdiff.MineTask(canceledCtx, "toy", taskRuns(), flowdiff.TaskConfig{})
				return err
			},
			[]error{flowdiff.ErrCanceled, context.Canceled},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			for _, want := range tc.want {
				if !errors.Is(err, want) {
					t.Errorf("error %q does not wrap %q", err, want)
				}
			}
		})
	}
}

// TestCanceledBuildDrainsGoroutines checks the pool-drain contract: a
// canceled BuildSignaturesContext returns ErrCanceled and leaves no
// worker goroutines behind.
func TestCanceledBuildDrainsGoroutines(t *testing.T) {
	log := synthThreeTierLog(50_000)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := flowdiff.BuildSignatures(ctx, log, flowdiff.Options{Parallelism: 4}); !errors.Is(err, flowdiff.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestObsCountersDeterministicAcrossParallelism pins the determinism
// contract stated in the obs package doc: every counter outside the
// "parallel." namespace records a quantity that is identical for every
// Options.Parallelism setting.
func TestObsCountersDeterministicAcrossParallelism(t *testing.T) {
	log := synthThreeTierLog(20_000)
	var want map[string]int64
	wantP := 0
	for _, p := range []int{1, 2, 4, 7} {
		reg := obs.New()
		ctx := obs.WithRegistry(context.Background(), reg)
		if _, err := flowdiff.BuildSignatures(ctx, log, flowdiff.Options{Parallelism: p}); err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		got := make(map[string]int64)
		for name, v := range reg.Snapshot().Counters {
			if strings.HasPrefix(name, "parallel.") {
				// Dispatch counts depend on which fan-out path ran
				// (serial fast paths bypass the pool entirely).
				continue
			}
			got[name] = v
		}
		if len(got) == 0 {
			t.Fatalf("parallelism %d: no deterministic counters recorded", p)
		}
		if want == nil {
			want, wantP = got, p
			continue
		}
		if !maps.Equal(want, got) {
			t.Errorf("counters differ: parallelism %d -> %v, parallelism %d -> %v", wantP, want, p, got)
		}
	}
}

// TestReportIdenticalWithObsOnOff pins the "observability never changes
// behavior" contract: the diagnosis report is identical whether metrics
// are recorded into a live registry or discarded via a nil one.
func TestReportIdenticalWithObsOnOff(t *testing.T) {
	l1 := synthThreeTierStream(0, 2*time.Minute, 10_000)
	l2 := synthThreeTierStream(0, 2*time.Minute, 14_000)
	run := func(ctx context.Context) string {
		rep, err := flowdiff.Compare(ctx, l1, l2, nil, flowdiff.Thresholds{}, flowdiff.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", rep)
	}
	on := run(obs.WithRegistry(context.Background(), obs.New()))
	off := run(obs.WithRegistry(context.Background(), nil))
	if on != off {
		t.Errorf("report differs with obs on vs off:\non:  %.400s\noff: %.400s", on, off)
	}
}

// TestMetricsPopulatedAfterCompare checks the end-to-end wiring: one
// Compare leaves non-zero stage timings, pool occupancy, and counters
// in the registry traveling in ctx — what /metrics then serves.
func TestMetricsPopulatedAfterCompare(t *testing.T) {
	reg := obs.New()
	ctx := obs.WithRegistry(context.Background(), reg)
	l1 := synthThreeTierLog(10_000)
	l2 := synthThreeTierLog(12_000)
	if _, err := flowdiff.Compare(ctx, l1, l2, nil, flowdiff.Thresholds{}, flowdiff.Options{}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, span := range []string{
		"span.flowdiff.compare", "span.flowdiff.build", "span.signature.extract",
		"span.signature.app", "span.signature.infra", "span.signature.stability",
		"span.diff.compare",
	} {
		if h, ok := snap.Histograms[span]; !ok || h.Count == 0 {
			t.Errorf("span %s not recorded (snapshot %+v)", span, h)
		}
	}
	if h := snap.Histograms["span.flowdiff.compare"]; h.SumNS <= 0 {
		t.Errorf("span.flowdiff.compare has zero duration: %+v", h)
	}
	if g := snap.Gauges["parallel.active"]; g.Max < 1 {
		t.Errorf("pool occupancy never observed: %+v", g)
	}
	for _, c := range []string{"signature.occurrences", "signature.groups", "signature.intervals"} {
		if snap.Counters[c] == 0 {
			t.Errorf("counter %s is zero", c)
		}
	}
}

// TestWithWorkersOverride checks that Options.WithWorkers overrides
// both the top-level knob and an explicit signature-level setting.
func TestWithWorkersOverride(t *testing.T) {
	opts := flowdiff.Options{Parallelism: 4}
	opts.Signature.Parallelism = 2
	got := opts.WithWorkers(1)
	if got.Parallelism != 1 || got.Signature.Parallelism != 1 {
		t.Errorf("WithWorkers(1) = {Parallelism: %d, Signature.Parallelism: %d}, want both 1",
			got.Parallelism, got.Signature.Parallelism)
	}
	if opts.Parallelism != 4 || opts.Signature.Parallelism != 2 {
		t.Errorf("WithWorkers mutated the receiver: %+v", opts)
	}
}
