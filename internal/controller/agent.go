package controller

import (
	"fmt"
	"net"
	"sync"
	"time"

	"flowdiff/internal/openflow"
	"flowdiff/internal/switchsim"
)

// SwitchAgent exposes a simulated datapath (switchsim.Switch) to a remote
// controller over a real TCP OpenFlow connection. It is the counterpart
// of Server: the agent performs the Hello/Features handshake, reports
// table misses as PacketIn (with the packet's ofp_match as payload),
// applies incoming FlowMods to its flow table, and emits FlowRemoved when
// entries expire.
type SwitchAgent struct {
	sw    *switchsim.Switch
	conn  net.Conn
	r     *openflow.Reader
	w     *openflow.Writer
	epoch time.Time

	mu      sync.Mutex
	nextXID uint32
	// installed broadcasts table updates so tests can wait for a FlowMod
	// to land without polling.
	installed chan struct{}
}

// DefaultDialTimeout bounds connection establishment plus handshake in
// Dial.
const DefaultDialTimeout = 10 * time.Second

// Dial connects the switch to a controller at addr and completes the
// handshake, bounded by DefaultDialTimeout.
func Dial(addr string, sw *switchsim.Switch) (*SwitchAgent, error) {
	return DialTimeout(addr, sw, DefaultDialTimeout)
}

// DialTimeout is Dial with an explicit bound on connect + handshake.
func DialTimeout(addr string, sw *switchsim.Switch, timeout time.Duration) (*SwitchAgent, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("controller: dialing %s: %w", addr, err)
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		_ = conn.Close() // best-effort cleanup: the dial error is what the caller needs
		return nil, fmt.Errorf("controller: setting handshake deadline: %w", err)
	}
	a := &SwitchAgent{
		sw:        sw,
		conn:      conn,
		r:         openflow.NewReader(conn),
		w:         openflow.NewWriter(conn),
		epoch:     time.Now(),
		installed: make(chan struct{}, 16),
	}
	sw.OnFlowRemoved(a.sendFlowRemoved)
	if err := a.handshake(); err != nil {
		_ = conn.Close() // best-effort cleanup: the dial error is what the caller needs
		return nil, err
	}
	// Clear the handshake deadline for the steady-state message loop.
	if err := conn.SetDeadline(time.Time{}); err != nil {
		_ = conn.Close() // best-effort cleanup: the dial error is what the caller needs
		return nil, fmt.Errorf("controller: clearing deadline: %w", err)
	}
	return a, nil
}

func (a *SwitchAgent) handshake() error {
	// Server speaks first with Hello; reply, then answer FeaturesRequest.
	msg, err := a.r.ReadMessage()
	if err != nil {
		return fmt.Errorf("controller: agent reading hello: %w", err)
	}
	if msg.MsgType() != openflow.TypeHello {
		return fmt.Errorf("controller: agent expected HELLO, got %v", msg.MsgType())
	}
	if err := a.w.WriteMessage(&openflow.Hello{XID: a.xid()}); err != nil {
		return err
	}
	msg, err = a.r.ReadMessage()
	if err != nil {
		return fmt.Errorf("controller: agent reading features request: %w", err)
	}
	req, ok := msg.(*openflow.FeaturesRequest)
	if !ok {
		return fmt.Errorf("controller: agent expected FEATURES_REQUEST, got %v", msg.MsgType())
	}
	reply := &openflow.FeaturesReply{
		XID:        req.XID,
		DatapathID: a.sw.DPID,
		NBuffers:   256,
		NTables:    1,
	}
	return a.w.WriteMessage(reply)
}

func (a *SwitchAgent) xid() uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextXID++
	return a.nextXID
}

func (a *SwitchAgent) now() time.Duration { return time.Since(a.epoch) }

// Run processes controller messages until the connection closes. Call it
// in its own goroutine; it returns the terminal read error.
func (a *SwitchAgent) Run() error {
	for {
		msg, err := a.r.ReadMessage()
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case *openflow.EchoRequest:
			if err := a.w.WriteMessage(&openflow.EchoReply{XID: m.XID, Data: m.Data}); err != nil {
				return err
			}
		case *openflow.FlowMod:
			if err := a.applyFlowMod(m); err != nil {
				return err
			}
		default:
			// Ignore message types the agent does not model.
		}
	}
}

func (a *SwitchAgent) applyFlowMod(m *openflow.FlowMod) error {
	outPort := uint16(0)
	for _, act := range m.Actions {
		if o, ok := act.(openflow.ActionOutput); ok {
			outPort = o.Port
			break
		}
	}
	e := &switchsim.Entry{
		Match:         m.Match,
		Priority:      m.Priority,
		OutPort:       outPort,
		Cookie:        m.Cookie,
		IdleTimeout:   time.Duration(m.IdleTimeout) * time.Second,
		HardTimeout:   time.Duration(m.HardTimeout) * time.Second,
		NotifyRemoved: m.Flags&openflow.FlowModFlagSendFlowRem != 0,
	}
	a.mu.Lock()
	err := a.sw.Install(e, a.now())
	a.mu.Unlock()
	if err != nil {
		return err
	}
	select {
	case a.installed <- struct{}{}:
	default:
	}
	return nil
}

// WaitInstalled blocks until a FlowMod has been applied or the timeout
// elapses; it reports whether an install was observed.
func (a *SwitchAgent) WaitInstalled(timeout time.Duration) bool {
	select {
	case <-a.installed:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Inject simulates the arrival of a packet at the datapath. On a table
// hit it returns the matched entry; on a miss it sends a PacketIn to the
// controller and returns ok=false.
func (a *SwitchAgent) Inject(pkt openflow.Match, inPort uint16, bytes uint64) (*switchsim.Entry, bool, error) {
	a.mu.Lock()
	var missErr error
	a.sw.OnPacketIn(func(_ *switchsim.Switch, p openflow.Match, in uint16, _ time.Duration) {
		missErr = a.w.WriteMessage(&openflow.PacketIn{
			XID:      a.nextXID + 1, // advanced below; safe under a.mu
			BufferID: openflow.BufferNone,
			TotalLen: uint16(openflow.MatchLen),
			InPort:   in,
			Reason:   openflow.PacketInReasonNoMatch,
			Data:     openflow.MarshalMatchPayload(p),
		})
	})
	a.nextXID++
	e, ok := a.sw.Process(pkt, inPort, bytes, a.now())
	a.mu.Unlock()
	if missErr != nil {
		return nil, false, fmt.Errorf("controller: sending PacketIn: %w", missErr)
	}
	return e, ok, nil
}

// Sweep expires timed-out entries, emitting FlowRemoved messages.
func (a *SwitchAgent) Sweep() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sw.Sweep(a.now())
}

func (a *SwitchAgent) sendFlowRemoved(_ *switchsim.Switch, e *switchsim.Entry, reason uint8, now time.Duration) {
	dur := now - e.Installed
	msg := &openflow.FlowRemoved{
		XID:          a.nextXID, // called with a.mu held via Sweep
		Match:        e.Match,
		Cookie:       e.Cookie,
		Priority:     e.Priority,
		Reason:       reason,
		DurationSec:  uint32(dur / time.Second),
		DurationNsec: uint32(dur % time.Second),
		IdleTimeout:  uint16(e.IdleTimeout / time.Second),
		PacketCount:  e.Packets,
		ByteCount:    e.Bytes,
	}
	// Write errors here surface on the next Run() read; FlowRemoved is
	// advisory.
	_ = a.w.WriteMessage(msg)
}

// Close tears down the connection.
func (a *SwitchAgent) Close() error { return a.conn.Close() }
