// Package controller implements the centralized control plane of a
// flow-based data center: a NOX-like routing logic that reacts to
// PacketIn messages by installing per-hop forwarding rules, the
// deployment modes discussed in the paper's §VI (reactive microflow,
// wildcard, proactive), and a real TCP OpenFlow control channel (Server
// and SwitchAgent) used by the integration tests.
package controller

import (
	"fmt"
	"net/netip"
	"time"

	"flowdiff/internal/openflow"
	"flowdiff/internal/switchsim"
	"flowdiff/internal/topology"
)

// Mode selects the rule-installation strategy (§VI deployment
// considerations).
type Mode int

// Deployment modes.
const (
	// ModeReactive installs one exact-match (microflow) entry per flow,
	// per hop — maximal control-plane visibility.
	ModeReactive Mode = iota
	// ModeWildcard installs host-pair wildcard entries: only the first
	// flow between a pair of hosts triggers control traffic.
	ModeWildcard
	// ModeProactive preinstalls all-pairs rules with no timeouts: no
	// control traffic at all after startup.
	ModeProactive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeReactive:
		return "reactive"
	case ModeWildcard:
		return "wildcard"
	case ModeProactive:
		return "proactive"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// InstallOp asks the data plane to install one flow-table entry.
type InstallOp struct {
	Switch string
	Entry  switchsim.Entry
}

// Logic decides how to react to a table miss. Implementations must be
// deterministic: the simulator replays decisions under a virtual clock.
type Logic interface {
	// PacketIn handles a table miss at switch swID and returns the
	// entries to install. An error means the flow cannot be routed (the
	// packet is dropped).
	PacketIn(swID string, pkt openflow.Match, inPort uint16) ([]InstallOp, error)
}

// ShortestPath is the default routing logic: on a miss it computes the
// shortest path between the packet's hosts and installs a forwarding rule
// on the reporting switch (per-hop reactive setup, as in Figure 3 of the
// paper).
type ShortestPath struct {
	Topo *topology.Topology
	Mode Mode
	// IdleTimeout / HardTimeout are applied to installed entries
	// (seconds granularity on the wire; any duration here).
	IdleTimeout time.Duration
	HardTimeout time.Duration
	// Priority of installed entries.
	Priority uint16

	paths map[pathKey][]topology.Hop
}

type pathKey struct {
	src, dst topology.NodeID
}

// NewShortestPath builds the default logic with the paper's reactive
// deployment: 5 s soft timeout, 60 s hard timeout.
func NewShortestPath(topo *topology.Topology, mode Mode) *ShortestPath {
	return &ShortestPath{
		Topo:        topo,
		Mode:        mode,
		IdleTimeout: 5 * time.Second,
		HardTimeout: 60 * time.Second,
		Priority:    100,
		paths:       make(map[pathKey][]topology.Hop),
	}
}

// InvalidateRoutes clears the path cache; call after topology changes
// (failures, recoveries).
func (l *ShortestPath) InvalidateRoutes() {
	l.paths = make(map[pathKey][]topology.Hop)
}

func (l *ShortestPath) path(src, dst topology.NodeID) ([]topology.Hop, error) {
	k := pathKey{src, dst}
	if p, ok := l.paths[k]; ok {
		if p == nil {
			return nil, fmt.Errorf("controller: no path %s->%s (cached)", src, dst)
		}
		return p, nil
	}
	p, err := l.Topo.Path(src, dst)
	if err != nil {
		l.paths[k] = nil
		return nil, err
	}
	l.paths[k] = p
	return p, nil
}

// PacketIn implements Logic.
func (l *ShortestPath) PacketIn(swID string, pkt openflow.Match, inPort uint16) ([]InstallOp, error) {
	src := netip.AddrFrom4(pkt.NWSrc)
	dst := netip.AddrFrom4(pkt.NWDst)
	srcHost, ok := l.Topo.HostByAddr(src)
	if !ok {
		return nil, fmt.Errorf("controller: unknown source host %v", src)
	}
	dstHost, ok := l.Topo.HostByAddr(dst)
	if !ok {
		return nil, fmt.Errorf("controller: unknown destination host %v", dst)
	}
	hops, err := l.path(srcHost.ID, dstHost.ID)
	if err != nil {
		return nil, fmt.Errorf("controller: routing %v->%v: %w", src, dst, err)
	}
	var outPort uint16
	found := false
	for _, h := range hops {
		if h.Node == topology.NodeID(swID) {
			outPort = h.OutPort
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("controller: switch %s not on path %s->%s", swID, srcHost.ID, dstHost.ID)
	}

	var match openflow.Match
	switch l.Mode {
	case ModeWildcard:
		match = openflow.HostPairMatch(src, dst)
	default:
		match = openflow.ExactMatch(pkt.NWProto, src, dst, pkt.TPSrc, pkt.TPDst)
	}
	op := InstallOp{
		Switch: swID,
		Entry: switchsim.Entry{
			Match:         match,
			Priority:      l.Priority,
			OutPort:       outPort,
			IdleTimeout:   l.IdleTimeout,
			HardTimeout:   l.HardTimeout,
			NotifyRemoved: true,
		},
	}
	return []InstallOp{op}, nil
}

// ProactiveRules computes the all-pairs permanent rules installed at
// startup in ModeProactive. Rules have no timeouts, so they never produce
// FlowRemoved messages.
func (l *ShortestPath) ProactiveRules() ([]InstallOp, error) {
	hosts := l.Topo.Hosts()
	var ops []InstallOp
	for _, a := range hosts {
		for _, b := range hosts {
			if a.ID == b.ID {
				continue
			}
			hops, err := l.path(a.ID, b.ID)
			if err != nil {
				continue // unreachable pair: nothing to install
			}
			for _, h := range l.Topo.SwitchHops(hops) {
				ops = append(ops, InstallOp{
					Switch: string(h.Node),
					Entry: switchsim.Entry{
						Match:    openflow.HostPairMatch(a.Addr, b.Addr),
						Priority: l.Priority,
						OutPort:  h.OutPort,
					},
				})
			}
		}
	}
	return ops, nil
}
