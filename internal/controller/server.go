package controller

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"flowdiff/internal/flowlog"
	"flowdiff/internal/openflow"
)

// Server is a TCP OpenFlow controller. Switches (SwitchAgent or any
// OpenFlow 1.0 speaker following the same conventions) connect, complete
// the Hello/Features handshake, and report PacketIn / FlowRemoved
// messages; the server consults its Logic and replies with FlowMods. All
// control traffic is captured into a flowlog.Log with timestamps relative
// to the server's epoch — the same shape of log the simulator produces, so
// FlowDiff's pipeline runs unchanged on either source.
//
// Convention: because the agents are simulated datapaths, the PacketIn
// payload carries the 40-byte ofp_match of the offending packet instead of
// a raw Ethernet frame.
type Server struct {
	logic Logic
	epoch time.Time

	// resolve maps a datapath id to the topology node id used in logs.
	resolve func(dpid uint64) string

	mu     sync.Mutex
	log    *flowlog.Log
	conns  map[uint64]*serverConn
	closed bool
	ln     net.Listener
	wg     sync.WaitGroup
}

type serverConn struct {
	dpid uint64
	name string
	w    *openflow.Writer
	c    net.Conn
}

// NewServer creates a controller server around the given logic. resolve
// translates datapath ids to node names for logging; nil uses "dpid-N".
func NewServer(logic Logic, resolve func(uint64) string) *Server {
	if resolve == nil {
		resolve = func(d uint64) string { return fmt.Sprintf("dpid-%d", d) }
	}
	return &Server{
		logic:   logic,
		epoch:   time.Now(),
		resolve: resolve,
		log:     flowlog.New(0, 0),
		conns:   make(map[uint64]*serverConn),
	}
}

// Log returns a snapshot of the control-traffic log captured so far.
func (s *Server) Log() *flowlog.Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := flowlog.New(s.log.Start, time.Since(s.epoch))
	out.Events = append(out.Events, s.log.Events...)
	out.Sort()
	return out
}

func (s *Server) now() time.Duration { return time.Since(s.epoch) }

func (s *Server) appendEvent(e flowlog.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.Append(e)
}

// Serve accepts connections on ln until Close is called. It always
// returns a non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.handle(c); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Connection-level failures are expected at shutdown;
				// nothing useful to do beyond dropping the peer.
				_ = err
			}
		}()
	}
}

// Close stops the listener and all connections, and waits for handler
// goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]*serverConn, 0, len(s.conns))
	for _, c := range s.conns {
		//lint:ignore mapiter shutdown closes every connection; the order the peers are dropped in is not observable output
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		_ = c.c.Close() // best-effort: the peer may already be gone at shutdown
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(c net.Conn) error {
	defer c.Close()
	r := openflow.NewReader(c)
	w := openflow.NewWriter(c)

	// Handshake: exchange Hello, then learn the datapath id.
	if err := w.WriteMessage(&openflow.Hello{XID: 1}); err != nil {
		return err
	}
	first, err := r.ReadMessage()
	if err != nil {
		return fmt.Errorf("controller: reading peer hello: %w", err)
	}
	if first.MsgType() != openflow.TypeHello {
		return fmt.Errorf("controller: expected HELLO, got %v", first.MsgType())
	}
	if err := w.WriteMessage(&openflow.FeaturesRequest{XID: 2}); err != nil {
		return err
	}
	featMsg, err := r.ReadMessage()
	if err != nil {
		return fmt.Errorf("controller: reading features: %w", err)
	}
	feat, ok := featMsg.(*openflow.FeaturesReply)
	if !ok {
		return fmt.Errorf("controller: expected FEATURES_REPLY, got %v", featMsg.MsgType())
	}
	name := s.resolve(feat.DatapathID)
	conn := &serverConn{dpid: feat.DatapathID, name: name, w: w, c: c}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.conns[feat.DatapathID] = conn
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, feat.DatapathID)
		s.mu.Unlock()
	}()

	for {
		msg, err := r.ReadMessage()
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case *openflow.EchoRequest:
			if err := w.WriteMessage(&openflow.EchoReply{XID: m.XID, Data: m.Data}); err != nil {
				return err
			}
		case *openflow.PacketIn:
			if err := s.handlePacketIn(conn, m); err != nil {
				return err
			}
		case *openflow.FlowRemoved:
			s.appendEvent(flowlog.Event{
				Time:         s.now(),
				Type:         flowlog.EventFlowRemoved,
				Switch:       conn.name,
				DPID:         conn.dpid,
				Flow:         matchToFlowKey(m.Match),
				Bytes:        m.ByteCount,
				Packets:      m.PacketCount,
				FlowDuration: time.Duration(m.DurationSec)*time.Second + time.Duration(m.DurationNsec),
				Reason:       m.Reason,
			})
		case *openflow.PortStatus:
			s.appendEvent(flowlog.Event{
				Time:   s.now(),
				Type:   flowlog.EventPortStatus,
				Switch: conn.name,
				DPID:   conn.dpid,
				InPort: m.Desc.PortNo,
				Reason: m.Reason,
			})
		default:
			// Ignore other message types.
		}
	}
}

func (s *Server) handlePacketIn(conn *serverConn, m *openflow.PacketIn) error {
	recvAt := s.now()
	pkt, err := openflowMatchFromPayload(m.Data)
	if err != nil {
		return fmt.Errorf("controller: PACKET_IN payload: %w", err)
	}
	s.appendEvent(flowlog.Event{
		Time:   recvAt,
		Type:   flowlog.EventPacketIn,
		Switch: conn.name,
		DPID:   conn.dpid,
		Flow:   matchToFlowKey(pkt),
		InPort: m.InPort,
		Reason: m.Reason,
	})
	ops, err := s.logic.PacketIn(conn.name, pkt, m.InPort)
	if err != nil {
		// Unroutable packet: drop silently, as NOX does for unknown hosts.
		return nil
	}
	for _, op := range ops {
		target := conn
		if op.Switch != conn.name {
			s.mu.Lock()
			for _, c := range s.conns {
				if c.name == op.Switch {
					target = c
					break
				}
			}
			s.mu.Unlock()
		}
		fm := &openflow.FlowMod{
			XID:         m.XID,
			Match:       op.Entry.Match,
			Command:     openflow.FlowModAdd,
			IdleTimeout: uint16(op.Entry.IdleTimeout / time.Second),
			HardTimeout: uint16(op.Entry.HardTimeout / time.Second),
			Priority:    op.Entry.Priority,
			BufferID:    m.BufferID,
			OutPort:     openflow.PortNone,
			Flags:       openflow.FlowModFlagSendFlowRem,
			Actions:     []openflow.Action{openflow.ActionOutput{Port: op.Entry.OutPort}},
		}
		if err := target.w.WriteMessage(fm); err != nil {
			return err
		}
		s.appendEvent(flowlog.Event{
			Time:    s.now(),
			Type:    flowlog.EventFlowMod,
			Switch:  op.Switch,
			DPID:    target.dpid,
			Flow:    matchToFlowKey(op.Entry.Match),
			OutPort: op.Entry.OutPort,
		})
	}
	return nil
}

// matchToFlowKey projects an OpenFlow match onto the log's 5-tuple key.
func matchToFlowKey(m openflow.Match) flowlog.FlowKey {
	return flowlog.FlowKey{
		Proto:   m.NWProto,
		Src:     netip.AddrFrom4(m.NWSrc),
		Dst:     netip.AddrFrom4(m.NWDst),
		SrcPort: m.TPSrc,
		DstPort: m.TPDst,
	}
}

// openflowMatchFromPayload decodes the simulated packet payload (a
// marshaled ofp_match) carried in PacketIn.Data.
func openflowMatchFromPayload(data []byte) (openflow.Match, error) {
	if len(data) < openflow.MatchLen {
		return openflow.Match{}, fmt.Errorf("payload too short: %d bytes", len(data))
	}
	return openflow.UnmarshalMatchPayload(data)
}
