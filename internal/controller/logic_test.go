package controller

import (
	"net/netip"
	"testing"
	"time"

	"flowdiff/internal/openflow"
	"flowdiff/internal/topology"
)

func labTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.Lab()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func hostAddr(t *testing.T, topo *topology.Topology, id topology.NodeID) netip.Addr {
	t.Helper()
	n, ok := topo.Node(id)
	if !ok {
		t.Fatalf("missing node %s", id)
	}
	return n.Addr
}

func TestShortestPathInstallsOnReportingSwitch(t *testing.T) {
	topo := labTopo(t)
	l := NewShortestPath(topo, ModeReactive)
	src := hostAddr(t, topo, "S1")
	dst := hostAddr(t, topo, "S6")
	pkt := openflow.ExactMatch(6, src, dst, 5000, 80)
	pkt.Wildcards = 0

	hops, err := topo.Path("S1", "S6")
	if err != nil {
		t.Fatal(err)
	}
	swHops := topo.SwitchHops(hops)
	if len(swHops) == 0 {
		t.Fatal("no switch hops")
	}
	for _, h := range swHops {
		ops, err := l.PacketIn(string(h.Node), pkt, h.InPort)
		if err != nil {
			t.Fatalf("PacketIn at %s: %v", h.Node, err)
		}
		if len(ops) != 1 {
			t.Fatalf("got %d ops, want 1", len(ops))
		}
		op := ops[0]
		if op.Switch != string(h.Node) {
			t.Errorf("installed on %s, want %s", op.Switch, h.Node)
		}
		if op.Entry.OutPort != h.OutPort {
			t.Errorf("out port %d, want %d", op.Entry.OutPort, h.OutPort)
		}
		if !op.Entry.Match.IsExact() {
			t.Error("reactive mode should install exact-match entries")
		}
		if op.Entry.IdleTimeout != 5*time.Second || op.Entry.HardTimeout != 60*time.Second {
			t.Errorf("timeouts = %v/%v", op.Entry.IdleTimeout, op.Entry.HardTimeout)
		}
		if !op.Entry.NotifyRemoved {
			t.Error("reactive entries should request FlowRemoved")
		}
	}
}

func TestWildcardModeInstallsHostPair(t *testing.T) {
	topo := labTopo(t)
	l := NewShortestPath(topo, ModeWildcard)
	src := hostAddr(t, topo, "S1")
	dst := hostAddr(t, topo, "S6")
	pkt := openflow.ExactMatch(6, src, dst, 5000, 80)
	pkt.Wildcards = 0
	ops, err := l.PacketIn("sw2", pkt, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := ops[0].Entry.Match
	if m.IsExact() {
		t.Error("wildcard mode should not install exact entries")
	}
	// The installed wildcard must cover a different flow between the same
	// hosts.
	other := openflow.ExactMatch(6, src, dst, 6000, 443)
	other.Wildcards = 0
	if !m.Matches(other) {
		t.Error("host-pair entry should match other flows between the pair")
	}
}

func TestPacketInErrors(t *testing.T) {
	topo := labTopo(t)
	l := NewShortestPath(topo, ModeReactive)
	src := hostAddr(t, topo, "S1")
	dst := hostAddr(t, topo, "S6")

	t.Run("unknown source", func(t *testing.T) {
		pkt := openflow.ExactMatch(6, netip.MustParseAddr("1.2.3.4"), dst, 1, 2)
		if _, err := l.PacketIn("sw2", pkt, 1); err == nil {
			t.Error("want error for unknown source host")
		}
	})
	t.Run("unknown destination", func(t *testing.T) {
		pkt := openflow.ExactMatch(6, src, netip.MustParseAddr("1.2.3.4"), 1, 2)
		if _, err := l.PacketIn("sw2", pkt, 1); err == nil {
			t.Error("want error for unknown destination host")
		}
	})
	t.Run("switch off path", func(t *testing.T) {
		pkt := openflow.ExactMatch(6, src, dst, 1, 2)
		if _, err := l.PacketIn("sw5", pkt, 1); err == nil {
			t.Error("want error when reporting switch is not on the path")
		}
	})
	t.Run("destination down", func(t *testing.T) {
		n, _ := topo.Node("S6")
		n.Down = true
		defer func() { n.Down = false; l.InvalidateRoutes() }()
		l.InvalidateRoutes()
		pkt := openflow.ExactMatch(6, src, dst, 1, 2)
		if _, err := l.PacketIn("sw2", pkt, 1); err == nil {
			t.Error("want error when destination host is down")
		}
	})
}

func TestRouteCacheInvalidation(t *testing.T) {
	topo := labTopo(t)
	l := NewShortestPath(topo, ModeReactive)
	src := hostAddr(t, topo, "S1")
	dst := hostAddr(t, topo, "S6")
	pkt := openflow.ExactMatch(6, src, dst, 1, 2)
	if _, err := l.PacketIn("sw2", pkt, 1); err != nil {
		t.Fatal(err)
	}
	// Fail the destination: the cached path keeps working until routes are
	// invalidated (matching real controllers that recompute lazily).
	n, _ := topo.Node("S6")
	n.Down = true
	if _, err := l.PacketIn("sw2", pkt, 1); err != nil {
		t.Fatalf("cached route should still answer: %v", err)
	}
	l.InvalidateRoutes()
	if _, err := l.PacketIn("sw2", pkt, 1); err == nil {
		t.Error("after invalidation, routing to a down host should fail")
	}
	n.Down = false
}

func TestProactiveRules(t *testing.T) {
	topo := labTopo(t)
	l := NewShortestPath(topo, ModeProactive)
	ops, err := l.ProactiveRules()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 {
		t.Fatal("no proactive rules generated")
	}
	for _, op := range ops {
		if op.Entry.IdleTimeout != 0 || op.Entry.HardTimeout != 0 {
			t.Fatal("proactive rules must not expire")
		}
		if op.Entry.NotifyRemoved {
			t.Fatal("proactive rules must not emit FlowRemoved")
		}
		n, ok := topo.Node(topology.NodeID(op.Switch))
		if !ok || !n.OpenFlow {
			t.Fatalf("rule targets non-OpenFlow node %q", op.Switch)
		}
	}
	// Every reachable host pair must have a rule on every OpenFlow switch
	// of its path. Spot-check one pair.
	src := hostAddr(t, topo, "S1")
	dst := hostAddr(t, topo, "S6")
	hops, _ := topo.Path("S1", "S6")
	for _, h := range topo.SwitchHops(hops) {
		found := false
		for _, op := range ops {
			if op.Switch == string(h.Node) && op.Entry.Match.Matches(func() openflow.Match {
				p := openflow.ExactMatch(6, src, dst, 42, 80)
				p.Wildcards = 0
				return p
			}()) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no proactive rule for S1->S6 on %s", h.Node)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeReactive.String() != "reactive" || ModeWildcard.String() != "wildcard" ||
		ModeProactive.String() != "proactive" {
		t.Error("mode names wrong")
	}
}
