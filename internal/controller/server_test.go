package controller

import (
	"net"
	"testing"
	"time"

	"flowdiff/internal/flowlog"
	"flowdiff/internal/openflow"
	"flowdiff/internal/switchsim"
	"flowdiff/internal/topology"
)

// startServer brings up a TCP controller over the lab topology and
// returns its address plus a shutdown func.
func startServer(t *testing.T, topo *topology.Topology) (*Server, string) {
	t.Helper()
	return startServerWithLogic(t, topo, NewShortestPath(topo, ModeReactive))
}

func startServerWithLogic(t *testing.T, topo *topology.Topology, logic Logic) (*Server, string) {
	t.Helper()
	resolve := func(dpid uint64) string {
		if n, ok := topo.SwitchByDPID(dpid); ok {
			return string(n.ID)
		}
		return "unknown"
	}
	srv := NewServer(logic, resolve)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// dialAgent connects a simulated datapath for the given topology switch.
func dialAgent(t *testing.T, topo *topology.Topology, addr string, id topology.NodeID) *SwitchAgent {
	t.Helper()
	n, ok := topo.Node(id)
	if !ok {
		t.Fatalf("unknown switch %s", id)
	}
	sw := switchsim.New(string(id), n.DPID)
	agent, err := Dial(addr, sw)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = agent.Run() }()
	t.Cleanup(func() { agent.Close() })
	return agent
}

func TestTCPControlChannelEndToEnd(t *testing.T) {
	topo := labTopo(t)
	srv, addr := startServer(t, topo)

	// Connect agents for the switches on the S1->S6 path (sw2, sw1, sw3).
	hops, err := topo.Path("S1", "S6")
	if err != nil {
		t.Fatal(err)
	}
	agents := make(map[topology.NodeID]*SwitchAgent)
	var swHops []topology.Hop
	for _, h := range topo.SwitchHops(hops) {
		agents[h.Node] = dialAgent(t, topo, addr, h.Node)
		swHops = append(swHops, h)
	}

	src := hostAddr(t, topo, "S1")
	dst := hostAddr(t, topo, "S6")
	pkt := openflow.ExactMatch(6, src, dst, 4242, 80)
	pkt.Wildcards = 0

	// Walk the first packet hop by hop, as in Figure 3 of the paper: each
	// switch misses, asks the controller, gets a FlowMod, then forwards.
	for _, h := range swHops {
		a := agents[h.Node]
		if _, hit, err := a.Inject(pkt, h.InPort, 1500); err != nil {
			t.Fatalf("inject at %s: %v", h.Node, err)
		} else if hit {
			t.Fatalf("first packet should miss at %s", h.Node)
		}
		if !a.WaitInstalled(2 * time.Second) {
			t.Fatalf("no FlowMod landed at %s", h.Node)
		}
		if e, hit, err := a.Inject(pkt, h.InPort, 1500); err != nil || !hit {
			t.Fatalf("second packet should hit at %s (err=%v)", h.Node, err)
		} else if e.OutPort != h.OutPort {
			t.Fatalf("entry at %s forwards to %d, want %d", h.Node, e.OutPort, h.OutPort)
		}
	}

	// The control log must show one PacketIn + one FlowMod per switch hop.
	deadline := time.Now().Add(2 * time.Second)
	var log *flowlog.Log
	for {
		log = srv.Log()
		if len(log.ByType(flowlog.EventPacketIn).Events) == len(swHops) &&
			len(log.ByType(flowlog.EventFlowMod).Events) == len(swHops) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("log incomplete: %d PacketIn, %d FlowMod, want %d each",
				len(log.ByType(flowlog.EventPacketIn).Events),
				len(log.ByType(flowlog.EventFlowMod).Events), len(swHops))
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, e := range log.ByType(flowlog.EventPacketIn).Events {
		if e.Flow.Src != src || e.Flow.Dst != dst || e.Flow.DstPort != 80 {
			t.Errorf("PacketIn flow key = %v", e.Flow)
		}
	}
	// FlowMod events must each follow their PacketIn.
	pis := log.ByType(flowlog.EventPacketIn).Events
	fms := log.ByType(flowlog.EventFlowMod).Events
	for i := range pis {
		if fms[i].Time < pis[i].Time {
			t.Errorf("FlowMod %d at %v precedes PacketIn at %v", i, fms[i].Time, pis[i].Time)
		}
	}
}

func TestTCPFlowRemovedReachesLog(t *testing.T) {
	topo := labTopo(t)
	logic := NewShortestPath(topo, ModeReactive)
	logic.IdleTimeout = time.Second // keep the wall-clock wait short
	srv, addr := startServerWithLogic(t, topo, logic)
	agent := dialAgent(t, topo, addr, "sw2")

	src := hostAddr(t, topo, "S1")
	dst := hostAddr(t, topo, "S2")
	pkt := openflow.ExactMatch(6, src, dst, 999, 80)
	pkt.Wildcards = 0
	if _, hit, err := agent.Inject(pkt, 1, 100); err != nil || hit {
		t.Fatalf("inject: hit=%v err=%v", hit, err)
	}
	if !agent.WaitInstalled(2 * time.Second) {
		t.Fatal("no FlowMod")
	}
	// A second packet hits the new entry so the final counters are
	// non-zero.
	if _, hit, err := agent.Inject(pkt, 1, 100); err != nil || !hit {
		t.Fatalf("second inject: hit=%v err=%v", hit, err)
	}

	// Sweep until the 1 s idle timeout expires the entry.
	deadline := time.Now().Add(4 * time.Second)
	for agent.Sweep() == 0 {
		if time.Now().After(deadline) {
			t.Skip("idle timeout did not elapse in test budget")
		}
		time.Sleep(200 * time.Millisecond)
	}
	// Wait for the FlowRemoved to arrive at the server.
	deadline = time.Now().Add(2 * time.Second)
	for {
		log := srv.Log()
		frs := log.ByType(flowlog.EventFlowRemoved).Events
		if len(frs) > 0 {
			fr := frs[0]
			if fr.Switch != "sw2" || fr.Bytes == 0 {
				t.Errorf("FlowRemoved = %+v", fr)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("FlowRemoved never reached the controller log")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerRejectsAfterClose(t *testing.T) {
	topo := labTopo(t)
	srv, addr := startServer(t, topo)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	n, _ := topo.Node("sw2")
	sw := switchsim.New("sw2", n.DPID)
	if _, err := DialTimeout(addr, sw, 500*time.Millisecond); err == nil {
		t.Error("dial after close should fail")
	}
}
