package stats

import (
	"math"
	"math/rand"
	"time"
)

// Poisson draws one sample from a Poisson distribution with the given mean
// using Knuth's multiplication method for small means and a normal
// approximation above 30 to stay O(1).
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction.
		x := rng.NormFloat64()*math.Sqrt(mean) + mean + 0.5
		if x < 0 {
			return 0
		}
		return int(x)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Exponential draws an exponentially distributed duration with the given
// mean. A non-positive mean yields 0.
func Exponential(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// LogNormal draws a lognormally distributed duration whose *distribution*
// (not log-space parameters) has the given mean and standard deviation.
// This matches the paper's scalability workload: ON/OFF periods lognormal
// with mean 100 ms and standard deviation 30 ms (§V, citing Benson et al.).
func LogNormal(rng *rand.Rand, mean, stddev time.Duration) time.Duration {
	m := float64(mean)
	s := float64(stddev)
	if m <= 0 {
		return 0
	}
	if s <= 0 {
		return mean
	}
	// Convert desired distribution mean/stddev to log-space mu/sigma.
	v := s * s
	sigma2 := math.Log(1 + v/(m*m))
	mu := math.Log(m) - sigma2/2
	x := math.Exp(mu + math.Sqrt(sigma2)*rng.NormFloat64())
	return time.Duration(x)
}

// OnOffSource produces alternating ON/OFF period durations with lognormal
// lengths, the traffic pattern Benson et al. measured in production data
// centers and the paper adopts for its scalability simulation.
type OnOffSource struct {
	rng     *rand.Rand
	MeanOn  time.Duration
	StdOn   time.Duration
	MeanOff time.Duration
	StdOff  time.Duration
	on      bool
}

// NewOnOffSource creates a source that starts in the OFF state so the first
// transition yields an ON period.
func NewOnOffSource(rng *rand.Rand, meanOn, stdOn, meanOff, stdOff time.Duration) *OnOffSource {
	return &OnOffSource{rng: rng, MeanOn: meanOn, StdOn: stdOn, MeanOff: meanOff, StdOff: stdOff}
}

// Next returns the next period's duration and whether it is an ON period.
func (s *OnOffSource) Next() (time.Duration, bool) {
	s.on = !s.on
	if s.on {
		return LogNormal(s.rng, s.MeanOn, s.StdOn), true
	}
	return LogNormal(s.rng, s.MeanOff, s.StdOff), false
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac]. It is
// used to perturb per-run task timing so mined task signatures must cope
// with realistic variation.
func Jitter(rng *rand.Rand, d time.Duration, frac float64) time.Duration {
	if frac <= 0 {
		return d
	}
	scale := 1 + frac*(2*rng.Float64()-1)
	if scale < 0 {
		scale = 0
	}
	return time.Duration(float64(d) * scale)
}
