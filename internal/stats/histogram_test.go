package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{5, 15, 25, 45, 45, 45, 100} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	// Buckets: [0,20)=2 [20,40)=1 [40,60)=3 [60,80)=0 [80,100)=0 [100,120)=1
	wantCounts := []int{2, 1, 3, 0, 0, 1}
	if len(h.Counts) != len(wantCounts) {
		t.Fatalf("len(Counts) = %d, want %d", len(h.Counts), len(wantCounts))
	}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("Counts[%d] = %d, want %d", i, h.Counts[i], w)
		}
	}
	peak, ok := h.DominantPeak()
	if !ok {
		t.Fatal("no dominant peak")
	}
	if peak.Bucket != 2 {
		t.Errorf("dominant peak bucket = %d, want 2", peak.Bucket)
	}
	if !almostEqual(peak.Value, 50, 1e-9) {
		t.Errorf("dominant peak center = %v, want 50", peak.Value)
	}
}

func TestHistogramInvalidWidth(t *testing.T) {
	for _, w := range []float64{0, -1} {
		if _, err := NewHistogram(0, w); err == nil {
			t.Errorf("NewHistogram(width=%v) succeeded, want error", w)
		}
	}
}

func TestHistogramBelowOriginClamped(t *testing.T) {
	h, _ := NewHistogram(10, 5)
	h.Add(-100)
	h.Add(3)
	if len(h.Counts) != 1 || h.Counts[0] != 2 {
		t.Errorf("below-origin values not clamped into bucket 0: %v", h.Counts)
	}
}

func TestHistogramFrequenciesSumToOne(t *testing.T) {
	f := func(raw []uint8) bool {
		h, _ := NewHistogram(0, 7)
		for _, r := range raw {
			h.Add(float64(r))
		}
		fs := h.Frequencies()
		if len(raw) == 0 {
			return fs == nil
		}
		var sum float64
		for _, x := range fs {
			sum += x
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeaksOrderedAndLocalMaxima(t *testing.T) {
	h, _ := NewHistogram(0, 10)
	// Two modes: around 15 (3 obs) and around 55 (5 obs).
	for _, x := range []float64{12, 14, 16, 52, 53, 54, 55, 56, 31} {
		h.Add(x)
	}
	peaks := h.Peaks(0.1)
	if len(peaks) < 2 {
		t.Fatalf("got %d peaks, want >= 2", len(peaks))
	}
	if peaks[0].Bucket != 5 {
		t.Errorf("top peak bucket = %d, want 5", peaks[0].Bucket)
	}
	if peaks[1].Bucket != 1 {
		t.Errorf("second peak bucket = %d, want 1", peaks[1].Bucket)
	}
	for i := 1; i < len(peaks); i++ {
		if peaks[i].Frac > peaks[i-1].Frac {
			t.Error("peaks not sorted by descending frequency")
		}
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2, 2})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i].X != want[i].X || !almostEqual(pts[i].Fraction, want[i].Fraction, 1e-12) {
			t.Errorf("point %d = %+v, want %+v", i, pts[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	cdf := CDF([]float64{10, 20, 30})
	tests := []struct {
		x    float64
		want float64
	}{
		{5, 0},
		{10, 1.0 / 3},
		{15, 1.0 / 3},
		{30, 1},
		{99, 1},
	}
	for _, tt := range tests {
		if got := CDFAt(cdf, tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("CDFAt(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFProperties(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		pts := CDF(xs)
		if len(xs) == 0 {
			return pts == nil
		}
		// Monotone nondecreasing in both X and Fraction; last fraction is 1.
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].Fraction < pts[i-1].Fraction {
				return false
			}
		}
		return almostEqual(pts[len(pts)-1].Fraction, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSamplersDeterministic(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		if Poisson(a, 5) != Poisson(b, 5) {
			t.Fatal("Poisson not deterministic for equal seeds")
		}
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, mean := range []float64{0.5, 3, 12, 80} {
		var w Welford
		for i := 0; i < 20000; i++ {
			w.Add(float64(Poisson(rng, mean)))
		}
		if !almostEqual(w.Mean(), mean, mean*0.05+0.1) {
			t.Errorf("Poisson(mean=%v) empirical mean = %v", mean, w.Mean())
		}
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -3) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestLogNormalMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mean := 100e6 // 100ms in ns
	std := 30e6
	var w Welford
	for i := 0; i < 50000; i++ {
		w.Add(float64(LogNormal(rng, 100_000_000, 30_000_000)))
	}
	if !almostEqual(w.Mean(), mean, mean*0.03) {
		t.Errorf("LogNormal mean = %v, want ~%v", w.Mean(), mean)
	}
	if !almostEqual(w.StdDev(), std, std*0.10) {
		t.Errorf("LogNormal stddev = %v, want ~%v", w.StdDev(), std)
	}
}

func TestOnOffSourceAlternates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := NewOnOffSource(rng, 100, 30, 100, 30)
	_, on := src.Next()
	if !on {
		t.Fatal("first period should be ON")
	}
	for i := 0; i < 10; i++ {
		_, next := src.Next()
		if next == on {
			t.Fatal("ON/OFF source failed to alternate")
		}
		on = next
	}
}

func TestJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(ms uint16) bool {
		d := time.Duration(ms) * time.Millisecond
		j := Jitter(rng, d, 0.2)
		lo := float64(d) * 0.8
		hi := float64(d) * 1.2
		return float64(j) >= lo-1 && float64(j) <= hi+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
