// Package stats provides the statistical primitives FlowDiff's signature
// pipeline is built on: descriptive statistics, histograms and CDFs, peak
// detection in empirical distributions, Pearson and partial correlation,
// the chi-square fitness test, and seeded random samplers for workload
// generation (Poisson, exponential, lognormal, ON/OFF).
//
// Everything in this package is deterministic given its inputs; samplers
// take an explicit *rand.Rand so simulations are reproducible.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a computation needs more samples
// than were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Summary holds descriptive statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Sum    float64
}

// Summarize computes descriptive statistics over xs using Welford's
// single-pass algorithm. A zero-length input yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	if len(xs) == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var mean, m2 float64
	for i, x := range xs {
		delta := x - mean
		mean += delta / float64(i+1)
		m2 += delta * (x - mean)
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		s.Sum += x
	}
	s.Count = len(xs)
	s.Mean = mean
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(m2 / float64(len(xs)-1))
	}
	return s
}

// Merge combines two summaries into the summary Summarize would have
// produced over the concatenated samples (parallel Welford merge on the
// second moments recovered from the standard deviations).
func (s Summary) Merge(o Summary) Summary {
	if o.Count == 0 {
		return s
	}
	if s.Count == 0 {
		return o
	}
	n := s.Count + o.Count
	delta := o.Mean - s.Mean
	m2 := s.m2() + o.m2() + delta*delta*float64(s.Count)*float64(o.Count)/float64(n)
	out := Summary{
		Count: n,
		Mean:  s.Mean + delta*float64(o.Count)/float64(n),
		Min:   math.Min(s.Min, o.Min),
		Max:   math.Max(s.Max, o.Max),
		Sum:   s.Sum + o.Sum,
	}
	if n > 1 {
		out.StdDev = math.Sqrt(m2 / float64(n-1))
	}
	return out
}

// m2 recovers the sum of squared deviations from the sample stddev.
func (s Summary) m2() float64 {
	if s.Count < 2 {
		return 0
	}
	return s.StdDev * s.StdDev * float64(s.Count-1)
}

// Welford accumulates a running mean and standard deviation without
// retaining samples. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations added.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean (0 if no observations).
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the sample standard deviation (0 for fewer than two
// observations).
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Variance returns the sample variance (0 for fewer than two observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Merge combines another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n, w.mean, w.m2 = n, mean, m2
}

// Pearson computes the Pearson product-moment correlation coefficient
// between two equal-length series. It returns an error when the series
// differ in length, are shorter than two points, or either has zero
// variance (correlation undefined).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrInsufficientData
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if NearZero(vx) || NearZero(vy) {
		return 0, fmt.Errorf("stats: zero variance in series: %w", ErrInsufficientData)
	}
	return cov / math.Sqrt(vx*vy), nil
}

// PartialCorrelation computes the first-order partial correlation between
// series x and y controlling for series z:
//
//	r(xy.z) = (r_xy - r_xz*r_yz) / sqrt((1-r_xz^2)(1-r_yz^2))
//
// FlowDiff uses this to quantify the dependency strength between adjacent
// edges in a connectivity graph while controlling for shared upstream load.
func PartialCorrelation(x, y, z []float64) (float64, error) {
	rxy, err := Pearson(x, y)
	if err != nil {
		return 0, fmt.Errorf("stats: partial correlation r_xy: %w", err)
	}
	rxz, err := Pearson(x, z)
	if err != nil {
		return 0, fmt.Errorf("stats: partial correlation r_xz: %w", err)
	}
	ryz, err := Pearson(y, z)
	if err != nil {
		return 0, fmt.Errorf("stats: partial correlation r_yz: %w", err)
	}
	den := math.Sqrt((1 - rxz*rxz) * (1 - ryz*ryz))
	if NearZero(den) {
		return 0, fmt.Errorf("stats: degenerate control series: %w", ErrInsufficientData)
	}
	return (rxy - rxz*ryz) / den, nil
}

// ChiSquare computes the chi-square fitness statistic between observed and
// expected count distributions:
//
//	X^2 = sum_i (O_i - E_i)^2 / E_i
//
// Buckets whose expected value is zero contribute O_i (treating E as an
// epsilon-smoothed baseline) so that a newly appeared bucket still
// registers as a deviation rather than a division by zero.
func ChiSquare(observed, expected []float64) (float64, error) {
	if len(observed) != len(expected) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(observed), len(expected))
	}
	if len(observed) == 0 {
		return 0, ErrInsufficientData
	}
	var x2 float64
	for i := range observed {
		o, e := observed[i], expected[i]
		if e <= 0 {
			x2 += o
			continue
		}
		d := o - e
		x2 += d * d / e
	}
	return x2, nil
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrInsufficientData
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,1]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}
