package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram bins observations into fixed-width buckets starting at Origin.
// FlowDiff uses 20 ms bins for delay distributions (paper §V-B, Fig. 10).
type Histogram struct {
	Origin float64 // left edge of bucket 0
	Width  float64 // bucket width, must be > 0
	Counts []int   // grown on demand
	total  int
}

// NewHistogram creates a histogram with the given origin and bucket width.
func NewHistogram(origin, width float64) (*Histogram, error) {
	if width <= 0 || math.IsNaN(width) || math.IsInf(width, 0) {
		return nil, fmt.Errorf("stats: invalid histogram width %v", width)
	}
	return &Histogram{Origin: origin, Width: width}, nil
}

// Add records one observation. Values below Origin are clamped into
// bucket 0.
func (h *Histogram) Add(x float64) {
	idx := 0
	if x > h.Origin {
		idx = int((x - h.Origin) / h.Width)
	}
	for idx >= len(h.Counts) {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// BucketCenter returns the midpoint value of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	return h.Origin + (float64(i)+0.5)*h.Width
}

// Frequencies returns the normalized bucket frequencies (each count divided
// by the total). Empty histogram yields nil.
func (h *Histogram) Frequencies() []float64 {
	if h.total == 0 {
		return nil
	}
	fs := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		fs[i] = float64(c) / float64(h.total)
	}
	return fs
}

// Peak describes a local maximum in a histogram.
type Peak struct {
	Bucket int     // bucket index
	Value  float64 // bucket center
	Frac   float64 // fraction of total observations in the bucket
}

// Peaks returns local maxima of the histogram whose normalized frequency is
// at least minFrac, ordered by descending frequency. A bucket is a local
// maximum when its count is >= both neighbours (edges compare against the
// single existing neighbour). FlowDiff uses the dominant peaks of the
// inter-flow delay distribution as the DD signature.
func (h *Histogram) Peaks(minFrac float64) []Peak {
	if h.total == 0 {
		return nil
	}
	var peaks []Peak
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		frac := float64(c) / float64(h.total)
		if frac < minFrac {
			continue
		}
		leftOK := i == 0 || h.Counts[i-1] <= c
		rightOK := i == len(h.Counts)-1 || h.Counts[i+1] <= c
		if leftOK && rightOK {
			peaks = append(peaks, Peak{Bucket: i, Value: h.BucketCenter(i), Frac: frac})
		}
	}
	sort.Slice(peaks, func(a, b int) bool {
		//lint:ignore floatcmp comparator tie-break: both fracs derive from the same counts, so exact bit equality is the correct tie test
		if peaks[a].Frac != peaks[b].Frac {
			return peaks[a].Frac > peaks[b].Frac
		}
		return peaks[a].Bucket < peaks[b].Bucket
	})
	return peaks
}

// DominantPeak returns the highest-frequency peak, or ok=false when the
// histogram is empty.
func (h *Histogram) DominantPeak() (Peak, bool) {
	ps := h.Peaks(0)
	if len(ps) == 0 {
		return Peak{}, false
	}
	return ps[0], true
}

// CDFPoint is one point of an empirical CDF: Fraction of observations <= X.
type CDFPoint struct {
	X        float64
	Fraction float64
}

// CDF computes the empirical cumulative distribution of xs. The result has
// one point per distinct value, in ascending order.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var pts []CDFPoint
	for i := 0; i < len(sorted); {
		j := i
		//lint:ignore floatcmp run-length dedup over one sorted copy: identical samples are bit-identical, no arithmetic happened
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		pts = append(pts, CDFPoint{X: sorted[i], Fraction: float64(j) / n})
		i = j
	}
	return pts
}

// CDFAt evaluates an empirical CDF (as returned by CDF) at x via step
// interpolation.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	idx := sort.Search(len(cdf), func(i int) bool { return cdf[i].X > x })
	if idx == 0 {
		return 0
	}
	return cdf[idx-1].Fraction
}
