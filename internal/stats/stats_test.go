package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSummarize(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want Summary
	}{
		{"empty", nil, Summary{}},
		{"single", []float64{5}, Summary{Count: 1, Mean: 5, Min: 5, Max: 5, Sum: 5}},
		{
			"basic", []float64{2, 4, 4, 4, 5, 5, 7, 9},
			Summary{Count: 8, Mean: 5, StdDev: math.Sqrt(32.0 / 7.0), Min: 2, Max: 9, Sum: 40},
		},
		{"negative", []float64{-3, 0, 3}, Summary{Count: 3, Mean: 0, StdDev: 3, Min: -3, Max: 3, Sum: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Summarize(tt.xs)
			if got.Count != tt.want.Count || !almostEqual(got.Mean, tt.want.Mean, 1e-9) ||
				!almostEqual(got.StdDev, tt.want.StdDev, 1e-9) ||
				got.Min != tt.want.Min || got.Max != tt.want.Max ||
				!almostEqual(got.Sum, tt.want.Sum, 1e-9) {
				t.Errorf("Summarize(%v) = %+v, want %+v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestWelfordMatchesSummarize(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		var w Welford
		for i, r := range raw {
			xs[i] = float64(r)
			w.Add(float64(r))
		}
		s := Summarize(xs)
		return w.Count() == s.Count &&
			almostEqual(w.Mean(), s.Mean, 1e-6) &&
			almostEqual(w.StdDev(), s.StdDev, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryMergeMatchesConcat(t *testing.T) {
	f := func(a, b []int16) bool {
		xs := make([]float64, len(a))
		for i, r := range a {
			xs[i] = float64(r)
		}
		ys := make([]float64, len(b))
		for i, r := range b {
			ys[i] = float64(r)
		}
		got := Summarize(xs).Merge(Summarize(ys))
		want := Summarize(append(append([]float64(nil), xs...), ys...))
		if got.Count != want.Count {
			return false
		}
		if got.Count == 0 {
			return true
		}
		return almostEqual(got.Mean, want.Mean, 1e-6) &&
			almostEqual(got.StdDev, want.StdDev, 1e-6) &&
			got.Min == want.Min && got.Max == want.Max &&
			almostEqual(got.Sum, want.Sum, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordMerge(t *testing.T) {
	f := func(a, b []int16) bool {
		var wa, wb, wAll Welford
		for _, x := range a {
			wa.Add(float64(x))
			wAll.Add(float64(x))
		}
		for _, x := range b {
			wb.Add(float64(x))
			wAll.Add(float64(x))
		}
		wa.Merge(wb)
		return wa.Count() == wAll.Count() &&
			almostEqual(wa.Mean(), wAll.Mean(), 1e-6) &&
			almostEqual(wa.Variance(), wAll.Variance(), 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	t.Run("perfect positive", func(t *testing.T) {
		r, err := Pearson([]float64{1, 2, 3, 4}, []float64{2, 4, 6, 8})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(r, 1, 1e-12) {
			t.Errorf("r = %v, want 1", r)
		}
	})
	t.Run("perfect negative", func(t *testing.T) {
		r, err := Pearson([]float64{1, 2, 3}, []float64{3, 2, 1})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(r, -1, 1e-12) {
			t.Errorf("r = %v, want -1", r)
		}
	})
	t.Run("length mismatch", func(t *testing.T) {
		if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
			t.Error("want error on length mismatch")
		}
	})
	t.Run("zero variance", func(t *testing.T) {
		if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
			t.Error("want error on constant series")
		}
	})
	t.Run("too short", func(t *testing.T) {
		if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
			t.Error("want error on single point")
		}
	})
}

func TestPearsonBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		c, err := Pearson(xs, ys)
		if err != nil {
			return true // degenerate draw
		}
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	cfg := &quick.Config{Rand: rng, MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPartialCorrelation(t *testing.T) {
	// y = x exactly, z independent: partial correlation should stay ~1.
	rng := rand.New(rand.NewSource(7))
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64()
		y[i] = x[i]
		z[i] = rng.NormFloat64()
	}
	r, err := PartialCorrelation(x, y, z)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.99 {
		t.Errorf("partial correlation of identical series = %v, want ~1", r)
	}

	// x and y both driven by z only: controlling for z should kill the
	// correlation.
	for i := 0; i < n; i++ {
		z[i] = rng.NormFloat64()
		x[i] = 2*z[i] + 0.01*rng.NormFloat64()
		y[i] = -3*z[i] + 0.01*rng.NormFloat64()
	}
	r, err = PartialCorrelation(x, y, z)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.2 {
		t.Errorf("partial correlation with confounder removed = %v, want ~0", r)
	}
}

func TestChiSquare(t *testing.T) {
	t.Run("identical distributions", func(t *testing.T) {
		x2, err := ChiSquare([]float64{10, 20, 30}, []float64{10, 20, 30})
		if err != nil {
			t.Fatal(err)
		}
		if x2 != 0 {
			t.Errorf("X^2 = %v, want 0", x2)
		}
	})
	t.Run("known value", func(t *testing.T) {
		// (12-10)^2/10 + (8-10)^2/10 = 0.8
		x2, err := ChiSquare([]float64{12, 8}, []float64{10, 10})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(x2, 0.8, 1e-12) {
			t.Errorf("X^2 = %v, want 0.8", x2)
		}
	})
	t.Run("zero expected bucket", func(t *testing.T) {
		x2, err := ChiSquare([]float64{5, 10}, []float64{0, 10})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(x2, 5, 1e-12) {
			t.Errorf("X^2 = %v, want 5", x2)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := ChiSquare(nil, nil); err == nil {
			t.Error("want error on empty input")
		}
	})
	t.Run("mismatch", func(t *testing.T) {
		if _, err := ChiSquare([]float64{1}, []float64{1, 2}); err == nil {
			t.Error("want error on length mismatch")
		}
	})
}

func TestChiSquareNonNegative(t *testing.T) {
	f := func(pairsRaw []uint8) bool {
		if len(pairsRaw)%2 == 1 {
			pairsRaw = pairsRaw[:len(pairsRaw)-1]
		}
		if len(pairsRaw) == 0 {
			return true
		}
		n := len(pairsRaw) / 2
		obs := make([]float64, n)
		exp := make([]float64, n)
		for i := 0; i < n; i++ {
			obs[i] = float64(pairsRaw[2*i])
			exp[i] = float64(pairsRaw[2*i+1])
		}
		x2, err := ChiSquare(obs, exp)
		return err == nil && x2 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{1, 50},
		{0.5, 35},
		{0.25, 20},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("Percentile(p=%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 0.5); err == nil {
		t.Error("want error on empty input")
	}
	if _, err := Percentile(xs, 1.5); err == nil {
		t.Error("want error on out-of-range p")
	}
}
