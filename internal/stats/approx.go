package stats

import "math"

// Epsilon is the default tolerance for comparing derived statistics
// (means, variances, correlations). The parallel pipeline guarantees
// byte-identical output at any worker count by fixing summation order,
// but code that *compares* two independently computed statistics must
// never rely on bit-exact float arithmetic — that is the paper's
// epsilon-based comparison discipline, and the floatcmp analyzer in
// internal/lint/checks enforces it mechanically.
const Epsilon = 1e-9

// ApproxEqual reports whether a and b are equal within eps, using a
// hybrid absolute/relative tolerance: |a-b| <= eps * max(1, |a|, |b|).
// Pass eps <= 0 to use Epsilon.
func ApproxEqual(a, b, eps float64) bool {
	if eps <= 0 {
		eps = Epsilon
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= eps*scale
}

// NearZero reports whether |x| < Epsilon — the guard to use before
// dividing by a derived quantity instead of comparing it to exactly 0.
func NearZero(x float64) bool {
	return math.Abs(x) < Epsilon
}
