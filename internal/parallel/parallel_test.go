package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		For(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForZeroItems(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

func TestClamp(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := map[int]int{
		0:        max,
		-3:       max,
		1:        1,
		max:      max,
		max + 5:  max,
		max + 50: max,
	}
	for req, want := range cases {
		if got := Clamp(req); got != want {
			t.Errorf("Clamp(%d) = %d, want %d (GOMAXPROCS %d)", req, got, want, max)
		}
	}
}

// TestClampTracksGOMAXPROCS pins that the clamp reads the live setting,
// not a cached one: tests that raise GOMAXPROCS to exercise real
// concurrency on small hosts rely on this.
func TestClampTracksGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	runtime.GOMAXPROCS(3)
	if got := Clamp(8); got != 3 {
		t.Errorf("Clamp(8) under GOMAXPROCS=3 = %d, want 3", got)
	}
	if got := Clamp(2); got != 2 {
		t.Errorf("Clamp(2) under GOMAXPROCS=3 = %d, want 2", got)
	}
}
