package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flowdiff/internal/obs"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		For(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForZeroItems(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

func TestClamp(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := map[int]int{
		0:        max,
		-3:       max,
		1:        1,
		max:      max,
		max + 5:  max,
		max + 50: max,
	}
	for req, want := range cases {
		if got := Clamp(req); got != want {
			t.Errorf("Clamp(%d) = %d, want %d (GOMAXPROCS %d)", req, got, want, max)
		}
	}
}

// TestClampTracksGOMAXPROCS pins that the clamp reads the live setting,
// not a cached one: tests that raise GOMAXPROCS to exercise real
// concurrency on small hosts rely on this.
func TestClampTracksGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	runtime.GOMAXPROCS(3)
	if got := Clamp(8); got != 3 {
		t.Errorf("Clamp(8) under GOMAXPROCS=3 = %d, want 3", got)
	}
	if got := Clamp(2); got != 2 {
		t.Errorf("Clamp(2) under GOMAXPROCS=3 = %d, want 2", got)
	}
}

func TestForContextCoversEveryIndexOnce(t *testing.T) {
	reg := obs.New()
	ctx := obs.WithRegistry(context.Background(), reg)
	for _, workers := range []int{1, 2, 4, 7} {
		const n = 500
		counts := make([]atomic.Int32, n)
		if err := ForContext(ctx, n, workers, func(i int) { counts[i].Add(1) }); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
	if got := reg.Counter("parallel.items").Value(); got != 4*500 {
		t.Errorf("parallel.items = %d, want %d", got, 4*500)
	}
	if got := reg.Gauge("parallel.active").Value(); got != 0 {
		t.Errorf("parallel.active after drain = %d, want 0", got)
	}
	if got := reg.Gauge("parallel.active").Max(); got < 1 {
		t.Errorf("parallel.active max = %d, want >= 1", got)
	}
}

// TestForContextCancelStopsDispatch pins the cancellation contract:
// after cancel, no new item is dispatched, in-flight items finish, the
// pool drains, and the call returns ctx.Err().
func TestForContextCancelStopsDispatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(obs.WithRegistry(context.Background(), obs.New()))
		const n = 10_000
		var ran atomic.Int64
		release := make(chan struct{})
		var cancelOnce sync.Once
		err := ForContext(ctx, n, workers, func(i int) {
			ran.Add(1)
			// The first item cancels the context and briefly blocks so
			// sibling workers observe the cancellation while it is still
			// in flight.
			cancelOnce.Do(func() {
				cancel()
				close(release)
			})
			<-release
		})
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Dispatch must have stopped far short of n: each worker runs at
		// most the item it held when cancel landed plus one already
		// claimed.
		if got := ran.Load(); got > int64(2*workers) {
			t.Errorf("workers=%d: %d items ran after cancel, want <= %d", workers, got, 2*workers)
		}
		cancel()
	}
}

// TestForContextDrainsGoroutines proves a canceled pool leaks nothing.
func TestForContextDrainsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForContext(ctx, 1000, 8, func(int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	n := runtime.NumGoroutine()
	for n > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > before {
		t.Errorf("goroutines: %d before, still %d after canceled ForContext", before, n)
	}
}

// TestForContextNilRegistry pins that a disabled registry costs nothing
// and breaks nothing.
func TestForContextNilRegistry(t *testing.T) {
	ctx := obs.WithRegistry(context.Background(), nil)
	var sum atomic.Int64
	if err := ForContext(ctx, 100, 4, func(i int) { sum.Add(int64(i)) }); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 4950 {
		t.Errorf("sum = %d, want 4950", got)
	}
}
