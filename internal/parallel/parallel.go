// Package parallel holds the one worker-pool primitive every fan-out in
// the repo shares (signature pipeline, sharded extraction, task mining,
// stability intervals), plus the worker-count policy: requested widths
// are clamped to the hardware so a single-CPU host never pays goroutine
// fan-out overhead for parallelism it cannot realize.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Clamp resolves a requested worker count against the hardware:
// non-positive means "one worker per CPU", and any request wider than
// GOMAXPROCS is cut down to it — extra workers beyond the CPU count only
// add scheduling and merge overhead (BENCH_1.json measured 20–70% on a
// 1-CPU host). A clamped result of 1 is the contract for callers to take
// their serial fast path.
func Clamp(requested int) int {
	max := runtime.GOMAXPROCS(0)
	if requested <= 0 || requested > max {
		return max
	}
	return requested
}

// For runs fn(0..n-1) on a bounded pool of workers goroutines. Each
// fn(i) must write only its own output slot; under that contract the
// result is identical for every worker count. One worker (or one item)
// degrades to a plain loop with no goroutines. The caller picks workers
// (typically via Clamp); For itself only trims workers to n.
func For(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
