// Package parallel holds the one worker-pool primitive every fan-out in
// the repo shares (signature pipeline, sharded extraction, task mining,
// stability intervals), plus the worker-count policy: requested widths
// are clamped to the hardware so a single-CPU host never pays goroutine
// fan-out overhead for parallelism it cannot realize.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"flowdiff/internal/obs"
)

// Clamp resolves a requested worker count against the hardware:
// non-positive means "one worker per CPU", and any request wider than
// GOMAXPROCS is cut down to it — extra workers beyond the CPU count only
// add scheduling and merge overhead (BENCH_1.json measured 20–70% on a
// 1-CPU host). A clamped result of 1 is the contract for callers to take
// their serial fast path.
func Clamp(requested int) int {
	max := runtime.GOMAXPROCS(0)
	if requested <= 0 || requested > max {
		return max
	}
	return requested
}

// For runs fn(0..n-1) on a bounded pool of workers goroutines. Each
// fn(i) must write only its own output slot; under that contract the
// result is identical for every worker count. One worker (or one item)
// degrades to a plain loop with no goroutines. The caller picks workers
// (typically via Clamp); For itself only trims workers to n.
func For(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForContext is For with cancellation and pool instrumentation. Workers
// stop picking up new items as soon as ctx is canceled — items already
// running finish, the pool fully drains (every goroutine exits before
// ForContext returns), and the call reports ctx.Err(). The completed
// subset of fn calls is a prefix-closed set only per worker, so on a
// non-nil return the caller must discard its outputs.
//
// Instrumentation goes to the context's obs registry (obs.Default when
// none travels in ctx, disabled when the context carries nil):
//
//	parallel.active      gauge: workers currently inside fn (max = the
//	                     widest the pool ever ran, ≥1 even serially)
//	parallel.items       counter: items dispatched; NOT deterministic
//	                     across Options.Parallelism — serial fast paths
//	                     bypass pools entirely
//	span.parallel.queue_wait  per-item delay between the ForContext
//	                     call and the item's dispatch
//
// Metric objects are resolved once per call, so the per-item cost is an
// atomic add, a clock read, and a histogram observe — stage-granular
// fan-outs (groups, intervals, shards) never notice it.
func ForContext(ctx context.Context, n, workers int, fn func(int)) error {
	if workers > n {
		workers = n
	}
	reg := obs.From(ctx)
	var (
		active = reg.Gauge("parallel.active")
		items  = reg.Counter("parallel.items")
		wait   = reg.Histogram(obs.SpanPrefix + "parallel.queue_wait")
		start  = reg.Now()
	)
	if workers <= 1 {
		active.Add(1)
		defer active.Add(-1)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			wait.Observe(reg.Since(start))
			items.Inc()
			fn(i)
		}
		return nil
	}
	done := ctx.Done()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			active.Add(1)
			defer active.Add(-1)
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				wait.Observe(reg.Since(start))
				items.Inc()
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
