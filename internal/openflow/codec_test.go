package openflow

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	b, err := msg.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal %v: %v", msg.MsgType(), err)
	}
	h, err := UnmarshalHeader(b)
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	if int(h.Length) != len(b) {
		t.Fatalf("%v: header length %d != wire length %d", msg.MsgType(), h.Length, len(b))
	}
	if h.Version != Version {
		t.Fatalf("%v: version = %#x", msg.MsgType(), h.Version)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("decode %v: %v", msg.MsgType(), err)
	}
	return got
}

func TestRoundTripSimpleMessages(t *testing.T) {
	msgs := []Message{
		&Hello{XID: 1},
		&EchoRequest{XID: 2, Data: []byte("ping")},
		&EchoReply{XID: 3, Data: []byte("pong")},
		&EchoRequest{XID: 4},
		&Error{XID: 5, ErrType: 1, Code: 2, Data: []byte{0xde, 0xad}},
		&FeaturesRequest{XID: 6},
		&BarrierRequest{XID: 7},
		&BarrierReply{XID: 8},
	}
	for _, msg := range msgs {
		got := roundTrip(t, msg)
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", msg.MsgType(), got, msg)
		}
	}
}

func TestRoundTripFeaturesReply(t *testing.T) {
	msg := &FeaturesReply{
		XID:          77,
		DatapathID:   0x00000000000000ab,
		NBuffers:     256,
		NTables:      2,
		Capabilities: 0xc7,
		Actions:      0xfff,
		Ports: []PhyPort{
			{PortNo: 1, HWAddr: [6]byte{0, 1, 2, 3, 4, 5}, Name: "eth1", State: 1},
			{PortNo: 2, HWAddr: [6]byte{0, 1, 2, 3, 4, 6}, Name: "eth2"},
		},
	}
	got := roundTrip(t, msg)
	if !reflect.DeepEqual(got, msg) {
		t.Errorf("FeaturesReply round trip:\n got %+v\nwant %+v", got, msg)
	}
}

func TestRoundTripPacketIn(t *testing.T) {
	msg := &PacketIn{
		XID:      9,
		BufferID: BufferNone,
		TotalLen: 1500,
		InPort:   3,
		Reason:   PacketInReasonNoMatch,
		Data:     []byte{1, 2, 3, 4, 5},
	}
	got := roundTrip(t, msg)
	if !reflect.DeepEqual(got, msg) {
		t.Errorf("PacketIn round trip:\n got %+v\nwant %+v", got, msg)
	}
}

func TestRoundTripFlowMod(t *testing.T) {
	src := netip.MustParseAddr("10.0.1.5")
	dst := netip.MustParseAddr("10.0.2.9")
	msg := &FlowMod{
		XID:         11,
		Match:       ExactMatch(6, src, dst, 45678, 80),
		Cookie:      0xdeadbeef,
		Command:     FlowModAdd,
		IdleTimeout: 5,
		HardTimeout: 30,
		Priority:    100,
		BufferID:    BufferNone,
		OutPort:     PortNone,
		Flags:       FlowModFlagSendFlowRem,
		Actions:     []Action{ActionOutput{Port: 2, MaxLen: 128}},
	}
	got := roundTrip(t, msg)
	if !reflect.DeepEqual(got, msg) {
		t.Errorf("FlowMod round trip:\n got %+v\nwant %+v", got, msg)
	}
}

func TestRoundTripFlowRemoved(t *testing.T) {
	src := netip.MustParseAddr("10.0.1.5")
	dst := netip.MustParseAddr("10.0.2.9")
	msg := &FlowRemoved{
		XID:          12,
		Match:        ExactMatch(6, src, dst, 1234, 3306),
		Cookie:       42,
		Priority:     10,
		Reason:       FlowRemovedReasonIdleTimeout,
		DurationSec:  9,
		DurationNsec: 500000,
		IdleTimeout:  5,
		PacketCount:  1000,
		ByteCount:    1234567,
	}
	got := roundTrip(t, msg)
	if !reflect.DeepEqual(got, msg) {
		t.Errorf("FlowRemoved round trip:\n got %+v\nwant %+v", got, msg)
	}
}

func TestRoundTripPacketOut(t *testing.T) {
	msg := &PacketOut{
		XID:      13,
		BufferID: 99,
		InPort:   PortNone,
		Actions:  []Action{ActionOutput{Port: PortFlood, MaxLen: 0}, ActionEnqueue{Port: 4, QueueID: 7}},
		Data:     []byte{0xaa, 0xbb},
	}
	got := roundTrip(t, msg)
	if !reflect.DeepEqual(got, msg) {
		t.Errorf("PacketOut round trip:\n got %+v\nwant %+v", got, msg)
	}
}

func TestRoundTripPortStatus(t *testing.T) {
	msg := &PortStatus{
		XID:    14,
		Reason: PortReasonModify,
		Desc:   PhyPort{PortNo: 5, Name: "tor-1-p5", State: 1},
	}
	got := roundTrip(t, msg)
	if !reflect.DeepEqual(got, msg) {
		t.Errorf("PortStatus round trip:\n got %+v\nwant %+v", got, msg)
	}
}

func TestRoundTripStats(t *testing.T) {
	src := netip.MustParseAddr("192.168.0.1")
	dst := netip.MustParseAddr("192.168.0.2")
	t.Run("flow request", func(t *testing.T) {
		msg := &StatsRequest{XID: 15, StatsType: StatsTypeFlow, Match: HostPairMatch(src, dst), TableID: 0xff, OutPort: PortNone}
		got := roundTrip(t, msg)
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, msg)
		}
	})
	t.Run("port request", func(t *testing.T) {
		msg := &StatsRequest{XID: 16, StatsType: StatsTypePort, PortNo: PortNone}
		got := roundTrip(t, msg)
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, msg)
		}
	})
	t.Run("flow reply", func(t *testing.T) {
		msg := &StatsReply{
			XID:       17,
			StatsType: StatsTypeFlow,
			Flows: []FlowStatsEntry{
				{TableID: 0, Match: ExactMatch(6, src, dst, 1, 2), DurationSec: 3, Priority: 9, IdleTimeout: 5, HardTimeout: 60, Cookie: 1, PacketCount: 10, ByteCount: 100},
				{TableID: 1, Match: HostPairMatch(dst, src), PacketCount: 7, ByteCount: 77},
			},
		}
		got := roundTrip(t, msg)
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, msg)
		}
	})
	t.Run("port reply", func(t *testing.T) {
		msg := &StatsReply{
			XID:       18,
			StatsType: StatsTypePort,
			Ports: []PortStatsEntry{
				{PortNo: 1, RxPackets: 5, TxPackets: 6, RxBytes: 7, TxBytes: 8, RxDropped: 1, TxDropped: 2},
			},
		}
		got := roundTrip(t, msg)
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, msg)
		}
	})
}

func TestReaderWriterStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	msgs := []Message{
		&Hello{XID: 1},
		&PacketIn{XID: 2, BufferID: BufferNone, InPort: 1, Data: []byte("x")},
		&FlowMod{XID: 3, BufferID: BufferNone, OutPort: PortNone, Actions: []Action{ActionOutput{Port: 1}}},
		&EchoReply{XID: 4, Data: []byte("hello")},
	}
	for _, m := range msgs {
		if err := w.WriteMessage(m); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	r := NewReader(&buf)
	for i, want := range msgs {
		got, err := r.ReadMessage()
		if err != nil {
			t.Fatalf("read message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("message %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := r.ReadMessage(); err != io.EOF {
		t.Errorf("after stream end: err = %v, want io.EOF", err)
	}
}

func TestReaderTruncatedBody(t *testing.T) {
	m := &PacketIn{XID: 1, Data: []byte("abcdef")}
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(b[:len(b)-3]))
	if _, err := r.ReadMessage(); err == nil {
		t.Error("want error on truncated body")
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	t.Run("short", func(t *testing.T) {
		if _, err := Decode([]byte{1, 2}); err == nil {
			t.Error("want error on short buffer")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b, _ := (&Hello{}).MarshalBinary()
		b[0] = 0x04
		if _, err := Decode(b); err == nil {
			t.Error("want error on wrong version")
		}
	})
	t.Run("length mismatch", func(t *testing.T) {
		b, _ := (&Hello{}).MarshalBinary()
		b[3] = 200
		if _, err := Decode(b); err == nil {
			t.Error("want error on length mismatch")
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		b, _ := (&Hello{}).MarshalBinary()
		b[1] = 0x77
		if _, err := Decode(b); err == nil {
			t.Error("want error on unknown type")
		}
	})
}

func randomMatch(rng *rand.Rand) Match {
	var m Match
	m.Wildcards = rng.Uint32() & WildcardAll
	m.InPort = uint16(rng.Intn(48))
	rng.Read(m.DLSrc[:])
	rng.Read(m.DLDst[:])
	m.DLVLAN = uint16(rng.Intn(4096))
	m.DLVLANPCP = uint8(rng.Intn(8))
	m.DLType = 0x0800
	m.NWTOS = uint8(rng.Intn(256))
	m.NWProto = uint8(rng.Intn(256))
	rng.Read(m.NWSrc[:])
	rng.Read(m.NWDst[:])
	m.TPSrc = uint16(rng.Intn(65536))
	m.TPDst = uint16(rng.Intn(65536))
	return m
}

func TestMatchRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatch(rng)
		var b [MatchLen]byte
		m.marshalTo(b[:])
		got, err := unmarshalMatch(b[:])
		return err == nil && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFlowModRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &FlowMod{
			XID:         rng.Uint32(),
			Match:       randomMatch(rng),
			Cookie:      rng.Uint64(),
			Command:     uint16(rng.Intn(5)),
			IdleTimeout: uint16(rng.Intn(65536)),
			HardTimeout: uint16(rng.Intn(65536)),
			Priority:    uint16(rng.Intn(65536)),
			BufferID:    rng.Uint32(),
			OutPort:     uint16(rng.Intn(65536)),
			Flags:       uint16(rng.Intn(8)),
		}
		for i := 0; i < rng.Intn(4); i++ {
			m.Actions = append(m.Actions, ActionOutput{Port: uint16(rng.Intn(65536)), MaxLen: uint16(rng.Intn(65536))})
		}
		b, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
