package openflow

import (
	"encoding/binary"
	"fmt"
)

// Stats types (enum ofp_stats_types).
const (
	StatsTypeDesc uint16 = iota
	StatsTypeFlow
	StatsTypeAggregate
	StatsTypeTable
	StatsTypePort
)

// StatsRequest polls the switch for counters; FlowDiff's controller uses
// flow and port stats to learn utilization without touching the data path.
type StatsRequest struct {
	XID       uint32
	StatsType uint16
	Flags     uint16
	// Flow stats request body (valid when StatsType == StatsTypeFlow).
	Match   Match
	TableID uint8
	OutPort uint16
	// Port stats request body (valid when StatsType == StatsTypePort).
	PortNo uint16
}

// MsgType implements Message.
func (*StatsRequest) MsgType() MsgType { return TypeStatsRequest }

// TransactionID implements Message.
func (m *StatsRequest) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *StatsRequest) MarshalBinary() ([]byte, error) {
	var body []byte
	switch m.StatsType {
	case StatsTypeFlow, StatsTypeAggregate:
		body = make([]byte, MatchLen+4)
		m.Match.marshalTo(body)
		body[MatchLen] = m.TableID
		binary.BigEndian.PutUint16(body[MatchLen+2:MatchLen+4], m.OutPort)
	case StatsTypePort:
		body = make([]byte, 8)
		binary.BigEndian.PutUint16(body[0:2], m.PortNo)
	}
	b := make([]byte, HeaderLen+4+len(body))
	Header{Version, TypeStatsRequest, uint16(len(b)), m.XID}.marshalTo(b)
	binary.BigEndian.PutUint16(b[8:10], m.StatsType)
	binary.BigEndian.PutUint16(b[10:12], m.Flags)
	copy(b[12:], body)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *StatsRequest) UnmarshalBinary(b []byte) error {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return err
	}
	if len(b) < HeaderLen+4 {
		return fmt.Errorf("openflow: STATS_REQUEST too short: %d bytes", len(b))
	}
	m.XID = h.XID
	m.StatsType = binary.BigEndian.Uint16(b[8:10])
	m.Flags = binary.BigEndian.Uint16(b[10:12])
	body := b[12:]
	switch m.StatsType {
	case StatsTypeFlow, StatsTypeAggregate:
		if len(body) < MatchLen+4 {
			return fmt.Errorf("openflow: flow stats request body too short: %d bytes", len(body))
		}
		if m.Match, err = unmarshalMatch(body); err != nil {
			return err
		}
		m.TableID = body[MatchLen]
		m.OutPort = binary.BigEndian.Uint16(body[MatchLen+2 : MatchLen+4])
	case StatsTypePort:
		if len(body) < 8 {
			return fmt.Errorf("openflow: port stats request body too short: %d bytes", len(body))
		}
		m.PortNo = binary.BigEndian.Uint16(body[0:2])
	}
	return nil
}

// FlowStatsEntry is one flow record in a flow-stats reply
// (ofp_flow_stats, actions omitted from the reproduction's decoder).
type FlowStatsEntry struct {
	TableID      uint8
	Match        Match
	DurationSec  uint32
	DurationNsec uint32
	Priority     uint16
	IdleTimeout  uint16
	HardTimeout  uint16
	Cookie       uint64
	PacketCount  uint64
	ByteCount    uint64
}

const flowStatsEntryLen = 88 // fixed portion, no actions

func (e FlowStatsEntry) marshalTo(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], flowStatsEntryLen)
	b[2] = e.TableID
	// b[3] pad
	e.Match.marshalTo(b[4:44])
	binary.BigEndian.PutUint32(b[44:48], e.DurationSec)
	binary.BigEndian.PutUint32(b[48:52], e.DurationNsec)
	binary.BigEndian.PutUint16(b[52:54], e.Priority)
	binary.BigEndian.PutUint16(b[54:56], e.IdleTimeout)
	binary.BigEndian.PutUint16(b[56:58], e.HardTimeout)
	// b[58:64] pad
	binary.BigEndian.PutUint64(b[64:72], e.Cookie)
	binary.BigEndian.PutUint64(b[72:80], e.PacketCount)
	binary.BigEndian.PutUint64(b[80:88], e.ByteCount)
}

// PortStatsEntry is one port record in a port-stats reply (ofp_port_stats,
// error counters omitted).
type PortStatsEntry struct {
	PortNo    uint16
	RxPackets uint64
	TxPackets uint64
	RxBytes   uint64
	TxBytes   uint64
	RxDropped uint64
	TxDropped uint64
}

const portStatsEntryLen = 56

func (e PortStatsEntry) marshalTo(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], e.PortNo)
	// b[2:8] pad
	binary.BigEndian.PutUint64(b[8:16], e.RxPackets)
	binary.BigEndian.PutUint64(b[16:24], e.TxPackets)
	binary.BigEndian.PutUint64(b[24:32], e.RxBytes)
	binary.BigEndian.PutUint64(b[32:40], e.TxBytes)
	binary.BigEndian.PutUint64(b[40:48], e.RxDropped)
	binary.BigEndian.PutUint64(b[48:56], e.TxDropped)
}

// StatsReply carries switch counters back to the controller.
type StatsReply struct {
	XID       uint32
	StatsType uint16
	Flags     uint16
	Flows     []FlowStatsEntry // when StatsType == StatsTypeFlow
	Ports     []PortStatsEntry // when StatsType == StatsTypePort
}

// MsgType implements Message.
func (*StatsReply) MsgType() MsgType { return TypeStatsReply }

// TransactionID implements Message.
func (m *StatsReply) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *StatsReply) MarshalBinary() ([]byte, error) {
	var bodyLen int
	switch m.StatsType {
	case StatsTypeFlow:
		bodyLen = flowStatsEntryLen * len(m.Flows)
	case StatsTypePort:
		bodyLen = portStatsEntryLen * len(m.Ports)
	}
	b := make([]byte, HeaderLen+4+bodyLen)
	Header{Version, TypeStatsReply, uint16(len(b)), m.XID}.marshalTo(b)
	binary.BigEndian.PutUint16(b[8:10], m.StatsType)
	binary.BigEndian.PutUint16(b[10:12], m.Flags)
	off := 12
	switch m.StatsType {
	case StatsTypeFlow:
		for _, e := range m.Flows {
			e.marshalTo(b[off : off+flowStatsEntryLen])
			off += flowStatsEntryLen
		}
	case StatsTypePort:
		for _, e := range m.Ports {
			e.marshalTo(b[off : off+portStatsEntryLen])
			off += portStatsEntryLen
		}
	}
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *StatsReply) UnmarshalBinary(b []byte) error {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return err
	}
	if len(b) < HeaderLen+4 {
		return fmt.Errorf("openflow: STATS_REPLY too short: %d bytes", len(b))
	}
	m.XID = h.XID
	m.StatsType = binary.BigEndian.Uint16(b[8:10])
	m.Flags = binary.BigEndian.Uint16(b[10:12])
	m.Flows, m.Ports = nil, nil
	body := b[12:]
	switch m.StatsType {
	case StatsTypeFlow:
		for len(body) >= flowStatsEntryLen {
			l := int(binary.BigEndian.Uint16(body[0:2]))
			if l < flowStatsEntryLen || l > len(body) {
				return fmt.Errorf("openflow: invalid flow stats entry length %d", l)
			}
			var e FlowStatsEntry
			e.TableID = body[2]
			if e.Match, err = unmarshalMatch(body[4:44]); err != nil {
				return err
			}
			e.DurationSec = binary.BigEndian.Uint32(body[44:48])
			e.DurationNsec = binary.BigEndian.Uint32(body[48:52])
			e.Priority = binary.BigEndian.Uint16(body[52:54])
			e.IdleTimeout = binary.BigEndian.Uint16(body[54:56])
			e.HardTimeout = binary.BigEndian.Uint16(body[56:58])
			e.Cookie = binary.BigEndian.Uint64(body[64:72])
			e.PacketCount = binary.BigEndian.Uint64(body[72:80])
			e.ByteCount = binary.BigEndian.Uint64(body[80:88])
			m.Flows = append(m.Flows, e)
			body = body[l:]
		}
	case StatsTypePort:
		for len(body) >= portStatsEntryLen {
			var e PortStatsEntry
			e.PortNo = binary.BigEndian.Uint16(body[0:2])
			e.RxPackets = binary.BigEndian.Uint64(body[8:16])
			e.TxPackets = binary.BigEndian.Uint64(body[16:24])
			e.RxBytes = binary.BigEndian.Uint64(body[24:32])
			e.TxBytes = binary.BigEndian.Uint64(body[32:40])
			e.RxDropped = binary.BigEndian.Uint64(body[40:48])
			e.TxDropped = binary.BigEndian.Uint64(body[48:56])
			m.Ports = append(m.Ports, e)
			body = body[portStatsEntryLen:]
		}
	}
	return nil
}
