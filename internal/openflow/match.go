package openflow

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// Wildcard bits (enum ofp_flow_wildcards). A set bit means the
// corresponding match field is ignored.
const (
	WildcardInPort  uint32 = 1 << 0
	WildcardDLVLAN  uint32 = 1 << 1
	WildcardDLSrc   uint32 = 1 << 2
	WildcardDLDst   uint32 = 1 << 3
	WildcardDLType  uint32 = 1 << 4
	WildcardNWProto uint32 = 1 << 5
	WildcardTPSrc   uint32 = 1 << 6
	WildcardTPDst   uint32 = 1 << 7

	// IP source/destination wildcards are 6-bit CIDR-style fields: the
	// value is the number of least-significant address bits to ignore
	// (0 = exact, >= 32 = fully wildcarded).
	wildcardNWSrcShift        = 8
	wildcardNWSrcMask  uint32 = 0x3f << wildcardNWSrcShift
	wildcardNWDstShift        = 14
	wildcardNWDstMask  uint32 = 0x3f << wildcardNWDstShift

	WildcardDLVLANPCP uint32 = 1 << 20
	WildcardNWTOS     uint32 = 1 << 21

	// WildcardAll has every field wildcarded.
	WildcardAll uint32 = ((1<<22)-1)&^(wildcardNWSrcMask|wildcardNWDstMask) |
		(32 << wildcardNWSrcShift) | (32 << wildcardNWDstShift)
)

// MatchLen is the wire length of ofp_match.
const MatchLen = 40

// Match is the OpenFlow 1.0 12-tuple flow match (ofp_match).
type Match struct {
	Wildcards uint32
	InPort    uint16
	DLSrc     [6]byte
	DLDst     [6]byte
	DLVLAN    uint16
	DLVLANPCP uint8
	DLType    uint16
	NWTOS     uint8
	NWProto   uint8
	NWSrc     [4]byte
	NWDst     [4]byte
	TPSrc     uint16
	TPDst     uint16
}

// ExactMatch builds a fully specified IPv4 match for the given 5-tuple
// (the "microflow" entries a reactive controller installs).
func ExactMatch(proto uint8, src, dst netip.Addr, tpSrc, tpDst uint16) Match {
	m := Match{
		DLType:  0x0800, // IPv4
		NWProto: proto,
		TPSrc:   tpSrc,
		TPDst:   tpDst,
	}
	m.NWSrc = src.As4()
	m.NWDst = dst.As4()
	// Fields we do not match on (L2 addresses, VLAN, TOS, in_port) stay
	// wildcarded so the entry matches the flow regardless of topology hop.
	m.Wildcards = WildcardInPort | WildcardDLVLAN | WildcardDLSrc |
		WildcardDLDst | WildcardDLVLANPCP | WildcardNWTOS
	return m
}

// HostPairMatch builds a wildcard match covering all traffic between two
// IPv4 hosts regardless of transport ports (used by the wildcard
// deployment mode in §VI).
func HostPairMatch(src, dst netip.Addr) Match {
	m := ExactMatch(0, src, dst, 0, 0)
	m.Wildcards |= WildcardNWProto | WildcardTPSrc | WildcardTPDst
	return m
}

// NWSrcBits returns how many low bits of NWSrc are wildcarded (capped at 32).
func (m Match) NWSrcBits() int {
	b := int((m.Wildcards & wildcardNWSrcMask) >> wildcardNWSrcShift)
	if b > 32 {
		b = 32
	}
	return b
}

// NWDstBits returns how many low bits of NWDst are wildcarded (capped at 32).
func (m Match) NWDstBits() int {
	b := int((m.Wildcards & wildcardNWDstMask) >> wildcardNWDstShift)
	if b > 32 {
		b = 32
	}
	return b
}

// SetNWSrcBits sets the number of wildcarded low bits in NWSrc.
func (m *Match) SetNWSrcBits(bits int) {
	m.Wildcards = (m.Wildcards &^ wildcardNWSrcMask) |
		(uint32(bits&0x3f) << wildcardNWSrcShift)
}

// SetNWDstBits sets the number of wildcarded low bits in NWDst.
func (m *Match) SetNWDstBits(bits int) {
	m.Wildcards = (m.Wildcards &^ wildcardNWDstMask) |
		(uint32(bits&0x3f) << wildcardNWDstShift)
}

func ipMatches(entry, pkt [4]byte, ignoredBits int) bool {
	if ignoredBits >= 32 {
		return true
	}
	e := binary.BigEndian.Uint32(entry[:])
	p := binary.BigEndian.Uint32(pkt[:])
	mask := uint32(0xffffffff) << uint(ignoredBits)
	return e&mask == p&mask
}

// Matches reports whether a packet described by the fully specified match
// pkt (wildcards in pkt are ignored) matches entry m.
func (m Match) Matches(pkt Match) bool {
	if m.Wildcards&WildcardInPort == 0 && m.InPort != pkt.InPort {
		return false
	}
	if m.Wildcards&WildcardDLSrc == 0 && m.DLSrc != pkt.DLSrc {
		return false
	}
	if m.Wildcards&WildcardDLDst == 0 && m.DLDst != pkt.DLDst {
		return false
	}
	if m.Wildcards&WildcardDLVLAN == 0 && m.DLVLAN != pkt.DLVLAN {
		return false
	}
	if m.Wildcards&WildcardDLVLANPCP == 0 && m.DLVLANPCP != pkt.DLVLANPCP {
		return false
	}
	if m.Wildcards&WildcardDLType == 0 && m.DLType != pkt.DLType {
		return false
	}
	if m.Wildcards&WildcardNWTOS == 0 && m.NWTOS != pkt.NWTOS {
		return false
	}
	if m.Wildcards&WildcardNWProto == 0 && m.NWProto != pkt.NWProto {
		return false
	}
	if !ipMatches(m.NWSrc, pkt.NWSrc, m.NWSrcBits()) {
		return false
	}
	if !ipMatches(m.NWDst, pkt.NWDst, m.NWDstBits()) {
		return false
	}
	if m.Wildcards&WildcardTPSrc == 0 && m.TPSrc != pkt.TPSrc {
		return false
	}
	if m.Wildcards&WildcardTPDst == 0 && m.TPDst != pkt.TPDst {
		return false
	}
	return true
}

// IsExact reports whether the match specifies the full IPv4 5-tuple
// (protocol, addresses, and ports all exact).
func (m Match) IsExact() bool {
	return m.Wildcards&(WildcardNWProto|WildcardTPSrc|WildcardTPDst) == 0 &&
		m.NWSrcBits() == 0 && m.NWDstBits() == 0
}

func (m Match) marshalTo(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], m.Wildcards)
	binary.BigEndian.PutUint16(b[4:6], m.InPort)
	copy(b[6:12], m.DLSrc[:])
	copy(b[12:18], m.DLDst[:])
	binary.BigEndian.PutUint16(b[18:20], m.DLVLAN)
	b[20] = m.DLVLANPCP
	// b[21] pad
	binary.BigEndian.PutUint16(b[22:24], m.DLType)
	b[24] = m.NWTOS
	b[25] = m.NWProto
	// b[26:28] pad
	copy(b[28:32], m.NWSrc[:])
	copy(b[32:36], m.NWDst[:])
	binary.BigEndian.PutUint16(b[36:38], m.TPSrc)
	binary.BigEndian.PutUint16(b[38:40], m.TPDst)
}

func unmarshalMatch(b []byte) (Match, error) {
	if len(b) < MatchLen {
		return Match{}, fmt.Errorf("openflow: match too short: %d bytes", len(b))
	}
	var m Match
	m.Wildcards = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	copy(m.DLSrc[:], b[6:12])
	copy(m.DLDst[:], b[12:18])
	m.DLVLAN = binary.BigEndian.Uint16(b[18:20])
	m.DLVLANPCP = b[20]
	m.DLType = binary.BigEndian.Uint16(b[22:24])
	m.NWTOS = b[24]
	m.NWProto = b[25]
	copy(m.NWSrc[:], b[28:32])
	copy(m.NWDst[:], b[32:36])
	m.TPSrc = binary.BigEndian.Uint16(b[36:38])
	m.TPDst = binary.BigEndian.Uint16(b[38:40])
	return m, nil
}

// MarshalMatchPayload encodes a match as a standalone 40-byte buffer. The
// simulated switch agents use it as the PacketIn payload in place of a raw
// Ethernet frame.
func MarshalMatchPayload(m Match) []byte {
	b := make([]byte, MatchLen)
	m.marshalTo(b)
	return b
}

// UnmarshalMatchPayload decodes a buffer written by MarshalMatchPayload.
func UnmarshalMatchPayload(b []byte) (Match, error) {
	return unmarshalMatch(b)
}

// String renders the non-wildcarded fields, e.g.
// "ip proto=6 10.0.0.1:80->10.0.0.2:5000".
func (m Match) String() string {
	var sb strings.Builder
	if m.Wildcards&WildcardDLType == 0 && m.DLType == 0x0800 {
		sb.WriteString("ip ")
	}
	if m.Wildcards&WildcardNWProto == 0 {
		fmt.Fprintf(&sb, "proto=%d ", m.NWProto)
	}
	src := netip.AddrFrom4(m.NWSrc)
	dst := netip.AddrFrom4(m.NWDst)
	if m.NWSrcBits() >= 32 {
		sb.WriteString("*")
	} else {
		sb.WriteString(src.String())
	}
	if m.Wildcards&WildcardTPSrc == 0 {
		fmt.Fprintf(&sb, ":%d", m.TPSrc)
	} else {
		sb.WriteString(":*")
	}
	sb.WriteString("->")
	if m.NWDstBits() >= 32 {
		sb.WriteString("*")
	} else {
		sb.WriteString(dst.String())
	}
	if m.Wildcards&WildcardTPDst == 0 {
		fmt.Fprintf(&sb, ":%d", m.TPDst)
	} else {
		sb.WriteString(":*")
	}
	return sb.String()
}
