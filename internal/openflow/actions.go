package openflow

import (
	"encoding/binary"
	"fmt"
)

// Action types (enum ofp_action_type). Only the actions the reproduction
// needs are implemented; unknown actions are preserved opaquely.
const (
	ActionTypeOutput     uint16 = 0
	ActionTypeSetVLANVID uint16 = 1
	ActionTypeStripVLAN  uint16 = 3
	ActionTypeEnqueue    uint16 = 11
)

// Action is one entry of an OpenFlow action list.
type Action interface {
	// ActionType returns the ofp_action_type.
	ActionType() uint16
	// actionLen returns the wire length (a multiple of 8).
	actionLen() int
	marshalTo(b []byte)
}

// ActionOutput forwards the packet to a port (possibly a special port such
// as PortController or PortFlood).
type ActionOutput struct {
	Port   uint16
	MaxLen uint16 // bytes to send to controller when Port == PortController
}

// ActionType implements Action.
func (ActionOutput) ActionType() uint16 { return ActionTypeOutput }

func (ActionOutput) actionLen() int { return 8 }

func (a ActionOutput) marshalTo(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], ActionTypeOutput)
	binary.BigEndian.PutUint16(b[2:4], 8)
	binary.BigEndian.PutUint16(b[4:6], a.Port)
	binary.BigEndian.PutUint16(b[6:8], a.MaxLen)
}

// ActionEnqueue forwards the packet to a queue attached to a port.
type ActionEnqueue struct {
	Port    uint16
	QueueID uint32
}

// ActionType implements Action.
func (ActionEnqueue) ActionType() uint16 { return ActionTypeEnqueue }

func (ActionEnqueue) actionLen() int { return 16 }

func (a ActionEnqueue) marshalTo(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], ActionTypeEnqueue)
	binary.BigEndian.PutUint16(b[2:4], 16)
	binary.BigEndian.PutUint16(b[4:6], a.Port)
	// b[6:12] pad
	binary.BigEndian.PutUint32(b[12:16], a.QueueID)
}

// ActionRaw preserves an action this package does not model.
type ActionRaw struct {
	Type uint16
	Body []byte // full wire bytes including the 4-byte action header
}

// ActionType implements Action.
func (a ActionRaw) ActionType() uint16 { return a.Type }

func (a ActionRaw) actionLen() int { return len(a.Body) }

func (a ActionRaw) marshalTo(b []byte) { copy(b, a.Body) }

func marshalActions(actions []Action) ([]byte, error) {
	total := 0
	for _, a := range actions {
		l := a.actionLen()
		if l%8 != 0 || l < 8 {
			return nil, fmt.Errorf("openflow: action %T has invalid length %d", a, l)
		}
		total += l
	}
	b := make([]byte, total)
	off := 0
	for _, a := range actions {
		a.marshalTo(b[off:])
		off += a.actionLen()
	}
	return b, nil
}

func unmarshalActions(b []byte) ([]Action, error) {
	var actions []Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("openflow: truncated action header: %d bytes", len(b))
		}
		typ := binary.BigEndian.Uint16(b[0:2])
		l := int(binary.BigEndian.Uint16(b[2:4]))
		if l < 8 || l%8 != 0 || l > len(b) {
			return nil, fmt.Errorf("openflow: invalid action length %d (have %d bytes)", l, len(b))
		}
		switch typ {
		case ActionTypeOutput:
			actions = append(actions, ActionOutput{
				Port:   binary.BigEndian.Uint16(b[4:6]),
				MaxLen: binary.BigEndian.Uint16(b[6:8]),
			})
		case ActionTypeEnqueue:
			if l < 16 {
				return nil, fmt.Errorf("openflow: ENQUEUE action too short: %d", l)
			}
			actions = append(actions, ActionEnqueue{
				Port:    binary.BigEndian.Uint16(b[4:6]),
				QueueID: binary.BigEndian.Uint32(b[12:16]),
			})
		default:
			actions = append(actions, ActionRaw{Type: typ, Body: append([]byte(nil), b[:l]...)})
		}
		b = b[l:]
	}
	return actions, nil
}
