package openflow

import (
	"encoding/binary"
	"fmt"
)

// --- simple symmetric messages -------------------------------------------

// Hello is exchanged on connection setup.
type Hello struct {
	XID uint32
}

// MsgType implements Message.
func (*Hello) MsgType() MsgType { return TypeHello }

// TransactionID implements Message.
func (m *Hello) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Hello) MarshalBinary() ([]byte, error) {
	b := make([]byte, HeaderLen)
	Header{Version, TypeHello, HeaderLen, m.XID}.marshalTo(b)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Hello) UnmarshalBinary(b []byte) error {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return err
	}
	m.XID = h.XID
	return nil
}

// EchoRequest is a liveness probe; payload is echoed back.
type EchoRequest struct {
	XID  uint32
	Data []byte
}

// MsgType implements Message.
func (*EchoRequest) MsgType() MsgType { return TypeEchoRequest }

// TransactionID implements Message.
func (m *EchoRequest) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *EchoRequest) MarshalBinary() ([]byte, error) {
	return marshalEcho(TypeEchoRequest, m.XID, m.Data)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *EchoRequest) UnmarshalBinary(b []byte) error {
	xid, data, err := unmarshalEcho(b)
	m.XID, m.Data = xid, data
	return err
}

// EchoReply answers an EchoRequest with the same payload.
type EchoReply struct {
	XID  uint32
	Data []byte
}

// MsgType implements Message.
func (*EchoReply) MsgType() MsgType { return TypeEchoReply }

// TransactionID implements Message.
func (m *EchoReply) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *EchoReply) MarshalBinary() ([]byte, error) {
	return marshalEcho(TypeEchoReply, m.XID, m.Data)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *EchoReply) UnmarshalBinary(b []byte) error {
	xid, data, err := unmarshalEcho(b)
	m.XID, m.Data = xid, data
	return err
}

func marshalEcho(t MsgType, xid uint32, data []byte) ([]byte, error) {
	b := make([]byte, HeaderLen+len(data))
	Header{Version, t, uint16(len(b)), xid}.marshalTo(b)
	copy(b[HeaderLen:], data)
	return b, nil
}

func unmarshalEcho(b []byte) (uint32, []byte, error) {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return 0, nil, err
	}
	var data []byte
	if len(b) > HeaderLen {
		data = append([]byte(nil), b[HeaderLen:]...)
	}
	return h.XID, data, nil
}

// Error reports a protocol error (ofp_error_msg).
type Error struct {
	XID     uint32
	ErrType uint16
	Code    uint16
	Data    []byte
}

// MsgType implements Message.
func (*Error) MsgType() MsgType { return TypeError }

// TransactionID implements Message.
func (m *Error) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Error) MarshalBinary() ([]byte, error) {
	b := make([]byte, HeaderLen+4+len(m.Data))
	Header{Version, TypeError, uint16(len(b)), m.XID}.marshalTo(b)
	binary.BigEndian.PutUint16(b[8:10], m.ErrType)
	binary.BigEndian.PutUint16(b[10:12], m.Code)
	copy(b[12:], m.Data)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Error) UnmarshalBinary(b []byte) error {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return err
	}
	if len(b) < HeaderLen+4 {
		return fmt.Errorf("openflow: ERROR message too short: %d bytes", len(b))
	}
	m.XID = h.XID
	m.ErrType = binary.BigEndian.Uint16(b[8:10])
	m.Code = binary.BigEndian.Uint16(b[10:12])
	if len(b) > 12 {
		m.Data = append([]byte(nil), b[12:]...)
	} else {
		m.Data = nil
	}
	return nil
}

// --- handshake -------------------------------------------------------------

// FeaturesRequest asks a switch for its datapath description.
type FeaturesRequest struct {
	XID uint32
}

// MsgType implements Message.
func (*FeaturesRequest) MsgType() MsgType { return TypeFeaturesRequest }

// TransactionID implements Message.
func (m *FeaturesRequest) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *FeaturesRequest) MarshalBinary() ([]byte, error) {
	b := make([]byte, HeaderLen)
	Header{Version, TypeFeaturesRequest, HeaderLen, m.XID}.marshalTo(b)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *FeaturesRequest) UnmarshalBinary(b []byte) error {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return err
	}
	m.XID = h.XID
	return nil
}

// PhyPortLen is the wire length of ofp_phy_port.
const PhyPortLen = 48

// PhyPort describes one physical switch port (ofp_phy_port).
type PhyPort struct {
	PortNo     uint16
	HWAddr     [6]byte
	Name       string // at most 15 bytes on the wire (NUL-terminated)
	Config     uint32
	State      uint32
	Curr       uint32
	Advertised uint32
	Supported  uint32
	Peer       uint32
}

func (p PhyPort) marshalTo(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], p.PortNo)
	copy(b[2:8], p.HWAddr[:])
	name := p.Name
	if len(name) > 15 {
		name = name[:15]
	}
	copy(b[8:24], name)
	binary.BigEndian.PutUint32(b[24:28], p.Config)
	binary.BigEndian.PutUint32(b[28:32], p.State)
	binary.BigEndian.PutUint32(b[32:36], p.Curr)
	binary.BigEndian.PutUint32(b[36:40], p.Advertised)
	binary.BigEndian.PutUint32(b[40:44], p.Supported)
	binary.BigEndian.PutUint32(b[44:48], p.Peer)
}

func unmarshalPhyPort(b []byte) (PhyPort, error) {
	if len(b) < PhyPortLen {
		return PhyPort{}, fmt.Errorf("openflow: phy port too short: %d bytes", len(b))
	}
	var p PhyPort
	p.PortNo = binary.BigEndian.Uint16(b[0:2])
	copy(p.HWAddr[:], b[2:8])
	name := b[8:24]
	for i, c := range name {
		if c == 0 {
			name = name[:i]
			break
		}
	}
	p.Name = string(name)
	p.Config = binary.BigEndian.Uint32(b[24:28])
	p.State = binary.BigEndian.Uint32(b[28:32])
	p.Curr = binary.BigEndian.Uint32(b[32:36])
	p.Advertised = binary.BigEndian.Uint32(b[36:40])
	p.Supported = binary.BigEndian.Uint32(b[40:44])
	p.Peer = binary.BigEndian.Uint32(b[44:48])
	return p, nil
}

// FeaturesReply describes a datapath (ofp_switch_features).
type FeaturesReply struct {
	XID          uint32
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	Actions      uint32
	Ports        []PhyPort
}

// MsgType implements Message.
func (*FeaturesReply) MsgType() MsgType { return TypeFeaturesReply }

// TransactionID implements Message.
func (m *FeaturesReply) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *FeaturesReply) MarshalBinary() ([]byte, error) {
	b := make([]byte, HeaderLen+24+PhyPortLen*len(m.Ports))
	Header{Version, TypeFeaturesReply, uint16(len(b)), m.XID}.marshalTo(b)
	binary.BigEndian.PutUint64(b[8:16], m.DatapathID)
	binary.BigEndian.PutUint32(b[16:20], m.NBuffers)
	b[20] = m.NTables
	// b[21:24] pad
	binary.BigEndian.PutUint32(b[24:28], m.Capabilities)
	binary.BigEndian.PutUint32(b[28:32], m.Actions)
	off := 32
	for _, p := range m.Ports {
		p.marshalTo(b[off : off+PhyPortLen])
		off += PhyPortLen
	}
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *FeaturesReply) UnmarshalBinary(b []byte) error {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return err
	}
	if len(b) < HeaderLen+24 {
		return fmt.Errorf("openflow: FEATURES_REPLY too short: %d bytes", len(b))
	}
	m.XID = h.XID
	m.DatapathID = binary.BigEndian.Uint64(b[8:16])
	m.NBuffers = binary.BigEndian.Uint32(b[16:20])
	m.NTables = b[20]
	m.Capabilities = binary.BigEndian.Uint32(b[24:28])
	m.Actions = binary.BigEndian.Uint32(b[28:32])
	m.Ports = nil
	for off := 32; off+PhyPortLen <= len(b); off += PhyPortLen {
		p, err := unmarshalPhyPort(b[off:])
		if err != nil {
			return err
		}
		m.Ports = append(m.Ports, p)
	}
	return nil
}

// --- async / controller-command messages -----------------------------------

// PacketIn reasons (enum ofp_packet_in_reason).
const (
	PacketInReasonNoMatch uint8 = iota
	PacketInReasonAction
)

// PacketIn notifies the controller of a packet without a matching flow
// entry (the reactive-mode telemetry FlowDiff's signatures are built from).
type PacketIn struct {
	XID      uint32
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   uint8
	Data     []byte // truncated packet bytes
}

// MsgType implements Message.
func (*PacketIn) MsgType() MsgType { return TypePacketIn }

// TransactionID implements Message.
func (m *PacketIn) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *PacketIn) MarshalBinary() ([]byte, error) {
	b := make([]byte, HeaderLen+10+len(m.Data))
	Header{Version, TypePacketIn, uint16(len(b)), m.XID}.marshalTo(b)
	binary.BigEndian.PutUint32(b[8:12], m.BufferID)
	binary.BigEndian.PutUint16(b[12:14], m.TotalLen)
	binary.BigEndian.PutUint16(b[14:16], m.InPort)
	b[16] = m.Reason
	// b[17] pad
	copy(b[18:], m.Data)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *PacketIn) UnmarshalBinary(b []byte) error {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return err
	}
	if len(b) < HeaderLen+10 {
		return fmt.Errorf("openflow: PACKET_IN too short: %d bytes", len(b))
	}
	m.XID = h.XID
	m.BufferID = binary.BigEndian.Uint32(b[8:12])
	m.TotalLen = binary.BigEndian.Uint16(b[12:14])
	m.InPort = binary.BigEndian.Uint16(b[14:16])
	m.Reason = b[16]
	if len(b) > 18 {
		m.Data = append([]byte(nil), b[18:]...)
	} else {
		m.Data = nil
	}
	return nil
}

// PacketOut instructs a switch to emit a (possibly buffered) packet.
type PacketOut struct {
	XID      uint32
	BufferID uint32
	InPort   uint16
	Actions  []Action
	Data     []byte
}

// MsgType implements Message.
func (*PacketOut) MsgType() MsgType { return TypePacketOut }

// TransactionID implements Message.
func (m *PacketOut) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *PacketOut) MarshalBinary() ([]byte, error) {
	actions, err := marshalActions(m.Actions)
	if err != nil {
		return nil, err
	}
	b := make([]byte, HeaderLen+8+len(actions)+len(m.Data))
	Header{Version, TypePacketOut, uint16(len(b)), m.XID}.marshalTo(b)
	binary.BigEndian.PutUint32(b[8:12], m.BufferID)
	binary.BigEndian.PutUint16(b[12:14], m.InPort)
	binary.BigEndian.PutUint16(b[14:16], uint16(len(actions)))
	copy(b[16:], actions)
	copy(b[16+len(actions):], m.Data)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *PacketOut) UnmarshalBinary(b []byte) error {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return err
	}
	if len(b) < HeaderLen+8 {
		return fmt.Errorf("openflow: PACKET_OUT too short: %d bytes", len(b))
	}
	m.XID = h.XID
	m.BufferID = binary.BigEndian.Uint32(b[8:12])
	m.InPort = binary.BigEndian.Uint16(b[12:14])
	alen := int(binary.BigEndian.Uint16(b[14:16]))
	if len(b) < 16+alen {
		return fmt.Errorf("openflow: PACKET_OUT actions truncated")
	}
	m.Actions, err = unmarshalActions(b[16 : 16+alen])
	if err != nil {
		return err
	}
	if len(b) > 16+alen {
		m.Data = append([]byte(nil), b[16+alen:]...)
	} else {
		m.Data = nil
	}
	return nil
}

// FlowMod commands (enum ofp_flow_mod_command).
const (
	FlowModAdd uint16 = iota
	FlowModModify
	FlowModModifyStrict
	FlowModDelete
	FlowModDeleteStrict
)

// FlowMod flags.
const (
	FlowModFlagSendFlowRem  uint16 = 1 << 0
	FlowModFlagCheckOverlap uint16 = 1 << 1
	FlowModFlagEmerg        uint16 = 1 << 2
)

// FlowMod installs, modifies, or deletes flow-table entries.
type FlowMod struct {
	XID         uint32
	Match       Match
	Cookie      uint64
	Command     uint16
	IdleTimeout uint16 // seconds
	HardTimeout uint16 // seconds
	Priority    uint16
	BufferID    uint32
	OutPort     uint16
	Flags       uint16
	Actions     []Action
}

// MsgType implements Message.
func (*FlowMod) MsgType() MsgType { return TypeFlowMod }

// TransactionID implements Message.
func (m *FlowMod) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *FlowMod) MarshalBinary() ([]byte, error) {
	actions, err := marshalActions(m.Actions)
	if err != nil {
		return nil, err
	}
	b := make([]byte, HeaderLen+MatchLen+24+len(actions))
	Header{Version, TypeFlowMod, uint16(len(b)), m.XID}.marshalTo(b)
	m.Match.marshalTo(b[8:48])
	binary.BigEndian.PutUint64(b[48:56], m.Cookie)
	binary.BigEndian.PutUint16(b[56:58], m.Command)
	binary.BigEndian.PutUint16(b[58:60], m.IdleTimeout)
	binary.BigEndian.PutUint16(b[60:62], m.HardTimeout)
	binary.BigEndian.PutUint16(b[62:64], m.Priority)
	binary.BigEndian.PutUint32(b[64:68], m.BufferID)
	binary.BigEndian.PutUint16(b[68:70], m.OutPort)
	binary.BigEndian.PutUint16(b[70:72], m.Flags)
	copy(b[72:], actions)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *FlowMod) UnmarshalBinary(b []byte) error {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return err
	}
	if len(b) < HeaderLen+MatchLen+24 {
		return fmt.Errorf("openflow: FLOW_MOD too short: %d bytes", len(b))
	}
	m.XID = h.XID
	if m.Match, err = unmarshalMatch(b[8:48]); err != nil {
		return err
	}
	m.Cookie = binary.BigEndian.Uint64(b[48:56])
	m.Command = binary.BigEndian.Uint16(b[56:58])
	m.IdleTimeout = binary.BigEndian.Uint16(b[58:60])
	m.HardTimeout = binary.BigEndian.Uint16(b[60:62])
	m.Priority = binary.BigEndian.Uint16(b[62:64])
	m.BufferID = binary.BigEndian.Uint32(b[64:68])
	m.OutPort = binary.BigEndian.Uint16(b[68:70])
	m.Flags = binary.BigEndian.Uint16(b[70:72])
	m.Actions, err = unmarshalActions(b[72:])
	return err
}

// FlowRemoved reasons (enum ofp_flow_removed_reason).
const (
	FlowRemovedReasonIdleTimeout uint8 = iota
	FlowRemovedReasonHardTimeout
	FlowRemovedReasonDelete
)

// FlowRemoved notifies the controller that a flow entry expired, carrying
// the entry's final byte/packet counters and duration — the volume
// telemetry behind FlowDiff's FS signature.
type FlowRemoved struct {
	XID          uint32
	Match        Match
	Cookie       uint64
	Priority     uint16
	Reason       uint8
	DurationSec  uint32
	DurationNsec uint32
	IdleTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
}

// MsgType implements Message.
func (*FlowRemoved) MsgType() MsgType { return TypeFlowRemoved }

// TransactionID implements Message.
func (m *FlowRemoved) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *FlowRemoved) MarshalBinary() ([]byte, error) {
	b := make([]byte, HeaderLen+MatchLen+40)
	Header{Version, TypeFlowRemoved, uint16(len(b)), m.XID}.marshalTo(b)
	m.Match.marshalTo(b[8:48])
	binary.BigEndian.PutUint64(b[48:56], m.Cookie)
	binary.BigEndian.PutUint16(b[56:58], m.Priority)
	b[58] = m.Reason
	// b[59] pad
	binary.BigEndian.PutUint32(b[60:64], m.DurationSec)
	binary.BigEndian.PutUint32(b[64:68], m.DurationNsec)
	binary.BigEndian.PutUint16(b[68:70], m.IdleTimeout)
	// b[70:72] pad
	binary.BigEndian.PutUint64(b[72:80], m.PacketCount)
	binary.BigEndian.PutUint64(b[80:88], m.ByteCount)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *FlowRemoved) UnmarshalBinary(b []byte) error {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return err
	}
	if len(b) < HeaderLen+MatchLen+40 {
		return fmt.Errorf("openflow: FLOW_REMOVED too short: %d bytes", len(b))
	}
	m.XID = h.XID
	if m.Match, err = unmarshalMatch(b[8:48]); err != nil {
		return err
	}
	m.Cookie = binary.BigEndian.Uint64(b[48:56])
	m.Priority = binary.BigEndian.Uint16(b[56:58])
	m.Reason = b[58]
	m.DurationSec = binary.BigEndian.Uint32(b[60:64])
	m.DurationNsec = binary.BigEndian.Uint32(b[64:68])
	m.IdleTimeout = binary.BigEndian.Uint16(b[68:70])
	m.PacketCount = binary.BigEndian.Uint64(b[72:80])
	m.ByteCount = binary.BigEndian.Uint64(b[80:88])
	return nil
}

// PortStatus reasons (enum ofp_port_reason).
const (
	PortReasonAdd uint8 = iota
	PortReasonDelete
	PortReasonModify
)

// PortStatus announces a physical port change (link up/down, add/remove).
type PortStatus struct {
	XID    uint32
	Reason uint8
	Desc   PhyPort
}

// MsgType implements Message.
func (*PortStatus) MsgType() MsgType { return TypePortStatus }

// TransactionID implements Message.
func (m *PortStatus) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *PortStatus) MarshalBinary() ([]byte, error) {
	b := make([]byte, HeaderLen+8+PhyPortLen)
	Header{Version, TypePortStatus, uint16(len(b)), m.XID}.marshalTo(b)
	b[8] = m.Reason
	// b[9:16] pad
	m.Desc.marshalTo(b[16:])
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *PortStatus) UnmarshalBinary(b []byte) error {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return err
	}
	if len(b) < HeaderLen+8+PhyPortLen {
		return fmt.Errorf("openflow: PORT_STATUS too short: %d bytes", len(b))
	}
	m.XID = h.XID
	m.Reason = b[8]
	m.Desc, err = unmarshalPhyPort(b[16:])
	return err
}

// BarrierRequest asks the switch to finish processing preceding messages.
type BarrierRequest struct {
	XID uint32
}

// MsgType implements Message.
func (*BarrierRequest) MsgType() MsgType { return TypeBarrierRequest }

// TransactionID implements Message.
func (m *BarrierRequest) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *BarrierRequest) MarshalBinary() ([]byte, error) {
	b := make([]byte, HeaderLen)
	Header{Version, TypeBarrierRequest, HeaderLen, m.XID}.marshalTo(b)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *BarrierRequest) UnmarshalBinary(b []byte) error {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return err
	}
	m.XID = h.XID
	return nil
}

// BarrierReply answers a BarrierRequest.
type BarrierReply struct {
	XID uint32
}

// MsgType implements Message.
func (*BarrierReply) MsgType() MsgType { return TypeBarrierReply }

// TransactionID implements Message.
func (m *BarrierReply) TransactionID() uint32 { return m.XID }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *BarrierReply) MarshalBinary() ([]byte, error) {
	b := make([]byte, HeaderLen)
	Header{Version, TypeBarrierReply, HeaderLen, m.XID}.marshalTo(b)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *BarrierReply) UnmarshalBinary(b []byte) error {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return err
	}
	m.XID = h.XID
	return nil
}
