package openflow

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// maxMessageLen bounds accepted message sizes; the OpenFlow length field is
// 16 bits so this is the protocol maximum.
const maxMessageLen = 1 << 16

// newMessage returns a zero value of the concrete message type for t.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeError:
		return &Error{}, nil
	case TypeEchoRequest:
		return &EchoRequest{}, nil
	case TypeEchoReply:
		return &EchoReply{}, nil
	case TypeFeaturesRequest:
		return &FeaturesRequest{}, nil
	case TypeFeaturesReply:
		return &FeaturesReply{}, nil
	case TypePacketIn:
		return &PacketIn{}, nil
	case TypeFlowRemoved:
		return &FlowRemoved{}, nil
	case TypePortStatus:
		return &PortStatus{}, nil
	case TypePacketOut:
		return &PacketOut{}, nil
	case TypeFlowMod:
		return &FlowMod{}, nil
	case TypeStatsRequest:
		return &StatsRequest{}, nil
	case TypeStatsReply:
		return &StatsReply{}, nil
	case TypeBarrierRequest:
		return &BarrierRequest{}, nil
	case TypeBarrierReply:
		return &BarrierReply{}, nil
	default:
		return nil, fmt.Errorf("openflow: unsupported message type %v", t)
	}
}

// Decode parses a single complete OpenFlow message from b.
func Decode(b []byte) (Message, error) {
	h, err := UnmarshalHeader(b)
	if err != nil {
		return nil, err
	}
	if h.Version != Version {
		return nil, fmt.Errorf("openflow: unsupported version 0x%02x", h.Version)
	}
	if int(h.Length) != len(b) {
		return nil, fmt.Errorf("openflow: header length %d does not match buffer %d", h.Length, len(b))
	}
	msg, err := newMessage(h.Type)
	if err != nil {
		return nil, err
	}
	if err := msg.UnmarshalBinary(b); err != nil {
		return nil, fmt.Errorf("openflow: decoding %v: %w", h.Type, err)
	}
	return msg, nil
}

// Reader reads framed OpenFlow messages from an underlying stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader wraps r in a message reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// ReadMessage reads and decodes the next message. It returns io.EOF when
// the stream ends cleanly at a message boundary.
func (r *Reader) ReadMessage() (Message, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("openflow: truncated header: %w", err)
		}
		return nil, err
	}
	h, err := UnmarshalHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if h.Length < HeaderLen {
		return nil, fmt.Errorf("openflow: invalid message length %d", h.Length)
	}
	buf := make([]byte, h.Length)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r.r, buf[HeaderLen:]); err != nil {
		return nil, fmt.Errorf("openflow: truncated %v body: %w", h.Type, err)
	}
	return Decode(buf)
}

// Writer writes framed OpenFlow messages to an underlying stream. It is
// safe for concurrent use.
type Writer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriter wraps w in a message writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// WriteMessage encodes and writes msg.
func (w *Writer) WriteMessage(msg Message) error {
	b, err := msg.MarshalBinary()
	if err != nil {
		return fmt.Errorf("openflow: encoding %v: %w", msg.MsgType(), err)
	}
	if len(b) > maxMessageLen {
		return fmt.Errorf("openflow: message %v exceeds max length: %d bytes", msg.MsgType(), len(b))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("openflow: writing %v: %w", msg.MsgType(), err)
	}
	return nil
}
