// Package openflow implements the subset of the OpenFlow 1.0 wire protocol
// that FlowDiff's measurement plane depends on: the symmetric messages
// (Hello, Echo, Error), the handshake (FeaturesRequest/Reply), and the
// asynchronous/controller-command messages that carry flow-level telemetry
// (PacketIn, PacketOut, FlowMod, FlowRemoved, PortStatus, flow/port stats).
//
// All multi-byte fields are big-endian, per the OpenFlow specification.
// Every message type implements Message: it round-trips through
// MarshalBinary/UnmarshalBinary, and the framed ReadMessage/WriteMessage
// pair moves messages over any io.Reader/io.Writer (a TCP control channel
// in the integration tests, in-memory pipes in the simulator).
package openflow

import (
	"encoding"
	"encoding/binary"
	"fmt"
)

// Version is the OpenFlow protocol version implemented by this package.
const Version = 0x01

// MsgType identifies an OpenFlow 1.0 message type.
type MsgType uint8

// OpenFlow 1.0 message types (enum ofp_type).
const (
	TypeHello MsgType = iota
	TypeError
	TypeEchoRequest
	TypeEchoReply
	TypeVendor
	TypeFeaturesRequest
	TypeFeaturesReply
	TypeGetConfigRequest
	TypeGetConfigReply
	TypeSetConfig
	TypePacketIn
	TypeFlowRemoved
	TypePortStatus
	TypePacketOut
	TypeFlowMod
	TypePortMod
	TypeStatsRequest
	TypeStatsReply
	TypeBarrierRequest
	TypeBarrierReply
)

var msgTypeNames = map[MsgType]string{
	TypeHello:            "HELLO",
	TypeError:            "ERROR",
	TypeEchoRequest:      "ECHO_REQUEST",
	TypeEchoReply:        "ECHO_REPLY",
	TypeVendor:           "VENDOR",
	TypeFeaturesRequest:  "FEATURES_REQUEST",
	TypeFeaturesReply:    "FEATURES_REPLY",
	TypeGetConfigRequest: "GET_CONFIG_REQUEST",
	TypeGetConfigReply:   "GET_CONFIG_REPLY",
	TypeSetConfig:        "SET_CONFIG",
	TypePacketIn:         "PACKET_IN",
	TypeFlowRemoved:      "FLOW_REMOVED",
	TypePortStatus:       "PORT_STATUS",
	TypePacketOut:        "PACKET_OUT",
	TypeFlowMod:          "FLOW_MOD",
	TypePortMod:          "PORT_MOD",
	TypeStatsRequest:     "STATS_REQUEST",
	TypeStatsReply:       "STATS_REPLY",
	TypeBarrierRequest:   "BARRIER_REQUEST",
	TypeBarrierReply:     "BARRIER_REPLY",
}

// String returns the OpenFlow spec name of the message type.
func (t MsgType) String() string {
	if n, ok := msgTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// HeaderLen is the length in bytes of the common OpenFlow header.
const HeaderLen = 8

// Header is the common prefix of every OpenFlow message.
type Header struct {
	Version uint8
	Type    MsgType
	Length  uint16 // total message length including the header
	XID     uint32 // transaction id, echoed in replies
}

func (h Header) marshalTo(b []byte) {
	b[0] = h.Version
	b[1] = uint8(h.Type)
	binary.BigEndian.PutUint16(b[2:4], h.Length)
	binary.BigEndian.PutUint32(b[4:8], h.XID)
}

// UnmarshalHeader decodes the 8-byte common header.
func UnmarshalHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("openflow: header too short: %d bytes", len(b))
	}
	return Header{
		Version: b[0],
		Type:    MsgType(b[1]),
		Length:  binary.BigEndian.Uint16(b[2:4]),
		XID:     binary.BigEndian.Uint32(b[4:8]),
	}, nil
}

// Message is implemented by every OpenFlow message in this package.
type Message interface {
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
	// MsgType returns the ofp_type of the message.
	MsgType() MsgType
	// TransactionID returns the header XID.
	TransactionID() uint32
}

// Special port numbers (enum ofp_port).
const (
	PortMax        uint16 = 0xff00
	PortInPort     uint16 = 0xfff8
	PortTable      uint16 = 0xfff9
	PortNormal     uint16 = 0xfffa
	PortFlood      uint16 = 0xfffb
	PortAll        uint16 = 0xfffc
	PortController uint16 = 0xfffd
	PortLocal      uint16 = 0xfffe
	PortNone       uint16 = 0xffff
)

// BufferNone indicates that a PacketIn/FlowMod carries no buffered packet.
const BufferNone uint32 = 0xffffffff
