package openflow

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

var (
	addrA = netip.MustParseAddr("10.1.0.1")
	addrB = netip.MustParseAddr("10.1.0.2")
	addrC = netip.MustParseAddr("10.2.0.3")
)

func pkt(proto uint8, src, dst netip.Addr, tpSrc, tpDst uint16) Match {
	m := ExactMatch(proto, src, dst, tpSrc, tpDst)
	m.Wildcards = 0
	return m
}

func TestExactMatchMatchesItself(t *testing.T) {
	e := ExactMatch(6, addrA, addrB, 1000, 80)
	if !e.Matches(pkt(6, addrA, addrB, 1000, 80)) {
		t.Error("exact entry should match the identical packet")
	}
	if !e.IsExact() {
		t.Error("ExactMatch should be exact")
	}
}

func TestExactMatchRejectsDifferences(t *testing.T) {
	e := ExactMatch(6, addrA, addrB, 1000, 80)
	cases := []struct {
		name string
		p    Match
	}{
		{"different src addr", pkt(6, addrC, addrB, 1000, 80)},
		{"different dst addr", pkt(6, addrA, addrC, 1000, 80)},
		{"different proto", pkt(17, addrA, addrB, 1000, 80)},
		{"different src port", pkt(6, addrA, addrB, 1001, 80)},
		{"different dst port", pkt(6, addrA, addrB, 1000, 443)},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if e.Matches(tt.p) {
				t.Error("exact entry matched a differing packet")
			}
		})
	}
}

func TestHostPairMatchIgnoresPorts(t *testing.T) {
	w := HostPairMatch(addrA, addrB)
	if w.IsExact() {
		t.Error("HostPairMatch should not be exact")
	}
	if !w.Matches(pkt(6, addrA, addrB, 1, 2)) {
		t.Error("wildcard entry should match any ports")
	}
	if !w.Matches(pkt(17, addrA, addrB, 9999, 53)) {
		t.Error("wildcard entry should match any protocol")
	}
	if w.Matches(pkt(6, addrB, addrA, 1, 2)) {
		t.Error("wildcard entry should not match reversed hosts")
	}
}

func TestNWBitsAccessors(t *testing.T) {
	var m Match
	for _, bits := range []int{0, 1, 8, 16, 31, 32} {
		m.SetNWSrcBits(bits)
		m.SetNWDstBits(bits)
		if m.NWSrcBits() != bits || m.NWDstBits() != bits {
			t.Errorf("bits = %d, got src %d dst %d", bits, m.NWSrcBits(), m.NWDstBits())
		}
	}
	// Values above 32 are capped at 32 by the accessor.
	m.SetNWSrcBits(63)
	if m.NWSrcBits() != 32 {
		t.Errorf("NWSrcBits() = %d, want capped 32", m.NWSrcBits())
	}
}

func TestCIDRMatching(t *testing.T) {
	e := ExactMatch(6, netip.MustParseAddr("10.1.0.0"), addrB, 0, 80)
	e.Wildcards |= WildcardTPSrc
	e.SetNWSrcBits(16) // match 10.1.*.*
	if !e.Matches(pkt(6, netip.MustParseAddr("10.1.255.9"), addrB, 5, 80)) {
		t.Error("10.1/16 entry should match 10.1.255.9")
	}
	if e.Matches(pkt(6, netip.MustParseAddr("10.2.0.1"), addrB, 5, 80)) {
		t.Error("10.1/16 entry should not match 10.2.0.1")
	}
}

func TestWildcardAllMatchesAnything(t *testing.T) {
	entry := Match{Wildcards: WildcardAll}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomMatch(rng)
		p.Wildcards = 0
		return entry.Matches(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMoreSpecificWildcardsSubsume(t *testing.T) {
	// Property: if an exact entry matches a packet, the host-pair wildcard
	// built from the same addresses also matches it.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var srcB, dstB [4]byte
		rng.Read(srcB[:])
		rng.Read(dstB[:])
		src := netip.AddrFrom4(srcB)
		dst := netip.AddrFrom4(dstB)
		tpS := uint16(rng.Intn(65536))
		tpD := uint16(rng.Intn(65536))
		p := pkt(6, src, dst, tpS, tpD)
		exact := ExactMatch(6, src, dst, tpS, tpD)
		wide := HostPairMatch(src, dst)
		return !exact.Matches(p) || wide.Matches(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMatchString(t *testing.T) {
	e := ExactMatch(6, addrA, addrB, 1000, 80)
	s := e.String()
	for _, want := range []string{"10.1.0.1:1000", "10.1.0.2:80", "proto=6"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	w := HostPairMatch(addrA, addrB)
	if !strings.Contains(w.String(), ":*") {
		t.Errorf("wildcard String() = %q, want port wildcards", w.String())
	}
}
