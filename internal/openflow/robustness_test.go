package openflow

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanicsOnRandomBytes feeds arbitrary byte soup to the
// decoder: it must return an error or a message, never panic or loop.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, int(n)%512)
		rng.Read(buf)
		// Decode must not panic regardless of content.
		_, _ = Decode(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanicsOnCorruptedValidMessages takes well-formed
// messages and flips bytes: decoding must stay panic-free, and when it
// succeeds the header type must be preserved or the error explicit.
func TestDecodeNeverPanicsOnCorruptedValidMessages(t *testing.T) {
	msgs := []Message{
		&Hello{XID: 1},
		&PacketIn{XID: 2, Data: []byte("payload")},
		&FlowMod{XID: 3, Actions: []Action{ActionOutput{Port: 1}}},
		&FlowRemoved{XID: 4},
		&StatsReply{XID: 5, StatsType: StatsTypeFlow, Flows: []FlowStatsEntry{{}}},
		&FeaturesReply{XID: 6, Ports: []PhyPort{{PortNo: 1}}},
		&PacketOut{XID: 7, Actions: []Action{ActionEnqueue{Port: 2, QueueID: 3}}},
	}
	rng := rand.New(rand.NewSource(99))
	for _, m := range msgs {
		base, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 500; trial++ {
			b := append([]byte(nil), base...)
			// Flip 1-4 random bytes, keeping the length field coherent
			// half the time.
			for k := 0; k < 1+rng.Intn(4); k++ {
				b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
			}
			_, _ = Decode(b) // must not panic
		}
	}
}

// TestReaderSurvivesGarbageStream streams random bytes through the framed
// reader: every outcome must be an error or a message, and the reader
// must terminate.
func TestReaderSurvivesGarbageStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		buf := make([]byte, rng.Intn(256))
		rng.Read(buf)
		r := NewReader(bytes.NewReader(buf))
		for i := 0; i < 64; i++ { // bounded: must hit EOF or an error
			if _, err := r.ReadMessage(); err != nil {
				break
			}
		}
	}
}

// TestReaderPartialMessages verifies clean handling of every truncation
// point of a valid message.
func TestReaderPartialMessages(t *testing.T) {
	m := &FlowMod{XID: 9, Actions: []Action{ActionOutput{Port: 3}}}
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		r := NewReader(bytes.NewReader(b[:cut]))
		_, err := r.ReadMessage()
		if err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
		if cut == 0 && err != io.EOF {
			t.Errorf("empty stream should be io.EOF, got %v", err)
		}
	}
}

// TestActionsRoundTripUnknownTypes: unknown actions survive a decode ->
// encode round trip byte-identically (opaque preservation).
func TestActionsRoundTripUnknownTypes(t *testing.T) {
	raw := make([]byte, 16)
	raw[0], raw[1] = 0x00, 0x2a // type 42
	raw[2], raw[3] = 0x00, 0x10 // len 16
	for i := 4; i < 16; i++ {
		raw[i] = byte(i)
	}
	actions, err := unmarshalActions(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 {
		t.Fatalf("got %d actions", len(actions))
	}
	back, err := marshalActions(actions)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, back) {
		t.Errorf("unknown action not preserved:\n in  %x\n out %x", raw, back)
	}
}
