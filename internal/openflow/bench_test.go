package openflow

import (
	"net/netip"
	"testing"
)

func benchFlowMod() *FlowMod {
	src := netip.MustParseAddr("10.0.1.5")
	dst := netip.MustParseAddr("10.0.2.9")
	return &FlowMod{
		XID:         11,
		Match:       ExactMatch(6, src, dst, 45678, 80),
		Command:     FlowModAdd,
		IdleTimeout: 5,
		HardTimeout: 60,
		Priority:    100,
		BufferID:    BufferNone,
		OutPort:     PortNone,
		Flags:       FlowModFlagSendFlowRem,
		Actions:     []Action{ActionOutput{Port: 2, MaxLen: 128}},
	}
}

func BenchmarkFlowModEncode(b *testing.B) {
	m := benchFlowMod()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowModDecode(b *testing.B) {
	buf, err := benchFlowMod().MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchMatches(b *testing.B) {
	src := netip.MustParseAddr("10.0.1.5")
	dst := netip.MustParseAddr("10.0.2.9")
	entry := HostPairMatch(src, dst)
	pkt := ExactMatch(6, src, dst, 45678, 80)
	pkt.Wildcards = 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !entry.Matches(pkt) {
			b.Fatal("no match")
		}
	}
}
