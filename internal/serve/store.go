package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"flowdiff/internal/flowlog"
	"flowdiff/internal/flowlog/colseg"
)

// Store is the service's on-disk layout. Everything a tenant needs to
// survive a restart lives under one directory per tenant:
//
//	<dir>/
//	  <tenant>/
//	    baseline.fdc        frozen baseline capture (FDC1)
//	    baseline.json       BaselineMeta sidecar
//	    reports/
//	      0000000000000001.json   one ReportRecord per diagnosed window
//
// Every write is write-ahead: the payload lands in a dot-prefixed temp
// file first and is renamed into place, so a crash mid-write leaves
// either the old content or nothing — never a torn file. Readers skip
// dot-prefixed names.
//
// Store methods are safe for concurrent use across tenants; within one
// tenant the server serializes writes through the tenant's worker.
type Store struct {
	dir string
}

// ErrNotFound reports a missing tenant, baseline, or report.
var ErrNotFound = errors.New("serve: not found")

// OpenStore opens (creating if needed) the service data directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("serve: store directory is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) tenantDir(tenant string) string {
	return filepath.Join(s.dir, tenant)
}

func (s *Store) reportsDir(tenant string) string {
	return filepath.Join(s.tenantDir(tenant), "reports")
}

// reportName formats a sequence number as a fixed-width, lexically
// sortable file name.
func reportName(seq uint64) string {
	return fmt.Sprintf("%016d.json", seq)
}

// writeFileAtomic writes data to path via a temp file + rename in the
// same directory.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// Tenants lists tenant IDs present on disk, sorted.
func (s *Store) Tenants() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: listing tenants: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && validTenantID(e.Name()) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// SaveBaseline persists a tenant's baseline capture (as FDC1) and its
// metadata sidecar. The capture is written first so a crash between the
// two writes is detected by the sidecar/capture version check on load.
func (s *Store) SaveBaseline(tenant string, log *flowlog.Log, meta BaselineMeta) error {
	dir := s.tenantDir(tenant)
	if err := os.MkdirAll(s.reportsDir(tenant), 0o755); err != nil {
		return fmt.Errorf("serve: saving baseline for %s: %w", tenant, err)
	}
	path := filepath.Join(dir, "baseline.fdc")
	tmp, err := os.CreateTemp(dir, ".baseline.fdc.tmp*")
	if err != nil {
		return fmt.Errorf("serve: saving baseline for %s: %w", tenant, err)
	}
	tmpName := tmp.Name()
	if err := colseg.Write(tmp, log, colseg.WriterOptions{}); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("serve: saving baseline for %s: %w", tenant, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: saving baseline for %s: %w", tenant, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: saving baseline for %s: %w", tenant, err)
	}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: saving baseline for %s: %w", tenant, err)
	}
	if err := writeFileAtomic(filepath.Join(dir, "baseline.json"), data); err != nil {
		return fmt.Errorf("serve: saving baseline for %s: %w", tenant, err)
	}
	return nil
}

// LoadBaseline reads a tenant's persisted baseline and metadata; ctx
// governs the columnar decode.
func (s *Store) LoadBaseline(ctx context.Context, tenant string) (*flowlog.Log, BaselineMeta, error) {
	var meta BaselineMeta
	dir := s.tenantDir(tenant)
	data, err := os.ReadFile(filepath.Join(dir, "baseline.json"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, meta, fmt.Errorf("serve: baseline for %s: %w", tenant, ErrNotFound)
	}
	if err != nil {
		return nil, meta, fmt.Errorf("serve: loading baseline for %s: %w", tenant, err)
	}
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, meta, fmt.Errorf("serve: loading baseline for %s: %w", tenant, err)
	}
	f, err := os.Open(filepath.Join(dir, "baseline.fdc"))
	if err != nil {
		return nil, meta, fmt.Errorf("serve: loading baseline for %s: %w", tenant, err)
	}
	defer f.Close()
	cr, err := colseg.NewReaderContext(ctx, f, colseg.ReaderOptions{})
	if err != nil {
		return nil, meta, fmt.Errorf("serve: loading baseline for %s: %w", tenant, err)
	}
	log, err := cr.ReadAll()
	if err != nil {
		return nil, meta, fmt.Errorf("serve: loading baseline for %s: %w", tenant, err)
	}
	return log, meta, nil
}

// BaselineBytes returns the raw persisted baseline capture (FDC1) for
// GET /v1/tenants/{id}/baseline.
func (s *Store) BaselineBytes(tenant string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.tenantDir(tenant), "baseline.fdc"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("serve: baseline for %s: %w", tenant, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: reading baseline for %s: %w", tenant, err)
	}
	return data, nil
}

// SaveReport persists one window diagnosis.
func (s *Store) SaveReport(tenant string, rec ReportRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: saving report %d for %s: %w", rec.Seq, tenant, err)
	}
	path := filepath.Join(s.reportsDir(tenant), reportName(rec.Seq))
	if err := writeFileAtomic(path, data); err != nil {
		return fmt.Errorf("serve: saving report %d for %s: %w", rec.Seq, tenant, err)
	}
	return nil
}

// LoadReport reads one persisted window diagnosis.
func (s *Store) LoadReport(tenant string, seq uint64) (ReportRecord, error) {
	var rec ReportRecord
	data, err := os.ReadFile(filepath.Join(s.reportsDir(tenant), reportName(seq)))
	if errors.Is(err, fs.ErrNotExist) {
		return rec, fmt.Errorf("serve: report %d for %s: %w", seq, tenant, ErrNotFound)
	}
	if err != nil {
		return rec, fmt.Errorf("serve: loading report %d for %s: %w", seq, tenant, err)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("serve: loading report %d for %s: %w", seq, tenant, err)
	}
	return rec, nil
}

// ListReports summarizes a tenant's persisted reports in sequence
// order. A missing tenant directory lists as empty, not as an error —
// a registered tenant may simply not have flushed yet.
func (s *Store) ListReports(tenant string) ([]ReportSummary, error) {
	entries, err := os.ReadDir(s.reportsDir(tenant))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: listing reports for %s: %w", tenant, err)
	}
	var out []ReportSummary
	for _, e := range entries {
		seq, ok := parseReportName(e.Name())
		if !ok {
			continue
		}
		rec, err := s.LoadReport(tenant, seq)
		if err != nil {
			return nil, err
		}
		out = append(out, ReportSummary{
			Seq:     rec.Seq,
			From:    rec.From,
			To:      rec.To,
			Known:   len(rec.Report.Known),
			Unknown: len(rec.Report.Unknown),
			Alarm:   len(rec.Report.Unknown) > 0,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// MaxSeq returns the highest persisted report sequence for a tenant (0
// when none), used to resume numbering after a restart.
func (s *Store) MaxSeq(tenant string) (uint64, error) {
	entries, err := os.ReadDir(s.reportsDir(tenant))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("serve: scanning reports for %s: %w", tenant, err)
	}
	var max uint64
	for _, e := range entries {
		if seq, ok := parseReportName(e.Name()); ok && seq > max {
			max = seq
		}
	}
	return max, nil
}

// parseReportName extracts the sequence number from a report file name.
func parseReportName(name string) (uint64, bool) {
	if len(name) != len("0000000000000000.json") || filepath.Ext(name) != ".json" {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[:16], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// GCReports removes a tenant's reports persisted before cutoff (by file
// modification time, which matches ReportRecord.SavedAtUnixNS for files
// this process wrote). It returns how many files were removed. The
// baseline is never collected — only the window reports expire.
func (s *Store) GCReports(tenant string, cutoff time.Time) (int, error) {
	entries, err := os.ReadDir(s.reportsDir(tenant))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("serve: gc for %s: %w", tenant, err)
	}
	removed := 0
	for _, e := range entries {
		if _, ok := parseReportName(e.Name()); !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if info.ModTime().Before(cutoff) {
			if err := os.Remove(filepath.Join(s.reportsDir(tenant), e.Name())); err == nil {
				removed++
			}
		}
	}
	return removed, nil
}

// DeleteTenant removes everything the store holds for a tenant.
func (s *Store) DeleteTenant(tenant string) error {
	if err := os.RemoveAll(s.tenantDir(tenant)); err != nil {
		return fmt.Errorf("serve: deleting tenant %s: %w", tenant, err)
	}
	return nil
}
