// Package serve is the long-running, multi-tenant diagnosis service
// behind `flowdiff serve`. Each tenant is an isolated incremental
// Monitor fed through a bounded ingest queue; the versioned /v1 HTTP
// API uploads baselines, streams current events in any flowdiff
// serialization, and reads back per-window reports that are
// byte-identical to an offline Monitor run over the same events.
//
// The service is crash-safe: baselines and window reports are persisted
// write-ahead under one directory per tenant, and a restarted server
// rebuilds every tenant's monitor from its persisted baseline.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"flowdiff"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/obs"
	"flowdiff/internal/parallel"
)

// Config configures a Server. Zero values get serviceable defaults; Dir
// is the only required field.
type Config struct {
	// Dir is the service data directory (one subdirectory per tenant).
	Dir string
	// Window is each tenant's diagnosis window (default 1 minute).
	Window time.Duration
	// Thresholds, Options, and Automata configure every tenant's
	// diagnosis pipeline, exactly as an offline Monitor run would —
	// reports served here are byte-identical to that run.
	Thresholds flowdiff.Thresholds
	Options    flowdiff.Options
	Automata   []*flowdiff.TaskAutomaton
	// Tuning bounds the service's compute pools (baseline builds, window
	// modeling, recovery fan-out) through the one root knob-set.
	Tuning flowdiff.Tuning
	// QueueBudget bounds each tenant's buffered (accepted, not yet
	// observed) events; an ingest that would exceed it is rejected whole
	// with 429 + Retry-After (default 65536).
	QueueBudget int
	// MaxTenants caps concurrent tenants (default 64).
	MaxTenants int
	// Retention is how long window reports stay on disk before the
	// background GC collects them (default 24h). Baselines never expire.
	Retention time.Duration
	// GCInterval is the background GC period (default 1 minute).
	GCInterval time.Duration
	// Registry receives service metrics (default obs.Default()).
	Registry *obs.Registry

	// stall, when set, is called by every tenant worker at the start of
	// each job — a test hook for holding queues full deterministically.
	stall func(tenant string)
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.QueueBudget <= 0 {
		c.QueueBudget = 65536
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	if c.Retention <= 0 {
		c.Retention = 24 * time.Hour
	}
	if c.GCInterval <= 0 {
		c.GCInterval = time.Minute
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	c.Options = c.Tuning.Options(c.Options)
	return c
}

// Server is the multi-tenant diagnosis service. Create with New, mount
// Handler on a listener, stop with Close.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	store *Store
	mux   *http.ServeMux

	// baseCtx governs tenant workers and carries the obs registry; Close
	// cancels it only after the workers drain.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu      sync.Mutex
	tenants map[string]*tenant
	closed  bool

	// wg joins the tenant workers; auxWg joins the GC loop and the
	// cancellation watcher, which must outlive the worker drain.
	wg    sync.WaitGroup
	auxWg sync.WaitGroup
}

// New opens the store, recovers any tenants persisted by a previous
// run (rebuilding their monitors in parallel under ctx), and starts the
// background GC. The returned server is ready to serve immediately.
func New(ctx context.Context, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	sctx, cancel := context.WithCancel(obs.WithRegistry(ctx, cfg.Registry))
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		store:   store,
		baseCtx: sctx,
		cancel:  cancel,
		tenants: make(map[string]*tenant),
	}
	if err := s.recover(sctx); err != nil {
		cancel()
		return nil, err
	}
	s.routes()

	// The watcher propagates an external cancellation of ctx into a
	// tenant shutdown so no worker blocks forever on an abandoned server;
	// Close cancels sctx itself, which also releases the watcher.
	s.auxWg.Add(1)
	go func() {
		defer s.auxWg.Done()
		<-sctx.Done()
		s.closeTenants()
	}()
	s.auxWg.Add(1)
	go func() {
		defer s.auxWg.Done()
		s.gcLoop(sctx)
	}()
	return s, nil
}

// recover rebuilds one monitor per persisted tenant, fanning out across
// the tuning's worker budget; a tenant whose state fails to load is
// skipped (counted in serve.recover.errors) rather than failing boot.
func (s *Server) recover(ctx context.Context) error {
	ids, err := s.store.Tenants()
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return nil
	}
	workers := parallel.Clamp(s.cfg.Tuning.Workers)
	err = parallel.ForContext(ctx, len(ids), workers, func(i int) {
		id := ids[i]
		log, meta, err := s.store.LoadBaseline(ctx, id)
		if err != nil {
			s.reg.Counter("serve.recover.errors").Inc()
			return
		}
		mon, err := flowdiff.NewMonitor(ctx, log, s.cfg.Window, s.cfg.Automata, s.cfg.Thresholds, s.cfg.Options)
		if err != nil {
			s.reg.Counter("serve.recover.errors").Inc()
			return
		}
		seq, err := s.store.MaxSeq(id)
		if err != nil {
			s.reg.Counter("serve.recover.errors").Inc()
			return
		}
		t := s.newTenant(id, mon, meta, seq)
		s.mu.Lock()
		s.tenants[id] = t
		s.mu.Unlock()
		s.startWorker(t)
	})
	if err != nil {
		return fmt.Errorf("serve: recovering tenants: %w", err)
	}
	s.reg.Gauge("serve.tenants").Set(int64(len(ids)))
	return nil
}

// newTenant wires a tenant and its per-tenant instruments.
func (s *Server) newTenant(id string, mon *flowdiff.Monitor, meta BaselineMeta, nextSeq uint64) *tenant {
	t := &tenant{
		id:           id,
		srv:          s,
		mon:          mon,
		meta:         meta,
		nextSeq:      nextSeq,
		exited:       make(chan struct{}),
		depthGauge:   s.reg.Gauge("serve.tenant." + id + ".queue.depth"),
		flushHist:    s.reg.Histogram("serve.tenant." + id + ".flush"),
		errCounter:   s.reg.Counter("serve.tenant." + id + ".errors"),
		windowsCount: s.reg.Counter("serve.tenant." + id + ".windows"),
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

func (s *Server) startWorker(t *tenant) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t.run(s.baseCtx)
	}()
}

// tenant looks up a live tenant.
func (s *Server) tenant(id string) (*tenant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[id]
	return t, ok
}

// closeTenants stops every worker (idempotent); each drains its queue
// before exiting.
func (s *Server) closeTenants() {
	s.mu.Lock()
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ts := make([]*tenant, 0, len(ids))
	for _, id := range ids {
		ts = append(ts, s.tenants[id])
	}
	s.closed = true
	s.mu.Unlock()
	for _, t := range ts {
		t.close()
	}
}

// Close shuts the service down gracefully: new requests are rejected,
// every accepted event is observed (workers drain their queues under a
// live context), then the background loops stop. Safe to call more
// than once.
func (s *Server) Close() error {
	s.closeTenants()
	s.wg.Wait()
	s.cancel()
	s.auxWg.Wait()
	return nil
}

// Handler returns the service's HTTP handler: the /v1 API, health and
// readiness probes, and the obs introspection endpoints (/metrics,
// /debug/vars, /debug/pprof/).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.reg.Counter("serve.http.requests").Inc()
		s.mux.ServeHTTP(w, r)
	})
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	mux.HandleFunc("GET /v1/tenants/{id}", s.handleGetTenant)
	mux.HandleFunc("DELETE /v1/tenants/{id}", s.handleDeleteTenant)
	mux.HandleFunc("PUT /v1/tenants/{id}/baseline", s.handlePutBaseline)
	mux.HandleFunc("GET /v1/tenants/{id}/baseline", s.handleGetBaseline)
	mux.HandleFunc("POST /v1/tenants/{id}/events", s.handleIngest)
	mux.HandleFunc("POST /v1/tenants/{id}/flush", s.handleFlush)
	mux.HandleFunc("GET /v1/tenants/{id}/reports", s.handleListReports)
	mux.HandleFunc("GET /v1/tenants/{id}/reports/{seq}", s.handleGetReport)
	om := obs.NewMux(s.reg)
	mux.Handle("/metrics", om)
	mux.Handle("/debug/", om)
	s.mux = mux
}

// tenantID validates the {id} path segment, writing the 400 itself on
// failure.
func tenantID(w http.ResponseWriter, r *http.Request) (string, bool) {
	id := r.PathValue("id")
	if !validTenantID(id) {
		writeError(w, http.StatusBadRequest, "invalid tenant id %q: want 1-64 chars of [a-zA-Z0-9._-], not starting with a dot", id)
		return "", false
	}
	return id, true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{Status: "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, Health{Status: "shutting down"})
		return
	}
	// The store must be writable for ingest to make durable progress.
	probe, err := os.CreateTemp(s.store.Dir(), ".readyz*")
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, Health{Status: "store unwritable", Detail: err.Error()})
		return
	}
	probe.Close()
	os.Remove(probe.Name())
	writeJSON(w, http.StatusOK, Health{Status: "ok"})
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	list := TenantList{Tenants: make([]TenantStatus, 0, len(ids))}
	for _, id := range ids {
		if t, ok := s.tenant(id); ok {
			list.Tenants = append(list.Tenants, t.status())
		}
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	id, ok := tenantID(w, r)
	if !ok {
		return
	}
	t, ok := s.tenant(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown tenant %q", id)
		return
	}
	writeJSON(w, http.StatusOK, t.status())
}

func (s *Server) handleDeleteTenant(w http.ResponseWriter, r *http.Request) {
	id, ok := tenantID(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	t, ok := s.tenants[id]
	if ok {
		delete(s.tenants, id)
	}
	n := len(s.tenants)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown tenant %q", id)
		return
	}
	s.reg.Gauge("serve.tenants").Set(int64(n))
	// Drain the worker before deleting its files so a queued window
	// can't re-persist a report into the removed directory.
	t.close()
	select {
	case <-t.exited:
	case <-r.Context().Done():
		writeError(w, http.StatusRequestTimeout, "tenant %q still draining; its files will remain until the next DELETE", id)
		return
	}
	if err := s.store.DeleteTenant(id); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handlePutBaseline(w http.ResponseWriter, r *http.Request) {
	id, ok := tenantID(w, r)
	if !ok {
		return
	}
	log, err := decodeLog(obs.WithRegistry(r.Context(), s.reg), r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding baseline: %v", err)
		return
	}
	if len(log.Events) == 0 {
		writeError(w, http.StatusBadRequest, "baseline has no events")
		return
	}
	if t, ok := s.tenant(id); ok {
		s.swapTenantBaseline(w, r, t, log)
		return
	}
	// New tenant: build the monitor outside the registry lock (baseline
	// modeling is the expensive part), then insert if still absent.
	ctx := obs.WithRegistry(r.Context(), s.reg)
	mon, err := flowdiff.NewMonitor(ctx, log, s.cfg.Window, s.cfg.Automata, s.cfg.Thresholds, s.cfg.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "building baseline: %v", err)
		return
	}
	meta := BaselineMeta{
		Version:       1,
		Events:        len(log.Events),
		Start:         log.Start,
		End:           log.End,
		SavedAtUnixNS: s.reg.Now().UnixNano(),
	}
	if err := s.store.SaveBaseline(id, log, meta); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	t := s.newTenant(id, mon, meta, 0)
	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	case len(s.tenants) >= s.cfg.MaxTenants:
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "tenant capacity exhausted (%d); delete one first", s.cfg.MaxTenants)
		return
	default:
		if _, dup := s.tenants[id]; dup {
			s.mu.Unlock()
			writeError(w, http.StatusConflict, "tenant %q created concurrently; retry to hot-swap", id)
			return
		}
		s.tenants[id] = t
		n := len(s.tenants)
		s.mu.Unlock()
		s.reg.Gauge("serve.tenants").Set(int64(n))
	}
	s.startWorker(t)
	writeJSON(w, http.StatusCreated, meta)
}

// swapTenantBaseline routes a baseline upload for an existing tenant
// through its worker, preserving queue order: every event accepted
// before the swap is diffed against the old baseline.
func (s *Server) swapTenantBaseline(w http.ResponseWriter, r *http.Request, t *tenant, log *flowlog.Log) {
	done := make(chan jobResult, 1)
	if !t.enqueueOp(job{swap: log, done: done}) {
		writeError(w, http.StatusServiceUnavailable, "tenant %q shutting down", t.id)
		return
	}
	select {
	case res := <-done:
		if res.err != nil {
			writeError(w, http.StatusBadRequest, "swapping baseline: %v", res.err)
			return
		}
		writeJSON(w, http.StatusOK, res.meta)
	case <-r.Context().Done():
		writeError(w, http.StatusRequestTimeout, "client went away; the swap still completes in order")
	}
}

func (s *Server) handleGetBaseline(w http.ResponseWriter, r *http.Request) {
	id, ok := tenantID(w, r)
	if !ok {
		return
	}
	t, ok := s.tenant(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown tenant %q", id)
		return
	}
	data, err := s.store.BaselineBytes(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	t.mu.Lock()
	version := t.meta.Version
	t.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Flowdiff-Baseline-Version", strconv.Itoa(version))
	// A short write means the client hung up.
	_, _ = w.Write(data)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	id, ok := tenantID(w, r)
	if !ok {
		return
	}
	t, ok := s.tenant(id)
	if !ok {
		writeError(w, http.StatusConflict, "tenant %q has no baseline; PUT /v1/tenants/%s/baseline first", id, id)
		return
	}
	log, err := decodeLog(obs.WithRegistry(r.Context(), s.reg), r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding events: %v", err)
		return
	}
	if len(log.Events) > s.cfg.QueueBudget {
		t.rejected.Add(int64(len(log.Events)))
		writeError(w, http.StatusRequestEntityTooLarge, "batch of %d events exceeds the tenant budget of %d; split it", len(log.Events), s.cfg.QueueBudget)
		return
	}
	accepted, queued := t.enqueueEvents(log.Events)
	if !accepted {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, IngestResponse{Accepted: 0, Queued: queued, Budget: s.cfg.QueueBudget})
		return
	}
	writeJSON(w, http.StatusAccepted, IngestResponse{Accepted: len(log.Events), Queued: queued, Budget: s.cfg.QueueBudget})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	id, ok := tenantID(w, r)
	if !ok {
		return
	}
	t, ok := s.tenant(id)
	if !ok {
		writeError(w, http.StatusConflict, "tenant %q has no baseline; PUT /v1/tenants/%s/baseline first", id, id)
		return
	}
	done := make(chan jobResult, 1)
	if !t.enqueueOp(job{flush: true, done: done}) {
		writeError(w, http.StatusServiceUnavailable, "tenant %q shutting down", id)
		return
	}
	select {
	case res := <-done:
		if res.err != nil {
			writeError(w, http.StatusInternalServerError, "flush: %v", res.err)
			return
		}
		if res.rec == nil {
			writeJSON(w, http.StatusOK, FlushResponse{Flushed: false})
			return
		}
		writeJSON(w, http.StatusOK, FlushResponse{Flushed: true, Seq: res.rec.Seq})
	case <-r.Context().Done():
		writeError(w, http.StatusRequestTimeout, "client went away; the flush still completes in order")
	}
}

func (s *Server) handleListReports(w http.ResponseWriter, r *http.Request) {
	id, ok := tenantID(w, r)
	if !ok {
		return
	}
	if _, ok := s.tenant(id); !ok {
		writeError(w, http.StatusNotFound, "unknown tenant %q", id)
		return
	}
	list, err := s.store.ListReports(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if list == nil {
		list = []ReportSummary{}
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleGetReport(w http.ResponseWriter, r *http.Request) {
	id, ok := tenantID(w, r)
	if !ok {
		return
	}
	if _, ok := s.tenant(id); !ok {
		writeError(w, http.StatusNotFound, "unknown tenant %q", id)
		return
	}
	seq, err := strconv.ParseUint(r.PathValue("seq"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid report sequence %q", r.PathValue("seq"))
		return
	}
	rec, err := s.store.LoadReport(id, seq)
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, "tenant %q has no report %d", id, seq)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// gcLoop periodically collects expired window reports for every
// tenant. The cutoff comes from the registry clock so tests can drive
// retention deterministically.
func (s *Server) gcLoop(ctx context.Context) {
	ticker := time.NewTicker(s.cfg.GCInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.RunGC()
		}
	}
}

// RunGC collects every tenant's expired reports once, returning how
// many files were removed. Exposed so operators (and tests) can force a
// collection; the background loop calls it on GCInterval.
func (s *Server) RunGC() int {
	cutoff := s.reg.Now().Add(-s.cfg.Retention)
	ids, err := s.store.Tenants()
	if err != nil {
		return 0
	}
	removed := 0
	for _, id := range ids {
		n, err := s.store.GCReports(id, cutoff)
		if err != nil {
			s.reg.Counter("serve.gc.errors").Inc()
			continue
		}
		removed += n
	}
	if removed > 0 {
		s.reg.Counter("serve.gc.removed").Add(int64(removed))
	}
	return removed
}
