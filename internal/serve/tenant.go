package serve

import (
	"context"
	"sync"
	"sync/atomic"

	"flowdiff"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/obs"
)

// tenant is one isolated diagnosis stream: a Monitor owned by a single
// worker goroutine, fed through a bounded FIFO of jobs. Handlers never
// touch the Monitor — they enqueue and (for synchronous operations)
// wait on a reply channel, so the Monitor's single-goroutine contract
// holds no matter how many requests race.
type tenant struct {
	id  string
	srv *Server

	mu   sync.Mutex
	cond *sync.Cond
	// queue is the pending job FIFO; queued counts the buffered events
	// inside it — the quantity the backpressure budget bounds.
	queue  []job
	queued int
	// closed stops the worker after the queue drains; enqueue rejects
	// once set.
	closed bool
	// exited is closed when the worker returns; DELETE waits on it
	// before removing the tenant's files.
	exited chan struct{}
	// meta mirrors the persisted baseline sidecar; lastErr is the most
	// recent ingest/persistence failure, surfaced in TenantStatus.
	meta    BaselineMeta
	lastErr string

	// Owned by the worker goroutine (plus the constructor, which
	// happens-before the worker starts): the monitor and the next report
	// sequence number.
	mon     *flowdiff.Monitor
	nextSeq uint64

	accepted atomic.Int64
	rejected atomic.Int64
	observed atomic.Int64
	windows  atomic.Int64
	alarms   atomic.Int64

	// Per-tenant instruments, registered once at creation under
	// serve.tenant.<id>.* so the obs snapshot breaks the service down by
	// tenant.
	depthGauge   *obs.Gauge
	flushHist    *obs.Histogram
	errCounter   *obs.Counter
	windowsCount *obs.Counter
}

// job is one unit of tenant work. Exactly one of events / flush / swap
// is set. done (when non-nil) receives the result exactly once; it must
// be buffered so an abandoned waiter never blocks the worker.
type job struct {
	events []flowlog.Event
	flush  bool
	swap   *flowlog.Log
	done   chan jobResult
}

type jobResult struct {
	// rec is the flushed window's persisted record (nil when the flush
	// abstained or the buffer was empty).
	rec  *ReportRecord
	meta BaselineMeta
	err  error
}

// enqueueEvents applies the backpressure contract: the whole batch is
// accepted (queued, counted, eventually observed) or rejected — never
// split. It returns the buffered event count after the decision.
func (t *tenant) enqueueEvents(events []flowlog.Event) (accepted bool, queued int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.queued+len(events) > t.srv.cfg.QueueBudget {
		t.rejected.Add(int64(len(events)))
		return false, t.queued
	}
	t.queued += len(events)
	t.queue = append(t.queue, job{events: events})
	t.accepted.Add(int64(len(events)))
	t.depthGauge.Set(int64(t.queued))
	t.cond.Signal()
	return true, t.queued
}

// enqueueOp queues a synchronous operation (flush or baseline swap).
// Operations don't consume event budget — they only ever shrink the
// backlog — but they respect queue order, so a flush observes every
// previously accepted event first.
func (t *tenant) enqueueOp(j job) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.queue = append(t.queue, j)
	t.cond.Signal()
	return true
}

// close stops the worker after the queue drains. Idempotent.
func (t *tenant) close() {
	t.mu.Lock()
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
}

// run is the tenant worker: the only goroutine that touches t.mon. It
// drains the FIFO until close() is called and the queue is empty, so a
// graceful shutdown observes every accepted event.
func (t *tenant) run(ctx context.Context) {
	defer close(t.exited)
	for {
		t.mu.Lock()
		for len(t.queue) == 0 && !t.closed {
			t.cond.Wait()
		}
		if len(t.queue) == 0 {
			t.mu.Unlock()
			return
		}
		j := t.queue[0]
		t.queue[0] = job{}
		t.queue = t.queue[1:]
		t.mu.Unlock()
		t.process(ctx, j)
	}
}

// process executes one job on the worker goroutine.
func (t *tenant) process(ctx context.Context, j job) {
	if t.srv.cfg.stall != nil {
		t.srv.cfg.stall(t.id)
	}
	switch {
	case j.events != nil:
		t.processEvents(ctx, j.events)
	case j.flush:
		rec, err := t.flush(ctx)
		j.done <- jobResult{rec: rec, err: err}
	case j.swap != nil:
		meta, err := t.swapBaseline(ctx, j.swap)
		j.done <- jobResult{meta: meta, err: err}
	}
}

// processEvents feeds a batch into the monitor, persisting any window
// reports its grid boundaries produce along the way.
func (t *tenant) processEvents(ctx context.Context, events []flowlog.Event) {
	for i := range events {
		rep, err := t.mon.Observe(ctx, events[i])
		if err != nil {
			t.fail(err)
			continue
		}
		t.observed.Add(1)
		if rep != nil {
			t.persist(rep)
		}
	}
	t.mu.Lock()
	t.queued -= len(events)
	t.depthGauge.Set(int64(t.queued))
	t.mu.Unlock()
}

// flush forces the buffered partial window out, timing it into the
// tenant's flush-latency histogram.
func (t *tenant) flush(ctx context.Context) (*ReportRecord, error) {
	start := t.srv.reg.Now()
	rep, err := t.mon.Flush(ctx)
	t.flushHist.Observe(t.srv.reg.Since(start))
	if err != nil {
		t.fail(err)
		return nil, err
	}
	if rep == nil {
		return nil, nil
	}
	return t.persist(rep), nil
}

// swapBaseline hot-swaps the monitor's baseline and persists the new
// capture; the version bumps only after both succeed.
func (t *tenant) swapBaseline(ctx context.Context, log *flowlog.Log) (BaselineMeta, error) {
	if err := t.mon.SwapBaseline(ctx, log); err != nil {
		t.fail(err)
		return BaselineMeta{}, err
	}
	t.mu.Lock()
	meta := t.meta
	t.mu.Unlock()
	meta.Version++
	meta.Events = len(log.Events)
	meta.Start, meta.End = log.Start, log.End
	meta.SavedAtUnixNS = t.srv.reg.Now().UnixNano()
	if err := t.srv.store.SaveBaseline(t.id, log, meta); err != nil {
		t.fail(err)
		return BaselineMeta{}, err
	}
	t.mu.Lock()
	t.meta = meta
	t.lastErr = ""
	t.mu.Unlock()
	return meta, nil
}

// persist writes one window report to the store (write-ahead: the
// record is durable before it becomes listable or acknowledged).
func (t *tenant) persist(rep *flowdiff.MonitorReport) *ReportRecord {
	rec := ReportRecord{
		Seq:           t.nextSeq + 1,
		From:          rep.From,
		To:            rep.To,
		SavedAtUnixNS: t.srv.reg.Now().UnixNano(),
		Report:        rep.Report,
	}
	if err := t.srv.store.SaveReport(t.id, rec); err != nil {
		t.fail(err)
		return nil
	}
	t.nextSeq++
	t.windows.Add(1)
	t.windowsCount.Inc()
	if len(rep.Report.Unknown) > 0 {
		t.alarms.Add(1)
	}
	return &rec
}

// fail records an ingest/persistence error in the tenant status and the
// per-tenant error counter; the stream itself keeps going.
func (t *tenant) fail(err error) {
	t.errCounter.Inc()
	t.mu.Lock()
	t.lastErr = err.Error()
	t.mu.Unlock()
}

// status snapshots the tenant for the API.
func (t *tenant) status() TenantStatus {
	t.mu.Lock()
	queued := t.queued
	meta := t.meta
	lastErr := t.lastErr
	t.mu.Unlock()
	return TenantStatus{
		ID:              t.id,
		BaselineVersion: meta.Version,
		BaselineEvents:  meta.Events,
		QueueDepth:      queued,
		QueueBudget:     t.srv.cfg.QueueBudget,
		EventsAccepted:  t.accepted.Load(),
		EventsRejected:  t.rejected.Load(),
		EventsObserved:  t.observed.Load(),
		Windows:         t.windows.Load(),
		Alarms:          t.alarms.Load(),
		LastError:       lastErr,
	}
}
