package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"flowdiff"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/obs"
)

// The shared lab capture every test ingests: Seed-301 case 1, 30s of
// baseline and 30s of current traffic. Generated once per test binary.
var (
	capOnce sync.Once
	capRes  *flowdiff.ScenarioResult
	capErr  error
)

func capture(t *testing.T) *flowdiff.ScenarioResult {
	t.Helper()
	capOnce.Do(func() {
		capRes, capErr = flowdiff.RunScenario(flowdiff.Scenario{
			Seed:        301,
			Case:        1,
			BaselineDur: 30 * time.Second,
			FaultDur:    30 * time.Second,
		})
	})
	if capErr != nil {
		t.Fatalf("RunScenario: %v", capErr)
	}
	return capRes
}

// newTestServer boots a Server over a temp dir and an isolated
// registry, mounted on an httptest listener. mod edits the config
// before New.
func newTestServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Dir:      filepath.Join(t.TempDir(), "data"),
		Window:   10 * time.Second,
		Registry: obs.New(),
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func do(t *testing.T, method, url string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest %s %s: %v", method, url, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s %s body: %v", method, url, err)
	}
	return resp.StatusCode, resp.Header, data
}

func logBody(t *testing.T, log *flowlog.Log) []byte {
	t.Helper()
	data, err := json.Marshal(log)
	if err != nil {
		t.Fatalf("marshaling log: %v", err)
	}
	return data
}

func putBaseline(t *testing.T, base, tenant string, log *flowlog.Log) {
	t.Helper()
	code, _, body := do(t, http.MethodPut, base+"/v1/tenants/"+tenant+"/baseline", logBody(t, log))
	if code != http.StatusCreated && code != http.StatusOK {
		t.Fatalf("PUT baseline for %s: status %d, body %s", tenant, code, body)
	}
}

func postEvents(t *testing.T, base, tenant string, events []flowlog.Event) (int, http.Header, []byte) {
	t.Helper()
	return do(t, http.MethodPost, base+"/v1/tenants/"+tenant+"/events", logBody(t, &flowlog.Log{Events: events}))
}

// fetchReports reads a tenant's full report history back through the
// API as MonitorReports.
func fetchReports(t *testing.T, base, tenant string) []flowdiff.MonitorReport {
	t.Helper()
	code, _, body := do(t, http.MethodGet, base+"/v1/tenants/"+tenant+"/reports", nil)
	if code != http.StatusOK {
		t.Fatalf("GET reports for %s: status %d, body %s", tenant, code, body)
	}
	var list []ReportSummary
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("decoding report list: %v", err)
	}
	var out []flowdiff.MonitorReport
	for _, sum := range list {
		code, _, body := do(t, http.MethodGet, fmt.Sprintf("%s/v1/tenants/%s/reports/%d", base, tenant, sum.Seq), nil)
		if code != http.StatusOK {
			t.Fatalf("GET report %d for %s: status %d, body %s", sum.Seq, tenant, code, body)
		}
		var rec ReportRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			t.Fatalf("decoding report %d: %v", sum.Seq, err)
		}
		out = append(out, flowdiff.MonitorReport{From: rec.From, To: rec.To, Report: rec.Report})
	}
	return out
}

// TestServeMatchesOfflineMonitor is the service's core contract: two
// tenants ingest the same capture over HTTP (in different chunkings)
// and each reads back a report history deeply equal to an offline
// Monitor run over the same events.
func TestServeMatchesOfflineMonitor(t *testing.T) {
	res := capture(t)
	opts := res.Options()
	const window = 10 * time.Second

	mon, err := flowdiff.NewMonitor(context.Background(), res.L1, window, nil, flowdiff.Thresholds{}, opts)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	for _, e := range res.L2.Events {
		if _, err := mon.Observe(context.Background(), e); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if _, err := mon.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	want := mon.Reports()
	if len(want) == 0 {
		t.Fatal("offline monitor produced no reports; the scenario is too quiet to pin equivalence")
	}

	_, ts := newTestServer(t, func(c *Config) {
		c.Options = opts
		c.QueueBudget = len(res.L2.Events) + 1
	})

	// Tenant A streams one big batch; tenant B the same events split in
	// three — chunking must not change the diagnosis.
	chunks := map[string][][]flowlog.Event{
		"tenant-a": {res.L2.Events},
		"tenant-b": {
			res.L2.Events[:len(res.L2.Events)/3],
			res.L2.Events[len(res.L2.Events)/3 : 2*len(res.L2.Events)/3],
			res.L2.Events[2*len(res.L2.Events)/3:],
		},
	}
	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		putBaseline(t, ts.URL, tenant, res.L1)
		for _, chunk := range chunks[tenant] {
			code, _, body := postEvents(t, ts.URL, tenant, chunk)
			if code != http.StatusAccepted {
				t.Fatalf("POST events for %s: status %d, body %s", tenant, code, body)
			}
		}
		code, _, body := do(t, http.MethodPost, ts.URL+"/v1/tenants/"+tenant+"/flush", nil)
		if code != http.StatusOK {
			t.Fatalf("POST flush for %s: status %d, body %s", tenant, code, body)
		}
		got := fetchReports(t, ts.URL, tenant)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("tenant %s: served reports differ from the offline monitor run (%d vs %d reports)", tenant, len(got), len(want))
		}
	}
}

// TestBackpressureAtomicBatches pins the ingest contract: a batch that
// would exceed the budget is rejected whole with 429 + Retry-After,
// and everything accepted is eventually observed — nothing is dropped.
func TestBackpressureAtomicBatches(t *testing.T) {
	res := capture(t)
	gate := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()
	srv, ts := newTestServer(t, func(c *Config) {
		c.Options = res.Options()
		c.QueueBudget = 100
		c.stall = func(string) { <-gate }
	})
	putBaseline(t, ts.URL, "t", res.L1)

	first := res.L2.Events[:50]
	second := res.L2.Events[50:130]
	if code, _, body := postEvents(t, ts.URL, "t", first); code != http.StatusAccepted {
		t.Fatalf("first batch: status %d, body %s", code, body)
	}
	// The worker is stalled, so the 50 events stay queued; 80 more would
	// exceed the budget of 100 and must bounce whole.
	code, hdr, body := postEvents(t, ts.URL, "t", second)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-budget batch: status %d, body %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response is missing Retry-After")
	}
	var rej IngestResponse
	if err := json.Unmarshal(body, &rej); err != nil {
		t.Fatalf("decoding 429 body: %v", err)
	}
	if rej.Accepted != 0 || rej.Queued != 50 {
		t.Errorf("429 body = %+v, want Accepted=0 Queued=50 (whole-batch rejection)", rej)
	}

	close(gate)
	released = true
	// Retry after the queue drains, then flush (FIFO: the flush observes
	// every previously accepted event first).
	if code, _, body := postEvents(t, ts.URL, "t", second); code != http.StatusAccepted {
		t.Fatalf("retried batch: status %d, body %s", code, body)
	}
	if code, _, body := do(t, http.MethodPost, ts.URL+"/v1/tenants/t/flush", nil); code != http.StatusOK {
		t.Fatalf("flush: status %d, body %s", code, body)
	}
	tn, ok := srv.tenant("t")
	if !ok {
		t.Fatal("tenant vanished")
	}
	if got := tn.observed.Load(); got != int64(len(first)+len(second)) {
		t.Errorf("observed %d events, want %d: accepted events were dropped", got, len(first)+len(second))
	}
	if got := tn.rejected.Load(); got != int64(len(second)) {
		t.Errorf("rejected counter = %d, want %d", got, len(second))
	}
	st, ok := srv.tenant("t")
	if !ok || st.status().QueueDepth != 0 {
		t.Errorf("queue not drained: %+v", st.status())
	}
}

// TestEvictionDrainsBeforeDelete pins tenant eviction: DELETE waits
// for the worker to observe every accepted event before removing the
// tenant's files, and the evicted id rejects further ingest.
func TestEvictionDrainsBeforeDelete(t *testing.T) {
	res := capture(t)
	gate := make(chan struct{})
	srv, ts := newTestServer(t, func(c *Config) {
		c.Options = res.Options()
		c.QueueBudget = len(res.L2.Events) + 1
		c.stall = func(string) { <-gate }
	})
	putBaseline(t, ts.URL, "t", res.L1)
	events := res.L2.Events[:40]
	if code, _, body := postEvents(t, ts.URL, "t", events); code != http.StatusAccepted {
		t.Fatalf("POST events: status %d, body %s", code, body)
	}

	type delResult struct {
		code int
		body []byte
	}
	done := make(chan delResult, 1)
	go func() {
		code, _, body := do(t, http.MethodDelete, ts.URL+"/v1/tenants/t", nil)
		done <- delResult{code, body}
	}()
	// The DELETE can only finish once the stalled worker drains.
	close(gate)
	del := <-done
	if del.code != http.StatusNoContent {
		t.Fatalf("DELETE: status %d, body %s", del.code, del.body)
	}

	if _, err := os.Stat(filepath.Join(srv.store.Dir(), "t")); !os.IsNotExist(err) {
		t.Errorf("tenant directory survived eviction (stat err = %v)", err)
	}
	if code, _, _ := do(t, http.MethodGet, ts.URL+"/v1/tenants/t", nil); code != http.StatusNotFound {
		t.Errorf("GET evicted tenant: status %d, want 404", code)
	}
	if code, _, _ := postEvents(t, ts.URL, "t", events); code != http.StatusConflict {
		t.Errorf("POST to evicted tenant: status %d, want 409", code)
	}
}

// TestGCRetention pins the retention contract: an unfetched report
// inside the retention window survives GC; once the (injected) clock
// passes retention, the report is collected but the baseline is not.
func TestGCRetention(t *testing.T) {
	res := capture(t)
	reg := obs.New()
	base := time.Now()
	now := base
	reg.SetClock(func() time.Time { return now })
	srv, ts := newTestServer(t, func(c *Config) {
		c.Options = res.Options()
		c.QueueBudget = len(res.L2.Events) + 1
		c.Retention = time.Hour
		c.Registry = reg
	})
	putBaseline(t, ts.URL, "t", res.L1)
	if code, _, body := postEvents(t, ts.URL, "t", res.L2.Events); code != http.StatusAccepted {
		t.Fatalf("POST events: status %d, body %s", code, body)
	}
	var flushed FlushResponse
	code, _, body := do(t, http.MethodPost, ts.URL+"/v1/tenants/t/flush", nil)
	if code != http.StatusOK {
		t.Fatalf("flush: status %d, body %s", code, body)
	}
	if err := json.Unmarshal(body, &flushed); err != nil {
		t.Fatalf("decoding flush response: %v", err)
	}

	if removed := srv.RunGC(); removed != 0 {
		t.Fatalf("GC inside retention removed %d reports", removed)
	}
	if got := fetchReports(t, ts.URL, "t"); len(got) == 0 {
		t.Fatal("reports vanished inside retention")
	}

	now = base.Add(2 * time.Hour)
	if removed := srv.RunGC(); removed == 0 {
		t.Fatal("GC past retention removed nothing")
	}
	if got := fetchReports(t, ts.URL, "t"); len(got) != 0 {
		t.Errorf("%d reports survived past retention", len(got))
	}
	// The baseline never expires.
	if code, _, _ := do(t, http.MethodGet, ts.URL+"/v1/tenants/t/baseline", nil); code != http.StatusOK {
		t.Errorf("GET baseline after GC: status %d, want 200", code)
	}
}

// TestRestartRecovery pins crash-safety: a new server over the same
// directory rebuilds the tenant from its persisted baseline, keeps its
// report history, and continues the sequence numbering.
func TestRestartRecovery(t *testing.T) {
	res := capture(t)
	dir := filepath.Join(t.TempDir(), "data")
	cfg := Config{
		Dir:         dir,
		Window:      10 * time.Second,
		Options:     res.Options(),
		QueueBudget: len(res.L2.Events) + 1,
		Registry:    obs.New(),
	}
	srv1, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	putBaseline(t, ts1.URL, "t", res.L1)
	if code, _, body := postEvents(t, ts1.URL, "t", res.L2.Events); code != http.StatusAccepted {
		t.Fatalf("POST events: status %d, body %s", code, body)
	}
	if code, _, body := do(t, http.MethodPost, ts1.URL+"/v1/tenants/t/flush", nil); code != http.StatusOK {
		t.Fatalf("flush: status %d, body %s", code, body)
	}
	before := fetchReports(t, ts1.URL, "t")
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	cfg.Registry = obs.New()
	srv2, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("New (restart): %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ts2.Close()
		srv2.Close()
	}()
	code, _, body := do(t, http.MethodGet, ts2.URL+"/v1/tenants/t", nil)
	if code != http.StatusOK {
		t.Fatalf("GET recovered tenant: status %d, body %s", code, body)
	}
	var st TenantStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	if st.BaselineVersion != 1 || st.BaselineEvents != len(res.L1.Events) {
		t.Errorf("recovered status = %+v, want baseline version 1 with %d events", st, len(res.L1.Events))
	}
	after := fetchReports(t, ts2.URL, "t")
	if !reflect.DeepEqual(after, before) {
		t.Errorf("report history changed across restart: %d vs %d reports", len(after), len(before))
	}
	tn, ok := srv2.tenant("t")
	if !ok {
		t.Fatal("tenant not recovered")
	}
	if tn.nextSeq != uint64(len(before)) {
		t.Errorf("recovered nextSeq = %d, want %d (sequence must continue, not restart)", tn.nextSeq, len(before))
	}
}

// TestSnapshotShowsTenantMetrics pins the observability contract: the
// obs snapshot of a serving registry carries per-tenant queue-depth
// and flush-latency instruments.
func TestSnapshotShowsTenantMetrics(t *testing.T) {
	res := capture(t)
	reg := obs.New()
	_, ts := newTestServer(t, func(c *Config) {
		c.Options = res.Options()
		c.QueueBudget = len(res.L2.Events) + 1
		c.Registry = reg
	})
	putBaseline(t, ts.URL, "t", res.L1)
	if code, _, body := postEvents(t, ts.URL, "t", res.L2.Events); code != http.StatusAccepted {
		t.Fatalf("POST events: status %d, body %s", code, body)
	}
	if code, _, body := do(t, http.MethodPost, ts.URL+"/v1/tenants/t/flush", nil); code != http.StatusOK {
		t.Fatalf("flush: status %d, body %s", code, body)
	}
	snap := reg.Snapshot()
	if _, ok := snap.Gauges["serve.tenant.t.queue.depth"]; !ok {
		t.Error("snapshot is missing the per-tenant queue-depth gauge")
	}
	if h, ok := snap.Histograms["serve.tenant.t.flush"]; !ok || h.Count == 0 {
		t.Errorf("snapshot is missing per-tenant flush observations (ok=%v, %+v)", ok, h)
	}
}

// TestHandlerGoldens pins the exact JSON envelope of every /v1 route's
// deterministic response, so the wire format can't drift silently.
func TestHandlerGoldens(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name, method, path string
		body               []byte
		wantCode           int
		wantBody           string
	}{
		{"healthz", http.MethodGet, "/healthz", nil, 200,
			"{\n  \"status\": \"ok\"\n}\n"},
		{"readyz", http.MethodGet, "/readyz", nil, 200,
			"{\n  \"status\": \"ok\"\n}\n"},
		{"list tenants empty", http.MethodGet, "/v1/tenants", nil, 200,
			"{\n  \"tenants\": []\n}\n"},
		{"get unknown tenant", http.MethodGet, "/v1/tenants/ghost", nil, 404,
			"{\n  \"error\": \"unknown tenant \\\"ghost\\\"\"\n}\n"},
		{"invalid tenant id", http.MethodGet, "/v1/tenants/.hidden", nil, 400,
			"{\n  \"error\": \"invalid tenant id \\\".hidden\\\": want 1-64 chars of [a-zA-Z0-9._-], not starting with a dot\"\n}\n"},
		{"delete unknown tenant", http.MethodDelete, "/v1/tenants/ghost", nil, 404,
			"{\n  \"error\": \"unknown tenant \\\"ghost\\\"\"\n}\n"},
		{"put empty baseline", http.MethodPut, "/v1/tenants/ghost/baseline", []byte("{}"), 400,
			"{\n  \"error\": \"baseline has no events\"\n}\n"},
		{"get baseline unknown tenant", http.MethodGet, "/v1/tenants/ghost/baseline", nil, 404,
			"{\n  \"error\": \"unknown tenant \\\"ghost\\\"\"\n}\n"},
		{"ingest without baseline", http.MethodPost, "/v1/tenants/ghost/events", []byte("{}"), 409,
			"{\n  \"error\": \"tenant \\\"ghost\\\" has no baseline; PUT /v1/tenants/ghost/baseline first\"\n}\n"},
		{"flush without baseline", http.MethodPost, "/v1/tenants/ghost/flush", nil, 409,
			"{\n  \"error\": \"tenant \\\"ghost\\\" has no baseline; PUT /v1/tenants/ghost/baseline first\"\n}\n"},
		{"list reports unknown tenant", http.MethodGet, "/v1/tenants/ghost/reports", nil, 404,
			"{\n  \"error\": \"unknown tenant \\\"ghost\\\"\"\n}\n"},
		{"get report unknown tenant", http.MethodGet, "/v1/tenants/ghost/reports/1", nil, 404,
			"{\n  \"error\": \"unknown tenant \\\"ghost\\\"\"\n}\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, body := do(t, tc.method, ts.URL+tc.path, tc.body)
			if code != tc.wantCode {
				t.Fatalf("status %d, want %d (body %s)", code, tc.wantCode, body)
			}
			if string(body) != tc.wantBody {
				t.Errorf("body mismatch:\n got: %q\nwant: %q", body, tc.wantBody)
			}
		})
	}
}
