package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"flowdiff"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/flowlog/colseg"
)

// Wire types of the versioned /v1 HTTP API. Every response body is
// JSON; request bodies carrying flow logs are accepted in any of the
// three serializations (JSON, FDL1, FDC1), detected by magic prefix —
// the same auto-detection the CLI uses.

// BaselineMeta describes a tenant's frozen baseline — the response of
// GET /v1/tenants/{id}/baseline and part of PUT's response.
type BaselineMeta struct {
	// Version counts baseline uploads for this tenant, starting at 1.
	// A hot swap increments it.
	Version int `json:"version"`
	// Events, Start, and End describe the baseline capture.
	Events int           `json:"events"`
	Start  time.Duration `json:"start"`
	End    time.Duration `json:"end"`
	// SavedAtUnixNS is the wall-clock time the baseline was persisted.
	SavedAtUnixNS int64 `json:"saved_at_unix_ns"`
}

// IngestResponse acknowledges POST /v1/tenants/{id}/events.
type IngestResponse struct {
	// Accepted is how many events this request enqueued. The whole
	// batch is accepted or rejected atomically: a 202 means every event
	// of the body is queued and will be observed; a 429 means none was.
	Accepted int `json:"accepted"`
	// Queued is the tenant's buffered event count after this request.
	Queued int `json:"queued"`
	// Budget is the tenant's queue budget, for client-side pacing.
	Budget int `json:"budget"`
}

// FlushResponse acknowledges POST /v1/tenants/{id}/flush.
type FlushResponse struct {
	// Flushed reports whether the buffered partial window produced a
	// report (false when the buffer was empty or abstained).
	Flushed bool `json:"flushed"`
	// Seq is the persisted report's sequence number when Flushed.
	Seq uint64 `json:"seq,omitempty"`
}

// ReportRecord is one persisted window diagnosis — the response of
// GET /v1/tenants/{id}/reports/{seq}.
type ReportRecord struct {
	Seq uint64 `json:"seq"`
	// From and To delimit the diagnosed window (MonitorReport bounds).
	From time.Duration `json:"from"`
	To   time.Duration `json:"to"`
	// SavedAtUnixNS is the wall-clock persistence time; retention GC
	// keys off it.
	SavedAtUnixNS int64 `json:"saved_at_unix_ns"`
	// Report is the full diagnosis, byte-identical to an offline
	// Monitor run over the same events.
	Report flowdiff.Report `json:"report"`
}

// ReportSummary is one row of GET /v1/tenants/{id}/reports.
type ReportSummary struct {
	Seq   uint64        `json:"seq"`
	From  time.Duration `json:"from"`
	To    time.Duration `json:"to"`
	Known int           `json:"known"`
	// Unknown counts unexplained changes; Alarm is Unknown > 0.
	Unknown int  `json:"unknown"`
	Alarm   bool `json:"alarm"`
}

// TenantStatus is one row of GET /v1/tenants and the response of
// GET /v1/tenants/{id}.
type TenantStatus struct {
	ID              string `json:"id"`
	BaselineVersion int    `json:"baseline_version"`
	BaselineEvents  int    `json:"baseline_events"`
	// QueueDepth is the buffered (accepted, not yet observed) event
	// count; QueueBudget is the backpressure ceiling.
	QueueDepth  int `json:"queue_depth"`
	QueueBudget int `json:"queue_budget"`
	// EventsAccepted / EventsRejected / EventsObserved are lifetime
	// ingest counters (rejected = arrived on a 429 or 413 response).
	EventsAccepted int64 `json:"events_accepted"`
	EventsRejected int64 `json:"events_rejected"`
	EventsObserved int64 `json:"events_observed"`
	// Windows is how many reports the tenant's monitor has produced;
	// Alarms how many contained unexplained changes.
	Windows int64 `json:"windows"`
	Alarms  int64 `json:"alarms"`
	// LastError is the most recent ingest/persistence error ("" when
	// healthy). An out-of-order event lands here, not in the stream.
	LastError string `json:"last_error,omitempty"`
}

// TenantList is the response of GET /v1/tenants.
type TenantList struct {
	Tenants []TenantStatus `json:"tenants"`
}

// Health is the response of /healthz and /readyz.
type Health struct {
	Status string `json:"status"`
	// Detail carries the failing probe on a 503.
	Detail string `json:"detail,omitempty"`
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The client hung up mid-write; nothing to clean up server-side.
	_ = enc.Encode(v)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes caps an ingest/baseline request body. Generous: the
// per-tenant event budget bounds accepted work far below this; the cap
// only stops a hostile client from exhausting memory before decode.
const maxBodyBytes = 1 << 30

// decodeLog reads a flow log in any of the three serializations,
// detected by magic prefix: FDC1 (segmented columnar), FDL1 (row
// binary), else JSON. ctx governs (and its obs registry observes) a
// columnar decode.
func decodeLog(ctx context.Context, r io.Reader) (*flowlog.Log, error) {
	br := bufio.NewReader(io.LimitReader(r, maxBodyBytes))
	magic, err := br.Peek(4)
	if err == nil && string(magic) == "FDC1" {
		cr, err := colseg.NewReaderContext(ctx, br, colseg.ReaderOptions{})
		if err != nil {
			return nil, err
		}
		return cr.ReadAll()
	}
	if err == nil && string(magic) == "FDL1" {
		return flowlog.ReadBinary(br)
	}
	return flowlog.ReadJSON(br)
}

// validTenantID reports whether id is a safe path component: 1..64
// characters of [a-zA-Z0-9._-], not starting with a dot. Everything
// else is rejected with a 400 before touching the store.
func validTenantID(id string) bool {
	if len(id) == 0 || len(id) > 64 || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}
