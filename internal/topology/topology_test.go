package topology

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func buildLine(t *testing.T) *Topology {
	t.Helper()
	// h1 - sw1 - sw2 - sw3 - h2, with a legacy switch spur.
	topo := New()
	mustSwitch := func(id NodeID, of bool) {
		if _, err := topo.AddSwitch(id, of); err != nil {
			t.Fatal(err)
		}
	}
	mustHost := func(id NodeID, addr netip.Addr) {
		if _, err := topo.AddHost(id, addr); err != nil {
			t.Fatal(err)
		}
	}
	mustLink := func(a, b NodeID) {
		if _, err := topo.Connect(a, b, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	mustSwitch("sw1", true)
	mustSwitch("sw2", true)
	mustSwitch("sw3", true)
	mustSwitch("leg1", false)
	mustHost("h1", mustAddr(10, 0, 0, 1))
	mustHost("h2", mustAddr(10, 0, 0, 2))
	mustHost("h3", mustAddr(10, 0, 0, 3))
	mustLink("h1", "sw1")
	mustLink("sw1", "sw2")
	mustLink("sw2", "sw3")
	mustLink("sw3", "h2")
	mustLink("sw2", "leg1")
	mustLink("leg1", "h3")
	return topo
}

func TestPathEndpointsAndOrder(t *testing.T) {
	topo := buildLine(t)
	hops, err := topo.Path("h1", "h2")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{"h1", "sw1", "sw2", "sw3", "h2"}
	if len(hops) != len(want) {
		t.Fatalf("path length = %d, want %d (%v)", len(hops), len(want), hops)
	}
	for i, id := range want {
		if hops[i].Node != id {
			t.Errorf("hop %d = %q, want %q", i, hops[i].Node, id)
		}
	}
	if hops[0].InPort != 0 || hops[len(hops)-1].OutPort != 0 {
		t.Error("endpoint ports should be 0")
	}
	// Interior hops must have both ports set.
	for _, h := range hops[1 : len(hops)-1] {
		if h.InPort == 0 || h.OutPort == 0 {
			t.Errorf("interior hop %q missing ports: %+v", h.Node, h)
		}
	}
}

func TestPathSelfAndErrors(t *testing.T) {
	topo := buildLine(t)
	hops, err := topo.Path("h1", "h1")
	if err != nil || len(hops) != 1 {
		t.Errorf("self path = %v, %v", hops, err)
	}
	if _, err := topo.Path("h1", "nope"); err == nil {
		t.Error("want error for unknown destination")
	}
	if _, err := topo.Path("nope", "h1"); err == nil {
		t.Error("want error for unknown source")
	}
}

func TestPathAvoidsDownLinksAndNodes(t *testing.T) {
	topo := buildLine(t)
	l, ok := topo.LinkBetween("sw1", "sw2")
	if !ok {
		t.Fatal("missing link")
	}
	l.Down = true
	if _, err := topo.Path("h1", "h2"); err == nil {
		t.Error("want error when the only path has a down link")
	}
	l.Down = false
	n, _ := topo.Node("sw2")
	n.Down = true
	if _, err := topo.Path("h1", "h2"); err == nil {
		t.Error("want error when a transit switch is down")
	}
}

func TestHostsDoNotForwardTransit(t *testing.T) {
	// h1 - sw1 - h3, h3 - sw2 - h2: no switch-only path h1->h2.
	topo := New()
	topo.AddSwitch("sw1", true)
	topo.AddSwitch("sw2", true)
	topo.AddHost("h1", mustAddr(10, 0, 0, 1))
	topo.AddHost("h2", mustAddr(10, 0, 0, 2))
	topo.AddHost("h3", mustAddr(10, 0, 0, 3))
	topo.Connect("h1", "sw1", time.Millisecond)
	topo.Connect("sw1", "h3", time.Millisecond)
	topo.Connect("h3", "sw2", time.Millisecond)
	topo.Connect("sw2", "h2", time.Millisecond)
	if _, err := topo.Path("h1", "h2"); err == nil {
		t.Error("path through an intermediate host should be rejected")
	}
}

func TestSwitchHopsFiltersLegacy(t *testing.T) {
	topo := buildLine(t)
	hops, err := topo.Path("h1", "h3") // crosses leg1
	if err != nil {
		t.Fatal(err)
	}
	sw := topo.SwitchHops(hops)
	for _, h := range sw {
		n, _ := topo.Node(h.Node)
		if !n.OpenFlow {
			t.Errorf("SwitchHops included non-OpenFlow node %q", h.Node)
		}
	}
	if len(sw) != 2 { // sw1, sw2
		t.Errorf("got %d OpenFlow hops, want 2 (%v)", len(sw), sw)
	}
}

func TestDuplicateAndBadInserts(t *testing.T) {
	topo := New()
	if _, err := topo.AddHost("h1", mustAddr(10, 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.AddHost("h1", mustAddr(10, 0, 0, 2)); err == nil {
		t.Error("want error on duplicate node id")
	}
	if _, err := topo.AddHost("h2", mustAddr(10, 0, 0, 1)); err == nil {
		t.Error("want error on duplicate address")
	}
	if _, err := topo.AddHost("h3", netip.MustParseAddr("::1")); err == nil {
		t.Error("want error on IPv6 host address")
	}
	topo.AddHost("h4", mustAddr(10, 0, 0, 4))
	if _, err := topo.Connect("h1", "h4", 0); err == nil {
		t.Error("want error on host-host link")
	}
	if _, err := topo.Connect("h1", "missing", 0); err == nil {
		t.Error("want error on unknown endpoint")
	}
}

func TestLookups(t *testing.T) {
	topo := buildLine(t)
	n, ok := topo.HostByAddr(mustAddr(10, 0, 0, 2))
	if !ok || n.ID != "h2" {
		t.Errorf("HostByAddr = %v, %v", n, ok)
	}
	sw, _ := topo.Node("sw1")
	got, ok := topo.SwitchByDPID(sw.DPID)
	if !ok || got.ID != "sw1" {
		t.Errorf("SwitchByDPID = %v, %v", got, ok)
	}
	if _, ok := topo.HostByAddr(mustAddr(9, 9, 9, 9)); ok {
		t.Error("unknown address should not resolve")
	}
}

func TestLabTopology(t *testing.T) {
	topo, err := Lab()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.Hosts()); got != 25+5+len(ServiceNodes) {
		t.Errorf("host count = %d, want %d", got, 25+5+len(ServiceNodes))
	}
	var of, legacy int
	for _, s := range topo.Switches() {
		if s.OpenFlow {
			of++
		} else {
			legacy++
		}
	}
	if of != 7 || legacy != 2 {
		t.Errorf("switches = %d OpenFlow + %d legacy, want 7 + 2", of, legacy)
	}
	// The paper's invariant: all server-to-server traffic passes through
	// at least one OpenFlow switch.
	hosts := topo.Hosts()
	for i := 0; i < len(hosts); i++ {
		for j := i + 1; j < len(hosts); j++ {
			hops, err := topo.Path(hosts[i].ID, hosts[j].ID)
			if err != nil {
				t.Fatalf("no path %s->%s: %v", hosts[i].ID, hosts[j].ID, err)
			}
			if len(topo.SwitchHops(hops)) == 0 {
				t.Errorf("path %s->%s crosses no OpenFlow switch", hosts[i].ID, hosts[j].ID)
			}
		}
	}
}

func TestTree320Topology(t *testing.T) {
	topo, err := Tree320()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.Hosts()); got != 320 {
		t.Errorf("host count = %d, want 320", got)
	}
	if got := len(topo.Switches()); got != 16+8+2 {
		t.Errorf("switch count = %d, want 26", got)
	}
	// Cross-rack path must traverse ToR-agg(-core-agg)-ToR.
	hops, err := topo.Path("h01-01", "h16-20")
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.SwitchHops(hops)) < 3 {
		t.Errorf("cross-pod path too short: %v", hops)
	}
	// Same-rack path stays under the ToR.
	hops, err = topo.Path("h01-01", "h01-02")
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 3 {
		t.Errorf("same-rack path length = %d, want 3 (%v)", len(hops), hops)
	}
}

func TestPathDeterministic(t *testing.T) {
	topo, err := Tree320()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hosts := topo.Hosts()
		a := hosts[rng.Intn(len(hosts))].ID
		b := hosts[rng.Intn(len(hosts))].ID
		p1, err1 := topo.Path(a, b)
		p2, err2 := topo.Path(a, b)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if len(p1) != len(p2) {
			return false
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPathLatency(t *testing.T) {
	topo := buildLine(t)
	hops, err := topo.Path("h1", "h2")
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.PathLatency(hops); got != 4*time.Millisecond {
		t.Errorf("PathLatency = %v, want 4ms", got)
	}
}

func TestLinkOtherAndPortAtValidate(t *testing.T) {
	topo := buildLine(t)
	l, ok := topo.LinkBetween("sw1", "sw2")
	if !ok {
		t.Fatal("missing sw1-sw2 link")
	}
	peer, port, err := l.Other("sw1")
	if err != nil || peer != "sw2" || port != l.APort {
		t.Errorf("Other(sw1) = %v, %d, %v", peer, port, err)
	}
	peer, port, err = l.Other("sw2")
	if err != nil || peer != "sw1" || port != l.BPort {
		t.Errorf("Other(sw2) = %v, %d, %v", peer, port, err)
	}
	// A non-endpoint must error instead of silently answering as A.
	if _, _, err := l.Other("sw3"); err == nil {
		t.Error("Other on non-endpoint must error")
	}
	if _, err := l.PortAt("sw3"); err == nil {
		t.Error("PortAt on non-endpoint must error")
	}
	if p, err := l.PortAt("sw1"); err != nil || p != l.APort {
		t.Errorf("PortAt(sw1) = %d, %v", p, err)
	}
}

func TestConnectRejectsSelfLink(t *testing.T) {
	topo := buildLine(t)
	before := topo.nextPort["sw1"]
	if _, err := topo.Connect("sw1", "sw1", time.Millisecond); err == nil {
		t.Fatal("self-link must be rejected")
	}
	if topo.nextPort["sw1"] != before {
		t.Errorf("rejected self-link mutated port assignment: %d -> %d", before, topo.nextPort["sw1"])
	}
}

func TestLinkID(t *testing.T) {
	if LinkID("sw2", "sw1") != LinkID("sw1", "sw2") {
		t.Error("LinkID must be order-independent")
	}
	if got, want := LinkID("sw1", "sw2"), "link:sw1<->sw2"; got != want {
		t.Errorf("LinkID = %q, want %q", got, want)
	}
	topo := buildLine(t)
	l, _ := topo.LinkBetween("sw2", "sw1")
	if l.ID() != LinkID("sw1", "sw2") {
		t.Errorf("Link.ID = %q", l.ID())
	}
}

func TestPathElements(t *testing.T) {
	topo := buildLine(t)
	hops, err := topo.Path("h1", "h2")
	if err != nil {
		t.Fatal(err)
	}
	elems := topo.PathElements(hops)
	want := []PathElement{
		{ID: LinkID("h1", "sw1"), IsLink: true},
		{ID: "sw1"},
		{ID: LinkID("sw1", "sw2"), IsLink: true},
		{ID: "sw2"},
		{ID: LinkID("sw2", "sw3"), IsLink: true},
		{ID: "sw3"},
		{ID: LinkID("sw3", "h2"), IsLink: true},
	}
	if len(elems) != len(want) {
		t.Fatalf("elements = %+v, want %+v", elems, want)
	}
	for i := range want {
		if elems[i] != want[i] {
			t.Errorf("element %d = %+v, want %+v", i, elems[i], want[i])
		}
	}
	// Hosts never appear as votable components; legacy switches do (a
	// legacy switch can drop packets even though it emits no control
	// traffic).
	hops, err = topo.Path("h1", "h3")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, e := range topo.PathElements(hops) {
		seen[e.ID] = true
	}
	if seen["h1"] || seen["h3"] {
		t.Error("hosts must not be votable path elements")
	}
	if !seen["leg1"] {
		t.Error("legacy switch should be a votable path element")
	}
	if len(topo.PathElements(nil)) != 0 {
		t.Error("empty path has no elements")
	}
}
