// Package topology models a data center's physical network: hosts,
// programmable (OpenFlow) and legacy switches, and the links between them,
// together with deterministic shortest-path routing. Link properties
// (latency, loss) are mutable so fault injectors can degrade the fabric,
// and nodes/links can be marked down to model failures.
package topology

import (
	"fmt"
	"net/netip"
	"sort"
	"time"
)

// NodeID names a node ("S4", "sw1", "tor-03").
type NodeID string

// NodeKind distinguishes the node types in the fabric.
type NodeKind int

// Node kinds.
const (
	KindHost NodeKind = iota + 1
	KindSwitch
)

// String returns a human-readable kind name.
func (k NodeKind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindSwitch:
		return "switch"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one element of the fabric.
type Node struct {
	ID   NodeID
	Kind NodeKind
	// Addr is the host's IPv4 address (hosts only).
	Addr netip.Addr
	// DPID is the OpenFlow datapath id (switches only).
	DPID uint64
	// OpenFlow is true for programmable switches that talk to the
	// controller; legacy switches forward transparently and produce no
	// control traffic.
	OpenFlow bool
	// Down marks a failed node; routing avoids it.
	Down bool
}

// Link is an undirected cable between two nodes, with the port number used
// on each side.
type Link struct {
	A, B         NodeID
	APort, BPort uint16
	// Latency is the one-way propagation + processing delay.
	Latency time.Duration
	// LossProb is the per-packet loss probability in [0,1].
	LossProb float64
	// Down marks a failed link; routing avoids it.
	Down bool
}

// Other returns the far end of the link as seen from id, and the local
// egress port used to reach it. It errors when id is not an endpoint of
// the link (an earlier version silently answered as if id were the A
// side, which turned caller bugs into wrong ports instead of failures).
func (l *Link) Other(id NodeID) (NodeID, uint16, error) {
	switch id {
	case l.A:
		return l.B, l.APort, nil
	case l.B:
		return l.A, l.BPort, nil
	}
	return "", 0, fmt.Errorf("topology: node %q is not an endpoint of link %s-%s", id, l.A, l.B)
}

// PortAt returns the port number the link occupies on node id, erroring
// when id is not an endpoint of the link.
func (l *Link) PortAt(id NodeID) (uint16, error) {
	switch id {
	case l.A:
		return l.APort, nil
	case l.B:
		return l.BPort, nil
	}
	return 0, fmt.Errorf("topology: node %q is not an endpoint of link %s-%s", id, l.A, l.B)
}

// ID returns the link's canonical component id (see LinkID).
func (l *Link) ID() string { return LinkID(l.A, l.B) }

// LinkID names the link between a and b as a diagnosable component,
// independent of endpoint order: "link:<min><-><max>". Suspect rankings
// and fault ground truths use this id.
func LinkID(a, b NodeID) string {
	if b < a {
		a, b = b, a
	}
	return "link:" + string(a) + "<->" + string(b)
}

// Topology is a mutable network graph. It is not safe for concurrent
// mutation; the simulator drives it from a single goroutine.
type Topology struct {
	nodes    map[NodeID]*Node
	links    []*Link
	adj      map[NodeID][]*Link
	byAddr   map[netip.Addr]NodeID
	byDPID   map[uint64]NodeID
	nextPort map[NodeID]uint16
	nextDPID uint64
}

// New creates an empty topology.
func New() *Topology {
	return &Topology{
		nodes:    make(map[NodeID]*Node),
		adj:      make(map[NodeID][]*Link),
		byAddr:   make(map[netip.Addr]NodeID),
		byDPID:   make(map[uint64]NodeID),
		nextPort: make(map[NodeID]uint16),
	}
}

// AddHost adds a host with the given IPv4 address.
func (t *Topology) AddHost(id NodeID, addr netip.Addr) (*Node, error) {
	if _, ok := t.nodes[id]; ok {
		return nil, fmt.Errorf("topology: duplicate node %q", id)
	}
	if !addr.Is4() {
		return nil, fmt.Errorf("topology: host %q needs an IPv4 address, got %v", id, addr)
	}
	if prev, ok := t.byAddr[addr]; ok {
		return nil, fmt.Errorf("topology: address %v already assigned to %q", addr, prev)
	}
	n := &Node{ID: id, Kind: KindHost, Addr: addr}
	t.nodes[id] = n
	t.byAddr[addr] = id
	return n, nil
}

// AddSwitch adds a switch. openflow selects whether it is programmable
// (controller-attached) or a legacy transparent switch.
func (t *Topology) AddSwitch(id NodeID, openflow bool) (*Node, error) {
	if _, ok := t.nodes[id]; ok {
		return nil, fmt.Errorf("topology: duplicate node %q", id)
	}
	t.nextDPID++
	n := &Node{ID: id, Kind: KindSwitch, OpenFlow: openflow, DPID: t.nextDPID}
	t.nodes[id] = n
	t.byDPID[n.DPID] = id
	return n, nil
}

// Connect links two existing nodes, assigning the next free port number on
// each side, and returns the new link.
func (t *Topology) Connect(a, b NodeID, latency time.Duration) (*Link, error) {
	na, ok := t.nodes[a]
	if !ok {
		return nil, fmt.Errorf("topology: unknown node %q", a)
	}
	nb, ok := t.nodes[b]
	if !ok {
		return nil, fmt.Errorf("topology: unknown node %q", b)
	}
	if a == b {
		return nil, fmt.Errorf("topology: self-link on %q", a)
	}
	if na.Kind == KindHost && nb.Kind == KindHost {
		return nil, fmt.Errorf("topology: cannot link two hosts (%q-%q)", a, b)
	}
	t.nextPort[a]++
	t.nextPort[b]++
	l := &Link{A: a, B: b, APort: t.nextPort[a], BPort: t.nextPort[b], Latency: latency}
	t.links = append(t.links, l)
	t.adj[a] = append(t.adj[a], l)
	t.adj[b] = append(t.adj[b], l)
	return l, nil
}

// Node returns the node with the given id.
func (t *Topology) Node(id NodeID) (*Node, bool) {
	n, ok := t.nodes[id]
	return n, ok
}

// HostByAddr resolves an IPv4 address to its host node.
func (t *Topology) HostByAddr(addr netip.Addr) (*Node, bool) {
	id, ok := t.byAddr[addr]
	if !ok {
		return nil, false
	}
	return t.nodes[id], true
}

// SwitchByDPID resolves a datapath id to its switch node.
func (t *Topology) SwitchByDPID(dpid uint64) (*Node, bool) {
	id, ok := t.byDPID[dpid]
	if !ok {
		return nil, false
	}
	return t.nodes[id], true
}

// Nodes returns all node ids in sorted order.
func (t *Topology) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(t.nodes))
	for id := range t.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Switches returns all switch nodes in sorted id order.
func (t *Topology) Switches() []*Node {
	var out []*Node
	for _, id := range t.Nodes() {
		if n := t.nodes[id]; n.Kind == KindSwitch {
			out = append(out, n)
		}
	}
	return out
}

// Hosts returns all host nodes in sorted id order.
func (t *Topology) Hosts() []*Node {
	var out []*Node
	for _, id := range t.Nodes() {
		if n := t.nodes[id]; n.Kind == KindHost {
			out = append(out, n)
		}
	}
	return out
}

// Links returns all links (shared slice header; treat as read-only).
func (t *Topology) Links() []*Link { return t.links }

// LinksAt returns the links attached to a node.
func (t *Topology) LinksAt(id NodeID) []*Link { return t.adj[id] }

// LinkBetween returns the first up link directly connecting a and b.
func (t *Topology) LinkBetween(a, b NodeID) (*Link, bool) {
	for _, l := range t.adj[a] {
		other, _, err := l.Other(a)
		if err == nil && other == b && !l.Down {
			return l, true
		}
	}
	return nil, false
}

// Hop is one step of a routed path.
type Hop struct {
	Node    NodeID
	InPort  uint16 // port the flow entered Node on (0 for the source host)
	OutPort uint16 // port the flow leaves Node on (0 for the destination host)
}

// Path computes the shortest up path between two hosts using BFS with a
// deterministic tie-break (lexicographically smallest next node id). The
// result includes both endpoint hosts. It returns an error when either
// endpoint is unknown/down or no path exists.
func (t *Topology) Path(src, dst NodeID) ([]Hop, error) {
	s, ok := t.nodes[src]
	if !ok {
		return nil, fmt.Errorf("topology: unknown source %q", src)
	}
	d, ok := t.nodes[dst]
	if !ok {
		return nil, fmt.Errorf("topology: unknown destination %q", dst)
	}
	if s.Down {
		return nil, fmt.Errorf("topology: source %q is down", src)
	}
	if d.Down {
		return nil, fmt.Errorf("topology: destination %q is down", dst)
	}
	if src == dst {
		return []Hop{{Node: src}}, nil
	}
	type cameFrom struct {
		prev NodeID
		link *Link
	}
	visited := map[NodeID]cameFrom{src: {}}
	frontier := []NodeID{src}
	for len(frontier) > 0 && visited[dst].link == nil {
		var next []NodeID
		for _, cur := range frontier {
			links := append([]*Link(nil), t.adj[cur]...)
			sort.Slice(links, func(i, j int) bool {
				oi, _, _ := links[i].Other(cur)
				oj, _, _ := links[j].Other(cur)
				return oi < oj
			})
			for _, l := range links {
				if l.Down {
					continue
				}
				nb, _, err := l.Other(cur)
				if err != nil {
					continue
				}
				n := t.nodes[nb]
				if n.Down {
					continue
				}
				if _, seen := visited[nb]; seen {
					continue
				}
				// Hosts do not forward transit traffic.
				if n.Kind == KindHost && nb != dst {
					continue
				}
				visited[nb] = cameFrom{prev: cur, link: l}
				next = append(next, nb)
			}
		}
		frontier = next
	}
	if visited[dst].link == nil {
		return nil, fmt.Errorf("topology: no path from %q to %q", src, dst)
	}
	// Reconstruct node sequence.
	var rev []cameFrom
	var seq []NodeID
	for cur := dst; cur != src; {
		cf := visited[cur]
		rev = append(rev, cf)
		seq = append(seq, cur)
		cur = cf.prev
	}
	seq = append(seq, src)
	// Reverse into forward order.
	for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
		seq[i], seq[j] = seq[j], seq[i]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	hops := make([]Hop, len(seq))
	for i, id := range seq {
		hops[i].Node = id
		if i > 0 {
			hops[i].InPort, _ = rev[i-1].link.PortAt(id)
		}
		if i < len(rev) {
			hops[i].OutPort, _ = rev[i].link.PortAt(id)
		}
	}
	return hops, nil
}

// PathElement is one votable component of a routed path: a switch node or
// a link. ID is the node id for switches and LinkID(a, b) for links.
type PathElement struct {
	ID     string
	IsLink bool
}

// PathElements expands a path produced by Path into the ordered list of
// components a flow on that path depends on: every link between
// consecutive hops and every intermediate switch. Endpoint hosts are
// excluded — a host problem is already named directly by the change's
// components, whereas the fabric in between is what voting localizes.
func (t *Topology) PathElements(hops []Hop) []PathElement {
	var out []PathElement
	for i, h := range hops {
		if i > 0 {
			out = append(out, PathElement{ID: LinkID(hops[i-1].Node, h.Node), IsLink: true})
		}
		if n, ok := t.nodes[h.Node]; ok && n.Kind == KindSwitch {
			out = append(out, PathElement{ID: string(h.Node)})
		}
	}
	return out
}

// PathLatency sums the link latencies along a path produced by Path.
func (t *Topology) PathLatency(hops []Hop) time.Duration {
	var total time.Duration
	for i := 0; i+1 < len(hops); i++ {
		if l, ok := t.LinkBetween(hops[i].Node, hops[i+1].Node); ok {
			total += l.Latency
		}
	}
	return total
}

// SwitchHops filters a path down to its OpenFlow switch hops — the
// switches that will emit PacketIn messages for a new flow.
func (t *Topology) SwitchHops(hops []Hop) []Hop {
	var out []Hop
	for _, h := range hops {
		if n, ok := t.nodes[h.Node]; ok && n.Kind == KindSwitch && n.OpenFlow && !n.Down {
			out = append(out, h)
		}
	}
	return out
}
