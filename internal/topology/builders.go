package topology

import (
	"fmt"
	"net/netip"
	"time"
)

// Default link latencies used by the builders. The absolute values are not
// load-bearing (the paper's figures depend on relative shifts), but they
// are in the range reported for data center fabrics.
const (
	HostLinkLatency = 100 * time.Microsecond
	ToRLinkLatency  = 200 * time.Microsecond
	AggLinkLatency  = 300 * time.Microsecond
)

func mustAddr(a, b, c, d byte) netip.Addr {
	return netip.AddrFrom4([4]byte{a, b, c, d})
}

// ServiceNodes are the special-purpose data center service hosts present
// in the lab topology. FlowDiff's application-group construction treats
// them as boundaries (paper §III-B).
var ServiceNodes = []NodeID{"NFS", "DNS", "DHCP", "NTP"}

// Lab builds the paper's testbed (§V): 25 physical servers S1..S25, five
// virtual machines V1..V5, seven OpenFlow switches sw1..sw7 and two legacy
// switches leg1/leg2 wired so all server-to-server traffic crosses at
// least one OpenFlow switch, plus the shared service hosts (NFS, DNS,
// DHCP, NTP) attached near the core.
func Lab() (*Topology, error) {
	t := New()
	// Switches: sw1 is the core; sw2..sw7 are edge switches.
	for i := 1; i <= 7; i++ {
		if _, err := t.AddSwitch(NodeID(fmt.Sprintf("sw%d", i)), true); err != nil {
			return nil, err
		}
	}
	for _, id := range []NodeID{"leg1", "leg2"} {
		if _, err := t.AddSwitch(id, false); err != nil {
			return nil, err
		}
	}
	for i := 2; i <= 7; i++ {
		if _, err := t.Connect("sw1", NodeID(fmt.Sprintf("sw%d", i)), ToRLinkLatency); err != nil {
			return nil, err
		}
	}
	// Legacy switches hang off sw6 and sw7; their traffic still crosses an
	// OpenFlow switch on any inter-group path.
	if _, err := t.Connect("sw6", "leg1", ToRLinkLatency); err != nil {
		return nil, err
	}
	if _, err := t.Connect("sw7", "leg2", ToRLinkLatency); err != nil {
		return nil, err
	}

	attach := func(host NodeID, addr netip.Addr, sw NodeID) error {
		if _, err := t.AddHost(host, addr); err != nil {
			return err
		}
		_, err := t.Connect(sw, host, HostLinkLatency)
		return err
	}

	// Physical servers S1..S25, five per edge switch sw2..sw5, three on
	// sw6, and one behind each legacy switch (at most one server per
	// legacy switch keeps the paper's invariant that any server pair
	// crosses at least one OpenFlow switch).
	edgeOf := func(i int) NodeID {
		switch {
		case i <= 5:
			return "sw2"
		case i <= 10:
			return "sw3"
		case i <= 15:
			return "sw4"
		case i <= 20:
			return "sw5"
		case i <= 23:
			return "sw6"
		case i == 24:
			return "leg1"
		default:
			return "leg2"
		}
	}
	for i := 1; i <= 25; i++ {
		id := NodeID(fmt.Sprintf("S%d", i))
		if err := attach(id, mustAddr(10, 0, 1, byte(i)), edgeOf(i)); err != nil {
			return nil, err
		}
	}
	// Virtual machines V1..V5 behind sw6/sw7.
	for i := 1; i <= 5; i++ {
		sw := NodeID("sw6")
		if i > 3 {
			sw = "sw7"
		}
		id := NodeID(fmt.Sprintf("V%d", i))
		if err := attach(id, mustAddr(10, 0, 2, byte(i)), sw); err != nil {
			return nil, err
		}
	}
	// Shared service hosts at the core.
	for i, id := range ServiceNodes {
		if err := attach(id, mustAddr(10, 0, 0, byte(i+1)), "sw1"); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Tree320 builds the paper's scalability topology (§V): 320 servers in 16
// racks of 20, one ToR per rack, every four ToRs dual-homed to a pair of
// aggregation switches (8 aggs total), and all aggs connected to two core
// switches. Server host ids are "h<rack>-<n>", addresses 10.<rack>.0.<n>.
func Tree320() (*Topology, error) {
	return tree320(true)
}

// Tree320Hybrid is the incremental deployment of §VI: the same fabric but
// with only the aggregation and core layers OpenFlow-enabled — the ToR
// switches are legacy and produce no control traffic, so FlowDiff's
// measurement granularity coarsens from links to aggregation-level paths.
func Tree320Hybrid() (*Topology, error) {
	return tree320(false)
}

func tree320(torOpenFlow bool) (*Topology, error) {
	const (
		racks          = 16
		serversPerRack = 20
		aggPairs       = 4
	)
	t := New()
	for c := 1; c <= 2; c++ {
		if _, err := t.AddSwitch(NodeID(fmt.Sprintf("core%d", c)), true); err != nil {
			return nil, err
		}
	}
	for a := 1; a <= 2*aggPairs; a++ {
		id := NodeID(fmt.Sprintf("agg%d", a))
		if _, err := t.AddSwitch(id, true); err != nil {
			return nil, err
		}
		for c := 1; c <= 2; c++ {
			if _, err := t.Connect(id, NodeID(fmt.Sprintf("core%d", c)), AggLinkLatency); err != nil {
				return nil, err
			}
		}
	}
	for r := 0; r < racks; r++ {
		tor := NodeID(fmt.Sprintf("tor%02d", r+1))
		if _, err := t.AddSwitch(tor, torOpenFlow); err != nil {
			return nil, err
		}
		group := r / 4 // four ToRs per agg pair
		for _, a := range []int{2*group + 1, 2*group + 2} {
			if _, err := t.Connect(tor, NodeID(fmt.Sprintf("agg%d", a)), ToRLinkLatency); err != nil {
				return nil, err
			}
		}
		for s := 1; s <= serversPerRack; s++ {
			host := NodeID(fmt.Sprintf("h%02d-%02d", r+1, s))
			if _, err := t.AddHost(host, mustAddr(10, byte(r+1), 0, byte(s))); err != nil {
				return nil, err
			}
			if _, err := t.Connect(tor, host, HostLinkLatency); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}
