// Package flowlog defines the control-traffic log FlowDiff consumes: a
// time-ordered sequence of PacketIn / FlowMod / FlowRemoved / PortStatus
// events observed at the centralized controller, each stamped with the
// controller's (virtual) clock. Logs can be segmented into intervals for
// stability analysis, filtered, merged, and serialized to JSON.
package flowlog

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"
)

// FlowKey identifies a flow by its IPv4 5-tuple.
type FlowKey struct {
	Proto   uint8      `json:"proto"`
	Src     netip.Addr `json:"src"`
	Dst     netip.Addr `json:"dst"`
	SrcPort uint16     `json:"srcPort"`
	DstPort uint16     `json:"dstPort"`
}

// Reverse returns the key of the opposite direction of the same
// conversation.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Proto: k.Proto, Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// String renders the key as "proto src:port->dst:port".
func (k FlowKey) String() string {
	return fmt.Sprintf("%d %s:%d->%s:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// EventType enumerates the control messages FlowDiff models.
type EventType int

// Control event types.
const (
	EventPacketIn EventType = iota + 1
	EventFlowMod
	EventFlowRemoved
	EventPortStatus
)

var eventTypeNames = map[EventType]string{
	EventPacketIn:    "PacketIn",
	EventFlowMod:     "FlowMod",
	EventFlowRemoved: "FlowRemoved",
	EventPortStatus:  "PortStatus",
}

// String returns the OpenFlow message name of the event type.
func (t EventType) String() string {
	if n, ok := eventTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("EventType(%d)", int(t))
}

// MarshalJSON encodes the type as its message name.
func (t EventType) MarshalJSON() ([]byte, error) {
	n, ok := eventTypeNames[t]
	if !ok {
		return nil, fmt.Errorf("flowlog: unknown event type %d", int(t))
	}
	return json.Marshal(n)
}

// UnmarshalJSON decodes a message name back into an EventType.
func (t *EventType) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for et, n := range eventTypeNames {
		if n == s {
			*t = et
			return nil
		}
	}
	return fmt.Errorf("flowlog: unknown event type %q", s)
}

// Event is one control message observed at the controller.
type Event struct {
	// Time is the controller timestamp, as virtual time since simulation
	// start.
	Time time.Duration `json:"t"`
	Type EventType     `json:"type"`
	// Switch is the reporting switch's node id; DPID its datapath id.
	Switch string  `json:"switch"`
	DPID   uint64  `json:"dpid,omitempty"`
	Flow   FlowKey `json:"flow"`
	// InPort is the ingress port (PacketIn), OutPort the egress port
	// installed by a FlowMod.
	InPort  uint16 `json:"inPort,omitempty"`
	OutPort uint16 `json:"outPort,omitempty"`
	// Bytes/Packets/FlowDuration are the final counters carried by a
	// FlowRemoved.
	Bytes        uint64        `json:"bytes,omitempty"`
	Packets      uint64        `json:"packets,omitempty"`
	FlowDuration time.Duration `json:"flowDuration,omitempty"`
	// Reason is the PacketIn / FlowRemoved / PortStatus reason code.
	Reason uint8 `json:"reason,omitempty"`
}

// Log is a time-ordered control-event capture over [Start, End).
type Log struct {
	Start  time.Duration `json:"start"`
	End    time.Duration `json:"end"`
	Events []Event       `json:"events"`
}

// New creates an empty log covering the given interval.
func New(start, end time.Duration) *Log {
	return &Log{Start: start, End: end}
}

// Append adds an event (events may be appended out of order; call Sort
// before analysis).
func (l *Log) Append(e Event) { l.Events = append(l.Events, e) }

// Sort orders events by timestamp (stable, so same-instant events keep
// their capture order).
func (l *Log) Sort() {
	sort.SliceStable(l.Events, func(i, j int) bool {
		return l.Events[i].Time < l.Events[j].Time
	})
}

// Duration returns the length of the covered interval.
func (l *Log) Duration() time.Duration { return l.End - l.Start }

// Filter returns a new log containing only events for which keep returns
// true. The interval bounds are preserved.
func (l *Log) Filter(keep func(Event) bool) *Log {
	out := New(l.Start, l.End)
	// Two passes: counting first avoids repeated slice growth, which
	// dominates modeling time on multi-hundred-thousand-event logs.
	n := 0
	for i := range l.Events {
		if keep(l.Events[i]) {
			n++
		}
	}
	if n == 0 {
		return out
	}
	out.Events = make([]Event, 0, n)
	for i := range l.Events {
		if keep(l.Events[i]) {
			out.Events = append(out.Events, l.Events[i])
		}
	}
	return out
}

// ByType returns only the events of the given type.
func (l *Log) ByType(t EventType) *Log {
	return l.Filter(func(e Event) bool { return e.Type == t })
}

// timesSorted reports whether the events are in nondecreasing time order
// (Sort's postcondition; logs appended in capture order satisfy it too).
func (l *Log) timesSorted() bool {
	for i := 1; i < len(l.Events); i++ {
		if l.Events[i].Time < l.Events[i-1].Time {
			return false
		}
	}
	return true
}

// Window returns the events within [from, to), with the log bounds set to
// the window. On a time-sorted log (the normal case) the boundaries are
// located by binary search and the events are shared with the parent log
// as a capacity-capped subslice, so windowing allocates nothing beyond
// the Log header; windows are analysis views and must not have their
// events mutated in place. Unsorted logs fall back to a linear scan.
func (l *Log) Window(from, to time.Duration) *Log {
	return l.window(from, to, false)
}

// window implements Window; inclusiveEnd additionally admits events
// stamped exactly at to (used for the final stability segment, so an
// event at the log's End lands in exactly one interval instead of none).
func (l *Log) window(from, to time.Duration, inclusiveEnd bool) *Log {
	out := New(from, to)
	if l.timesSorted() {
		lo := sort.Search(len(l.Events), func(i int) bool { return l.Events[i].Time >= from })
		hi := sort.Search(len(l.Events), func(i int) bool {
			if inclusiveEnd {
				return l.Events[i].Time > to
			}
			return l.Events[i].Time >= to
		})
		if lo < hi {
			out.Events = l.Events[lo:hi:hi]
		}
		return out
	}
	for _, e := range l.Events {
		if e.Time >= from && (e.Time < to || (inclusiveEnd && e.Time == to)) {
			out.Append(e)
		}
	}
	return out
}

// Segment splits the log into n equal-width windows. The final window is
// inclusive of End: whole-log analysis iterates every event, so an event
// stamped exactly at End must land in exactly one segment rather than be
// dropped. It returns an error when n < 1 or the log covers no time.
func (l *Log) Segment(n int) ([]*Log, error) {
	if n < 1 {
		return nil, fmt.Errorf("flowlog: segment count %d < 1", n)
	}
	if l.End <= l.Start {
		return nil, fmt.Errorf("flowlog: log covers no time [%v,%v)", l.Start, l.End)
	}
	width := l.Duration() / time.Duration(n)
	if width <= 0 {
		return nil, fmt.Errorf("flowlog: interval %v too short for %d segments", l.Duration(), n)
	}
	segs := make([]*Log, n)
	for i := range segs {
		from := l.Start + time.Duration(i)*width
		if i == n-1 {
			// Absorb the rounding remainder and the End boundary.
			segs[i] = l.window(from, l.End, true)
			continue
		}
		segs[i] = l.Window(from, from+width)
	}
	return segs, nil
}

// Merge combines several logs into one covering their union interval,
// sorted by time.
func Merge(logs ...*Log) *Log {
	if len(logs) == 0 {
		return New(0, 0)
	}
	out := New(logs[0].Start, logs[0].End)
	for _, l := range logs {
		if l.Start < out.Start {
			out.Start = l.Start
		}
		if l.End > out.End {
			out.End = l.End
		}
		out.Events = append(out.Events, l.Events...)
	}
	out.Sort()
	return out
}

// Flows returns the set of distinct flow keys appearing in PacketIn
// events, in first-appearance order.
func (l *Log) Flows() []FlowKey {
	seen := make(map[FlowKey]bool)
	var keys []FlowKey
	for _, e := range l.Events {
		if e.Type != EventPacketIn {
			continue
		}
		if !seen[e.Flow] {
			seen[e.Flow] = true
			keys = append(keys, e.Flow)
		}
	}
	return keys
}

// FirstPacketIns returns, for each distinct flow, the earliest PacketIn
// event — the flow's start as seen by the controller.
func (l *Log) FirstPacketIns() map[FlowKey]Event {
	first := make(map[FlowKey]Event)
	for _, e := range l.Events {
		if e.Type != EventPacketIn {
			continue
		}
		if prev, ok := first[e.Flow]; !ok || e.Time < prev.Time {
			first[e.Flow] = e
		}
	}
	return first
}

// WriteJSON serializes the log.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(l); err != nil {
		return fmt.Errorf("flowlog: encoding log: %w", err)
	}
	return nil
}

// ReadJSON deserializes a log written by WriteJSON.
func ReadJSON(r io.Reader) (*Log, error) {
	var l Log
	dec := json.NewDecoder(r)
	if err := dec.Decode(&l); err != nil {
		return nil, fmt.Errorf("flowlog: decoding log: %w", err)
	}
	return &l, nil
}
