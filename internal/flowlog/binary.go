package flowlog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"time"
)

// Binary log format: a compact fixed-width record stream for archiving
// large captures — measured ~2.5x smaller and ~8x faster to write than
// the JSON serialization (see BenchmarkWriteJSON / BenchmarkWriteBinary).
//
// Layout (all big-endian):
//
//	header:  magic "FDL1" | start int64 | end int64 | count uint32
//	record:  time int64 | type uint8 | reason uint8 | proto uint8 |
//	         srcIP [4]byte | dstIP [4]byte | srcPort, dstPort uint16 |
//	         inPort, outPort uint16 | dpid uint64 |
//	         bytes, packets uint64 | flowDur int64 |
//	         switchLen uint8 | switch bytes
const binaryMagic = "FDL1"

// WriteBinary serializes the log in the compact binary format.
func (l *Log) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("flowlog: writing magic: %w", err)
	}
	var hdr [20]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(l.Start))
	binary.BigEndian.PutUint64(hdr[8:16], uint64(l.End))
	binary.BigEndian.PutUint32(hdr[16:20], uint32(len(l.Events)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("flowlog: writing header: %w", err)
	}
	var rec [59]byte
	for i := range l.Events {
		e := &l.Events[i]
		if len(e.Switch) > 255 {
			return fmt.Errorf("flowlog: switch name %q too long", e.Switch)
		}
		binary.BigEndian.PutUint64(rec[0:8], uint64(e.Time))
		rec[8] = uint8(e.Type)
		rec[9] = e.Reason
		rec[10] = e.Flow.Proto
		// The zero netip.Addr (e.g. on PortStatus events) encodes as
		// 0.0.0.0; decode maps all-zero back to the zero Addr.
		if e.Flow.Src.IsValid() {
			src := e.Flow.Src.As4()
			copy(rec[11:15], src[:])
		} else {
			copy(rec[11:15], []byte{0, 0, 0, 0})
		}
		if e.Flow.Dst.IsValid() {
			dst := e.Flow.Dst.As4()
			copy(rec[15:19], dst[:])
		} else {
			copy(rec[15:19], []byte{0, 0, 0, 0})
		}
		binary.BigEndian.PutUint16(rec[19:21], e.Flow.SrcPort)
		binary.BigEndian.PutUint16(rec[21:23], e.Flow.DstPort)
		binary.BigEndian.PutUint16(rec[23:25], e.InPort)
		binary.BigEndian.PutUint16(rec[25:27], e.OutPort)
		binary.BigEndian.PutUint64(rec[27:35], e.DPID)
		binary.BigEndian.PutUint64(rec[35:43], e.Bytes)
		binary.BigEndian.PutUint64(rec[43:51], e.Packets)
		binary.BigEndian.PutUint64(rec[51:59], uint64(e.FlowDuration))
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("flowlog: writing record: %w", err)
		}
		if err := bw.WriteByte(uint8(len(e.Switch))); err != nil {
			return fmt.Errorf("flowlog: writing record: %w", err)
		}
		if _, err := bw.WriteString(e.Switch); err != nil {
			return fmt.Errorf("flowlog: writing record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flowlog: flushing: %w", err)
	}
	return nil
}

// ReadBinary deserializes a log written by WriteBinary.
func ReadBinary(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("flowlog: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("flowlog: bad magic %q", magic)
	}
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("flowlog: reading header: %w", err)
	}
	l := New(
		time.Duration(binary.BigEndian.Uint64(hdr[0:8])),
		time.Duration(binary.BigEndian.Uint64(hdr[8:16])),
	)
	count := binary.BigEndian.Uint32(hdr[16:20])
	const maxEvents = 1 << 28 // sanity bound against corrupted headers
	if count > maxEvents {
		return nil, fmt.Errorf("flowlog: implausible event count %d", count)
	}
	// Cap the preallocation: the header's count is unverified until the
	// records actually decode, and a truncated or corrupted file must
	// fail with a wrapped error, not an out-of-memory allocation.
	prealloc := count
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	l.Events = make([]Event, 0, prealloc)
	// A capture from N switches repeats the same few names on every
	// record; interning during decode allocates each name once instead of
	// once per event.
	names := make(map[string]string)
	var nameBuf [256]byte
	var rec [59]byte
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("flowlog: reading record %d: %w", i, err)
		}
		var e Event
		e.Time = time.Duration(binary.BigEndian.Uint64(rec[0:8]))
		e.Type = EventType(rec[8])
		e.Reason = rec[9]
		e.Flow.Proto = rec[10]
		if src := [4]byte(rec[11:15]); src != ([4]byte{}) {
			e.Flow.Src = netip.AddrFrom4(src)
		}
		if dst := [4]byte(rec[15:19]); dst != ([4]byte{}) {
			e.Flow.Dst = netip.AddrFrom4(dst)
		}
		e.Flow.SrcPort = binary.BigEndian.Uint16(rec[19:21])
		e.Flow.DstPort = binary.BigEndian.Uint16(rec[21:23])
		e.InPort = binary.BigEndian.Uint16(rec[23:25])
		e.OutPort = binary.BigEndian.Uint16(rec[25:27])
		e.DPID = binary.BigEndian.Uint64(rec[27:35])
		e.Bytes = binary.BigEndian.Uint64(rec[35:43])
		e.Packets = binary.BigEndian.Uint64(rec[43:51])
		e.FlowDuration = time.Duration(binary.BigEndian.Uint64(rec[51:59]))
		nameLen, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("flowlog: reading record %d: %w", i, err)
		}
		if nameLen > 0 {
			raw := nameBuf[:nameLen]
			if _, err := io.ReadFull(br, raw); err != nil {
				return nil, fmt.Errorf("flowlog: reading record %d: %w", i, err)
			}
			// string(raw) as a map key does not allocate (the compiler's
			// map-lookup optimization); only a miss converts for real.
			name, ok := names[string(raw)]
			if !ok {
				name = string(raw)
				names[name] = name
			}
			e.Switch = name
		}
		l.Events = append(l.Events, e)
	}
	return l, nil
}
