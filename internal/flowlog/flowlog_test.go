package flowlog

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func key(srcLast, dstLast byte, sp, dp uint16) FlowKey {
	return FlowKey{
		Proto:   6,
		Src:     netip.AddrFrom4([4]byte{10, 0, 0, srcLast}),
		Dst:     netip.AddrFrom4([4]byte{10, 0, 0, dstLast}),
		SrcPort: sp,
		DstPort: dp,
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := key(1, 2, 1000, 80)
	r := k.Reverse()
	if r.Src != k.Dst || r.Dst != k.Src || r.SrcPort != k.DstPort || r.DstPort != k.SrcPort {
		t.Errorf("Reverse() = %+v", r)
	}
	if r.Reverse() != k {
		t.Error("double reverse should be identity")
	}
}

func TestFlowKeyReverseProperty(t *testing.T) {
	f := func(s, d byte, sp, dp uint16, proto uint8) bool {
		k := FlowKey{Proto: proto,
			Src: netip.AddrFrom4([4]byte{10, 1, 0, s}), Dst: netip.AddrFrom4([4]byte{10, 2, 0, d}),
			SrcPort: sp, DstPort: dp}
		return k.Reverse().Reverse() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortAndWindow(t *testing.T) {
	l := New(0, 10*time.Second)
	for _, ts := range []time.Duration{5 * time.Second, time.Second, 3 * time.Second, 9 * time.Second} {
		l.Append(Event{Time: ts, Type: EventPacketIn, Switch: "sw1", Flow: key(1, 2, 1, 2)})
	}
	l.Sort()
	for i := 1; i < len(l.Events); i++ {
		if l.Events[i].Time < l.Events[i-1].Time {
			t.Fatal("not sorted")
		}
	}
	w := l.Window(2*time.Second, 6*time.Second)
	if len(w.Events) != 2 {
		t.Errorf("window has %d events, want 2", len(w.Events))
	}
	if w.Start != 2*time.Second || w.End != 6*time.Second {
		t.Errorf("window bounds = [%v,%v)", w.Start, w.End)
	}
}

func TestSegment(t *testing.T) {
	l := New(0, 10*time.Second)
	for i := 0; i < 100; i++ {
		l.Append(Event{Time: time.Duration(i) * 100 * time.Millisecond, Type: EventPacketIn})
	}
	segs, err := l.Segment(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 5 {
		t.Fatalf("got %d segments", len(segs))
	}
	total := 0
	for _, s := range segs {
		total += len(s.Events)
	}
	if total != 100 {
		t.Errorf("segments cover %d events, want all 100", total)
	}
	if segs[4].End != 10*time.Second {
		t.Errorf("last segment end = %v", segs[4].End)
	}
	if _, err := l.Segment(0); err == nil {
		t.Error("want error for n=0")
	}
	empty := New(5, 5)
	if _, err := empty.Segment(2); err == nil {
		t.Error("want error for zero-duration log")
	}
}

// Regression: an event stamped exactly at the log's End used to vanish
// from every segment (Window is half-open), so stability intervals
// collectively saw fewer events than the whole-log build.
func TestSegmentIncludesEndEvent(t *testing.T) {
	l := New(0, 10*time.Second)
	for _, ts := range []time.Duration{0, 5 * time.Second, 10 * time.Second} {
		l.Append(Event{Time: ts, Type: EventPacketIn})
	}
	segs, err := l.Segment(2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range segs {
		total += len(s.Events)
	}
	if total != 3 {
		t.Errorf("segments cover %d events, want all 3 (End-stamped event must not vanish)", total)
	}
	last := segs[len(segs)-1]
	if len(last.Events) == 0 || last.Events[len(last.Events)-1].Time != 10*time.Second {
		t.Errorf("last segment %v misses the event at End", last.Events)
	}
}

// Property: the binary-search window over a sorted log selects exactly
// the events a brute-force scan selects, and the unsorted fallback
// agrees too.
func TestWindowMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dur := time.Duration(1+rng.Intn(1000)) * time.Millisecond
		l := New(0, dur)
		for i, n := 0, rng.Intn(200); i < n; i++ {
			l.Append(Event{Time: time.Duration(rng.Int63n(int64(dur)))})
		}
		if rng.Intn(2) == 0 {
			l.Sort()
		}
		from := time.Duration(rng.Int63n(int64(dur)))
		to := from + time.Duration(rng.Int63n(int64(dur)))
		got := l.Window(from, to)
		want := 0
		for _, e := range l.Events {
			if e.Time >= from && e.Time < to {
				want++
			}
		}
		if len(got.Events) != want {
			return false
		}
		for _, e := range got.Events {
			if e.Time < from || e.Time >= to {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSegmentPartition(t *testing.T) {
	// Property: segmentation covers every event exactly once.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dur := time.Duration(1+rng.Intn(1000)) * time.Millisecond
		l := New(0, dur)
		n := 1 + rng.Intn(30)
		events := 1 + rng.Intn(200)
		for i := 0; i < events; i++ {
			l.Append(Event{Time: time.Duration(rng.Int63n(int64(dur)))})
		}
		segs, err := l.Segment(n)
		if err != nil {
			return true // degenerate (interval shorter than n ns)
		}
		total := 0
		for _, s := range segs {
			total += len(s.Events)
		}
		return total == events
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	a := New(0, 5*time.Second)
	a.Append(Event{Time: 4 * time.Second, Switch: "sw1"})
	b := New(3*time.Second, 9*time.Second)
	b.Append(Event{Time: 3 * time.Second, Switch: "sw2"})
	m := Merge(a, b)
	if m.Start != 0 || m.End != 9*time.Second {
		t.Errorf("merged bounds [%v,%v)", m.Start, m.End)
	}
	if len(m.Events) != 2 || m.Events[0].Switch != "sw2" {
		t.Errorf("merged events = %+v", m.Events)
	}
	if e := Merge(); e.Duration() != 0 || len(e.Events) != 0 {
		t.Error("empty merge should be empty")
	}
}

func TestFlowsAndFirstPacketIns(t *testing.T) {
	l := New(0, time.Minute)
	k1 := key(1, 2, 100, 80)
	k2 := key(2, 3, 200, 3306)
	l.Append(Event{Time: 2 * time.Second, Type: EventPacketIn, Switch: "sw2", Flow: k1})
	l.Append(Event{Time: 1 * time.Second, Type: EventPacketIn, Switch: "sw1", Flow: k1})
	l.Append(Event{Time: 3 * time.Second, Type: EventPacketIn, Switch: "sw1", Flow: k2})
	l.Append(Event{Time: 4 * time.Second, Type: EventFlowRemoved, Switch: "sw1", Flow: k2})
	flows := l.Flows()
	if len(flows) != 2 {
		t.Fatalf("Flows() = %v", flows)
	}
	first := l.FirstPacketIns()
	if first[k1].Time != time.Second || first[k1].Switch != "sw1" {
		t.Errorf("first PacketIn for k1 = %+v", first[k1])
	}
	if first[k2].Time != 3*time.Second {
		t.Errorf("first PacketIn for k2 = %+v", first[k2])
	}
}

func TestByTypeAndFilter(t *testing.T) {
	l := New(0, time.Minute)
	l.Append(Event{Type: EventPacketIn, Switch: "a"})
	l.Append(Event{Type: EventFlowMod, Switch: "a"})
	l.Append(Event{Type: EventFlowRemoved, Switch: "b"})
	if got := len(l.ByType(EventPacketIn).Events); got != 1 {
		t.Errorf("ByType(PacketIn) = %d events", got)
	}
	onB := l.Filter(func(e Event) bool { return e.Switch == "b" })
	if len(onB.Events) != 1 || onB.Events[0].Type != EventFlowRemoved {
		t.Errorf("Filter = %+v", onB.Events)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := New(time.Second, time.Minute)
	l.Append(Event{
		Time: 2 * time.Second, Type: EventPacketIn, Switch: "sw1", DPID: 7,
		Flow: key(1, 2, 333, 80), InPort: 4, Reason: 0,
	})
	l.Append(Event{
		Time: 30 * time.Second, Type: EventFlowRemoved, Switch: "sw1", DPID: 7,
		Flow: key(1, 2, 333, 80), Bytes: 9999, Packets: 12, FlowDuration: 28 * time.Second,
	})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, l)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("{nope"))); err == nil {
		t.Error("want error on malformed JSON")
	}
}

func TestEventTypeJSON(t *testing.T) {
	for et, name := range map[EventType]string{
		EventPacketIn: "PacketIn", EventFlowMod: "FlowMod",
		EventFlowRemoved: "FlowRemoved", EventPortStatus: "PortStatus",
	} {
		b, err := et.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != `"`+name+`"` {
			t.Errorf("marshal %v = %s", et, b)
		}
		var back EventType
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatal(err)
		}
		if back != et {
			t.Errorf("round trip %v -> %v", et, back)
		}
	}
	var bad EventType
	if err := bad.UnmarshalJSON([]byte(`"Bogus"`)); err == nil {
		t.Error("want error for unknown name")
	}
	if _, err := EventType(99).MarshalJSON(); err == nil {
		t.Error("want error for unknown type value")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	l := New(time.Second, time.Minute)
	l.Append(Event{
		Time: 2 * time.Second, Type: EventPacketIn, Switch: "sw1", DPID: 7,
		Flow: key(1, 2, 333, 80), InPort: 4,
	})
	l.Append(Event{
		Time: 30 * time.Second, Type: EventFlowRemoved, Switch: "sw1", DPID: 7,
		Flow: key(1, 2, 333, 80), Bytes: 9999, Packets: 12, FlowDuration: 28 * time.Second,
		Reason: 1,
	})
	l.Append(Event{ // PortStatus with zero flow key
		Time: 31 * time.Second, Type: EventPortStatus, Switch: "sw2", InPort: 9, Reason: 2,
	})
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Errorf("binary round trip:\n got %+v\nwant %+v", got, l)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New(0, time.Duration(1+rng.Intn(1000))*time.Second)
		n := rng.Intn(100)
		for i := 0; i < n; i++ {
			l.Append(Event{
				Time:         time.Duration(rng.Int63n(int64(l.End))),
				Type:         EventType(1 + rng.Intn(4)),
				Switch:       []string{"sw1", "tor-with-longer-name", ""}[rng.Intn(3)],
				DPID:         rng.Uint64(),
				Flow:         key(byte(rng.Intn(256)), byte(rng.Intn(256)), uint16(rng.Intn(65536)), uint16(rng.Intn(65536))),
				InPort:       uint16(rng.Intn(65536)),
				OutPort:      uint16(rng.Intn(65536)),
				Bytes:        rng.Uint64(),
				Packets:      rng.Uint64(),
				FlowDuration: time.Duration(rng.Int63()),
				Reason:       uint8(rng.Intn(256)),
			})
		}
		var buf bytes.Buffer
		if err := l.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got.Events) != len(l.Events) || got.Start != l.Start || got.End != l.End {
			return false
		}
		for i := range l.Events {
			if got.Events[i] != l.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("want error on bad magic")
	}
	// Truncated stream after a valid header.
	l := New(0, time.Minute)
	l.Append(Event{Time: time.Second, Type: EventPacketIn, Switch: "sw1", Flow: key(1, 2, 3, 4)})
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)-5])); err == nil {
		t.Error("want error on truncated records")
	}
}

func BenchmarkWriteJSON(b *testing.B) {
	l := benchLog()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := l.WriteJSON(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	l := benchLog()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := l.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func benchLog() *Log {
	l := New(0, time.Hour)
	for i := 0; i < 10000; i++ {
		l.Append(Event{
			Time: time.Duration(i) * time.Millisecond, Type: EventPacketIn,
			Switch: "sw1", DPID: 3, Flow: key(byte(i), byte(i>>8), uint16(i), 80), InPort: 2,
		})
	}
	return l
}
