package flowlog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"
)

// Regression: ReadBinary used to allocate a fresh []byte + string per
// record for the switch name; a capture from a handful of switches now
// interns each name once, so decode allocations stay flat in the event
// count instead of growing 2x per event.
func TestReadBinaryInternsSwitchNames(t *testing.T) {
	const events = 1000
	l := New(0, time.Hour)
	for i := 0; i < events; i++ {
		l.Append(Event{
			Time: time.Duration(i) * time.Millisecond, Type: EventPacketIn,
			Switch: fmt.Sprintf("sw%d", i%4), Flow: key(byte(i), 2, uint16(i), 80),
		})
	}
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ReadBinary(bytes.NewReader(raw)); err != nil {
			t.Fatal(err)
		}
	})
	// Fixed overhead (log, event slice, reader buffer, intern map, 4
	// names) only: the old per-record path cost ~2 allocations per event
	// (2000+ here).
	if allocs > 100 {
		t.Errorf("ReadBinary allocated %.0f times for %d events from 4 switches; switch names are not interned", allocs, events)
	}
	got, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Events {
		if got.Events[i].Switch != l.Events[i].Switch {
			t.Fatalf("event %d switch = %q, want %q", i, got.Events[i].Switch, l.Events[i].Switch)
		}
	}
}

// A header promising billions of events backed by a tiny stream must
// fail with a decode error, not preallocate the promised slice.
func TestReadBinaryImplausibleCountDoesNotPreallocate(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	var hdr [20]byte
	binary.BigEndian.PutUint32(hdr[16:20], 1<<27) // plausible per the cap, absurd for the body
	buf.Write(hdr[:])
	buf.WriteString("short")
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("want error for truncated stream")
		}
	})
	// 1<<27 events would be a multi-GiB slice; the capped prealloc is
	// 1<<16 events (~8 MiB) at most and the record loop fails on the
	// first read.
	if allocs > 50 {
		t.Errorf("ReadBinary allocated %.0f times before failing", allocs)
	}
	binary.BigEndian.PutUint32(hdr[16:20], 1<<29)
	var over bytes.Buffer
	over.WriteString(binaryMagic)
	over.Write(hdr[:])
	if _, err := ReadBinary(bytes.NewReader(over.Bytes())); err == nil {
		t.Error("want error for count above the format cap")
	}
}

func FuzzReadBinary(f *testing.F) {
	// Seed corpus: a valid two-event log, its truncations, a bad magic,
	// and a lying header count.
	l := New(0, time.Minute)
	l.Append(Event{Time: time.Second, Type: EventPacketIn, Switch: "sw1", Flow: key(1, 2, 3, 4)})
	l.Append(Event{Time: 2 * time.Second, Type: EventFlowRemoved, Switch: "sw2", Flow: key(1, 2, 3, 4), Bytes: 99})
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	f.Add(valid[:10])
	f.Add([]byte("XXXX"))
	bad := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(bad[20:24], 1<<30)
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic or OOM; errors are the expected outcome for
		// almost every input.
		got, err := ReadBinary(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Error("nil log without error")
		}
	})
}
