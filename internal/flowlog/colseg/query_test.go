package colseg

import (
	"bytes"
	"context"
	"io"
	"net/netip"
	"reflect"
	"runtime"
	"testing"
	"time"

	"flowdiff/internal/flowlog"
	"flowdiff/internal/obs"
)

// skewedLog is the multi-segment equivalence capture: long quiet
// stretches, one dense burst (so segment sizes are heavily skewed and
// the event cap cuts mid-range), and host/switch populations that shift
// over time (so membership summaries actually differ per segment).
func skewedLog(t testing.TB) *flowlog.Log {
	t.Helper()
	l := flowlog.New(0, 2*time.Minute)
	add := func(at time.Duration, g byte, port uint16) {
		k := testKey(g, 1, port)
		sw := "sw-a"
		if g >= 2 {
			sw = "sw-b"
		}
		l.Append(flowlog.Event{Time: at, Type: flowlog.EventPacketIn, Switch: sw, DPID: uint64(g), Flow: k, InPort: 1})
		l.Append(flowlog.Event{Time: at + time.Millisecond, Type: flowlog.EventFlowMod, Switch: sw, DPID: uint64(g), Flow: k, OutPort: 2})
		l.Append(flowlog.Event{Time: at + 200*time.Millisecond, Type: flowlog.EventFlowRemoved, Switch: sw, DPID: uint64(g), Flow: k,
			Bytes: 10_000 + uint64(port), Packets: 17, FlowDuration: 150 * time.Millisecond, Reason: 1})
	}
	// Sparse first half: groups 0 and 1 only.
	for i := 0; i < 40; i++ {
		add(time.Duration(i)*1250*time.Millisecond, byte(i%2), uint16(1024+i))
	}
	// Dense burst in [52s, 56s): groups 2 and 3, thousands of events in
	// a few segments.
	for i := 0; i < 1500; i++ {
		add(52*time.Second+time.Duration(i)*2500*time.Microsecond, byte(2+i%2), uint16(2000+i))
	}
	// Sparse tail: group 3 only, plus PortStatus noise with no flow key.
	for i := 0; i < 30; i++ {
		at := 70*time.Second + time.Duration(i)*1500*time.Millisecond
		add(at, 3, uint16(4000+i))
		if i%3 == 0 {
			l.Append(flowlog.Event{Time: at + 2*time.Millisecond, Type: flowlog.EventPortStatus, Reason: 2, InPort: 9})
		}
	}
	l.Sort()
	return l
}

// readEvents drains a reader over raw with the given options.
func readEvents(t testing.TB, ctx context.Context, raw []byte, opts ReaderOptions) []flowlog.Event {
	t.Helper()
	r, err := NewReaderContext(ctx, bytes.NewReader(raw), opts)
	if err != nil {
		t.Fatal(err)
	}
	var all []flowlog.Event
	for {
		batch, err := r.Next()
		if err == io.EOF {
			return all
		}
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, batch...)
	}
}

// applyFilter is the in-memory reference for Filter semantics.
func applyFilter(evs []flowlog.Event, f Filter) []flowlog.Event {
	hosts := make(map[netip.Addr]bool, len(f.Hosts))
	for _, a := range f.Hosts {
		hosts[a] = true
	}
	switches := make(map[string]bool, len(f.Switches))
	for _, s := range f.Switches {
		switches[s] = true
	}
	out := []flowlog.Event{}
	for _, e := range evs {
		if f.timeActive() && (e.Time < f.From || e.Time >= f.To) {
			continue
		}
		if len(hosts) > 0 && !hosts[e.Flow.Src] && !hosts[e.Flow.Dst] {
			continue
		}
		if len(switches) > 0 && !switches[e.Switch] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// project is the in-memory reference for ColumnSet semantics:
// unprojected fields read as the zero value.
func project(evs []flowlog.Event, cols ColumnSet) []flowlog.Event {
	cols = cols.normalized()
	out := make([]flowlog.Event, len(evs))
	for i, e := range evs {
		p := flowlog.Event{Time: e.Time}
		if cols.has(columnType) {
			p.Type = e.Type
		}
		if cols.has(columnReason) {
			p.Reason = e.Reason
		}
		if cols.has(columnProto) {
			p.Flow.Proto = e.Flow.Proto
		}
		if cols.has(columnSrc) {
			p.Flow.Src = e.Flow.Src
		}
		if cols.has(columnDst) {
			p.Flow.Dst = e.Flow.Dst
		}
		if cols.has(columnSrcPort) {
			p.Flow.SrcPort = e.Flow.SrcPort
		}
		if cols.has(columnDstPort) {
			p.Flow.DstPort = e.Flow.DstPort
		}
		if cols.has(columnInPort) {
			p.InPort = e.InPort
		}
		if cols.has(columnOutPort) {
			p.OutPort = e.OutPort
		}
		if cols.has(columnDPID) {
			p.DPID = e.DPID
		}
		if cols.has(columnBytes) {
			p.Bytes = e.Bytes
		}
		if cols.has(columnPackets) {
			p.Packets = e.Packets
		}
		if cols.has(columnFlowDur) {
			p.FlowDuration = e.FlowDuration
		}
		if cols.has(columnSwitch) {
			p.Switch = e.Switch
		}
		out[i] = p
	}
	return out
}

var queryCases = []struct {
	name string
	f    Filter
	cols ColumnSet
}{
	{"full", Filter{}, 0},
	{"flow columns", Filter{}, FlowColumns},
	{"endpoints only", Filter{}, ColSrc | ColDst},
	{"counters only", Filter{}, ColBytes | ColPackets | ColFlowDuration},
	{"switch only", Filter{}, ColSwitch},
	{"time window", Filter{From: 40 * time.Second, To: 60 * time.Second}, 0},
	{"host pair", Filter{Hosts: []netip.Addr{
		netip.AddrFrom4([4]byte{10, 2, 1, 1}), netip.AddrFrom4([4]byte{10, 2, 2, 1}),
	}}, 0},
	{"switch filter", Filter{Switches: []string{"sw-b"}}, 0},
	{"host+window+projection", Filter{
		From: 50 * time.Second, To: 70 * time.Second,
		Hosts: []netip.Addr{netip.AddrFrom4([4]byte{10, 3, 1, 1})},
	}, ColSrc | ColDst},
	{"switch+window", Filter{
		From: 0, To: 55 * time.Second, Switches: []string{"sw-a"},
	}, ColSwitch | ColType},
}

// TestQueryReadsMatchReference pins projected and filtered reads, on
// both on-disk versions, against the in-memory reference semantics.
func TestQueryReadsMatchReference(t *testing.T) {
	l := skewedLog(t)
	for _, ver := range []int{1, 2} {
		raw := encode(t, l, WriterOptions{SegmentDuration: 5 * time.Second, MaxSegmentEvents: 700, FormatVersion: ver})
		for _, tc := range queryCases {
			want := project(applyFilter(l.Events, tc.f), tc.cols)
			got := readEvents(t, context.Background(), raw, ReaderOptions{Filter: tc.f, Columns: tc.cols})
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("v%d %s: %d events diverge from reference (%d)", ver, tc.name, len(got), len(want))
			}
		}
	}
}

// TestParallelDecodeMatchesSerial is the determinism acceptance:
// parallel decode output is identical to the serial reader at workers
// 1/2/4/7 for every query shape, and the decode counters agree with the
// serial run at every worker count.
func TestParallelDecodeMatchesSerial(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	l := skewedLog(t)
	raw := encode(t, l, WriterOptions{SegmentDuration: 5 * time.Second, MaxSegmentEvents: 700})
	counters := []string{
		"colseg.segments.read", "colseg.segments.pruned", "colseg.segments.pruned_by_index",
		"colseg.events.decoded", "colseg.events.filtered",
		"colseg.columns.skipped", "colseg.bytes.decoded", "colseg.bytes.skipped",
	}
	for _, tc := range queryCases {
		serialReg := obs.New()
		serialCtx := obs.WithRegistry(context.Background(), serialReg)
		want := readEvents(t, serialCtx, raw, ReaderOptions{Filter: tc.f, Columns: tc.cols})
		for _, workers := range []int{1, 2, 4, 7} {
			reg := obs.New()
			ctx := obs.WithRegistry(context.Background(), reg)
			got := readEvents(t, ctx, raw, ReaderOptions{Filter: tc.f, Columns: tc.cols, Parallelism: workers})
			if len(got) != 0 || len(want) != 0 {
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s workers=%d: output diverges from serial", tc.name, workers)
				}
			}
			for _, name := range counters {
				if got, want := reg.Counter(name).Value(), serialReg.Counter(name).Value(); got != want {
					t.Errorf("%s workers=%d: %s = %d, serial %d", tc.name, workers, name, got, want)
				}
			}
		}
	}
}

// TestOutOfRangeEventsDroppedAtDecodeTime pins the fix for the PR 7
// time-range path: segments overlapping the window must filter
// out-of-range events during decode — never materialize then drop them.
// The counter contract makes the distinction observable:
// events.decoded counts only materialized (returned) events and
// events.filtered the ones dropped at decode time.
func TestOutOfRangeEventsDroppedAtDecodeTime(t *testing.T) {
	l := testLog(2*time.Minute, 3000)
	raw := encode(t, l, WriterOptions{SegmentDuration: 10 * time.Second})

	// A window straddling segment boundaries: overlapping segments hold
	// both in-window and out-of-window events.
	f := Filter{From: 12 * time.Second, To: 38 * time.Second}
	reg := obs.New()
	ctx := obs.WithRegistry(context.Background(), reg)
	got := readEvents(t, ctx, raw, ReaderOptions{Filter: f})
	want := applyFilter(l.Events, f)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("windowed read: %d events, reference %d", len(got), len(want))
	}
	for _, e := range got {
		if e.Time < f.From || e.Time >= f.To {
			t.Fatalf("out-of-window event at %v materialized", e.Time)
		}
	}

	decoded := reg.Counter("colseg.events.decoded").Value()
	filtered := reg.Counter("colseg.events.filtered").Value()
	if decoded != int64(len(got)) {
		t.Errorf("events.decoded = %d, want exactly the %d materialized events", decoded, len(got))
	}
	if filtered == 0 {
		t.Error("events.filtered = 0: overlapping segments held no out-of-range events to drop?")
	}
	// decoded+filtered is every event in the segments that were read;
	// everything else was pruned whole.
	read := reg.Counter("colseg.segments.read").Value()
	pruned := reg.Counter("colseg.segments.pruned").Value()
	if read == 0 || pruned == 0 {
		t.Errorf("segments.read = %d, segments.pruned = %d: want both nonzero", read, pruned)
	}
}

// TestMembershipPruning: a host (or switch) filter must prune segments
// whose index summary proves absence — without touching their payload —
// on version-2 files, and degrade to decode-time filtering (same
// results, no index pruning) on version-1 files.
func TestMembershipPruning(t *testing.T) {
	l := skewedLog(t)
	// Group 3 hosts appear only from the burst onward: the sparse first
	// half's segments must prune by index.
	f := Filter{Hosts: []netip.Addr{netip.AddrFrom4([4]byte{10, 3, 1, 1})}}
	want := applyFilter(l.Events, f)
	if len(want) == 0 {
		t.Fatal("bad fixture: no events for the filtered host")
	}

	for _, tc := range []struct {
		ver       int
		wantIndex bool
	}{{2, true}, {1, false}} {
		raw := encode(t, l, WriterOptions{SegmentDuration: 5 * time.Second, MaxSegmentEvents: 700, FormatVersion: tc.ver})
		reg := obs.New()
		ctx := obs.WithRegistry(context.Background(), reg)
		got := readEvents(t, ctx, raw, ReaderOptions{Filter: f})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("v%d: host-filtered read diverges from reference", tc.ver)
		}
		prunedX := reg.Counter("colseg.segments.pruned_by_index").Value()
		if tc.wantIndex && prunedX == 0 {
			t.Errorf("v%d: no segments pruned by index for a host absent from the first half", tc.ver)
		}
		if !tc.wantIndex && prunedX != 0 {
			t.Errorf("v%d: %d segments pruned by index on a version without summaries", tc.ver, prunedX)
		}
	}

	// Switch membership prunes too: sw-b never appears before the burst.
	fsw := Filter{Switches: []string{"sw-b"}}
	raw := encode(t, l, WriterOptions{SegmentDuration: 5 * time.Second, MaxSegmentEvents: 700})
	reg := obs.New()
	ctx := obs.WithRegistry(context.Background(), reg)
	got := readEvents(t, ctx, raw, ReaderOptions{Filter: fsw})
	if !reflect.DeepEqual(got, applyFilter(l.Events, fsw)) {
		t.Error("switch-filtered read diverges from reference")
	}
	if reg.Counter("colseg.segments.pruned_by_index").Value() == 0 {
		t.Error("no segments pruned by switch membership")
	}
}

// TestProjectedPrunedScanBytesAcceptance is the perf acceptance pin: a
// projected + index-pruned host-pair time-window scan over the
// canonical multi-segment capture must decode >= 5x fewer payload bytes
// than a full read, measured by the colseg.bytes.decoded counter.
func TestProjectedPrunedScanBytesAcceptance(t *testing.T) {
	l := testLog(2*time.Minute, 20_000)
	raw := encode(t, l, WriterOptions{SegmentDuration: 10 * time.Second})

	fullReg := obs.New()
	full := readEvents(t, obs.WithRegistry(context.Background(), fullReg), raw, ReaderOptions{})
	if len(full) != len(l.Events) {
		t.Fatalf("full read returned %d of %d events", len(full), len(l.Events))
	}
	fullBytes := fullReg.Counter("colseg.bytes.decoded").Value()

	q := ReaderOptions{
		Filter: Filter{
			From: 40 * time.Second, To: 60 * time.Second,
			Hosts: []netip.Addr{
				netip.AddrFrom4([4]byte{10, 0, 1, 1}),
				netip.AddrFrom4([4]byte{10, 0, 2, 1}),
			},
		},
		Columns: ColTime | ColSrc | ColDst,
	}
	qReg := obs.New()
	got := readEvents(t, obs.WithRegistry(context.Background(), qReg), raw, q)
	want := project(applyFilter(l.Events, q.Filter), q.Columns)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("query read diverges from reference (%d vs %d events)", len(got), len(want))
	}
	qBytes := qReg.Counter("colseg.bytes.decoded").Value()
	if qBytes == 0 {
		t.Fatal("query read decoded zero bytes")
	}
	ratio := float64(fullBytes) / float64(qBytes)
	t.Logf("payload bytes decoded: full=%d query=%d (%.1fx fewer; skipped=%d, segments pruned=%d)",
		fullBytes, qBytes, ratio,
		qReg.Counter("colseg.bytes.skipped").Value(),
		qReg.Counter("colseg.segments.pruned").Value())
	if ratio < 5 {
		t.Errorf("projected+pruned scan decoded only %.1fx fewer payload bytes, want >= 5x", ratio)
	}
}

// TestV1FilesRemainReadable: the legacy format round-trips through the
// new reader bit-for-bit, serially and in parallel.
func TestV1FilesRemainReadable(t *testing.T) {
	l := testLog(2*time.Minute, 2000)
	raw := encode(t, l, WriterOptions{SegmentDuration: 10 * time.Second, FormatVersion: 1})
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatal("v1 round trip mismatch through the new reader")
	}
	par := readEvents(t, context.Background(), raw, ReaderOptions{Parallelism: 4})
	if !reflect.DeepEqual(par, l.Events) {
		t.Fatal("v1 parallel read mismatch")
	}
}

// TestFutureVersionRejected: a file from a future format revision fails
// at open with a version error — the forward-compat contract.
func TestFutureVersionRejected(t *testing.T) {
	raw := encode(t, testLog(time.Second, 20), WriterOptions{})
	future := append([]byte(nil), raw...)
	future[4] = formatVersion2 + 1
	if _, err := NewReader(bytes.NewReader(future), ReaderOptions{}); err == nil {
		t.Error("want version error for a future-format file")
	}
	if _, err := Inspect(bytes.NewReader(future)); err == nil {
		t.Error("Inspect: want version error for a future-format file")
	}
}

// TestReaderBoundsWithFilter: a time-filtered reader reports the filter
// window, so downstream consumers (streamed signature builds) cover
// exactly the queried interval.
func TestReaderBoundsWithFilter(t *testing.T) {
	raw := encode(t, testLog(time.Minute, 600), WriterOptions{})
	r, err := NewReader(bytes.NewReader(raw), ReaderOptions{Filter: Filter{From: 10 * time.Second, To: 20 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if from, to := r.Bounds(); from != 10*time.Second || to != 20*time.Second {
		t.Errorf("Bounds() = [%v, %v], want the filter window", from, to)
	}
	r2, err := NewReader(bytes.NewReader(raw), ReaderOptions{Filter: Filter{Hosts: []netip.Addr{netip.AddrFrom4([4]byte{10, 0, 1, 1})}}})
	if err != nil {
		t.Fatal(err)
	}
	if from, to := r2.Bounds(); from != 0 || to != time.Minute {
		t.Errorf("Bounds() = [%v, %v], want the file bounds when no time filter is set", from, to)
	}
}

// TestParallelReadCancellation: a canceled context surfaces as a
// terminal error from Next, and the worker pool drains (no goroutine
// leaks under -race).
func TestParallelReadCancellation(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	raw := encode(t, testLog(2*time.Minute, 5000), WriterOptions{SegmentDuration: 2 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := NewReaderContext(ctx, bytes.NewReader(raw), ReaderOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := r.Next()
		if err == nil {
			continue
		}
		if err == io.EOF {
			t.Error("canceled parallel read drained to EOF instead of failing")
		}
		break
	}
}

// TestInspectReportsSegmentMetadata: Inspect's metadata must agree with
// the writer's segmentation, and its per-column sizes must tile the
// payload exactly.
func TestInspectReportsSegmentMetadata(t *testing.T) {
	l := skewedLog(t)
	raw := encode(t, l, WriterOptions{SegmentDuration: 5 * time.Second, MaxSegmentEvents: 700})
	info, err := Inspect(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.NumColumns != numColumns {
		t.Errorf("version %d / %d columns, want 2 / %d", info.Version, info.NumColumns, numColumns)
	}
	if info.SegmentDuration != 5*time.Second {
		t.Errorf("segment duration %v, want 5s", info.SegmentDuration)
	}
	if info.Events != len(l.Events) {
		t.Errorf("aggregate events %d, want %d", info.Events, len(l.Events))
	}
	if len(info.Segments) < 3 {
		t.Fatalf("only %d segments for a 2m skewed capture", len(info.Segments))
	}
	for i, seg := range info.Segments {
		if seg.Events <= 0 || seg.Events > 700 {
			t.Errorf("seg %d: %d events violates the 700 cap", i, seg.Events)
		}
		if seg.MinTime > seg.MaxTime {
			t.Errorf("seg %d: min %v > max %v", i, seg.MinTime, seg.MaxTime)
		}
		if !seg.HasStats || seg.IndexLen <= 0 {
			t.Errorf("seg %d: v2 segment without stats/index", i)
		}
		if seg.Hosts < 0 || seg.Switches < 0 {
			t.Errorf("seg %d: summaries overflowed on a small capture", i)
		}
		sum := 0
		for _, col := range seg.Columns {
			sum += col.Size
		}
		if sum != seg.PayloadLen {
			t.Errorf("seg %d: column sizes sum to %d, payload is %d", i, sum, seg.PayloadLen)
		}
	}

	// Version 1: no index, no stats, unknown cardinalities — but the
	// sizes still come from the footer offsets.
	rawV1 := encode(t, l, WriterOptions{SegmentDuration: 5 * time.Second, MaxSegmentEvents: 700, FormatVersion: 1})
	infoV1, err := Inspect(bytes.NewReader(rawV1))
	if err != nil {
		t.Fatal(err)
	}
	if infoV1.Version != 1 || infoV1.Events != len(l.Events) {
		t.Errorf("v1 inspect: version %d, events %d", infoV1.Version, infoV1.Events)
	}
	for i, seg := range infoV1.Segments {
		if seg.HasStats || seg.IndexLen != 0 || seg.Hosts != -1 || seg.Switches != -1 {
			t.Errorf("v1 seg %d: reported v2-only metadata", i)
		}
		sum := 0
		for _, col := range seg.Columns {
			sum += col.Size
		}
		if sum != seg.PayloadLen {
			t.Errorf("v1 seg %d: column sizes sum to %d, payload is %d", i, sum, seg.PayloadLen)
		}
	}
}
