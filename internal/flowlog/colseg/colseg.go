// Package colseg implements FDC1, the segmented columnar on-disk
// flow-log format, and the query-aware streaming reader that feeds
// signature builds without materializing the full event slice.
//
// A capture is split into segments, one per fixed time range (plus an
// event-count cap, so a burst cannot produce an unbounded segment), and
// each segment stores its events column by column:
//
//	file    := header segment* "FEND"
//	header  := "FDC1" | version u8 | ncols u8 |
//	           start i64 | end i64 | segWidth i64
//
// Version 2 (current) places the segment index ahead of the payload, so
// every pruning and projection decision is made before a single payload
// byte is read:
//
//	segment := "FSEG" | minTime i64 | maxTime i64 |
//	           count u32 | payloadLen u32 | indexLen u32 |
//	           index | payload
//	index   := ncols x colOffset u32 |
//	           ncols x colCRC u32 |
//	           ncols x (min u64 | max u64) |
//	           hostFlag u8 | hostCount uvarint | hostCount x 4 bytes |
//	           swFlag u8 | swCount uvarint | swCount x (len uvarint | bytes)
//	payload := column blocks, concatenated in column order
//
// The index carries, per column, its offset into the payload, a CRC32
// (IEEE) over its block (checked per decoded block, so unprojected
// blocks can be skipped without reading them), and the block's value
// range (for dictionary columns: the dictionary cardinality in both
// fields). The host summary is the sorted union of the segment's src
// and dst dictionaries (zero/invalid addresses excluded); the switch
// summary is the sorted switch-name dictionary. A summary whose
// cardinality exceeds summaryCap is written as overflowed (flag 1,
// count 0), which disables membership pruning for that segment but
// never affects correctness. A membership or time filter that proves a
// segment irrelevant prunes it from the index alone: the payload is
// skipped with Discard, never decoded.
//
// Version 1 (still readable) kept the offsets and a whole-payload CRC
// in a footer after the payload:
//
//	segment := "FSEG" | minTime i64 | maxTime i64 |
//	           count u32 | payloadLen u32 | payload | footer
//	footer  := ncols x colOffset u32 | crc32(payload) u32
//
// v1 files support time pruning (the preamble carries min/max time) and
// column-projected decode, but not membership pruning (no summaries)
// and not partial payload reads (the CRC covers the whole payload, so
// the payload must be read to reach the footer). Readers at version 1
// reject version-2 files from the header's version byte with a wrapped
// error — the forward-compat contract.
//
// Fixed-width integers are big-endian (matching FDL1).
//
// Column encodings (in payload order):
//
//	time                  delta from previous event, zigzag varint
//	type, reason, proto   run-length (uvarint run, value byte)
//	src, dst              per-segment IPv4 dictionary (first-appearance
//	                      order; 0.0.0.0 encodes the zero netip.Addr),
//	                      then one uvarint dictionary index per event
//	srcPort, dstPort,
//	inPort, outPort,
//	dpid, bytes, packets,
//	flowDuration          uvarint per event
//	switch                per-segment string dictionary + uvarint index
//
// Measured on the canonical scenario capture, FDC1 is >= 1.5x smaller
// than the row-oriented FDL1 format (see TestColumnarCompressionRatio
// and BenchmarkCompressionRatio).
package colseg

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"
)

const (
	fileMagic = "FDC1"
	segMagic  = "FSEG"
	endMagic  = "FEND"

	formatVersion1 = 1
	formatVersion2 = 2
	// formatVersion is what the writer emits by default.
	formatVersion = formatVersion2
)

// Column order inside a segment payload. numColumns is written to the
// header so a reader can reject files from a different layout revision.
const (
	columnTime = iota
	columnType
	columnReason
	columnProto
	columnSrc
	columnDst
	columnSrcPort
	columnDstPort
	columnInPort
	columnOutPort
	columnDPID
	columnBytes
	columnPackets
	columnFlowDur
	columnSwitch
	numColumns
)

// columnNames is the inspect/debug name of each column, in payload
// order.
var columnNames = [numColumns]string{
	"time", "type", "reason", "proto", "src", "dst",
	"srcPort", "dstPort", "inPort", "outPort",
	"dpid", "bytes", "packets", "flowDuration", "switch",
}

// ColumnSet selects event fields for a projected read: a bitset with
// one bit per on-disk column. The zero value selects every column (a
// full decode); any non-zero set implicitly includes ColTime, since
// time orders batches and drives windowed filtering. Unprojected
// columns leave their event fields at the zero value and their payload
// blocks are never decoded (on version-2 files, never even read).
type ColumnSet uint32

// Projectable columns. Combine with |: ColTime | ColSrc | ColDst is
// the flow-endpoint projection window counting and suspect-flow
// resolution need.
const (
	ColTime         ColumnSet = 1 << columnTime
	ColType         ColumnSet = 1 << columnType
	ColReason       ColumnSet = 1 << columnReason
	ColProto        ColumnSet = 1 << columnProto
	ColSrc          ColumnSet = 1 << columnSrc
	ColDst          ColumnSet = 1 << columnDst
	ColSrcPort      ColumnSet = 1 << columnSrcPort
	ColDstPort      ColumnSet = 1 << columnDstPort
	ColInPort       ColumnSet = 1 << columnInPort
	ColOutPort      ColumnSet = 1 << columnOutPort
	ColDPID         ColumnSet = 1 << columnDPID
	ColBytes        ColumnSet = 1 << columnBytes
	ColPackets      ColumnSet = 1 << columnPackets
	ColFlowDuration ColumnSet = 1 << columnFlowDur
	ColSwitch       ColumnSet = 1 << columnSwitch

	// AllColumns selects every column — equivalent to the zero value.
	AllColumns ColumnSet = 1<<numColumns - 1

	// FlowColumns is the 5-tuple: proto, src, dst, and both ports.
	FlowColumns = ColProto | ColSrc | ColDst | ColSrcPort | ColDstPort
)

func (s ColumnSet) normalized() ColumnSet {
	if s == 0 {
		return AllColumns
	}
	return (s | ColTime) & AllColumns
}

func (s ColumnSet) has(col int) bool { return s&(1<<col) != 0 }

// Filter restricts a read to a query's events. Restrictions compose
// (logical AND); the zero Filter keeps everything.
//
// Whole segments whose index proves no event can match are pruned
// before any payload byte is read; inside segments that may overlap,
// non-matching events are dropped at decode time — they are never
// materialized into the output batch.
type Filter struct {
	// From/To restrict the read to events in [From, To) — the same
	// half-open semantics as flowlog.Window. The time filter is active
	// only when To > From.
	From, To time.Duration
	// Hosts keeps only events whose flow source or destination address
	// is in the set (PortStatus-style events with no flow key never
	// match). Empty means no host restriction.
	Hosts []netip.Addr
	// Switches keeps only events reported by one of the named switches.
	// Empty means no switch restriction.
	Switches []string
}

func (f Filter) timeActive() bool { return f.To > f.From }

func (f Filter) active() bool {
	return f.timeActive() || len(f.Hosts) > 0 || len(f.Switches) > 0
}

// columns returns the columns the filter must decode to evaluate
// per-event membership, beyond what the caller projected.
func (f Filter) columns() ColumnSet {
	var need ColumnSet
	if len(f.Hosts) > 0 {
		need |= ColSrc | ColDst
	}
	if len(f.Switches) > 0 {
		need |= ColSwitch
	}
	return need
}

// Sanity bounds: a corrupted or hostile preamble must not drive an
// allocation, so counts and lengths are capped before any make().
const (
	maxSegmentEvents = 1 << 22 // 4M events per segment
	maxPayloadLen    = 1 << 28 // 256 MiB per segment payload
	maxIndexLen      = 1 << 22 // 4 MiB per segment index
	maxNameLen       = 1 << 12 // switch-name dictionary entry
	// summaryCap bounds the index's host/switch membership summaries: a
	// segment with more distinct entries writes an overflowed summary
	// (present but empty), which disables membership pruning for that
	// segment instead of bloating the index.
	summaryCap = 256
)

const (
	headerLen     = 4 + 1 + 1 + 8 + 8 + 8  // magic version ncols start end width
	preambleLenV1 = 8 + 8 + 4 + 4          // minTime maxTime count payloadLen
	preambleLenV2 = preambleLenV1 + 4      // + indexLen
	footerLenV1   = numColumns*4 + 4       // offsets + crc32
	statsLen      = numColumns * (8 + 8)   // min/max per column
	indexFixedLen = numColumns*4*2 + statsLen // offsets + crcs + stats
)

// segIndex is the decoded form of a version-2 segment index (or the
// subset a version-1 footer provides: offsets plus the whole-payload
// CRC carried in crcs[0] with perColumnCRC false).
type segIndex struct {
	offs [numColumns]int
	crcs [numColumns]uint32
	// perColumnCRC: v2 indexes checksum each block independently; a v1
	// footer checksums the whole payload (crcs[0]).
	perColumnCRC bool
	// stats[c] is the column's (min, max) encoded value range; for the
	// dictionary columns (src, dst, switch) both fields carry the
	// dictionary cardinality instead.
	stats [numColumns][2]uint64
	// hosts is the sorted union of the src and dst dictionaries
	// (invalid/zero addresses excluded); hostsExact is false when the
	// summary overflowed and membership pruning must be skipped.
	hosts      [][4]byte
	hostsExact bool
	// switches is the sorted switch-name dictionary; same overflow
	// contract.
	switches      []string
	switchesExact bool
}

// blockLen returns the encoded size of one column's block given the
// total payload length.
func (x *segIndex) blockLen(col, payloadLen int) int {
	end := payloadLen
	if col+1 < numColumns {
		end = x.offs[col+1]
	}
	return end - x.offs[col]
}

// checkOffsets validates the offset table against the payload length:
// offsets must be nondecreasing and in range, so every blockLen is
// non-negative and bounds-checked slicing is safe.
func (x *segIndex) checkOffsets(payloadLen int) error {
	for i := range x.offs {
		if x.offs[i] > payloadLen || (i > 0 && x.offs[i] < x.offs[i-1]) {
			return fmt.Errorf("colseg: corrupt column offset table")
		}
	}
	return nil
}

// parseIndexV2 decodes a version-2 segment index.
func parseIndexV2(b []byte, payloadLen int) (*segIndex, error) {
	if len(b) < indexFixedLen {
		return nil, fmt.Errorf("colseg: segment index truncated at %d bytes", len(b))
	}
	x := &segIndex{perColumnCRC: true}
	c := cursor{b: b}
	for i := range x.offs {
		v, err := c.bytes(4)
		if err != nil {
			return nil, err
		}
		x.offs[i] = int(binary.BigEndian.Uint32(v))
	}
	if err := x.checkOffsets(payloadLen); err != nil {
		return nil, err
	}
	for i := range x.crcs {
		v, err := c.bytes(4)
		if err != nil {
			return nil, err
		}
		x.crcs[i] = binary.BigEndian.Uint32(v)
	}
	for i := range x.stats {
		v, err := c.bytes(16)
		if err != nil {
			return nil, err
		}
		x.stats[i][0] = binary.BigEndian.Uint64(v[0:8])
		x.stats[i][1] = binary.BigEndian.Uint64(v[8:16])
	}
	flag, err := c.byte()
	if err != nil {
		return nil, fmt.Errorf("colseg: host summary: %w", err)
	}
	x.hostsExact = flag == 0
	n, err := c.uvarint()
	if err != nil {
		return nil, fmt.Errorf("colseg: host summary: %w", err)
	}
	if n > summaryCap {
		return nil, fmt.Errorf("colseg: host summary: implausible size %d", n)
	}
	x.hosts = make([][4]byte, n)
	for i := range x.hosts {
		v, err := c.bytes(4)
		if err != nil {
			return nil, fmt.Errorf("colseg: host summary: %w", err)
		}
		x.hosts[i] = [4]byte(v)
	}
	flag, err = c.byte()
	if err != nil {
		return nil, fmt.Errorf("colseg: switch summary: %w", err)
	}
	x.switchesExact = flag == 0
	n, err = c.uvarint()
	if err != nil {
		return nil, fmt.Errorf("colseg: switch summary: %w", err)
	}
	if n > summaryCap {
		return nil, fmt.Errorf("colseg: switch summary: implausible size %d", n)
	}
	x.switches = make([]string, n)
	for i := range x.switches {
		l, err := c.uvarint()
		if err != nil {
			return nil, fmt.Errorf("colseg: switch summary: %w", err)
		}
		if l > maxNameLen {
			return nil, fmt.Errorf("colseg: switch summary: implausible name length %d", l)
		}
		v, err := c.bytes(int(l))
		if err != nil {
			return nil, fmt.Errorf("colseg: switch summary: %w", err)
		}
		x.switches[i] = string(v)
	}
	return x, nil
}

// parseFooterV1 decodes a version-1 footer into the index shape.
func parseFooterV1(b []byte, payloadLen int) (*segIndex, error) {
	if len(b) != footerLenV1 {
		return nil, fmt.Errorf("colseg: segment footer truncated at %d bytes", len(b))
	}
	x := &segIndex{}
	for i := range x.offs {
		x.offs[i] = int(binary.BigEndian.Uint32(b[i*4 : i*4+4]))
	}
	if err := x.checkOffsets(payloadLen); err != nil {
		return nil, err
	}
	x.crcs[0] = binary.BigEndian.Uint32(b[numColumns*4:])
	return x, nil
}

// WriterOptions tunes segmentation. The zero value takes the defaults.
type WriterOptions struct {
	// SegmentDuration is the fixed time range one segment covers.
	// Default 30 s.
	SegmentDuration time.Duration
	// MaxSegmentEvents caps a segment's event count, so a burst inside
	// one time range still yields bounded segments (several segments
	// then share the range; their min/max metadata stays correct).
	// Default 65536, clamped to the format's hard cap.
	MaxSegmentEvents int
	// FormatVersion selects the on-disk revision: 0 (default) writes
	// the current version 2 (pre-payload index with per-column CRCs,
	// value ranges, and membership summaries); 1 writes the legacy
	// post-payload footer for compatibility testing against old
	// readers.
	FormatVersion int
}

func (o WriterOptions) withDefaults() (WriterOptions, error) {
	if o.SegmentDuration <= 0 {
		o.SegmentDuration = 30 * time.Second
	}
	if o.MaxSegmentEvents <= 0 {
		o.MaxSegmentEvents = 1 << 16
	}
	if o.MaxSegmentEvents > maxSegmentEvents {
		o.MaxSegmentEvents = maxSegmentEvents
	}
	switch o.FormatVersion {
	case 0:
		o.FormatVersion = formatVersion
	case formatVersion1, formatVersion2:
	default:
		return o, fmt.Errorf("colseg: unsupported writer format version %d", o.FormatVersion)
	}
	return o, nil
}

// cursor is a bounds-checked decoder over one column block. Every read
// returns an error instead of panicking, so corrupted offsets or
// truncated varints surface as wrapped decode errors.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("colseg: truncated uvarint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("colseg: truncated varint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) byte() (byte, error) {
	if c.off >= len(c.b) {
		return 0, fmt.Errorf("colseg: truncated byte at offset %d", c.off)
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func (c *cursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.b) {
		return nil, fmt.Errorf("colseg: truncated %d-byte read at offset %d", n, c.off)
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v, nil
}
