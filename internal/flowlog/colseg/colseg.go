// Package colseg implements FDC1, the segmented columnar on-disk
// flow-log format, and the streaming reader that feeds signature builds
// without materializing the full event slice.
//
// A capture is split into segments, one per fixed time range (plus an
// event-count cap, so a burst cannot produce an unbounded segment), and
// each segment stores its events column by column:
//
//	file    := header segment* "FEND"
//	header  := "FDC1" | version u8 | ncols u8 |
//	           start i64 | end i64 | segWidth i64
//	segment := "FSEG" | minTime i64 | maxTime i64 |
//	           count u32 | payloadLen u32 |
//	           payload | footer
//	payload := column blocks, concatenated in column order
//	footer  := ncols x colOffset u32 | crc32(payload) u32
//
// Fixed-width integers are big-endian (matching FDL1). The segment
// preamble carries min/max event time so a time-range reader can prune
// a whole segment — skip its payload bytes without decoding — from 24
// bytes of metadata; the footer carries the per-column offsets into the
// payload and a CRC32 (IEEE) over it, checked before decoding.
//
// Column encodings (in payload order):
//
//	time                  delta from previous event, zigzag varint
//	type, reason, proto   run-length (uvarint run, value byte)
//	src, dst              per-segment IPv4 dictionary (first-appearance
//	                      order; 0.0.0.0 encodes the zero netip.Addr),
//	                      then one uvarint dictionary index per event
//	srcPort, dstPort,
//	inPort, outPort,
//	dpid, bytes, packets,
//	flowDuration          uvarint per event
//	switch                per-segment string dictionary + uvarint index
//
// Measured on the canonical scenario capture, FDC1 is >= 1.5x smaller
// than the row-oriented FDL1 format (see TestColumnarCompressionRatio
// and BenchmarkCompressionRatio).
package colseg

import (
	"encoding/binary"
	"fmt"
	"time"
)

const (
	fileMagic = "FDC1"
	segMagic  = "FSEG"
	endMagic  = "FEND"

	formatVersion = 1
)

// Column order inside a segment payload. numColumns is written to the
// header so a reader can reject files from a different layout revision.
const (
	columnTime = iota
	columnType
	columnReason
	columnProto
	columnSrc
	columnDst
	columnSrcPort
	columnDstPort
	columnInPort
	columnOutPort
	columnDPID
	columnBytes
	columnPackets
	columnFlowDur
	columnSwitch
	numColumns
)

// Sanity bounds: a corrupted or hostile preamble must not drive an
// allocation, so counts and lengths are capped before any make().
const (
	maxSegmentEvents = 1 << 22 // 4M events per segment
	maxPayloadLen    = 1 << 28 // 256 MiB per segment payload
	maxNameLen       = 1 << 12 // switch-name dictionary entry
)

const (
	headerLen   = 4 + 1 + 1 + 8 + 8 + 8 // magic version ncols start end width
	preambleLen = 8 + 8 + 4 + 4         // minTime maxTime count payloadLen
	footerLen   = numColumns*4 + 4      // offsets + crc32
)

// WriterOptions tunes segmentation. The zero value takes the defaults.
type WriterOptions struct {
	// SegmentDuration is the fixed time range one segment covers.
	// Default 30 s.
	SegmentDuration time.Duration
	// MaxSegmentEvents caps a segment's event count, so a burst inside
	// one time range still yields bounded segments (several segments
	// then share the range; their min/max metadata stays correct).
	// Default 65536, clamped to the format's hard cap.
	MaxSegmentEvents int
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.SegmentDuration <= 0 {
		o.SegmentDuration = 30 * time.Second
	}
	if o.MaxSegmentEvents <= 0 {
		o.MaxSegmentEvents = 1 << 16
	}
	if o.MaxSegmentEvents > maxSegmentEvents {
		o.MaxSegmentEvents = maxSegmentEvents
	}
	return o
}

// cursor is a bounds-checked decoder over one column block. Every read
// returns an error instead of panicking, so corrupted offsets or
// truncated varints surface as wrapped decode errors.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("colseg: truncated uvarint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("colseg: truncated varint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) byte() (byte, error) {
	if c.off >= len(c.b) {
		return 0, fmt.Errorf("colseg: truncated byte at offset %d", c.off)
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func (c *cursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.b) {
		return nil, fmt.Errorf("colseg: truncated %d-byte read at offset %d", n, c.off)
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v, nil
}
