package colseg

import (
	"bytes"
	"context"
	"io"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"flowdiff/internal/obs"
)

// benchQueryRead drains one query shape over a pre-encoded capture and
// reports, alongside the usual ns/op, the read engine's own accounting:
// events delivered per second and the payload bytes the query decoded
// vs skipped (scripts/bench.sh lifts these into the BENCH_<n>.json
// top-level "read" object).
func benchQueryRead(b *testing.B, raw []byte, opts ReaderOptions) {
	b.Helper()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	var events, decoded, skipped int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := obs.New()
		ctx := obs.WithRegistry(context.Background(), reg)
		r, err := NewReaderContext(ctx, bytes.NewReader(raw), opts)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			batch, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n += len(batch)
		}
		if n == 0 {
			b.Fatal("query matched no events")
		}
		events = int64(n)
		decoded = reg.Counter("colseg.bytes.decoded").Value()
		skipped = reg.Counter("colseg.bytes.skipped").Value()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(events)*float64(b.N)/sec, "events/sec")
	}
	b.ReportMetric(float64(decoded), "decoded-B")
	b.ReportMetric(float64(skipped), "skipped-B")
}

// BenchmarkQueryRead tracks the query-aware read engine across the four
// shapes that matter: the full serial scan (baseline), a projected scan
// (column skipping), an index-pruned host-pair window scan (segment
// pruning plus decode-time filtering), and the parallel full decode.
func BenchmarkQueryRead(b *testing.B) {
	l := testLog(5*time.Minute, 100_000)
	var buf bytes.Buffer
	if err := Write(&buf, l, WriterOptions{SegmentDuration: 15 * time.Second}); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()

	b.Run("full", func(b *testing.B) {
		benchQueryRead(b, raw, ReaderOptions{})
	})
	b.Run("projected", func(b *testing.B) {
		benchQueryRead(b, raw, ReaderOptions{Columns: ColTime | ColSrc | ColDst})
	})
	b.Run("pruned", func(b *testing.B) {
		benchQueryRead(b, raw, ReaderOptions{
			Filter: Filter{
				From:  1 * time.Minute,
				To:    2 * time.Minute,
				Hosts: []netip.Addr{netip.AddrFrom4([4]byte{10, 0, 1, 1}), netip.AddrFrom4([4]byte{10, 0, 2, 1})},
			},
			Columns: ColTime | ColSrc | ColDst,
		})
	})
	b.Run("parallel", func(b *testing.B) {
		// The readahead clamps to GOMAXPROCS; widen it so the pipeline
		// actually engages on narrow CI machines.
		old := runtime.GOMAXPROCS(8)
		defer runtime.GOMAXPROCS(old)
		benchQueryRead(b, raw, ReaderOptions{Parallelism: 4})
	})
}
