package colseg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// ColumnInfo is one column's per-segment index entry: its encoded block
// size and, on version-2 segments, its value range (dictionary columns
// report their cardinality in both fields).
type ColumnInfo struct {
	Name string
	Size int
	// Min/Max are meaningful only when the segment HasStats (version 2).
	Min, Max uint64
}

// SegmentInfo is one segment's metadata as the pruning logic sees it —
// everything here is read without decoding a single payload byte.
type SegmentInfo struct {
	MinTime, MaxTime time.Duration
	Events           int
	PayloadLen       int
	// IndexLen is the version-2 index size; 0 on version-1 segments
	// (their footer is the fixed footerLenV1).
	IndexLen int
	Columns  []ColumnInfo
	// HasStats reports whether per-column value ranges and membership
	// summaries exist (version 2 only).
	HasStats bool
	// Hosts / Switches are the membership-summary cardinalities; -1 when
	// the summary overflowed (membership pruning disabled) or the
	// segment is version 1 (no summaries).
	Hosts, Switches int
}

// FileInfo is the metadata of a whole FDC1 file.
type FileInfo struct {
	Version         int
	NumColumns      int
	Start, End      time.Duration
	SegmentDuration time.Duration
	Segments        []SegmentInfo
	// Events and PayloadLen aggregate over all segments.
	Events     int
	PayloadLen int
}

// Inspect scans an FDC1 stream's metadata — header, segment preambles,
// and indexes/footers — without decoding any payload. It is the
// debugging surface for pruning decisions: what Inspect reports is
// exactly what the reader's segment pruning gets to look at.
func Inspect(r io.Reader) (*FileInfo, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("colseg: reading header: %w", err)
	}
	if string(hdr[0:4]) != fileMagic {
		return nil, fmt.Errorf("colseg: bad magic %q", hdr[0:4])
	}
	if hdr[4] != formatVersion1 && hdr[4] != formatVersion2 {
		return nil, fmt.Errorf("colseg: unsupported version %d", hdr[4])
	}
	if hdr[5] != numColumns {
		return nil, fmt.Errorf("colseg: unexpected column count %d (want %d)", hdr[5], numColumns)
	}
	info := &FileInfo{
		Version:         int(hdr[4]),
		NumColumns:      numColumns,
		Start:           time.Duration(binary.BigEndian.Uint64(hdr[6:14])),
		End:             time.Duration(binary.BigEndian.Uint64(hdr[14:22])),
		SegmentDuration: time.Duration(binary.BigEndian.Uint64(hdr[22:30])),
	}

	for {
		var tag [4]byte
		if _, err := io.ReadFull(br, tag[:]); err != nil {
			return nil, fmt.Errorf("colseg: reading segment tag: %w", err)
		}
		switch string(tag[:]) {
		case endMagic:
			return info, nil
		case segMagic:
		default:
			return nil, fmt.Errorf("colseg: bad segment tag %q", tag[:])
		}

		preLen := preambleLenV1
		if info.Version == formatVersion2 {
			preLen = preambleLenV2
		}
		var pre [preambleLenV2]byte
		if _, err := io.ReadFull(br, pre[:preLen]); err != nil {
			return nil, fmt.Errorf("colseg: reading segment preamble: %w", err)
		}
		seg := SegmentInfo{
			MinTime:    time.Duration(binary.BigEndian.Uint64(pre[0:8])),
			MaxTime:    time.Duration(binary.BigEndian.Uint64(pre[8:16])),
			Events:     int(binary.BigEndian.Uint32(pre[16:20])),
			PayloadLen: int(binary.BigEndian.Uint32(pre[20:24])),
			Hosts:      -1,
			Switches:   -1,
		}
		if seg.Events == 0 || seg.Events > maxSegmentEvents {
			return nil, fmt.Errorf("colseg: implausible segment event count %d", seg.Events)
		}
		if seg.PayloadLen > maxPayloadLen {
			return nil, fmt.Errorf("colseg: implausible segment payload length %d", seg.PayloadLen)
		}

		var x *segIndex
		if info.Version == formatVersion2 {
			indexLen := binary.BigEndian.Uint32(pre[24:28])
			if indexLen > maxIndexLen {
				return nil, fmt.Errorf("colseg: implausible segment index length %d", indexLen)
			}
			seg.IndexLen = int(indexLen)
			idx := make([]byte, indexLen)
			if _, err := io.ReadFull(br, idx); err != nil {
				return nil, fmt.Errorf("colseg: reading segment index: %w", err)
			}
			var err error
			if x, err = parseIndexV2(idx, seg.PayloadLen); err != nil {
				return nil, err
			}
			if _, err := br.Discard(seg.PayloadLen); err != nil {
				return nil, fmt.Errorf("colseg: skipping segment payload: %w", err)
			}
			seg.HasStats = true
			if x.hostsExact {
				seg.Hosts = len(x.hosts)
			}
			if x.switchesExact {
				seg.Switches = len(x.switches)
			}
		} else {
			// Version 1: the offsets live in the footer after the payload,
			// so skip the payload first, then read the footer.
			if _, err := br.Discard(seg.PayloadLen); err != nil {
				return nil, fmt.Errorf("colseg: skipping segment payload: %w", err)
			}
			var footer [footerLenV1]byte
			if _, err := io.ReadFull(br, footer[:]); err != nil {
				return nil, fmt.Errorf("colseg: reading segment footer: %w", err)
			}
			var err error
			if x, err = parseFooterV1(footer[:], seg.PayloadLen); err != nil {
				return nil, err
			}
		}

		seg.Columns = make([]ColumnInfo, numColumns)
		for c := 0; c < numColumns; c++ {
			seg.Columns[c] = ColumnInfo{
				Name: columnNames[c],
				Size: x.blockLen(c, seg.PayloadLen),
			}
			if seg.HasStats {
				seg.Columns[c].Min = x.stats[c][0]
				seg.Columns[c].Max = x.stats[c][1]
			}
		}
		info.Events += seg.Events
		info.PayloadLen += seg.PayloadLen
		info.Segments = append(info.Segments, seg)
	}
}
