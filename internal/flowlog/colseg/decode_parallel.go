package colseg

import (
	"flowdiff/internal/flowlog"
	"flowdiff/internal/parallel"
)

// decodeSlot is one readahead position: the segment metadata and raw
// column blocks loaded by the reading goroutine, and the decode outputs
// produced by a worker. Slabs and scratch persist across rounds, so
// steady-state decode allocates nothing — peak heap is bounded by the
// slot count times the widest segment.
type decodeSlot struct {
	meta     segMeta
	blocks   [numColumns][]byte
	slab     []byte
	sc       decodeScratch
	evs      []flowlog.Event
	filtered int
	err      error
}

// pipeline is the bounded-readahead parallel decode: the reader's own
// goroutine fills slots in file order (IO stays sequential — pruning,
// projection Discards, and CRC-verified block loads all happen there),
// a parallel.ForContext pool decodes the filled slots concurrently, and
// slots are served strictly in slot order. Output is therefore
// byte-identical to the serial reader at every worker count; the only
// divergence is that workers skip the cross-segment switch-name
// interning map (per-segment strings are value-equal).
type pipeline struct {
	workers int
	slots   []*decodeSlot
	next    int // next slot to serve
	n       int // slots filled this round
	// err is a stream-side (tag/preamble/index/load) error hit while
	// refilling; it surfaces only after the slots filled before it have
	// been served, matching the serial reader's error position.
	err error
}

// newPipeline sizes the readahead at twice the clamped worker count, or
// reports (nil) that the serial path should run.
func newPipeline(requested int) *pipeline {
	if requested <= 1 {
		return nil
	}
	workers := parallel.Clamp(requested)
	if workers <= 1 {
		return nil
	}
	slots := make([]*decodeSlot, 2*workers)
	for i := range slots {
		slots[i] = &decodeSlot{}
	}
	return &pipeline{workers: workers, slots: slots}
}

// refill loads the next run of undecoded segments into the slots (in
// file order, pruning as it goes) and decodes them concurrently. On
// cancellation the pool drains and the ctx error is returned; slot
// outputs are then discarded by the terminal-error contract in Next.
func (r *Reader) refill() error {
	p := r.par
	p.next, p.n = 0, 0
	for p.n < len(p.slots) {
		meta, done, err := r.readMeta()
		if err != nil {
			p.err = err
			break
		}
		if done {
			r.srcDone = true
			break
		}
		if pruned, byIndex := r.prune(&meta); pruned {
			if err := r.skipSegment(&meta, byIndex); err != nil {
				p.err = err
				break
			}
			continue
		}
		s := p.slots[p.n]
		s.meta = meta
		if s.slab, err = r.loadBlocks(&s.meta, &s.blocks, s.slab); err != nil {
			p.err = err
			break
		}
		p.n++
	}
	r.m.occupancy.Set(int64(p.n))
	if p.n == 0 {
		return nil
	}
	sp := r.reg.Span("colseg.decode")
	err := parallel.ForContext(r.ctx, p.n, p.workers, func(i int) {
		s := p.slots[i]
		s.evs, s.filtered, s.err = decodeBlocks(&s.blocks, s.meta.count, r.spec, nil, &s.sc)
	})
	sp.End()
	return err
}

// nextSegmentParallel serves the next decoded slot in file order,
// refilling the pipeline when the current round is drained. Counters
// for decoded segments/events are bumped at delivery, so their values
// are identical to the serial reader's whatever the worker count.
func (r *Reader) nextSegmentParallel() error {
	p := r.par
	for p.next >= p.n {
		if p.err != nil {
			return p.err
		}
		if r.srcDone {
			r.done = true
			r.seg, r.pos = nil, 0
			return nil
		}
		if err := r.refill(); err != nil {
			return err
		}
	}
	s := p.slots[p.next]
	p.next++
	if s.err != nil {
		return s.err
	}
	r.m.segsRead.Inc()
	r.m.evsDecoded.Add(int64(len(s.evs)))
	r.m.evsFiltered.Add(int64(s.filtered))
	r.seg, r.pos = s.evs, 0
	return nil
}
