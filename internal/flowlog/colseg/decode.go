package colseg

import (
	"fmt"
	"net/netip"
	"time"

	"flowdiff/internal/flowlog"
)

// querySpec is a Filter + projection compiled for decode: the
// membership sets as hash lookups and the effective column sets. proj
// is what the caller asked to see; need additionally includes the
// columns the filter must decode to evaluate membership (those are
// decoded but, unless projected, never written to the output events).
type querySpec struct {
	f       Filter
	proj    ColumnSet
	need    ColumnSet
	hostSet map[[4]byte]bool
	swSet   map[string]bool
}

func newQuerySpec(f Filter, cols ColumnSet) *querySpec {
	s := &querySpec{f: f, proj: cols.normalized()}
	s.need = s.proj | f.columns()
	if len(f.Hosts) > 0 {
		s.hostSet = make(map[[4]byte]bool, len(f.Hosts))
		for _, a := range f.Hosts {
			if a.Is4() {
				s.hostSet[a.As4()] = true
			}
			// Non-IPv4 addresses can never match the IPv4-only format;
			// they still keep the filter active, so nothing matches them.
		}
	}
	if len(f.Switches) > 0 {
		s.swSet = make(map[string]bool, len(f.Switches))
		for _, name := range f.Switches {
			s.swSet[name] = true
		}
	}
	return s
}

// grow returns buf resized to n elements, reallocating only when the
// capacity is short. Contents are unspecified; callers overwrite every
// element.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// decodeScratch holds the per-decode working set so repeated segment
// decodes (and parallel pipeline slots) reuse buffers instead of
// reallocating them: peak heap is bounded by the widest segment seen.
type decodeScratch struct {
	times   []int64
	keep    []bool
	srcIDs  []uint32
	dstIDs  []uint32
	swIDs   []uint32
	srcDict []netip.Addr
	dstDict []netip.Addr
	swDict  []string
	evs     []flowlog.Event
}

// decodeAddrBlock decodes one address column into its dictionary and
// the per-event dictionary indexes, reusing the caller's buffers.
func decodeAddrBlock(block []byte, count int, name string, dictBuf *[]netip.Addr, idsBuf *[]uint32) ([]netip.Addr, []uint32, error) {
	c := cursor{b: block}
	n, err := c.uvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("colseg: %s column: %w", name, err)
	}
	if n > uint64(count) {
		return nil, nil, fmt.Errorf("colseg: %s column: implausible dictionary size %d", name, n)
	}
	dict := grow(*dictBuf, int(n))
	*dictBuf = dict
	for i := range dict {
		b, err := c.bytes(4)
		if err != nil {
			return nil, nil, fmt.Errorf("colseg: %s column: %w", name, err)
		}
		if a4 := [4]byte(b); a4 != ([4]byte{}) {
			dict[i] = netip.AddrFrom4(a4)
		} else {
			dict[i] = netip.Addr{}
		}
	}
	ids := grow(*idsBuf, count)
	*idsBuf = ids
	for i := range ids {
		id, err := c.uvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("colseg: %s column: %w", name, err)
		}
		if id >= uint64(len(dict)) {
			return nil, nil, fmt.Errorf("colseg: %s column: dictionary index %d out of range", name, id)
		}
		ids[i] = uint32(id)
	}
	return dict, ids, nil
}

// decodeSwitchBlock decodes the switch column into its name dictionary
// and the per-event indexes. names, when non-nil, interns dictionary
// entries across segments (the serial reader's cross-segment cache;
// parallel decodes pass nil and intern per segment only).
func decodeSwitchBlock(block []byte, count int, names map[string]string, dictBuf *[]string, idsBuf *[]uint32) ([]string, []uint32, error) {
	c := cursor{b: block}
	n, err := c.uvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("colseg: switch column: %w", err)
	}
	if n > uint64(count) {
		return nil, nil, fmt.Errorf("colseg: switch column: implausible dictionary size %d", n)
	}
	dict := grow(*dictBuf, int(n))
	*dictBuf = dict
	for i := range dict {
		l, err := c.uvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("colseg: switch column: %w", err)
		}
		if l > maxNameLen {
			return nil, nil, fmt.Errorf("colseg: switch column: implausible name length %d", l)
		}
		b, err := c.bytes(int(l))
		if err != nil {
			return nil, nil, fmt.Errorf("colseg: switch column: %w", err)
		}
		if names != nil {
			name, ok := names[string(b)]
			if !ok {
				name = string(b)
				names[name] = name
			}
			dict[i] = name
		} else {
			dict[i] = string(b)
		}
	}
	ids := grow(*idsBuf, count)
	*idsBuf = ids
	for i := range ids {
		id, err := c.uvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("colseg: switch column: %w", err)
		}
		if id >= uint64(len(dict)) {
			return nil, nil, fmt.Errorf("colseg: switch column: dictionary index %d out of range", id)
		}
		ids[i] = uint32(id)
	}
	return dict, ids, nil
}

// decodeBlocks decodes one segment's needed column blocks into events,
// applying the query at decode time: out-of-window or non-member events
// are never materialized (the returned slice holds exactly the kept
// rows), and unprojected columns are never decoded. The returned slice
// aliases sc.evs and is valid until the next decode into the same
// scratch. filtered is the count of events dropped by the per-event
// filter.
func decodeBlocks(blocks *[numColumns][]byte, count int, spec *querySpec, names map[string]string, sc *decodeScratch) (evs []flowlog.Event, filtered int, err error) {
	// Pass 1: the time column (always decoded — time orders the batch
	// and drives windowed filtering).
	times := grow(sc.times, count)
	sc.times = times
	c := cursor{b: blocks[columnTime]}
	prev := int64(0)
	for i := range times {
		d, err := c.varint()
		if err != nil {
			return nil, 0, fmt.Errorf("colseg: time column: %w", err)
		}
		prev += d
		times[i] = prev
	}

	// Pass 2: the keep mask, refined by each active filter dimension.
	kept := count
	var keep []bool
	ensureKeep := func() {
		if keep == nil {
			keep = grow(sc.keep, count)
			sc.keep = keep
			for i := range keep {
				keep[i] = true
			}
		}
	}
	if spec.f.timeActive() {
		ensureKeep()
		from, to := int64(spec.f.From), int64(spec.f.To)
		for i, t := range times {
			if keep[i] && (t < from || t >= to) {
				keep[i] = false
				kept--
			}
		}
	}

	var (
		srcDict, dstDict []netip.Addr
		srcIDs, dstIDs   []uint32
		swDict           []string
		swIDs            []uint32
	)
	if spec.need.has(columnSrc) {
		srcDict, srcIDs, err = decodeAddrBlock(blocks[columnSrc], count, "src", &sc.srcDict, &sc.srcIDs)
		if err != nil {
			return nil, 0, err
		}
	}
	if spec.need.has(columnDst) {
		dstDict, dstIDs, err = decodeAddrBlock(blocks[columnDst], count, "dst", &sc.dstDict, &sc.dstIDs)
		if err != nil {
			return nil, 0, err
		}
	}
	if spec.need.has(columnSwitch) {
		swDict, swIDs, err = decodeSwitchBlock(blocks[columnSwitch], count, names, &sc.swDict, &sc.swIDs)
		if err != nil {
			return nil, 0, err
		}
	}
	if len(spec.hostSet) > 0 {
		ensureKeep()
		// Membership is resolved once per dictionary entry, then applied
		// per event as two slice lookups.
		srcMatch := make([]bool, len(srcDict))
		for j, a := range srcDict {
			srcMatch[j] = a.IsValid() && spec.hostSet[a.As4()]
		}
		dstMatch := make([]bool, len(dstDict))
		for j, a := range dstDict {
			dstMatch[j] = a.IsValid() && spec.hostSet[a.As4()]
		}
		for i := 0; i < count; i++ {
			if keep[i] && !srcMatch[srcIDs[i]] && !dstMatch[dstIDs[i]] {
				keep[i] = false
				kept--
			}
		}
	}
	if len(spec.swSet) > 0 {
		ensureKeep()
		swMatch := make([]bool, len(swDict))
		for j, name := range swDict {
			swMatch[j] = spec.swSet[name]
		}
		for i := 0; i < count; i++ {
			if keep[i] && !swMatch[swIDs[i]] {
				keep[i] = false
				kept--
			}
		}
	}

	// Pass 3: materialize exactly the kept rows. The scratch slice is
	// reused across segments, so reset every row to zero — unprojected
	// fields must read as the zero value, not a stale one.
	evs = grow(sc.evs, kept)
	sc.evs = evs
	for i := range evs {
		evs[i] = flowlog.Event{}
	}
	j := 0
	for i := 0; i < count; i++ {
		if keep != nil && !keep[i] {
			continue
		}
		evs[j].Time = time.Duration(times[i])
		if spec.proj.has(columnSrc) {
			evs[j].Flow.Src = srcDict[srcIDs[i]]
		}
		if spec.proj.has(columnDst) {
			evs[j].Flow.Dst = dstDict[dstIDs[i]]
		}
		if spec.proj.has(columnSwitch) {
			evs[j].Switch = swDict[swIDs[i]]
		}
		j++
	}

	rle := func(col int, name string, set func(*flowlog.Event, byte)) error {
		c := cursor{b: blocks[col]}
		j := 0
		for i := 0; i < count; {
			run, err := c.uvarint()
			if err != nil {
				return fmt.Errorf("colseg: %s column: %w", name, err)
			}
			v, err := c.byte()
			if err != nil {
				return fmt.Errorf("colseg: %s column: %w", name, err)
			}
			if run == 0 || run > uint64(count-i) {
				return fmt.Errorf("colseg: %s column: implausible run length %d", name, run)
			}
			for k := 0; k < int(run); k++ {
				if keep == nil || keep[i+k] {
					set(&evs[j], v)
					j++
				}
			}
			i += int(run)
		}
		return nil
	}
	if spec.proj.has(columnType) {
		if err := rle(columnType, "type", func(e *flowlog.Event, v byte) { e.Type = flowlog.EventType(v) }); err != nil {
			return nil, 0, err
		}
	}
	if spec.proj.has(columnReason) {
		if err := rle(columnReason, "reason", func(e *flowlog.Event, v byte) { e.Reason = v }); err != nil {
			return nil, 0, err
		}
	}
	if spec.proj.has(columnProto) {
		if err := rle(columnProto, "proto", func(e *flowlog.Event, v byte) { e.Flow.Proto = v }); err != nil {
			return nil, 0, err
		}
	}

	uvar := func(col int, name string, set func(*flowlog.Event, uint64)) error {
		c := cursor{b: blocks[col]}
		j := 0
		for i := 0; i < count; i++ {
			v, err := c.uvarint()
			if err != nil {
				return fmt.Errorf("colseg: %s column: %w", name, err)
			}
			if keep == nil || keep[i] {
				set(&evs[j], v)
				j++
			}
		}
		return nil
	}
	if spec.proj.has(columnSrcPort) {
		if err := uvar(columnSrcPort, "srcPort", func(e *flowlog.Event, v uint64) { e.Flow.SrcPort = uint16(v) }); err != nil {
			return nil, 0, err
		}
	}
	if spec.proj.has(columnDstPort) {
		if err := uvar(columnDstPort, "dstPort", func(e *flowlog.Event, v uint64) { e.Flow.DstPort = uint16(v) }); err != nil {
			return nil, 0, err
		}
	}
	if spec.proj.has(columnInPort) {
		if err := uvar(columnInPort, "inPort", func(e *flowlog.Event, v uint64) { e.InPort = uint16(v) }); err != nil {
			return nil, 0, err
		}
	}
	if spec.proj.has(columnOutPort) {
		if err := uvar(columnOutPort, "outPort", func(e *flowlog.Event, v uint64) { e.OutPort = uint16(v) }); err != nil {
			return nil, 0, err
		}
	}
	if spec.proj.has(columnDPID) {
		if err := uvar(columnDPID, "dpid", func(e *flowlog.Event, v uint64) { e.DPID = v }); err != nil {
			return nil, 0, err
		}
	}
	if spec.proj.has(columnBytes) {
		if err := uvar(columnBytes, "bytes", func(e *flowlog.Event, v uint64) { e.Bytes = v }); err != nil {
			return nil, 0, err
		}
	}
	if spec.proj.has(columnPackets) {
		if err := uvar(columnPackets, "packets", func(e *flowlog.Event, v uint64) { e.Packets = v }); err != nil {
			return nil, 0, err
		}
	}
	if spec.proj.has(columnFlowDur) {
		if err := uvar(columnFlowDur, "flowDuration", func(e *flowlog.Event, v uint64) { e.FlowDuration = time.Duration(v) }); err != nil {
			return nil, 0, err
		}
	}

	return evs, count - kept, nil
}
