package colseg

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"flowdiff/internal/flowlog"
	"flowdiff/internal/obs"
)

func testKey(g, role byte, port uint16) flowlog.FlowKey {
	return flowlog.FlowKey{
		Proto:   6,
		Src:     netip.AddrFrom4([4]byte{10, g, role, 1}),
		Dst:     netip.AddrFrom4([4]byte{10, g, role + 1, 1}),
		SrcPort: port,
		DstPort: 80,
	}
}

// testLog synthesizes a representative capture over [0, dur]: a few
// application groups exchanging flows through a handful of switches,
// with per-flow PacketIn/FlowMod/FlowRemoved plus occasional PortStatus
// events carrying a zero flow key and an empty switch name.
func testLog(dur time.Duration, nEvents int) *flowlog.Log {
	l := flowlog.New(0, dur)
	reqs := nEvents / 10
	if reqs < 1 {
		reqs = 1
	}
	step := dur / time.Duration(reqs+1)
	for i := 0; i < reqs; i++ {
		t0 := time.Duration(i+1) * step
		g := byte(i % 4)
		k := testKey(g, 1, uint16(1024+i%5000))
		sw1, sw2 := fmt.Sprintf("sw%d-1", g), fmt.Sprintf("sw%d-2", g)
		l.Append(flowlog.Event{Time: t0, Type: flowlog.EventPacketIn, Switch: sw1, DPID: uint64(g), Flow: k, InPort: 1})
		l.Append(flowlog.Event{Time: t0 + time.Millisecond, Type: flowlog.EventFlowMod, Switch: sw1, DPID: uint64(g), Flow: k, OutPort: 2})
		l.Append(flowlog.Event{Time: t0 + 2*time.Millisecond, Type: flowlog.EventPacketIn, Switch: sw2, DPID: uint64(g) + 10, Flow: k, InPort: 3})
		l.Append(flowlog.Event{Time: t0 + 3*time.Millisecond, Type: flowlog.EventFlowMod, Switch: sw2, DPID: uint64(g) + 10, Flow: k, OutPort: 4})
		l.Append(flowlog.Event{Time: t0 + 400*time.Millisecond, Type: flowlog.EventFlowRemoved, Switch: sw1, DPID: uint64(g), Flow: k,
			Bytes: 30000 + uint64(i), Packets: 40, FlowDuration: 300 * time.Millisecond, Reason: 1})
		if i%7 == 0 {
			// Port status with a zero flow key and an empty switch name.
			l.Append(flowlog.Event{Time: t0 + 5*time.Millisecond, Type: flowlog.EventPortStatus, Reason: 2, InPort: 9})
		}
	}
	l.Sort()
	return l
}

func encode(t testing.TB, l *flowlog.Log, opts WriterOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, l, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	l := testLog(2*time.Minute, 2000)
	raw := encode(t, l, WriterOptions{})
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("round trip mismatch: got %d events, want %d", len(got.Events), len(l.Events))
	}
}

func TestRoundTripSegmentCuts(t *testing.T) {
	// Tiny segments: both the time boundary and the event cap must cut.
	l := testLog(2*time.Minute, 2000)
	for _, opts := range []WriterOptions{
		{SegmentDuration: time.Second},
		{MaxSegmentEvents: 7},
		{SegmentDuration: 5 * time.Second, MaxSegmentEvents: 33},
	} {
		got, err := Read(bytes.NewReader(encode(t, l, opts)))
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !reflect.DeepEqual(got, l) {
			t.Fatalf("%+v: round trip mismatch", opts)
		}
	}
}

func TestRoundTripUnsortedLogIsSorted(t *testing.T) {
	l := flowlog.New(0, time.Minute)
	l.Append(flowlog.Event{Time: 30 * time.Second, Type: flowlog.EventPacketIn, Switch: "b", Flow: testKey(1, 1, 10)})
	l.Append(flowlog.Event{Time: 10 * time.Second, Type: flowlog.EventPacketIn, Switch: "a", Flow: testKey(2, 1, 11)})
	l.Append(flowlog.Event{Time: 10 * time.Second, Type: flowlog.EventFlowMod, Switch: "a", Flow: testKey(2, 1, 11)})
	raw := encode(t, l, WriterOptions{})

	want := &flowlog.Log{Start: l.Start, End: l.End, Events: append([]flowlog.Event(nil), l.Events...)}
	want.Sort()
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v\nwant sorted %+v", got.Events, want.Events)
	}
	// The original log was left untouched (Write sorts a copy).
	if l.Events[0].Time != 30*time.Second {
		t.Error("Write mutated the caller's event order")
	}
}

func TestRoundTripEmptyLog(t *testing.T) {
	l := flowlog.New(3*time.Second, 9*time.Second)
	got, err := Read(bytes.NewReader(encode(t, l, WriterOptions{})))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("got %+v, want %+v", got, l)
	}
}

func TestWriterRejectsOutOfOrderAppend(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0, time.Minute, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(flowlog.Event{Time: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(flowlog.Event{Time: 2 * time.Second}); err == nil {
		t.Error("want error for out-of-order append")
	}
}

func TestTimeRangeReadPrunesSegments(t *testing.T) {
	l := testLog(2*time.Minute, 3000)
	raw := encode(t, l, WriterOptions{SegmentDuration: 10 * time.Second})

	reg := obs.New()
	ctx := obs.WithRegistry(context.Background(), reg)
	from, to := 40*time.Second, 60*time.Second
	r, err := NewReaderContext(ctx, bytes.NewReader(raw), ReaderOptions{Filter: Filter{From: from, To: to}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := l.Window(from, to)
	if got.Start != want.Start || got.End != want.End || len(got.Events) != len(want.Events) {
		t.Fatalf("window decode: %d events over [%v,%v), want %d over [%v,%v)",
			len(got.Events), got.Start, got.End, len(want.Events), want.Start, want.End)
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got.Events[i], want.Events[i])
		}
	}

	read := reg.Counter("colseg.segments.read").Value()
	pruned := reg.Counter("colseg.segments.pruned").Value()
	if pruned == 0 {
		t.Error("no segments pruned for a 20s window over a 2m log")
	}
	// A 20 s window over 10 s segments decodes at most 3 segments
	// (boundary overlap); everything else must be pruned from metadata.
	if read > 3 {
		t.Errorf("decoded %d segments for a 20s window over 10s segments, want <= 3", read)
	}
	if decoded := reg.Counter("colseg.events.decoded").Value(); decoded >= int64(len(l.Events)) {
		t.Errorf("decoded %d of %d events: pruning decoded the whole log", decoded, len(l.Events))
	}
}

func TestReaderBatchSizes(t *testing.T) {
	l := testLog(time.Minute, 1200)
	raw := encode(t, l, WriterOptions{SegmentDuration: 7 * time.Second})
	for _, bs := range []int{1, 7, 100, 8192} {
		r, err := NewReader(bytes.NewReader(raw), ReaderOptions{BatchSize: bs})
		if err != nil {
			t.Fatal(err)
		}
		var all []flowlog.Event
		for {
			batch, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("batch=%d: %v", bs, err)
			}
			if len(batch) == 0 || len(batch) > bs {
				t.Fatalf("batch=%d: got a batch of %d", bs, len(batch))
			}
			all = append(all, batch...)
		}
		if !reflect.DeepEqual(all, l.Events) {
			t.Fatalf("batch=%d: concatenated batches diverge from the log", bs)
		}
		// Terminal io.EOF is sticky.
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("batch=%d: post-EOF Next = %v", bs, err)
		}
	}
}

// Corruption must surface as a wrapped error from every entry point —
// never a panic, never an allocation driven by a hostile length field.
func TestReaderCorruption(t *testing.T) {
	l := testLog(time.Minute, 600)
	raw := encode(t, l, WriterOptions{SegmentDuration: 10 * time.Second})

	segStart := headerLen // first segment tag offset
	mutants := map[string]func([]byte) []byte{
		"empty":            func(b []byte) []byte { return nil },
		"bad file magic":   func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":      func(b []byte) []byte { b[4] = 99; return b },
		"bad column count": func(b []byte) []byte { b[5] = numColumns + 3; return b },
		"truncated header": func(b []byte) []byte { return b[:headerLen-5] },
		"bad segment tag":  func(b []byte) []byte { b[segStart] = 'Q'; return b },
		"truncated preamble": func(b []byte) []byte {
			return b[:segStart+4+preambleLenV2-2]
		},
		"truncated index": func(b []byte) []byte {
			return b[:segStart+4+preambleLenV2+10]
		},
		"zero event count": func(b []byte) []byte {
			b[segStart+4+16] = 0
			b[segStart+4+17] = 0
			b[segStart+4+18] = 0
			b[segStart+4+19] = 0
			return b
		},
		"implausible event count": func(b []byte) []byte {
			b[segStart+4+16] = 0xff
			b[segStart+4+17] = 0xff
			b[segStart+4+18] = 0xff
			b[segStart+4+19] = 0xff
			return b
		},
		"implausible payload length": func(b []byte) []byte {
			b[segStart+4+20] = 0xff
			b[segStart+4+21] = 0xff
			b[segStart+4+22] = 0xff
			b[segStart+4+23] = 0xff
			return b
		},
		"implausible index length": func(b []byte) []byte {
			b[segStart+4+24] = 0xff
			b[segStart+4+25] = 0xff
			b[segStart+4+26] = 0xff
			b[segStart+4+27] = 0xff
			return b
		},
		"payload bit flip fails CRC": func(b []byte) []byte {
			idxLen := int(uint32(b[segStart+4+24])<<24 | uint32(b[segStart+4+25])<<16 |
				uint32(b[segStart+4+26])<<8 | uint32(b[segStart+4+27]))
			b[segStart+4+preambleLenV2+idxLen+5] ^= 0x40
			return b
		},
		"index bit flip fails offset or CRC check": func(b []byte) []byte {
			b[segStart+4+preambleLenV2+2] ^= 0x40
			return b
		},
		"missing end marker": func(b []byte) []byte {
			return b[:len(b)-4]
		},
	}
	for name, mutate := range mutants {
		t.Run(name, func(t *testing.T) {
			b := mutate(append([]byte(nil), raw...))
			if _, err := Read(bytes.NewReader(b)); err == nil {
				t.Errorf("%s: decode succeeded on corrupted input", name)
			}
		})
	}
}

func TestReaderCorruptOffsetsAndDict(t *testing.T) {
	// Rebuild a one-segment legacy (version-1) file and corrupt footer
	// offsets / dictionary indexes directly: the bounds-checked cursor
	// must error, not panic.
	l := testLog(time.Second, 40)
	raw := encode(t, l, WriterOptions{FormatVersion: 1})
	// footer offsets start at: header + tag + preamble + payloadLen
	pre := headerLen + 4
	payloadLen := int(uint32(raw[pre+20])<<24 | uint32(raw[pre+21])<<16 | uint32(raw[pre+22])<<8 | uint32(raw[pre+23]))
	footer := pre + preambleLenV1 + payloadLen
	corrupt := append([]byte(nil), raw...)
	// Out-of-range first offset (but keep CRC valid: offsets are outside
	// the checksummed payload).
	corrupt[footer] = 0xff
	corrupt[footer+1] = 0xff
	corrupt[footer+2] = 0xff
	corrupt[footer+3] = 0xff
	if _, err := Read(bytes.NewReader(corrupt)); err == nil {
		t.Error("decode succeeded with a corrupt offset table")
	}

	// Decreasing offsets.
	corrupt = append([]byte(nil), raw...)
	copy(corrupt[footer+4:footer+8], []byte{0, 0, 0, 0})
	corrupt[footer+4+4] = 0 // third offset smaller than second is fine; force second < first instead
	if _, err := Read(bytes.NewReader(corrupt)); err == nil {
		// The first offset is 0, so zeroing the second can be a no-op;
		// only fail the test when the mutation really reordered offsets.
		t.Log("offset mutation was a no-op; covered by the out-of-range case")
	}
}

func FuzzReadSegment(f *testing.F) {
	l := testLog(30*time.Second, 200)
	valid := encode(f, l, WriterOptions{SegmentDuration: 5 * time.Second})
	f.Add(valid)
	f.Add(valid[:len(valid)-9])
	f.Add(valid[:headerLen+2])
	f.Add([]byte("FDC1"))
	flipped := append([]byte(nil), valid...)
	flipped[headerLen+4+preambleLenV2+3] ^= 0x10
	f.Add(flipped)
	counted := append([]byte(nil), valid...)
	counted[headerLen+4+16] = 0xff
	f.Add(counted)
	// Legacy layout seeds: a valid version-1 file and a bit-flipped one.
	validV1 := encode(f, l, WriterOptions{SegmentDuration: 5 * time.Second, FormatVersion: 1})
	f.Add(validV1)
	flippedV1 := append([]byte(nil), validV1...)
	flippedV1[headerLen+4+preambleLenV1+3] ^= 0x10
	f.Add(flippedV1)
	// Mixed-version mutants: a v2 body under a v1 header byte and vice
	// versa — the reader must fail with a wrapped error, not misparse.
	crossA := append([]byte(nil), valid...)
	crossA[4] = formatVersion1
	f.Add(crossA)
	crossB := append([]byte(nil), validV1...)
	crossB[4] = formatVersion2
	f.Add(crossB)
	// A future revision must be rejected from the header.
	future := append([]byte(nil), valid...)
	future[4] = formatVersion2 + 1
	f.Add(future)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), ReaderOptions{})
		if err != nil {
			return
		}
		for {
			if _, err := r.Next(); err != nil {
				break // io.EOF or a decode error; both are fine, panics are not
			}
		}
	})
}

func TestColumnarCompressionRatio(t *testing.T) {
	l := testLog(5*time.Minute, 50_000)
	var fdc, fdl, js bytes.Buffer
	if err := Write(&fdc, l, WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteBinary(&fdl); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	ratio := float64(fdl.Len()) / float64(fdc.Len())
	t.Logf("sizes: FDC1=%d FDL1=%d JSON=%d (FDC1 is %.2fx smaller than FDL1, %.2fx than JSON)",
		fdc.Len(), fdl.Len(), js.Len(), ratio, float64(js.Len())/float64(fdc.Len()))
	if ratio < 1.5 {
		t.Errorf("FDC1/FDL1 compression ratio %.2f < 1.5", ratio)
	}
}

func BenchmarkWriteColumnar(b *testing.B) {
	l := testLog(5*time.Minute, 100_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, l, WriterOptions{}); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkReadColumnar(b *testing.B) {
	l := testLog(5*time.Minute, 100_000)
	var buf bytes.Buffer
	if err := Write(&buf, l, WriterOptions{}); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(raw), ReaderOptions{})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			batch, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n += len(batch)
		}
		if n != len(l.Events) {
			b.Fatalf("decoded %d events, want %d", n, len(l.Events))
		}
	}
}

// BenchmarkCompressionRatio reports the on-disk size of the three
// serializations as benchmark metrics (bytes per event and the
// FDC1-vs-FDL1 / FDC1-vs-JSON ratios land in BENCH_<n>.json).
func BenchmarkCompressionRatio(b *testing.B) {
	l := testLog(5*time.Minute, 100_000)
	var fdc, fdl, js bytes.Buffer
	for i := 0; i < b.N; i++ {
		fdc.Reset()
		fdl.Reset()
		js.Reset()
		if err := Write(&fdc, l, WriterOptions{}); err != nil {
			b.Fatal(err)
		}
		if err := l.WriteBinary(&fdl); err != nil {
			b.Fatal(err)
		}
		if err := l.WriteJSON(&js); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fdc.Len())/float64(len(l.Events)), "fdc1-bytes/event")
	b.ReportMetric(float64(fdl.Len())/float64(fdc.Len()), "fdl1/fdc1-ratio")
	b.ReportMetric(float64(js.Len())/float64(fdc.Len()), "json/fdc1-ratio")
}
