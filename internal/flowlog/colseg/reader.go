package colseg

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"flowdiff/internal/flowlog"
	"flowdiff/internal/obs"
)

// ReaderOptions tunes streaming decode: what to return (Columns), what
// to keep (the embedded Filter), and how to decode (BatchSize,
// Parallelism). The zero options read everything serially.
type ReaderOptions struct {
	// Filter restricts the read. Whole segments the index proves
	// irrelevant are pruned before any payload byte is read; inside
	// overlapping segments, non-matching events are dropped at decode
	// time and never materialized.
	Filter
	// Columns projects the decode: only the selected columns' payload
	// blocks are decoded (on version-2 files the others are never even
	// read), and unprojected event fields stay at their zero value. Zero
	// means all columns.
	Columns ColumnSet
	// BatchSize caps the event count of one Next batch. Default 8192.
	BatchSize int
	// Parallelism > 1 decodes that many segments concurrently (clamped
	// to the hardware by parallel.Clamp) behind a bounded-readahead
	// pipeline that delivers batches strictly in file order — output is
	// identical to the serial reader at every worker count. 0 or 1 reads
	// serially.
	Parallelism int
}

func (o ReaderOptions) withDefaults() ReaderOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 8192
	}
	return o
}

// readerMetrics holds the obs handles resolved once at open, so the
// per-segment cost is an atomic add.
//
// Counter semantics: segments.read counts decoded segments;
// segments.pruned counts segments skipped from the preamble time range;
// segments.pruned_by_index counts segments skipped from the index
// membership summaries; events.decoded counts materialized events;
// events.filtered counts events dropped at decode time; columns.skipped
// counts unprojected column blocks never decoded; bytes.decoded /
// bytes.skipped split the payload bytes by whether they fed a decode.
// The readahead.occupancy gauge tracks filled pipeline slots per round
// (Max = the deepest the readahead ever ran).
type readerMetrics struct {
	segsRead    *obs.Counter
	segsPruned  *obs.Counter
	segsPrunedX *obs.Counter
	evsDecoded  *obs.Counter
	evsFiltered *obs.Counter
	colsSkipped *obs.Counter
	bytesDec    *obs.Counter
	bytesSkip   *obs.Counter
	occupancy   *obs.Gauge
}

func newReaderMetrics(reg *obs.Registry) readerMetrics {
	return readerMetrics{
		segsRead:    reg.Counter("colseg.segments.read"),
		segsPruned:  reg.Counter("colseg.segments.pruned"),
		segsPrunedX: reg.Counter("colseg.segments.pruned_by_index"),
		evsDecoded:  reg.Counter("colseg.events.decoded"),
		evsFiltered: reg.Counter("colseg.events.filtered"),
		colsSkipped: reg.Counter("colseg.columns.skipped"),
		bytesDec:    reg.Counter("colseg.bytes.decoded"),
		bytesSkip:   reg.Counter("colseg.bytes.skipped"),
		occupancy:   reg.Gauge("colseg.readahead.occupancy"),
	}
}

// segMeta is everything known about the next segment before its payload:
// the preamble plus, on version-2 files, the decoded index.
type segMeta struct {
	minT, maxT time.Duration
	count      int
	payloadLen int
	index      *segIndex
}

// Reader streams an FDC1 file segment by segment, serving decoded
// events in bounded batches. Peak memory is one decoded segment plus
// the per-segment dictionaries (times Parallelism plus readahead when
// decoding in parallel); the full event slice is never materialized.
//
// Metrics land in the obs registry traveling in the constructor's
// context; see readerMetrics for the counter contract.
type Reader struct {
	br      *bufio.Reader
	ctx     context.Context
	reg     *obs.Registry
	m       readerMetrics
	opts    ReaderOptions
	spec    *querySpec
	version int
	start   time.Duration
	end     time.Duration
	width   time.Duration
	// names interns switch-name dictionary entries across segments, so
	// a capture from N switches allocates N strings however many
	// segments repeat them. Serial decode only: parallel slots intern
	// per segment (value-equal output, no shared map).
	names map[string]string
	// Serial decode state, reused across segments.
	slab    []byte
	blocks  [numColumns][]byte
	sc      decodeScratch
	idxBuf  []byte
	par     *pipeline
	seg     []flowlog.Event
	pos     int
	srcDone bool // end marker consumed from the stream
	done    bool // no batches left to serve
	err     error
}

// NewReader is NewReaderContext with a background context.
func NewReader(r io.Reader, opts ReaderOptions) (*Reader, error) {
	return NewReaderContext(context.Background(), r, opts)
}

// NewReaderContext opens an FDC1 stream: the header is read and
// validated immediately, events decode lazily per Next call. Both
// on-disk versions are readable; files from a future revision are
// rejected here.
func NewReaderContext(ctx context.Context, r io.Reader, opts ReaderOptions) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("colseg: reading header: %w", err)
	}
	if string(hdr[0:4]) != fileMagic {
		return nil, fmt.Errorf("colseg: bad magic %q", hdr[0:4])
	}
	if hdr[4] != formatVersion1 && hdr[4] != formatVersion2 {
		return nil, fmt.Errorf("colseg: unsupported version %d", hdr[4])
	}
	if hdr[5] != numColumns {
		return nil, fmt.Errorf("colseg: unexpected column count %d (want %d)", hdr[5], numColumns)
	}
	opts = opts.withDefaults()
	reg := obs.From(ctx)
	rd := &Reader{
		br:      br,
		ctx:     ctx,
		reg:     reg,
		m:       newReaderMetrics(reg),
		opts:    opts,
		spec:    newQuerySpec(opts.Filter, opts.Columns),
		version: int(hdr[4]),
		start:   time.Duration(binary.BigEndian.Uint64(hdr[6:14])),
		end:     time.Duration(binary.BigEndian.Uint64(hdr[14:22])),
		width:   time.Duration(binary.BigEndian.Uint64(hdr[22:30])),
		names:   make(map[string]string),
	}
	rd.par = newPipeline(opts.Parallelism)
	return rd, nil
}

// Bounds returns the interval the served events cover: the filter
// window when one is set, else the log interval recorded in the file
// header.
func (r *Reader) Bounds() (start, end time.Duration) {
	if r.opts.timeActive() {
		return r.opts.From, r.opts.To
	}
	return r.start, r.end
}

// SegmentDuration returns the fixed time range the file was segmented by.
func (r *Reader) SegmentDuration() time.Duration { return r.width }

// Next returns the next batch of decoded events (at most BatchSize) and
// io.EOF after the last one. The returned slice is only valid until the
// next call. Errors other than io.EOF are terminal.
func (r *Reader) Next() ([]flowlog.Event, error) {
	if r.err != nil {
		return nil, r.err
	}
	for r.pos >= len(r.seg) {
		if r.done {
			r.err = io.EOF
			return nil, io.EOF
		}
		var err error
		if r.par != nil {
			err = r.nextSegmentParallel()
		} else {
			err = r.nextSegment()
		}
		if err != nil {
			r.err = err
			return nil, err
		}
	}
	n := len(r.seg) - r.pos
	if n > r.opts.BatchSize {
		n = r.opts.BatchSize
	}
	batch := r.seg[r.pos : r.pos+n]
	r.pos += n
	return batch, nil
}

// readMeta consumes the next segment tag and, unless the file ended,
// the preamble and (version 2) the segment index — everything needed to
// decide pruning before any payload byte.
func (r *Reader) readMeta() (meta segMeta, done bool, err error) {
	var tag [4]byte
	if _, err := io.ReadFull(r.br, tag[:]); err != nil {
		return meta, false, fmt.Errorf("colseg: reading segment tag: %w", err)
	}
	switch string(tag[:]) {
	case endMagic:
		return meta, true, nil
	case segMagic:
	default:
		return meta, false, fmt.Errorf("colseg: bad segment tag %q", tag[:])
	}

	preLen := preambleLenV1
	if r.version == formatVersion2 {
		preLen = preambleLenV2
	}
	var pre [preambleLenV2]byte
	if _, err := io.ReadFull(r.br, pre[:preLen]); err != nil {
		return meta, false, fmt.Errorf("colseg: reading segment preamble: %w", err)
	}
	meta.minT = time.Duration(binary.BigEndian.Uint64(pre[0:8]))
	meta.maxT = time.Duration(binary.BigEndian.Uint64(pre[8:16]))
	count := binary.BigEndian.Uint32(pre[16:20])
	payloadLen := binary.BigEndian.Uint32(pre[20:24])
	if count == 0 || count > maxSegmentEvents {
		return meta, false, fmt.Errorf("colseg: implausible segment event count %d", count)
	}
	if payloadLen > maxPayloadLen {
		return meta, false, fmt.Errorf("colseg: implausible segment payload length %d", payloadLen)
	}
	meta.count = int(count)
	meta.payloadLen = int(payloadLen)

	if r.version == formatVersion2 {
		indexLen := binary.BigEndian.Uint32(pre[24:28])
		if indexLen > maxIndexLen {
			return meta, false, fmt.Errorf("colseg: implausible segment index length %d", indexLen)
		}
		r.idxBuf = grow(r.idxBuf, int(indexLen))
		if _, err := io.ReadFull(r.br, r.idxBuf); err != nil {
			return meta, false, fmt.Errorf("colseg: reading segment index: %w", err)
		}
		meta.index, err = parseIndexV2(r.idxBuf, meta.payloadLen)
		if err != nil {
			return meta, false, err
		}
	}
	return meta, false, nil
}

// prune decides from metadata alone whether no event in the segment can
// match the filter: the preamble time range first, then (version 2,
// exact summaries only) host and switch membership.
func (r *Reader) prune(meta *segMeta) (pruned, byIndex bool) {
	if r.opts.timeActive() && (meta.maxT < r.opts.From || meta.minT >= r.opts.To) {
		return true, false
	}
	if x := meta.index; x != nil {
		if len(r.spec.hostSet) > 0 && x.hostsExact {
			hit := false
			for _, a4 := range x.hosts {
				if r.spec.hostSet[a4] {
					hit = true
					break
				}
			}
			if !hit {
				return true, true
			}
		}
		if len(r.spec.swSet) > 0 && x.switchesExact {
			hit := false
			for _, name := range x.switches {
				if r.spec.swSet[name] {
					hit = true
					break
				}
			}
			if !hit {
				return true, true
			}
		}
	}
	return false, false
}

// skipSegment discards a pruned segment's remaining bytes (payload, plus
// the trailing footer on version-1 files) and records the work avoided.
func (r *Reader) skipSegment(meta *segMeta, byIndex bool) error {
	n := meta.payloadLen
	if r.version == formatVersion1 {
		n += footerLenV1
	}
	if _, err := r.br.Discard(n); err != nil {
		return fmt.Errorf("colseg: skipping pruned segment: %w", err)
	}
	if byIndex {
		r.m.segsPrunedX.Inc()
	} else {
		r.m.segsPruned.Inc()
	}
	r.m.bytesSkip.Add(int64(meta.payloadLen))
	return nil
}

// loadBlocks reads the segment body into slab and slices the needed
// column blocks out of it. On version-2 files unneeded blocks are
// skipped with Discard (their bytes never enter memory) and each loaded
// block is CRC-checked independently; version-1 files must read the
// whole payload to reach the footer, so "skipped" there counts decode
// work avoided, not IO. Returns the (possibly regrown) slab.
func (r *Reader) loadBlocks(meta *segMeta, blocks *[numColumns][]byte, slab []byte) ([]byte, error) {
	need := r.spec.need
	if r.version == formatVersion1 {
		slab = grow(slab, meta.payloadLen+footerLenV1)
		if _, err := io.ReadFull(r.br, slab); err != nil {
			return slab, fmt.Errorf("colseg: reading segment body: %w", err)
		}
		payload, footer := slab[:meta.payloadLen], slab[meta.payloadLen:]
		x, err := parseFooterV1(footer, meta.payloadLen)
		if err != nil {
			return slab, err
		}
		if got := crc32.ChecksumIEEE(payload); got != x.crcs[0] {
			return slab, fmt.Errorf("colseg: segment CRC mismatch: computed %08x, footer %08x", got, x.crcs[0])
		}
		meta.index = x
		var dec, skip int64
		for c := 0; c < numColumns; c++ {
			bl := x.blockLen(c, meta.payloadLen)
			if need.has(c) {
				blocks[c] = payload[x.offs[c] : x.offs[c]+bl]
				dec += int64(bl)
			} else {
				blocks[c] = nil
				skip += int64(bl)
				r.m.colsSkipped.Inc()
			}
		}
		r.m.bytesDec.Add(dec)
		r.m.bytesSkip.Add(skip)
		return slab, nil
	}

	x := meta.index
	total := 0
	for c := 0; c < numColumns; c++ {
		if need.has(c) {
			total += x.blockLen(c, meta.payloadLen)
		}
	}
	slab = grow(slab, total)
	off := 0
	var dec, skip int64
	for c := 0; c < numColumns; c++ {
		bl := x.blockLen(c, meta.payloadLen)
		if !need.has(c) {
			if _, err := r.br.Discard(bl); err != nil {
				return slab, fmt.Errorf("colseg: skipping %s column: %w", columnNames[c], err)
			}
			blocks[c] = nil
			skip += int64(bl)
			r.m.colsSkipped.Inc()
			continue
		}
		b := slab[off : off+bl]
		if _, err := io.ReadFull(r.br, b); err != nil {
			return slab, fmt.Errorf("colseg: reading %s column: %w", columnNames[c], err)
		}
		if got := crc32.ChecksumIEEE(b); got != x.crcs[c] {
			return slab, fmt.Errorf("colseg: %s column CRC mismatch: computed %08x, index %08x", columnNames[c], got, x.crcs[c])
		}
		blocks[c] = b
		off += bl
		dec += int64(bl)
	}
	r.m.bytesDec.Add(dec)
	r.m.bytesSkip.Add(skip)
	return slab, nil
}

// nextSegment advances past end markers and pruned segments until one
// segment has been decoded into r.seg (possibly empty after decode-time
// filtering) or the file ends (r.done). Serial path.
func (r *Reader) nextSegment() error {
	meta, done, err := r.readMeta()
	if err != nil {
		return err
	}
	if done {
		r.done = true
		r.seg, r.pos = nil, 0
		return nil
	}
	if pruned, byIndex := r.prune(&meta); pruned {
		return r.skipSegment(&meta, byIndex)
	}
	if r.slab, err = r.loadBlocks(&meta, &r.blocks, r.slab); err != nil {
		return err
	}
	//lint:ignore obsspan same decode stage as the parallel refill path; a reader runs exactly one of the two, so the timeline never sees both and the metric name stays comparable across modes
	sp := r.reg.Span("colseg.decode")
	evs, filtered, err := decodeBlocks(&r.blocks, meta.count, r.spec, r.names, &r.sc)
	sp.End()
	if err != nil {
		return err
	}
	r.m.segsRead.Inc()
	r.m.evsDecoded.Add(int64(len(evs)))
	r.m.evsFiltered.Add(int64(filtered))
	r.seg, r.pos = evs, 0
	return nil
}

// ReadAll drains the reader into an in-memory log covering the file's
// recorded bounds (or the filter window when one is set).
func (r *Reader) ReadAll() (*flowlog.Log, error) {
	start, end := r.Bounds()
	out := flowlog.New(start, end)
	for {
		batch, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out.Events = append(out.Events, batch...)
	}
}

// Read eagerly deserializes a whole FDC1 stream, the columnar
// counterpart of flowlog.ReadBinary.
func Read(rd io.Reader) (*flowlog.Log, error) {
	r, err := NewReader(rd, ReaderOptions{})
	if err != nil {
		return nil, err
	}
	return r.ReadAll()
}
