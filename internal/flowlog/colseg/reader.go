package colseg

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net/netip"
	"time"

	"flowdiff/internal/flowlog"
	"flowdiff/internal/obs"
)

// ReaderOptions tunes streaming decode.
type ReaderOptions struct {
	// From/To restrict the read to events in [From, To) — the same
	// half-open semantics as flowlog.Window. Segments whose [min, max]
	// time range does not overlap the window are pruned from their
	// 24-byte preamble: their payload is skipped, never decoded. The
	// filter is active only when To > From; the zero options read
	// everything.
	From, To time.Duration
	// BatchSize caps the event count of one Next batch. Default 8192.
	BatchSize int
}

func (o ReaderOptions) withDefaults() ReaderOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 8192
	}
	return o
}

func (o ReaderOptions) filtered() bool { return o.To > o.From }

// Reader streams an FDC1 file segment by segment, serving decoded
// events in bounded batches. Peak memory is one decoded segment plus
// the per-segment dictionaries; the full event slice is never
// materialized.
//
// Metrics land in the obs registry traveling in the constructor's
// context: counters colseg.segments.read / colseg.segments.pruned /
// colseg.events.decoded and the span histogram span.colseg.decode.
type Reader struct {
	br    *bufio.Reader
	reg   *obs.Registry
	opts  ReaderOptions
	start time.Duration
	end   time.Duration
	width time.Duration
	seg   []flowlog.Event
	pos   int
	// names interns switch-name dictionary entries across segments, so
	// a capture from N switches allocates N strings however many
	// segments repeat them.
	names map[string]string
	done  bool
	err   error
}

// NewReader is NewReaderContext with a background context.
func NewReader(r io.Reader, opts ReaderOptions) (*Reader, error) {
	return NewReaderContext(context.Background(), r, opts)
}

// NewReaderContext opens an FDC1 stream: the header is read and
// validated immediately, events decode lazily per Next call.
func NewReaderContext(ctx context.Context, r io.Reader, opts ReaderOptions) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("colseg: reading header: %w", err)
	}
	if string(hdr[0:4]) != fileMagic {
		return nil, fmt.Errorf("colseg: bad magic %q", hdr[0:4])
	}
	if hdr[4] != formatVersion {
		return nil, fmt.Errorf("colseg: unsupported version %d", hdr[4])
	}
	if hdr[5] != numColumns {
		return nil, fmt.Errorf("colseg: unexpected column count %d (want %d)", hdr[5], numColumns)
	}
	return &Reader{
		br:    br,
		reg:   obs.From(ctx),
		opts:  opts.withDefaults(),
		start: time.Duration(binary.BigEndian.Uint64(hdr[6:14])),
		end:   time.Duration(binary.BigEndian.Uint64(hdr[14:22])),
		width: time.Duration(binary.BigEndian.Uint64(hdr[22:30])),
		names: make(map[string]string),
	}, nil
}

// Bounds returns the log interval recorded in the file header.
func (r *Reader) Bounds() (start, end time.Duration) { return r.start, r.end }

// SegmentDuration returns the fixed time range the file was segmented by.
func (r *Reader) SegmentDuration() time.Duration { return r.width }

// Next returns the next batch of decoded events (at most BatchSize) and
// io.EOF after the last one. The returned slice is only valid until the
// next call. Errors other than io.EOF are terminal.
func (r *Reader) Next() ([]flowlog.Event, error) {
	if r.err != nil {
		return nil, r.err
	}
	for r.pos >= len(r.seg) {
		if r.done {
			r.err = io.EOF
			return nil, io.EOF
		}
		if err := r.nextSegment(); err != nil {
			r.err = err
			return nil, err
		}
	}
	n := len(r.seg) - r.pos
	if n > r.opts.BatchSize {
		n = r.opts.BatchSize
	}
	batch := r.seg[r.pos : r.pos+n]
	r.pos += n
	return batch, nil
}

// nextSegment advances past end markers and pruned segments until one
// segment has been decoded into r.seg (possibly empty after in-window
// filtering) or the file ends (r.done).
func (r *Reader) nextSegment() error {
	var tag [4]byte
	if _, err := io.ReadFull(r.br, tag[:]); err != nil {
		return fmt.Errorf("colseg: reading segment tag: %w", err)
	}
	switch string(tag[:]) {
	case endMagic:
		r.done = true
		r.seg, r.pos = nil, 0
		return nil
	case segMagic:
	default:
		return fmt.Errorf("colseg: bad segment tag %q", tag[:])
	}

	var pre [preambleLen]byte
	if _, err := io.ReadFull(r.br, pre[:]); err != nil {
		return fmt.Errorf("colseg: reading segment preamble: %w", err)
	}
	minT := time.Duration(binary.BigEndian.Uint64(pre[0:8]))
	maxT := time.Duration(binary.BigEndian.Uint64(pre[8:16]))
	count := binary.BigEndian.Uint32(pre[16:20])
	payloadLen := binary.BigEndian.Uint32(pre[20:24])
	if count == 0 || count > maxSegmentEvents {
		return fmt.Errorf("colseg: implausible segment event count %d", count)
	}
	if payloadLen > maxPayloadLen {
		return fmt.Errorf("colseg: implausible segment payload length %d", payloadLen)
	}

	if r.opts.filtered() && (maxT < r.opts.From || minT >= r.opts.To) {
		// The whole segment is outside the window: prune it from
		// metadata, skipping payload and footer without decoding.
		if _, err := r.br.Discard(int(payloadLen) + footerLen); err != nil {
			return fmt.Errorf("colseg: skipping pruned segment: %w", err)
		}
		r.reg.Counter("colseg.segments.pruned").Inc()
		return nil
	}

	buf := make([]byte, int(payloadLen)+footerLen)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return fmt.Errorf("colseg: reading segment body: %w", err)
	}
	payload, footer := buf[:payloadLen], buf[payloadLen:]
	wantCRC := binary.BigEndian.Uint32(footer[numColumns*4:])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return fmt.Errorf("colseg: segment CRC mismatch: computed %08x, footer %08x", got, wantCRC)
	}
	var offs [numColumns]int
	for i := range offs {
		offs[i] = int(binary.BigEndian.Uint32(footer[i*4 : i*4+4]))
		if offs[i] > len(payload) || (i > 0 && offs[i] < offs[i-1]) {
			return fmt.Errorf("colseg: corrupt column offset table")
		}
	}

	sp := r.reg.Span("colseg.decode")
	evs, err := r.decodeSegment(payload, offs, int(count))
	sp.End()
	if err != nil {
		return err
	}
	r.reg.Counter("colseg.segments.read").Inc()
	r.reg.Counter("colseg.events.decoded").Add(int64(len(evs)))
	if r.opts.filtered() {
		kept := evs[:0]
		for i := range evs {
			if t := evs[i].Time; t >= r.opts.From && t < r.opts.To {
				kept = append(kept, evs[i])
			}
		}
		evs = kept
	}
	r.seg, r.pos = evs, 0
	return nil
}

// column returns the cursor over one column's block.
func column(payload []byte, offs [numColumns]int, i int) cursor {
	end := len(payload)
	if i+1 < numColumns {
		end = offs[i+1]
	}
	return cursor{b: payload[:end], off: offs[i]}
}

func (r *Reader) decodeSegment(payload []byte, offs [numColumns]int, count int) ([]flowlog.Event, error) {
	evs := make([]flowlog.Event, count)

	c := column(payload, offs, columnTime)
	prev := int64(0)
	for i := range evs {
		d, err := c.varint()
		if err != nil {
			return nil, fmt.Errorf("colseg: time column: %w", err)
		}
		prev += d
		evs[i].Time = time.Duration(prev)
	}

	rle := func(col int, name string, set func(*flowlog.Event, byte)) error {
		c := column(payload, offs, col)
		for i := 0; i < count; {
			run, err := c.uvarint()
			if err != nil {
				return fmt.Errorf("colseg: %s column: %w", name, err)
			}
			v, err := c.byte()
			if err != nil {
				return fmt.Errorf("colseg: %s column: %w", name, err)
			}
			if run == 0 || run > uint64(count-i) {
				return fmt.Errorf("colseg: %s column: implausible run length %d", name, run)
			}
			for j := 0; j < int(run); j++ {
				set(&evs[i+j], v)
			}
			i += int(run)
		}
		return nil
	}
	if err := rle(columnType, "type", func(e *flowlog.Event, v byte) { e.Type = flowlog.EventType(v) }); err != nil {
		return nil, err
	}
	if err := rle(columnReason, "reason", func(e *flowlog.Event, v byte) { e.Reason = v }); err != nil {
		return nil, err
	}
	if err := rle(columnProto, "proto", func(e *flowlog.Event, v byte) { e.Flow.Proto = v }); err != nil {
		return nil, err
	}

	addrCol := func(col int, name string, set func(*flowlog.Event, netip.Addr)) error {
		c := column(payload, offs, col)
		n, err := c.uvarint()
		if err != nil {
			return fmt.Errorf("colseg: %s column: %w", name, err)
		}
		if n > uint64(count) {
			return fmt.Errorf("colseg: %s column: implausible dictionary size %d", name, n)
		}
		dict := make([]netip.Addr, n)
		for i := range dict {
			b, err := c.bytes(4)
			if err != nil {
				return fmt.Errorf("colseg: %s column: %w", name, err)
			}
			if a4 := [4]byte(b); a4 != ([4]byte{}) {
				dict[i] = netip.AddrFrom4(a4)
			}
		}
		for i := range evs {
			id, err := c.uvarint()
			if err != nil {
				return fmt.Errorf("colseg: %s column: %w", name, err)
			}
			if id >= uint64(len(dict)) {
				return fmt.Errorf("colseg: %s column: dictionary index %d out of range", name, id)
			}
			set(&evs[i], dict[id])
		}
		return nil
	}
	if err := addrCol(columnSrc, "src", func(e *flowlog.Event, a netip.Addr) { e.Flow.Src = a }); err != nil {
		return nil, err
	}
	if err := addrCol(columnDst, "dst", func(e *flowlog.Event, a netip.Addr) { e.Flow.Dst = a }); err != nil {
		return nil, err
	}

	uvar := func(col int, name string, set func(*flowlog.Event, uint64)) error {
		c := column(payload, offs, col)
		for i := range evs {
			v, err := c.uvarint()
			if err != nil {
				return fmt.Errorf("colseg: %s column: %w", name, err)
			}
			set(&evs[i], v)
		}
		return nil
	}
	if err := uvar(columnSrcPort, "srcPort", func(e *flowlog.Event, v uint64) { e.Flow.SrcPort = uint16(v) }); err != nil {
		return nil, err
	}
	if err := uvar(columnDstPort, "dstPort", func(e *flowlog.Event, v uint64) { e.Flow.DstPort = uint16(v) }); err != nil {
		return nil, err
	}
	if err := uvar(columnInPort, "inPort", func(e *flowlog.Event, v uint64) { e.InPort = uint16(v) }); err != nil {
		return nil, err
	}
	if err := uvar(columnOutPort, "outPort", func(e *flowlog.Event, v uint64) { e.OutPort = uint16(v) }); err != nil {
		return nil, err
	}
	if err := uvar(columnDPID, "dpid", func(e *flowlog.Event, v uint64) { e.DPID = v }); err != nil {
		return nil, err
	}
	if err := uvar(columnBytes, "bytes", func(e *flowlog.Event, v uint64) { e.Bytes = v }); err != nil {
		return nil, err
	}
	if err := uvar(columnPackets, "packets", func(e *flowlog.Event, v uint64) { e.Packets = v }); err != nil {
		return nil, err
	}
	if err := uvar(columnFlowDur, "flowDuration", func(e *flowlog.Event, v uint64) { e.FlowDuration = time.Duration(v) }); err != nil {
		return nil, err
	}

	c = column(payload, offs, columnSwitch)
	n, err := c.uvarint()
	if err != nil {
		return nil, fmt.Errorf("colseg: switch column: %w", err)
	}
	if n > uint64(count) {
		return nil, fmt.Errorf("colseg: switch column: implausible dictionary size %d", n)
	}
	sdict := make([]string, n)
	for i := range sdict {
		l, err := c.uvarint()
		if err != nil {
			return nil, fmt.Errorf("colseg: switch column: %w", err)
		}
		if l > maxNameLen {
			return nil, fmt.Errorf("colseg: switch column: implausible name length %d", l)
		}
		b, err := c.bytes(int(l))
		if err != nil {
			return nil, fmt.Errorf("colseg: switch column: %w", err)
		}
		name, ok := r.names[string(b)]
		if !ok {
			name = string(b)
			r.names[name] = name
		}
		sdict[i] = name
	}
	for i := range evs {
		id, err := c.uvarint()
		if err != nil {
			return nil, fmt.Errorf("colseg: switch column: %w", err)
		}
		if id >= uint64(len(sdict)) {
			return nil, fmt.Errorf("colseg: switch column: dictionary index %d out of range", id)
		}
		evs[i].Switch = sdict[id]
	}

	return evs, nil
}

// ReadAll drains the reader into an in-memory log covering the file's
// recorded bounds (or the filter window when one is set).
func (r *Reader) ReadAll() (*flowlog.Log, error) {
	start, end := r.start, r.end
	if r.opts.filtered() {
		start, end = r.opts.From, r.opts.To
	}
	out := flowlog.New(start, end)
	for {
		batch, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out.Events = append(out.Events, batch...)
	}
}

// Read eagerly deserializes a whole FDC1 stream, the columnar
// counterpart of flowlog.ReadBinary.
func Read(rd io.Reader) (*flowlog.Log, error) {
	r, err := NewReader(rd, ReaderOptions{})
	if err != nil {
		return nil, err
	}
	return r.ReadAll()
}
