package colseg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net/netip"
	"sort"
	"time"

	"flowdiff/internal/flowlog"
)

// Writer streams events into the FDC1 format. Events must arrive in
// nondecreasing time order (the canonical state of a capture; Write
// sorts unsorted logs before appending). A segment is cut whenever an
// event crosses the current fixed time-range boundary or the per-segment
// event cap is reached, so writer memory is bounded by one segment.
type Writer struct {
	bw     *bufio.Writer
	start  time.Duration
	end    time.Duration
	opts   WriterOptions
	events []flowlog.Event
	// boundary is the exclusive time limit of the open segment: the next
	// multiple of SegmentDuration past the segment's first event.
	boundary time.Duration
	last     time.Duration
	n        int
	closed   bool
	scratch  []byte
	seg      []byte
}

// NewWriter writes the file header for a log covering [start, end] and
// returns a writer ready for Append.
func NewWriter(w io.Writer, start, end time.Duration, opts WriterOptions) (*Writer, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(w)
	var hdr [headerLen]byte
	copy(hdr[0:4], fileMagic)
	hdr[4] = byte(opts.FormatVersion)
	hdr[5] = numColumns
	binary.BigEndian.PutUint64(hdr[6:14], uint64(start))
	binary.BigEndian.PutUint64(hdr[14:22], uint64(end))
	binary.BigEndian.PutUint64(hdr[22:30], uint64(opts.SegmentDuration))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("colseg: writing header: %w", err)
	}
	return &Writer{bw: bw, start: start, end: end, opts: opts}, nil
}

// floorDiv is integer division rounding toward negative infinity, so
// segment boundaries stay aligned for events before the declared start.
func floorDiv(a, b time.Duration) time.Duration {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Append adds one event to the open segment, cutting a new segment at
// time-range boundaries and at the event cap. Out-of-order events are
// rejected: segmentation relies on time making forward progress.
func (w *Writer) Append(e flowlog.Event) error {
	if w.closed {
		return fmt.Errorf("colseg: append after Close")
	}
	if w.n > 0 && e.Time < w.last {
		return fmt.Errorf("colseg: out-of-order event at %v after %v", e.Time, w.last)
	}
	if len(e.Switch) > maxNameLen {
		return fmt.Errorf("colseg: switch name %d bytes exceeds format cap", len(e.Switch))
	}
	if len(w.events) > 0 && (e.Time >= w.boundary || len(w.events) >= w.opts.MaxSegmentEvents) {
		if err := w.flushSegment(); err != nil {
			return err
		}
	}
	if len(w.events) == 0 {
		k := floorDiv(e.Time-w.start, w.opts.SegmentDuration)
		w.boundary = w.start + (k+1)*w.opts.SegmentDuration
	}
	w.events = append(w.events, e)
	w.last = e.Time
	w.n++
	return nil
}

// Close flushes the open segment and writes the end marker. The Writer
// is unusable afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.events) > 0 {
		if err := w.flushSegment(); err != nil {
			return err
		}
	}
	if _, err := w.bw.WriteString(endMagic); err != nil {
		return fmt.Errorf("colseg: writing end marker: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("colseg: flushing: %w", err)
	}
	return nil
}

// flushSegment encodes the buffered events as one segment and writes it.
func (w *Writer) flushSegment() error {
	evs := w.events
	payload, offs, sum := encodeColumns(evs, w.scratch[:0])
	if len(payload) > maxPayloadLen {
		return fmt.Errorf("colseg: segment payload %d bytes exceeds format cap", len(payload))
	}

	seg := w.seg[:0]
	seg = append(seg, segMagic...)
	seg = binary.BigEndian.AppendUint64(seg, uint64(evs[0].Time))
	seg = binary.BigEndian.AppendUint64(seg, uint64(evs[len(evs)-1].Time))
	seg = binary.BigEndian.AppendUint32(seg, uint32(len(evs)))
	seg = binary.BigEndian.AppendUint32(seg, uint32(len(payload)))

	if w.opts.FormatVersion == formatVersion1 {
		// Legacy layout: payload first, then the offsets+CRC footer.
		seg = append(seg, payload...)
		for _, off := range offs {
			seg = binary.BigEndian.AppendUint32(seg, uint32(off))
		}
		seg = binary.BigEndian.AppendUint32(seg, crc32.ChecksumIEEE(payload))
	} else {
		index := encodeIndex(evs, payload, offs, sum)
		if len(index) > maxIndexLen {
			return fmt.Errorf("colseg: segment index %d bytes exceeds format cap", len(index))
		}
		seg = binary.BigEndian.AppendUint32(seg, uint32(len(index)))
		seg = append(seg, index...)
		seg = append(seg, payload...)
	}
	if _, err := w.bw.Write(seg); err != nil {
		return fmt.Errorf("colseg: writing segment: %w", err)
	}

	w.scratch = payload[:0]
	w.seg = seg[:0]
	w.events = w.events[:0]
	return nil
}

// segSummary carries what encodeColumns learns about a segment's
// dictionaries while building them, so the index writer does not
// re-derive it from the events.
type segSummary struct {
	srcOrder [][4]byte
	dstOrder [][4]byte
	swOrder  []string
}

// encodeIndex serializes a version-2 segment index: per-column offsets,
// per-column CRCs, per-column value ranges, and the membership
// summaries.
func encodeIndex(evs []flowlog.Event, payload []byte, offs [numColumns]int, sum segSummary) []byte {
	idx := make([]byte, 0, indexFixedLen+64)
	for _, off := range offs {
		idx = binary.BigEndian.AppendUint32(idx, uint32(off))
	}
	for c := 0; c < numColumns; c++ {
		end := len(payload)
		if c+1 < numColumns {
			end = offs[c+1]
		}
		idx = binary.BigEndian.AppendUint32(idx, crc32.ChecksumIEEE(payload[offs[c]:end]))
	}
	for c := 0; c < numColumns; c++ {
		lo, hi := columnRange(c, evs, sum)
		idx = binary.BigEndian.AppendUint64(idx, lo)
		idx = binary.BigEndian.AppendUint64(idx, hi)
	}

	// Host summary: sorted union of the src and dst dictionaries,
	// invalid (zero) addresses excluded.
	hosts := make([][4]byte, 0, len(sum.srcOrder)+len(sum.dstOrder))
	seen := make(map[[4]byte]bool, len(sum.srcOrder)+len(sum.dstOrder))
	for _, order := range [2][][4]byte{sum.srcOrder, sum.dstOrder} {
		for _, a4 := range order {
			if a4 == ([4]byte{}) || seen[a4] {
				continue
			}
			seen[a4] = true
			hosts = append(hosts, a4)
		}
	}
	sort.Slice(hosts, func(i, j int) bool {
		return string(hosts[i][:]) < string(hosts[j][:])
	})
	if len(hosts) > summaryCap {
		idx = append(idx, 1) // overflowed: membership pruning disabled
		idx = binary.AppendUvarint(idx, 0)
	} else {
		idx = append(idx, 0)
		idx = binary.AppendUvarint(idx, uint64(len(hosts)))
		for _, a4 := range hosts {
			idx = append(idx, a4[:]...)
		}
	}

	// Switch summary: the sorted name dictionary (the empty name is a
	// legitimate entry — PortStatus events carry no switch).
	switches := append([]string(nil), sum.swOrder...)
	sort.Strings(switches)
	if len(switches) > summaryCap {
		idx = append(idx, 1)
		idx = binary.AppendUvarint(idx, 0)
	} else {
		idx = append(idx, 0)
		idx = binary.AppendUvarint(idx, uint64(len(switches)))
		for _, name := range switches {
			idx = binary.AppendUvarint(idx, uint64(len(name)))
			idx = append(idx, name...)
		}
	}
	return idx
}

// columnRange computes one column's index stats: the (min, max) value
// range for value columns, the dictionary cardinality (in both fields)
// for dictionary columns.
func columnRange(col int, evs []flowlog.Event, sum segSummary) (lo, hi uint64) {
	switch col {
	case columnSrc:
		return uint64(len(sum.srcOrder)), uint64(len(sum.srcOrder))
	case columnDst:
		return uint64(len(sum.dstOrder)), uint64(len(sum.dstOrder))
	case columnSwitch:
		return uint64(len(sum.swOrder)), uint64(len(sum.swOrder))
	}
	get := columnValue(col)
	lo, hi = get(&evs[0]), get(&evs[0])
	for i := 1; i < len(evs); i++ {
		v := get(&evs[i])
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// columnValue returns the accessor for a value column's uint64 view.
func columnValue(col int) func(*flowlog.Event) uint64 {
	switch col {
	case columnTime:
		return func(e *flowlog.Event) uint64 { return uint64(e.Time) }
	case columnType:
		return func(e *flowlog.Event) uint64 { return uint64(e.Type) }
	case columnReason:
		return func(e *flowlog.Event) uint64 { return uint64(e.Reason) }
	case columnProto:
		return func(e *flowlog.Event) uint64 { return uint64(e.Flow.Proto) }
	case columnSrcPort:
		return func(e *flowlog.Event) uint64 { return uint64(e.Flow.SrcPort) }
	case columnDstPort:
		return func(e *flowlog.Event) uint64 { return uint64(e.Flow.DstPort) }
	case columnInPort:
		return func(e *flowlog.Event) uint64 { return uint64(e.InPort) }
	case columnOutPort:
		return func(e *flowlog.Event) uint64 { return uint64(e.OutPort) }
	case columnDPID:
		return func(e *flowlog.Event) uint64 { return e.DPID }
	case columnBytes:
		return func(e *flowlog.Event) uint64 { return e.Bytes }
	case columnPackets:
		return func(e *flowlog.Event) uint64 { return e.Packets }
	case columnFlowDur:
		return func(e *flowlog.Event) uint64 { return uint64(e.FlowDuration) }
	}
	panic(fmt.Sprintf("colseg: columnValue on dictionary column %d", col))
}

// encodeColumns serializes one segment's events column by column into
// buf, returning the payload, the start offset of each column, and the
// dictionary summary the index needs.
func encodeColumns(evs []flowlog.Event, buf []byte) ([]byte, [numColumns]int, segSummary) {
	var offs [numColumns]int
	var sum segSummary

	// time: zigzag varint of the delta from the previous event.
	offs[columnTime] = len(buf)
	prev := int64(0)
	for i := range evs {
		t := int64(evs[i].Time)
		buf = binary.AppendVarint(buf, t-prev)
		prev = t
	}

	// type / reason / proto: run-length encoded byte columns.
	rle := func(get func(*flowlog.Event) byte) {
		for i := 0; i < len(evs); {
			v := get(&evs[i])
			j := i + 1
			for j < len(evs) && get(&evs[j]) == v {
				j++
			}
			buf = binary.AppendUvarint(buf, uint64(j-i))
			buf = append(buf, v)
			i = j
		}
	}
	offs[columnType] = len(buf)
	rle(func(e *flowlog.Event) byte { return byte(e.Type) })
	offs[columnReason] = len(buf)
	rle(func(e *flowlog.Event) byte { return e.Reason })
	offs[columnProto] = len(buf)
	rle(func(e *flowlog.Event) byte { return e.Flow.Proto })

	// src / dst: per-segment IPv4 dictionary + per-event index.
	addrCol := func(get func(*flowlog.Event) netip.Addr) [][4]byte {
		dict := make(map[[4]byte]int)
		var order [][4]byte
		idxs := make([]int, len(evs))
		for i := range evs {
			var a4 [4]byte
			if a := get(&evs[i]); a.IsValid() {
				a4 = a.As4()
			}
			id, ok := dict[a4]
			if !ok {
				id = len(order)
				dict[a4] = id
				order = append(order, a4)
			}
			idxs[i] = id
		}
		buf = binary.AppendUvarint(buf, uint64(len(order)))
		for _, a4 := range order {
			buf = append(buf, a4[:]...)
		}
		for _, id := range idxs {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
		return order
	}
	offs[columnSrc] = len(buf)
	sum.srcOrder = addrCol(func(e *flowlog.Event) netip.Addr { return e.Flow.Src })
	offs[columnDst] = len(buf)
	sum.dstOrder = addrCol(func(e *flowlog.Event) netip.Addr { return e.Flow.Dst })

	// Plain uvarint columns.
	uvar := func(get func(*flowlog.Event) uint64) {
		for i := range evs {
			buf = binary.AppendUvarint(buf, get(&evs[i]))
		}
	}
	offs[columnSrcPort] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return uint64(e.Flow.SrcPort) })
	offs[columnDstPort] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return uint64(e.Flow.DstPort) })
	offs[columnInPort] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return uint64(e.InPort) })
	offs[columnOutPort] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return uint64(e.OutPort) })
	offs[columnDPID] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return e.DPID })
	offs[columnBytes] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return e.Bytes })
	offs[columnPackets] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return e.Packets })
	offs[columnFlowDur] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return uint64(e.FlowDuration) })

	// switch: per-segment string dictionary + per-event index.
	offs[columnSwitch] = len(buf)
	sdict := make(map[string]int)
	var sorder []string
	sidxs := make([]int, len(evs))
	for i := range evs {
		name := evs[i].Switch
		id, ok := sdict[name]
		if !ok {
			id = len(sorder)
			sdict[name] = id
			sorder = append(sorder, name)
		}
		sidxs[i] = id
	}
	buf = binary.AppendUvarint(buf, uint64(len(sorder)))
	for _, name := range sorder {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	for _, id := range sidxs {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	sum.swOrder = sorder

	return buf, offs, sum
}

// Write serializes a whole log in the FDC1 format. An unsorted log is
// segmented from a time-sorted copy (stable, so same-instant events keep
// their capture order); the on-disk event order is the sorted order.
func Write(w io.Writer, log *flowlog.Log, opts WriterOptions) error {
	cw, err := NewWriter(w, log.Start, log.End, opts)
	if err != nil {
		return err
	}
	events := log.Events
	if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].Time < events[j].Time }) {
		events = append([]flowlog.Event(nil), events...)
		sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	}
	for i := range events {
		if err := cw.Append(events[i]); err != nil {
			return err
		}
	}
	return cw.Close()
}
