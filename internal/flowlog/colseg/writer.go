package colseg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net/netip"
	"sort"
	"time"

	"flowdiff/internal/flowlog"
)

// Writer streams events into the FDC1 format. Events must arrive in
// nondecreasing time order (the canonical state of a capture; Write
// sorts unsorted logs before appending). A segment is cut whenever an
// event crosses the current fixed time-range boundary or the per-segment
// event cap is reached, so writer memory is bounded by one segment.
type Writer struct {
	bw     *bufio.Writer
	start  time.Duration
	end    time.Duration
	opts   WriterOptions
	events []flowlog.Event
	// boundary is the exclusive time limit of the open segment: the next
	// multiple of SegmentDuration past the segment's first event.
	boundary time.Duration
	last     time.Duration
	n        int
	closed   bool
	scratch  []byte
	seg      []byte
}

// NewWriter writes the file header for a log covering [start, end] and
// returns a writer ready for Append.
func NewWriter(w io.Writer, start, end time.Duration, opts WriterOptions) (*Writer, error) {
	opts = opts.withDefaults()
	bw := bufio.NewWriter(w)
	var hdr [headerLen]byte
	copy(hdr[0:4], fileMagic)
	hdr[4] = formatVersion
	hdr[5] = numColumns
	binary.BigEndian.PutUint64(hdr[6:14], uint64(start))
	binary.BigEndian.PutUint64(hdr[14:22], uint64(end))
	binary.BigEndian.PutUint64(hdr[22:30], uint64(opts.SegmentDuration))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("colseg: writing header: %w", err)
	}
	return &Writer{bw: bw, start: start, end: end, opts: opts}, nil
}

// floorDiv is integer division rounding toward negative infinity, so
// segment boundaries stay aligned for events before the declared start.
func floorDiv(a, b time.Duration) time.Duration {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Append adds one event to the open segment, cutting a new segment at
// time-range boundaries and at the event cap. Out-of-order events are
// rejected: segmentation relies on time making forward progress.
func (w *Writer) Append(e flowlog.Event) error {
	if w.closed {
		return fmt.Errorf("colseg: append after Close")
	}
	if w.n > 0 && e.Time < w.last {
		return fmt.Errorf("colseg: out-of-order event at %v after %v", e.Time, w.last)
	}
	if len(e.Switch) > maxNameLen {
		return fmt.Errorf("colseg: switch name %d bytes exceeds format cap", len(e.Switch))
	}
	if len(w.events) > 0 && (e.Time >= w.boundary || len(w.events) >= w.opts.MaxSegmentEvents) {
		if err := w.flushSegment(); err != nil {
			return err
		}
	}
	if len(w.events) == 0 {
		k := floorDiv(e.Time-w.start, w.opts.SegmentDuration)
		w.boundary = w.start + (k+1)*w.opts.SegmentDuration
	}
	w.events = append(w.events, e)
	w.last = e.Time
	w.n++
	return nil
}

// Close flushes the open segment and writes the end marker. The Writer
// is unusable afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.events) > 0 {
		if err := w.flushSegment(); err != nil {
			return err
		}
	}
	if _, err := w.bw.WriteString(endMagic); err != nil {
		return fmt.Errorf("colseg: writing end marker: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("colseg: flushing: %w", err)
	}
	return nil
}

// flushSegment encodes the buffered events as one segment and writes it.
func (w *Writer) flushSegment() error {
	evs := w.events
	payload, offs := encodeColumns(evs, w.scratch[:0])
	if len(payload) > maxPayloadLen {
		return fmt.Errorf("colseg: segment payload %d bytes exceeds format cap", len(payload))
	}

	seg := w.seg[:0]
	seg = append(seg, segMagic...)
	seg = binary.BigEndian.AppendUint64(seg, uint64(evs[0].Time))
	seg = binary.BigEndian.AppendUint64(seg, uint64(evs[len(evs)-1].Time))
	seg = binary.BigEndian.AppendUint32(seg, uint32(len(evs)))
	seg = binary.BigEndian.AppendUint32(seg, uint32(len(payload)))
	seg = append(seg, payload...)
	for _, off := range offs {
		seg = binary.BigEndian.AppendUint32(seg, uint32(off))
	}
	seg = binary.BigEndian.AppendUint32(seg, crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(seg); err != nil {
		return fmt.Errorf("colseg: writing segment: %w", err)
	}

	w.scratch = payload[:0]
	w.seg = seg[:0]
	w.events = w.events[:0]
	return nil
}

// encodeColumns serializes one segment's events column by column into
// buf, returning the payload and the start offset of each column.
func encodeColumns(evs []flowlog.Event, buf []byte) ([]byte, [numColumns]int) {
	var offs [numColumns]int

	// time: zigzag varint of the delta from the previous event.
	offs[columnTime] = len(buf)
	prev := int64(0)
	for i := range evs {
		t := int64(evs[i].Time)
		buf = binary.AppendVarint(buf, t-prev)
		prev = t
	}

	// type / reason / proto: run-length encoded byte columns.
	rle := func(get func(*flowlog.Event) byte) {
		for i := 0; i < len(evs); {
			v := get(&evs[i])
			j := i + 1
			for j < len(evs) && get(&evs[j]) == v {
				j++
			}
			buf = binary.AppendUvarint(buf, uint64(j-i))
			buf = append(buf, v)
			i = j
		}
	}
	offs[columnType] = len(buf)
	rle(func(e *flowlog.Event) byte { return byte(e.Type) })
	offs[columnReason] = len(buf)
	rle(func(e *flowlog.Event) byte { return e.Reason })
	offs[columnProto] = len(buf)
	rle(func(e *flowlog.Event) byte { return e.Flow.Proto })

	// src / dst: per-segment IPv4 dictionary + per-event index.
	addrCol := func(get func(*flowlog.Event) netip.Addr) {
		dict := make(map[[4]byte]int)
		var order [][4]byte
		idxs := make([]int, len(evs))
		for i := range evs {
			var a4 [4]byte
			if a := get(&evs[i]); a.IsValid() {
				a4 = a.As4()
			}
			id, ok := dict[a4]
			if !ok {
				id = len(order)
				dict[a4] = id
				order = append(order, a4)
			}
			idxs[i] = id
		}
		buf = binary.AppendUvarint(buf, uint64(len(order)))
		for _, a4 := range order {
			buf = append(buf, a4[:]...)
		}
		for _, id := range idxs {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
	}
	offs[columnSrc] = len(buf)
	addrCol(func(e *flowlog.Event) netip.Addr { return e.Flow.Src })
	offs[columnDst] = len(buf)
	addrCol(func(e *flowlog.Event) netip.Addr { return e.Flow.Dst })

	// Plain uvarint columns.
	uvar := func(get func(*flowlog.Event) uint64) {
		for i := range evs {
			buf = binary.AppendUvarint(buf, get(&evs[i]))
		}
	}
	offs[columnSrcPort] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return uint64(e.Flow.SrcPort) })
	offs[columnDstPort] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return uint64(e.Flow.DstPort) })
	offs[columnInPort] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return uint64(e.InPort) })
	offs[columnOutPort] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return uint64(e.OutPort) })
	offs[columnDPID] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return e.DPID })
	offs[columnBytes] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return e.Bytes })
	offs[columnPackets] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return e.Packets })
	offs[columnFlowDur] = len(buf)
	uvar(func(e *flowlog.Event) uint64 { return uint64(e.FlowDuration) })

	// switch: per-segment string dictionary + per-event index.
	offs[columnSwitch] = len(buf)
	sdict := make(map[string]int)
	var sorder []string
	sidxs := make([]int, len(evs))
	for i := range evs {
		name := evs[i].Switch
		id, ok := sdict[name]
		if !ok {
			id = len(sorder)
			sdict[name] = id
			sorder = append(sorder, name)
		}
		sidxs[i] = id
	}
	buf = binary.AppendUvarint(buf, uint64(len(sorder)))
	for _, name := range sorder {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	for _, id := range sidxs {
		buf = binary.AppendUvarint(buf, uint64(id))
	}

	return buf, offs
}

// Write serializes a whole log in the FDC1 format. An unsorted log is
// segmented from a time-sorted copy (stable, so same-instant events keep
// their capture order); the on-disk event order is the sorted order.
func Write(w io.Writer, log *flowlog.Log, opts WriterOptions) error {
	cw, err := NewWriter(w, log.Start, log.End, opts)
	if err != nil {
		return err
	}
	events := log.Events
	if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].Time < events[j].Time }) {
		events = append([]flowlog.Event(nil), events...)
		sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	}
	for i := range events {
		if err := cw.Append(events[i]); err != nil {
			return err
		}
	}
	return cw.Close()
}
