package switchsim

import (
	"net/netip"
	"testing"
	"time"

	"flowdiff/internal/openflow"
)

// fillTable installs n exact-match entries.
func fillTable(b *testing.B, sw *Switch, n int) []openflow.Match {
	b.Helper()
	pkts := make([]openflow.Match, n)
	for i := 0; i < n; i++ {
		src := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
		dst := netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)})
		m := openflow.ExactMatch(6, src, dst, uint16(i), 80)
		if err := sw.Install(&Entry{Match: m, IdleTimeout: time.Minute}, 0); err != nil {
			b.Fatal(err)
		}
		p := m
		p.Wildcards = 0
		pkts[i] = p
	}
	return pkts
}

func BenchmarkLookup1kEntries(b *testing.B) {
	sw := New("sw1", 1)
	pkts := fillTable(b, sw, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := sw.Lookup(pkts[i%len(pkts)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkProcessHit(b *testing.B) {
	sw := New("sw1", 1)
	pkts := fillTable(b, sw, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Process(pkts[i%len(pkts)], 1, 1500, time.Duration(i))
	}
}

func BenchmarkSweep1kEntries(b *testing.B) {
	// Nothing expires at t=30s (idle timeout is one minute), so the same
	// table can be swept repeatedly: this measures the worst-case scan.
	sw := New("sw1", 1)
	fillTable(b, sw, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := sw.Sweep(30 * time.Second); n != 0 {
			b.Fatal("unexpected expiry")
		}
	}
}
