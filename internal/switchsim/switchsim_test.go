package switchsim

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"flowdiff/internal/openflow"
)

var (
	hostA = netip.MustParseAddr("10.0.0.1")
	hostB = netip.MustParseAddr("10.0.0.2")
	hostC = netip.MustParseAddr("10.0.0.3")
)

func pkt(src, dst netip.Addr, sp, dp uint16) openflow.Match {
	m := openflow.ExactMatch(6, src, dst, sp, dp)
	m.Wildcards = 0
	return m
}

func TestMissFiresPacketIn(t *testing.T) {
	sw := New("sw1", 1)
	var misses int
	sw.OnPacketIn(func(s *Switch, p openflow.Match, inPort uint16, now time.Duration) {
		misses++
		if s != sw || inPort != 3 {
			t.Errorf("callback got switch %v port %d", s.ID, inPort)
		}
	})
	if _, ok := sw.Process(pkt(hostA, hostB, 1, 2), 3, 100, 0); ok {
		t.Error("empty table should miss")
	}
	if misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
}

func TestInstallThenHit(t *testing.T) {
	sw := New("sw1", 1)
	e := &Entry{Match: openflow.ExactMatch(6, hostA, hostB, 1, 2), OutPort: 4, IdleTimeout: 5 * time.Second}
	if err := sw.Install(e, time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := sw.Process(pkt(hostA, hostB, 1, 2), 3, 150, 2*time.Second)
	if !ok || got != e {
		t.Fatal("expected hit on installed entry")
	}
	if e.Packets != 1 || e.Bytes != 150 {
		t.Errorf("counters = %d pkts %d bytes", e.Packets, e.Bytes)
	}
	if e.LastMatched != 2*time.Second {
		t.Errorf("LastMatched = %v", e.LastMatched)
	}
	// Different flow still misses.
	if _, ok := sw.Process(pkt(hostA, hostC, 1, 2), 3, 10, 2*time.Second); ok {
		t.Error("different flow should miss")
	}
}

func TestPriorityOrder(t *testing.T) {
	sw := New("sw1", 1)
	low := &Entry{Match: openflow.HostPairMatch(hostA, hostB), Priority: 1, OutPort: 1}
	high := &Entry{Match: openflow.ExactMatch(6, hostA, hostB, 1, 2), Priority: 10, OutPort: 2}
	sw.Install(low, 0)
	sw.Install(high, 0)
	got, ok := sw.Lookup(pkt(hostA, hostB, 1, 2))
	if !ok || got != high {
		t.Error("high-priority exact entry should win")
	}
	got, ok = sw.Lookup(pkt(hostA, hostB, 9, 9))
	if !ok || got != low {
		t.Error("wildcard entry should catch other ports")
	}
}

func TestIdleTimeoutSweep(t *testing.T) {
	sw := New("sw1", 1)
	var removedReasons []uint8
	sw.OnFlowRemoved(func(s *Switch, e *Entry, reason uint8, now time.Duration) {
		removedReasons = append(removedReasons, reason)
	})
	e := &Entry{
		Match:       openflow.ExactMatch(6, hostA, hostB, 1, 2),
		IdleTimeout: 5 * time.Second, NotifyRemoved: true,
	}
	sw.Install(e, 0)
	sw.Process(pkt(hostA, hostB, 1, 2), 1, 10, 2*time.Second)
	if n := sw.Sweep(6 * time.Second); n != 0 {
		t.Error("entry matched at 2s should survive sweep at 6s")
	}
	if n := sw.Sweep(7 * time.Second); n != 1 {
		t.Error("entry should expire 5s after last match")
	}
	if len(removedReasons) != 1 || removedReasons[0] != openflow.FlowRemovedReasonIdleTimeout {
		t.Errorf("reasons = %v", removedReasons)
	}
	if sw.TableSize() != 0 {
		t.Error("table should be empty after expiry")
	}
}

func TestHardTimeoutBeatsIdle(t *testing.T) {
	sw := New("sw1", 1)
	var reason uint8
	sw.OnFlowRemoved(func(_ *Switch, _ *Entry, r uint8, _ time.Duration) { reason = r })
	e := &Entry{
		Match:       openflow.ExactMatch(6, hostA, hostB, 1, 2),
		IdleTimeout: 5 * time.Second, HardTimeout: 8 * time.Second, NotifyRemoved: true,
	}
	sw.Install(e, 0)
	// Keep the entry busy so idle never fires, then hit the hard timeout.
	for ts := time.Second; ts < 8*time.Second; ts += time.Second {
		sw.Process(pkt(hostA, hostB, 1, 2), 1, 1, ts)
	}
	if n := sw.Sweep(8 * time.Second); n != 1 {
		t.Fatal("hard timeout should expire the busy entry")
	}
	if reason != openflow.FlowRemovedReasonHardTimeout {
		t.Errorf("reason = %d, want hard timeout", reason)
	}
}

func TestDelete(t *testing.T) {
	sw := New("sw1", 1)
	var notified int
	sw.OnFlowRemoved(func(_ *Switch, _ *Entry, r uint8, _ time.Duration) {
		notified++
		if r != openflow.FlowRemovedReasonDelete {
			t.Errorf("reason = %d", r)
		}
	})
	m := openflow.ExactMatch(6, hostA, hostB, 1, 2)
	sw.Install(&Entry{Match: m, NotifyRemoved: true}, 0)
	sw.Install(&Entry{Match: openflow.ExactMatch(6, hostA, hostC, 1, 2)}, 0)
	if n := sw.Delete(m, time.Second); n != 1 {
		t.Errorf("Delete removed %d entries", n)
	}
	if notified != 1 || sw.TableSize() != 1 {
		t.Errorf("notified=%d size=%d", notified, sw.TableSize())
	}
}

func TestDownSwitchDropsSilently(t *testing.T) {
	sw := New("sw1", 1)
	fired := false
	sw.OnPacketIn(func(*Switch, openflow.Match, uint16, time.Duration) { fired = true })
	sw.Down = true
	if _, ok := sw.Process(pkt(hostA, hostB, 1, 2), 1, 10, 0); ok {
		t.Error("down switch should not forward")
	}
	if fired {
		t.Error("down switch should not emit PacketIn")
	}
	sw.Install(&Entry{Match: openflow.ExactMatch(6, hostA, hostB, 1, 2), IdleTimeout: time.Nanosecond}, 0)
	if n := sw.Sweep(time.Hour); n != 0 {
		t.Error("down switch should not emit FlowRemoved")
	}
}

func TestAccount(t *testing.T) {
	sw := New("sw1", 1)
	e := &Entry{Match: openflow.ExactMatch(6, hostA, hostB, 1, 2)}
	sw.Install(e, 0)
	sw.Account(e, 9, 900, 3*time.Second)
	if e.Packets != 9 || e.Bytes != 900 || e.LastMatched != 3*time.Second {
		t.Errorf("entry after Account = %+v", e)
	}
	// Account with an earlier timestamp must not move LastMatched back.
	sw.Account(e, 1, 100, time.Second)
	if e.LastMatched != 3*time.Second {
		t.Error("LastMatched moved backwards")
	}
}

func TestNextExpiry(t *testing.T) {
	sw := New("sw1", 1)
	if _, ok := sw.NextExpiry(); ok {
		t.Error("empty table has no expiry")
	}
	sw.Install(&Entry{Match: openflow.ExactMatch(6, hostA, hostB, 1, 2), IdleTimeout: 5 * time.Second}, time.Second)
	sw.Install(&Entry{Match: openflow.ExactMatch(6, hostA, hostC, 1, 2), HardTimeout: 3 * time.Second}, 2*time.Second)
	at, ok := sw.NextExpiry()
	if !ok || at != 5*time.Second {
		t.Errorf("NextExpiry = %v, %v; want 5s", at, ok)
	}
	sw.Install(&Entry{Match: openflow.ExactMatch(6, hostB, hostC, 1, 2)}, 0) // no timeouts
	if at, _ := sw.NextExpiry(); at != 5*time.Second {
		t.Errorf("timeout-free entry changed NextExpiry to %v", at)
	}
}

func TestInstallNil(t *testing.T) {
	sw := New("sw1", 1)
	if err := sw.Install(nil, 0); err == nil {
		t.Error("want error on nil entry")
	}
}

// Property: after any sequence of installs and sweeps, every surviving
// entry is genuinely not expired, and sweep is idempotent at a fixed time.
func TestSweepProperty(t *testing.T) {
	g := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sw := New("sw1", 1)
		var now time.Duration
		for i := 0; i < 60; i++ {
			now += time.Duration(rng.Intn(2000)) * time.Millisecond
			switch rng.Intn(3) {
			case 0:
				sw.Install(&Entry{
					Match:       openflow.ExactMatch(6, hostA, hostB, uint16(rng.Intn(1000)), 80),
					IdleTimeout: time.Duration(rng.Intn(10)) * time.Second,
					HardTimeout: time.Duration(rng.Intn(20)) * time.Second,
				}, now)
			case 1:
				sw.Process(pkt(hostA, hostB, uint16(rng.Intn(1000)), 80), 1, 64, now)
			case 2:
				sw.Sweep(now)
			}
		}
		sw.Sweep(now)
		for _, e := range sw.Entries() {
			if _, dead := e.expired(now); dead {
				return false
			}
		}
		return sw.Sweep(now) == 0
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
