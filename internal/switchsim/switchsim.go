// Package switchsim models an OpenFlow 1.0 switch's data-plane state: a
// priority-ordered flow table with wildcard matching, idle/hard timeouts,
// and per-entry byte/packet counters. A table miss surfaces as a PacketIn
// callback and an expired entry as a FlowRemoved callback — exactly the
// control-plane telemetry FlowDiff's measurement layer captures.
//
// The switch is driven by a virtual clock (time.Duration since simulation
// start) supplied by the caller; it never reads the wall clock.
package switchsim

import (
	"fmt"
	"sort"
	"time"

	"flowdiff/internal/openflow"
)

// Entry is one installed flow-table rule.
type Entry struct {
	Match    openflow.Match
	Priority uint16
	OutPort  uint16
	Cookie   uint64

	// IdleTimeout expires the entry after inactivity; HardTimeout after
	// total lifetime. Zero disables the respective timeout.
	IdleTimeout time.Duration
	HardTimeout time.Duration

	Installed   time.Duration
	LastMatched time.Duration

	Packets uint64
	Bytes   uint64

	// NotifyRemoved requests a FlowRemoved message on expiry
	// (OFPFF_SEND_FLOW_REM).
	NotifyRemoved bool
}

// expired reports whether the entry has timed out at now, and the reason.
func (e *Entry) expired(now time.Duration) (uint8, bool) {
	if e.HardTimeout > 0 && now-e.Installed >= e.HardTimeout {
		return openflow.FlowRemovedReasonHardTimeout, true
	}
	if e.IdleTimeout > 0 && now-e.LastMatched >= e.IdleTimeout {
		return openflow.FlowRemovedReasonIdleTimeout, true
	}
	return 0, false
}

// PacketInFunc is invoked on a table miss.
type PacketInFunc func(sw *Switch, pkt openflow.Match, inPort uint16, now time.Duration)

// FlowRemovedFunc is invoked when an entry with NotifyRemoved expires or is
// deleted.
type FlowRemovedFunc func(sw *Switch, e *Entry, reason uint8, now time.Duration)

// Switch is a simulated OpenFlow datapath.
type Switch struct {
	// ID is the topology node id; DPID the OpenFlow datapath id.
	ID   string
	DPID uint64

	// Down marks a failed switch: it drops all packets and emits no
	// control traffic.
	Down bool

	table []*Entry

	onPacketIn    PacketInFunc
	onFlowRemoved FlowRemovedFunc
}

// New creates a switch with the given identity.
func New(id string, dpid uint64) *Switch {
	return &Switch{ID: id, DPID: dpid}
}

// OnPacketIn registers the table-miss callback.
func (s *Switch) OnPacketIn(fn PacketInFunc) { s.onPacketIn = fn }

// OnFlowRemoved registers the expiry callback.
func (s *Switch) OnFlowRemoved(fn FlowRemovedFunc) { s.onFlowRemoved = fn }

// TableSize returns the number of installed entries.
func (s *Switch) TableSize() int { return len(s.table) }

// Entries returns the installed entries (shared slice; treat as read-only).
func (s *Switch) Entries() []*Entry { return s.table }

// Install adds a rule to the flow table. Entries are kept sorted by
// descending priority (stable for equal priorities, so the earliest
// installed wins ties, matching common switch behavior).
func (s *Switch) Install(e *Entry, now time.Duration) error {
	if e == nil {
		return fmt.Errorf("switchsim: nil entry")
	}
	e.Installed = now
	e.LastMatched = now
	s.table = append(s.table, e)
	sort.SliceStable(s.table, func(i, j int) bool {
		return s.table[i].Priority > s.table[j].Priority
	})
	return nil
}

// Delete removes all entries whose match equals m exactly, invoking the
// FlowRemoved callback for entries that requested notification.
func (s *Switch) Delete(m openflow.Match, now time.Duration) int {
	var kept []*Entry
	removed := 0
	for _, e := range s.table {
		if e.Match == m {
			removed++
			if e.NotifyRemoved && s.onFlowRemoved != nil {
				s.onFlowRemoved(s, e, openflow.FlowRemovedReasonDelete, now)
			}
			continue
		}
		kept = append(kept, e)
	}
	s.table = kept
	return removed
}

// Lookup finds the highest-priority entry matching the packet, without
// updating counters.
func (s *Switch) Lookup(pkt openflow.Match) (*Entry, bool) {
	for _, e := range s.table {
		if e.Match.Matches(pkt) {
			return e, true
		}
	}
	return nil, false
}

// Process handles one packet arrival: on a hit it updates counters and
// returns the entry; on a miss it fires the PacketIn callback and returns
// ok=false. A down switch silently drops the packet.
func (s *Switch) Process(pkt openflow.Match, inPort uint16, bytes uint64, now time.Duration) (*Entry, bool) {
	if s.Down {
		return nil, false
	}
	e, ok := s.Lookup(pkt)
	if !ok {
		if s.onPacketIn != nil {
			s.onPacketIn(s, pkt, inPort, now)
		}
		return nil, false
	}
	e.LastMatched = now
	e.Packets++
	e.Bytes += bytes
	return e, true
}

// Account adds additional traffic volume (e.g. the remaining packets of a
// flow after its first packet) to an installed entry.
func (s *Switch) Account(e *Entry, packets, bytes uint64, now time.Duration) {
	if now > e.LastMatched {
		e.LastMatched = now
	}
	e.Packets += packets
	e.Bytes += bytes
}

// Sweep expires timed-out entries, firing FlowRemoved callbacks, and
// returns how many entries were removed. Call it periodically from the
// simulation clock.
func (s *Switch) Sweep(now time.Duration) int {
	if s.Down {
		return 0
	}
	var kept []*Entry
	removed := 0
	for _, e := range s.table {
		reason, dead := e.expired(now)
		if !dead {
			kept = append(kept, e)
			continue
		}
		removed++
		if e.NotifyRemoved && s.onFlowRemoved != nil {
			s.onFlowRemoved(s, e, reason, now)
		}
	}
	s.table = kept
	return removed
}

// NextExpiry returns the earliest time at which some entry could expire,
// or ok=false when no entry has a timeout armed.
func (s *Switch) NextExpiry() (time.Duration, bool) {
	var best time.Duration
	found := false
	consider := func(t time.Duration) {
		if !found || t < best {
			best = t
			found = true
		}
	}
	for _, e := range s.table {
		if e.HardTimeout > 0 {
			consider(e.Installed + e.HardTimeout)
		}
		if e.IdleTimeout > 0 {
			consider(e.LastMatched + e.IdleTimeout)
		}
	}
	return best, found
}
