// Package diff implements FlowDiff's diagnosing phase, step one (paper
// §IV-A): comparing the application and infrastructure signatures of a
// baseline log L1 against a current log L2 and emitting a typed set of
// behavioral changes. Unstable signature components (per the baseline's
// stability analysis) are excluded to avoid false alarms.
package diff

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/core/signature"
	"flowdiff/internal/obs"
	"flowdiff/internal/stats"
	"flowdiff/internal/topology"
)

// Thresholds tune change detection. Zero values take defaults.
type Thresholds struct {
	// CIChiSquare flags a node's component interaction when the χ²
	// fitness statistic between observed per-edge flow counts and the
	// counts expected under the baseline distribution exceeds it.
	// Default 12 (comfortably above the 1% critical values for the
	// 1-4 degrees of freedom typical of application nodes).
	CIChiSquare float64
	// DDPeakBins flags a delay distribution whose dominant peak moved by
	// more than this many bins. Default 1.
	DDPeakBins int
	// PCDelta flags a partial-correlation shift larger than this.
	// Default 0.35.
	PCDelta float64
	// FSFactor flags a relative change in per-edge flow rate beyond this
	// fraction. Default 0.5.
	FSFactor float64
	// FSSigma flags a mean flow-byte-count shift beyond this many
	// baseline standard deviations. Default 4.
	FSSigma float64
	// FSMinRel is the minimum relative byte-count shift considered
	// meaningful even when the baseline variance is tiny (loss-driven
	// retransmission inflation is a few percent for short flows).
	// Default 0.04.
	FSMinRel float64
	// FSNoiseSigma guards the flow-rate comparison against Poisson
	// counting noise: the absolute count difference must also exceed
	// this many standard deviations of the expected count. Default 5.
	FSNoiseSigma float64
	// ISLSigma flags an ISL mean that moved more than this many baseline
	// standard deviations. Default 4.
	ISLSigma float64
	// CRTSigma is the same for controller response time. Default 4.
	CRTSigma float64
	// MinFlows is the minimum number of observations on both sides for
	// scalar comparisons. Default 5.
	MinFlows int
}

func (t Thresholds) withDefaults() Thresholds {
	if t.CIChiSquare <= 0 {
		t.CIChiSquare = 12
	}
	if t.DDPeakBins <= 0 {
		t.DDPeakBins = 1
	}
	if t.PCDelta <= 0 {
		t.PCDelta = 0.35
	}
	if t.FSFactor <= 0 {
		t.FSFactor = 0.5
	}
	if t.FSSigma <= 0 {
		t.FSSigma = 4
	}
	if t.FSMinRel <= 0 {
		t.FSMinRel = 0.04
	}
	if t.FSNoiseSigma <= 0 {
		t.FSNoiseSigma = 5
	}
	if t.ISLSigma <= 0 {
		t.ISLSigma = 4
	}
	if t.CRTSigma <= 0 {
		t.CRTSigma = 4
	}
	if t.MinFlows <= 0 {
		t.MinFlows = 5
	}
	return t
}

// Change is one detected behavioral difference between L1 and L2.
type Change struct {
	// Kind is the signature component that changed.
	Kind signature.Kind
	// Group is the application group key ("" for infrastructure changes).
	Group string
	// Description is a human-readable summary.
	Description string
	// Components are the involved component ids (hosts, switches) for
	// localization ranking.
	Components []string
	// Before/After carry the compared values where meaningful.
	Before, After float64
	// At anchors the change in L2's time (first observation of a new
	// edge; otherwise L2's start).
	At time.Duration
}

// Compare diffs application and infrastructure signatures. baseStab may
// be nil to compare everything regardless of stability.
func Compare(
	base, cur []signature.AppSignature,
	baseInf, curInf signature.InfraSignature,
	baseStab map[string]signature.Stability,
	th Thresholds,
) []Change {
	return CompareContext(context.Background(), base, cur, baseInf, curInf, baseStab, th)
}

// CompareContext is Compare with the span "diff.compare" timed and the
// counter "diff.changes" accumulated into ctx's obs registry. The
// comparison itself is a single pass over already-built signatures and
// is not cancellable mid-flight; ctx only carries the registry.
func CompareContext(
	ctx context.Context,
	base, cur []signature.AppSignature,
	baseInf, curInf signature.InfraSignature,
	baseStab map[string]signature.Stability,
	th Thresholds,
) []Change {
	sp := obs.Span(ctx, "diff.compare")
	changes := compare(base, cur, baseInf, curInf, baseStab, th)
	sp.End()
	obs.From(ctx).Counter("diff.changes").Add(int64(len(changes)))
	return changes
}

func compare(
	base, cur []signature.AppSignature,
	baseInf, curInf signature.InfraSignature,
	baseStab map[string]signature.Stability,
	th Thresholds,
) []Change {
	th = th.withDefaults()
	var changes []Change

	baseGroups := make([]appgroup.Group, len(base))
	for i, s := range base {
		baseGroups[i] = s.Group
	}
	curGroups := make([]appgroup.Group, len(cur))
	for i, s := range cur {
		curGroups[i] = s.Group
	}
	sigByKey := func(sigs []signature.AppSignature) map[string]signature.AppSignature {
		m := make(map[string]signature.AppSignature, len(sigs))
		for _, s := range sigs {
			m[s.Group.Key()] = s
		}
		return m
	}
	baseBy, curBy := sigByKey(base), sigByKey(cur)

	// The union of baseline edges distinguishes genuinely new
	// communication from group fragmentation (a failed hub splits one
	// group into several; the fragments' edges are not new).
	baseEdges := make(map[signature.Edge]bool)
	for _, s := range base {
		for e := range s.CG {
			baseEdges[e] = true
		}
	}
	// Each baseline group is compared against the union of all current
	// signatures: when a failed hub fragments a group, the surviving
	// edges and nodes live in other (unmatched) groups, and comparing
	// only group-to-group would misreport them as gone.
	curUnion := unionSignature(cur)

	for _, pair := range appgroup.Match(baseGroups, curGroups) {
		switch {
		case pair.New:
			c := curBy[pair.Cur.Key()]
			changes = append(changes, newGroupChanges(c, baseEdges)...)
		case !pair.Matched:
			b := baseBy[pair.Base.Key()]
			changes = append(changes, Change{
				Kind:        signature.KindCG,
				Group:       b.Group.Key(),
				Description: fmt.Sprintf("application group %s disappeared", b.Group.Key()),
				Components:  nodeStrings(b.Group.Nodes),
			})
		default:
			b := baseBy[pair.Base.Key()]
			var st *signature.Stability
			if baseStab != nil {
				if s, ok := baseStab[b.Group.Key()]; ok {
					st = &s
				}
			}
			changes = append(changes, compareGroup(b, curUnion, st, baseEdges, th)...)
		}
	}

	changes = append(changes, compareInfra(baseInf, curInf, th)...)
	sort.SliceStable(changes, func(i, j int) bool {
		if changes[i].Kind != changes[j].Kind {
			return changes[i].Kind < changes[j].Kind
		}
		return changes[i].Description < changes[j].Description
	})
	return changes
}

func nodeStrings[T ~string](ns []T) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = string(n)
	}
	return out
}

func newGroupChanges(c signature.AppSignature, baseEdges map[signature.Edge]bool) []Change {
	var out []Change
	for _, e := range sortedEdges(c.CG) {
		if baseEdges[e] {
			continue // fragmentation artifact, not new communication
		}
		out = append(out, Change{
			Kind:        signature.KindCG,
			Group:       c.Group.Key(),
			Description: fmt.Sprintf("new edge %s (new group)", e),
			Components:  []string{string(e.Src), string(e.Dst)},
			At:          c.FS[e].FirstSeen,
		})
	}
	return out
}

func sortedEdges(m map[signature.Edge]bool) []signature.Edge {
	out := make([]signature.Edge, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// sortedPairKeys returns m's EdgePair keys in lexical order. The changes
// emitted per pair are later stable-sorted by (Kind, Description) only,
// so iterating the map directly would let Go's randomized order leak
// into tie-broken report positions.
func sortedPairKeys[V any](m map[signature.EdgePair]V) []signature.EdgePair {
	out := make([]signature.EdgePair, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.In.Src != b.In.Src {
			return a.In.Src < b.In.Src
		}
		if a.In.Dst != b.In.Dst {
			return a.In.Dst < b.In.Dst
		}
		if a.Out.Src != b.Out.Src {
			return a.Out.Src < b.Out.Src
		}
		return a.Out.Dst < b.Out.Dst
	})
	return out
}

// unionSignature merges the per-group signatures of one log into a single
// view (groups partition nodes, so the merge has no collisions).
func unionSignature(sigs []signature.AppSignature) signature.AppSignature {
	u := signature.AppSignature{
		CG: make(map[signature.Edge]bool),
		FS: make(map[signature.Edge]signature.FlowStats),
		CI: make(map[topology.NodeID]signature.CISig),
		DD: make(map[signature.EdgePair]signature.DDSig),
		PC: make(map[signature.EdgePair]float64),
	}
	for _, s := range sigs {
		if s.LogDuration > u.LogDuration {
			u.LogDuration = s.LogDuration
		}
		for e := range s.CG {
			u.CG[e] = true
		}
		for e, fs := range s.FS {
			u.FS[e] = fs
		}
		for n, ci := range s.CI {
			u.CI[n] = ci
		}
		for p, dd := range s.DD {
			u.DD[p] = dd
		}
		for p, pc := range s.PC {
			u.PC[p] = pc
		}
	}
	return u
}

func compareGroup(b, c signature.AppSignature, st *signature.Stability, baseEdges map[signature.Edge]bool, th Thresholds) []Change {
	var out []Change
	gk := b.Group.Key()

	// CG: graph diff (skipped when the baseline CG itself was unstable).
	if st == nil || st.CGStable {
		for _, e := range sortedEdges(b.CG) {
			if c.CG[e] {
				continue
			}
			// A rarely used edge can be absent from a short interval by
			// chance: its expected occurrence count must be meaningful.
			expected := float64(b.FS[e].FlowCount)
			if b.LogDuration > 0 && c.LogDuration > 0 {
				expected *= c.LogDuration.Seconds() / b.LogDuration.Seconds()
			}
			if expected < float64(th.MinFlows) {
				continue
			}
			out = append(out, Change{
				Kind:        signature.KindCG,
				Group:       gk,
				Description: fmt.Sprintf("edge %s missing", e),
				Components:  []string{string(e.Src), string(e.Dst)},
			})
		}
		for _, e := range sortedEdges(c.CG) {
			// c is the union view: only report edges that touch this
			// group's members and are new to the whole baseline.
			if baseEdges[e] {
				continue
			}
			if !b.Group.Contains(e.Src) && !b.Group.Contains(e.Dst) {
				continue
			}
			out = append(out, Change{
				Kind:        signature.KindCG,
				Group:       gk,
				Description: fmt.Sprintf("new edge %s", e),
				Components:  []string{string(e.Src), string(e.Dst)},
				At:          c.FS[e].FirstSeen,
			})
		}
	}

	// CI: χ² fitness test per node (paper §IV-A): observed flow counts
	// per adjacent edge against the counts expected under the baseline
	// distribution. Using counts (not fractions) makes the statistic
	// noise-aware: sparse intervals produce small χ² values naturally.
	for _, node := range b.Group.Nodes {
		if st != nil && !st.StableCI(node) {
			continue
		}
		ref, ok := b.CI[node]
		if !ok || len(ref.Edges) == 0 {
			continue
		}
		got := c.CI[node]
		obs := make([]float64, len(ref.Edges))
		var curTotal float64
		for i, e := range ref.Edges {
			for j, ge := range got.Edges {
				if ge == e {
					obs[i] = got.Counts[j]
					curTotal += got.Counts[j]
					break
				}
			}
		}
		if int(curTotal) < th.MinFlows {
			continue // not enough current observations to judge
		}
		expected := make([]float64, len(ref.Edges))
		for i, f := range ref.Fractions {
			expected[i] = f * curTotal
		}
		x2, err := stats.ChiSquare(obs, expected)
		if err == nil && x2 > th.CIChiSquare {
			out = append(out, Change{
				Kind:        signature.KindCI,
				Group:       gk,
				Description: fmt.Sprintf("component interaction at %s shifted (chi2=%.3f)", node, x2),
				Components:  []string{string(node)},
				Before:      0,
				After:       x2,
			})
		}
	}

	// DD: dominant peak shift per adjacent edge pair.
	for _, p := range sortedPairKeys(b.DD) {
		ref := b.DD[p]
		if st != nil && !st.DDPairs[p] {
			continue
		}
		got, ok := c.DD[p]
		if !ok || got.Samples < th.MinFlows || ref.Samples < th.MinFlows {
			continue
		}
		if abs(got.Peak.Bucket-ref.Peak.Bucket) > th.DDPeakBins {
			out = append(out, Change{
				Kind:  signature.KindDD,
				Group: gk,
				Description: fmt.Sprintf("delay peak %s|%s moved %.0fms -> %.0fms",
					p.In, p.Out, ms(ref.Peak.Value), ms(got.Peak.Value)),
				Components: []string{string(p.In.Dst)},
				Before:     ref.Peak.Value,
				After:      got.Peak.Value,
			})
		}
	}

	// PC: correlation shift per adjacent edge pair.
	for _, p := range sortedPairKeys(b.PC) {
		ref := b.PC[p]
		if st != nil && !st.PCPairs[p] {
			continue
		}
		got, ok := c.PC[p]
		if !ok {
			continue
		}
		if math.Abs(got-ref) > th.PCDelta {
			out = append(out, Change{
				Kind:  signature.KindPC,
				Group: gk,
				Description: fmt.Sprintf("correlation %s|%s shifted %.2f -> %.2f",
					p.In, p.Out, ref, got),
				Components: []string{string(p.In.Dst)},
				Before:     ref,
				After:      got,
			})
		}
	}

	// FS: per-edge mean bytes and flow rate.
	for _, e := range sortedEdges(b.CG) {
		bf, cf := b.FS[e], c.FS[e]
		if bf.Bytes.Count >= th.MinFlows && cf.Bytes.Count >= th.MinFlows {
			slack := th.FSSigma * bf.Bytes.StdDev
			if floor := th.FSMinRel * bf.Bytes.Mean; slack < floor {
				slack = floor
			}
			if math.Abs(cf.Bytes.Mean-bf.Bytes.Mean) > slack {
				out = append(out, Change{
					Kind:        signature.KindFS,
					Group:       gk,
					Description: fmt.Sprintf("mean flow bytes on %s: %.0f -> %.0f", e, bf.Bytes.Mean, cf.Bytes.Mean),
					Components:  []string{string(e.Src), string(e.Dst)},
					Before:      bf.Bytes.Mean,
					After:       cf.Bytes.Mean,
				})
			}
		}
		if bf.FlowCount >= th.MinFlows && b.LogDuration > 0 && c.LogDuration > 0 {
			br := float64(bf.FlowCount) / b.LogDuration.Seconds()
			cr := float64(cf.FlowCount) / c.LogDuration.Seconds()
			// Beyond the relative threshold, the raw count difference must
			// clear Poisson noise on the expected count.
			expected := br * c.LogDuration.Seconds()
			noiseOK := math.Abs(float64(cf.FlowCount)-expected) > th.FSNoiseSigma*math.Sqrt(expected)
			if relDelta(cr, br) > th.FSFactor && noiseOK {
				out = append(out, Change{
					Kind:        signature.KindFS,
					Group:       gk,
					Description: fmt.Sprintf("flow rate on %s: %.2f/s -> %.2f/s", e, br, cr),
					Components:  []string{string(e.Src), string(e.Dst)},
					Before:      br,
					After:       cr,
				})
			}
		}
	}
	return out
}

func compareInfra(b, c signature.InfraSignature, th Thresholds) []Change {
	var out []Change

	// PT: switch adjacency diff. A missing adjacency is only meaningful
	// when the baseline observed it often enough that its absence from
	// the current interval cannot be traffic noise.
	for _, p := range b.AdjacencyEdges() {
		if _, ok := c.SwitchAdj[p]; ok {
			continue
		}
		expected := float64(b.SwitchAdj[p])
		if b.LogDuration > 0 && c.LogDuration > 0 {
			expected *= c.LogDuration.Seconds() / b.LogDuration.Seconds()
		}
		if expected < float64(th.MinFlows) {
			continue
		}
		out = append(out, Change{
			Kind:        signature.KindPT,
			Description: fmt.Sprintf("switch adjacency %s->%s missing", p.From, p.To),
			Components:  []string{p.From, p.To},
		})
	}
	for _, p := range c.AdjacencyEdges() {
		if _, ok := b.SwitchAdj[p]; !ok {
			out = append(out, Change{
				Kind:        signature.KindPT,
				Description: fmt.Sprintf("new switch adjacency %s->%s", p.From, p.To),
				Components:  []string{p.From, p.To},
			})
		}
	}
	// PT: host attachment moved (e.g. VM migration).
	hosts := make([]string, 0, len(b.HostAttach))
	for h := range b.HostAttach {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		bsw := b.HostAttach[h]
		csw, ok := c.HostAttach[h]
		if !ok || csw == bsw {
			continue
		}
		// Both sides must have voted with enough observations: entries
		// surviving from a previous interval can make a mid-path switch
		// report a flow first, so sparse votes are unreliable.
		if b.HostAttachCount[h] < th.MinFlows || c.HostAttachCount[h] < th.MinFlows {
			continue
		}
		out = append(out, Change{
			Kind:        signature.KindPT,
			Description: fmt.Sprintf("host %s moved from %s to %s", h, bsw, csw),
			Components:  []string{h, bsw, csw},
		})
	}

	// ISL per switch pair.
	pairs := make([]signature.SwitchPair, 0, len(b.ISL))
	for p := range b.ISL {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].From != pairs[j].From {
			return pairs[i].From < pairs[j].From
		}
		return pairs[i].To < pairs[j].To
	})
	for _, p := range pairs {
		ref := b.ISL[p]
		got, ok := c.ISL[p]
		if !ok || ref.Count < th.MinFlows || got.Count < th.MinFlows {
			continue
		}
		slack := th.ISLSigma * ref.StdDev
		if minSlack := ref.Mean * 0.25; slack < minSlack {
			slack = minSlack
		}
		if math.Abs(got.Mean-ref.Mean) > slack {
			out = append(out, Change{
				Kind: signature.KindISL,
				Description: fmt.Sprintf("inter-switch latency %s->%s: %.2fms -> %.2fms",
					p.From, p.To, ms(ref.Mean), ms(got.Mean)),
				Components: []string{p.From, p.To},
				Before:     ref.Mean,
				After:      got.Mean,
			})
		}
	}

	// CRT.
	if b.CRT.Count >= th.MinFlows && c.CRT.Count >= th.MinFlows {
		slack := th.CRTSigma * b.CRT.StdDev
		if minSlack := b.CRT.Mean * 0.5; slack < minSlack {
			slack = minSlack
		}
		if math.Abs(c.CRT.Mean-b.CRT.Mean) > slack {
			out = append(out, Change{
				Kind: signature.KindCRT,
				Description: fmt.Sprintf("controller response time: %.3fms -> %.3fms",
					ms(b.CRT.Mean), ms(c.CRT.Mean)),
				Components: []string{"controller"},
				Before:     b.CRT.Mean,
				After:      c.CRT.Mean,
			})
		}
	}
	return out
}

func relDelta(a, b float64) float64 {
	if stats.NearZero(b) {
		if stats.NearZero(a) {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func ms(ns float64) float64 { return ns / float64(time.Millisecond) }

// Kinds returns the distinct signature kinds present in changes.
func Kinds(changes []Change) map[signature.Kind]bool {
	out := make(map[signature.Kind]bool)
	for _, c := range changes {
		out[c.Kind] = true
	}
	return out
}
