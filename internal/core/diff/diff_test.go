package diff

import (
	"strings"
	"testing"
	"time"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/core/signature"
	"flowdiff/internal/stats"
	"flowdiff/internal/topology"
)

func edge(a, b string) signature.Edge {
	return signature.Edge{Src: topology.NodeID(a), Dst: topology.NodeID(b)}
}

// sigWith builds a minimal app signature over A->B->C.
func sigWith() signature.AppSignature {
	s := signature.AppSignature{
		Group: appgroup.Group{
			Nodes: []topology.NodeID{"A", "B", "C"},
			Edges: []signature.Edge{edge("A", "B"), edge("B", "C")},
		},
		LogDuration: time.Minute,
		CG:          map[signature.Edge]bool{edge("A", "B"): true, edge("B", "C"): true},
		FS: map[signature.Edge]signature.FlowStats{
			edge("A", "B"): {FlowCount: 60, Bytes: stats.Summarize(repeat(2048, 60))},
			edge("B", "C"): {FlowCount: 60, Bytes: stats.Summarize(repeat(4096, 60))},
		},
		CI: map[topology.NodeID]signature.CISig{
			"B": {
				Edges:     []signature.Edge{edge("A", "B"), edge("B", "C")},
				Counts:    []float64{60, 60},
				Fractions: []float64{0.5, 0.5},
			},
		},
		DD: map[signature.EdgePair]signature.DDSig{},
		PC: map[signature.EdgePair]float64{},
	}
	pair := signature.EdgePair{In: edge("A", "B"), Out: edge("B", "C")}
	h, _ := stats.NewHistogram(0, float64(20*time.Millisecond))
	for i := 0; i < 50; i++ {
		h.Add(float64(60 * time.Millisecond))
	}
	peak, _ := h.DominantPeak()
	s.DD[pair] = signature.DDSig{Histogram: h, Peak: peak, Samples: 50}
	s.PC[pair] = 0.9
	return s
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func compareOne(t *testing.T, mutate func(*signature.AppSignature)) []Change {
	t.Helper()
	base := sigWith()
	cur := sigWith()
	if mutate != nil {
		mutate(&cur)
	}
	var inf signature.InfraSignature
	return Compare(
		[]signature.AppSignature{base},
		[]signature.AppSignature{cur},
		inf, inf, nil, Thresholds{},
	)
}

func TestIdenticalSignaturesNoChanges(t *testing.T) {
	if changes := compareOne(t, nil); len(changes) != 0 {
		t.Errorf("identical signatures produced changes: %+v", changes)
	}
}

func TestCGEdgeRemoved(t *testing.T) {
	changes := compareOne(t, func(s *signature.AppSignature) {
		delete(s.CG, edge("B", "C"))
	})
	found := false
	for _, c := range changes {
		if c.Kind == signature.KindCG && strings.Contains(c.Description, "missing") {
			found = true
			if c.Components[0] != "B" || c.Components[1] != "C" {
				t.Errorf("components = %v", c.Components)
			}
		}
	}
	if !found {
		t.Errorf("missing-edge change not reported: %+v", changes)
	}
}

func TestCGEdgeAddedCarriesTimestamp(t *testing.T) {
	changes := compareOne(t, func(s *signature.AppSignature) {
		e := edge("B", "D")
		s.CG[e] = true
		s.FS[e] = signature.FlowStats{FlowCount: 5, FirstSeen: 42 * time.Second}
	})
	found := false
	for _, c := range changes {
		if c.Kind == signature.KindCG && strings.Contains(c.Description, "new edge") {
			found = true
			if c.At != 42*time.Second {
				t.Errorf("At = %v, want 42s", c.At)
			}
		}
	}
	if !found {
		t.Error("new-edge change not reported")
	}
}

func TestCIShiftDetected(t *testing.T) {
	changes := compareOne(t, func(s *signature.AppSignature) {
		ci := s.CI["B"]
		ci.Counts = []float64{114, 6}
		ci.Fractions = []float64{0.95, 0.05}
		s.CI["B"] = ci
	})
	found := false
	for _, c := range changes {
		if c.Kind == signature.KindCI && c.Components[0] == "B" {
			found = true
		}
	}
	if !found {
		t.Errorf("CI shift not reported: %+v", changes)
	}
}

func TestDDPeakShiftDetected(t *testing.T) {
	changes := compareOne(t, func(s *signature.AppSignature) {
		pair := signature.EdgePair{In: edge("A", "B"), Out: edge("B", "C")}
		h, _ := stats.NewHistogram(0, float64(20*time.Millisecond))
		for i := 0; i < 50; i++ {
			h.Add(float64(120 * time.Millisecond)) // moved 3 bins
		}
		peak, _ := h.DominantPeak()
		s.DD[pair] = signature.DDSig{Histogram: h, Peak: peak, Samples: 50}
	})
	found := false
	for _, c := range changes {
		if c.Kind == signature.KindDD {
			found = true
			if c.Components[0] != "B" {
				t.Errorf("DD change should implicate the shared node B, got %v", c.Components)
			}
		}
	}
	if !found {
		t.Errorf("DD shift not reported: %+v", changes)
	}
}

func TestDDSmallShiftIgnored(t *testing.T) {
	changes := compareOne(t, func(s *signature.AppSignature) {
		pair := signature.EdgePair{In: edge("A", "B"), Out: edge("B", "C")}
		h, _ := stats.NewHistogram(0, float64(20*time.Millisecond))
		for i := 0; i < 50; i++ {
			h.Add(float64(75 * time.Millisecond)) // one bin over: within slack
		}
		peak, _ := h.DominantPeak()
		s.DD[pair] = signature.DDSig{Histogram: h, Peak: peak, Samples: 50}
	})
	for _, c := range changes {
		if c.Kind == signature.KindDD {
			t.Errorf("one-bin DD shift should be tolerated: %+v", c)
		}
	}
}

func TestPCShiftDetected(t *testing.T) {
	changes := compareOne(t, func(s *signature.AppSignature) {
		pair := signature.EdgePair{In: edge("A", "B"), Out: edge("B", "C")}
		s.PC[pair] = 0.1
	})
	found := false
	for _, c := range changes {
		if c.Kind == signature.KindPC {
			found = true
		}
	}
	if !found {
		t.Errorf("PC shift not reported: %+v", changes)
	}
}

func TestFSByteShiftDetected(t *testing.T) {
	changes := compareOne(t, func(s *signature.AppSignature) {
		fs := s.FS[edge("A", "B")]
		fs.Bytes = stats.Summarize(repeat(2048*1.2, 60)) // +20%
		s.FS[edge("A", "B")] = fs
	})
	found := false
	for _, c := range changes {
		if c.Kind == signature.KindFS && strings.Contains(c.Description, "bytes") {
			found = true
		}
	}
	if !found {
		t.Errorf("FS byte shift not reported: %+v", changes)
	}
}

func TestFSRateShiftDetected(t *testing.T) {
	changes := compareOne(t, func(s *signature.AppSignature) {
		fs := s.FS[edge("A", "B")]
		fs.FlowCount = 10 // 60 -> 10 flows in the same duration
		s.FS[edge("A", "B")] = fs
	})
	found := false
	for _, c := range changes {
		if c.Kind == signature.KindFS && strings.Contains(c.Description, "rate") {
			found = true
		}
	}
	if !found {
		t.Errorf("FS rate shift not reported: %+v", changes)
	}
}

func TestStabilityFilterSuppressesUnstableComponents(t *testing.T) {
	base := sigWith()
	cur := sigWith()
	ci := cur.CI["B"]
	ci.Counts = []float64{114, 6}
	ci.Fractions = []float64{0.95, 0.05}
	cur.CI["B"] = ci
	stab := map[string]signature.Stability{
		base.Group.Key(): {
			CGStable: true,
			CINodes:  map[topology.NodeID]bool{"B": false}, // CI at B unstable
			DDPairs:  map[signature.EdgePair]bool{},
			PCPairs:  map[signature.EdgePair]bool{},
		},
	}
	var inf signature.InfraSignature
	changes := Compare([]signature.AppSignature{base}, []signature.AppSignature{cur}, inf, inf, stab, Thresholds{})
	for _, c := range changes {
		if c.Kind == signature.KindCI {
			t.Errorf("unstable CI should not raise alarms: %+v", c)
		}
	}
}

func TestGroupDisappeared(t *testing.T) {
	base := sigWith()
	var inf signature.InfraSignature
	changes := Compare([]signature.AppSignature{base}, nil, inf, inf, nil, Thresholds{})
	if len(changes) == 0 {
		t.Fatal("vanished group not reported")
	}
	if changes[0].Kind != signature.KindCG {
		t.Errorf("kind = %v", changes[0].Kind)
	}
}

func TestNewGroupReported(t *testing.T) {
	cur := sigWith()
	var inf signature.InfraSignature
	changes := Compare(nil, []signature.AppSignature{cur}, inf, inf, nil, Thresholds{})
	if len(changes) != 2 { // two edges of the new group
		t.Fatalf("got %d changes, want 2: %+v", len(changes), changes)
	}
	for _, c := range changes {
		if !strings.Contains(c.Description, "new group") {
			t.Errorf("description = %q", c.Description)
		}
	}
}

func TestInfraISLAndCRT(t *testing.T) {
	mkInf := func(islMean, crtMean float64) signature.InfraSignature {
		return signature.InfraSignature{
			SwitchAdj:       map[signature.SwitchPair]int{{From: "sw1", To: "sw2"}: 10},
			HostAttach:      map[string]string{"A": "sw1"},
			HostAttachCount: map[string]int{"A": 40},
			ISL: map[signature.SwitchPair]stats.Summary{
				{From: "sw1", To: "sw2"}: {Count: 50, Mean: islMean, StdDev: islMean * 0.02},
			},
			CRT: stats.Summary{Count: 50, Mean: crtMean, StdDev: crtMean * 0.05},
		}
	}
	base := mkInf(float64(2*time.Millisecond), float64(200*time.Microsecond))

	t.Run("no change", func(t *testing.T) {
		if cs := Compare(nil, nil, base, mkInf(float64(2*time.Millisecond), float64(200*time.Microsecond)), nil, Thresholds{}); len(cs) != 0 {
			t.Errorf("identical infra produced %+v", cs)
		}
	})
	t.Run("ISL shift", func(t *testing.T) {
		cs := Compare(nil, nil, base, mkInf(float64(10*time.Millisecond), float64(200*time.Microsecond)), nil, Thresholds{})
		found := false
		for _, c := range cs {
			if c.Kind == signature.KindISL {
				found = true
			}
		}
		if !found {
			t.Errorf("ISL shift not reported: %+v", cs)
		}
	})
	t.Run("CRT shift", func(t *testing.T) {
		cs := Compare(nil, nil, base, mkInf(float64(2*time.Millisecond), float64(5*time.Millisecond)), nil, Thresholds{})
		found := false
		for _, c := range cs {
			if c.Kind == signature.KindCRT {
				found = true
			}
		}
		if !found {
			t.Errorf("CRT shift not reported: %+v", cs)
		}
	})
	t.Run("adjacency diff", func(t *testing.T) {
		cur := mkInf(float64(2*time.Millisecond), float64(200*time.Microsecond))
		delete(cur.SwitchAdj, signature.SwitchPair{From: "sw1", To: "sw2"})
		cur.SwitchAdj[signature.SwitchPair{From: "sw1", To: "sw3"}] = 5
		cs := Compare(nil, nil, base, cur, nil, Thresholds{})
		var missing, added bool
		for _, c := range cs {
			if c.Kind == signature.KindPT {
				if strings.Contains(c.Description, "missing") {
					missing = true
				}
				if strings.Contains(c.Description, "new") {
					added = true
				}
			}
		}
		if !missing || !added {
			t.Errorf("PT diff incomplete: %+v", cs)
		}
	})
	t.Run("host moved", func(t *testing.T) {
		cur := mkInf(float64(2*time.Millisecond), float64(200*time.Microsecond))
		cur.HostAttach["A"] = "sw2"
		cs := Compare(nil, nil, base, cur, nil, Thresholds{})
		found := false
		for _, c := range cs {
			if c.Kind == signature.KindPT && strings.Contains(c.Description, "moved") {
				found = true
			}
		}
		if !found {
			t.Errorf("host move not reported: %+v", cs)
		}
	})
}

func TestChangesDeterministicOrder(t *testing.T) {
	mutate := func(s *signature.AppSignature) {
		delete(s.CG, edge("B", "C"))
		e := edge("B", "D")
		s.CG[e] = true
		s.FS[e] = signature.FlowStats{FlowCount: 5}
		ci := s.CI["B"]
		ci.Fractions = []float64{0.95, 0.05}
		s.CI["B"] = ci
	}
	a := compareOne(t, mutate)
	b := compareOne(t, mutate)
	if len(a) != len(b) {
		t.Fatal("nondeterministic change count")
	}
	for i := range a {
		if a[i].Description != b[i].Description {
			t.Fatal("nondeterministic change order")
		}
	}
}
