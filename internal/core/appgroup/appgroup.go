// Package appgroup discovers application groups (paper §III-B): connected
// components of the host-level communication graph built from control
// traffic, split at operator-marked special-purpose service nodes (DNS,
// NFS, NTP, …) so that unrelated applications sharing a storage or name
// service are not merged into one group.
package appgroup

import (
	"fmt"
	"net/netip"
	"sort"

	"flowdiff/internal/flowlog"
	"flowdiff/internal/topology"
)

// Edge is a directed host-to-host communication edge.
type Edge struct {
	Src, Dst topology.NodeID
}

// String renders "src->dst".
func (e Edge) String() string { return fmt.Sprintf("%s->%s", e.Src, e.Dst) }

// Group is one application group: the nodes of a connected communication
// component (excluding special-purpose nodes) plus its internal edges.
type Group struct {
	// Nodes are the member hosts, sorted.
	Nodes []topology.NodeID
	// Edges are the directed communication edges among members and
	// to/from special nodes observed for this group.
	Edges []Edge
}

// Key returns a canonical identity for the group (its sorted member
// list), stable across logs so groups can be matched between L1 and L2.
//
// Group identity must survive small membership changes (a crashed member
// disappears from L2); Match handles that by overlap, Key by exact set.
func (g Group) Key() string {
	out := ""
	for i, n := range g.Nodes {
		if i > 0 {
			out += ","
		}
		out += string(n)
	}
	return out
}

// Contains reports whether the group includes the host.
func (g Group) Contains(id topology.NodeID) bool {
	for _, n := range g.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// Resolver maps flow addresses to node identities. Unknown addresses
// (e.g. external hosts in an unauthorized-access scenario) are given
// synthetic "ip:<addr>" ids so they still appear in the graph.
type Resolver struct {
	topo *topology.Topology
}

// NewResolver builds a resolver over a topology.
func NewResolver(topo *topology.Topology) *Resolver {
	return &Resolver{topo: topo}
}

// Node resolves an address to a node id.
func (r *Resolver) Node(addr netip.Addr) topology.NodeID {
	if r.topo != nil {
		if h, ok := r.topo.HostByAddr(addr); ok {
			return h.ID
		}
	}
	return topology.NodeID("ip:" + addr.String())
}

// BuildEdges extracts the distinct directed host edges from a log's
// PacketIn traffic.
func BuildEdges(log *flowlog.Log, r *Resolver) map[Edge]int {
	edges := make(map[Edge]int)
	for _, key := range log.Flows() {
		e := Edge{Src: r.Node(key.Src), Dst: r.Node(key.Dst)}
		edges[e]++
	}
	return edges
}

// Discover partitions the communication graph into application groups.
// Special-purpose nodes act as boundaries: they do not merge components
// and belong to no group, but edges touching them are attributed to the
// group of their non-special endpoint (paper §III-B).
func Discover(log *flowlog.Log, r *Resolver, special map[topology.NodeID]bool) []Group {
	return DiscoverFromEdges(BuildEdges(log, r), special)
}

// SameEdgeSet reports whether two BuildEdges results contain the same
// edges. Counts are ignored: group discovery depends only on which edges
// exist, so two logs with equal edge sets discover identical groups —
// the invariant behind Monitor's cross-window group cache.
func SameEdgeSet(a, b map[Edge]int) bool {
	if len(a) != len(b) {
		return false
	}
	for e := range a {
		if _, ok := b[e]; !ok {
			return false
		}
	}
	return true
}

// DiscoverFromEdges is Discover over an already-built edge set; its
// output is a pure function of the edge set and the special-node marks.
func DiscoverFromEdges(edges map[Edge]int, special map[topology.NodeID]bool) []Group {
	// Union-find over non-special nodes.
	parent := make(map[topology.NodeID]topology.NodeID)
	var find func(topology.NodeID) topology.NodeID
	find = func(x topology.NodeID) topology.NodeID {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b topology.NodeID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	for e := range edges {
		sSpecial, dSpecial := special[e.Src], special[e.Dst]
		switch {
		case sSpecial && dSpecial:
			// Service-to-service traffic joins no group.
		case sSpecial:
			find(e.Dst)
		case dSpecial:
			find(e.Src)
		default:
			union(e.Src, e.Dst)
		}
	}

	members := make(map[topology.NodeID][]topology.NodeID)
	for n := range parent {
		root := find(n)
		members[root] = append(members[root], n)
	}

	var groups []Group
	for _, nodes := range members {
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		inGroup := make(map[topology.NodeID]bool, len(nodes))
		for _, n := range nodes {
			inGroup[n] = true
		}
		var ge []Edge
		for e := range edges {
			if inGroup[e.Src] || inGroup[e.Dst] {
				ge = append(ge, e)
			}
		}
		sort.Slice(ge, func(i, j int) bool {
			if ge[i].Src != ge[j].Src {
				return ge[i].Src < ge[j].Src
			}
			return ge[i].Dst < ge[j].Dst
		})
		groups = append(groups, Group{Nodes: nodes, Edges: ge})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key() < groups[j].Key() })
	return groups
}

// Match pairs groups from two logs by maximal member overlap, so a group
// that lost or gained a host (crash, scale-out) is still compared against
// its counterpart. Unmatched groups pair with a zero Group.
func Match(base, cur []Group) []GroupPair {
	usedCur := make([]bool, len(cur))
	var pairs []GroupPair
	for _, b := range base {
		bestIdx, bestOverlap := -1, 0
		for i, c := range cur {
			if usedCur[i] {
				continue
			}
			ov := overlap(b, c)
			if ov > bestOverlap {
				bestOverlap, bestIdx = ov, i
			}
		}
		if bestIdx >= 0 {
			usedCur[bestIdx] = true
			pairs = append(pairs, GroupPair{Base: b, Cur: cur[bestIdx], Matched: true})
		} else {
			pairs = append(pairs, GroupPair{Base: b})
		}
	}
	for i, c := range cur {
		if !usedCur[i] {
			pairs = append(pairs, GroupPair{Cur: c, New: true})
		}
	}
	return pairs
}

// GroupPair is a base/current group correspondence.
type GroupPair struct {
	Base, Cur Group
	// Matched means both sides are present; New means the group only
	// exists in the current log.
	Matched bool
	New     bool
}

func overlap(a, b Group) int {
	n := 0
	for _, x := range a.Nodes {
		if b.Contains(x) {
			n++
		}
	}
	return n
}
