// Package appgroup discovers application groups (paper §III-B): connected
// components of the host-level communication graph built from control
// traffic, split at operator-marked special-purpose service nodes (DNS,
// NFS, NTP, …) so that unrelated applications sharing a storage or name
// service are not merged into one group.
package appgroup

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"flowdiff/internal/flowlog"
	"flowdiff/internal/topology"
)

// Edge is a directed host-to-host communication edge.
type Edge struct {
	Src, Dst topology.NodeID
}

// String renders "src->dst".
func (e Edge) String() string { return fmt.Sprintf("%s->%s", e.Src, e.Dst) }

// Group is one application group: the nodes of a connected communication
// component (excluding special-purpose nodes) plus its internal edges.
type Group struct {
	// Nodes are the member hosts, sorted.
	Nodes []topology.NodeID
	// Edges are the directed communication edges among members and
	// to/from special nodes observed for this group.
	Edges []Edge
}

// Key returns a canonical identity for the group (its sorted member
// list), stable across logs so groups can be matched between L1 and L2.
//
// Group identity must survive small membership changes (a crashed member
// disappears from L2); Match handles that by overlap, Key by exact set.
func (g Group) Key() string {
	n := 0
	for _, id := range g.Nodes {
		n += len(id) + 1
	}
	var sb strings.Builder
	sb.Grow(n)
	for i, id := range g.Nodes {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(string(id))
	}
	return sb.String()
}

// Contains reports whether the group includes the host.
func (g Group) Contains(id topology.NodeID) bool {
	for _, n := range g.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// Resolver maps flow addresses to node identities. Unknown addresses
// (e.g. external hosts in an unauthorized-access scenario) are given
// synthetic "ip:<addr>" ids so they still appear in the graph.
//
// Resolutions are memoized: a log resolves the same few hundred
// addresses hundreds of thousands of times, and the synthetic-id path
// would otherwise allocate a fresh string per call. The cache makes
// Node safe for concurrent use.
type Resolver struct {
	topo *topology.Topology

	mu    sync.RWMutex
	cache map[netip.Addr]topology.NodeID
}

// NewResolver builds a resolver over a topology.
func NewResolver(topo *topology.Topology) *Resolver {
	return &Resolver{topo: topo, cache: make(map[netip.Addr]topology.NodeID)}
}

// Node resolves an address to a node id.
func (r *Resolver) Node(addr netip.Addr) topology.NodeID {
	r.mu.RLock()
	id, ok := r.cache[addr]
	r.mu.RUnlock()
	if ok {
		return id
	}
	id = ""
	if r.topo != nil {
		if h, ok := r.topo.HostByAddr(addr); ok {
			id = h.ID
		}
	}
	if id == "" {
		id = topology.NodeID("ip:" + addr.String())
	}
	r.mu.Lock()
	r.cache[addr] = id
	r.mu.Unlock()
	return id
}

// BuildEdges extracts the distinct directed host edges from a log's
// PacketIn traffic.
func BuildEdges(log *flowlog.Log, r *Resolver) map[Edge]int {
	edges := make(map[Edge]int)
	for _, key := range log.Flows() {
		e := Edge{Src: r.Node(key.Src), Dst: r.Node(key.Dst)}
		edges[e]++
	}
	return edges
}

// Discover partitions the communication graph into application groups.
// Special-purpose nodes act as boundaries: they do not merge components
// and belong to no group, but edges touching them are attributed to the
// group of their non-special endpoint (paper §III-B).
func Discover(log *flowlog.Log, r *Resolver, special map[topology.NodeID]bool) []Group {
	return DiscoverFromEdges(BuildEdges(log, r), special)
}

// SameEdgeSet reports whether two BuildEdges results contain the same
// edges. Counts are ignored: group discovery depends only on which edges
// exist, so two logs with equal edge sets discover identical groups —
// the invariant behind Monitor's cross-window group cache.
func SameEdgeSet(a, b map[Edge]int) bool {
	if len(a) != len(b) {
		return false
	}
	for e := range a {
		if _, ok := b[e]; !ok {
			return false
		}
	}
	return true
}

// discoverScratch holds one discovery's working state: a node interner
// and an array-based union-find (path halving + union by size) over the
// dense IDs, recycled across calls via a pool so the concurrent
// per-interval Discover calls in stability analysis don't re-allocate
// the maps and arrays every interval.
type discoverScratch struct {
	ids    map[topology.NodeID]int32
	nodes  []topology.NodeID
	parent []int32
	size   []int32
	edges  []Edge
	group  []int32 // reused for node->group and root->group indexes
}

var scratchPool = sync.Pool{
	New: func() any { return &discoverScratch{ids: make(map[topology.NodeID]int32)} },
}

func (s *discoverScratch) release() {
	clear(s.ids)
	s.nodes = s.nodes[:0]
	s.parent = s.parent[:0]
	s.size = s.size[:0]
	s.edges = s.edges[:0]
	s.group = s.group[:0]
	scratchPool.Put(s)
}

// intern assigns the node a dense ID and a singleton union-find set.
func (s *discoverScratch) intern(n topology.NodeID) int32 {
	if id, ok := s.ids[n]; ok {
		return id
	}
	id := int32(len(s.nodes))
	s.ids[n] = id
	s.nodes = append(s.nodes, n)
	s.parent = append(s.parent, id)
	s.size = append(s.size, 1)
	return id
}

// find walks to the root with path halving — iterative, so component
// depth is bounded only by memory, not goroutine stack.
func (s *discoverScratch) find(x int32) int32 {
	for s.parent[x] != x {
		s.parent[x] = s.parent[s.parent[x]]
		x = s.parent[x]
	}
	return x
}

func (s *discoverScratch) union(a, b int32) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	if s.size[ra] < s.size[rb] {
		ra, rb = rb, ra
	}
	s.parent[rb] = ra
	s.size[ra] += s.size[rb]
}

// DiscoverFromEdges is Discover over an already-built edge set; its
// output is a pure function of the edge set and the special-node marks.
func DiscoverFromEdges(edges map[Edge]int, special map[topology.NodeID]bool) []Group {
	s := scratchPool.Get().(*discoverScratch)
	defer s.release()

	// Fix the edge order first: edges is a map, and every later stage —
	// union sequence, member collection, edge attribution — follows this
	// slice, so the whole discovery is deterministic.
	sorted := s.edges
	for e := range edges {
		sorted = append(sorted, e)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Src != sorted[j].Src {
			return sorted[i].Src < sorted[j].Src
		}
		return sorted[i].Dst < sorted[j].Dst
	})
	s.edges = sorted

	for _, e := range sorted {
		sSpecial, dSpecial := special[e.Src], special[e.Dst]
		switch {
		case sSpecial && dSpecial:
			// Service-to-service traffic joins no group.
		case sSpecial:
			s.intern(e.Dst)
		case dSpecial:
			s.intern(e.Src)
		default:
			s.union(s.intern(e.Src), s.intern(e.Dst))
		}
	}

	// Collect members per component in interned (first-seen) order;
	// groupOf remembers each node's group for the edge pass.
	numNodes := len(s.nodes)
	if cap(s.group) < 2*numNodes {
		s.group = make([]int32, 2*numNodes)
	}
	s.group = s.group[:2*numNodes]
	groupOf, rootGroup := s.group[:numNodes], s.group[numNodes:]
	for i := range rootGroup {
		rootGroup[i] = -1
	}
	var groups []Group
	for id := 0; id < numNodes; id++ {
		root := s.find(int32(id))
		gi := rootGroup[root]
		if gi < 0 {
			gi = int32(len(groups))
			rootGroup[root] = gi
			groups = append(groups, Group{})
		}
		groups[gi].Nodes = append(groups[gi].Nodes, s.nodes[id])
		groupOf[id] = gi
	}
	for gi := range groups {
		nodes := groups[gi].Nodes
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	}

	// Attribute edges: each edge belongs to the group of its non-special
	// endpoint (a non-special pair was unioned, so both endpoints agree).
	// One pass over the globally sorted slice keeps every per-group list
	// sorted by (Src, Dst) without per-group sorts.
	for _, e := range sorted {
		gi := int32(-1)
		if !special[e.Src] {
			gi = groupOf[s.ids[e.Src]]
		} else if !special[e.Dst] {
			gi = groupOf[s.ids[e.Dst]]
		}
		if gi >= 0 {
			groups[gi].Edges = append(groups[gi].Edges, e)
		}
	}

	// Sort by canonical key, computed once per group — Key concatenation
	// isn't element-wise comparable for node names containing bytes below
	// ',', so the comparator must use the rendered keys themselves.
	keys := make([]string, len(groups))
	for i := range groups {
		keys[i] = groups[i].Key()
	}
	sort.Sort(&groupSorter{groups: groups, keys: keys})
	return groups
}

type groupSorter struct {
	groups []Group
	keys   []string
}

func (g *groupSorter) Len() int           { return len(g.groups) }
func (g *groupSorter) Less(i, j int) bool { return g.keys[i] < g.keys[j] }
func (g *groupSorter) Swap(i, j int) {
	g.groups[i], g.groups[j] = g.groups[j], g.groups[i]
	g.keys[i], g.keys[j] = g.keys[j], g.keys[i]
}

// Match pairs groups from two logs by maximal member overlap, so a group
// that lost or gained a host (crash, scale-out) is still compared against
// its counterpart. Unmatched groups pair with a zero Group.
func Match(base, cur []Group) []GroupPair {
	usedCur := make([]bool, len(cur))
	var pairs []GroupPair
	for _, b := range base {
		bestIdx, bestOverlap := -1, 0
		for i, c := range cur {
			if usedCur[i] {
				continue
			}
			ov := overlap(b, c)
			if ov > bestOverlap {
				bestOverlap, bestIdx = ov, i
			}
		}
		if bestIdx >= 0 {
			usedCur[bestIdx] = true
			pairs = append(pairs, GroupPair{Base: b, Cur: cur[bestIdx], Matched: true})
		} else {
			pairs = append(pairs, GroupPair{Base: b})
		}
	}
	for i, c := range cur {
		if !usedCur[i] {
			pairs = append(pairs, GroupPair{Cur: c, New: true})
		}
	}
	return pairs
}

// GroupPair is a base/current group correspondence.
type GroupPair struct {
	Base, Cur Group
	// Matched means both sides are present; New means the group only
	// exists in the current log.
	Matched bool
	New     bool
}

func overlap(a, b Group) int {
	n := 0
	for _, x := range a.Nodes {
		if b.Contains(x) {
			n++
		}
	}
	return n
}
