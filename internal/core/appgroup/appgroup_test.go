package appgroup

import (
	"net/netip"
	"testing"
	"time"

	"flowdiff/internal/flowlog"
	"flowdiff/internal/topology"
)

// logWith builds a log with one PacketIn per (src,dst) address pair.
func logWith(pairs ...[2]netip.Addr) *flowlog.Log {
	l := flowlog.New(0, time.Minute)
	for i, p := range pairs {
		l.Append(flowlog.Event{
			Time: time.Duration(i) * time.Second,
			Type: flowlog.EventPacketIn,
			Flow: flowlog.FlowKey{Proto: 6, Src: p[0], Dst: p[1], SrcPort: uint16(1000 + i), DstPort: 80},
		})
	}
	return l
}

func addrOf(t *testing.T, topo *topology.Topology, id topology.NodeID) netip.Addr {
	t.Helper()
	n, ok := topo.Node(id)
	if !ok {
		t.Fatalf("no node %s", id)
	}
	return n.Addr
}

func labAndResolver(t *testing.T) (*topology.Topology, *Resolver) {
	t.Helper()
	topo, err := topology.Lab()
	if err != nil {
		t.Fatal(err)
	}
	return topo, NewResolver(topo)
}

func specialSet() map[topology.NodeID]bool {
	s := make(map[topology.NodeID]bool)
	for _, id := range topology.ServiceNodes {
		s[id] = true
	}
	return s
}

func TestDiscoverSeparateGroups(t *testing.T) {
	topo, r := labAndResolver(t)
	log := logWith(
		[2]netip.Addr{addrOf(t, topo, "S1"), addrOf(t, topo, "S2")},
		[2]netip.Addr{addrOf(t, topo, "S2"), addrOf(t, topo, "S3")},
		[2]netip.Addr{addrOf(t, topo, "S10"), addrOf(t, topo, "S11")},
	)
	groups := Discover(log, r, specialSet())
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(groups), groups)
	}
	if !groups[0].Contains("S1") || !groups[0].Contains("S3") {
		t.Errorf("first group = %v", groups[0].Nodes)
	}
	if !groups[1].Contains("S10") || !groups[1].Contains("S11") {
		t.Errorf("second group = %v", groups[1].Nodes)
	}
}

func TestSpecialNodesDoNotMergeGroups(t *testing.T) {
	topo, r := labAndResolver(t)
	nfs := addrOf(t, topo, "NFS")
	log := logWith(
		[2]netip.Addr{addrOf(t, topo, "S1"), addrOf(t, topo, "S2")},
		[2]netip.Addr{addrOf(t, topo, "S1"), nfs},
		[2]netip.Addr{addrOf(t, topo, "S10"), nfs},
		[2]netip.Addr{addrOf(t, topo, "S10"), addrOf(t, topo, "S11")},
	)
	groups := Discover(log, r, specialSet())
	if len(groups) != 2 {
		t.Fatalf("shared NFS merged groups: %d groups %v", len(groups), groups)
	}
	// Without the special marking, the NFS node merges everything.
	groups = Discover(log, r, nil)
	if len(groups) != 1 {
		t.Fatalf("without special nodes, want 1 merged group, got %d", len(groups))
	}
}

func TestEdgesThroughSpecialNodesAttributed(t *testing.T) {
	topo, r := labAndResolver(t)
	nfs := addrOf(t, topo, "NFS")
	log := logWith(
		[2]netip.Addr{addrOf(t, topo, "S1"), addrOf(t, topo, "S2")},
		[2]netip.Addr{addrOf(t, topo, "S1"), nfs},
	)
	groups := Discover(log, r, specialSet())
	if len(groups) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	foundNFSEdge := false
	for _, e := range groups[0].Edges {
		if e.Dst == "NFS" {
			foundNFSEdge = true
		}
	}
	if !foundNFSEdge {
		t.Error("edge to the NFS service should be attributed to the group")
	}
	if groups[0].Contains("NFS") {
		t.Error("special node must not be a group member")
	}
}

func TestUnknownAddressesGetSyntheticNodes(t *testing.T) {
	topo, r := labAndResolver(t)
	foreign := netip.MustParseAddr("203.0.113.9")
	log := logWith(
		[2]netip.Addr{foreign, addrOf(t, topo, "S1")},
	)
	groups := Discover(log, r, specialSet())
	if len(groups) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	if !groups[0].Contains("ip:203.0.113.9") {
		t.Errorf("foreign host missing from group: %v", groups[0].Nodes)
	}
}

func TestMatchPairsByOverlap(t *testing.T) {
	base := []Group{
		{Nodes: []topology.NodeID{"S1", "S2", "S3"}},
		{Nodes: []topology.NodeID{"S10", "S11"}},
	}
	cur := []Group{
		{Nodes: []topology.NodeID{"S10", "S11"}},
		{Nodes: []topology.NodeID{"S1", "S2"}},   // S3 crashed
		{Nodes: []topology.NodeID{"S20", "S21"}}, // brand new
	}
	pairs := Match(base, cur)
	if len(pairs) != 3 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	var matched, newGroups int
	for _, p := range pairs {
		if p.Matched {
			matched++
			if p.Base.Contains("S1") && !p.Cur.Contains("S1") {
				t.Error("S1 group mismatched")
			}
		}
		if p.New {
			newGroups++
			if !p.Cur.Contains("S20") {
				t.Error("wrong group flagged as new")
			}
		}
	}
	if matched != 2 || newGroups != 1 {
		t.Errorf("matched=%d new=%d, want 2/1", matched, newGroups)
	}
}

func TestGroupKeyDeterministic(t *testing.T) {
	g1 := Group{Nodes: []topology.NodeID{"S1", "S2"}}
	g2 := Group{Nodes: []topology.NodeID{"S1", "S2"}}
	if g1.Key() != g2.Key() {
		t.Error("identical groups should share a key")
	}
	g3 := Group{Nodes: []topology.NodeID{"S1", "S3"}}
	if g1.Key() == g3.Key() {
		t.Error("different groups should not share a key")
	}
}

func TestDiscoverDeterministicOrder(t *testing.T) {
	topo, r := labAndResolver(t)
	log := logWith(
		[2]netip.Addr{addrOf(t, topo, "S9"), addrOf(t, topo, "S8")},
		[2]netip.Addr{addrOf(t, topo, "S1"), addrOf(t, topo, "S2")},
		[2]netip.Addr{addrOf(t, topo, "S5"), addrOf(t, topo, "S6")},
	)
	a := Discover(log, r, specialSet())
	b := Discover(log, r, specialSet())
	if len(a) != len(b) {
		t.Fatal("nondeterministic group count")
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatal("nondeterministic group order")
		}
	}
}
