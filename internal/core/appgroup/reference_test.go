package appgroup

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"sort"
	"testing"

	"flowdiff/internal/topology"
)

// discoverReference is the pre-interning discoverer, retained as the
// equivalence oracle: map-based recursive union-find and a per-group
// scan over the whole edge map. The interned array-based implementation
// must produce DeepEqual groups.
func discoverReference(edges map[Edge]int, special map[topology.NodeID]bool) []Group {
	parent := make(map[topology.NodeID]topology.NodeID)
	var find func(topology.NodeID) topology.NodeID
	find = func(x topology.NodeID) topology.NodeID {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b topology.NodeID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	for e := range edges {
		sSpecial, dSpecial := special[e.Src], special[e.Dst]
		switch {
		case sSpecial && dSpecial:
		case sSpecial:
			find(e.Dst)
		case dSpecial:
			find(e.Src)
		default:
			union(e.Src, e.Dst)
		}
	}

	members := make(map[topology.NodeID][]topology.NodeID)
	for n := range parent {
		root := find(n)
		members[root] = append(members[root], n)
	}

	var groups []Group
	for _, nodes := range members {
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		inGroup := make(map[topology.NodeID]bool, len(nodes))
		for _, n := range nodes {
			inGroup[n] = true
		}
		var ge []Edge
		for e := range edges {
			if inGroup[e.Src] || inGroup[e.Dst] {
				ge = append(ge, e)
			}
		}
		sort.Slice(ge, func(i, j int) bool {
			if ge[i].Src != ge[j].Src {
				return ge[i].Src < ge[j].Src
			}
			return ge[i].Dst < ge[j].Dst
		})
		groups = append(groups, Group{Nodes: nodes, Edges: ge})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key() < groups[j].Key() })
	return groups
}

// sameGroups compares discovery results treating nil and empty group
// lists as equal (the implementations may differ in that representation
// only when there are zero groups).
func sameGroups(a, b []Group) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestDiscoverMatchesReference pins the interned discoverer against the
// retained map-based one on randomized edge sets, with and without
// special nodes in the mix.
func TestDiscoverMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	special := map[topology.NodeID]bool{"svc-nfs": true, "svc-dns": true}
	for trial := 0; trial < 30; trial++ {
		nNodes := 2 + rng.Intn(40)
		nEdges := rng.Intn(120)
		node := func() topology.NodeID {
			// ~10% of endpoints are a special service node.
			if rng.Intn(10) == 0 {
				if rng.Intn(2) == 0 {
					return "svc-nfs"
				}
				return "svc-dns"
			}
			return topology.NodeID(fmt.Sprintf("n%02d", rng.Intn(nNodes)))
		}
		edges := make(map[Edge]int)
		for i := 0; i < nEdges; i++ {
			edges[Edge{Src: node(), Dst: node()}]++
		}
		want := discoverReference(edges, special)
		got := DiscoverFromEdges(edges, special)
		if !sameGroups(want, got) {
			t.Fatalf("trial %d: groups mismatch\nreference: %+v\nnew:       %+v", trial, want, got)
		}
	}
}

// TestDiscoverDeepChain runs discovery on a 100k-node path graph: one
// component whose union-find structure is as deep as it gets. The
// iterative path-halving find must handle it without stack growth (the
// recursive reference would need a 100k-deep call chain in the worst
// case, which is exactly why it was replaced).
func TestDiscoverDeepChain(t *testing.T) {
	const n = 100_000
	edges := make(map[Edge]int, n)
	for i := 0; i < n; i++ {
		edges[Edge{
			Src: topology.NodeID(fmt.Sprintf("c%06d", i)),
			Dst: topology.NodeID(fmt.Sprintf("c%06d", i+1)),
		}] = 1
	}
	groups := DiscoverFromEdges(edges, nil)
	if len(groups) != 1 {
		t.Fatalf("chain split into %d groups, want 1", len(groups))
	}
	if len(groups[0].Nodes) != n+1 {
		t.Fatalf("group has %d nodes, want %d", len(groups[0].Nodes), n+1)
	}
	if len(groups[0].Edges) != n {
		t.Fatalf("group has %d edges, want %d", len(groups[0].Edges), n)
	}
}

// TestResolverCacheConcurrent exercises the resolver's memoization from
// multiple goroutines (the race detector checks the locking).
func TestResolverCacheConcurrent(t *testing.T) {
	r := NewResolver(nil)
	done := make(chan topology.NodeID, 8)
	for g := 0; g < 8; g++ {
		go func() {
			var last topology.NodeID
			for i := 0; i < 100; i++ {
				last = r.Node(netip.MustParseAddr(fmt.Sprintf("10.1.2.%d", i%16)))
			}
			done <- last
		}()
	}
	for g := 0; g < 8; g++ {
		if got := <-done; got != "ip:10.1.2.3" {
			t.Fatalf("resolved %q, want ip:10.1.2.3", got)
		}
	}
}

// BenchmarkDiscoverReference benchmarks the retained map-based
// discoverer on the same workloads as BenchmarkDiscover, for an in-tree
// before/after comparison.
func BenchmarkDiscoverReference(b *testing.B) {
	for _, sz := range []struct{ groups, chain int }{{32, 8}, {128, 16}} {
		edges, special := benchEdges(sz.groups, sz.chain)
		b.Run(fmt.Sprintf("nodes=%d", sz.groups*sz.chain), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := discoverReference(edges, special); len(got) != sz.groups {
					b.Fatalf("got %d groups, want %d", len(got), sz.groups)
				}
			}
		})
	}
}
