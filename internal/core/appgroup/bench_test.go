package appgroup

import (
	"fmt"
	"testing"

	"flowdiff/internal/topology"
)

// benchNode names one member host of a synthetic group.
func benchNode(g, i int) topology.NodeID {
	return topology.NodeID(fmt.Sprintf("g%03d-n%03d", g, i))
}

// benchEdges builds groups disjoint chains of chain hosts each, every
// chain also touching two shared special-purpose services — the shape
// §III-B discovery has to split correctly.
func benchEdges(groups, chain int) (map[Edge]int, map[topology.NodeID]bool) {
	special := map[topology.NodeID]bool{"NFS": true, "DNS": true}
	edges := make(map[Edge]int)
	for g := 0; g < groups; g++ {
		for i := 0; i+1 < chain; i++ {
			edges[Edge{Src: benchNode(g, i), Dst: benchNode(g, i+1)}]++
		}
		edges[Edge{Src: benchNode(g, 0), Dst: "NFS"}]++
		edges[Edge{Src: benchNode(g, chain-1), Dst: "DNS"}]++
	}
	return edges, special
}

// BenchmarkDiscover measures group discovery over a pre-built edge set —
// the per-interval cost the stability analysis pays five times per
// build. Compare against BenchmarkDiscoverReference: the same edge sets
// through the retained naive map-based discoverer.
func BenchmarkDiscover(b *testing.B) {
	for _, sz := range []struct{ groups, chain int }{{32, 8}, {128, 16}} {
		edges, special := benchEdges(sz.groups, sz.chain)
		b.Run(fmt.Sprintf("nodes=%d", sz.groups*sz.chain), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := len(DiscoverFromEdges(edges, special)); got != sz.groups {
					b.Fatalf("got %d groups, want %d", got, sz.groups)
				}
			}
		})
	}
}
