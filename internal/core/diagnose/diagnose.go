// Package diagnose implements FlowDiff's diagnosing phase, steps two and
// three (paper §IV-B, §IV-C): validating detected changes against the
// task time series (changes explainable by known operator tasks are
// filtered out), building the dependency matrix between application and
// infrastructure signature changes, classifying the remaining changes
// into problem classes (Figure 2b / Figure 8), and ranking the involved
// components for localization — both by raw change count
// (RankComponents) and by 007-style evidence voting over the network
// paths of the impacted flows (RankSuspects).
package diagnose

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/core/diff"
	"flowdiff/internal/core/signature"
	"flowdiff/internal/core/taskmine"
	"flowdiff/internal/topology"
)

// ValidationWindow is how close (in time) a task detection must be to a
// change observation to explain it.
const ValidationWindow = 5 * time.Second

// Validate splits changes into known (explainable by a detected operator
// task) and unknown. A change is explained when a task detection's time
// span, widened by window, covers the change's observation time AND the
// change's components overlap the task's involved hosts (resolved through
// r). Changes without a meaningful timestamp (At == 0 scalar shifts) are
// only matched on components.
func Validate(changes []diff.Change, tasks []taskmine.Detection, r *appgroup.Resolver, window time.Duration) (known, unknown []diff.Change) {
	if window <= 0 {
		window = ValidationWindow
	}
	for _, c := range changes {
		if explainedBy(c, tasks, r, window) {
			known = append(known, c)
		} else {
			unknown = append(unknown, c)
		}
	}
	return known, unknown
}

func explainedBy(c diff.Change, tasks []taskmine.Detection, r *appgroup.Resolver, window time.Duration) bool {
	for _, t := range tasks {
		if c.At > 0 && (c.At < t.Start-window || c.At > t.End+window) {
			continue
		}
		if componentOverlap(c, t, r) {
			return true
		}
	}
	return false
}

func componentOverlap(c diff.Change, t taskmine.Detection, r *appgroup.Resolver) bool {
	if len(c.Components) == 0 || len(t.Hosts) == 0 {
		return false
	}
	taskNodes := make(map[string]bool, len(t.Hosts))
	for _, h := range t.Hosts {
		taskNodes[h] = true
		if addr, err := netip.ParseAddr(h); err == nil && r != nil {
			taskNodes[string(r.Node(addr))] = true
		}
	}
	for _, comp := range c.Components {
		if taskNodes[comp] {
			return true
		}
	}
	return false
}

// Matrix is the dependency matrix of §IV-C: rows are application
// signature kinds, columns infrastructure kinds; a cell is set when both
// kinds changed.
type Matrix struct {
	Rows, Cols []signature.Kind
	Cells      map[signature.Kind]map[signature.Kind]bool
}

// BuildMatrix derives the dependency matrix from the unexplained changes.
func BuildMatrix(unknown []diff.Change) Matrix {
	m := Matrix{
		Rows:  []signature.Kind{signature.KindCG, signature.KindDD, signature.KindCI, signature.KindPC, signature.KindFS},
		Cols:  []signature.Kind{signature.KindPT, signature.KindISL, signature.KindCRT},
		Cells: make(map[signature.Kind]map[signature.Kind]bool),
	}
	kinds := diff.Kinds(unknown)
	for _, rk := range m.Rows {
		m.Cells[rk] = make(map[signature.Kind]bool)
		for _, ck := range m.Cols {
			m.Cells[rk][ck] = kinds[rk] && kinds[ck]
		}
	}
	return m
}

// String renders the matrix like Figure 8.
func (m Matrix) String() string {
	var sb strings.Builder
	sb.WriteString("     ")
	for _, c := range m.Cols {
		fmt.Fprintf(&sb, "%4s", c)
	}
	sb.WriteString("\n")
	for _, r := range m.Rows {
		fmt.Fprintf(&sb, "%-5s", r)
		for _, c := range m.Cols {
			v := 0
			if m.Cells[r][c] {
				v = 1
			}
			fmt.Fprintf(&sb, "%4d", v)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Problem is one problem class of Figure 2b.
type Problem string

// Problem classes.
const (
	HostFailure        Problem = "host failure"
	HostPerformance    Problem = "host performance"
	AppFailure         Problem = "application failure"
	AppPerformance     Problem = "application performance"
	NetworkDisconnect  Problem = "network disconnectivity"
	NetworkBottleneck  Problem = "network bottleneck / congestion"
	SwitchMisconfig    Problem = "switch misconfiguration"
	SwitchOverhead     Problem = "switch overhead"
	ControllerOverhead Problem = "controller overhead"
	SwitchFailure      Problem = "switch failure"
	ControllerFailure  Problem = "controller failure"
	UnauthorizedAccess Problem = "unauthorized access"
)

// classPatterns encodes Figure 2b: the signature kinds each problem
// class is expected to impact.
var classPatterns = map[Problem][]signature.Kind{
	HostFailure:        {signature.KindCG, signature.KindCI, signature.KindPC, signature.KindFS},
	HostPerformance:    {signature.KindDD, signature.KindPC, signature.KindFS},
	AppFailure:         {signature.KindCG, signature.KindCI, signature.KindPC, signature.KindFS},
	AppPerformance:     {signature.KindDD, signature.KindPC, signature.KindFS},
	NetworkDisconnect:  {signature.KindCG, signature.KindCI, signature.KindPC, signature.KindFS, signature.KindPT},
	NetworkBottleneck:  {signature.KindDD, signature.KindPC, signature.KindFS, signature.KindISL},
	SwitchMisconfig:    {signature.KindCG, signature.KindCI, signature.KindPC, signature.KindFS, signature.KindPT},
	SwitchOverhead:     {signature.KindDD, signature.KindPC, signature.KindFS, signature.KindISL},
	ControllerOverhead: {signature.KindDD, signature.KindFS, signature.KindCRT},
	SwitchFailure:      {signature.KindCG, signature.KindCI, signature.KindPC, signature.KindFS, signature.KindPT, signature.KindISL},
	ControllerFailure:  {signature.KindCG, signature.KindCI, signature.KindFS, signature.KindCRT},
	UnauthorizedAccess: {signature.KindCG, signature.KindCI, signature.KindFS},
}

// PatternOf returns the signature kinds a problem class is expected to
// impact (one row of Figure 2b); nil for unknown classes.
func PatternOf(p Problem) []signature.Kind {
	return classPatterns[p]
}

// Scored is a ranked problem-class hypothesis.
type Scored struct {
	Problem Problem
	Score   float64
}

// Classify ranks problem classes by how well the set of changed
// signature kinds matches each class's expected impact pattern (Jaccard
// similarity), with structural tie-breaks: a node that lost every
// adjacent edge suggests a host failure over an application failure, a
// brand-new edge from an unknown source suggests unauthorized access.
func Classify(unknown []diff.Change) []Scored {
	if len(unknown) == 0 {
		return nil
	}
	kinds := diff.Kinds(unknown)
	scores := make(map[Problem]float64, len(classPatterns))
	for p, pattern := range classPatterns {
		scores[p] = jaccard(kinds, pattern)
	}

	// Structural tie-breaks.
	if kinds[signature.KindCG] {
		newFromForeign := false
		anyRemoved := false
		removedEdges := make(map[string]map[string]bool) // node -> set of lost peer nodes
		addedAt := make(map[string]bool)
		for _, c := range unknown {
			if c.Kind != signature.KindCG {
				continue
			}
			isNew := strings.HasPrefix(c.Description, "new edge")
			for _, comp := range c.Components {
				if isNew {
					addedAt[comp] = true
					if strings.HasPrefix(comp, "ip:") {
						newFromForeign = true
					}
				} else {
					anyRemoved = true
					// Record the edge's OTHER endpoints as comp's lost
					// peers, deduped: losing two flows to the same peer is
					// one broken dependency, not a disappearing host.
					for _, peer := range c.Components {
						if peer == comp {
							continue
						}
						if removedEdges[comp] == nil {
							removedEdges[comp] = make(map[string]bool)
						}
						removedEdges[comp][peer] = true
					}
				}
			}
		}
		if newFromForeign {
			scores[UnauthorizedAccess] += 0.5
		}
		// Unauthorized access manifests as NEW edges; a change set whose
		// CG deltas are all removals argues against it.
		if len(addedAt) == 0 && anyRemoved {
			scores[UnauthorizedAccess] -= 0.3
		}
		// A node that lost edges to >= 2 DISTINCT peers with no additions
		// hints at total disappearance (host failure) rather than a
		// single broken dependency (application failure). Accumulated as
		// an order-independent bool so map iteration order cannot leak
		// into the score.
		lostManyPeers := false
		for node, lost := range removedEdges {
			if len(lost) >= 2 && !addedAt[node] {
				lostManyPeers = true
			}
		}
		if lostManyPeers {
			scores[HostFailure] += 0.25
		}
	}

	out := make([]Scored, 0, len(scores))
	for p, s := range scores {
		if s > 0 {
			out = append(out, Scored{Problem: p, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Problem < out[j].Problem
	})
	return out
}

func jaccard(kinds map[signature.Kind]bool, pattern []signature.Kind) float64 {
	pat := make(map[signature.Kind]bool, len(pattern))
	for _, k := range pattern {
		pat[k] = true
	}
	inter, union := 0, 0
	seen := make(map[signature.Kind]bool)
	for k := range kinds {
		seen[k] = true
		union++
		if pat[k] {
			inter++
		}
	}
	for k := range pat {
		if !seen[k] {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// ComponentScore ranks one component by how many unexplained changes it
// is associated with (§IV-C localization).
type ComponentScore struct {
	Component string
	Changes   int
}

// RankComponents counts change associations per component, descending.
func RankComponents(unknown []diff.Change) []ComponentScore {
	counts := make(map[string]int)
	for _, c := range unknown {
		for _, comp := range c.Components {
			counts[comp]++
		}
	}
	out := make([]ComponentScore, 0, len(counts))
	for comp, n := range counts {
		out = append(out, ComponentScore{Component: comp, Changes: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Changes != out[j].Changes {
			return out[i].Changes > out[j].Changes
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// Report is the complete diagnosis output FlowDiff hands to operators.
type Report struct {
	Known    []diff.Change
	Unknown  []diff.Change
	Matrix   Matrix
	Problems []Scored
	Ranking  []ComponentScore
	// Suspects is the evidence-voting fabric localization (nil when no
	// topology was supplied or no change identified an impacted flow).
	Suspects []SuspectScore
}

// Diagnose runs validation, matrix construction, classification, and
// ranking in one step. topo enables evidence-voting suspect localization
// and may be nil.
func Diagnose(changes []diff.Change, tasks []taskmine.Detection, r *appgroup.Resolver, topo *topology.Topology, window time.Duration) Report {
	return DiagnoseContext(context.Background(), changes, tasks, r, topo, window)
}

// DiagnoseContext is Diagnose with the caller's context threaded through
// to the suspect ranker for observability.
func DiagnoseContext(ctx context.Context, changes []diff.Change, tasks []taskmine.Detection, r *appgroup.Resolver, topo *topology.Topology, window time.Duration) Report {
	known, unknown := Validate(changes, tasks, r, window)
	return Report{
		Known:    known,
		Unknown:  unknown,
		Matrix:   BuildMatrix(unknown),
		Problems: Classify(unknown),
		Ranking:  RankComponents(unknown),
		Suspects: RankSuspectsContext(ctx, unknown, topo),
	}
}
