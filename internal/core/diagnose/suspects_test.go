package diagnose

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"flowdiff/internal/core/diff"
	"flowdiff/internal/core/signature"
	"flowdiff/internal/obs"
	"flowdiff/internal/topology"
)

func labTopo(t testing.TB) *topology.Topology {
	t.Helper()
	topo, err := topology.Lab()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func suspectByID(suspects []SuspectScore, id string) (SuspectScore, bool) {
	for _, s := range suspects {
		if s.Component == id {
			return s, true
		}
	}
	return SuspectScore{}, false
}

func TestRankSuspectsVoteNormalization(t *testing.T) {
	topo := labTopo(t)
	// One impacted flow S3 (sw2) -> S8 (sw3). Path elements: links
	// S3-sw2, sw2-sw1, sw1-sw3, sw3-S8 and switches sw2, sw1, sw3 — 7
	// components, so each receives 1/7 of the flow's single vote.
	unknown := []diff.Change{change(signature.KindFS, 0, "S3", "S8")}
	suspects := RankSuspects(unknown, topo)
	if len(suspects) != 7 {
		t.Fatalf("want 7 suspects, got %d: %+v", len(suspects), suspects)
	}
	const w = 1.0 / 7
	for _, s := range suspects {
		if math.Abs(s.Votes-w) > 1e-12 {
			t.Errorf("%s: votes = %v, want %v", s.Component, s.Votes, w)
		}
		if s.Flows != 1 {
			t.Errorf("%s: flows = %d, want 1", s.Component, s.Flows)
		}
		if s.IsLink {
			if s.Score != s.Votes {
				t.Errorf("link %s: score %v != votes %v", s.Component, s.Score, s.Votes)
			}
		} else {
			// Every switch on this path touches exactly two voted links,
			// so the coverage demotion is 2/3.
			if math.Abs(s.Score-w*2.0/3.0) > 1e-12 {
				t.Errorf("switch %s: score = %v, want %v", s.Component, s.Score, w*2.0/3.0)
			}
		}
	}
	// With uniform votes the demoted switches sink below every link.
	for i := 0; i < 4; i++ {
		if !suspects[i].IsLink {
			t.Errorf("rank %d should be a link, got %+v", i, suspects[i])
		}
	}
}

func TestRankSuspectsDedupesFlows(t *testing.T) {
	topo := labTopo(t)
	// The same S3->S8 flow named by an FS change and a DD-style change
	// must vote once, not twice.
	unknown := []diff.Change{
		change(signature.KindFS, 0, "S3", "S8"),
		change(signature.KindCG, 0, "S8", "S3"),
	}
	suspects := RankSuspects(unknown, topo)
	sw1, ok := suspectByID(suspects, "sw1")
	if !ok {
		t.Fatalf("sw1 missing from %+v", suspects)
	}
	if sw1.Flows != 1 {
		t.Errorf("sw1 flows = %d, want 1 (duplicate pair must be deduped)", sw1.Flows)
	}
	if math.Abs(sw1.Votes-1.0/7) > 1e-12 {
		t.Errorf("sw1 votes = %v, want 1/7", sw1.Votes)
	}
}

func TestRankSuspectsSkipsNonFlowChanges(t *testing.T) {
	topo := labTopo(t)
	unknown := []diff.Change{
		change(signature.KindISL, 0, "sw1", "sw2"), // switches, not hosts
		change(signature.KindDD, 0, "S3"),          // single host
		change(signature.KindCRT, 0, "controller"), // not a topology node
	}
	if got := RankSuspects(unknown, topo); got != nil {
		t.Errorf("changes without host pairs must produce no suspects, got %+v", got)
	}
}

func TestRankSuspectsNilInputs(t *testing.T) {
	topo := labTopo(t)
	if got := RankSuspects(nil, topo); got != nil {
		t.Errorf("nil changes: got %+v", got)
	}
	if got := RankSuspects([]diff.Change{change(signature.KindFS, 0, "S3", "S8")}, nil); got != nil {
		t.Errorf("nil topology: got %+v", got)
	}
}

func TestRankSuspectsDeterministic(t *testing.T) {
	topo := labTopo(t)
	var unknown []diff.Change
	for i := 1; i <= 20; i++ {
		unknown = append(unknown, change(signature.KindFS, 0,
			fmt.Sprintf("S%d", i), fmt.Sprintf("S%d", 26-i)))
	}
	first := RankSuspects(unknown, topo)
	for i := 0; i < 10; i++ {
		if got := RankSuspects(unknown, topo); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d differs:\n%+v\nvs\n%+v", i, got, first)
		}
	}
}

func TestRankSuspectsObservability(t *testing.T) {
	topo := labTopo(t)
	reg := obs.New()
	ctx := obs.WithRegistry(context.Background(), reg)
	unknown := []diff.Change{change(signature.KindFS, 0, "S3", "S8")}
	RankSuspectsContext(ctx, unknown, topo)
	// One flow voting on 7 path components casts 7 votes.
	if got := reg.Counter("diagnose.votes").Value(); got != 7 {
		t.Errorf("diagnose.votes = %d, want 7", got)
	}
	if got := reg.Histogram("span.diagnose.tally").Count(); got != 1 {
		t.Errorf("span.diagnose.tally count = %d, want 1", got)
	}
}

func BenchmarkRankSuspects(b *testing.B) {
	topo := labTopo(b)
	var unknown []diff.Change
	for i := 1; i <= 25; i++ {
		for j := i + 1; j <= 25; j++ {
			unknown = append(unknown, change(signature.KindFS, 0,
				fmt.Sprintf("S%d", i), fmt.Sprintf("S%d", j)))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := RankSuspects(unknown, topo); len(got) == 0 {
			b.Fatal("empty ranking")
		}
	}
}
