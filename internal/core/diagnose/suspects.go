package diagnose

import (
	"context"
	"sort"

	"flowdiff/internal/core/diff"
	"flowdiff/internal/obs"
	"flowdiff/internal/topology"
)

// SuspectScore is one ranked fabric suspect produced by evidence voting.
type SuspectScore struct {
	// Component is the suspect's id: a switch node id, or a link id of
	// the form produced by topology.LinkID.
	Component string
	// IsLink distinguishes links from switches.
	IsLink bool
	// Votes is the raw tally: each impacted flow contributes
	// 1/path-length to every switch and link on its path.
	Votes float64
	// Score is the ranking key. For links it equals Votes; for switches
	// the tally is demoted by the coverage factor A/(A+1), where A is
	// the number of the switch's incident links that received any votes.
	// A faulty link concentrates all its flows' evidence on itself and
	// only spreads it over A incident links of each endpoint switch, so
	// the demotion breaks the otherwise systematic switch/link tie in
	// the link's favor — while a faulty switch, voted for through
	// several incident links, still outscores any single one of them.
	Score float64
	// Flows is how many distinct impacted flows voted for the component.
	Flows int
}

// RankSuspects localizes unexplained changes to fabric components by
// evidence voting in the style of 007 ("Democratically Finding The Cause
// of Packet Drops"). Every unexplained change naming at least two hosts
// identifies an impacted flow; each distinct flow is routed through topo
// and casts a vote of 1/path-length on every switch and link along its
// path. Components are ranked by coverage-adjusted vote share.
//
// The ranking is deterministic for a given (unknown, topo) input:
// flows vote in sorted order and ties break by kind (links first) and
// then component id.
func RankSuspects(unknown []diff.Change, topo *topology.Topology) []SuspectScore {
	return RankSuspectsContext(context.Background(), unknown, topo)
}

// flowPair is one impacted src->dst flow extracted from a change.
type flowPair struct{ a, b topology.NodeID }

// RankSuspectsContext is RankSuspects with observability: it times the
// tally under the "diagnose.tally" span and counts per-component votes
// on the "diagnose.votes" counter.
func RankSuspectsContext(ctx context.Context, unknown []diff.Change, topo *topology.Topology) []SuspectScore {
	if topo == nil || len(unknown) == 0 {
		return nil
	}
	defer obs.Span(ctx, "diagnose.tally").End()
	votes := obs.From(ctx).Counter("diagnose.votes")

	// Collect the distinct impacted flows. A change's components name
	// the flow's endpoints when at least two of them resolve to hosts
	// (CG/FS edge changes); infrastructure changes naming switches or a
	// single host cast no flow votes.
	seen := make(map[flowPair]bool)
	for _, c := range unknown {
		var hosts []topology.NodeID
		for _, comp := range c.Components {
			id := topology.NodeID(comp)
			if n, ok := topo.Node(id); ok && n.Kind == topology.KindHost {
				hosts = append(hosts, id)
			}
		}
		if len(hosts) < 2 {
			continue
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		for i := 0; i < len(hosts); i++ {
			for j := i + 1; j < len(hosts); j++ {
				if hosts[i] == hosts[j] {
					continue
				}
				seen[flowPair{hosts[i], hosts[j]}] = true
			}
		}
	}
	if len(seen) == 0 {
		return nil
	}
	pairs := make([]flowPair, 0, len(seen))
	for p := range seen {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})

	// Tally: each flow votes 1/path-length on every element of its path.
	type tally struct {
		votes  float64
		isLink bool
		flows  int
	}
	tallies := make(map[string]*tally)
	for _, p := range pairs {
		hops, err := topo.Path(p.a, p.b)
		if err != nil {
			continue
		}
		elems := topo.PathElements(hops)
		if len(elems) == 0 {
			continue
		}
		w := 1.0 / float64(len(elems))
		for _, e := range elems {
			t := tallies[e.ID]
			if t == nil {
				t = &tally{isLink: e.IsLink}
				tallies[e.ID] = t
			}
			t.votes += w
			t.flows++
			votes.Inc()
		}
	}

	// Coverage adjustment for switches (see SuspectScore.Score).
	out := make([]SuspectScore, 0, len(tallies))
	for id, t := range tallies {
		s := SuspectScore{Component: id, IsLink: t.isLink, Votes: t.votes, Score: t.votes, Flows: t.flows}
		if !t.isLink {
			active := 0
			for _, l := range topo.LinksAt(topology.NodeID(id)) {
				if lt := tallies[l.ID()]; lt != nil && lt.votes > 0 {
					active++
				}
			}
			s.Score = t.votes * float64(active) / float64(active+1)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].IsLink != out[j].IsLink {
			return out[i].IsLink
		}
		return out[i].Component < out[j].Component
	})
	return out
}
