package diagnose

import (
	"strings"
	"testing"
	"time"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/core/diff"
	"flowdiff/internal/core/signature"
	"flowdiff/internal/core/taskmine"
	"flowdiff/internal/topology"
)

func change(k signature.Kind, at time.Duration, comps ...string) diff.Change {
	return diff.Change{Kind: k, At: at, Components: comps, Description: string(k) + " change"}
}

func labResolver(t *testing.T) *appgroup.Resolver {
	t.Helper()
	topo, err := topology.Lab()
	if err != nil {
		t.Fatal(err)
	}
	return appgroup.NewResolver(topo)
}

func TestValidateExplainsTaskChanges(t *testing.T) {
	r := labResolver(t)
	topo, _ := topology.Lab()
	v1, _ := topo.Node("V1")
	v2, _ := topo.Node("V2")

	changes := []diff.Change{
		change(signature.KindCG, 100*time.Second, "V1", "V2"),
		change(signature.KindCG, 500*time.Second, "S1", "S3"), // unrelated time
		change(signature.KindDD, 0, "S9"),                     // unrelated components
	}
	tasks := []taskmine.Detection{{
		Task:  "vm-migration",
		Start: 99 * time.Second,
		End:   101 * time.Second,
		Hosts: []string{v1.Addr.String(), v2.Addr.String()},
	}}
	known, unknown := Validate(changes, tasks, r, 5*time.Second)
	if len(known) != 1 || known[0].Components[0] != "V1" {
		t.Errorf("known = %+v", known)
	}
	if len(unknown) != 2 {
		t.Errorf("unknown = %+v", unknown)
	}
}

func TestValidateRequiresComponentOverlap(t *testing.T) {
	r := labResolver(t)
	changes := []diff.Change{change(signature.KindCG, 100*time.Second, "S1", "S3")}
	tasks := []taskmine.Detection{{
		Task: "t", Start: 99 * time.Second, End: 101 * time.Second,
		Hosts: []string{"10.0.2.1"}, // V1 only
	}}
	known, unknown := Validate(changes, tasks, r, 5*time.Second)
	if len(known) != 0 || len(unknown) != 1 {
		t.Errorf("time overlap without component overlap must not explain: known=%v", known)
	}
}

func TestValidateNoTasks(t *testing.T) {
	changes := []diff.Change{change(signature.KindCG, 0, "A")}
	known, unknown := Validate(changes, nil, nil, 0)
	if len(known) != 0 || len(unknown) != 1 {
		t.Error("without tasks everything is unknown")
	}
}

func TestBuildMatrixCongestion(t *testing.T) {
	// Figure 8a: DD/PC/FS changed together with ISL.
	unknown := []diff.Change{
		change(signature.KindDD, 0, "S3"),
		change(signature.KindPC, 0, "S3"),
		change(signature.KindFS, 0, "S1", "S3"),
		change(signature.KindISL, 0, "sw1", "sw2"),
	}
	m := BuildMatrix(unknown)
	for _, row := range []signature.Kind{signature.KindDD, signature.KindPC, signature.KindFS} {
		if !m.Cells[row][signature.KindISL] {
			t.Errorf("cell %v x ISL not set", row)
		}
		if m.Cells[row][signature.KindPT] || m.Cells[row][signature.KindCRT] {
			t.Errorf("cell %v has spurious PT/CRT", row)
		}
	}
	if m.Cells[signature.KindCG][signature.KindISL] {
		t.Error("CG did not change; its row must be empty")
	}
}

func TestBuildMatrixSwitchFailure(t *testing.T) {
	// Figure 8b: only CG x PT set.
	unknown := []diff.Change{
		change(signature.KindCG, 0, "S1", "S3"),
		change(signature.KindPT, 0, "sw2"),
	}
	m := BuildMatrix(unknown)
	if !m.Cells[signature.KindCG][signature.KindPT] {
		t.Error("CG x PT should be set")
	}
	for _, row := range m.Rows {
		for _, col := range m.Cols {
			if row == signature.KindCG && col == signature.KindPT {
				continue
			}
			if m.Cells[row][col] {
				t.Errorf("spurious cell %v x %v", row, col)
			}
		}
	}
	s := m.String()
	if !strings.Contains(s, "CG") || !strings.Contains(s, "PT") {
		t.Errorf("matrix render missing headers:\n%s", s)
	}
}

func TestClassifyCongestion(t *testing.T) {
	unknown := []diff.Change{
		change(signature.KindDD, 0, "S3"),
		change(signature.KindPC, 0, "S3"),
		change(signature.KindFS, 0, "S1", "S3"),
		change(signature.KindISL, 0, "sw1", "sw2"),
	}
	ranked := Classify(unknown)
	if len(ranked) == 0 {
		t.Fatal("no classification")
	}
	if ranked[0].Problem != NetworkBottleneck && ranked[0].Problem != SwitchOverhead {
		t.Errorf("top hypothesis = %v, want congestion-flavored", ranked[0].Problem)
	}
}

func TestClassifyUnauthorizedAccess(t *testing.T) {
	unknown := []diff.Change{
		{Kind: signature.KindCG, Description: "new edge ip:203.0.113.9->S8", Components: []string{"ip:203.0.113.9", "S8"}},
		change(signature.KindCI, 0, "S8"),
		change(signature.KindFS, 0, "S8"),
	}
	ranked := Classify(unknown)
	if len(ranked) == 0 {
		t.Fatal("no classification")
	}
	if ranked[0].Problem != UnauthorizedAccess {
		t.Errorf("top hypothesis = %v, want unauthorized access (ranking %+v)", ranked[0].Problem, ranked)
	}
}

func TestClassifyHostVsAppFailure(t *testing.T) {
	// Host failure: node lost multiple edges, nothing added.
	hostDown := []diff.Change{
		{Kind: signature.KindCG, Description: "edge S2->S3 missing", Components: []string{"S2", "S3"}},
		{Kind: signature.KindCG, Description: "edge S3->S8 missing", Components: []string{"S3", "S8"}},
		change(signature.KindCI, 0, "S3"),
		change(signature.KindFS, 0, "S3"),
	}
	ranked := Classify(hostDown)
	if len(ranked) == 0 {
		t.Fatal("no classification")
	}
	if ranked[0].Problem != HostFailure {
		t.Errorf("top hypothesis = %v, want host failure", ranked[0].Problem)
	}
}

func TestClassifyEmpty(t *testing.T) {
	if got := Classify(nil); got != nil {
		t.Errorf("Classify(nil) = %v", got)
	}
}

func TestRankComponents(t *testing.T) {
	unknown := []diff.Change{
		change(signature.KindCG, 0, "S3", "S8"),
		change(signature.KindCI, 0, "S3"),
		change(signature.KindDD, 0, "S3"),
		change(signature.KindFS, 0, "S8"),
	}
	ranking := RankComponents(unknown)
	if len(ranking) != 2 {
		t.Fatalf("ranking = %+v", ranking)
	}
	if ranking[0].Component != "S3" || ranking[0].Changes != 3 {
		t.Errorf("top = %+v, want S3 with 3 changes", ranking[0])
	}
	if ranking[1].Component != "S8" || ranking[1].Changes != 2 {
		t.Errorf("second = %+v", ranking[1])
	}
}

func TestDiagnoseEndToEnd(t *testing.T) {
	r := labResolver(t)
	changes := []diff.Change{
		change(signature.KindCG, 10*time.Second, "S3", "S8"),
		change(signature.KindCI, 0, "S3"),
	}
	rep := Diagnose(changes, nil, r, 0)
	if len(rep.Unknown) != 2 || len(rep.Known) != 0 {
		t.Errorf("report split wrong: %+v", rep)
	}
	if len(rep.Problems) == 0 || len(rep.Ranking) == 0 {
		t.Error("report missing classification or ranking")
	}
}

// TestClassifyAllPatterns feeds each Figure 2b class's exact impact set to
// the classifier and checks the class lands at or near the top.
func TestClassifyAllPatterns(t *testing.T) {
	for problem := range map[Problem]bool{
		HostFailure: true, HostPerformance: true, AppFailure: true,
		AppPerformance: true, NetworkDisconnect: true, NetworkBottleneck: true,
		SwitchMisconfig: true, SwitchOverhead: true, ControllerOverhead: true,
		SwitchFailure: true, ControllerFailure: true, UnauthorizedAccess: true,
	} {
		var changes []diff.Change
		for _, k := range PatternOf(problem) {
			c := change(k, 0, "X")
			if problem == UnauthorizedAccess && k == signature.KindCG {
				c = diff.Change{Kind: k, Description: "new edge ip:203.0.113.9->X", Components: []string{"ip:203.0.113.9", "X"}}
			}
			changes = append(changes, c)
		}
		ranked := Classify(changes)
		if len(ranked) == 0 {
			t.Fatalf("%s: no classification", problem)
		}
		// The true class must appear within the top 3 (several classes
		// intentionally share patterns, e.g. host vs application failure).
		found := false
		for i, s := range ranked {
			if i >= 3 {
				break
			}
			if s.Problem == problem {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: not in top-3 of %+v", problem, ranked[:min(3, len(ranked))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPatternOfUnknown(t *testing.T) {
	if PatternOf(Problem("nonsense")) != nil {
		t.Error("unknown problem should have nil pattern")
	}
}
