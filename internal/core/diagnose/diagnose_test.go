package diagnose

import (
	"strings"
	"testing"
	"time"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/core/diff"
	"flowdiff/internal/core/signature"
	"flowdiff/internal/core/taskmine"
	"flowdiff/internal/topology"
)

func change(k signature.Kind, at time.Duration, comps ...string) diff.Change {
	return diff.Change{Kind: k, At: at, Components: comps, Description: string(k) + " change"}
}

func labResolver(t *testing.T) *appgroup.Resolver {
	t.Helper()
	topo, err := topology.Lab()
	if err != nil {
		t.Fatal(err)
	}
	return appgroup.NewResolver(topo)
}

func TestValidateExplainsTaskChanges(t *testing.T) {
	r := labResolver(t)
	topo, _ := topology.Lab()
	v1, _ := topo.Node("V1")
	v2, _ := topo.Node("V2")

	changes := []diff.Change{
		change(signature.KindCG, 100*time.Second, "V1", "V2"),
		change(signature.KindCG, 500*time.Second, "S1", "S3"), // unrelated time
		change(signature.KindDD, 0, "S9"),                     // unrelated components
	}
	tasks := []taskmine.Detection{{
		Task:  "vm-migration",
		Start: 99 * time.Second,
		End:   101 * time.Second,
		Hosts: []string{v1.Addr.String(), v2.Addr.String()},
	}}
	known, unknown := Validate(changes, tasks, r, 5*time.Second)
	if len(known) != 1 || known[0].Components[0] != "V1" {
		t.Errorf("known = %+v", known)
	}
	if len(unknown) != 2 {
		t.Errorf("unknown = %+v", unknown)
	}
}

func TestValidateRequiresComponentOverlap(t *testing.T) {
	r := labResolver(t)
	changes := []diff.Change{change(signature.KindCG, 100*time.Second, "S1", "S3")}
	tasks := []taskmine.Detection{{
		Task: "t", Start: 99 * time.Second, End: 101 * time.Second,
		Hosts: []string{"10.0.2.1"}, // V1 only
	}}
	known, unknown := Validate(changes, tasks, r, 5*time.Second)
	if len(known) != 0 || len(unknown) != 1 {
		t.Errorf("time overlap without component overlap must not explain: known=%v", known)
	}
}

func TestValidateNoTasks(t *testing.T) {
	changes := []diff.Change{change(signature.KindCG, 0, "A")}
	known, unknown := Validate(changes, nil, nil, 0)
	if len(known) != 0 || len(unknown) != 1 {
		t.Error("without tasks everything is unknown")
	}
}

func TestBuildMatrixCongestion(t *testing.T) {
	// Figure 8a: DD/PC/FS changed together with ISL.
	unknown := []diff.Change{
		change(signature.KindDD, 0, "S3"),
		change(signature.KindPC, 0, "S3"),
		change(signature.KindFS, 0, "S1", "S3"),
		change(signature.KindISL, 0, "sw1", "sw2"),
	}
	m := BuildMatrix(unknown)
	for _, row := range []signature.Kind{signature.KindDD, signature.KindPC, signature.KindFS} {
		if !m.Cells[row][signature.KindISL] {
			t.Errorf("cell %v x ISL not set", row)
		}
		if m.Cells[row][signature.KindPT] || m.Cells[row][signature.KindCRT] {
			t.Errorf("cell %v has spurious PT/CRT", row)
		}
	}
	if m.Cells[signature.KindCG][signature.KindISL] {
		t.Error("CG did not change; its row must be empty")
	}
}

func TestBuildMatrixSwitchFailure(t *testing.T) {
	// Figure 8b: only CG x PT set.
	unknown := []diff.Change{
		change(signature.KindCG, 0, "S1", "S3"),
		change(signature.KindPT, 0, "sw2"),
	}
	m := BuildMatrix(unknown)
	if !m.Cells[signature.KindCG][signature.KindPT] {
		t.Error("CG x PT should be set")
	}
	for _, row := range m.Rows {
		for _, col := range m.Cols {
			if row == signature.KindCG && col == signature.KindPT {
				continue
			}
			if m.Cells[row][col] {
				t.Errorf("spurious cell %v x %v", row, col)
			}
		}
	}
	s := m.String()
	if !strings.Contains(s, "CG") || !strings.Contains(s, "PT") {
		t.Errorf("matrix render missing headers:\n%s", s)
	}
}

func TestClassifyCongestion(t *testing.T) {
	unknown := []diff.Change{
		change(signature.KindDD, 0, "S3"),
		change(signature.KindPC, 0, "S3"),
		change(signature.KindFS, 0, "S1", "S3"),
		change(signature.KindISL, 0, "sw1", "sw2"),
	}
	ranked := Classify(unknown)
	if len(ranked) == 0 {
		t.Fatal("no classification")
	}
	if ranked[0].Problem != NetworkBottleneck && ranked[0].Problem != SwitchOverhead {
		t.Errorf("top hypothesis = %v, want congestion-flavored", ranked[0].Problem)
	}
}

func TestClassifyUnauthorizedAccess(t *testing.T) {
	unknown := []diff.Change{
		{Kind: signature.KindCG, Description: "new edge ip:203.0.113.9->S8", Components: []string{"ip:203.0.113.9", "S8"}},
		change(signature.KindCI, 0, "S8"),
		change(signature.KindFS, 0, "S8"),
	}
	ranked := Classify(unknown)
	if len(ranked) == 0 {
		t.Fatal("no classification")
	}
	if ranked[0].Problem != UnauthorizedAccess {
		t.Errorf("top hypothesis = %v, want unauthorized access (ranking %+v)", ranked[0].Problem, ranked)
	}
}

func TestClassifyHostVsAppFailure(t *testing.T) {
	// Host failure: node lost multiple edges, nothing added.
	hostDown := []diff.Change{
		{Kind: signature.KindCG, Description: "edge S2->S3 missing", Components: []string{"S2", "S3"}},
		{Kind: signature.KindCG, Description: "edge S3->S8 missing", Components: []string{"S3", "S8"}},
		change(signature.KindCI, 0, "S3"),
		change(signature.KindFS, 0, "S3"),
	}
	ranked := Classify(hostDown)
	if len(ranked) == 0 {
		t.Fatal("no classification")
	}
	if ranked[0].Problem != HostFailure {
		t.Errorf("top hypothesis = %v, want host failure", ranked[0].Problem)
	}
}

// TestClassifyDistinctPeerRequirement pins the host-failure heuristic to
// DISTINCT lost peers: losing two flows to the same peer is one broken
// dependency (application failure), not a disappearing host. The
// pre-fix code counted change rows instead of peers and bumped host
// failure in both cases.
func TestClassifyDistinctPeerRequirement(t *testing.T) {
	// Host vs application failure share an impact pattern, so without
	// the +0.25 host-failure bump the alphabetical tie-break puts
	// application failure first.
	samePeer := []diff.Change{
		{Kind: signature.KindCG, Description: "edge S3->S8 missing", Components: []string{"S3", "S8"}},
		{Kind: signature.KindCG, Description: "edge S8->S3 missing", Components: []string{"S8", "S3"}},
		change(signature.KindCI, 0, "S3"),
		change(signature.KindFS, 0, "S3"),
	}
	ranked := Classify(samePeer)
	if len(ranked) == 0 {
		t.Fatal("no classification")
	}
	if ranked[0].Problem == HostFailure {
		t.Errorf("two lost edges to the SAME peer must not suggest host failure: %+v", ranked)
	}

	distinctPeers := []diff.Change{
		{Kind: signature.KindCG, Description: "edge S2->S3 missing", Components: []string{"S2", "S3"}},
		{Kind: signature.KindCG, Description: "edge S3->S8 missing", Components: []string{"S3", "S8"}},
		change(signature.KindCI, 0, "S3"),
		change(signature.KindFS, 0, "S3"),
	}
	ranked = Classify(distinctPeers)
	if len(ranked) == 0 {
		t.Fatal("no classification")
	}
	if ranked[0].Problem != HostFailure {
		t.Errorf("edges lost to two DISTINCT peers must suggest host failure: %+v", ranked)
	}
}

// TestValidateWindowBoundaries pins the inclusive boundary semantics of
// the validation window and the components-only matching of At == 0
// changes.
func TestValidateWindowBoundaries(t *testing.T) {
	const window = 5 * time.Second
	task := taskmine.Detection{
		Task:  "t",
		Start: 100 * time.Second,
		End:   200 * time.Second,
		Hosts: []string{"S3"},
	}
	cases := []struct {
		name      string
		at        time.Duration
		wantKnown bool
	}{
		{"exactly Start-window is inside (inclusive)", 95 * time.Second, true},
		{"one ns before Start-window is outside", 95*time.Second - time.Nanosecond, false},
		{"exactly End+window is inside (inclusive)", 205 * time.Second, true},
		{"one ns after End+window is outside", 205*time.Second + time.Nanosecond, false},
		{"inside the task span", 150 * time.Second, true},
		{"At zero matches on components only", 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			changes := []diff.Change{change(signature.KindCI, tc.at, "S3")}
			known, unknown := Validate(changes, []taskmine.Detection{task}, nil, window)
			if got := len(known) == 1; got != tc.wantKnown {
				t.Errorf("at %v: known=%v unknown=%v, want explained=%v",
					tc.at, known, unknown, tc.wantKnown)
			}
		})
	}
	// At == 0 with no component overlap stays unknown even though the
	// time filter cannot reject it.
	changes := []diff.Change{change(signature.KindCI, 0, "S9")}
	if known, _ := Validate(changes, []taskmine.Detection{task}, nil, window); len(known) != 0 {
		t.Errorf("components-only match must still require overlap: %+v", known)
	}
}

func TestClassifyEmpty(t *testing.T) {
	if got := Classify(nil); got != nil {
		t.Errorf("Classify(nil) = %v", got)
	}
}

func TestRankComponents(t *testing.T) {
	unknown := []diff.Change{
		change(signature.KindCG, 0, "S3", "S8"),
		change(signature.KindCI, 0, "S3"),
		change(signature.KindDD, 0, "S3"),
		change(signature.KindFS, 0, "S8"),
	}
	ranking := RankComponents(unknown)
	if len(ranking) != 2 {
		t.Fatalf("ranking = %+v", ranking)
	}
	if ranking[0].Component != "S3" || ranking[0].Changes != 3 {
		t.Errorf("top = %+v, want S3 with 3 changes", ranking[0])
	}
	if ranking[1].Component != "S8" || ranking[1].Changes != 2 {
		t.Errorf("second = %+v", ranking[1])
	}
}

func TestDiagnoseEndToEnd(t *testing.T) {
	r := labResolver(t)
	changes := []diff.Change{
		change(signature.KindCG, 10*time.Second, "S3", "S8"),
		change(signature.KindCI, 0, "S3"),
	}
	topo, err := topology.Lab()
	if err != nil {
		t.Fatal(err)
	}
	rep := Diagnose(changes, nil, r, topo, 0)
	if len(rep.Unknown) != 2 || len(rep.Known) != 0 {
		t.Errorf("report split wrong: %+v", rep)
	}
	if len(rep.Problems) == 0 || len(rep.Ranking) == 0 {
		t.Error("report missing classification or ranking")
	}
	// The CG change names hosts S3 (behind sw2) and S8 (behind sw3), so
	// the suspect tally must cover their path through the fabric.
	if len(rep.Suspects) == 0 {
		t.Fatal("report missing suspects")
	}
	got := make(map[string]bool, len(rep.Suspects))
	for _, s := range rep.Suspects {
		got[s.Component] = true
	}
	for _, want := range []string{"sw1", "sw2", "sw3", topology.LinkID("S3", "sw2"), topology.LinkID("S8", "sw3")} {
		if !got[want] {
			t.Errorf("suspects missing %s: %+v", want, rep.Suspects)
		}
	}
}

// TestClassifyAllPatterns feeds each Figure 2b class's exact impact set to
// the classifier and checks the class lands at or near the top.
func TestClassifyAllPatterns(t *testing.T) {
	for problem := range map[Problem]bool{
		HostFailure: true, HostPerformance: true, AppFailure: true,
		AppPerformance: true, NetworkDisconnect: true, NetworkBottleneck: true,
		SwitchMisconfig: true, SwitchOverhead: true, ControllerOverhead: true,
		SwitchFailure: true, ControllerFailure: true, UnauthorizedAccess: true,
	} {
		var changes []diff.Change
		for _, k := range PatternOf(problem) {
			c := change(k, 0, "X")
			if problem == UnauthorizedAccess && k == signature.KindCG {
				c = diff.Change{Kind: k, Description: "new edge ip:203.0.113.9->X", Components: []string{"ip:203.0.113.9", "X"}}
			}
			changes = append(changes, c)
		}
		ranked := Classify(changes)
		if len(ranked) == 0 {
			t.Fatalf("%s: no classification", problem)
		}
		// The true class must appear within the top 3 (several classes
		// intentionally share patterns, e.g. host vs application failure).
		found := false
		for i, s := range ranked {
			if i >= 3 {
				break
			}
			if s.Problem == problem {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: not in top-3 of %+v", problem, ranked[:min(3, len(ranked))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPatternOfUnknown(t *testing.T) {
	if PatternOf(Problem("nonsense")) != nil {
		t.Error("unknown problem should have nil pattern")
	}
}
