package signature

import (
	"errors"
	"io"
	"reflect"
	"runtime"
	"testing"
	"time"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/flowlog"
)

// sliceSource adapts an in-memory event slice to the EventSource
// interface, serving fixed-size batches like a decoding reader would.
type sliceSource struct {
	events     []flowlog.Event
	start, end time.Duration
	batch      int
	pos        int
}

func (s *sliceSource) Next() ([]flowlog.Event, error) {
	if s.pos >= len(s.events) {
		return nil, io.EOF
	}
	n := s.batch
	if n <= 0 {
		n = 512
	}
	if s.pos+n > len(s.events) {
		n = len(s.events) - s.pos
	}
	b := s.events[s.pos : s.pos+n]
	s.pos += n
	return b, nil
}

func (s *sliceSource) Bounds() (start, end time.Duration) { return s.start, s.end }

func sourceOf(l *flowlog.Log, batch int) *sliceSource {
	return &sliceSource{events: l.Events, start: l.Start, end: l.End, batch: batch}
}

// TestPipelineFromSourceMatchesInMemory pins the streaming build's
// equivalence contract: every product of a source-fed pipeline —
// occurrences, app signatures, infra signature, stability — must be
// byte-identical (reflect.DeepEqual over float-carrying structs, so
// same accumulation order, not just same values) to the in-memory
// pipeline over the same events, for every worker count.
func TestPipelineFromSourceMatchesInMemory(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	log := benchLog(40_000)
	r := appgroup.NewResolver(nil)
	ref := NewPipeline(log, r, Config{Parallelism: 1})
	refApp := ref.App()
	refInfra := ref.Infra()
	refStab, err := ref.Stability(StabilityConfig{}, refApp)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 7} {
		p, err := NewPipelineFromSource(sourceOf(log, 1000), r, Config{Parallelism: workers}, StabilityConfig{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if p.EventCount() != len(log.Events) {
			t.Errorf("workers=%d: EventCount = %d, want %d", workers, p.EventCount(), len(log.Events))
		}
		if !reflect.DeepEqual(p.Occurrences(), ref.Occurrences()) {
			t.Errorf("workers=%d: occurrences differ (%d vs %d)", workers, len(p.Occurrences()), len(ref.Occurrences()))
		}
		if app := p.App(); !reflect.DeepEqual(app, refApp) {
			t.Errorf("workers=%d: app signatures differ", workers)
		}
		if inf := p.Infra(); !reflect.DeepEqual(inf, refInfra) {
			t.Errorf("workers=%d: infra signatures differ", workers)
		}
		stab, err := p.Stability(StabilityConfig{}, refApp)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(stab, refStab) {
			t.Errorf("workers=%d: stability results differ", workers)
		}
	}
}

// Batch size must be invisible: the same events in different batch
// shapes yield the same occurrences.
func TestPipelineFromSourceBatchShapeInvariant(t *testing.T) {
	log := benchLog(5_000)
	r := appgroup.NewResolver(nil)
	want := NewPipeline(log, r, Config{Parallelism: 1}).Occurrences()
	for _, batch := range []int{1, 7, 8192} {
		p, err := NewPipelineFromSource(sourceOf(log, batch), r, Config{Parallelism: 1}, StabilityConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p.Occurrences(), want) {
			t.Errorf("batch=%d: occurrences differ", batch)
		}
	}
}

// Stability over a source pipeline is sized at construction; asking for
// a different interval count later must fail loudly, not mis-bucket.
func TestPipelineFromSourceIntervalMismatch(t *testing.T) {
	log := benchLog(2_000)
	r := appgroup.NewResolver(nil)
	p, err := NewPipelineFromSource(sourceOf(log, 500), r, Config{Parallelism: 1}, StabilityConfig{Intervals: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Stability(StabilityConfig{Intervals: 3}, p.App()); err == nil {
		t.Error("want error for interval-count mismatch")
	}
	if _, err := p.Stability(StabilityConfig{Intervals: 5}, p.App()); err != nil {
		t.Errorf("matching interval count: %v", err)
	}
}

// A zero-duration source defers flowlog.Segment's error to Stability —
// the same stage where the in-memory pipeline reports it.
func TestPipelineFromSourceSegmentErrorParity(t *testing.T) {
	l := flowlog.New(0, 0)
	l.Append(flowlog.Event{Time: 0, Type: flowlog.EventPacketIn, Switch: "sw",
		Flow: flowlog.FlowKey{Proto: 6, Src: addr(1), Dst: addr(2), SrcPort: 1, DstPort: 2}})
	r := appgroup.NewResolver(nil)
	p, err := NewPipelineFromSource(sourceOf(l, 10), r, Config{Parallelism: 1}, StabilityConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, errSrc := p.Stability(StabilityConfig{}, p.App())
	_, errMem := NewPipeline(l, r, Config{Parallelism: 1}).Stability(StabilityConfig{}, nil)
	if errSrc == nil || errMem == nil {
		t.Fatalf("want errors from both paths, got src=%v mem=%v", errSrc, errMem)
	}
	if errSrc.Error() != errMem.Error() {
		t.Errorf("error parity: src %q, mem %q", errSrc, errMem)
	}
}

type failingSource struct{ after int }

func (f *failingSource) Next() ([]flowlog.Event, error) {
	if f.after > 0 {
		f.after--
		return []flowlog.Event{{Time: time.Second, Type: flowlog.EventPacketIn}}, nil
	}
	return nil, errors.New("disk on fire")
}

func (f *failingSource) Bounds() (start, end time.Duration) { return 0, time.Minute }

func TestPipelineFromSourceReadError(t *testing.T) {
	_, err := NewPipelineFromSource(&failingSource{after: 2}, appgroup.NewResolver(nil), Config{}, StabilityConfig{})
	if err == nil {
		t.Fatal("want the source's read error")
	}
	if got := err.Error(); got != "signature: reading event source: disk on fire" {
		t.Errorf("err = %q", got)
	}
}

func TestPipelineFromSourceEmpty(t *testing.T) {
	p, err := NewPipelineFromSource(sourceOf(flowlog.New(0, time.Minute), 10), appgroup.NewResolver(nil), Config{}, StabilityConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p.EventCount() != 0 {
		t.Errorf("EventCount = %d, want 0", p.EventCount())
	}
	if occs := p.Occurrences(); len(occs) != 0 {
		t.Errorf("got %d occurrences from an empty source", len(occs))
	}
	if app := p.App(); len(app) != 0 {
		t.Errorf("got %d app signatures from an empty source", len(app))
	}
}
