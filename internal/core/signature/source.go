package signature

import (
	"context"
	"fmt"
	"io"
	"time"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/obs"
	"flowdiff/internal/parallel"
)

// EventSource is a pull-based stream of decoded event batches, the
// streaming counterpart of a materialized flowlog.Log. colseg.Reader
// implements it over the on-disk columnar format. Next returns io.EOF
// after the final batch; a returned slice is only valid until the next
// call, so consumers must not retain it (events themselves may be
// copied out freely).
type EventSource interface {
	Next() ([]flowlog.Event, error)
	// Bounds returns the covered interval [start, end] — flowlog.Log's
	// Start and End.
	Bounds() (start, end time.Duration)
}

// sourceAgg accumulates, in one streaming pass, every per-log aggregate
// the signature builds need besides the occurrences: the distinct
// PacketIn edge set (group discovery), per-edge FlowRemoved samples in
// log order (FS statistics), the first FlowRemoved per flow key in log
// order (link-utilization attribution), and per-stability-interval
// versions of the first two. Each aggregate replicates exactly what the
// in-memory path derives from the full event slice, which is what makes
// the streaming build's report byte-identical.
type sourceAgg struct {
	meta    logMeta
	edges   map[Edge]int
	removed map[Edge][]removedSample
	// removals is firstRemovals of the streamed log: one entry per flow
	// key, in log order.
	removals []removedFlow
	// segs mirror flowlog.Segment(intervals) over [Start, End]; segErr
	// preserves Segment's error for Stability-time parity.
	segs     []segAgg
	segWidth time.Duration
	segErr   error
	events   int

	seenFlows   map[flowlog.FlowKey]bool
	seenRemoved map[flowlog.FlowKey]bool
}

// segAgg is one stability interval's slice of the aggregates.
type segAgg struct {
	meta    logMeta
	edges   map[Edge]int
	removed map[Edge][]removedSample
	seen    map[flowlog.FlowKey]bool
}

func newSourceAgg(start, end time.Duration, intervals int) *sourceAgg {
	a := &sourceAgg{
		meta:        logMeta{Start: start, End: end},
		edges:       make(map[Edge]int),
		removed:     make(map[Edge][]removedSample),
		seenFlows:   make(map[flowlog.FlowKey]bool),
		seenRemoved: make(map[flowlog.FlowKey]bool),
	}
	segs, err := (&flowlog.Log{Start: start, End: end}).Segment(intervals)
	if err != nil {
		a.segErr = err
		return a
	}
	a.segWidth = (end - start) / time.Duration(intervals)
	a.segs = make([]segAgg, len(segs))
	for i, s := range segs {
		a.segs[i] = segAgg{
			meta:    logMeta{Start: s.Start, End: s.End},
			edges:   make(map[Edge]int),
			removed: make(map[Edge][]removedSample),
			seen:    make(map[flowlog.FlowKey]bool),
		}
	}
	return a
}

// segIndex maps an event time to its stability interval, mirroring
// flowlog.Segment's windows: half-open except the final interval, which
// absorbs the division remainder and is inclusive of End. Events outside
// [Start, End] belong to no interval (Segment's windows never cover
// them either).
func (a *sourceAgg) segIndex(t time.Duration) int {
	if len(a.segs) == 0 || t < a.meta.Start || t > a.meta.End {
		return -1
	}
	i := int((t - a.meta.Start) / a.segWidth)
	if i >= len(a.segs) {
		i = len(a.segs) - 1
	}
	return i
}

// add folds one event into the aggregates. Events must arrive in log
// order: the sample slices' order is part of the byte-identical
// contract.
func (a *sourceAgg) add(e *flowlog.Event, r *appgroup.Resolver) {
	a.events++
	switch e.Type {
	case flowlog.EventPacketIn:
		edge := Edge{Src: r.Node(e.Flow.Src), Dst: r.Node(e.Flow.Dst)}
		if !a.seenFlows[e.Flow] {
			a.seenFlows[e.Flow] = true
			a.edges[edge]++
		}
		if i := a.segIndex(e.Time); i >= 0 {
			s := &a.segs[i]
			if !s.seen[e.Flow] {
				s.seen[e.Flow] = true
				s.edges[edge]++
			}
		}
	case flowlog.EventFlowRemoved:
		edge := Edge{Src: r.Node(e.Flow.Src), Dst: r.Node(e.Flow.Dst)}
		sample := removedSample{Bytes: e.Bytes, Packets: e.Packets, Duration: e.FlowDuration}
		a.removed[edge] = append(a.removed[edge], sample)
		if !a.seenRemoved[e.Flow] {
			a.seenRemoved[e.Flow] = true
			a.removals = append(a.removals, removedFlow{Key: e.Flow, Bytes: e.Bytes})
		}
		if i := a.segIndex(e.Time); i >= 0 {
			s := &a.segs[i]
			s.removed[edge] = append(s.removed[edge], sample)
		}
	}
}

func (a *sourceAgg) view() appView {
	return appView{meta: a.meta, removed: a.removed}
}

// streamStageEvents is how many staged control events accumulate before
// the sharded extractor drains them onto the worker pool. Large enough
// to amortize fan-out, small enough that staging stays a rounding error
// against a decoded segment.
const streamStageEvents = 1 << 15

// streamShards fans streamed events into per-flow-shard StreamExtractors,
// the streaming counterpart of OccurrencesSharded: events are staged by
// flow-key hash and periodically drained in parallel — each extractor is
// touched by one worker per drain, and shard assignment depends only on
// the key, so every event of a key lands in the same extractor. Each
// per-shard Flush is in canonical occurrence order and the merge
// comparator is a total order, so the result is byte-identical to the
// serial path for every worker count.
type streamShards struct {
	xs     []*StreamExtractor
	bufs   [][]flowlog.Event
	staged int
}

func newStreamShards(gap time.Duration, workers int) *streamShards {
	s := &streamShards{
		xs:   make([]*StreamExtractor, workers),
		bufs: make([][]flowlog.Event, workers),
	}
	for i := range s.xs {
		s.xs[i] = NewStreamExtractor(gap)
	}
	return s
}

func (s *streamShards) stage(e flowlog.Event) {
	if !relevant(e.Type) {
		return
	}
	const liveBit = 1 << 31
	w := int(hashKey(e.Flow)&^uint32(liveBit)) % len(s.xs)
	s.bufs[w] = append(s.bufs[w], e)
	s.staged++
}

func (s *streamShards) drain(ctx context.Context) error {
	err := parallel.ForContext(ctx, len(s.xs), len(s.xs), func(w int) {
		for _, e := range s.bufs[w] {
			s.xs[w].Append(e)
		}
		s.bufs[w] = s.bufs[w][:0]
	})
	s.staged = 0
	return err
}

func (s *streamShards) finish(ctx context.Context) ([]Occurrence, error) {
	if err := s.drain(ctx); err != nil {
		return nil, err
	}
	parts := make([][]Occurrence, len(s.xs))
	if err := parallel.ForContext(ctx, len(s.xs), len(s.xs), func(w int) {
		parts[w] = s.xs[w].Flush()
	}); err != nil {
		return nil, err
	}
	return mergeOccurrences(parts), nil
}

// NewPipelineFromSource is NewPipelineFromSourceContext with a
// background context.
func NewPipelineFromSource(src EventSource, r *appgroup.Resolver, cfg Config, scfg StabilityConfig) (*Pipeline, error) {
	return NewPipelineFromSourceContext(context.Background(), src, r, cfg, scfg)
}

// NewPipelineFromSourceContext builds a pipeline by streaming the
// source once: occurrences are extracted incrementally (sharded by
// flow-key hash across Config.Parallelism workers), and everything else
// the signature builds need — edge sets, FlowRemoved samples, per-
// interval aggregates sized by scfg.Intervals — is folded into running
// aggregates, so peak memory is one decoded batch plus the aggregates
// and occurrences, never the full event slice. The resulting pipeline's
// products are byte-identical to one built over the same events in
// memory; its Stability must be called with the same interval count the
// aggregates were sized with.
func NewPipelineFromSourceContext(ctx context.Context, src EventSource, r *appgroup.Resolver, cfg Config, scfg StabilityConfig) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	scfg = scfg.withDefaults()
	start, end := src.Bounds()
	agg := newSourceAgg(start, end, scfg.Intervals)
	//lint:ignore obsspan same logical stage as the in-memory pipeline's extract; a build runs exactly one of the two paths, and the name must stay stable for timeline consumers
	sp := obs.Span(ctx, "signature.extract")
	occs, err := extractFromSource(ctx, src, agg, r, cfg)
	sp.End()
	if err != nil {
		return nil, err
	}
	obs.From(ctx).Counter("signature.occurrences").Add(int64(len(occs)))
	return &Pipeline{ctx: ctx, meta: agg.meta, agg: agg, r: r, cfg: cfg, occs: occs}, nil
}

// extractFromSource drains the source, feeding every event to the
// aggregates and every control event to the occurrence extractor —
// serial below two workers, sharded otherwise.
func extractFromSource(ctx context.Context, src EventSource, agg *sourceAgg, r *appgroup.Resolver, cfg Config) ([]Occurrence, error) {
	workers := cfg.workers()
	var (
		serial *StreamExtractor
		shards *streamShards
	)
	if workers <= 1 {
		serial = NewStreamExtractor(cfg.OccurrenceGap)
	} else {
		shards = newStreamShards(cfg.OccurrenceGap, workers)
	}
	for {
		batch, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("signature: reading event source: %w", err)
		}
		for i := range batch {
			agg.add(&batch[i], r)
			if serial != nil {
				serial.Append(batch[i])
			} else {
				shards.stage(batch[i])
			}
		}
		if shards != nil && shards.staged >= streamStageEvents {
			if err := shards.drain(ctx); err != nil {
				return nil, err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if serial != nil {
		return serial.Flush(), nil
	}
	return shards.finish(ctx)
}
