package signature

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"runtime"
	"testing"
	"time"

	"flowdiff/internal/flowlog"
)

// messyLog builds a log designed to stress every extraction edge case:
// many keys (well past the sharded-path threshold), multiple episodes
// per key (gap splits), FlowMod-only keys (wildcard mode), FlowRemoved
// noise, equal-start ties across keys, and — when shuffle is set —
// out-of-order events.
func messyLog(t *testing.T, nKeys int, shuffle bool) *flowlog.Log {
	t.Helper()
	l := flowlog.New(0, 10*time.Minute)
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < nKeys; k++ {
		key := flowlog.FlowKey{
			Proto:   6,
			Src:     netip.AddrFrom4([4]byte{10, byte(k >> 8), byte(k), 1}),
			Dst:     netip.AddrFrom4([4]byte{10, byte(k >> 8), byte(k), 2}),
			SrcPort: uint16(1024 + k),
			DstPort: 80,
		}
		// All keys share episode start times so the final sort must
		// tie-break on the key itself.
		for ep := 0; ep < 3; ep++ {
			t0 := time.Duration(ep) * 90 * time.Second
			if k%5 == 0 {
				// Wildcard-style key: FlowMods only, no PacketIn.
				l.Append(flowlog.Event{Time: t0, Type: flowlog.EventFlowMod, Switch: "sw1", Flow: key})
				continue
			}
			l.Append(flowlog.Event{Time: t0, Type: flowlog.EventPacketIn, Switch: "sw1", Flow: key})
			l.Append(flowlog.Event{Time: t0 + 2*time.Millisecond, Type: flowlog.EventFlowMod, Switch: "sw1", Flow: key})
			l.Append(flowlog.Event{Time: t0 + 4*time.Millisecond, Type: flowlog.EventPacketIn, Switch: "sw2", Flow: key})
			l.Append(flowlog.Event{Time: t0 + 30*time.Second, Type: flowlog.EventFlowRemoved, Switch: "sw1", Flow: key, Bytes: 100})
		}
	}
	if shuffle {
		rng.Shuffle(len(l.Events), func(i, j int) {
			l.Events[i], l.Events[j] = l.Events[j], l.Events[i]
		})
	} else {
		l.Sort()
	}
	return l
}

// TestOccurrencesShardedMatchesSerial pins the tentpole equivalence:
// sharded extraction must produce the byte-identical occurrence slice
// for every worker count, on sorted and on shuffled logs.
func TestOccurrencesShardedMatchesSerial(t *testing.T) {
	for _, shuffle := range []bool{false, true} {
		name := "sorted"
		if shuffle {
			name = "shuffled"
		}
		t.Run(name, func(t *testing.T) {
			// Raise GOMAXPROCS so the widths below mean real concurrency
			// even on single-CPU CI hosts (the exported entry point clamps;
			// the unclamped core is what this equivalence must hold for).
			old := runtime.GOMAXPROCS(8)
			defer runtime.GOMAXPROCS(old)
			log := messyLog(t, 800, shuffle)
			if len(log.Events) < shardedMinEvents {
				t.Fatalf("log has %d events; need >= %d so the sharded path is really exercised", len(log.Events), shardedMinEvents)
			}
			want := Occurrences(log, 0)
			if len(want) == 0 {
				t.Fatal("serial extraction found nothing; equivalence would be vacuous")
			}
			for _, workers := range []int{1, 2, 4, 7, runtime.GOMAXPROCS(0)} {
				got := occurrencesSharded(context.Background(), log, 0, workers)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: sharded extraction differs from serial (%d vs %d occurrences)", workers, len(got), len(want))
				}
			}
		})
	}
}

// TestOccurrencesShardedSmallLogFallback: below the threshold the
// sharded entry point must still give the serial result.
func TestOccurrencesShardedSmallLogFallback(t *testing.T) {
	l := flowlog.New(0, time.Minute)
	key := flowlog.FlowKey{Proto: 6, Src: addr(1), Dst: addr(2), SrcPort: 1, DstPort: 2}
	l.Append(flowlog.Event{Time: time.Second, Type: flowlog.EventPacketIn, Switch: "sw", Flow: key})
	want := Occurrences(l, 0)
	got := OccurrencesSharded(l, Config{Parallelism: 4})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("small-log sharded result differs: %+v vs %+v", got, want)
	}
}

// TestOccurrencesShardedClampsWorkers: the exported entry point must
// clamp absurd worker requests to the CPU count instead of spawning
// hundreds of goroutines — and still produce the serial result.
func TestOccurrencesShardedClampsWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	log := messyLog(t, 800, false)
	want := Occurrences(log, 0)
	got := OccurrencesSharded(log, Config{Parallelism: 512})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("clamped sharded extraction differs from serial (%d vs %d occurrences)", len(got), len(want))
	}
}

// TestCompareKeysTotalOrder checks the allocation-free comparator is a
// strict total order consistent with itself (antisymmetric, transitive
// on a sampled set, zero only on equality).
func TestCompareKeysTotalOrder(t *testing.T) {
	keys := []flowlog.FlowKey{
		{},
		{Proto: 6, Src: addr(1), Dst: addr(2), SrcPort: 10, DstPort: 80},
		{Proto: 6, Src: addr(1), Dst: addr(2), SrcPort: 11, DstPort: 80},
		{Proto: 6, Src: addr(1), Dst: addr(3), SrcPort: 10, DstPort: 80},
		{Proto: 6, Src: addr(2), Dst: addr(1), SrcPort: 10, DstPort: 80},
		{Proto: 17, Src: addr(1), Dst: addr(2), SrcPort: 10, DstPort: 80},
		{Proto: 6, Src: addr(1), Dst: addr(2), SrcPort: 10, DstPort: 443},
	}
	for i, a := range keys {
		for j, b := range keys {
			c, rc := compareKeys(a, b), compareKeys(b, a)
			if (i == j) != (c == 0) {
				t.Errorf("compareKeys(%v,%v)=%d; equality must hold exactly for identical keys", a, b, c)
			}
			if c != -rc {
				t.Errorf("compareKeys not antisymmetric on %v,%v: %d vs %d", a, b, c, rc)
			}
			for k, cc := range keys {
				if compareKeys(a, b) < 0 && compareKeys(b, cc) < 0 && compareKeys(a, keys[k]) >= 0 {
					t.Errorf("compareKeys not transitive on %v,%v,%v", a, b, cc)
				}
			}
		}
	}
}

// TestHashKeyStable: the shard hash must be a pure function of the key
// (every event of a key must land in the same shard).
func TestHashKeyStable(t *testing.T) {
	a := flowlog.FlowKey{Proto: 6, Src: addr(1), Dst: addr(2), SrcPort: 10, DstPort: 80}
	if hashKey(a) != hashKey(a) {
		t.Fatal("hashKey not deterministic")
	}
	b := a
	b.DstPort = 81
	if hashKey(a) == hashKey(b) {
		// Not impossible, but with FNV-1a over distinct tuples this
		// particular pair must differ; a collision here means the hash
		// is ignoring fields.
		t.Fatal("hashKey ignores the destination port")
	}
	var zero flowlog.FlowKey // zero netip.Addrs must hash, not panic
	_ = hashKey(zero)
}

// TestMergeOccurrences exercises the k-way merge on uneven shards.
func TestMergeOccurrences(t *testing.T) {
	mk := func(starts ...int) []Occurrence {
		out := make([]Occurrence, len(starts))
		for i, s := range starts {
			out[i] = Occurrence{Start: time.Duration(s) * time.Second, Events: []flowlog.Event{{}}}
		}
		return out
	}
	got := mergeOccurrences([][]Occurrence{mk(1, 4, 9), nil, mk(2), mk(3, 5, 6, 7, 8)})
	var starts []int
	for _, o := range got {
		starts = append(starts, int(o.Start/time.Second))
	}
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !reflect.DeepEqual(starts, want) {
		t.Errorf("merged starts = %v, want %v", starts, want)
	}
}

func BenchmarkOccurrencesSerial(b *testing.B) {
	for _, n := range []int{100_000, 500_000} {
		log := benchLog(n)
		b.Run(fmt.Sprintf("events=%dk", n/1000), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Occurrences(log, 0)
			}
		})
	}
}
