// Package signature builds FlowDiff's behavioral models from control
// traffic (paper §III): the five application signatures — connectivity
// graph (CG), flow statistics (FS), component interaction (CI), delay
// distribution (DD), and partial correlation (PC) — and the three
// infrastructure signatures — physical topology (PT), inter-switch
// latency (ISL), and controller response time (CRT) — plus the
// per-interval stability analysis that decides which signatures are
// trustworthy for diffing.
package signature

import (
	"sort"
	"time"

	"flowdiff/internal/flowlog"
)

// Occurrence is one appearance of a flow in the log: the burst of control
// events (one PacketIn per switch on the path, plus the FlowMods answering
// them) produced when a flow without an installed rule starts. A flow key
// can occur several times in a log (entry expires, flow restarts); each
// episode is a separate occurrence.
type Occurrence struct {
	Key flowlog.FlowKey
	// Start is the earliest PacketIn timestamp of the episode — the
	// flow's start as the controller sees it.
	Start time.Duration
	// Events are the episode's PacketIn/FlowMod events in time order.
	Events []flowlog.Event
}

// Switches returns the episode's switch visit order (from PacketIns).
func (o Occurrence) Switches() []string {
	var out []string
	for _, e := range o.Events {
		if e.Type == flowlog.EventPacketIn {
			out = append(out, e.Switch)
		}
	}
	return out
}

// DefaultOccurrenceGap separates two occurrences of the same flow key: a
// quiet period longer than this starts a new episode. Path setup spans
// milliseconds; entry timeouts are seconds, so one second cleanly
// separates episodes.
const DefaultOccurrenceGap = time.Second

// Occurrences extracts flow episodes from a log. Events are grouped per
// flow key, ordered by time, and split wherever the gap between
// consecutive control events of the key exceeds gap (<=0 uses
// DefaultOccurrenceGap). The result is ordered by start time.
func Occurrences(log *flowlog.Log, gap time.Duration) []Occurrence {
	if gap <= 0 {
		gap = DefaultOccurrenceGap
	}
	// Work with indices into log.Events to avoid copying the (large)
	// Event structs while grouping.
	perKey := make(map[flowlog.FlowKey][]int32)
	for i := range log.Events {
		t := log.Events[i].Type
		if t != flowlog.EventPacketIn && t != flowlog.EventFlowMod {
			continue
		}
		perKey[log.Events[i].Flow] = append(perKey[log.Events[i].Flow], int32(i))
	}
	out := make([]Occurrence, 0, len(perKey))
	for key, idxs := range perKey {
		// Logs are normally already time-sorted, in which case the
		// scan-order index list is sorted too; only fall back to an
		// explicit sort when needed.
		sorted := true
		for j := 1; j < len(idxs); j++ {
			if log.Events[idxs[j]].Time < log.Events[idxs[j-1]].Time {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.SliceStable(idxs, func(a, b int) bool {
				return log.Events[idxs[a]].Time < log.Events[idxs[b]].Time
			})
		}
		// One contiguous buffer per key; episodes are subslices of it.
		buf := make([]flowlog.Event, len(idxs))
		for j, idx := range idxs {
			buf[j] = log.Events[idx]
		}
		epStart := 0
		flush := func(end int) {
			if end == epStart {
				return
			}
			events := buf[epStart:end:end]
			occ := Occurrence{Key: key, Events: events}
			found := false
			for _, e := range events {
				if e.Type == flowlog.EventPacketIn {
					occ.Start = e.Time
					found = true
					break
				}
			}
			// Episodes with no PacketIn (wildcard-mode FlowMods keyed by
			// the installed match) fall back to the first event's time.
			if !found {
				occ.Start = events[0].Time
			}
			out = append(out, occ)
			epStart = end
		}
		for j := 1; j < len(buf); j++ {
			if buf[j].Time-buf[j-1].Time > gap {
				flush(j)
			}
		}
		flush(len(buf))
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	return out
}
