// Package signature builds FlowDiff's behavioral models from control
// traffic (paper §III): the five application signatures — connectivity
// graph (CG), flow statistics (FS), component interaction (CI), delay
// distribution (DD), and partial correlation (PC) — and the three
// infrastructure signatures — physical topology (PT), inter-switch
// latency (ISL), and controller response time (CRT) — plus the
// per-interval stability analysis that decides which signatures are
// trustworthy for diffing.
package signature

import (
	"sort"
	"time"

	"flowdiff/internal/flowlog"
)

// Occurrence is one appearance of a flow in the log: the burst of control
// events (one PacketIn per switch on the path, plus the FlowMods answering
// them) produced when a flow without an installed rule starts. A flow key
// can occur several times in a log (entry expires, flow restarts); each
// episode is a separate occurrence.
type Occurrence struct {
	Key flowlog.FlowKey
	// Start is the earliest PacketIn timestamp of the episode — the
	// flow's start as the controller sees it.
	Start time.Duration
	// Events are the episode's PacketIn/FlowMod events in time order.
	Events []flowlog.Event
}

// Switches returns the episode's switch visit order (from PacketIns).
func (o Occurrence) Switches() []string {
	var out []string
	for _, e := range o.Events {
		if e.Type == flowlog.EventPacketIn {
			out = append(out, e.Switch)
		}
	}
	return out
}

// DefaultOccurrenceGap separates two occurrences of the same flow key: a
// quiet period longer than this starts a new episode. Path setup spans
// milliseconds; entry timeouts are seconds, so one second cleanly
// separates episodes.
const DefaultOccurrenceGap = time.Second

// compareKeys orders flow keys by field (proto, src, src port, dst, dst
// port) without allocating. It replaces the former Key.String()
// comparison in the occurrence sort, which built two strings per
// comparison and dominated extraction allocs on large logs.
func compareKeys(a, b flowlog.FlowKey) int {
	if a.Proto != b.Proto {
		if a.Proto < b.Proto {
			return -1
		}
		return 1
	}
	if c := a.Src.Compare(b.Src); c != 0 {
		return c
	}
	if a.SrcPort != b.SrcPort {
		if a.SrcPort < b.SrcPort {
			return -1
		}
		return 1
	}
	if c := a.Dst.Compare(b.Dst); c != 0 {
		return c
	}
	if a.DstPort != b.DstPort {
		if a.DstPort < b.DstPort {
			return -1
		}
		return 1
	}
	return 0
}

// occLess is the canonical occurrence order: start time, then key. Two
// distinct occurrences never compare equal under it (episodes of one key
// are gap-separated, so they cannot share a start), which is what makes
// serial sorting, sharded merging, and streaming extraction produce the
// exact same slice.
func occLess(a, b Occurrence) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return compareKeys(a.Key, b.Key) < 0
}

// relevant reports whether an event participates in occurrence
// extraction (only the control messages of path setup do).
func relevant(t flowlog.EventType) bool {
	return t == flowlog.EventPacketIn || t == flowlog.EventFlowMod
}

// episodeStart is the episode's start time: the earliest PacketIn, or —
// for episodes with no PacketIn (wildcard-mode FlowMods keyed by the
// installed match) — the first event's time.
func episodeStart(events []flowlog.Event) time.Duration {
	for _, e := range events {
		if e.Type == flowlog.EventPacketIn {
			return e.Time
		}
	}
	return events[0].Time
}

// appendEpisode appends one closed episode (a capacity-capped subslice of
// a per-key buffer) as an Occurrence.
func appendEpisode(out []Occurrence, key flowlog.FlowKey, events []flowlog.Event) []Occurrence {
	if len(events) == 0 {
		return out
	}
	return append(out, Occurrence{Key: key, Start: episodeStart(events), Events: events})
}

// splitEpisodes splits one key's time-sorted event buffer at gaps and
// appends the resulting episodes to out. Episodes are subslices of buf.
func splitEpisodes(out []Occurrence, key flowlog.FlowKey, buf []flowlog.Event, gap time.Duration) []Occurrence {
	epStart := 0
	for j := 1; j < len(buf); j++ {
		if buf[j].Time-buf[j-1].Time > gap {
			out = appendEpisode(out, key, buf[epStart:j:j])
			epStart = j
		}
	}
	return appendEpisode(out, key, buf[epStart:len(buf):len(buf)])
}

// extractFromIdxs turns a per-key index grouping into the start-sorted
// occurrence slice. It is the shared tail of the serial and sharded
// extraction paths: per key, copy the events into one contiguous buffer
// (sorting the indices first only when the log is out of order) and
// split it at gaps.
func extractFromIdxs(log *flowlog.Log, perKey map[flowlog.FlowKey][]int32, gap time.Duration) []Occurrence {
	out := make([]Occurrence, 0, len(perKey))
	for key, idxs := range perKey {
		// Logs are normally already time-sorted, in which case the
		// scan-order index list is sorted too; only fall back to an
		// explicit sort when needed.
		sorted := true
		for j := 1; j < len(idxs); j++ {
			if log.Events[idxs[j]].Time < log.Events[idxs[j-1]].Time {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.SliceStable(idxs, func(a, b int) bool {
				return log.Events[idxs[a]].Time < log.Events[idxs[b]].Time
			})
		}
		// One contiguous buffer per key; episodes are subslices of it.
		buf := make([]flowlog.Event, len(idxs))
		for j, idx := range idxs {
			buf[j] = log.Events[idx]
		}
		out = splitEpisodes(out, key, buf, gap)
	}
	sort.Slice(out, func(i, j int) bool { return occLess(out[i], out[j]) })
	return out
}

// Occurrences extracts flow episodes from a log. Events are grouped per
// flow key, ordered by time, and split wherever the gap between
// consecutive control events of the key exceeds gap (<=0 uses
// DefaultOccurrenceGap). The result is ordered by start time (ties
// broken by key), the canonical order shared with OccurrencesSharded
// and StreamExtractor.
func Occurrences(log *flowlog.Log, gap time.Duration) []Occurrence {
	if gap <= 0 {
		gap = DefaultOccurrenceGap
	}
	// Work with indices into log.Events to avoid copying the (large)
	// Event structs while grouping.
	perKey := make(map[flowlog.FlowKey][]int32)
	for i := range log.Events {
		if !relevant(log.Events[i].Type) {
			continue
		}
		perKey[log.Events[i].Flow] = append(perKey[log.Events[i].Flow], int32(i))
	}
	return extractFromIdxs(log, perKey, gap)
}
