package signature

import (
	"context"
	"sort"
	"time"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/obs"
	"flowdiff/internal/parallel"
	"flowdiff/internal/stats"
	"flowdiff/internal/topology"
)

// Kind identifies one signature component.
type Kind string

// Signature component kinds (paper Figure 2a).
const (
	KindCG  Kind = "CG"  // connectivity graph
	KindFS  Kind = "FS"  // flow statistics
	KindCI  Kind = "CI"  // component interaction
	KindDD  Kind = "DD"  // delay distribution
	KindPC  Kind = "PC"  // partial correlation
	KindPT  Kind = "PT"  // physical topology
	KindISL Kind = "ISL" // inter-switch latency
	KindCRT Kind = "CRT" // controller response time
)

// Config tunes signature extraction. Zero values take the documented
// defaults.
type Config struct {
	// OccurrenceGap separates episodes of the same flow key. Default 1 s.
	OccurrenceGap time.Duration
	// DDBin is the delay-distribution bucket width. Default 20 ms (the
	// paper plots delays with 20 ms bins).
	DDBin time.Duration
	// DDWindow caps how far ahead an outgoing flow may start and still be
	// paired with an incoming flow. Default 1 s.
	DDWindow time.Duration
	// PCEpoch is the epoch length for the flow-count time series behind
	// the partial-correlation signature. Default 5 s.
	PCEpoch time.Duration
	// Special marks the data center's service nodes (group boundaries).
	Special map[topology.NodeID]bool
	// Parallelism bounds the worker pool for per-group and per-interval
	// builds: 0 uses one worker per CPU, 1 forces sequential builds.
	// Results are identical for every setting.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.OccurrenceGap <= 0 {
		c.OccurrenceGap = DefaultOccurrenceGap
	}
	if c.DDBin <= 0 {
		c.DDBin = 20 * time.Millisecond
	}
	if c.DDWindow <= 0 {
		c.DDWindow = time.Second
	}
	if c.PCEpoch <= 0 {
		c.PCEpoch = 5 * time.Second
	}
	return c
}

// Edge aliases the application-group edge type.
type Edge = appgroup.Edge

// EdgePair is a pair of adjacent edges (in and out of the shared node).
type EdgePair struct {
	In, Out Edge
}

// FlowStats is the FS signature for one edge.
type FlowStats struct {
	// FlowCount is the number of flow occurrences on the edge.
	FlowCount int
	// FirstSeen is the earliest occurrence start on the edge (anchors CG
	// additions in time for task validation).
	FirstSeen time.Duration
	// Bytes/Packets/Duration summarize the FlowRemoved counters of the
	// edge's flows.
	Bytes    stats.Summary
	Packets  stats.Summary
	Duration stats.Summary
	// BytesSamples retains the raw per-flow byte counts for CDF plots
	// (Figure 9a).
	BytesSamples []float64
}

// CISig is the component-interaction signature at a node: normalized flow
// counts per adjacent edge.
type CISig struct {
	// Edges lists the node's adjacent edges in sorted order; Fractions
	// and Counts are parallel to it.
	Edges     []Edge
	Counts    []float64
	Fractions []float64
}

// DDSig is the delay-distribution signature for one adjacent edge pair.
type DDSig struct {
	Histogram *stats.Histogram
	// Peak is the dominant peak of the distribution.
	Peak stats.Peak
	// Samples is the number of delay pairs observed.
	Samples int
}

// AppSignature models one application group (paper §III-B).
type AppSignature struct {
	Group appgroup.Group
	// LogDuration is the length of the interval the signature was built
	// from, for rate normalization when comparing logs of different
	// lengths.
	LogDuration time.Duration
	// CG is the set of directed communication edges.
	CG map[Edge]bool
	// FS per edge.
	FS map[Edge]FlowStats
	// GroupFS aggregates flow counts for the whole group.
	GroupFS FlowStats
	// CI per member node.
	CI map[topology.NodeID]CISig
	// DD per adjacent edge pair.
	DD map[EdgePair]DDSig
	// PC per adjacent edge pair (Pearson over per-epoch flow counts).
	PC map[EdgePair]float64
}

// Build extracts both application and infrastructure signatures with a
// single occurrence-extraction pass (the dominant cost on large logs).
func Build(log *flowlog.Log, r *appgroup.Resolver, cfg Config) ([]AppSignature, InfraSignature) {
	p := NewPipeline(log, r, cfg)
	return p.App(), p.Infra()
}

// BuildApp extracts per-group application signatures from a log.
func BuildApp(log *flowlog.Log, r *appgroup.Resolver, cfg Config) []AppSignature {
	return NewPipeline(log, r, cfg).App()
}

// logMeta is the interval a signature build covers — the only thing the
// per-group builds need from a log besides its aggregates, so the
// streaming path can supply it from a file header.
type logMeta struct {
	Start, End time.Duration
}

func (m logMeta) Duration() time.Duration { return m.End - m.Start }

// removedSample carries the FlowRemoved counters the FS signature
// aggregates. Keeping samples instead of whole events lets the
// streaming build drop FlowRemoved events after one scan.
type removedSample struct {
	Bytes, Packets uint64
	Duration       time.Duration
}

// appView is everything the per-group signature builds consume from a
// log besides its occurrences: the covered interval and the FlowRemoved
// counter samples per host edge, in log order. Both the in-memory path
// (viewFromLog) and the streaming path (sourceAgg) produce it, which is
// what makes their signatures byte-identical.
type appView struct {
	meta    logMeta
	removed map[Edge][]removedSample
}

// viewFromLog scans a log once for the per-edge FlowRemoved samples.
func viewFromLog(log *flowlog.Log, r *appgroup.Resolver) appView {
	v := appView{
		meta:    logMeta{Start: log.Start, End: log.End},
		removed: make(map[Edge][]removedSample),
	}
	for i := range log.Events {
		ev := &log.Events[i]
		if ev.Type != flowlog.EventFlowRemoved {
			continue
		}
		e := Edge{Src: r.Node(ev.Flow.Src), Dst: r.Node(ev.Flow.Dst)}
		v.removed[e] = append(v.removed[e], removedSample{Bytes: ev.Bytes, Packets: ev.Packets, Duration: ev.FlowDuration})
	}
	return v
}

func buildAppFromOccs(ctx context.Context, log *flowlog.Log, r *appgroup.Resolver, cfg Config, occs []Occurrence) []AppSignature {
	return buildAppFromGroups(ctx, viewFromLog(log, r), r, cfg, occs, appgroup.Discover(log, r, cfg.Special))
}

func buildAppFromGroups(ctx context.Context, view appView, r *appgroup.Resolver, cfg Config, occs []Occurrence, groups []appgroup.Group) []AppSignature {
	if len(groups) == 0 {
		return nil
	}

	// Index occurrences by host edge. The map is read-only once built,
	// so the group builds can share it (the view's removed map likewise).
	occsByEdge := make(map[Edge][]Occurrence)
	for _, o := range occs {
		e := Edge{Src: r.Node(o.Key.Src), Dst: r.Node(o.Key.Dst)}
		occsByEdge[e] = append(occsByEdge[e], o)
	}

	out := make([]AppSignature, len(groups))
	reg := obs.From(ctx)
	// The error is ctx.Err(); the public entry points surface it after
	// the build, and a canceled pipeline's products are discarded.
	_ = parallel.ForContext(ctx, len(groups), cfg.workers(), func(i int) {
		sp := reg.Span("signature.group_build")
		out[i] = buildGroupSig(groups[i], view, cfg, occsByEdge)
		sp.End()
	})
	return out
}

func buildGroupSig(g appgroup.Group, view appView, cfg Config, occsByEdge map[Edge][]Occurrence) AppSignature {
	sig := AppSignature{
		Group:       g,
		LogDuration: view.meta.Duration(),
		CG:          make(map[Edge]bool),
		FS:          make(map[Edge]FlowStats),
		CI:          make(map[topology.NodeID]CISig),
		DD:          make(map[EdgePair]DDSig),
		PC:          make(map[EdgePair]float64),
	}
	for _, e := range g.Edges {
		sig.CG[e] = true
		fs := edgeStats(occsByEdge[e], view.removed[e])
		sig.FS[e] = fs
		mergeGroupFS(&sig.GroupFS, fs)
	}
	buildCI(&sig)
	buildDDAndPC(&sig, occsByEdge, view.meta, cfg)
	return sig
}

// mergeGroupFS folds one edge's statistics into the group-level
// aggregate: total flow count, earliest first-seen, and merged counter
// summaries. Raw per-flow samples stay per-edge to bound memory.
func mergeGroupFS(g *FlowStats, fs FlowStats) {
	if fs.FlowCount > 0 && (g.FlowCount == 0 || fs.FirstSeen < g.FirstSeen) {
		g.FirstSeen = fs.FirstSeen
	}
	g.FlowCount += fs.FlowCount
	g.Bytes = g.Bytes.Merge(fs.Bytes)
	g.Packets = g.Packets.Merge(fs.Packets)
	g.Duration = g.Duration.Merge(fs.Duration)
}

func edgeStats(occs []Occurrence, removed []removedSample) FlowStats {
	fs := FlowStats{FlowCount: len(occs)}
	for i, o := range occs {
		if i == 0 || o.Start < fs.FirstSeen {
			fs.FirstSeen = o.Start
		}
	}
	var bytes, pkts, durs []float64
	for _, s := range removed {
		bytes = append(bytes, float64(s.Bytes))
		pkts = append(pkts, float64(s.Packets))
		durs = append(durs, float64(s.Duration))
	}
	fs.Bytes = stats.Summarize(bytes)
	fs.Packets = stats.Summarize(pkts)
	fs.Duration = stats.Summarize(durs)
	fs.BytesSamples = bytes
	return fs
}

// buildCI computes, for each member node, the normalized flow count per
// adjacent edge (paper: "number of flows on each incoming or outgoing
// edge ... normalized to the total number of communications to and from
// the node").
func buildCI(sig *AppSignature) {
	for _, node := range sig.Group.Nodes {
		var edges []Edge
		for e := range sig.CG {
			if e.Src == node || e.Dst == node {
				edges = append(edges, e)
			}
		}
		if len(edges) == 0 {
			continue
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Src != edges[j].Src {
				return edges[i].Src < edges[j].Src
			}
			return edges[i].Dst < edges[j].Dst
		})
		ci := CISig{Edges: edges}
		total := 0.0
		for _, e := range edges {
			c := float64(sig.FS[e].FlowCount)
			ci.Counts = append(ci.Counts, c)
			total += c
		}
		ci.Fractions = make([]float64, len(ci.Counts))
		if total > 0 {
			for i, c := range ci.Counts {
				ci.Fractions[i] = c / total
			}
		}
		sig.CI[node] = ci
	}
}

// buildDDAndPC computes the delay distribution and partial correlation
// for every adjacent edge pair (A->B, B->C) of the group.
func buildDDAndPC(sig *AppSignature, occsByEdge map[Edge][]Occurrence, meta logMeta, cfg Config) {
	// Adjacent pairs share node B.
	var pairs []EdgePair
	for in := range sig.CG {
		for out := range sig.CG {
			if in.Dst == out.Src && in.Src != out.Dst {
				pairs = append(pairs, EdgePair{In: in, Out: out})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.In != b.In {
			if a.In.Src != b.In.Src {
				return a.In.Src < b.In.Src
			}
			return a.In.Dst < b.In.Dst
		}
		if a.Out.Src != b.Out.Src {
			return a.Out.Src < b.Out.Src
		}
		return a.Out.Dst < b.Out.Dst
	})

	for _, p := range pairs {
		ins := occsByEdge[p.In]
		outs := occsByEdge[p.Out]
		if dd, ok := delayDistribution(ins, outs, cfg); ok {
			sig.DD[p] = dd
		}
		if pc, ok := edgeCorrelation(ins, outs, meta, cfg); ok {
			sig.PC[p] = pc
		}
	}
}

// delayDistribution pairs each incoming flow start with all subsequent
// outgoing flow starts within the window and histograms the deltas
// (paper §III-B, DD).
func delayDistribution(ins, outs []Occurrence, cfg Config) (DDSig, bool) {
	if len(ins) == 0 || len(outs) == 0 {
		return DDSig{}, false
	}
	h, err := stats.NewHistogram(0, float64(cfg.DDBin))
	if err != nil {
		return DDSig{}, false
	}
	outStarts := make([]time.Duration, len(outs))
	for i, o := range outs {
		outStarts[i] = o.Start
	}
	sort.Slice(outStarts, func(i, j int) bool { return outStarts[i] < outStarts[j] })
	samples := 0
	for _, in := range ins {
		// >= admits an outgoing flow starting at the same instant as the
		// incoming one (delay 0, common with the discrete-event clock).
		idx := sort.Search(len(outStarts), func(i int) bool { return outStarts[i] >= in.Start })
		for ; idx < len(outStarts); idx++ {
			d := outStarts[idx] - in.Start
			if d > cfg.DDWindow {
				break
			}
			h.Add(float64(d))
			samples++
		}
	}
	if samples == 0 {
		return DDSig{}, false
	}
	peak, _ := h.DominantPeak()
	return DDSig{Histogram: h, Peak: peak, Samples: samples}, true
}

// edgeCorrelation computes the Pearson correlation between the two
// edges' per-epoch flow-count time series (paper §III-B, PC).
func edgeCorrelation(ins, outs []Occurrence, meta logMeta, cfg Config) (float64, bool) {
	// Round the epoch count up: a log whose duration is not an epoch
	// multiple still contributes its tail remainder as a partial epoch
	// instead of silently dropping every occurrence in it.
	nEpochs := int((meta.Duration() + cfg.PCEpoch - 1) / cfg.PCEpoch)
	if nEpochs < 3 {
		return 0, false
	}
	series := func(occs []Occurrence) []float64 {
		s := make([]float64, nEpochs)
		for _, o := range occs {
			i := int((o.Start - meta.Start) / cfg.PCEpoch)
			if i == nEpochs && o.Start == meta.End {
				i-- // an episode starting exactly at End counts in the last epoch
			}
			if i >= 0 && i < nEpochs {
				s[i]++
			}
		}
		return s
	}
	r, err := stats.Pearson(series(ins), series(outs))
	if err != nil {
		return 0, false
	}
	return r, true
}
