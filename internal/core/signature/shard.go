package signature

import (
	"context"
	"time"

	"flowdiff/internal/flowlog"
	"flowdiff/internal/parallel"
)

// shardedMinEvents is the log size below which sharded extraction falls
// back to the serial path: the hash pass and merge overhead only pay for
// themselves on logs large enough that grouping dominates.
const shardedMinEvents = 2048

// hashKey is an FNV-1a hash of the flow 5-tuple, used only to assign
// keys to extraction shards. It must depend on nothing but the key, so
// every event of a key lands in the same shard.
func hashKey(k flowlog.FlowKey) uint32 {
	const prime32 = 16777619
	h := uint32(2166136261)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= prime32
	}
	mix(k.Proto)
	src := k.Src.As16()
	for _, b := range src {
		mix(b)
	}
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.SrcPort))
	dst := k.Dst.As16()
	for _, b := range dst {
		mix(b)
	}
	mix(byte(k.DstPort >> 8))
	mix(byte(k.DstPort))
	return h
}

// OccurrencesSharded extracts the same episodes as Occurrences by
// sharding flow keys across workers goroutines (workers <= 0 uses one
// per CPU). Extraction is two parallel passes:
//
//  1. the event slice is chunked across the pool and each control
//     event's key is hashed once into a shared table (a zero entry marks
//     a non-control event; real hashes have their high bit forced set);
//  2. each worker owns the keys whose hash maps to its shard, walks the
//     hash table picking out its events, and runs the serial
//     group-and-split tail (extractFromIdxs) on its disjoint key set.
//
// Every per-shard output is already in canonical occurrence order
// (start time, then key — a total order), so a k-way merge reproduces
// the serial result exactly: byte-identical for every worker count,
// pinned by TestOccurrencesShardedMatchesSerial.
//
// The worker count comes from cfg.Parallelism — the same knob
// flowdiff.Options.Parallelism flows into — clamped to GOMAXPROCS by
// the parallel.Clamp contract; there is no separate workers argument.
func OccurrencesSharded(log *flowlog.Log, cfg Config) []Occurrence {
	cfg = cfg.withDefaults()
	return occurrencesSharded(context.Background(), log, cfg.OccurrenceGap, cfg.workers())
}

// occurrencesSharded is the unclamped core: workers is taken as given,
// so tests can pin shard counts above GOMAXPROCS (the sharding must be
// byte-identical at any width, whatever the host size). Cancelling ctx
// stops shard dispatch; the partial merge is discarded by the caller
// observing ctx.Err().
func occurrencesSharded(ctx context.Context, log *flowlog.Log, gap time.Duration, workers int) []Occurrence {
	if gap <= 0 {
		gap = DefaultOccurrenceGap
	}
	n := len(log.Events)
	if workers <= 1 || n < shardedMinEvents {
		return Occurrences(log, gap)
	}
	const liveBit = 1 << 31
	hs := make([]uint32, n)
	if err := parallel.ForContext(ctx, workers, workers, func(c int) {
		lo, hi := n*c/workers, n*(c+1)/workers
		for i := lo; i < hi; i++ {
			if relevant(log.Events[i].Type) {
				hs[i] = hashKey(log.Events[i].Flow) | liveBit
			}
		}
	}); err != nil {
		return nil
	}
	parts := make([][]Occurrence, workers)
	// The error is ctx.Err(); the public entry points surface it after
	// the build, and a canceled pipeline's products are discarded.
	_ = parallel.ForContext(ctx, workers, workers, func(w int) {
		perKey := make(map[flowlog.FlowKey][]int32)
		for i := 0; i < n; i++ {
			h := hs[i]
			if h == 0 || int(h&^uint32(liveBit))%workers != w {
				continue
			}
			perKey[log.Events[i].Flow] = append(perKey[log.Events[i].Flow], int32(i))
		}
		parts[w] = extractFromIdxs(log, perKey, gap)
	})
	return mergeOccurrences(parts)
}

// mergeOccurrences k-way merges per-shard occurrence slices that are
// each sorted in canonical order. The comparator is a total order over
// distinct occurrences, so the merge result does not depend on the
// shard count or shard assignment.
func mergeOccurrences(parts [][]Occurrence) []Occurrence {
	live := parts[:0]
	total := 0
	for _, p := range parts {
		if len(p) > 0 {
			live = append(live, p)
			total += len(p)
		}
	}
	switch len(live) {
	case 0:
		return []Occurrence{}
	case 1:
		return live[0]
	}
	out := make([]Occurrence, 0, total)
	idx := make([]int, len(live))
	for len(out) < total {
		best := -1
		for w := range live {
			if idx[w] >= len(live[w]) {
				continue
			}
			if best < 0 || occLess(live[w][idx[w]], live[best][idx[best]]) {
				best = w
			}
		}
		out = append(out, live[best][idx[best]])
		idx[best]++
	}
	return out
}
