package signature

import (
	"sort"
	"testing"
	"time"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/simnet"
	"flowdiff/internal/topology"
	"flowdiff/internal/workload"
)

// simCase runs Table II case 5 (custom three-tier apps) and returns its
// control log plus resolver.
func simCase5(t *testing.T, p workload.Case5Params, seed int64, dur time.Duration) (*flowlog.Log, *appgroup.Resolver, *simnet.Network) {
	t.Helper()
	topo, err := topology.Lab()
	if err != nil {
		t.Fatal(err)
	}
	n, err := simnet.NewNetwork(topo, simnet.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration == 0 {
		p.Duration = dur
	}
	for i, spec := range workload.Case5Specs(p) {
		app, err := workload.Attach(n, spec, seed+int64(i))
		if err != nil {
			t.Fatal(err)
		}
		app.Run(0, dur)
	}
	n.Eng.Run(dur + 5*time.Second)
	return n.Log(), appgroup.NewResolver(topo), n
}

func defaultSpecial() map[topology.NodeID]bool {
	s := make(map[topology.NodeID]bool)
	for _, id := range topology.ServiceNodes {
		s[id] = true
	}
	return s
}

func findGroup(t *testing.T, sigs []AppSignature, member topology.NodeID) AppSignature {
	t.Helper()
	for _, s := range sigs {
		if s.Group.Contains(member) {
			return s
		}
	}
	t.Fatalf("no group containing %s", member)
	return AppSignature{}
}

func TestOccurrencesSplitEpisodes(t *testing.T) {
	l := flowlog.New(0, time.Minute)
	key := flowlog.FlowKey{Proto: 6, SrcPort: 1, DstPort: 2}
	for _, ts := range []time.Duration{
		0, 2 * time.Millisecond, // episode 1 (PI, FM)
		10 * time.Second, 10*time.Second + 2*time.Millisecond, // episode 2
	} {
		typ := flowlog.EventPacketIn
		if ts == 2*time.Millisecond || ts == 10*time.Second+2*time.Millisecond {
			typ = flowlog.EventFlowMod
		}
		l.Append(flowlog.Event{Time: ts, Type: typ, Switch: "sw1", Flow: key})
	}
	occs := Occurrences(l, time.Second)
	if len(occs) != 2 {
		t.Fatalf("got %d occurrences, want 2", len(occs))
	}
	if occs[0].Start != 0 || occs[1].Start != 10*time.Second {
		t.Errorf("starts = %v, %v", occs[0].Start, occs[1].Start)
	}
	if len(occs[0].Events) != 2 {
		t.Errorf("episode 1 has %d events", len(occs[0].Events))
	}
}

func TestOccurrencesOrderedDeterministically(t *testing.T) {
	l := flowlog.New(0, time.Minute)
	k1 := flowlog.FlowKey{Proto: 6, SrcPort: 1, DstPort: 2}
	k2 := flowlog.FlowKey{Proto: 6, SrcPort: 3, DstPort: 4}
	l.Append(flowlog.Event{Time: time.Second, Type: flowlog.EventPacketIn, Flow: k2})
	l.Append(flowlog.Event{Time: time.Second, Type: flowlog.EventPacketIn, Flow: k1})
	a := Occurrences(l, 0)
	b := Occurrences(l, 0)
	if len(a) != 2 || len(b) != 2 {
		t.Fatal("want 2 occurrences")
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatal("order not deterministic")
		}
	}
}

func TestBuildAppCG(t *testing.T) {
	log, r, _ := simCase5(t, workload.Case5Params{MeanA: 200, MeanB: 200}, 1, 2*time.Minute)
	sigs := BuildApp(log, r, Config{Special: defaultSpecial()})
	if len(sigs) < 2 {
		t.Fatalf("found %d groups, want >= 2", len(sigs))
	}
	// Group containing S3 must have the edges S22->S1->S3->S8 and
	// S21->S2->S3.
	g := findGroup(t, sigs, "S3")
	for _, e := range []Edge{
		{Src: "S22", Dst: "S1"}, {Src: "S1", Dst: "S3"},
		{Src: "S21", Dst: "S2"}, {Src: "S2", Dst: "S3"},
		{Src: "S3", Dst: "S8"},
	} {
		if !g.CG[e] {
			t.Errorf("missing CG edge %v", e)
		}
	}
}

func TestDDPeakRecoversProcessingTime(t *testing.T) {
	log, r, _ := simCase5(t, workload.Case5Params{MeanA: 400, MeanB: 400}, 2, 3*time.Minute)
	sigs := BuildApp(log, r, Config{Special: defaultSpecial()})
	g := findGroup(t, sigs, "S3")
	pair := EdgePair{In: Edge{Src: "S2", Dst: "S3"}, Out: Edge{Src: "S3", Dst: "S8"}}
	dd, ok := g.DD[pair]
	if !ok {
		t.Fatalf("no DD for %v; have %v", pair, keysOfDD(g.DD))
	}
	// Ground truth: 60 ms app processing. Peak must fall within the
	// paper's [40, 60] ms band (20 ms bins: bucket centers 50 or 70 are
	// acceptable, i.e. the 60 ms truth sits on the bucket boundary).
	peakMS := dd.Peak.Value / float64(time.Millisecond)
	if peakMS < 40 || peakMS > 80 {
		t.Errorf("DD peak at %.1f ms, want near 60 ms", peakMS)
	}
}

func keysOfDD(m map[EdgePair]DDSig) []EdgePair {
	var out []EdgePair
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.In != b.In {
			if a.In.Src != b.In.Src {
				return a.In.Src < b.In.Src
			}
			return a.In.Dst < b.In.Dst
		}
		if a.Out.Src != b.Out.Src {
			return a.Out.Src < b.Out.Src
		}
		return a.Out.Dst < b.Out.Dst
	})
	return out
}

func TestDDPeakPersistsAcrossWorkloadAndReuse(t *testing.T) {
	// Figure 10: the DD peak persists across workload distributions and
	// connection-reuse ratios.
	settings := []workload.Case5Params{
		{MeanA: 400, MeanB: 400, ReuseA: 0, ReuseB: 0},
		{MeanA: 400, MeanB: 100, ReuseA: 0, ReuseB: 0.2},
		{MeanA: 100, MeanB: 400, ReuseA: 0, ReuseB: 0.9},
		{MeanA: 100, MeanB: 400, ReuseA: 0.5, ReuseB: 0.5},
	}
	pair := EdgePair{In: Edge{Src: "S2", Dst: "S3"}, Out: Edge{Src: "S3", Dst: "S8"}}
	for i, p := range settings {
		log, r, _ := simCase5(t, p, int64(10+i), 3*time.Minute)
		sigs := BuildApp(log, r, Config{Special: defaultSpecial()})
		g := findGroup(t, sigs, "S3")
		dd, ok := g.DD[pair]
		if !ok {
			t.Errorf("setting %d: no DD observations", i)
			continue
		}
		peakMS := dd.Peak.Value / float64(time.Millisecond)
		if peakMS < 40 || peakMS > 80 {
			t.Errorf("setting %d: DD peak %.1f ms drifted from 60 ms truth", i, peakMS)
		}
	}
}

func TestPCHighForDependentEdges(t *testing.T) {
	log, r, _ := simCase5(t, workload.Case5Params{MeanA: 500, MeanB: 500}, 3, 3*time.Minute)
	sigs := BuildApp(log, r, Config{Special: defaultSpecial()})
	g := findGroup(t, sigs, "S3")
	pair := EdgePair{In: Edge{Src: "S1", Dst: "S3"}, Out: Edge{Src: "S3", Dst: "S8"}}
	pc, ok := g.PC[pair]
	if !ok {
		t.Fatal("no PC for dependent edges")
	}
	if pc < 0.3 {
		t.Errorf("PC between dependent edges = %.3f, want clearly positive", pc)
	}
}

func TestCIStableFractions(t *testing.T) {
	log, r, _ := simCase5(t, workload.Case5Params{MeanA: 400, MeanB: 400}, 4, 3*time.Minute)
	sigs := BuildApp(log, r, Config{Special: defaultSpecial()})
	g := findGroup(t, sigs, "S3")
	ci, ok := g.CI["S3"]
	if !ok {
		t.Fatal("no CI at S3")
	}
	var sum float64
	for _, f := range ci.Fractions {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("CI fractions sum to %v", sum)
	}
	// S3 has three adjacent edges: in from S1, in from S2, out to S8.
	if len(ci.Edges) != 3 {
		t.Errorf("CI edges at S3 = %v", ci.Edges)
	}
	// The out edge carries roughly the sum of the two ins (every request
	// triggers a db query; reuse is 0): its fraction should be ~0.5.
	for i, e := range ci.Edges {
		if e.Src == "S3" {
			if ci.Fractions[i] < 0.35 || ci.Fractions[i] > 0.6 {
				t.Errorf("out-edge fraction = %.3f, want ~0.5", ci.Fractions[i])
			}
		}
	}
}

func TestFSByteCounts(t *testing.T) {
	log, r, _ := simCase5(t, workload.Case5Params{MeanA: 300, MeanB: 300}, 5, 2*time.Minute)
	sigs := BuildApp(log, r, Config{Special: defaultSpecial()})
	g := findGroup(t, sigs, "S3")
	fs := g.FS[Edge{Src: "S1", Dst: "S3"}]
	if fs.FlowCount == 0 {
		t.Fatal("no flows on S1->S3")
	}
	if fs.Bytes.Count == 0 || fs.Bytes.Mean <= 0 {
		t.Errorf("FS bytes summary empty: %+v", fs.Bytes)
	}
	if len(fs.BytesSamples) != fs.Bytes.Count {
		t.Error("BytesSamples inconsistent with summary count")
	}
}

func TestInfraSignature(t *testing.T) {
	log, r, n := simCase5(t, workload.Case5Params{MeanA: 300, MeanB: 300}, 6, 2*time.Minute)
	inf := BuildInfra(log, r, Config{})
	if len(inf.SwitchAdj) == 0 {
		t.Fatal("no switch adjacency inferred")
	}
	// Host attachment: S1 hangs off sw2 in the lab topology.
	if sw := inf.HostAttach["S1"]; sw != "sw2" {
		t.Errorf("S1 attach = %q, want sw2", sw)
	}
	if inf.CRT.Count == 0 {
		t.Fatal("no controller response time samples")
	}
	// CRT must be at least the configured service time and not wildly
	// more under light load.
	svc := float64(n.Config().ControllerService)
	if inf.CRT.Mean < svc*0.5 || inf.CRT.Mean > svc*20 {
		t.Errorf("CRT mean = %v vs service %v", time.Duration(inf.CRT.Mean), time.Duration(svc))
	}
	if len(inf.ISL) == 0 {
		t.Fatal("no ISL samples")
	}
	if inf.MeanISL() <= 0 {
		t.Error("mean ISL should be positive")
	}
	// Adjacency must reflect real links: every inferred pair must be a
	// real link in the lab topology.
	for p := range inf.SwitchAdj {
		if _, ok := n.Topo.LinkBetween(topology.NodeID(p.From), topology.NodeID(p.To)); !ok {
			t.Errorf("inferred adjacency %v is not a physical link", p)
		}
	}
}

func TestStabilityCleanRunIsStable(t *testing.T) {
	log, r, _ := simCase5(t, workload.Case5Params{MeanA: 500, MeanB: 500}, 7, 5*time.Minute)
	cfg := Config{Special: defaultSpecial()}
	st, err := AnalyzeStability(log, appgroupResolver(r), cfg, StabilityConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sigs := BuildApp(log, r, cfg)
	g := findGroup(t, sigs, "S3")
	verdict, ok := st[g.Group.Key()]
	if !ok {
		t.Fatalf("no stability verdict for group %s", g.Group.Key())
	}
	if !verdict.CGStable {
		t.Error("CG should be stable on a clean run")
	}
	if !verdict.StableCI("S3") {
		t.Error("CI at S3 should be stable (round-robin logic)")
	}
	pair := EdgePair{In: Edge{Src: "S2", Dst: "S3"}, Out: Edge{Src: "S3", Dst: "S8"}}
	if stable, ok := verdict.DDPairs[pair]; !ok || !stable {
		t.Error("DD for the dependent pair should be stable")
	}
}

func TestStabilityUnstableCIDetected(t *testing.T) {
	// Case 5's app C balances S5 -> S11/S17 with a skewed policy; over
	// short intervals the fractions fluctuate. The paper notes CI can be
	// unstable under non-uniform balancing — verify the verdict mechanism
	// reacts to instability injected directly.
	full := []AppSignature{{
		Group: appgroup.Group{Nodes: []topology.NodeID{"A", "B", "C"}},
		CI: map[topology.NodeID]CISig{
			"B": {
				Edges:     []Edge{{Src: "A", Dst: "B"}, {Src: "B", Dst: "C"}},
				Counts:    []float64{50, 50},
				Fractions: []float64{0.5, 0.5},
			},
		},
		CG: map[Edge]bool{{Src: "A", Dst: "B"}: true, {Src: "B", Dst: "C"}: true},
	}}
	unstable := AppSignature{
		Group: full[0].Group,
		CI: map[topology.NodeID]CISig{
			"B": {
				Edges:     []Edge{{Src: "A", Dst: "B"}, {Src: "B", Dst: "C"}},
				Counts:    []float64{95, 5},
				Fractions: []float64{0.95, 0.05},
			},
		},
		CG: full[0].CG,
	}
	st := Stabilities(full, [][]AppSignature{{unstable}}, StabilityConfig{})
	if st[full[0].Group.Key()].StableCI("B") {
		t.Error("skewed interval CI should be flagged unstable")
	}
}

// appgroupResolver is an identity helper keeping the test call sites
// readable.
func appgroupResolver(r *appgroup.Resolver) *appgroup.Resolver { return r }

func TestLinkBytesUtilization(t *testing.T) {
	log, r, n := simCase5(t, workload.Case5Params{MeanA: 300, MeanB: 300}, 21, 2*time.Minute)
	inf := BuildInfra(log, r, Config{})
	if len(inf.LinkBytes) == 0 {
		t.Skip("case-5 traffic stays under one switch; no inter-switch adjacencies")
	}
	for p, bps := range inf.LinkBytes {
		if bps <= 0 {
			t.Errorf("adjacency %v has non-positive utilization %v", p, bps)
		}
		if _, ok := n.Topo.LinkBetween(topology.NodeID(p.From), topology.NodeID(p.To)); !ok {
			t.Errorf("utilization attributed to non-physical adjacency %v", p)
		}
	}
}

func TestLinkBytesFollowsTraffic(t *testing.T) {
	// Two hosts across the fabric exchanging a known volume: the
	// adjacencies on their path must carry roughly volume/duration.
	topo, err := topology.Lab()
	if err != nil {
		t.Fatal(err)
	}
	n, err := simnet.NewNetwork(topo, simnet.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := topo.Node("S1")
	s6, _ := topo.Node("S6")
	const perFlow = 30000
	for i := 0; i < 10; i++ {
		key := flowlog.FlowKey{Proto: 6, Src: s1.Addr, Dst: s6.Addr, SrcPort: uint16(1000 + i), DstPort: 80}
		n.StartFlow(time.Duration(i)*2*time.Second, simnet.Flow{Key: key, Bytes: perFlow})
	}
	n.Eng.Run(40 * time.Second)
	log := n.Log()
	inf := BuildInfra(log, appgroup.NewResolver(topo), Config{})
	pair := SwitchPair{From: "sw2", To: "sw1"}
	got := inf.LinkBytes[pair]
	want := float64(10*perFlow) / log.Duration().Seconds()
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("LinkBytes[%v] = %.1f B/s, want ~%.1f", pair, got, want)
	}
}
