package signature

import (
	"sort"
	"time"

	"flowdiff/internal/flowlog"
)

// StreamExtractor is the incremental counterpart of Occurrences for
// continuous operation: control events are appended one at a time as
// they arrive, per-key open episodes are maintained across appends
// (episode boundaries are detected at append time, not by a batch
// re-pass), and Flush closes out the buffered window's episodes in time
// proportional to the events appended since the previous Flush.
//
// Flush produces exactly what Occurrences would produce on a log
// holding the same events — byte-identical slices, pinned by
// TestStreamExtractorMatchesBatch — including on out-of-order input:
// a key whose events arrive out of order is marked dirty and its buffer
// is re-sorted and re-split at Flush, mirroring the batch fallback.
//
// StreamExtractor is not safe for concurrent use; feed it from the
// goroutine that owns the event source (Monitor does).
type StreamExtractor struct {
	gap    time.Duration
	keys   map[flowlog.FlowKey]*keyStream
	events int
}

// keyStream is one flow key's buffered window events plus the episode
// boundaries found so far. splits[i] is the buf index where episode i+1
// begins. sorted tracks whether events arrived in time order; when they
// did not, splits are recomputed from a sorted copy at Flush.
type keyStream struct {
	buf    []flowlog.Event
	splits []int32
	last   time.Duration
	sorted bool
}

// NewStreamExtractor creates an empty extractor with the given episode
// gap (<= 0 uses DefaultOccurrenceGap, like Occurrences).
func NewStreamExtractor(gap time.Duration) *StreamExtractor {
	if gap <= 0 {
		gap = DefaultOccurrenceGap
	}
	return &StreamExtractor{gap: gap, keys: make(map[flowlog.FlowKey]*keyStream)}
}

// Gap returns the episode-splitting gap in effect.
func (x *StreamExtractor) Gap() time.Duration { return x.gap }

// Pending returns the number of control events buffered since the last
// Flush (non-control events are not buffered).
func (x *StreamExtractor) Pending() int { return x.events }

// Append feeds one event. Non-control events (FlowRemoved, PortStatus)
// are ignored, as in batch extraction. O(1) amortized.
func (x *StreamExtractor) Append(e flowlog.Event) {
	if !relevant(e.Type) {
		return
	}
	ks := x.keys[e.Flow]
	if ks == nil {
		ks = &keyStream{sorted: true}
		x.keys[e.Flow] = ks
	}
	if len(ks.buf) > 0 && ks.sorted {
		switch {
		case e.Time < ks.last:
			ks.sorted = false
		case e.Time-ks.last > x.gap:
			ks.splits = append(ks.splits, int32(len(ks.buf)))
		}
	}
	ks.buf = append(ks.buf, e)
	ks.last = e.Time
	x.events++
}

// Flush closes every open episode, returns the window's occurrences in
// canonical order (identical to Occurrences over the same events), and
// resets the extractor for the next window.
func (x *StreamExtractor) Flush() []Occurrence {
	out := make([]Occurrence, 0, len(x.keys))
	for key, ks := range x.keys {
		buf, splits := ks.buf, ks.splits
		if !ks.sorted {
			sort.SliceStable(buf, func(i, j int) bool { return buf[i].Time < buf[j].Time })
			splits = splits[:0]
			for j := 1; j < len(buf); j++ {
				if buf[j].Time-buf[j-1].Time > x.gap {
					splits = append(splits, int32(j))
				}
			}
		}
		epStart := 0
		for _, s := range splits {
			out = appendEpisode(out, key, buf[epStart:s:s])
			epStart = int(s)
		}
		out = appendEpisode(out, key, buf[epStart:len(buf):len(buf)])
	}
	sort.Slice(out, func(i, j int) bool { return occLess(out[i], out[j]) })
	if len(x.keys) > 0 {
		x.keys = make(map[flowlog.FlowKey]*keyStream)
	}
	x.events = 0
	return out
}
