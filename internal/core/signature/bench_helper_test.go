package signature

import (
	"fmt"
	"net/netip"
	"time"

	"flowdiff/internal/flowlog"
)

// benchLog builds a deterministic three-tier control log of roughly
// nEvents events (mirroring the root package's synthetic benchmark
// workload) for extraction benchmarks inside this package.
func benchLog(nEvents int) *flowlog.Log {
	const (
		groups       = 8
		dur          = 5 * time.Minute
		eventsPerReq = 10
	)
	l := flowlog.New(0, dur)
	reqs := nEvents / (groups * eventsPerReq)
	if reqs < 1 {
		reqs = 1
	}
	step := dur / time.Duration(reqs+1)
	host := func(g, role int) netip.Addr {
		return netip.AddrFrom4([4]byte{10, byte(g), byte(role), 1})
	}
	emit := func(k flowlog.FlowKey, at time.Duration, sw1, sw2 string) {
		l.Append(flowlog.Event{Time: at, Type: flowlog.EventPacketIn, Switch: sw1, Flow: k})
		l.Append(flowlog.Event{Time: at + time.Millisecond, Type: flowlog.EventFlowMod, Switch: sw1, Flow: k})
		l.Append(flowlog.Event{Time: at + 2*time.Millisecond, Type: flowlog.EventPacketIn, Switch: sw2, Flow: k})
		l.Append(flowlog.Event{Time: at + 3*time.Millisecond, Type: flowlog.EventFlowMod, Switch: sw2, Flow: k})
		l.Append(flowlog.Event{Time: at + 500*time.Millisecond, Type: flowlog.EventFlowRemoved, Switch: sw1, Flow: k,
			Bytes: 30000, Packets: 40, FlowDuration: 400 * time.Millisecond})
	}
	for i := 0; i < reqs; i++ {
		t0 := time.Duration(i+1) * step
		port := uint16(1024 + i%50000)
		for g := 0; g < groups; g++ {
			sw1, sw2 := fmt.Sprintf("sw%d-1", g), fmt.Sprintf("sw%d-2", g)
			front := flowlog.FlowKey{Proto: 6, Src: host(g, 1), Dst: host(g, 2), SrcPort: port, DstPort: 80}
			back := flowlog.FlowKey{Proto: 6, Src: host(g, 2), Dst: host(g, 3), SrcPort: port, DstPort: 3306}
			emit(front, t0, sw1, sw2)
			emit(back, t0+10*time.Millisecond, sw1, sw2)
		}
	}
	l.Sort()
	return l
}
