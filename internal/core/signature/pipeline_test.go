package signature

import (
	"net/netip"
	"reflect"
	"runtime"
	"testing"
	"time"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/workload"
)

func addr(last byte) netip.Addr { return netip.AddrFrom4([4]byte{10, 9, 0, last}) }

// chainLog builds a tiny A->B->C log by hand: one flow per edge, with
// FlowRemoved counters, over a log of the given duration.
func chainLog(dur time.Duration) *flowlog.Log {
	l := flowlog.New(0, dur)
	ab := flowlog.FlowKey{Proto: 6, Src: addr(1), Dst: addr(2), SrcPort: 1000, DstPort: 80}
	bc := flowlog.FlowKey{Proto: 6, Src: addr(2), Dst: addr(3), SrcPort: 2000, DstPort: 3306}
	l.Append(flowlog.Event{Time: time.Second, Type: flowlog.EventPacketIn, Switch: "sw1", Flow: bc})
	l.Append(flowlog.Event{Time: 2 * time.Second, Type: flowlog.EventPacketIn, Switch: "sw1", Flow: ab})
	l.Append(flowlog.Event{Time: 3 * time.Second, Type: flowlog.EventFlowRemoved, Switch: "sw1", Flow: bc,
		Bytes: 3000, Packets: 30, FlowDuration: 2 * time.Second})
	l.Append(flowlog.Event{Time: 4 * time.Second, Type: flowlog.EventFlowRemoved, Switch: "sw1", Flow: ab,
		Bytes: 1000, Packets: 10, FlowDuration: 2 * time.Second})
	l.Sort()
	return l
}

// Regression: GroupFS used to carry only FlowCount, so group-granularity
// diffs compared zero FirstSeen/Bytes/Packets/Duration aggregates.
func TestGroupFSAggregates(t *testing.T) {
	sigs := BuildApp(chainLog(30*time.Second), appgroup.NewResolver(nil), Config{})
	if len(sigs) != 1 {
		t.Fatalf("got %d groups, want 1", len(sigs))
	}
	g := sigs[0].GroupFS
	if g.FlowCount != 2 {
		t.Errorf("GroupFS.FlowCount = %d, want 2", g.FlowCount)
	}
	if g.FirstSeen != time.Second {
		t.Errorf("GroupFS.FirstSeen = %v, want 1s (earliest edge occurrence)", g.FirstSeen)
	}
	if g.Bytes.Count != 2 || g.Bytes.Sum != 4000 {
		t.Errorf("GroupFS.Bytes = %+v, want count 2 sum 4000", g.Bytes)
	}
	if g.Bytes.Min != 1000 || g.Bytes.Max != 3000 {
		t.Errorf("GroupFS.Bytes min/max = %v/%v, want 1000/3000", g.Bytes.Min, g.Bytes.Max)
	}
	if g.Packets.Sum != 40 {
		t.Errorf("GroupFS.Packets.Sum = %v, want 40", g.Packets.Sum)
	}
	if g.Duration.Count != 2 || g.Duration.Mean != float64(2*time.Second) {
		t.Errorf("GroupFS.Duration = %+v, want 2 samples of 2s", g.Duration)
	}
}

// Regression: delayDistribution used a strict > on the pairing window
// start, so an outgoing flow starting at exactly the same instant as the
// incoming one (delay 0, common with the discrete-event clock) never
// landed in the histogram.
func TestDelayDistributionZeroDelay(t *testing.T) {
	cfg := Config{}.withDefaults()
	ins := []Occurrence{{Start: 10 * time.Second}}
	outs := []Occurrence{
		{Start: 10 * time.Second},                    // delay 0
		{Start: 10*time.Second + 5*time.Millisecond}, // delay 5ms, same bucket
		{Start: 10*time.Second + 2*cfg.DDWindow},     // outside the window
	}
	dd, ok := delayDistribution(ins, outs, cfg)
	if !ok {
		t.Fatal("no DD built")
	}
	if dd.Samples != 2 {
		t.Errorf("samples = %d, want 2 (zero-delay pair must count)", dd.Samples)
	}
	if len(dd.Histogram.Counts) == 0 || dd.Histogram.Counts[0] != 2 {
		t.Errorf("bucket 0 = %v, want 2 samples including the delay-0 pair", dd.Histogram.Counts)
	}
}

// Regression: edgeCorrelation truncated the epoch count to
// int(duration/epoch), silently dropping every occurrence in the tail
// remainder — here the whole signal lives in the final 4 s of a 29 s log
// and the old code found no correlated epochs at all.
func TestEdgeCorrelationIncludesTailEpoch(t *testing.T) {
	log := flowlog.New(0, 29*time.Second)
	var ins, outs []Occurrence
	for _, s := range []time.Duration{26 * time.Second, 27 * time.Second, 28 * time.Second} {
		ins = append(ins, Occurrence{Start: s})
		outs = append(outs, Occurrence{Start: s + 100*time.Millisecond})
	}
	cfg := Config{}.withDefaults()
	pc, ok := edgeCorrelation(ins, outs, logMeta{Start: log.Start, End: log.End}, cfg)
	if !ok {
		t.Fatal("no PC computed: tail-epoch occurrences were dropped")
	}
	if pc < 0.99 {
		t.Errorf("PC = %.3f, want ~1 (both edges burst in the tail epoch)", pc)
	}
}

func TestPartitionByStartBoundaries(t *testing.T) {
	log := flowlog.New(0, 10*time.Second)
	starts := []time.Duration{0, 2 * time.Second, 4 * time.Second, 5 * time.Second, 8 * time.Second, 10 * time.Second}
	occs := make([]Occurrence, len(starts))
	for i, s := range starts {
		occs[i] = Occurrence{Start: s}
	}
	segs, err := log.Segment(2)
	if err != nil {
		t.Fatal(err)
	}
	metas := make([]logMeta, len(segs))
	for i, s := range segs {
		metas[i] = logMeta{Start: s.Start, End: s.End}
	}
	parts := partitionByStart(occs, metas)
	if len(parts[0]) != 3 {
		t.Errorf("first interval got %d occurrences, want 3 (start 5s belongs to the second)", len(parts[0]))
	}
	// The occurrence at exactly End must land in the last interval, not
	// vanish: intervals collectively must see every occurrence.
	if len(parts[1]) != 3 {
		t.Errorf("last interval got %d occurrences, want 3 including the one at End", len(parts[1]))
	}
}

func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	// Raise GOMAXPROCS so the clamp doesn't collapse every width to 1 on
	// single-CPU CI hosts — the race detector must see real concurrent
	// builds at each width.
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	log, r, _ := simCase5(t, workload.Case5Params{MeanA: 300, MeanB: 300}, 31, time.Minute)
	base := Config{Special: defaultSpecial()}
	var refApps []AppSignature
	var refStab map[string]Stability
	for _, workers := range []int{1, 2, 4, 7} {
		cfg := base
		cfg.Parallelism = workers
		apps := BuildApp(log, r, cfg)
		stab, err := AnalyzeStability(log, r, cfg, StabilityConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if refApps == nil {
			refApps, refStab = apps, stab
			continue
		}
		if !reflect.DeepEqual(apps, refApps) {
			t.Errorf("workers=%d: app signatures differ from sequential build", workers)
		}
		if !reflect.DeepEqual(stab, refStab) {
			t.Errorf("workers=%d: stability verdicts differ from sequential build", workers)
		}
	}
}
