package signature

import (
	"context"
	"fmt"
	"sort"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/obs"
	"flowdiff/internal/parallel"
)

// Pipeline shares one occurrence-extraction pass across every signature
// product of a log: application signatures, infrastructure signatures,
// and the per-interval stability analysis.
//
// Occurrence extraction is the dominant cost of FlowDiff's modeling
// phase on large logs; before this pipeline existed, one modeling run
// re-ran it once for the app signatures, once for the infrastructure
// signature, once more for link utilization, and once per stability
// interval plus once for the whole-log reference — 8+ full passes with
// the default five intervals. Pipeline extracts occurrences exactly
// once, partitions them across the stability intervals by index slicing
// over the start-time-sorted slice, and fans independent builds (per
// application group, per interval) onto a bounded worker pool. Output is
// deterministic: every worker writes only its own slot, so results are
// identical for any worker count.
//
// The pipeline carries the context it was created with: fan-outs run on
// parallel.ForContext (so cancellation stops dispatch and the pool
// drains), and stage timings/counters go to the context's obs registry
// (span.signature.* histograms, signature.* counters). After
// cancellation the pipeline's products are partial; callers observe
// ctx.Err() and must discard them — flowdiff.BuildSignaturesContext
// does exactly that.
type Pipeline struct {
	ctx context.Context
	// Exactly one backing store is set: log for the in-memory paths, agg
	// for pipelines streamed from an EventSource. meta covers both.
	log  *flowlog.Log
	agg  *sourceAgg
	meta logMeta
	r    *appgroup.Resolver
	cfg  Config
	occs []Occurrence
	// groups caches application-group discovery for the whole log;
	// hasGroups distinguishes "not discovered yet" from "discovered
	// (possibly empty)". Monitor seeds it across windows via SetGroups.
	groups    []appgroup.Group
	hasGroups bool
}

// NewPipeline is NewPipelineContext with a background context.
func NewPipeline(log *flowlog.Log, r *appgroup.Resolver, cfg Config) *Pipeline {
	return NewPipelineContext(context.Background(), log, r, cfg)
}

// NewPipelineContext extracts the log's flow occurrences once — sharded
// by flow-key hash across Config.Parallelism workers on large logs —
// and returns a pipeline that builds every signature product from them.
// The span "signature.extract" times the extraction; the counter
// "signature.occurrences" accumulates the episode count.
func NewPipelineContext(ctx context.Context, log *flowlog.Log, r *appgroup.Resolver, cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	sp := obs.Span(ctx, "signature.extract")
	occs := occurrencesSharded(ctx, log, cfg.OccurrenceGap, cfg.workers())
	sp.End()
	obs.From(ctx).Counter("signature.occurrences").Add(int64(len(occs)))
	return &Pipeline{ctx: ctx, log: log, meta: logMeta{Start: log.Start, End: log.End}, r: r, cfg: cfg, occs: occs}
}

// NewPipelineFromOccurrences is NewPipelineFromOccurrencesContext with a
// background context.
func NewPipelineFromOccurrences(log *flowlog.Log, r *appgroup.Resolver, cfg Config, occs []Occurrence) *Pipeline {
	return NewPipelineFromOccurrencesContext(context.Background(), log, r, cfg, occs)
}

// NewPipelineFromOccurrencesContext builds a pipeline over already-
// extracted occurrences, skipping the extraction pass entirely. The
// occurrences must be in canonical order (as produced by Occurrences,
// OccurrencesSharded, or StreamExtractor.Flush) and cover exactly the
// given log; Monitor uses this to reuse each window's incrementally
// extracted episodes. The pipeline takes ownership of the slice.
func NewPipelineFromOccurrencesContext(ctx context.Context, log *flowlog.Log, r *appgroup.Resolver, cfg Config, occs []Occurrence) *Pipeline {
	cfg = cfg.withDefaults()
	obs.From(ctx).Counter("signature.occurrences").Add(int64(len(occs)))
	return &Pipeline{ctx: ctx, log: log, meta: logMeta{Start: log.Start, End: log.End}, r: r, cfg: cfg, occs: occs}
}

// EventCount returns how many events backed the pipeline — the log's
// length, or the number of events streamed from the source.
func (p *Pipeline) EventCount() int {
	if p.agg != nil {
		return p.agg.events
	}
	return len(p.log.Events)
}

// Occurrences returns the shared flow episodes, ordered by start time.
// The slice is owned by the pipeline and must not be mutated.
func (p *Pipeline) Occurrences() []Occurrence { return p.occs }

// Groups returns the log's application groups, discovering them on
// first use (or returning the SetGroups seed).
func (p *Pipeline) Groups() []appgroup.Group {
	if !p.hasGroups {
		sp := obs.Span(p.ctx, "signature.groups")
		if p.agg != nil {
			p.groups = appgroup.DiscoverFromEdges(p.agg.edges, p.cfg.Special)
		} else {
			p.groups = appgroup.Discover(p.log, p.r, p.cfg.Special)
		}
		sp.End()
		obs.From(p.ctx).Counter("signature.groups").Add(int64(len(p.groups)))
		p.hasGroups = true
	}
	return p.groups
}

// SetGroups seeds group discovery with an already-discovered result.
// Discovery depends only on the log's host edge set, so a caller that
// knows the edge set is unchanged from a previous log (Monitor, across
// windows) can carry the groups over instead of rediscovering.
func (p *Pipeline) SetGroups(groups []appgroup.Group) {
	p.groups = groups
	p.hasGroups = true
}

// App builds the per-group application signatures from the shared
// occurrences, one worker-pool task per group.
func (p *Pipeline) App() []AppSignature {
	defer obs.Span(p.ctx, "signature.app").End()
	return buildAppFromGroups(p.ctx, p.view(), p.r, p.cfg, p.occs, p.Groups())
}

// view assembles the per-group build inputs from whichever backing
// store the pipeline has.
func (p *Pipeline) view() appView {
	if p.agg != nil {
		return p.agg.view()
	}
	return viewFromLog(p.log, p.r)
}

// Infra builds the infrastructure signature from the shared occurrences.
func (p *Pipeline) Infra() InfraSignature {
	defer obs.Span(p.ctx, "signature.infra").End()
	inf := buildInfraFromOccs(p.r, p.cfg, p.occs)
	inf.LogDuration = p.meta.Duration()
	if p.agg != nil {
		attachLinkBytesFrom(&inf, p.meta.Duration(), p.agg.removals, p.occs)
	} else {
		attachLinkBytes(&inf, p.log, p.occs)
	}
	return inf
}

// Stability runs the per-interval stability analysis against full, the
// whole-log signatures (pass App()'s result to avoid rebuilding them).
// The log is segmented into cheap views and the shared occurrences are
// partitioned across the intervals by binary search on their start
// times; the per-interval builds then run on the worker pool.
func (p *Pipeline) Stability(scfg StabilityConfig, full []AppSignature) (map[string]Stability, error) {
	defer obs.Span(p.ctx, "signature.stability").End()
	scfg = scfg.withDefaults()
	if p.agg != nil {
		return p.stabilityFromAgg(scfg, full)
	}
	segs, err := p.log.Segment(scfg.Intervals)
	if err != nil {
		return nil, fmt.Errorf("signature: segmenting log: %w", err)
	}
	obs.From(p.ctx).Counter("signature.intervals").Add(int64(len(segs)))
	metas := make([]logMeta, len(segs))
	for i, s := range segs {
		metas[i] = logMeta{Start: s.Start, End: s.End}
	}
	parts := partitionByStart(p.occs, metas)
	intervals := make([][]AppSignature, len(segs))
	// Parallelism lives at the interval level here; the nested per-group
	// builds run serially so the pool stays bounded at cfg.workers().
	serial := p.cfg
	serial.Parallelism = 1
	if err := parallel.ForContext(p.ctx, len(segs), p.cfg.workers(), func(i int) {
		intervals[i] = buildAppFromOccs(p.ctx, segs[i], p.r, serial, parts[i])
	}); err != nil {
		return nil, err
	}
	return Stabilities(full, intervals, scfg), nil
}

// stabilityFromAgg is Stability over a source-streamed pipeline: the
// per-interval edge sets and FlowRemoved samples were aggregated during
// the streaming pass (sized by the StabilityConfig given then), so each
// interval build needs only its occurrence partition.
func (p *Pipeline) stabilityFromAgg(scfg StabilityConfig, full []AppSignature) (map[string]Stability, error) {
	if p.agg.segErr != nil {
		return nil, fmt.Errorf("signature: segmenting log: %w", p.agg.segErr)
	}
	if scfg.Intervals != len(p.agg.segs) {
		return nil, fmt.Errorf("signature: source pipeline aggregated %d stability intervals, asked for %d", len(p.agg.segs), scfg.Intervals)
	}
	obs.From(p.ctx).Counter("signature.intervals").Add(int64(len(p.agg.segs)))
	metas := make([]logMeta, len(p.agg.segs))
	for i := range p.agg.segs {
		metas[i] = p.agg.segs[i].meta
	}
	parts := partitionByStart(p.occs, metas)
	intervals := make([][]AppSignature, len(metas))
	serial := p.cfg
	serial.Parallelism = 1
	if err := parallel.ForContext(p.ctx, len(metas), p.cfg.workers(), func(i int) {
		sa := &p.agg.segs[i]
		groups := appgroup.DiscoverFromEdges(sa.edges, serial.Special)
		intervals[i] = buildAppFromGroups(p.ctx, appView{meta: sa.meta, removed: sa.removed}, p.r, serial, parts[i], groups)
	}); err != nil {
		return nil, err
	}
	return Stabilities(full, intervals, scfg), nil
}

// partitionByStart slices occs (sorted by start time) into per-segment
// subslices: an occurrence belongs to the interval containing its start.
// The final segment is inclusive of its end so an episode starting
// exactly at the log's End is not lost (mirroring flowlog.Segment).
func partitionByStart(occs []Occurrence, segs []logMeta) [][]Occurrence {
	parts := make([][]Occurrence, len(segs))
	for i, s := range segs {
		from, to := s.Start, s.End
		lo := sort.Search(len(occs), func(j int) bool { return occs[j].Start >= from })
		var hi int
		if i == len(segs)-1 {
			hi = sort.Search(len(occs), func(j int) bool { return occs[j].Start > to })
		} else {
			hi = sort.Search(len(occs), func(j int) bool { return occs[j].Start >= to })
		}
		if lo < hi {
			parts[i] = occs[lo:hi:hi]
		}
	}
	return parts
}

// workers resolves the Parallelism knob: 0 (or negative) means one
// worker per available CPU; requests above the CPU count are clamped
// down, since extra goroutines beyond GOMAXPROCS only add scheduling
// overhead. 1 forces sequential execution. The contract is
// parallel.Clamp's — the same one flowdiff.Options.Parallelism
// documents, since that single knob is where this value flows from.
func (c Config) workers() int {
	return parallel.Clamp(c.Parallelism)
}
