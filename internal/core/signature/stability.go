package signature

import (
	"math"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/stats"
	"flowdiff/internal/topology"
)

// StabilityConfig tunes the per-interval stability analysis (paper
// §III-B: "FlowDiff partitions the log into several time intervals and
// computes the application signatures for each interval. If a signature
// does not change significantly across all intervals, we consider it
// stable and use it during problem detection").
type StabilityConfig struct {
	// Intervals is how many segments the log is split into. Default 5.
	Intervals int
	// CIChiSquare is the maximum χ² between any interval's CI fractions
	// and the whole-log CI for the node's CI to be stable. Default 0.5.
	CIChiSquare float64
	// DDPeakSlack is how far (in bins) an interval's DD peak may drift.
	// Default 1 bin.
	DDPeakSlack int
	// PCDelta is the maximum |PC_interval - PC_full| for PC stability.
	// Default 0.4.
	PCDelta float64
	// MinSamples is the minimum number of observations an interval must
	// contain to vote; sparse intervals abstain. Default 3.
	MinSamples int
}

func (c StabilityConfig) withDefaults() StabilityConfig {
	if c.Intervals <= 0 {
		c.Intervals = 5
	}
	if c.CIChiSquare <= 0 {
		c.CIChiSquare = 0.5
	}
	if c.DDPeakSlack <= 0 {
		c.DDPeakSlack = 1
	}
	if c.PCDelta <= 0 {
		c.PCDelta = 0.4
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 3
	}
	return c
}

// Stability reports which of a group's signature components survived the
// per-interval check and may be used for problem detection.
type Stability struct {
	// CGStable: no interval showed edges outside the whole-log edge set.
	CGStable bool
	// CINodes/DDPairs/PCPairs record per-node and per-edge-pair verdicts.
	CINodes map[topology.NodeID]bool
	DDPairs map[EdgePair]bool
	PCPairs map[EdgePair]bool
}

// StableCI reports whether node's CI may be used for diffing.
func (s Stability) StableCI(node topology.NodeID) bool { return s.CINodes[node] }

// AnalyzeStability extracts occurrences once, partitions them across the
// intervals, builds the per-interval signatures in parallel, and
// compares every component of every group's whole-log signature against
// its per-interval counterparts. The result is keyed by group key.
// Callers that already hold a Pipeline should use its Stability method
// to reuse the shared occurrences and whole-log signatures.
func AnalyzeStability(log *flowlog.Log, r *appgroup.Resolver, cfg Config, scfg StabilityConfig) (map[string]Stability, error) {
	p := NewPipeline(log, r, cfg)
	return p.Stability(scfg, p.App())
}

// Stabilities compares whole-log signatures against per-interval
// signatures (already built) and returns the verdicts keyed by group key.
func Stabilities(full []AppSignature, intervals [][]AppSignature, cfg StabilityConfig) map[string]Stability {
	cfg = cfg.withDefaults()
	out := make(map[string]Stability, len(full))
	for _, f := range full {
		st := Stability{
			CINodes: make(map[topology.NodeID]bool),
			DDPairs: make(map[EdgePair]bool),
			PCPairs: make(map[EdgePair]bool),
		}
		var ivSigs []AppSignature
		for _, iv := range intervals {
			if m, ok := matchGroup(f, iv); ok {
				ivSigs = append(ivSigs, m)
			}
		}
		st.CGStable = cgStable(f, ivSigs, cfg)
		for _, node := range f.Group.Nodes {
			st.CINodes[node] = ciStable(f, ivSigs, node, cfg)
		}
		for p := range f.DD {
			st.DDPairs[p] = ddStable(f, ivSigs, p, cfg)
		}
		for p := range f.PC {
			st.PCPairs[p] = pcStable(f, ivSigs, p, cfg)
		}
		out[f.Group.Key()] = st
	}
	return out
}

func matchGroup(f AppSignature, sigs []AppSignature) (AppSignature, bool) {
	best := -1
	bestOv := 0
	for i, s := range sigs {
		ov := 0
		for _, n := range f.Group.Nodes {
			if s.Group.Contains(n) {
				ov++
			}
		}
		if ov > bestOv {
			bestOv, best = ov, i
		}
	}
	if best < 0 {
		return AppSignature{}, false
	}
	return sigs[best], true
}

func cgStable(f AppSignature, ivs []AppSignature, cfg StabilityConfig) bool {
	for _, iv := range ivs {
		if iv.GroupFS.FlowCount < cfg.MinSamples {
			continue
		}
		// Every interval edge must exist in the full CG; missing edges in
		// a sparse interval are tolerated, extra edges are not.
		for e := range iv.CG {
			if !f.CG[e] {
				return false
			}
		}
	}
	return true
}

func ciStable(f AppSignature, ivs []AppSignature, node topology.NodeID, cfg StabilityConfig) bool {
	ref, ok := f.CI[node]
	if !ok || len(ref.Fractions) == 0 {
		return false
	}
	voted := false
	for _, iv := range ivs {
		got, ok := iv.CI[node]
		if !ok {
			continue
		}
		var total float64
		for _, c := range got.Counts {
			total += c
		}
		if int(total) < cfg.MinSamples {
			continue
		}
		// Align the interval's fractions to the reference edge order;
		// edges absent in the interval count as zero.
		obs := make([]float64, len(ref.Edges))
		for i, e := range ref.Edges {
			for j, ge := range got.Edges {
				if ge == e {
					obs[i] = got.Fractions[j]
					break
				}
			}
		}
		x2, err := stats.ChiSquare(obs, ref.Fractions)
		if err != nil || x2 > cfg.CIChiSquare {
			return false
		}
		voted = true
	}
	return voted
}

func ddStable(f AppSignature, ivs []AppSignature, p EdgePair, cfg StabilityConfig) bool {
	ref, ok := f.DD[p]
	if !ok {
		return false
	}
	voted := false
	for _, iv := range ivs {
		got, ok := iv.DD[p]
		if !ok || got.Samples < cfg.MinSamples {
			continue
		}
		if absInt(got.Peak.Bucket-ref.Peak.Bucket) > cfg.DDPeakSlack {
			return false
		}
		voted = true
	}
	return voted
}

func pcStable(f AppSignature, ivs []AppSignature, p EdgePair, cfg StabilityConfig) bool {
	ref, ok := f.PC[p]
	if !ok {
		return false
	}
	voted := false
	for _, iv := range ivs {
		got, ok := iv.PC[p]
		if !ok {
			continue
		}
		if math.Abs(got-ref) > cfg.PCDelta {
			return false
		}
		voted = true
	}
	return voted
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
