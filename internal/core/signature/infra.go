package signature

import (
	"sort"
	"time"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/flowlog"
	"flowdiff/internal/stats"
)

// SwitchPair is an ordered pair of switches observed consecutively on
// flow paths.
type SwitchPair struct {
	From, To string
}

// HostAttach records which switch a host's flows enter the network at.
type HostAttach struct {
	Host   string
	Switch string
}

// InfraSignature models the infrastructure (paper §III-C): inferred
// physical topology, inter-switch latency, and controller response time.
type InfraSignature struct {
	// LogDuration is the interval the signature was built from.
	LogDuration time.Duration
	// PT: switch adjacency inferred from consecutive PacketIns of the
	// same flow occurrence, plus host attachment points (majority vote
	// over the first switch of flows sourced at the host — entries
	// installed in earlier intervals can make a mid-path switch report
	// first, so a single observation is not trusted).
	SwitchAdj  map[SwitchPair]int
	HostAttach map[string]string
	// HostAttachCount is the number of observations behind each
	// HostAttach vote.
	HostAttachCount map[string]int
	// ISL per switch pair: mean/stddev of (next PacketIn - previous
	// FlowMod), per Figure 3.
	ISL map[SwitchPair]stats.Summary
	// CRT: controller response time distribution (FlowMod time - PacketIn
	// time for the same switch within an occurrence).
	CRT stats.Summary
	// CRTSamples retains raw response times for CDFs and overload tests.
	CRTSamples []float64
	// LinkBytes estimates per-adjacency utilization (bytes per second of
	// log time): each flow's final byte count (FlowRemoved) is attributed
	// to every switch pair its PacketIn sequence traversed — the §III-C
	// "baseline performance parameters (such as link utilization)".
	LinkBytes map[SwitchPair]float64
}

// BuildInfra extracts the infrastructure signature from a log.
func BuildInfra(log *flowlog.Log, r *appgroup.Resolver, cfg Config) InfraSignature {
	return NewPipeline(log, r, cfg).Infra()
}

// removedFlow is one flow key's final byte count: the first FlowRemoved
// observed for the key, in log order (the first report carries the full
// episode counters; later per-switch reports would multiply them).
type removedFlow struct {
	Key   flowlog.FlowKey
	Bytes uint64
}

// firstRemovals collects each flow key's first FlowRemoved, in log order.
func firstRemovals(log *flowlog.Log) []removedFlow {
	var out []removedFlow
	seen := make(map[flowlog.FlowKey]bool)
	for i := range log.Events {
		e := &log.Events[i]
		if e.Type != flowlog.EventFlowRemoved || seen[e.Flow] {
			continue
		}
		seen[e.Flow] = true
		out = append(out, removedFlow{Key: e.Flow, Bytes: e.Bytes})
	}
	return out
}

// attachLinkBytes distributes each removed flow's byte count over the
// switch adjacencies its occurrences traversed, normalized to bytes per
// second of log time. occs are the log's (already extracted) episodes.
func attachLinkBytes(inf *InfraSignature, log *flowlog.Log, occs []Occurrence) {
	attachLinkBytesFrom(inf, log.Duration(), firstRemovals(log), occs)
}

// attachLinkBytesFrom is the shared core behind the in-memory and
// streaming paths: removals must hold one entry per flow key, in log
// order, so float accumulation order matches across both paths.
func attachLinkBytesFrom(inf *InfraSignature, dur time.Duration, removals []removedFlow, occs []Occurrence) {
	if dur <= 0 {
		return
	}
	// Per flow key: the adjacency pairs its episodes traversed.
	pathOf := make(map[flowlog.FlowKey][]SwitchPair)
	for _, o := range occs {
		sws := o.Switches()
		if len(sws) < 2 {
			continue
		}
		if _, have := pathOf[o.Key]; have {
			continue
		}
		pairs := make([]SwitchPair, 0, len(sws)-1)
		for i := 1; i < len(sws); i++ {
			pairs = append(pairs, SwitchPair{sws[i-1], sws[i]})
		}
		pathOf[o.Key] = pairs
	}
	inf.LinkBytes = make(map[SwitchPair]float64)
	secs := dur.Seconds()
	for _, rf := range removals {
		for _, p := range pathOf[rf.Key] {
			inf.LinkBytes[p] += float64(rf.Bytes) / secs
		}
	}
}

func buildInfraFromOccs(r *appgroup.Resolver, cfg Config, occs []Occurrence) InfraSignature {
	inf := InfraSignature{
		SwitchAdj:       make(map[SwitchPair]int),
		HostAttach:      make(map[string]string),
		HostAttachCount: make(map[string]int),
		ISL:             make(map[SwitchPair]stats.Summary),
		LinkBytes:       make(map[SwitchPair]float64),
	}
	islSamples := make(map[SwitchPair][]float64)
	var crt []float64
	attachVotes := make(map[string]map[string]int)

	for _, o := range occs {
		// Walk the episode's events in order, tracking the reactive
		// per-hop pattern PI(sw1) FM(sw1) PI(sw2) FM(sw2) ... (Figure 3).
		var prevPI *flowlog.Event
		var prevFM *flowlog.Event
		var pendingPI *flowlog.Event
		for i := range o.Events {
			e := &o.Events[i]
			switch e.Type {
			case flowlog.EventPacketIn:
				if prevPI != nil && e.Switch != prevPI.Switch {
					inf.SwitchAdj[SwitchPair{prevPI.Switch, e.Switch}]++
					if prevFM != nil && prevFM.Switch == prevPI.Switch {
						d := e.Time - prevFM.Time
						if d >= 0 {
							p := SwitchPair{prevPI.Switch, e.Switch}
							islSamples[p] = append(islSamples[p], float64(d))
						}
					}
				}
				if prevPI == nil {
					src := string(r.Node(o.Key.Src))
					if attachVotes[src] == nil {
						attachVotes[src] = make(map[string]int)
					}
					attachVotes[src][e.Switch]++
				}
				prevPI = e
				pendingPI = e
			case flowlog.EventFlowMod:
				if pendingPI != nil && e.Switch == pendingPI.Switch {
					d := e.Time - pendingPI.Time
					if d >= 0 {
						crt = append(crt, float64(d))
					}
					pendingPI = nil
				}
				prevFM = e
			}
		}
	}

	for host, votes := range attachVotes {
		best, bestN, total := "", 0, 0
		for sw, n := range votes {
			total += n
			if n > bestN || (n == bestN && sw < best) {
				best, bestN = sw, n
			}
		}
		inf.HostAttach[host] = best
		inf.HostAttachCount[host] = total
	}
	for p, xs := range islSamples {
		inf.ISL[p] = stats.Summarize(xs)
	}
	inf.CRT = stats.Summarize(crt)
	inf.CRTSamples = crt
	return inf
}

// AdjacencyEdges returns the inferred switch adjacency as a sorted slice
// (for deterministic reporting and diffing).
func (i InfraSignature) AdjacencyEdges() []SwitchPair {
	out := make([]SwitchPair, 0, len(i.SwitchAdj))
	for p := range i.SwitchAdj {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		return out[a].To < out[b].To
	})
	return out
}

// MeanISL returns the mean inter-switch latency across all pairs, or 0
// when no samples exist.
func (i InfraSignature) MeanISL() time.Duration {
	pairs := make([]SwitchPair, 0, len(i.ISL))
	for p := range i.ISL {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].From != pairs[b].From {
			return pairs[a].From < pairs[b].From
		}
		return pairs[a].To < pairs[b].To
	})
	var sum float64
	var n int
	for _, p := range pairs {
		s := i.ISL[p]
		sum += s.Mean * float64(s.Count)
		n += s.Count
	}
	if n == 0 {
		return 0
	}
	return time.Duration(sum / float64(n))
}
