package signature

import (
	"reflect"
	"testing"
	"time"

	"flowdiff/internal/core/appgroup"
	"flowdiff/internal/flowlog"
)

// feedAll drives an extractor event by event over a log slice.
func feedAll(x *StreamExtractor, events []flowlog.Event) {
	for _, e := range events {
		x.Append(e)
	}
}

// TestStreamExtractorMatchesBatch pins the streaming half of the
// tentpole: an extractor fed event-by-event must flush the
// byte-identical occurrence slice Occurrences produces on the same
// events — on sorted logs, shuffled logs, and logs with wildcard
// (FlowMod-only) keys.
func TestStreamExtractorMatchesBatch(t *testing.T) {
	for _, shuffle := range []bool{false, true} {
		name := "sorted"
		if shuffle {
			name = "shuffled"
		}
		t.Run(name, func(t *testing.T) {
			log := messyLog(t, 200, shuffle)
			want := Occurrences(log, 0)
			if len(want) == 0 {
				t.Fatal("batch extraction found nothing; equivalence would be vacuous")
			}
			x := NewStreamExtractor(0)
			feedAll(x, log.Events)
			got := x.Flush()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("streaming result differs from batch (%d vs %d occurrences)", len(got), len(want))
			}
			if x.Pending() != 0 || len(x.Flush()) != 0 {
				t.Error("Flush did not reset the extractor")
			}
		})
	}
}

// TestStreamExtractorWindowed feeds one log through the extractor in
// windows cut at arbitrary points; every window's flush must match
// batch extraction over exactly that window's events — the invariant
// Monitor relies on.
func TestStreamExtractorWindowed(t *testing.T) {
	log := messyLog(t, 120, false)
	cuts := []int{0, 17, len(log.Events) / 3, len(log.Events) / 2, len(log.Events) - 5, len(log.Events)}
	x := NewStreamExtractor(0)
	for i := 1; i < len(cuts); i++ {
		lo, hi := cuts[i-1], cuts[i]
		feedAll(x, log.Events[lo:hi])
		got := x.Flush()
		window := flowlog.New(0, 10*time.Minute)
		window.Events = append(window.Events, log.Events[lo:hi]...)
		want := Occurrences(window, 0)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("window [%d,%d): streaming flush differs from batch (%d vs %d occurrences)", lo, hi, len(got), len(want))
		}
	}
}

// TestStreamExtractorGapBoundary: a quiet period of exactly the gap must
// NOT split an episode (batch uses strictly-greater), one tick more
// must.
func TestStreamExtractorGapBoundary(t *testing.T) {
	key := flowlog.FlowKey{Proto: 6, Src: addr(1), Dst: addr(2), SrcPort: 5, DstPort: 80}
	gap := time.Second
	x := NewStreamExtractor(gap)
	x.Append(flowlog.Event{Time: 0, Type: flowlog.EventPacketIn, Switch: "sw", Flow: key})
	x.Append(flowlog.Event{Time: gap, Type: flowlog.EventFlowMod, Switch: "sw", Flow: key})
	x.Append(flowlog.Event{Time: 2*gap + 1, Type: flowlog.EventPacketIn, Switch: "sw", Flow: key})
	occs := x.Flush()
	if len(occs) != 2 {
		t.Fatalf("got %d occurrences, want 2 (split only on strictly-greater gap)", len(occs))
	}
	if len(occs[0].Events) != 2 || len(occs[1].Events) != 1 {
		t.Errorf("episode sizes = %d,%d, want 2,1", len(occs[0].Events), len(occs[1].Events))
	}
}

// TestStreamExtractorIgnoresNonControl: FlowRemoved/PortStatus must not
// open episodes or extend them (they are invisible to batch extraction
// too).
func TestStreamExtractorIgnoresNonControl(t *testing.T) {
	key := flowlog.FlowKey{Proto: 6, Src: addr(1), Dst: addr(2), SrcPort: 5, DstPort: 80}
	x := NewStreamExtractor(time.Second)
	x.Append(flowlog.Event{Time: 0, Type: flowlog.EventPacketIn, Switch: "sw", Flow: key})
	x.Append(flowlog.Event{Time: 500 * time.Millisecond, Type: flowlog.EventFlowRemoved, Switch: "sw", Flow: key})
	x.Append(flowlog.Event{Time: 600 * time.Millisecond, Type: flowlog.EventPortStatus, Switch: "sw"})
	if x.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (only the PacketIn is a control event)", x.Pending())
	}
	occs := x.Flush()
	if len(occs) != 1 || len(occs[0].Events) != 1 {
		t.Fatalf("got %+v, want one single-event occurrence", occs)
	}
}

// TestPipelineFromOccurrencesMatchesNewPipeline: handing a pipeline
// pre-extracted occurrences must yield the same signatures as letting
// it extract them itself.
func TestPipelineFromOccurrencesMatchesNewPipeline(t *testing.T) {
	log := messyLog(t, 100, false)
	r := appgroup.NewResolver(nil)
	cfg := Config{}
	ref := NewPipeline(log, r, cfg)
	occs := Occurrences(log, 0)
	p := NewPipelineFromOccurrences(log, r, cfg, occs)
	if !reflect.DeepEqual(p.Occurrences(), ref.Occurrences()) {
		t.Fatal("occurrence slices differ")
	}
	if !reflect.DeepEqual(p.App(), ref.App()) {
		t.Error("app signatures differ")
	}
	if !reflect.DeepEqual(p.Infra(), ref.Infra()) {
		t.Error("infra signatures differ")
	}
}
