// Package taskmine implements FlowDiff's task signatures (paper §III-D):
// it learns a finite-state automaton for each operator task (VM startup,
// migration, …) from multiple captured runs — common-flow extraction,
// closed frequent sequential-pattern mining, automaton construction — and
// detects task executions in new logs with a flexible matcher that
// tolerates interleaved traffic up to a bounded gap. Flows can be
// normalized with masked IPs so an automaton learned on one VM
// generalizes to others (Table III).
package taskmine

import (
	"fmt"
	"net/netip"
	"strconv"
	"time"

	"flowdiff/internal/flowlog"
)

// AnyPort is the wildcard port label (the '*' of Figure 4).
const AnyPort = "*"

// Template is a normalized flow: endpoint labels (IP literals or masked
// "#k" placeholders) and port labels (decimal literals or "*").
type Template struct {
	Proto    uint8
	Src, Dst string
	SrcPort  string
	DstPort  string
}

// String renders the template in Figure 4's style.
func (t Template) String() string {
	return fmt.Sprintf("[%d %s:%s-%s:%s]", t.Proto, t.Src, t.SrcPort, t.Dst, t.DstPort)
}

// Config tunes normalization, mining, and matching.
type Config struct {
	// MinSupport is the fraction of runs a sequence must appear in to be
	// frequent. Default 0.6 (the paper's example value).
	MinSupport float64
	// MaskIPs replaces endpoint addresses with "#k" placeholders assigned
	// by first appearance, except addresses in KeepAddrs (well-known
	// service nodes stay literal, as NFS does in Figure 4).
	MaskIPs bool
	// KeepAddrs lists addresses kept literal under masking.
	KeepAddrs map[netip.Addr]bool
	// EphemeralPort is the threshold at or above which a port is
	// considered ephemeral and normalized to "*". Well-known task ports
	// in WellKnownPorts stay literal regardless. Default 1024.
	EphemeralPort uint16
	// WellKnownPorts stay literal even above the ephemeral threshold
	// (e.g. 2049 NFS, 8002 migration).
	WellKnownPorts map[uint16]bool
	// InterleaveGap bounds how long a matcher waits between consumed
	// flows before giving up (paper: 1 second).
	InterleaveGap time.Duration
	// MaxMatchers caps concurrently active child matchers per automaton.
	// Default 256.
	MaxMatchers int
	// Parallelism bounds the worker count mining fans out to. Zero or
	// negative means one worker per CPU; values above the CPU count are
	// clamped down. The mined automaton is identical at every width.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.MinSupport <= 0 {
		c.MinSupport = 0.6
	}
	if c.EphemeralPort == 0 {
		c.EphemeralPort = 1024
	}
	if c.WellKnownPorts == nil {
		c.WellKnownPorts = map[uint16]bool{2049: true, 8002: true}
	}
	if c.InterleaveGap <= 0 {
		c.InterleaveGap = time.Second
	}
	if c.MaxMatchers <= 0 {
		c.MaxMatchers = 256
	}
	return c
}

func (c Config) portLabel(p uint16) string {
	if p >= c.EphemeralPort && !c.WellKnownPorts[p] {
		return AnyPort
	}
	return strconv.Itoa(int(p))
}

// maskContext assigns "#k" placeholders by first appearance.
type maskContext struct {
	cfg    Config
	labels map[netip.Addr]string
	next   int
}

func newMaskContext(cfg Config) *maskContext {
	return &maskContext{cfg: cfg, labels: make(map[netip.Addr]string)}
}

func (m *maskContext) label(a netip.Addr) string {
	if !m.cfg.MaskIPs || m.cfg.KeepAddrs[a] {
		return a.String()
	}
	if l, ok := m.labels[a]; ok {
		return l
	}
	m.next++
	l := "#" + strconv.Itoa(m.next)
	m.labels[a] = l
	return l
}

// Normalize converts one run (an ordered flow sequence) into templates,
// using a fresh masking context per run so placeholder numbering is
// consistent within the run.
func Normalize(run []flowlog.FlowKey, cfg Config) []Template {
	cfg = cfg.withDefaults()
	m := newMaskContext(cfg)
	out := make([]Template, len(run))
	for i, k := range run {
		out[i] = Template{
			Proto:   k.Proto,
			Src:     m.label(k.Src),
			Dst:     m.label(k.Dst),
			SrcPort: cfg.portLabel(k.SrcPort),
			DstPort: cfg.portLabel(k.DstPort),
		}
	}
	return out
}
