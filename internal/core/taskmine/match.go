package taskmine

import (
	"net/netip"
	"sort"
	"strconv"
	"time"

	"flowdiff/internal/core/signature"
	"flowdiff/internal/flowlog"
)

// TimedFlow is one flow start observed in a log.
type TimedFlow struct {
	Key flowlog.FlowKey
	At  time.Duration
}

// Detection is one recognized task execution: an entry of the task time
// series (§III-D).
type Detection struct {
	Task  string
	Start time.Duration
	End   time.Duration
	// Hosts are the addresses of the endpoints the match consumed (both
	// literal and placeholder-bound), sorted — used to validate that a
	// behavioral change involves the same components as the task.
	Hosts []string
}

// FlowsFromLog extracts the time-ordered flow starts (one per flow
// occurrence) from a control log.
func FlowsFromLog(log *flowlog.Log, gap time.Duration) []TimedFlow {
	occs := signature.Occurrences(log, gap)
	out := make([]TimedFlow, 0, len(occs))
	for _, o := range occs {
		out = append(out, TimedFlow{Key: o.Key, At: o.Start})
	}
	return out
}

// RunsFromLogs converts per-run control logs (each capturing one
// execution of the same task, the way the paper's tcpdump-at-boot traces
// did) into the normalized template sequences Mine consumes.
func RunsFromLogs(logs []*flowlog.Log, cfg Config) [][]Template {
	out := make([][]Template, 0, len(logs))
	for _, l := range logs {
		flows := FlowsFromLog(l, cfg.InterleaveGap)
		keys := make([]flowlog.FlowKey, len(flows))
		for i, f := range flows {
			keys[i] = f.Key
		}
		out = append(out, Normalize(keys, cfg))
	}
	return out
}

// matcher is one child matching attempt (the paper's child process).
type matcher struct {
	state    int
	offset   int
	bindings map[string]netip.Addr
	bound    map[netip.Addr]string
	touched  map[netip.Addr]bool
	started  time.Duration
	last     time.Duration
}

func (m *matcher) clone() *matcher {
	c := &matcher{
		state: m.state, offset: m.offset,
		started: m.started, last: m.last,
		bindings: make(map[string]netip.Addr, len(m.bindings)),
		bound:    make(map[netip.Addr]string, len(m.bound)),
		touched:  make(map[netip.Addr]bool, len(m.touched)),
	}
	for k, v := range m.bindings {
		c.bindings[k] = v
	}
	for k, v := range m.bound {
		c.bound[k] = v
	}
	for k, v := range m.touched {
		c.touched[k] = v
	}
	return c
}

func (m *matcher) hosts() []string {
	out := make([]string, 0, len(m.touched))
	for a := range m.touched {
		out = append(out, a.String())
	}
	sort.Strings(out)
	return out
}

// matchEndpoint checks one endpoint label against a concrete address,
// returning the (possibly new) binding. Literal labels must equal the
// address; "#k" placeholders bind injectively.
func (m *matcher) matchEndpoint(label string, addr netip.Addr) (bindKey string, ok bool) {
	if len(label) > 0 && label[0] == '#' {
		if b, have := m.bindings[label]; have {
			return "", b == addr
		}
		if _, taken := m.bound[addr]; taken {
			return "", false // address already bound to another placeholder
		}
		return label, true
	}
	return "", label == addr.String()
}

// matchFlow checks the flow against template t under the matcher's
// bindings; on success it commits any new bindings.
func (m *matcher) matchFlow(t Template, f flowlog.FlowKey, cfg Config) bool {
	if t.Proto != f.Proto {
		return false
	}
	if !portMatches(t.SrcPort, f.SrcPort, cfg) || !portMatches(t.DstPort, f.DstPort, cfg) {
		return false
	}
	srcBind, ok := m.matchEndpoint(t.Src, f.Src)
	if !ok {
		return false
	}
	dstBind, ok := m.matchEndpoint(t.Dst, f.Dst)
	if !ok {
		return false
	}
	if srcBind != "" && dstBind != "" && srcBind == dstBind && f.Src != f.Dst {
		return false // one placeholder cannot bind two addresses
	}
	if srcBind != "" {
		m.bindings[srcBind] = f.Src
		m.bound[f.Src] = srcBind
	}
	if dstBind != "" {
		m.bindings[dstBind] = f.Dst
		m.bound[f.Dst] = dstBind
	}
	m.touched[f.Src] = true
	m.touched[f.Dst] = true
	return true
}

func portMatches(label string, port uint16, cfg Config) bool {
	if label == AnyPort {
		return port >= cfg.EphemeralPort && !cfg.WellKnownPorts[port]
	}
	return label == strconv.Itoa(int(port))
}

// Detect scans a time-ordered flow stream for executions of the task.
// Whenever a flow matches the first template of a start state, a child
// matcher is spawned; children consume matching flows (tolerating
// interleaved traffic up to the automaton's InterleaveGap between
// consumed flows) and report a detection upon completing a final state.
func Detect(a *Automaton, flows []TimedFlow) []Detection {
	cfg := a.cfg.withDefaults()
	sorted := append([]TimedFlow(nil), flows...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	var detections []Detection
	var children []*matcher

	for _, f := range sorted {
		// Expire stalled children.
		alive := children[:0]
		for _, c := range children {
			if f.At-c.last <= cfg.InterleaveGap {
				alive = append(alive, c)
			}
		}
		children = alive

		// Offer the flow to existing children.
		var next []*matcher
		for _, c := range children {
			adv := c.clone()
			if !adv.matchFlow(a.States[adv.state].Seq[adv.offset], f.Key, cfg) {
				next = append(next, c) // keep waiting (interleaved flow)
				continue
			}
			adv.offset++
			adv.last = f.At
			done, spawned := a.advance(adv, f.At, &detections)
			if !done {
				next = append(next, spawned...)
			}
			// The non-advancing original is dropped: the flexible matcher
			// consumes greedily, as the paper's child processes do.
		}
		children = next

		// Spawn new children at start states.
		for _, si := range a.StartStates() {
			m := &matcher{
				state: si, offset: 0,
				bindings: make(map[string]netip.Addr),
				bound:    make(map[netip.Addr]string),
				touched:  make(map[netip.Addr]bool),
				started:  f.At, last: f.At,
			}
			if !m.matchFlow(a.States[si].Seq[0], f.Key, cfg) {
				continue
			}
			m.offset = 1
			done, spawned := a.advance(m, f.At, &detections)
			if !done {
				children = append(children, spawned...)
			}
		}
		if len(children) > cfg.MaxMatchers {
			children = children[len(children)-cfg.MaxMatchers:]
		}
	}
	return detections
}

// advance handles a matcher that just consumed a flow: completing the
// current state either finishes the task (final state) or forks the
// matcher into the state's successors. It reports whether the matcher
// terminated and, if not, the matchers to keep.
func (a *Automaton) advance(m *matcher, now time.Duration, detections *[]Detection) (done bool, keep []*matcher) {
	if m.offset < len(a.States[m.state].Seq) {
		return false, []*matcher{m}
	}
	// State completed.
	if a.final[m.state] {
		*detections = append(*detections, Detection{Task: a.Name, Start: m.started, End: now, Hosts: m.hosts()})
		return true, nil
	}
	succ := a.transitions[m.state]
	if len(succ) == 0 {
		return true, nil // dead end: not a final state, no successors
	}
	for _, si := range sortedKeys(succ) {
		c := m.clone()
		c.state = si
		c.offset = 0
		keep = append(keep, c)
	}
	return false, keep
}

func unionSorted(a, b []string) []string {
	set := make(map[string]bool, len(a)+len(b))
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		set[x] = true
	}
	out := make([]string, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

// DedupeDetections merges detections of the same task whose spans
// overlap, keeping the earliest start and latest end.
func DedupeDetections(ds []Detection) []Detection {
	if len(ds) == 0 {
		return nil
	}
	sorted := append([]Detection(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Task != sorted[j].Task {
			return sorted[i].Task < sorted[j].Task
		}
		return sorted[i].Start < sorted[j].Start
	})
	var out []Detection
	for _, d := range sorted {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.Task == d.Task && d.Start <= last.End {
				if d.End > last.End {
					last.End = d.End
				}
				last.Hosts = unionSorted(last.Hosts, d.Hosts)
				continue
			}
		}
		out = append(out, d)
	}
	return out
}
