package taskmine

// TemplateSet interns each distinct Template into a dense int32 ID, so
// the mining stages (common-flow extraction, apriori pattern growth,
// closed pruning, segmentation) run over []int32 sequences with integer
// comparisons and array-indexed counters instead of rebuilding and
// hashing the templates' string renderings. The same trick syslog-template
// miners use to survive template explosion ("Finding Needles in the
// Haystack"): intern once, mine over dense IDs.
//
// IDs are assigned by first appearance, so a set filled from the same
// runs in the same order is identical regardless of later parallelism —
// interning happens once, serially, before any fan-out.
type TemplateSet struct {
	ids   map[Template]int32
	tmpls []Template
}

// NewTemplateSet returns an empty interner.
func NewTemplateSet() *TemplateSet {
	return &TemplateSet{ids: make(map[Template]int32)}
}

// ID interns t, assigning the next dense ID on first sight.
func (s *TemplateSet) ID(t Template) int32 {
	if id, ok := s.ids[t]; ok {
		return id
	}
	id := int32(len(s.tmpls))
	s.ids[t] = id
	s.tmpls = append(s.tmpls, t)
	return id
}

// Template returns the template interned as id.
func (s *TemplateSet) Template(id int32) Template { return s.tmpls[id] }

// Len returns the number of distinct templates interned.
func (s *TemplateSet) Len() int { return len(s.tmpls) }

// InternRun maps one run to its ID sequence, interning new templates.
func (s *TemplateSet) InternRun(run []Template) []int32 {
	out := make([]int32, len(run))
	for i, t := range run {
		out[i] = s.ID(t)
	}
	return out
}

// packCand packs a candidate pattern identity into one comparable
// integer: the dense ID of its length-(L-1) prefix pattern plus the
// interned ID of its last template. Every length-L sequence has exactly
// one such encoding, so candidate maps need no string keys at all, and
// sorting the packed keys is a deterministic candidate order shared by
// every worker count.
func packCand(prefix, last int32) int64 {
	return int64(prefix)<<32 | int64(uint32(last))
}
