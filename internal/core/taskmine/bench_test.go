package taskmine

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"flowdiff/internal/flowlog"
)

// trainRuns synthesizes n task runs of length ~k with mild variation.
func trainRuns(n, k int, seed int64) [][]Template {
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{}
	var runs [][]Template
	for r := 0; r < n; r++ {
		var keys []flowlog.FlowKey
		for i := 0; i < k; i++ {
			keys = append(keys, flowN(i+1))
			if rng.Float64() < 0.2 { // occasional repeat
				keys = append(keys, flowN(i+1))
			}
		}
		runs = append(runs, Normalize(keys, cfg))
	}
	return runs
}

// BenchmarkMine measures the full mining pipeline (common flows, apriori
// pattern growth, closed pruning, segmentation) at two training-set
// scales. Compare against BenchmarkMineReference: the same inputs through
// the retained naive string-keyed miner.
func BenchmarkMine(b *testing.B) {
	for _, sz := range []struct{ runs, k int }{{20, 12}, {50, 30}} {
		runs := trainRuns(sz.runs, sz.k, 1)
		b.Run(fmt.Sprintf("runs=%d/len=%d", sz.runs, sz.k), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Mine("bench", runs, Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDetect(b *testing.B) {
	runs := trainRuns(50, 8, 1)
	a, err := Mine("bench", runs, Config{})
	if err != nil {
		b.Fatal(err)
	}
	// A busy stream: 10 task executions among 2000 interleaved flows.
	rng := rand.New(rand.NewSource(2))
	var flows []TimedFlow
	at := time.Duration(0)
	for i := 0; i < 2000; i++ {
		at += time.Duration(rng.Intn(50)) * time.Millisecond
		flows = append(flows, TimedFlow{Key: flowN(100 + rng.Intn(50)), At: at})
		if i%200 == 0 {
			for j := 1; j <= 8; j++ {
				at += 20 * time.Millisecond
				flows = append(flows, TimedFlow{Key: flowN(j), At: at})
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Detect(a, flows)) == 0 {
			b.Fatal("no detections")
		}
	}
}
