package taskmine

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"flowdiff/internal/flowlog"
)

// flowN builds distinguishable flows f1..fN as used in the paper's
// Figure 6 walk-through.
func flowN(i int) flowlog.FlowKey {
	return flowlog.FlowKey{
		Proto:   6,
		Src:     netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}),
		Dst:     netip.AddrFrom4([4]byte{10, 0, 1, byte(i)}),
		SrcPort: 100, // literal ports so each f_i is a distinct template
		DstPort: uint16(200 + i),
	}
}

func tmpl(run []flowlog.FlowKey, cfg Config) []Template {
	return Normalize(run, cfg)
}

func runOf(idxs ...int) []flowlog.FlowKey {
	var out []flowlog.FlowKey
	for _, i := range idxs {
		out = append(out, flowN(i))
	}
	return out
}

// TestFigure6Example reproduces the paper's state-extraction example:
// T'1 = f1 f2 f3 f4 f5, T'2 = f3 f4 f5 f1, T'3 = f3 f4 f5 f2 f1 with
// min_sup 0.6. The closed frequent pattern f3f4f5 subsumes f3, f4, f5,
// f3f4, and f4f5.
func TestFigure6Example(t *testing.T) {
	cfg := Config{MinSupport: 0.6}
	runs := [][]Template{
		tmpl(runOf(1, 2, 3, 4, 5), cfg),
		tmpl(runOf(3, 4, 5, 1), cfg),
		tmpl(runOf(3, 4, 5, 2, 1), cfg),
	}
	// The paper's example applies pattern mining to already-extracted
	// T'_i, so call the mining stages directly on them.
	pats := frequentPatterns(runs, cfg.MinSupport)
	bySig := make(map[string]Pattern)
	for _, p := range pats {
		bySig[p.key()] = p
	}
	// The paper's frequent list: f3f4 (3), f4f5 (3), and f3f4f5 (3);
	// pairs such as f1f2 or f5f1 fail min_sup.
	f3f4 := patternKey(tmpl(runOf(3, 4), cfg))
	f4f5 := patternKey(tmpl(runOf(4, 5), cfg))
	f3f4f5 := patternKey(tmpl(runOf(3, 4, 5), cfg))
	for _, k := range []string{f3f4, f4f5, f3f4f5} {
		p, ok := bySig[k]
		if !ok {
			t.Fatalf("pattern %s not mined", k)
		}
		if p.Support != 1.0 {
			t.Errorf("pattern %s support = %v, want 1.0 (3 of 3 runs)", k, p.Support)
		}
	}
	if _, ok := bySig[patternKey(tmpl(runOf(1, 2), cfg))]; ok {
		t.Error("f1f2 has support 1/3 and must not be frequent")
	}
	// Closed pruning removes f3, f4, f5, f3f4, and f4f5: all subsumed by
	// f3f4f5 with identical support.
	closed := closedPrune(pats)
	for _, p := range closed {
		if p.key() == f3f4 || p.key() == f4f5 {
			t.Errorf("%s survived closed pruning", p.key())
		}
		for _, i := range []int{3, 4, 5} {
			if p.key() == patternKey(tmpl(runOf(i), cfg)) {
				t.Errorf("f%d survived closed pruning", i)
			}
		}
	}

	// The full Mine pipeline on the same runs must accept every training
	// run (the paper: "all extracted logs can be precisely represented by
	// the constructed automata").
	a, err := Mine("fig6", runs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, idxs := range [][]int{{1, 2, 3, 4, 5}, {3, 4, 5, 1}, {3, 4, 5, 2, 1}} {
		flows := timedRun(idxs, 0)
		if len(Detect(a, flows)) == 0 {
			t.Errorf("training run %d not accepted by its own automaton", i+1)
		}
	}
}

func timedRun(idxs []int, base time.Duration) []TimedFlow {
	var out []TimedFlow
	for j, i := range idxs {
		out = append(out, TimedFlow{Key: flowN(i), At: base + time.Duration(j)*50*time.Millisecond})
	}
	return out
}

func TestMineRejectsEmptyInput(t *testing.T) {
	if _, err := Mine("x", nil, Config{}); err == nil {
		t.Error("want error for zero runs")
	}
	// Runs with nothing in common.
	cfg := Config{}
	runs := [][]Template{
		tmpl(runOf(1), cfg),
		tmpl(runOf(2), cfg),
	}
	if _, err := Mine("x", runs, cfg); err == nil {
		t.Error("want error when no common flows exist")
	}
}

func TestClosedPruningAblation(t *testing.T) {
	cfg := Config{MinSupport: 0.6}
	runs := [][]Template{
		tmpl(runOf(1, 2, 3, 4, 5), cfg),
		tmpl(runOf(3, 4, 5, 1), cfg),
		tmpl(runOf(3, 4, 5, 2, 1), cfg),
	}
	pruned, err := Mine("p", runs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := MineWithOptions("u", runs, cfg, MineOptions{DisableClosedPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumStates() >= unpruned.NumStates() {
		t.Errorf("closed pruning should reduce states: %d vs %d",
			pruned.NumStates(), unpruned.NumStates())
	}
}

func TestDetectToleratesInterleaving(t *testing.T) {
	cfg := Config{MinSupport: 0.6}
	runs := [][]Template{
		tmpl(runOf(1, 2, 3), cfg),
		tmpl(runOf(1, 2, 3), cfg),
	}
	a, err := Mine("seq", runs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave unrelated flows (f7, f8) within the gap bound.
	flows := []TimedFlow{
		{Key: flowN(1), At: 0},
		{Key: flowN(7), At: 100 * time.Millisecond},
		{Key: flowN(2), At: 300 * time.Millisecond},
		{Key: flowN(8), At: 500 * time.Millisecond},
		{Key: flowN(3), At: 700 * time.Millisecond},
	}
	if len(Detect(a, flows)) == 0 {
		t.Error("interleaved traffic within the gap should not break matching")
	}
}

func TestDetectRespectsInterleaveGap(t *testing.T) {
	cfg := Config{MinSupport: 0.6, InterleaveGap: time.Second}
	runs := [][]Template{
		tmpl(runOf(1, 2, 3), cfg),
		tmpl(runOf(1, 2, 3), cfg),
	}
	a, err := Mine("seq", runs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// f2 arrives 5 s after f1: the child must have expired.
	flows := []TimedFlow{
		{Key: flowN(1), At: 0},
		{Key: flowN(2), At: 5 * time.Second},
		{Key: flowN(3), At: 5*time.Second + 100*time.Millisecond},
	}
	if n := len(Detect(a, flows)); n != 0 {
		t.Errorf("got %d detections across a >1s quiet gap, want 0", n)
	}
}

func TestDetectIncompleteSequenceNoMatch(t *testing.T) {
	cfg := Config{MinSupport: 0.6}
	runs := [][]Template{
		tmpl(runOf(1, 2, 3), cfg),
		tmpl(runOf(1, 2, 3), cfg),
	}
	a, err := Mine("seq", runs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	flows := timedRun([]int{1, 2}, 0) // missing f3
	if n := len(Detect(a, flows)); n != 0 {
		t.Errorf("got %d detections for an incomplete run, want 0", n)
	}
	flows = timedRun([]int{2, 3}, 0) // missing start
	if n := len(Detect(a, flows)); n != 0 {
		t.Errorf("got %d detections without the start flow, want 0", n)
	}
}

func TestDetectMultipleExecutions(t *testing.T) {
	cfg := Config{MinSupport: 0.6}
	runs := [][]Template{
		tmpl(runOf(1, 2, 3), cfg),
		tmpl(runOf(1, 2, 3), cfg),
	}
	a, err := Mine("seq", runs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	flows := append(timedRun([]int{1, 2, 3}, 0), timedRun([]int{1, 2, 3}, 10*time.Second)...)
	ds := DedupeDetections(Detect(a, flows))
	if len(ds) != 2 {
		t.Errorf("got %d deduped detections, want 2: %+v", len(ds), ds)
	}
}

func TestMaskedMatchingGeneralizesAcrossHosts(t *testing.T) {
	// Train masked on host pair A->B, detect the same shape on C->D.
	keep := map[netip.Addr]bool{}
	cfg := Config{MinSupport: 0.6, MaskIPs: true, KeepAddrs: keep}
	mk := func(srcLast, dstLast byte, port uint16) flowlog.FlowKey {
		return flowlog.FlowKey{
			Proto: 6,
			Src:   netip.AddrFrom4([4]byte{10, 9, 0, srcLast}),
			Dst:   netip.AddrFrom4([4]byte{10, 9, 0, dstLast}),
			// literal low ports so the template survives normalization
			SrcPort: 500, DstPort: port,
		}
	}
	trainRun := []flowlog.FlowKey{mk(1, 2, 700), mk(2, 1, 701), mk(1, 2, 702)}
	runs := [][]Template{Normalize(trainRun, cfg), Normalize(trainRun, cfg)}
	a, err := Mine("masked", runs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same shape on different hosts: should match (masked).
	other := []TimedFlow{
		{Key: mk(7, 8, 700), At: 0},
		{Key: mk(8, 7, 701), At: 100 * time.Millisecond},
		{Key: mk(7, 8, 702), At: 200 * time.Millisecond},
	}
	if len(Detect(a, other)) == 0 {
		t.Error("masked automaton should match the same shape on other hosts")
	}
	// Inconsistent binding (third flow from a third host) must not match.
	bad := []TimedFlow{
		{Key: mk(7, 8, 700), At: 0},
		{Key: mk(8, 7, 701), At: 100 * time.Millisecond},
		{Key: mk(9, 8, 702), At: 200 * time.Millisecond},
	}
	if len(Detect(a, bad)) != 0 {
		t.Error("placeholder bindings must stay consistent within a match")
	}
}

func TestUnmaskedMatchingIsHostSpecific(t *testing.T) {
	cfg := Config{MinSupport: 0.6}
	mk := func(srcLast byte, port uint16) flowlog.FlowKey {
		return flowlog.FlowKey{
			Proto:   6,
			Src:     netip.AddrFrom4([4]byte{10, 9, 0, srcLast}),
			Dst:     netip.AddrFrom4([4]byte{10, 9, 0, 100}),
			SrcPort: 500, DstPort: port,
		}
	}
	train := []flowlog.FlowKey{mk(1, 700), mk(1, 701)}
	runs := [][]Template{Normalize(train, cfg), Normalize(train, cfg)}
	a, err := Mine("unmasked", runs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := []TimedFlow{{Key: mk(1, 700), At: 0}, {Key: mk(1, 701), At: 50 * time.Millisecond}}
	if len(Detect(a, same)) == 0 {
		t.Error("same-host rerun should match the unmasked automaton")
	}
	foreign := []TimedFlow{{Key: mk(2, 700), At: 0}, {Key: mk(2, 701), At: 50 * time.Millisecond}}
	if len(Detect(a, foreign)) != 0 {
		t.Error("unmasked automaton must not match another host")
	}
}

func TestNormalizePortsAndMasking(t *testing.T) {
	cfg := Config{
		MaskIPs: true,
		KeepAddrs: map[netip.Addr]bool{
			netip.AddrFrom4([4]byte{10, 0, 0, 100}): true, // "NFS"
		},
	}
	run := []flowlog.FlowKey{
		{
			Proto:   6,
			Src:     netip.AddrFrom4([4]byte{10, 0, 0, 1}),
			Dst:     netip.AddrFrom4([4]byte{10, 0, 0, 100}),
			SrcPort: 43211, DstPort: 2049,
		},
	}
	ts := Normalize(run, cfg)
	if len(ts) != 1 {
		t.Fatal("one template expected")
	}
	got := ts[0]
	if got.Src != "#1" {
		t.Errorf("src label = %q, want #1", got.Src)
	}
	if got.Dst != "10.0.0.100" {
		t.Errorf("dst label = %q, want literal kept address", got.Dst)
	}
	if got.SrcPort != AnyPort {
		t.Errorf("src port = %q, want *", got.SrcPort)
	}
	if got.DstPort != "2049" {
		t.Errorf("dst port = %q, want literal 2049 (well-known)", got.DstPort)
	}
}

func TestNormalizePlaceholderOrderStable(t *testing.T) {
	cfg := Config{MaskIPs: true}
	a := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	b := netip.AddrFrom4([4]byte{10, 0, 0, 2})
	run := []flowlog.FlowKey{
		{Proto: 6, Src: a, Dst: b, SrcPort: 100, DstPort: 200},
		{Proto: 6, Src: b, Dst: a, SrcPort: 200, DstPort: 100},
	}
	ts := Normalize(run, cfg)
	if ts[0].Src != "#1" || ts[0].Dst != "#2" || ts[1].Src != "#2" || ts[1].Dst != "#1" {
		t.Errorf("placeholder assignment wrong: %+v", ts)
	}
}

func TestStatesSortedLongestFirst(t *testing.T) {
	cfg := Config{MinSupport: 0.5}
	runs := [][]Template{
		tmpl(runOf(1, 2, 3, 4), cfg),
		tmpl(runOf(1, 2, 5, 4), cfg),
	}
	a, err := Mine("sorted", runs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(a.States); i++ {
		if len(a.States[i].Seq) > len(a.States[i-1].Seq) {
			t.Fatal("states not sorted longest-first")
		}
	}
}

func TestDetectOnDisorderedInput(t *testing.T) {
	cfg := Config{MinSupport: 0.6}
	runs := [][]Template{
		tmpl(runOf(1, 2), cfg),
		tmpl(runOf(1, 2), cfg),
	}
	a, err := Mine("x", runs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flows passed out of order must still be detected (Detect sorts).
	flows := []TimedFlow{
		{Key: flowN(2), At: 100 * time.Millisecond},
		{Key: flowN(1), At: 0},
	}
	if len(Detect(a, flows)) == 0 {
		t.Error("Detect should sort its input")
	}
}

func ExampleMine() {
	cfg := Config{MinSupport: 0.6}
	runs := [][]Template{
		Normalize(runOf(3, 4, 5), cfg),
		Normalize(runOf(3, 4, 5), cfg),
	}
	a, _ := Mine("demo", runs, cfg)
	fmt.Println(a.Name, a.NumStates() > 0)
	// Output: demo true
}

func TestRunsFromLogs(t *testing.T) {
	cfg := Config{MinSupport: 0.6}
	// Build two per-run logs, each containing one execution of f1 f2 f3.
	mkLog := func() *flowlog.Log {
		l := flowlog.New(0, time.Minute)
		for j, i := range []int{1, 2, 3} {
			l.Append(flowlog.Event{
				Time: time.Duration(j) * 100 * time.Millisecond,
				Type: flowlog.EventPacketIn, Switch: "sw1", Flow: flowN(i),
			})
		}
		return l
	}
	runs := RunsFromLogs([]*flowlog.Log{mkLog(), mkLog()}, cfg)
	if len(runs) != 2 || len(runs[0]) != 3 {
		t.Fatalf("runs = %d x %d", len(runs), len(runs[0]))
	}
	a, err := Mine("from-logs", runs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(Detect(a, timedRun([]int{1, 2, 3}, 0))) == 0 {
		t.Error("automaton mined from logs should detect the sequence")
	}
}
