package taskmine

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
)

// mineReference is the pre-interning miner, retained verbatim as the
// equivalence oracle: every stage works over []Template directly with
// string pattern keys, serially. The interned pipeline must produce
// DeepEqual automata.
func mineReference(name string, runs [][]Template, cfg Config, opt MineOptions) (*Automaton, error) {
	cfg = cfg.withDefaults()
	cfg.Parallelism = 0 // the live miner zeroes it on the stored config
	if len(runs) == 0 {
		return nil, fmt.Errorf("taskmine: no runs for task %q", name)
	}

	common := commonFlowsReference(runs)
	if len(common) == 0 {
		return nil, fmt.Errorf("taskmine: task %q has no flows common to all runs", name)
	}

	filtered := make([][]Template, 0, len(runs))
	for _, run := range runs {
		var f []Template
		for _, t := range run {
			if common[t.String()] {
				f = append(f, t)
			}
		}
		if len(f) > 0 {
			filtered = append(filtered, f)
		}
	}
	if len(filtered) == 0 {
		return nil, fmt.Errorf("taskmine: task %q has no usable runs after filtering", name)
	}

	patterns := frequentPatterns(filtered, cfg.MinSupport)
	states := patterns
	if !opt.DisableClosedPruning {
		states = closedPrune(patterns)
	}
	states = ensureSinglesReference(states, patterns)

	a := &Automaton{
		Name:        name,
		States:      states,
		start:       make(map[int]bool),
		final:       make(map[int]bool),
		transitions: make(map[int]map[int]bool),
		cfg:         cfg,
	}
	for _, run := range filtered {
		chunks, err := segmentReference(a.States, run)
		if err != nil {
			return nil, fmt.Errorf("taskmine: segmenting run for %q: %w", name, err)
		}
		a.start[chunks[0]] = true
		a.final[chunks[len(chunks)-1]] = true
		for i := 0; i+1 < len(chunks); i++ {
			next, ok := a.transitions[chunks[i]]
			if !ok {
				next = make(map[int]bool)
				a.transitions[chunks[i]] = next
			}
			next[chunks[i+1]] = true
		}
	}
	return a, nil
}

func commonFlowsReference(runs [][]Template) map[string]bool {
	counts := make(map[string]int)
	for _, run := range runs {
		seen := make(map[string]bool)
		for _, t := range run {
			k := t.String()
			if !seen[k] {
				seen[k] = true
				counts[k]++
			}
		}
	}
	common := make(map[string]bool)
	for k, c := range counts {
		if c == len(runs) {
			common[k] = true
		}
	}
	return common
}

func ensureSinglesReference(states, all []Pattern) []Pattern {
	have := make(map[string]bool)
	for _, s := range states {
		if len(s.Seq) == 1 {
			have[s.key()] = true
		}
	}
	out := append([]Pattern(nil), states...)
	for _, p := range all {
		if len(p.Seq) == 1 && !have[p.key()] {
			p.fallback = true
			out = append(out, p)
			have[p.key()] = true
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].Seq) != len(out[j].Seq) {
			return len(out[i].Seq) > len(out[j].Seq)
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].key() < out[j].key()
	})
	return out
}

func segmentReference(states []Pattern, run []Template) ([]int, error) {
	var chunks []int
	pos := 0
	for pos < len(run) {
		matched := -1
		for si, st := range states {
			if pos+len(st.Seq) > len(run) {
				continue
			}
			ok := true
			for j, t := range st.Seq {
				if run[pos+j] != t {
					ok = false
					break
				}
			}
			if ok {
				matched = si
				break
			}
		}
		if matched < 0 {
			return nil, fmt.Errorf("no state matches at position %d (%v)", pos, run[pos])
		}
		chunks = append(chunks, matched)
		pos += len(states[matched].Seq)
	}
	if len(chunks) == 0 {
		return nil, fmt.Errorf("empty segmentation")
	}
	return chunks, nil
}

// randomRuns builds n noisy runs sharing a core sequence of k templates:
// each run keeps the core order but drops some non-core inserts and adds
// random repeats, so mining sees realistic support in (MinSupport, 1).
func randomRuns(rng *rand.Rand, n, k int) [][]Template {
	refTmpl := func(src, dst, sport, dport string) Template {
		return Template{Proto: 6, Src: src, Dst: dst, SrcPort: sport, DstPort: dport}
	}
	core := make([]Template, k)
	for i := range core {
		core[i] = refTmpl(fmt.Sprintf("10.0.%d.1", i), "10.0.0.200", "*", fmt.Sprintf("%d", 2000+i))
	}
	runs := make([][]Template, n)
	for r := range runs {
		var run []Template
		for _, t := range core {
			// Occasional noise flow unique to this run (filtered out by
			// common-flow extraction in most cases).
			if rng.Intn(4) == 0 {
				run = append(run, refTmpl(fmt.Sprintf("172.16.%d.%d", r, rng.Intn(5)), "10.0.0.200", "*", "99"))
			}
			run = append(run, t)
			// Occasional repeat of a core flow, breaking long patterns in
			// some runs but not others.
			if rng.Intn(5) == 0 {
				run = append(run, core[rng.Intn(k)])
			}
		}
		runs[r] = run
	}
	return runs
}

// TestMineMatchesReference pins the interned parallel miner against the
// retained naive miner on randomized workloads: DeepEqual automata,
// including state order, supports, and transition structure.
func TestMineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		runs := randomRuns(rng, 5+rng.Intn(10), 3+rng.Intn(8))
		for _, opt := range []MineOptions{{}, {DisableClosedPruning: true}} {
			want, wantErr := mineReference("t", runs, Config{}, opt)
			got, gotErr := MineWithOptions("t", runs, Config{}, opt)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("trial %d opt %+v: err mismatch: reference %v, mine %v", trial, opt, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d opt %+v: automaton mismatch\nreference: %+v\nmine:      %+v", trial, opt, want, got)
			}
		}
	}
}

// TestMineDeterministicAcrossWorkers pins byte-identical automata for
// workers 1/2/4/7. GOMAXPROCS is raised so the clamp doesn't collapse
// the widths to 1 on small CI hosts, and the race detector sees real
// concurrent mining.
func TestMineDeterministicAcrossWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	rng := rand.New(rand.NewSource(11))
	runs := randomRuns(rng, 12, 9)

	base, err := MineWithOptions("t", runs, Config{Parallelism: 1}, MineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 7} {
		got, err := MineWithOptions("t", runs, Config{Parallelism: w}, MineOptions{})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: automaton differs from workers=1", w)
		}
	}
}

// BenchmarkMineReference benchmarks the retained naive miner on the same
// workloads as BenchmarkMine, for an in-tree before/after comparison.
func BenchmarkMineReference(b *testing.B) {
	for _, sz := range []struct{ runs, k int }{{20, 12}, {50, 30}} {
		runs := trainRuns(sz.runs, sz.k, 1)
		b.Run(fmt.Sprintf("runs=%d/len=%d", sz.runs, sz.k), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mineReference("bench", runs, Config{}, MineOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
