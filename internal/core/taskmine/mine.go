package taskmine

import (
	"fmt"
	"sort"
	"strings"
)

// Pattern is a contiguous sequence of templates mined from the runs,
// together with its support (fraction of runs containing it).
type Pattern struct {
	Seq     []Template
	Support float64
	// fallback marks a length-1 pattern kept only so segmentation always
	// succeeds (it was closed-pruned but may be needed at run edges).
	fallback bool
}

func (p Pattern) key() string {
	var sb strings.Builder
	for _, t := range p.Seq {
		sb.WriteString(t.String())
	}
	return sb.String()
}

// Automaton is a task signature: states are mined patterns; transitions
// record which state may follow which, as observed when segmenting the
// training runs; matching a path from a start state through transitions
// to the end of a final state constitutes a task detection.
type Automaton struct {
	Name   string
	States []Pattern

	start       map[int]bool
	final       map[int]bool
	transitions map[int]map[int]bool
	cfg         Config
}

// Config returns the configuration the automaton was mined with.
func (a *Automaton) Config() Config { return a.cfg }

// NumStates returns the state count (for the closed-pruning ablation).
func (a *Automaton) NumStates() int { return len(a.States) }

// StartStates returns the indices of start states (sorted).
func (a *Automaton) StartStates() []int { return sortedKeys(a.start) }

// FinalStates returns the indices of final states (sorted).
func (a *Automaton) FinalStates() []int { return sortedKeys(a.final) }

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// MineOptions toggles algorithm variants for ablation studies.
type MineOptions struct {
	// DisableClosedPruning keeps all frequent patterns as states instead
	// of only closed ones.
	DisableClosedPruning bool
}

// Mine learns a task automaton from n runs of the same task.
func Mine(name string, runs [][]Template, cfg Config) (*Automaton, error) {
	return MineWithOptions(name, runs, cfg, MineOptions{})
}

// MineWithOptions is Mine with explicit algorithm variants.
func MineWithOptions(name string, runs [][]Template, cfg Config, opt MineOptions) (*Automaton, error) {
	cfg = cfg.withDefaults()
	if len(runs) == 0 {
		return nil, fmt.Errorf("taskmine: no runs for task %q", name)
	}

	// (1) Common flows: templates present in every run (S(T) of §III-D).
	common := commonFlows(runs)
	if len(common) == 0 {
		return nil, fmt.Errorf("taskmine: task %q has no flows common to all runs", name)
	}

	// (2) Filter runs down to common flows (T'_i).
	filtered := make([][]Template, 0, len(runs))
	for _, run := range runs {
		var f []Template
		for _, t := range run {
			if common[t.String()] {
				f = append(f, t)
			}
		}
		if len(f) > 0 {
			filtered = append(filtered, f)
		}
	}
	if len(filtered) == 0 {
		return nil, fmt.Errorf("taskmine: task %q has no usable runs after filtering", name)
	}

	// (3) Frequent contiguous patterns with apriori extension and closed
	// pruning.
	patterns := frequentPatterns(filtered, cfg.MinSupport)
	states := patterns
	if !opt.DisableClosedPruning {
		states = closedPrune(patterns)
	}
	// Keep every length-1 pattern available as a fallback so greedy
	// segmentation is total; pruned singles are only used when no longer
	// state fits.
	states = ensureSingles(states, patterns)

	a := &Automaton{
		Name:        name,
		States:      states,
		start:       make(map[int]bool),
		final:       make(map[int]bool),
		transitions: make(map[int]map[int]bool),
		cfg:         cfg,
	}
	// (4) Segment every run with the state inventory and record the
	// transition structure.
	for _, run := range filtered {
		chunks, err := a.segment(run)
		if err != nil {
			return nil, fmt.Errorf("taskmine: segmenting run for %q: %w", name, err)
		}
		a.start[chunks[0]] = true
		a.final[chunks[len(chunks)-1]] = true
		for i := 0; i+1 < len(chunks); i++ {
			next, ok := a.transitions[chunks[i]]
			if !ok {
				next = make(map[int]bool)
				a.transitions[chunks[i]] = next
			}
			next[chunks[i+1]] = true
		}
	}
	return a, nil
}

func commonFlows(runs [][]Template) map[string]bool {
	counts := make(map[string]int)
	for _, run := range runs {
		seen := make(map[string]bool)
		for _, t := range run {
			k := t.String()
			if !seen[k] {
				seen[k] = true
				counts[k]++
			}
		}
	}
	common := make(map[string]bool)
	for k, c := range counts {
		if c == len(runs) {
			common[k] = true
		}
	}
	return common
}

// frequentPatterns mines contiguous sub-sequences whose support (fraction
// of runs containing them) is at least minSup, growing length-wise with
// apriori pruning (a pattern can only be frequent if its length-(L-1)
// prefix and suffix are).
func frequentPatterns(runs [][]Template, minSup float64) []Pattern {
	n := float64(len(runs))
	var out []Pattern

	freqAt := make(map[string]bool) // keys of frequent patterns at current length
	for length := 1; ; length++ {
		counts := make(map[string]int)
		seqs := make(map[string][]Template)
		for _, run := range runs {
			seen := make(map[string]bool)
			for i := 0; i+length <= len(run); i++ {
				sub := run[i : i+length]
				if length > 1 {
					// Apriori: prefix and suffix must be frequent at L-1.
					if !freqAt[patternKey(sub[:length-1])] || !freqAt[patternKey(sub[1:])] {
						continue
					}
				}
				k := patternKey(sub)
				if !seen[k] {
					seen[k] = true
					counts[k]++
					if _, ok := seqs[k]; !ok {
						seqs[k] = append([]Template(nil), sub...)
					}
				}
			}
		}
		next := make(map[string]bool)
		found := false
		// Emit frequent patterns in key order: counts is a map, and the
		// mined pattern list is user-visible output that must not inherit
		// Go's randomized iteration order.
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sup := float64(counts[k]) / n
			if sup+1e-12 >= minSup {
				out = append(out, Pattern{Seq: seqs[k], Support: sup})
				next[k] = true
				found = true
			}
		}
		if !found {
			break
		}
		freqAt = next
	}
	return out
}

func patternKey(seq []Template) string {
	var sb strings.Builder
	for _, t := range seq {
		sb.WriteString(t.String())
	}
	return sb.String()
}

// closedPrune removes patterns that are contiguous sub-sequences of a
// longer pattern with the same support (§III-D: closed frequent
// patterns).
func closedPrune(patterns []Pattern) []Pattern {
	var out []Pattern
	for _, p := range patterns {
		pruned := false
		for _, q := range patterns {
			if len(q.Seq) <= len(p.Seq) {
				continue
			}
			if q.Support == p.Support && containsSub(q.Seq, p.Seq) {
				pruned = true
				break
			}
		}
		if !pruned {
			out = append(out, p)
		}
	}
	return out
}

func containsSub(hay, needle []Template) bool {
	if len(needle) == 0 {
		return true
	}
outer:
	for i := 0; i+len(needle) <= len(hay); i++ {
		for j := range needle {
			if hay[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

// ensureSingles re-adds pruned length-1 patterns as fallback states.
func ensureSingles(states, all []Pattern) []Pattern {
	have := make(map[string]bool)
	for _, s := range states {
		if len(s.Seq) == 1 {
			have[s.key()] = true
		}
	}
	out := append([]Pattern(nil), states...)
	for _, p := range all {
		if len(p.Seq) == 1 && !have[p.key()] {
			p.fallback = true
			out = append(out, p)
			have[p.key()] = true
		}
	}
	// Deterministic state order: longer first, then higher support, then
	// key; segmentation and matching iterate in this order.
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].Seq) != len(out[j].Seq) {
			return len(out[i].Seq) > len(out[j].Seq)
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].key() < out[j].key()
	})
	return out
}

// segment greedily covers a run with states: longest state first, ties by
// support (the two rules of §III-D step 3).
func (a *Automaton) segment(run []Template) ([]int, error) {
	var chunks []int
	pos := 0
	for pos < len(run) {
		matched := -1
		for si, st := range a.States {
			if pos+len(st.Seq) > len(run) {
				continue
			}
			ok := true
			for j, t := range st.Seq {
				if run[pos+j] != t {
					ok = false
					break
				}
			}
			if ok {
				matched = si
				break // states are sorted longest/most-frequent first
			}
		}
		if matched < 0 {
			return nil, fmt.Errorf("no state matches at position %d (%v)", pos, run[pos])
		}
		chunks = append(chunks, matched)
		pos += len(a.States[matched].Seq)
	}
	if len(chunks) == 0 {
		return nil, fmt.Errorf("empty segmentation")
	}
	return chunks, nil
}
