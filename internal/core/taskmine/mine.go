package taskmine

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"flowdiff/internal/obs"
	"flowdiff/internal/parallel"
)

// Pattern is a contiguous sequence of templates mined from the runs,
// together with its support (fraction of runs containing it).
type Pattern struct {
	Seq     []Template
	Support float64
	// fallback marks a length-1 pattern kept only so segmentation always
	// succeeds (it was closed-pruned but may be needed at run edges).
	fallback bool
}

func (p Pattern) key() string {
	var sb strings.Builder
	for _, t := range p.Seq {
		sb.WriteString(t.String())
	}
	return sb.String()
}

// idPattern is a mined pattern over interned template IDs — the internal
// working form; Seq materializes back to templates only once, when the
// automaton's final state inventory is assembled.
type idPattern struct {
	seq      []int32
	support  float64
	fallback bool
}

// Automaton is a task signature: states are mined patterns; transitions
// record which state may follow which, as observed when segmenting the
// training runs; matching a path from a start state through transitions
// to the end of a final state constitutes a task detection.
type Automaton struct {
	Name   string
	States []Pattern

	start       map[int]bool
	final       map[int]bool
	transitions map[int]map[int]bool
	cfg         Config
}

// Config returns the configuration the automaton was mined with.
func (a *Automaton) Config() Config { return a.cfg }

// NumStates returns the state count (for the closed-pruning ablation).
func (a *Automaton) NumStates() int { return len(a.States) }

// StartStates returns the indices of start states (sorted).
func (a *Automaton) StartStates() []int { return sortedKeys(a.start) }

// FinalStates returns the indices of final states (sorted).
func (a *Automaton) FinalStates() []int { return sortedKeys(a.final) }

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// MineOptions toggles algorithm variants for ablation studies.
type MineOptions struct {
	// DisableClosedPruning keeps all frequent patterns as states instead
	// of only closed ones.
	DisableClosedPruning bool
}

// Mine learns a task automaton from n runs of the same task.
func Mine(name string, runs [][]Template, cfg Config) (*Automaton, error) {
	return MineWithOptionsContext(context.Background(), name, runs, cfg, MineOptions{})
}

// MineContext is Mine with cancellation and instrumentation: mining
// stops between phases (and between fan-out dispatches) once ctx is
// canceled, returning ctx.Err(); phase timings land in the context's
// obs registry as span.taskmine.* histograms.
func MineContext(ctx context.Context, name string, runs [][]Template, cfg Config) (*Automaton, error) {
	return MineWithOptionsContext(ctx, name, runs, cfg, MineOptions{})
}

// MineWithOptions is Mine with explicit algorithm variants.
func MineWithOptions(name string, runs [][]Template, cfg Config, opt MineOptions) (*Automaton, error) {
	return MineWithOptionsContext(context.Background(), name, runs, cfg, opt)
}

// MineWithOptionsContext is the full mining entry point.
//
// Every mining stage runs over interned template IDs (TemplateSet), and
// the per-run work — support counting, candidate extension, closed
// pruning, segmentation — fans out across Config.Parallelism workers
// (clamped to the CPU count; the knob obeys the same parallel.Clamp
// contract as flowdiff.Options.Parallelism). Worker results merge in
// sorted candidate order, so the mined automaton is byte-identical for
// every worker count.
func MineWithOptionsContext(ctx context.Context, name string, runs [][]Template, cfg Config, opt MineOptions) (*Automaton, error) {
	cfg = cfg.withDefaults()
	if len(runs) == 0 {
		return nil, fmt.Errorf("taskmine: no runs for task %q", name)
	}
	workers := parallel.Clamp(cfg.Parallelism)
	reg := obs.From(ctx)
	reg.Counter("taskmine.runs").Add(int64(len(runs)))

	// Intern serially, before any fan-out: IDs are assigned by first
	// appearance, so the mapping is a pure function of the input order.
	spIntern := reg.Span("taskmine.intern")
	set := NewTemplateSet()
	idRuns := make([][]int32, len(runs))
	for i, run := range runs {
		idRuns[i] = set.InternRun(run)
	}
	spIntern.End()

	// (1) Common flows: templates present in every run (S(T) of §III-D).
	common := commonIDs(idRuns, set.Len())
	anyCommon := false
	for _, c := range common {
		if c {
			anyCommon = true
			break
		}
	}
	if !anyCommon {
		return nil, fmt.Errorf("taskmine: task %q has no flows common to all runs", name)
	}

	// (2) Filter runs down to common flows (T'_i).
	filtered := make([][]int32, 0, len(idRuns))
	for _, run := range idRuns {
		var f []int32
		for _, id := range run {
			if common[id] {
				f = append(f, id)
			}
		}
		if len(f) > 0 {
			filtered = append(filtered, f)
		}
	}
	if len(filtered) == 0 {
		return nil, fmt.Errorf("taskmine: task %q has no usable runs after filtering", name)
	}

	// (3) Frequent contiguous patterns with apriori extension and closed
	// pruning.
	spFrequent := reg.Span("taskmine.frequent")
	patterns := frequentIDPatterns(ctx, filtered, cfg.MinSupport, set.Len(), workers)
	spFrequent.End()
	reg.Counter("taskmine.patterns").Add(int64(len(patterns)))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	states := patterns
	if !opt.DisableClosedPruning {
		spPrune := reg.Span("taskmine.prune")
		states = closedPruneIDs(ctx, patterns, workers)
		spPrune.End()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Keep every length-1 pattern available as a fallback so greedy
	// segmentation is total; pruned singles are only used when no longer
	// state fits.
	states = ensureSinglesIDs(states, patterns)

	// Materialize the state inventory and fix its order: longer first,
	// then higher support, then key. The key is unique per distinct
	// sequence (template renderings are bracketed, so concatenation is
	// uniquely decodable), making this a total order — state order cannot
	// depend on mining order or worker count.
	finals := make([]Pattern, len(states))
	stateSeqs := make([][]int32, len(states))
	keys := make([]string, len(states))
	for i, st := range states {
		seq := make([]Template, len(st.seq))
		for j, id := range st.seq {
			seq[j] = set.Template(id)
		}
		finals[i] = Pattern{Seq: seq, Support: st.support, fallback: st.fallback}
		stateSeqs[i] = st.seq
		keys[i] = finals[i].key()
	}
	sort.Sort(&stateSorter{pats: finals, seqs: stateSeqs, keys: keys})

	// The stored config describes the mined automaton, not the mining
	// run: Parallelism is zeroed so automata mined at different widths
	// compare equal.
	acfg := cfg
	acfg.Parallelism = 0
	a := &Automaton{
		Name:        name,
		States:      finals,
		start:       make(map[int]bool),
		final:       make(map[int]bool),
		transitions: make(map[int]map[int]bool),
		cfg:         acfg,
	}

	// (4) Segment every run with the state inventory and record the
	// transition structure. Runs segment independently (fan-out); the
	// transition sets merge in run order, and set union commutes, so the
	// automaton is identical at any width.
	chunksPerRun := make([][]int, len(filtered))
	errPerRun := make([]error, len(filtered))
	spSegment := reg.Span("taskmine.segment")
	if err := parallel.ForContext(ctx, len(filtered), workers, func(r int) {
		chunksPerRun[r], errPerRun[r] = segmentIDs(stateSeqs, filtered[r], set)
	}); err != nil {
		return nil, err
	}
	spSegment.End()
	reg.Counter("taskmine.states").Add(int64(len(finals)))
	for r, err := range errPerRun {
		if err != nil {
			return nil, fmt.Errorf("taskmine: segmenting run for %q: %w", name, err)
		}
		chunks := chunksPerRun[r]
		a.start[chunks[0]] = true
		a.final[chunks[len(chunks)-1]] = true
		for i := 0; i+1 < len(chunks); i++ {
			next, ok := a.transitions[chunks[i]]
			if !ok {
				next = make(map[int]bool)
				a.transitions[chunks[i]] = next
			}
			next[chunks[i+1]] = true
		}
	}
	return a, nil
}

// stateSorter orders the materialized states (and their parallel ID
// sequences) longest first, then by support, then by key — the order
// segmentation and matching iterate in.
type stateSorter struct {
	pats []Pattern
	seqs [][]int32
	keys []string
}

func (s *stateSorter) Len() int { return len(s.pats) }
func (s *stateSorter) Less(i, j int) bool {
	if len(s.pats[i].Seq) != len(s.pats[j].Seq) {
		return len(s.pats[i].Seq) > len(s.pats[j].Seq)
	}
	if s.pats[i].Support != s.pats[j].Support {
		return s.pats[i].Support > s.pats[j].Support
	}
	return s.keys[i] < s.keys[j]
}
func (s *stateSorter) Swap(i, j int) {
	s.pats[i], s.pats[j] = s.pats[j], s.pats[i]
	s.seqs[i], s.seqs[j] = s.seqs[j], s.seqs[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// commonIDs reports, per interned template ID, whether the template
// appears in every run — array counters instead of string-keyed maps.
func commonIDs(runs [][]int32, numTemplates int) []bool {
	counts := make([]int32, numTemplates)
	seenIn := make([]int32, numTemplates)
	for i := range seenIn {
		seenIn[i] = -1
	}
	for r, run := range runs {
		for _, id := range run {
			if seenIn[id] != int32(r) {
				seenIn[id] = int32(r)
				counts[id]++
			}
		}
	}
	common := make([]bool, numTemplates)
	for id, c := range counts {
		common[id] = int(c) == len(runs)
	}
	return common
}

// candCounter is one worker's support-counting state for a single
// pattern length: candidates discovered in its run chunk, keyed by the
// packed (prefix pattern ID, last template ID) identity, with per-run
// stamps so a run supports a candidate at most once.
type candCounter struct {
	idx     map[int64]int32
	counts  []int32
	lastRun []int32
}

func newCandCounter() *candCounter {
	return &candCounter{idx: make(map[int64]int32)}
}

func (c *candCounter) observe(key int64, run int32) {
	li, ok := c.idx[key]
	if !ok {
		li = int32(len(c.counts))
		c.idx[key] = li
		c.counts = append(c.counts, 0)
		c.lastRun = append(c.lastRun, -1)
	}
	if c.lastRun[li] != run {
		c.lastRun[li] = run
		c.counts[li]++
	}
}

// frequentIDPatterns mines contiguous sub-sequences whose support
// (fraction of runs containing them) is at least minSup, growing
// length-wise with apriori pruning (a pattern can only be frequent if
// its length-(L-1) prefix and suffix are).
//
// Candidates are identified positionally: pos[r][i] holds the dense ID
// of the frequent length-(L-1) pattern starting at position i of run r
// (or -1), so the apriori check is two array reads and a length-L
// candidate is the packed pair (prefix pattern ID, last template ID) —
// no per-window key strings. Support counting fans runs out across
// workers; counts merge additively and candidates are emitted in sorted
// packed-key order, so the result is identical at any worker count.
func frequentIDPatterns(ctx context.Context, runs [][]int32, minSup float64, numTemplates int, workers int) []idPattern {
	n := float64(len(runs))
	var out []idPattern

	// Length 1: candidates are the template IDs themselves.
	counts := make([]int32, numTemplates)
	seenIn := make([]int32, numTemplates)
	for i := range seenIn {
		seenIn[i] = -1
	}
	for r, run := range runs {
		for _, id := range run {
			if seenIn[id] != int32(r) {
				seenIn[id] = int32(r)
				counts[id]++
			}
		}
	}
	patID := make([]int32, numTemplates) // template ID -> dense L1 pattern ID
	for i := range patID {
		patID[i] = -1
	}
	prevSeqs := make([][]int32, 0, numTemplates)
	for id := int32(0); id < int32(numTemplates); id++ {
		if sup := float64(counts[id]) / n; sup+1e-12 >= minSup {
			patID[id] = int32(len(prevSeqs))
			prevSeqs = append(prevSeqs, []int32{id})
			out = append(out, idPattern{seq: []int32{id}, support: sup})
		}
	}
	if len(prevSeqs) == 0 {
		return out
	}

	// pos[r][i] = dense frequent-pattern ID of the current-length window
	// starting at i, or -1.
	pos := make([][]int32, len(runs))
	for r, run := range runs {
		p := make([]int32, len(run))
		for i, id := range run {
			p[i] = patID[id]
		}
		pos[r] = p
	}

	for length := 2; ; length++ {
		// Chunk the runs across workers; each worker counts its chunk's
		// candidates locally.
		if workers > len(runs) {
			workers = len(runs)
		}
		locals := make([]*candCounter, workers)
		// A canceled fan-out leaves nil locals; the loop below tolerates
		// them and MineWithOptionsContext surfaces ctx.Err() right after.
		_ = parallel.ForContext(ctx, workers, workers, func(w int) {
			cc := newCandCounter()
			lo, hi := len(runs)*w/workers, len(runs)*(w+1)/workers
			for r := lo; r < hi; r++ {
				run, p := runs[r], pos[r]
				for i := 0; i+length <= len(run); i++ {
					// Apriori: prefix and suffix must be frequent at L-1.
					if p[i] < 0 || p[i+1] < 0 {
						continue
					}
					cc.observe(packCand(p[i], run[i+length-1]), int32(r))
				}
			}
			locals[w] = cc
		})

		if ctx.Err() != nil {
			return out
		}

		// Deterministic merge: counts are additive, so worker order does
		// not matter; candidates are then emitted in sorted key order.
		total := make(map[int64]int32)
		for _, cc := range locals {
			for key, li := range cc.idx {
				total[key] += cc.counts[li]
			}
		}
		cands := make([]int64, 0, len(total))
		for key := range total {
			cands = append(cands, key)
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })

		freqID := make(map[int64]int32, len(cands))
		nextSeqs := make([][]int32, 0, len(cands))
		for _, key := range cands {
			sup := float64(total[key]) / n
			if sup+1e-12 < minSup {
				continue
			}
			prefix, last := int32(key>>32), int32(uint32(key))
			seq := make([]int32, length)
			copy(seq, prevSeqs[prefix])
			seq[length-1] = last
			freqID[key] = int32(len(nextSeqs))
			nextSeqs = append(nextSeqs, seq)
			out = append(out, idPattern{seq: seq, support: sup})
		}
		if len(nextSeqs) == 0 {
			break
		}

		// Re-stamp the positions with the new length's pattern IDs. On
		// cancellation the partial stamps are never read: the caller
		// returns ctx.Err() before the next growth round matters.
		_ = parallel.ForContext(ctx, len(runs), workers, func(r int) {
			run, p := runs[r], pos[r]
			for i := 0; i+length <= len(run); i++ {
				id := int32(-1)
				if p[i] >= 0 && p[i+1] >= 0 {
					if fi, ok := freqID[packCand(p[i], run[i+length-1])]; ok {
						id = fi
					}
				}
				p[i] = id
			}
			// Positions with no length-L window left have no pattern.
			for i := len(run) - length + 1; i < len(run); i++ {
				if i >= 0 {
					p[i] = -1
				}
			}
		})
		prevSeqs = nextSeqs
	}
	return out
}

// closedPruneIDs removes patterns that are contiguous sub-sequences of a
// longer pattern with the same support (§III-D: closed frequent
// patterns). Each pattern's verdict is independent, so they fan out.
func closedPruneIDs(ctx context.Context, patterns []idPattern, workers int) []idPattern {
	pruned := make([]bool, len(patterns))
	// Partial verdicts after cancellation are fine: the caller checks
	// ctx.Err() immediately and discards the result.
	_ = parallel.ForContext(ctx, len(patterns), workers, func(i int) {
		p := patterns[i]
		for _, q := range patterns {
			if len(q.seq) <= len(p.seq) {
				continue
			}
			if q.support == p.support && containsSubIDs(q.seq, p.seq) {
				pruned[i] = true
				return
			}
		}
	})
	out := make([]idPattern, 0, len(patterns))
	for i, p := range patterns {
		if !pruned[i] {
			out = append(out, p)
		}
	}
	return out
}

func containsSubIDs(hay, needle []int32) bool {
	if len(needle) == 0 {
		return true
	}
outer:
	for i := 0; i+len(needle) <= len(hay); i++ {
		for j := range needle {
			if hay[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

// ensureSinglesIDs re-adds pruned length-1 patterns as fallback states.
func ensureSinglesIDs(states, all []idPattern) []idPattern {
	have := make(map[int32]bool)
	for _, s := range states {
		if len(s.seq) == 1 {
			have[s.seq[0]] = true
		}
	}
	out := append([]idPattern(nil), states...)
	for _, p := range all {
		if len(p.seq) == 1 && !have[p.seq[0]] {
			p.fallback = true
			out = append(out, p)
			have[p.seq[0]] = true
		}
	}
	return out
}

// segmentIDs greedily covers a run with states: longest state first,
// ties by support (the two rules of §III-D step 3). States are already
// in that order.
func segmentIDs(states [][]int32, run []int32, set *TemplateSet) ([]int, error) {
	var chunks []int
	pos := 0
	for pos < len(run) {
		matched := -1
		for si, st := range states {
			if pos+len(st) > len(run) {
				continue
			}
			ok := true
			for j, id := range st {
				if run[pos+j] != id {
					ok = false
					break
				}
			}
			if ok {
				matched = si
				break // states are sorted longest/most-frequent first
			}
		}
		if matched < 0 {
			return nil, fmt.Errorf("no state matches at position %d (%v)", pos, set.Template(run[pos]))
		}
		chunks = append(chunks, matched)
		pos += len(states[matched])
	}
	if len(chunks) == 0 {
		return nil, fmt.Errorf("empty segmentation")
	}
	return chunks, nil
}

// --- naive []Template mining stages ----------------------------------
//
// The string-keyed forms below are retained for the paper-example tests
// (which drive the stages directly on template sequences) and as the
// reference the interned pipeline is pinned against; Mine itself runs
// entirely over interned IDs.

// frequentPatterns mines contiguous sub-sequences whose support is at
// least minSup over template sequences directly.
func frequentPatterns(runs [][]Template, minSup float64) []Pattern {
	n := float64(len(runs))
	var out []Pattern

	freqAt := make(map[string]bool) // keys of frequent patterns at current length
	for length := 1; ; length++ {
		counts := make(map[string]int)
		seqs := make(map[string][]Template)
		for _, run := range runs {
			seen := make(map[string]bool)
			for i := 0; i+length <= len(run); i++ {
				sub := run[i : i+length]
				if length > 1 {
					// Apriori: prefix and suffix must be frequent at L-1.
					if !freqAt[patternKey(sub[:length-1])] || !freqAt[patternKey(sub[1:])] {
						continue
					}
				}
				k := patternKey(sub)
				if !seen[k] {
					seen[k] = true
					counts[k]++
					if _, ok := seqs[k]; !ok {
						seqs[k] = append([]Template(nil), sub...)
					}
				}
			}
		}
		next := make(map[string]bool)
		found := false
		// Emit frequent patterns in key order: counts is a map, and the
		// mined pattern list is user-visible output that must not inherit
		// Go's randomized iteration order.
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sup := float64(counts[k]) / n
			if sup+1e-12 >= minSup {
				out = append(out, Pattern{Seq: seqs[k], Support: sup})
				next[k] = true
				found = true
			}
		}
		if !found {
			break
		}
		freqAt = next
	}
	return out
}

func patternKey(seq []Template) string {
	var sb strings.Builder
	for _, t := range seq {
		sb.WriteString(t.String())
	}
	return sb.String()
}

// closedPrune removes patterns that are contiguous sub-sequences of a
// longer pattern with the same support.
func closedPrune(patterns []Pattern) []Pattern {
	var out []Pattern
	for _, p := range patterns {
		pruned := false
		for _, q := range patterns {
			if len(q.Seq) <= len(p.Seq) {
				continue
			}
			if q.Support == p.Support && containsSub(q.Seq, p.Seq) {
				pruned = true
				break
			}
		}
		if !pruned {
			out = append(out, p)
		}
	}
	return out
}

func containsSub(hay, needle []Template) bool {
	if len(needle) == 0 {
		return true
	}
outer:
	for i := 0; i+len(needle) <= len(hay); i++ {
		for j := range needle {
			if hay[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}
