// Package lint is a minimal, stdlib-only static-analysis framework in
// the shape of golang.org/x/tools/go/analysis: an Analyzer owns a Run
// function over a typed Pass, diagnostics are reported through the pass,
// and `//lint:ignore <analyzers> <reason>` directives suppress findings
// for the statement that follows them.
//
// FlowDiff uses it to machine-check the determinism and concurrency
// invariants the parallel signature pipeline rests on (byte-identical
// output at any worker count, virtual-time-only simulation, epsilon-based
// float comparison); the concrete analyzers live in internal/lint/checks
// and the CLI driver in cmd/flowdifflint.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant it guards.
	Doc string
	// SkipTestFiles drops diagnostics located in _test.go files. Checks
	// whose violations are idiomatic in tests (exact expected-value float
	// comparisons, deliberately discarded errors) set this.
	SkipTestFiles bool
	// NeedsFacts: the analyzer consumes the module-wide fact store
	// (function summaries + call graph). The driver builds the store
	// once per run, before any analyzer executes, and hands it to every
	// pass via Pass.Facts/Pass.Graph.
	NeedsFacts bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts and Graph are non-nil when the analyzer sets NeedsFacts:
	// the summaries of every loaded package and the resolved call graph
	// over them.
	Facts *Facts
	Graph *Graph

	report func(Diagnostic)
}

// Report records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil when the expression did not
// type-check (analyzers must stay useful on broken packages).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (nil when unresolved).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// An AnalyzerTiming is one analyzer's cumulative wall time across every
// package in a run. The pseudo-entry "(facts)" reports the one-time
// summary + call-graph build shared by every facts-consuming analyzer.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// Run applies every analyzer to every package, filters the findings
// through the packages' ignore directives, and returns them sorted by
// position. Type errors recorded by the loader are surfaced as
// diagnostics of the pseudo-analyzer "typecheck" so a broken package
// fails the lint run visibly instead of being half-analyzed in silence.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunModule(pkgs, analyzers)
	return diags
}

// RunModule is Run plus per-analyzer wall-time accounting, and is the
// entry point that builds the interprocedural fact store when any
// analyzer asks for it.
func RunModule(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerTiming) {
	var (
		facts *Facts
		graph *Graph
	)
	elapsed := make(map[string]time.Duration)
	var order []string
	for _, a := range analyzers {
		if a.NeedsFacts && facts == nil {
			start := time.Now()
			facts = BuildFacts(pkgs)
			graph = NewGraph(facts)
			elapsed["(facts)"] = time.Since(start)
			order = append(order, "(facts)")
		}
		if _, ok := elapsed[a.Name]; !ok {
			elapsed[a.Name] = 0
			order = append(order, a.Name)
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg.Fset, pkg.Files)
		for _, te := range pkg.TypeErrors {
			d := Diagnostic{Analyzer: "typecheck", Message: te.Error()}
			if terr, ok := te.(types.Error); ok {
				d.Pos = terr.Pos
				d.Position = terr.Fset.Position(terr.Pos)
				d.Message = terr.Msg
			}
			diags = append(diags, d)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts,
				Graph:     graph,
			}
			pass.report = func(d Diagnostic) {
				if a.SkipTestFiles && strings.HasSuffix(d.Position.Filename, "_test.go") {
					return
				}
				if ignores.suppresses(d) {
					return
				}
				diags = append(diags, d)
			}
			start := time.Now()
			a.Run(pass)
			elapsed[a.Name] += time.Since(start)
		}
		diags = append(diags, ignores.malformed...)
	}
	timings := make([]AnalyzerTiming, 0, len(order))
	for _, name := range order {
		timings = append(timings, AnalyzerTiming{Name: name, Elapsed: elapsed[name]})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, timings
}

// Select returns the analyzers that survive the enable/disable flags:
// only restricts to a comma-separated allowlist (empty means all), then
// disable removes a comma-separated denylist. Unknown names error so a
// typo in CI cannot silently skip a check.
func Select(all []*Analyzer, only, disable string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(list string) (map[string]bool, error) {
		set := make(map[string]bool)
		if list == "" {
			return set, nil
		}
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("lint: unknown analyzer %q", name)
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse(only)
	if err != nil {
		return nil, err
	}
	disSet, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range all {
		if len(onlySet) > 0 && !onlySet[a.Name] {
			continue
		}
		if disSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}
