package lint_test

import (
	"go/ast"
	"strings"
	"testing"

	"flowdiff/internal/lint"
)

// noprint is a toy analyzer for framework tests: it flags every call to
// fmt.Println, which makes suppression behavior trivial to pin down.
var noprint = &lint.Analyzer{
	Name: "noprint",
	Doc:  "test-only: flags fmt.Println",
	Run: func(pass *lint.Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" && sel.Sel.Name == "Println" {
					pass.Reportf(sel.Pos(), "fmt.Println called")
				}
				return true
			})
		}
	},
}

func loadTestdata(t *testing.T, dir string) *lint.Package {
	t.Helper()
	loader := lint.NewLoader()
	pkg, err := loader.LoadDir(dir, "flowdiff/internal/example/"+dir)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// lineOf maps each diagnostic to its source line for position-based
// assertions.
func linesOf(diags []lint.Diagnostic, analyzer string) map[int]bool {
	out := make(map[int]bool)
	for _, d := range diags {
		if d.Analyzer == analyzer {
			out[d.Position.Line] = true
		}
	}
	return out
}

func TestIgnoreScopedToNextStatementOnly(t *testing.T) {
	pkg := loadTestdata(t, "testdata/src/ignorescope")
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("testdata must type-check: %v", pkg.TypeErrors[0])
	}
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{noprint})

	lines := linesOf(diags, "noprint")
	// Suppressed: the statement directly below a directive (line 9),
	// the inline-annotated line (14), and the multi-line statement below
	// its directive (20, diagnostic inside the if body).
	for _, suppressed := range []int{9, 20} {
		if lines[suppressed] {
			t.Errorf("line %d: diagnostic survived a directive that covers it", suppressed)
		}
	}
	if lines[14] {
		t.Error("line 14: inline directive did not suppress its own line")
	}
	// Reported: the second statement after a directive (10), the first
	// statement after a multi-line suppressed one (22), a directive
	// detached by a blank line (28), and a non-matching analyzer name (33).
	for _, reported := range []int{10, 22, 28, 33} {
		if !lines[reported] {
			t.Errorf("line %d: expected a diagnostic (suppression must cover the next statement only)", reported)
		}
	}
	// The reason-less directive is itself malformed AND suppresses
	// nothing: line 38 stays reported and a lintdirective diagnostic
	// appears.
	if !lines[38] {
		t.Error("line 38: a directive without a reason must not suppress")
	}
	foundMalformed := false
	for _, d := range diags {
		if d.Analyzer == "lintdirective" && strings.Contains(d.Message, "malformed") {
			foundMalformed = true
		}
	}
	if !foundMalformed {
		t.Error("expected a lintdirective diagnostic for the reason-less ignore")
	}
}

func TestCollectDirectives(t *testing.T) {
	pkg := loadTestdata(t, "testdata/src/ignorescope")
	dirs := lint.CollectDirectives([]*lint.Package{pkg})
	if len(dirs) != 6 {
		t.Fatalf("CollectDirectives: got %d directives, want 6", len(dirs))
	}
	byLine := make(map[int]lint.Directive)
	for _, d := range dirs {
		byLine[d.Line] = d
	}
	if d := byLine[8]; d.Inline || d.Malformed || len(d.Analyzers) != 1 || d.Analyzers[0] != "noprint" ||
		!strings.Contains(d.Reason, "only the next statement") {
		t.Errorf("line 8 directive parsed wrong: %+v", d)
	}
	if d := byLine[14]; !d.Inline {
		t.Errorf("line 14 directive should be inline: %+v", d)
	}
	if d := byLine[32]; len(d.Analyzers) != 1 || d.Analyzers[0] != "someothercheck" {
		t.Errorf("line 32 directive should surface the unknown name verbatim: %+v", d)
	}
	if d := byLine[37]; !d.Malformed {
		t.Errorf("line 37 reason-less directive should be malformed: %+v", d)
	}
	for i := 1; i < len(dirs); i++ {
		if dirs[i-1].Line > dirs[i].Line {
			t.Fatal("directives must come back sorted by line")
		}
	}
}

func TestLoaderSurvivesTypeError(t *testing.T) {
	pkg := loadTestdata(t, "testdata/src/typeerror")
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("expected type errors from the broken package")
	}
	// Running analyzers over the broken package must not panic, must
	// surface the type error as a "typecheck" diagnostic, and must still
	// deliver analyzer findings from the parts that type-check.
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{noprint})
	var sawTypecheck, sawNoprint bool
	for _, d := range diags {
		switch d.Analyzer {
		case "typecheck":
			sawTypecheck = true
		case "noprint":
			sawNoprint = true
		}
	}
	if !sawTypecheck {
		t.Error("type error was not surfaced as a typecheck diagnostic")
	}
	if !sawNoprint {
		t.Error("analyzers did not run over the partially checked package")
	}
}

func TestSelect(t *testing.T) {
	a := &lint.Analyzer{Name: "a"}
	b := &lint.Analyzer{Name: "b"}
	all := []*lint.Analyzer{a, b}

	got, err := lint.Select(all, "", "")
	if err != nil || len(got) != 2 {
		t.Fatalf("Select(all) = %v, %v", got, err)
	}
	got, err = lint.Select(all, "a", "")
	if err != nil || len(got) != 1 || got[0] != a {
		t.Fatalf("Select(only=a) = %v, %v", got, err)
	}
	got, err = lint.Select(all, "", "a")
	if err != nil || len(got) != 1 || got[0] != b {
		t.Fatalf("Select(disable=a) = %v, %v", got, err)
	}
	if _, err := lint.Select(all, "nosuch", ""); err == nil {
		t.Fatal("Select with an unknown analyzer name must error, or a typo in CI silently skips a check")
	}
}
