// Ignore directives: `//lint:ignore <analyzer>[,<analyzer>] <reason>`
// suppresses matching diagnostics for the statement (or declaration) that
// starts on the line immediately below the directive, or — when the
// directive trails code on its own line — for that line. The reason is
// mandatory: an unexplained suppression is itself reported. "all" matches
// every analyzer.
package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

const ignorePrefix = "//lint:ignore"

// A Directive is one parsed //lint:ignore comment, surfaced by the
// -ignores audit mode so suppressions stay reviewable instead of
// accreting silently.
type Directive struct {
	File      string
	Line      int
	Inline    bool     // shares its line with the code it suppresses
	Analyzers []string // names before the reason; empty when malformed
	Reason    string
	Malformed bool
}

// CollectDirectives parses every //lint:ignore directive in pkgs,
// sorted by file then line. Files shared between packages (none today,
// but test overlays can alias them) are deduplicated.
func CollectDirectives(pkgs []*Package) []Directive {
	var out []Directive
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			codeLines := codeLineSet(pkg.Fset, f)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					d := Directive{File: pos.Filename, Line: pos.Line, Inline: codeLines[pos.Line]}
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						d.Malformed = true
					} else {
						for _, name := range strings.Split(fields[0], ",") {
							if name = strings.TrimSpace(name); name != "" {
								d.Analyzers = append(d.Analyzers, name)
							}
						}
						d.Reason = strings.Join(fields[1:], " ")
					}
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

type ignoreDirective struct {
	file      string
	line      int  // line the directive sits on
	inline    bool // directive shares its line with code
	analyzers map[string]bool
	// [from, to] line range covered by the next statement (exclusive of
	// anything after it); zero when no statement follows.
	from, to int
}

type ignoreSet struct {
	directives []ignoreDirective
	malformed  []Diagnostic
}

func (s *ignoreSet) suppresses(d Diagnostic) bool {
	for _, dir := range s.directives {
		if dir.file != d.Position.Filename {
			continue
		}
		if !dir.analyzers["all"] && !dir.analyzers[d.Analyzer] {
			continue
		}
		if dir.inline && d.Position.Line == dir.line {
			return true
		}
		if !dir.inline && dir.from > 0 && d.Position.Line >= dir.from && d.Position.Line <= dir.to {
			return true
		}
	}
	return false
}

// collectIgnores scans every comment in the package for directives and
// resolves the statement each one covers.
func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	set := &ignoreSet{}
	for _, f := range files {
		codeLines := codeLineSet(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					set.malformed = append(set.malformed, Diagnostic{
						Analyzer: "lintdirective",
						Pos:      c.Pos(),
						Position: pos,
						Message:  "malformed //lint:ignore: want analyzer list and a reason",
					})
					continue
				}
				dir := ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					inline:    codeLines[pos.Line],
					analyzers: make(map[string]bool),
				}
				for _, name := range strings.Split(fields[0], ",") {
					dir.analyzers[strings.TrimSpace(name)] = true
				}
				if !dir.inline {
					dir.from, dir.to = nextStatementExtent(fset, f, pos.Line)
				}
				set.directives = append(set.directives, dir)
			}
		}
	}
	return set
}

// codeLineSet returns the set of lines on which a non-comment node
// starts, used to tell inline directives from whole-line ones.
func codeLineSet(fset *token.FileSet, f *ast.File) map[int]bool {
	codeLines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return true
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return true
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		return true
	})
	return codeLines
}

// nextStatementExtent finds the statement or declaration whose first line
// is the line directly below the directive and returns its line span.
// A blank line between the directive and the code detaches it — the
// suppression is scoped to the next statement only, never "somewhere
// further down the file".
func nextStatementExtent(fset *token.FileSet, f *ast.File, line int) (from, to int) {
	var best ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case ast.Stmt, ast.Decl, *ast.Field:
		default:
			return true
		}
		start := fset.Position(n.Pos()).Line
		if start != line+1 {
			return true
		}
		if best == nil || n.Pos() < best.Pos() ||
			(n.Pos() == best.Pos() && n.End() > best.End()) {
			best = n
		}
		return true
	})
	if best == nil {
		return 0, 0
	}
	return fset.Position(best.Pos()).Line, fset.Position(best.End()).Line
}
