// A package that deliberately fails type-checking: the loader must
// surface the error and keep going, never panic.
package typeerror

import "fmt"

func broken() {
	var n int = "not an int"
	fmt.Println(n)
}

func stillParses() {
	fmt.Println("this call is visible to analyzers despite the error above")
}
