// Exercises //lint:ignore scoping for the framework tests, using the
// test-only "noprint" toy analyzer that flags every fmt.Println call.
package ignorescope

import "fmt"

func suppressedNextStatementOnly() {
	//lint:ignore noprint demo: only the next statement is covered
	fmt.Println("one")
	fmt.Println("two")
}

func suppressedInline() {
	fmt.Println("three") //lint:ignore noprint demo: inline suppression covers this line
}

func suppressedMultiline() {
	//lint:ignore noprint demo: the whole following statement is covered
	if true {
		fmt.Println("four")
	}
	fmt.Println("five")
}

func detachedDirective() {
	//lint:ignore noprint demo: a blank line detaches the directive

	fmt.Println("six")
}

func wrongAnalyzer() {
	//lint:ignore someothercheck demo: name does not match
	fmt.Println("seven")
}

func missingReason() {
	//lint:ignore noprint
	fmt.Println("eight")
}
