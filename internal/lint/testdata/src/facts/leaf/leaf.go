// Package leaf is the dependency half of the cross-package fact
// propagation fixture: it declares map-ordered and sorted returns, an
// interface with an in-module implementer, sentinel-wrapped and
// unwrapped error paths, and a context wrapper — everything the root
// package's facts must be derived from.
package leaf

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// ErrLeaf is the package sentinel.
var ErrLeaf = errors.New("leaf")

// Keys returns map keys in iteration order: MapOrderedReturn.
func Keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// SortedKeys sorts before returning: not map-ordered.
func SortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Emitter is implemented (only) by Dev.
type Emitter interface {
	Emit(s string) int
}

// Dev implements Emitter.
type Dev struct{ n int }

// Emit implements Emitter.
func (d Dev) Emit(s string) int { return d.n + len(s) }

// Fail always wraps the sentinel: SentinelWrapped.
func Fail() error {
	return fmt.Errorf("leaf failed: %w", ErrLeaf)
}

// Bad returns an ad-hoc error: not SentinelWrapped.
func Bad() error {
	return errors.New("no identity")
}

// DoCtx is a context sink.
func DoCtx(ctx context.Context) error {
	return ctx.Err()
}

// Wrapper roots a fresh Background context into DoCtx: calling it from
// a context-carrying function drops that context (NeedsCtx).
func Wrapper() error {
	return DoCtx(context.Background())
}
