// Package root is the dependent half of the cross-package fact
// propagation fixture: every derived fact here requires leaf's facts
// to already be final, which is what the dependency-ordered store
// guarantees.
package root

import (
	"fmt"
	"sort"

	"flowdifflint-testdata/facts/leaf"
)

// PassThrough returns leaf.Keys' map-ordered slice unsorted: the
// MapOrderedReturn fact must propagate across the package boundary.
func PassThrough(m map[string]int) []string {
	return leaf.Keys(m)
}

// Rinsed sorts the map-ordered result before returning: clean.
func Rinsed(m map[string]int) []string {
	ks := leaf.Keys(m)
	sort.Strings(ks)
	return ks
}

// Relay returns leaf.Keys' result through a local variable, unsorted:
// still map-ordered.
func Relay(m map[string]int) []string {
	ks := leaf.Keys(m)
	return ks
}

// CallIface dispatches through the interface; the graph must resolve
// the edge to leaf.Dev's Emit structurally.
func CallIface(e leaf.Emitter) int {
	return e.Emit("x")
}

// Wraps propagates a sentinel-wrapped callee error: SentinelWrapped.
func Wraps() error {
	if err := leaf.Fail(); err != nil {
		return fmt.Errorf("root: %w", err)
	}
	return nil
}

// BadWrap wraps an identity-less callee error: not SentinelWrapped.
func BadWrap() error {
	if err := leaf.Bad(); err != nil {
		return fmt.Errorf("root: %w", err)
	}
	return nil
}

// Indirect reaches leaf.Wrapper's fresh Background root through a
// context-less chain: NeedsCtx.
func Indirect() error {
	return leaf.Wrapper()
}
