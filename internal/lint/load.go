// Package loading: discovery via `go list -json`, parsing with
// go/parser, type-checking with go/types. Module-internal imports are
// type-checked recursively from source; stdlib imports go through the
// compiler "source" importer, so the loader needs no compiled export
// data and no dependencies outside the standard library.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("flowdifflint-testdata" paths for LoadDir)
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	// TypesInfo is populated even when type-checking failed partway;
	// analyzers must tolerate nil types for broken expressions.
	TypesInfo *types.Info
	// TypeErrors collects every type-checking error instead of aborting:
	// a package that no longer compiles should surface as diagnostics,
	// not as a linter crash.
	TypeErrors []error
}

// Loader loads and caches packages against one shared FileSet.
type Loader struct {
	Fset *token.FileSet
	// IncludeTests augments each listed package with its in-package
	// _test.go files and loads external _test packages alongside.
	IncludeTests bool
	// Dir is the working directory for go list (default: process cwd).
	Dir string

	std        types.Importer
	modulePath string
	// pure caches packages WITHOUT test files, keyed by import path;
	// these are what imports resolve to, so an augmented (test-including)
	// analysis package never leaks into its importers' view.
	pure map[string]*types.Package
	info map[string]*listInfo
}

// listInfo is the subset of `go list -json` output the loader consumes.
type listInfo struct {
	Dir          string
	ImportPath   string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct{ Path string }
	Error        *struct{ Err string }
}

func NewLoader() *Loader {
	l := &Loader{
		Fset: token.NewFileSet(),
		pure: make(map[string]*types.Package),
		info: make(map[string]*listInfo),
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	return l
}

// Load expands the go list patterns (e.g. "./...") and returns one
// analysis Package per matched package, plus one per external test
// package when IncludeTests is set.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	infos, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, info := range infos {
		if info.Error != nil {
			return nil, fmt.Errorf("lint: go list %s: %s", info.ImportPath, info.Error.Err)
		}
		if info.Module != nil && l.modulePath == "" {
			l.modulePath = info.Module.Path
		}
		files := info.GoFiles
		if l.IncludeTests {
			files = append(append([]string{}, files...), info.TestGoFiles...)
		}
		if len(files) > 0 {
			pkg, err := l.check(info.ImportPath, info.Dir, files)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
		if l.IncludeTests && len(info.XTestGoFiles) > 0 {
			pkg, err := l.check(info.ImportPath+"_test", info.Dir, info.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads every .go file in one directory as a single package under
// a caller-chosen import path. Analyzer tests use it to type-check
// testdata packages (which the go tool deliberately ignores) under
// pretend paths that exercise path-scoped analyzers.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	sort.Strings(files)
	pkg, err := l.check(importPath, dir, files)
	if err != nil {
		return nil, err
	}
	// Register clean packages as importable so a later LoadDir package
	// can import this one by its pretend path — the fixture mechanism
	// for cross-package fact-propagation tests.
	if len(pkg.TypeErrors) == 0 {
		l.pure[importPath] = pkg.Types
	}
	return pkg, nil
}

// check parses and type-checks one package. Parse errors abort (there is
// no AST to analyze); type errors are collected on the package.
func (l *Loader) check(importPath, dir string, fileNames []string) (*Package, error) {
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset}
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Name = pkg.Files[0].Name.Name
	pkg.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the package even on error; errors are already in
	// pkg.TypeErrors via the Error hook.
	pkg.Types, _ = conf.Check(importPath, l.Fset, pkg.Files, pkg.TypesInfo)
	return pkg, nil
}

// importPkg resolves one import for the type checker: the pure cache
// first (module-internal packages already checked, and LoadDir
// packages registered under pretend paths — how multi-package testdata
// fixtures import each other), then module-internal packages
// recursively from source (without test files), everything else
// through the stdlib source importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pure[path]; ok {
		return p, nil
	}
	if l.inModule(path) {
		if p, ok := l.pure[path]; ok {
			return p, nil
		}
		info, err := l.listOne(path)
		if err != nil {
			return nil, err
		}
		pkg, err := l.check(path, info.Dir, info.GoFiles)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("lint: %s: %v", path, pkg.TypeErrors[0])
		}
		l.pure[path] = pkg.Types
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) inModule(path string) bool {
	if l.modulePath == "" {
		return false
	}
	return path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")
}

func (l *Loader) goList(patterns ...string) ([]*listInfo, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var infos []*listInfo
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		info := new(listInfo)
		if err := dec.Decode(info); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		l.info[info.ImportPath] = info
		infos = append(infos, info)
	}
	return infos, nil
}

func (l *Loader) listOne(path string) (*listInfo, error) {
	if info, ok := l.info[path]; ok {
		return info, nil
	}
	infos, err := l.goList(path)
	if err != nil {
		return nil, err
	}
	if len(infos) != 1 {
		return nil, fmt.Errorf("lint: go list %s: %d packages", path, len(infos))
	}
	return infos[0], nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
