package lint

import (
	"testing"
)

const (
	leafPath = "flowdifflint-testdata/facts/leaf"
	rootPath = "flowdifflint-testdata/facts/root"
)

// loadFixture loads the two-package facts fixture (leaf first, so root
// can import it by its pretend path).
func loadFixture(t *testing.T) (leaf, root *Package) {
	t.Helper()
	l := NewLoader()
	var err error
	leaf, err = l.LoadDir("testdata/src/facts/leaf", leafPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaf.TypeErrors) > 0 {
		t.Fatalf("leaf does not type-check: %v", leaf.TypeErrors[0])
	}
	root, err = l.LoadDir("testdata/src/facts/root", rootPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.TypeErrors) > 0 {
		t.Fatalf("root does not type-check: %v", root.TypeErrors[0])
	}
	return leaf, root
}

// Facts must come out identical whichever order the packages are
// passed in: BuildFacts owns the dependency sort.
func TestFactPropagationOrder(t *testing.T) {
	leaf, root := loadFixture(t)
	for name, pkgs := range map[string][]*Package{
		"deps-first": {leaf, root},
		"deps-last":  {root, leaf},
	} {
		t.Run(name, func(t *testing.T) {
			f := BuildFacts(pkgs)
			order := f.PackageOrder()
			if len(order) != 2 || order[0] != leafPath || order[1] != rootPath {
				t.Fatalf("package order = %v, want [%s %s]", order, leafPath, rootPath)
			}
			assertFixtureFacts(t, f)
		})
	}
}

func assertFixtureFacts(t *testing.T, f *Facts) {
	t.Helper()
	mapOrdered := map[string]bool{
		leafPath + ".Keys":        true,
		leafPath + ".SortedKeys":  false,
		rootPath + ".PassThrough": true,
		rootPath + ".Rinsed":      false,
		rootPath + ".Relay":       true,
	}
	for id, want := range mapOrdered {
		s := f.Func(FuncID(id))
		if s == nil {
			t.Fatalf("no summary for %s", id)
		}
		if s.MapOrderedReturn != want {
			t.Errorf("MapOrderedReturn(%s) = %v, want %v", id, s.MapOrderedReturn, want)
		}
	}
	wrapped := map[string]bool{
		leafPath + ".Fail":    true,
		leafPath + ".Bad":     false,
		rootPath + ".Wraps":   true,
		rootPath + ".BadWrap": false,
	}
	for id, want := range wrapped {
		s := f.Func(FuncID(id))
		if s == nil {
			t.Fatalf("no summary for %s", id)
		}
		if s.SentinelWrapped != want {
			t.Errorf("SentinelWrapped(%s) = %v, want %v", id, s.SentinelWrapped, want)
		}
	}
}

// The interface call in root.CallIface must resolve structurally to
// the one module implementer, across the package boundary.
func TestInterfaceCallResolution(t *testing.T) {
	leaf, root := loadFixture(t)
	f := BuildFacts([]*Package{root, leaf}) // worst-case input order
	g := NewGraph(f)
	callees := g.Callees(FuncID(rootPath + ".CallIface"))
	want := FuncID("(" + leafPath + ".Dev).Emit")
	found := false
	for _, c := range callees {
		if c == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("CallIface callees = %v, want to include %s", callees, want)
	}
	// And the resolved edge makes the implementation reachable.
	reach := g.Reachable(FuncID(rootPath + ".CallIface"))
	if !reach[want] {
		t.Errorf("Dev.Emit not reachable from CallIface: %v", reach)
	}
}

// NeedsCtx must see leaf.Wrapper's fresh Background root through
// root.Indirect's context-less chain, and stay quiet for functions
// that plumb or accept contexts properly.
func TestNeedsCtxPropagation(t *testing.T) {
	leaf, root := loadFixture(t)
	g := NewGraph(BuildFacts([]*Package{leaf, root}))
	cases := map[string]bool{
		leafPath + ".Wrapper":  true,
		rootPath + ".Indirect": true,
		leafPath + ".DoCtx":    false, // has its own ctx param
		leafPath + ".Keys":     false,
		rootPath + ".Wraps":    false,
	}
	for id, want := range cases {
		if got := g.NeedsCtx(FuncID(id)); got != want {
			t.Errorf("NeedsCtx(%s) = %v, want %v", id, got, want)
		}
	}
	if root := g.CtxRoot(FuncID(rootPath + ".Indirect")); root != FuncID(leafPath+".Wrapper") {
		t.Errorf("CtxRoot(Indirect) = %s, want %s.Wrapper", root, leafPath)
	}
}
