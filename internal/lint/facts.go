// The fact store: package summaries propagated across the module in
// import-dependency order, the stdlib-only analogue of x/tools analysis
// facts. BuildFacts topologically sorts the loaded packages by their
// in-set imports (so the order the caller passes them in never
// matters), summarizes each one, and then runs the two derived-fact
// fixpoints — map-ordered-return propagation and sentinel-wrapped
// error propagation — package by package in that order. Within one
// package the fixpoints iterate to handle call cycles; across packages
// a single dependency-ordered pass suffices because Go imports are
// acyclic.
package lint

import (
	"sort"
)

// Facts is the module-wide fact store handed to analyzers that set
// NeedsFacts.
type Facts struct {
	pkgs  map[string]*PackageFacts
	order []string // package paths in processed (dependency) order
	funcs map[FuncID]*FuncSummary
	types map[string]*TypeFacts
}

// BuildFacts summarizes every package and propagates derived facts in
// dependency order.
func BuildFacts(pkgs []*Package) *Facts {
	f := &Facts{
		pkgs:  make(map[string]*PackageFacts),
		funcs: make(map[FuncID]*FuncSummary),
		types: make(map[string]*TypeFacts),
	}
	for _, path := range dependencyOrder(pkgs) {
		var pkg *Package
		for _, p := range pkgs {
			if p.Path == path {
				pkg = p
				break
			}
		}
		pf := summarize(pkg)
		f.pkgs[path] = pf
		f.order = append(f.order, path)
		for id, s := range pf.Funcs {
			f.funcs[id] = s
		}
		for name, tf := range pf.Types {
			f.types[name] = tf
		}
		// Derived facts for this package: dependencies are final, so
		// only in-package cycles need iteration.
		f.propagateMapOrdered(pf)
		f.propagateSentinelWrapped(pf)
	}
	return f
}

// Func returns the summary for id, or nil when the function is outside
// the analyzed set (another module, the stdlib, or not loaded).
func (f *Facts) Func(id FuncID) *FuncSummary {
	return f.funcs[id]
}

// Package returns one package's facts (nil when not loaded).
func (f *Facts) Package(path string) *PackageFacts {
	return f.pkgs[path]
}

// PackageOrder returns the dependency order the packages were
// processed in (dependencies before dependents).
func (f *Facts) PackageOrder() []string {
	return append([]string(nil), f.order...)
}

// InModule reports whether the package path was part of the analyzed
// set — the boundary the interprocedural analyzers stop at.
func (f *Facts) InModule(path string) bool {
	_, ok := f.pkgs[path]
	return ok
}

// Types returns the type facts of every named type in the module,
// sorted by full name (for deterministic interface resolution).
func (f *Facts) Types() []*TypeFacts {
	names := make([]string, 0, len(f.types))
	for name := range f.types {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*TypeFacts, len(names))
	for i, name := range names {
		out[i] = f.types[name]
	}
	return out
}

// Funcs returns every summarized function, sorted by ID.
func (f *Facts) Funcs() []*FuncSummary {
	ids := make([]string, 0, len(f.funcs))
	for id := range f.funcs {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	out := make([]*FuncSummary, len(ids))
	for i, id := range ids {
		out[i] = f.funcs[FuncID(id)]
	}
	return out
}

// dependencyOrder topologically sorts the packages: imports first,
// dependents after. Ties break by path so the order is deterministic
// regardless of input order. Packages whose imports lie outside the
// set (stdlib, unloaded) are unconstrained by those imports.
func dependencyOrder(pkgs []*Package) []string {
	inSet := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		inSet[p.Path] = p
	}
	// deps[path] = in-set packages path imports.
	deps := make(map[string][]string, len(pkgs))
	for _, p := range pkgs {
		seen := map[string]bool{}
		if p.Types != nil {
			for _, imp := range p.Types.Imports() {
				if _, ok := inSet[imp.Path()]; ok && !seen[imp.Path()] {
					seen[imp.Path()] = true
					deps[p.Path] = append(deps[p.Path], imp.Path())
				}
			}
		}
		sort.Strings(deps[p.Path])
	}
	var order []string
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		if state[path] != 0 {
			return
		}
		state[path] = 1
		for _, d := range deps[path] {
			visit(d)
		}
		state[path] = 2
		order = append(order, path)
	}
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		visit(path)
	}
	return order
}

// propagateMapOrdered marks functions that return the unsorted result
// of a map-ordered callee as map-ordered themselves. Dependencies'
// facts are final; the loop handles in-package call cycles.
func (f *Facts) propagateMapOrdered(pf *PackageFacts) {
	for changed := true; changed; {
		changed = false
		for _, s := range pf.Funcs {
			if s.MapOrderedReturn {
				continue
			}
			for i := range s.Calls {
				c := &s.Calls[i]
				if !c.ResultReturned || c.ResultSorted || c.Callee == "" {
					continue
				}
				callee := f.funcs[c.Callee]
				if callee == nil || !callee.MapOrderedReturn {
					continue
				}
				s.MapOrderedReturn = true
				s.MapOrderedPos = c.Pos
				s.MapOrderedVia = string(c.Callee)
				changed = true
				break
			}
		}
	}
}

// propagateSentinelWrapped falsifies SentinelWrapped for functions with
// an unwrapped error return or a dependency on a non-wrapped callee.
// Callees outside the analyzed set have no facts; their errors carry
// whatever identity they carry, so Deps on them are trusted (the
// boundary wrap is the analyzer's concern, not the fact's).
func (f *Facts) propagateSentinelWrapped(pf *PackageFacts) {
	for changed := true; changed; {
		changed = false
		for _, s := range pf.Funcs {
			if !s.SentinelWrapped {
				continue
			}
			for _, r := range s.ErrReturns {
				if !s.SentinelWrapped {
					break
				}
				switch r.Kind {
				case ErrReturnUnwrapped:
					s.SentinelWrapped = false
					changed = true
				case ErrReturnDeps:
					for _, dep := range r.Deps {
						if ds := f.funcs[dep]; ds != nil && !ds.SentinelWrapped {
							s.SentinelWrapped = false
							changed = true
							break
						}
					}
				}
			}
		}
	}
}
