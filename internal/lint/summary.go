// Function summaries: the per-function facts the interprocedural
// analyzers consume. One FuncSummary is extracted per declared function
// (methods included); function literals fold into their enclosing
// declaration — a call made inside a closure, a `parallel.For` worker
// body, or a `go func(){...}` is attributed to the function that
// lexically contains it, which is the reachability notion the callers
// of the fact store care about.
//
// Summaries are deliberately syntactic + type-directed, never
// path-sensitive: they record what a function *can* do (calls it
// contains, spans it opens, contexts it constructs, map-ordered slices
// it returns), and the analyzers over-approximate from there. The
// escape hatch for the resulting false positives is the usual reasoned
// `//lint:ignore`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A FuncID names one function uniquely across the module, in the
// types.Func.FullName form: "pkg/path.Func", "(pkg/path.T).M", or
// "(*pkg/path.T).M". The string form survives the loader's duplicated
// type-check universes (an import and its own analysis package are
// distinct types.Package objects for the same source), which object
// identity does not.
type FuncID string

// CtxArgKind classifies the context.Context argument of one call.
type CtxArgKind int

const (
	// CtxArgNone: the callee does not take a context.
	CtxArgNone CtxArgKind = iota
	// CtxArgSupplied: a context variable (parameter, derived, or local)
	// is passed through.
	CtxArgSupplied
	// CtxArgField: the context comes from a struct field (the
	// stored-at-construction plumbing pattern, e.g. signature.Pipeline).
	CtxArgField
	// CtxArgBackground: a fresh context.Background()/TODO() is passed
	// directly — the wrapper idiom when the caller has no context of its
	// own, a dropped context when it does.
	CtxArgBackground
)

// A Call records one outgoing call edge of a function.
type Call struct {
	Pos        token.Pos
	Callee     FuncID
	CalleePkg  string // import path of the callee's package ("" when unknown)
	CalleeName string
	// CalleeHasCtx: the callee's signature accepts a context.Context.
	CalleeHasCtx bool
	// CalleeReturnsError: some result of the callee implements error.
	CalleeReturnsError bool
	CtxArg             CtxArgKind
	Deferred           bool
	// ValueRef: the function was referenced as a value (method value,
	// function passed as an argument) rather than called directly; the
	// graph treats it as a potential call.
	ValueRef bool
	// Iface is set for calls through an interface; Callee is then empty
	// and the graph resolves the edge against the module's type facts.
	Iface *IfaceCall
	// ResultSorted: the call's result is passed to a sort.*/slices.*
	// call later in the enclosing function.
	ResultSorted bool
	// ResultReturned: the call's result is returned by the enclosing
	// function (directly, or via a variable that is never sorted in
	// between) — the hook for propagating map-ordered returns up.
	ResultReturned bool
}

// An IfaceCall describes a call through an interface method by the
// interface's full method set, each method as a package-qualified
// signature string. Resolution is structural (name + signature match
// over the module's type facts), so it is independent of the loader's
// per-package type universes.
type IfaceCall struct {
	// Method is the called method's name.
	Method string
	// MethodSet is the interface's complete method set, sorted by name.
	MethodSet []MethodSig
}

// A MethodSig is one method name with its package-qualified signature
// string (receiver excluded).
type MethodSig struct {
	Name string
	Sig  string
}

// A SpanOpen records one obs.Span call.
type SpanOpen struct {
	Pos  token.Pos
	Name string
	// Dynamic: the span name is not a compile-time string constant.
	Dynamic bool
}

// ErrReturnKind classifies one error-returning return statement.
type ErrReturnKind int

const (
	// ErrReturnWrapped: fmt.Errorf with %w wrapping a package-level
	// error variable (a sentinel with a stable errors.Is identity).
	ErrReturnWrapped ErrReturnKind = iota
	// ErrReturnDeps: the error propagates from callees (directly or via
	// a local variable); wrappedness is decided by the callees' facts.
	ErrReturnDeps
	// ErrReturnUnwrapped: an error with no errors.Is-matchable identity
	// crosses the return (ad-hoc errors.New, fmt.Errorf without %w,
	// unknown origin).
	ErrReturnUnwrapped
)

// An ErrReturn summarizes the error result of one return statement.
type ErrReturn struct {
	Pos  token.Pos
	Kind ErrReturnKind
	// Desc explains an Unwrapped classification.
	Desc string
	// Deps: the callees this return's error may originate from.
	Deps []FuncID
}

// A FieldAppend is an append to a struct field inside map iteration —
// the "report field write" emission mapiter's ident-only check misses.
type FieldAppend struct {
	Pos    token.Pos
	Target string
}

// A FuncSummary is the complete per-function fact record.
type FuncSummary struct {
	ID       FuncID
	Pkg      string
	Name     string
	Pos      token.Pos
	File     string
	Exported bool
	// HasCtxParam: the function's own signature accepts a context.
	HasCtxParam bool
	// ReturnsError: some result implements error.
	ReturnsError bool
	Calls        []Call
	Spans        []SpanOpen
	ErrReturns   []ErrReturn
	// MapOrderedReturn: the function returns a slice whose element
	// order is inherited from map iteration with no dominating sort —
	// set intraprocedurally here, propagated through ResultReturned
	// calls by the fact store.
	MapOrderedReturn bool
	MapOrderedPos    token.Pos
	// MapOrderedVia names the origin ("append inside range over m", or
	// the callee the order was inherited from).
	MapOrderedVia   string
	FieldMapAppends []FieldAppend
	// SentinelWrapped: every error return is Wrapped or propagates from
	// sentinel-wrapped callees. Computed by the fact store's fixpoint;
	// true until falsified.
	SentinelWrapped bool
}

// TypeFacts records one named type's method set for structural
// interface resolution.
type TypeFacts struct {
	// FullName is "pkg/path.TypeName".
	FullName string
	Pkg      string
	// Methods maps method name to its signature string and FuncID.
	Methods map[string]TypeMethod
}

// A TypeMethod is one method of a named type.
type TypeMethod struct {
	Sig string
	ID  FuncID
}

// PackageFacts bundles everything summarized from one package.
type PackageFacts struct {
	Path  string
	Funcs map[FuncID]*FuncSummary
	Types map[string]*TypeFacts
}

// sigQualifier renders package-qualified type strings that are stable
// across type-check universes.
func sigQualifier(p *types.Package) string { return p.Path() }

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasCtxParam reports whether sig takes a context.Context parameter.
func hasCtxParam(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// returnsErrorType reports whether some result of sig implements error.
func returnsErrorType(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if t := res.At(i).Type(); t != nil && types.Implements(t, errIface) {
			return true
		}
	}
	return false
}

// summarize extracts the FuncSummary of every declared function in pkg
// and the TypeFacts of every named type, keyed for the fact store.
func summarize(pkg *Package) *PackageFacts {
	pf := &PackageFacts{
		Path:  pkg.Path,
		Funcs: make(map[FuncID]*FuncSummary),
		Types: make(map[string]*TypeFacts),
	}
	if pkg.Types != nil {
		collectTypeFacts(pkg.Types, pf)
	}
	for _, f := range pkg.Files {
		fileName := pkg.Fset.Position(f.Pos()).Filename
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := summarizeFunc(pkg, fd, fileName)
			if s != nil {
				pf.Funcs[s.ID] = s
			}
		}
	}
	return pf
}

// collectTypeFacts records the method set of every named type declared
// at package scope.
func collectTypeFacts(p *types.Package, pf *PackageFacts) {
	scope := p.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		tf := &TypeFacts{
			FullName: p.Path() + "." + tn.Name(),
			Pkg:      p.Path(),
			Methods:  make(map[string]TypeMethod),
		}
		// The pointer method set is the superset (value methods are
		// promoted into it), and matches how implementations are passed
		// around in practice.
		mset := types.NewMethodSet(types.NewPointer(named))
		for i := 0; i < mset.Len(); i++ {
			m, ok := mset.At(i).Obj().(*types.Func)
			if !ok {
				continue
			}
			sig, _ := m.Type().(*types.Signature)
			tf.Methods[m.Name()] = TypeMethod{
				Sig: types.TypeString(stripRecv(sig), sigQualifier),
				ID:  FuncID(m.FullName()),
			}
		}
		pf.Types[tf.FullName] = tf
	}
}

// stripRecv drops the receiver so implementation and interface method
// signatures compare equal as strings.
func stripRecv(sig *types.Signature) *types.Signature {
	if sig == nil {
		return nil
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}

// funcObjOf resolves the *types.Func a call or reference targets, or
// nil for builtins, conversions, and unresolved expressions.
func funcObjOf(pkg *Package, fun ast.Expr) *types.Func {
	switch e := ast.Unparen(fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.TypesInfo.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[e]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified reference: pkg.F.
		if fn, ok := pkg.TypesInfo.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// summarizeFunc builds one function's summary, folding the bodies of
// every nested function literal into it.
func summarizeFunc(pkg *Package, fd *ast.FuncDecl, fileName string) *FuncSummary {
	obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	s := &FuncSummary{
		ID:              FuncID(obj.FullName()),
		Pkg:             pkg.Path,
		Name:            fd.Name.Name,
		Pos:             fd.Pos(),
		File:            fileName,
		Exported:        fd.Name.IsExported(),
		HasCtxParam:     hasCtxParam(sig),
		ReturnsError:    returnsErrorType(sig),
		SentinelWrapped: true,
	}

	// First pass: collect every call (and standalone function-value
	// reference), remembering which expressions are call-Fun positions
	// so they are not double-counted as value references.
	callFuns := make(map[ast.Expr]bool)
	var calls []*Call
	callByExpr := make(map[*ast.CallExpr]*Call)
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callFuns[ast.Unparen(call.Fun)] = true
		if c := summarizeCall(pkg, call); c != nil {
			calls = append(calls, c)
			callByExpr[call] = c
		}
		return true
	})
	// Deferred calls.
	ast.Inspect(fd, func(n ast.Node) bool {
		if def, ok := n.(*ast.DeferStmt); ok {
			if c := callByExpr[def.Call]; c != nil {
				c.Deferred = true
			}
		}
		return true
	})
	// Function-value references outside call position. Selector .Sel
	// idents are excluded from the Ident case so a reference is counted
	// once, at the selector that resolves it.
	selSels := make(map[*ast.Ident]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			selSels[sel.Sel] = true
		}
		return true
	})
	recordRef := func(pos token.Pos, fn *types.Func) {
		sig, _ := fn.Type().(*types.Signature)
		calls = append(calls, &Call{
			Pos:                pos,
			Callee:             FuncID(fn.FullName()),
			CalleePkg:          pkgPathOf(fn),
			CalleeName:         fn.Name(),
			CalleeHasCtx:       hasCtxParam(sig),
			CalleeReturnsError: returnsErrorType(sig),
			ValueRef:           true,
		})
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			if callFuns[ast.Expr(e)] || selSels[e] {
				return true
			}
			if fn, ok := pkg.TypesInfo.Uses[e].(*types.Func); ok {
				recordRef(e.Pos(), fn)
			}
		case *ast.SelectorExpr:
			if callFuns[ast.Expr(e)] {
				return true
			}
			if fn := funcObjOf(pkg, e); fn != nil {
				recordRef(e.Pos(), fn)
			}
		}
		return true
	})

	// Result flow: sorted-after and returned-without-sort per call.
	annotateResultFlow(pkg, fd, callByExpr)

	for _, c := range calls {
		s.Calls = append(s.Calls, *c)
	}

	collectSpans(pkg, fd, s)
	collectErrReturns(pkg, fd, sig, s, callByExpr)
	collectMapOrdered(pkg, fd, s)
	return s
}

// pkgPathOf returns fn's package path ("" for universe funcs).
func pkgPathOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// summarizeCall classifies one call expression: resolved static target,
// interface dispatch, or nothing (builtin / conversion / closure var).
func summarizeCall(pkg *Package, call *ast.CallExpr) *Call {
	// Conversions are not calls.
	if tv, ok := pkg.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	// Interface dispatch first: a selector whose receiver is
	// interface-typed resolves to the interface method object, which
	// must become an expandable edge, not a static one.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selection, ok := pkg.TypesInfo.Selections[sel]; ok {
			if iface, ok := selection.Recv().Underlying().(*types.Interface); ok {
				fn, _ := selection.Obj().(*types.Func)
				if fn == nil {
					return nil
				}
				sig, _ := fn.Type().(*types.Signature)
				c := &Call{
					Pos:                call.Pos(),
					CalleeName:         fn.Name(),
					CalleeHasCtx:       hasCtxParam(sig),
					CalleeReturnsError: returnsErrorType(sig),
					Iface: &IfaceCall{
						Method:    fn.Name(),
						MethodSet: methodSetOf(iface),
					},
				}
				if c.CalleeHasCtx {
					c.CtxArg = classifyCtxArg(pkg, call)
				}
				return c
			}
		}
	}
	if fn := funcObjOf(pkg, call.Fun); fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		c := &Call{
			Pos:                call.Pos(),
			Callee:             FuncID(fn.FullName()),
			CalleePkg:          pkgPathOf(fn),
			CalleeName:         fn.Name(),
			CalleeHasCtx:       hasCtxParam(sig),
			CalleeReturnsError: returnsErrorType(sig),
		}
		if c.CalleeHasCtx {
			c.CtxArg = classifyCtxArg(pkg, call)
		}
		return c
	}
	return nil
}

// methodSetOf renders an interface's method set as sorted
// name+signature pairs.
func methodSetOf(iface *types.Interface) []MethodSig {
	var out []MethodSig
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		sig, _ := m.Type().(*types.Signature)
		out = append(out, MethodSig{
			Name: m.Name(),
			Sig:  types.TypeString(stripRecv(sig), sigQualifier),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// classifyCtxArg inspects the context-typed argument of call.
func classifyCtxArg(pkg *Package, call *ast.CallExpr) CtxArgKind {
	for _, arg := range call.Args {
		t := pkg.TypesInfo.TypeOf(arg)
		if t == nil || !isContextType(t) {
			continue
		}
		switch e := ast.Unparen(arg).(type) {
		case *ast.CallExpr:
			if fn := funcObjOf(pkg, e.Fun); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
				(fn.Name() == "Background" || fn.Name() == "TODO") {
				return CtxArgBackground
			}
			return CtxArgSupplied
		case *ast.SelectorExpr:
			// Field access (x.ctx); package-level vars resolve through
			// Selections being absent and count as supplied.
			if _, isField := pkg.TypesInfo.Selections[e]; isField {
				return CtxArgField
			}
			return CtxArgSupplied
		default:
			return CtxArgSupplied
		}
	}
	return CtxArgNone
}

// spanFuncs: the obs.Span entry points, by FullName.
var spanFuncs = map[string]int{
	"flowdiff/internal/obs.Span":             1, // Span(ctx, name)
	"(*flowdiff/internal/obs.Registry).Span": 0, // r.Span(name)
}

// collectSpans records every obs.Span call with its literal stage name.
func collectSpans(pkg *Package, fd *ast.FuncDecl, s *FuncSummary) {
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObjOf(pkg, call.Fun)
		if fn == nil {
			return true
		}
		argIdx, ok := spanFuncs[fn.FullName()]
		if !ok || len(call.Args) <= argIdx {
			return true
		}
		open := SpanOpen{Pos: call.Pos()}
		if tv, ok := pkg.TypesInfo.Types[call.Args[argIdx]]; ok && tv.Value != nil {
			open.Name = strings.Trim(tv.Value.String(), `"`)
		} else {
			open.Dynamic = true
		}
		s.Spans = append(s.Spans, open)
		return true
	})
}

// annotateResultFlow marks, for every summarized call, whether its
// result is later sorted and whether it flows into a return statement
// unsorted (directly or through a single local variable).
func annotateResultFlow(pkg *Package, fd *ast.FuncDecl, calls map[*ast.CallExpr]*Call) {
	if len(calls) == 0 {
		return
	}
	// Direct `return g(...)`.
	ast.Inspect(fd, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
				if c := calls[call]; c != nil {
					c.ResultReturned = true
				}
			}
		}
		return true
	})
	// Assigned to a variable: v := g(...). Track whether v is sorted
	// and whether v is returned.
	type binding struct {
		obj  types.Object
		call *Call
		pos  token.Pos
	}
	var bindings []binding
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		c := calls[call]
		if c == nil {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if obj := objectFor(pkg, id); obj != nil {
					bindings = append(bindings, binding{obj, c, as.Pos()})
				}
			}
		}
		return true
	})
	if len(bindings) == 0 {
		return
	}
	sorted := make(map[types.Object]bool)
	returned := make(map[types.Object]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if isSortFunc(pkg, s.Fun) {
				for _, arg := range s.Args {
					ast.Inspect(arg, func(a ast.Node) bool {
						if id, ok := a.(*ast.Ident); ok {
							if obj := objectFor(pkg, id); obj != nil {
								sorted[obj] = true
							}
						}
						return true
					})
				}
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if obj := objectFor(pkg, id); obj != nil {
						returned[obj] = true
					}
				}
			}
		}
		return true
	})
	for _, b := range bindings {
		if sorted[b.obj] {
			b.call.ResultSorted = true
		} else if returned[b.obj] {
			b.call.ResultReturned = true
		}
	}
}

// objectFor resolves id to its object via Uses or Defs.
func objectFor(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pkg.TypesInfo.Defs[id]
}

// isSortFunc reports whether fun names a sort.*/slices.* function.
func isSortFunc(pkg *Package, fun ast.Expr) bool {
	fn := funcObjOf(pkg, fun)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	return false
}

// collectErrReturns classifies every error-returning return statement.
func collectErrReturns(pkg *Package, fd *ast.FuncDecl, sig *types.Signature, s *FuncSummary, calls map[*ast.CallExpr]*Call) {
	if !s.ReturnsError || sig == nil {
		return
	}
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	isErr := func(t types.Type) bool {
		return t != nil && errIface != nil && types.Implements(t, errIface)
	}

	// Variable bindings: err-typed idents assigned from calls anywhere
	// in the function.
	varDeps := make(map[types.Object][]FuncID)
	varUnknown := make(map[types.Object]string)
	noteBinding := func(obj types.Object, rhs ast.Expr) {
		cls := classifyErrExpr(pkg, rhs, isErr, nil, nil)
		switch cls.Kind {
		case ErrReturnWrapped:
			// A wrapped binding never taints the variable.
		case ErrReturnDeps:
			varDeps[obj] = append(varDeps[obj], cls.Deps...)
		default:
			if _, seen := varUnknown[obj]; !seen {
				varUnknown[obj] = cls.Desc
			}
		}
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objectFor(pkg, id)
			if obj == nil || !isErr(obj.Type()) {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			if rhs != nil {
				noteBinding(obj, rhs)
			}
		}
		return true
	})

	// Named error results, for bare `return`.
	var namedErrs []types.Object
	if res := sig.Results(); res != nil {
		for i := 0; i < res.Len(); i++ {
			v := res.At(i)
			if v.Name() != "" && isErr(v.Type()) {
				namedErrs = append(namedErrs, v)
			}
		}
	}

	ast.Inspect(fd, func(n ast.Node) bool {
		// Only returns belonging to fd's own result shape matter;
		// closure returns with error results are rare enough to fold in
		// (over-approximation, suppressible).
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		record := func(cls ErrReturn) {
			cls.Pos = ret.Pos()
			s.ErrReturns = append(s.ErrReturns, cls)
		}
		if len(ret.Results) == 0 {
			for _, obj := range namedErrs {
				if deps, ok := varDeps[obj]; ok {
					record(ErrReturn{Kind: ErrReturnDeps, Deps: deps})
				}
				if desc, ok := varUnknown[obj]; ok {
					record(ErrReturn{Kind: ErrReturnUnwrapped, Desc: desc})
				}
			}
			return true
		}
		for _, res := range ret.Results {
			t := pkg.TypesInfo.TypeOf(res)
			if !isErr(t) {
				continue
			}
			record(classifyErrExpr(pkg, res, isErr, varDeps, varUnknown))
		}
		return true
	})
}

// classifyErrExpr classifies one error-typed expression. varDeps and
// varUnknown may be nil (binding-time classification).
func classifyErrExpr(pkg *Package, e ast.Expr, isErr func(types.Type) bool, varDeps map[types.Object][]FuncID, varUnknown map[types.Object]string) ErrReturn {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == "nil" {
			return ErrReturn{Kind: ErrReturnWrapped}
		}
		obj := objectFor(pkg, x)
		if obj == nil {
			return ErrReturn{Kind: ErrReturnUnwrapped, Desc: "error of unknown origin"}
		}
		// A package-level error variable is itself a sentinel.
		if isPkgLevelErrVar(obj, isErr) {
			return ErrReturn{Kind: ErrReturnWrapped}
		}
		if varDeps != nil {
			deps, hasDeps := varDeps[obj]
			desc, hasUnknown := varUnknown[obj]
			switch {
			case hasUnknown:
				return ErrReturn{Kind: ErrReturnUnwrapped, Desc: desc}
			case hasDeps:
				return ErrReturn{Kind: ErrReturnDeps, Deps: deps}
			}
		}
		return ErrReturn{Kind: ErrReturnUnwrapped, Desc: fmt.Sprintf("error %q of unknown origin", x.Name)}
	case *ast.CallExpr:
		fn := funcObjOf(pkg, x.Fun)
		if fn == nil {
			return ErrReturn{Kind: ErrReturnUnwrapped, Desc: "error from unresolved call"}
		}
		full := fn.FullName()
		switch full {
		case "errors.New":
			return ErrReturn{Kind: ErrReturnUnwrapped, Desc: "ad-hoc errors.New has no errors.Is identity"}
		case "fmt.Errorf":
			return classifyErrorf(pkg, x, isErr, varDeps, varUnknown)
		}
		return ErrReturn{Kind: ErrReturnDeps, Deps: []FuncID{FuncID(full)}}
	case *ast.SelectorExpr:
		if fn := funcObjOf(pkg, x); fn != nil {
			// Method value: unusual; treat as dep.
			return ErrReturn{Kind: ErrReturnDeps, Deps: []FuncID{FuncID(fn.FullName())}}
		}
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := objectFor(pkg, id).(*types.PkgName); isPkg {
				if obj := objectFor(pkg, x.Sel); obj != nil && isPkgLevelErrVar(obj, isErr) {
					return ErrReturn{Kind: ErrReturnWrapped}
				}
			}
		}
		return ErrReturn{Kind: ErrReturnUnwrapped, Desc: "error from struct field or selector"}
	}
	return ErrReturn{Kind: ErrReturnUnwrapped, Desc: "error of unknown origin"}
}

// isPkgLevelErrVar reports whether obj is a package-scope variable of
// error type — a sentinel identity errors.Is can match.
func isPkgLevelErrVar(obj types.Object, isErr func(types.Type) bool) bool {
	v, ok := obj.(*types.Var)
	if !ok || !isErr(v.Type()) {
		return false
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// classifyErrorf handles fmt.Errorf: %w with a sentinel operand is
// Wrapped, %w propagating callee errors is Deps, no %w is Unwrapped.
func classifyErrorf(pkg *Package, call *ast.CallExpr, isErr func(types.Type) bool, varDeps map[types.Object][]FuncID, varUnknown map[types.Object]string) ErrReturn {
	if len(call.Args) == 0 {
		return ErrReturn{Kind: ErrReturnUnwrapped, Desc: "fmt.Errorf with no format"}
	}
	format := ""
	if tv, ok := pkg.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
		format = tv.Value.String()
	}
	if !strings.Contains(format, "%w") {
		return ErrReturn{Kind: ErrReturnUnwrapped, Desc: "fmt.Errorf without %w breaks the errors.Is chain"}
	}
	var deps []FuncID
	for _, arg := range call.Args[1:] {
		t := pkg.TypesInfo.TypeOf(arg)
		if !isErr(t) {
			continue
		}
		cls := classifyErrExpr(pkg, arg, isErr, varDeps, varUnknown)
		switch cls.Kind {
		case ErrReturnWrapped:
			// One sentinel operand is enough: the chain carries a
			// stable identity.
			return ErrReturn{Kind: ErrReturnWrapped}
		case ErrReturnDeps:
			deps = append(deps, cls.Deps...)
		}
	}
	if len(deps) > 0 {
		return ErrReturn{Kind: ErrReturnDeps, Deps: deps}
	}
	return ErrReturn{Kind: ErrReturnUnwrapped, Desc: "fmt.Errorf %w operand has no errors.Is identity"}
}

// collectMapOrdered detects map-iteration-ordered emissions: appends to
// outer slices that the function returns unsorted, and appends to
// struct fields inside map iteration.
func collectMapOrdered(pkg *Package, fd *ast.FuncDecl, s *FuncSummary) {
	// Returned objects and sorted objects, function-wide.
	returned := make(map[types.Object]bool)
	if res, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func); res != nil {
		if sig, _ := res.Type().(*types.Signature); sig != nil {
			rs := sig.Results()
			for i := 0; rs != nil && i < rs.Len(); i++ {
				if v := rs.At(i); v.Name() != "" {
					returned[v] = true
				}
			}
		}
	}
	sortedObjs := make(map[types.Object]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok {
					if obj := objectFor(pkg, id); obj != nil {
						returned[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			if isSortFunc(pkg, x.Fun) {
				for _, arg := range x.Args {
					ast.Inspect(arg, func(a ast.Node) bool {
						switch ref := a.(type) {
						case *ast.Ident:
							if obj := objectFor(pkg, ref); obj != nil {
								sortedObjs[obj] = true
							}
						case *ast.SelectorExpr:
							if sel, ok := pkg.TypesInfo.Selections[ref]; ok {
								sortedObjs[sel.Obj()] = true
							}
						}
						return true
					})
				}
			}
		}
		return true
	})

	ast.Inspect(fd, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pkg.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(inner ast.Node) bool {
			as, ok := inner.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			callRhs, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := callRhs.Fun.(*ast.Ident)
			if !ok || id.Name != "append" {
				return true
			}
			if obj := objectFor(pkg, id); obj != nil {
				if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
					return true
				}
			}
			switch lhs := as.Lhs[0].(type) {
			case *ast.Ident:
				obj := objectFor(pkg, lhs)
				if obj == nil || sortedObjs[obj] {
					return true
				}
				// Only outer declarations inherit the order.
				if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
					return true
				}
				if returned[obj] && !s.MapOrderedReturn {
					s.MapOrderedReturn = true
					s.MapOrderedPos = as.Pos()
					s.MapOrderedVia = fmt.Sprintf("append to %s inside range over a map", lhs.Name)
				}
			case *ast.SelectorExpr:
				if _, isField := pkg.TypesInfo.Selections[lhs]; isField {
					s.FieldMapAppends = append(s.FieldMapAppends, FieldAppend{
						Pos:    as.Pos(),
						Target: lhs.Sel.Name,
					})
				}
			}
			return true
		})
		return true
	})
}
