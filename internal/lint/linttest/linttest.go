// Package linttest runs analyzers over testdata packages and compares
// the diagnostics against golden `// want "regex"` comments, in the
// shape of golang.org/x/tools/go/analysis/analysistest.
package linttest

import (
	"regexp"
	"strconv"
	"testing"

	"flowdiff/internal/lint"
)

var wantRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// A TestPackage names one fixture directory and the pretend import
// path to load it under. Packages are loaded in slice order, each one
// registered as importable by the ones after it — so a fixture can
// exercise cross-package facts by importing an earlier entry's path.
type TestPackage struct {
	Dir  string
	Path string
}

// Run loads the single package in dir under the pretend import path
// (so path-scoped analyzers fire), runs the analyzers, and requires the
// diagnostics to match the `// want` comments exactly: every want must
// be hit on its line, every diagnostic must be wanted.
func Run(t *testing.T, dir, importPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	RunMulti(t, []TestPackage{{Dir: dir, Path: importPath}}, analyzers...)
}

// RunMulti is Run over several fixture packages at once: analyzers see
// all of them (and the fact store covers all of them), wants are
// collected from every package, and the match must be exact.
func RunMulti(t *testing.T, pkgs []TestPackage, analyzers ...*lint.Analyzer) {
	t.Helper()
	loaded, diags := loadMulti(t, pkgs, analyzers)

	type wantKey struct {
		file string
		line int
	}
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, pkg := range loaded {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						k := wantKey{pos.Filename, pos.Line}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		k := wantKey{d.Position.Filename, d.Position.Line}
		ok := false
		for _, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[re] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// RunExpectNone loads dir under importPath and requires the analyzers to
// stay silent, ignoring any want comments — used to pin the path scoping
// of an analyzer by reloading its positive testdata under an
// out-of-scope pretend path.
func RunExpectNone(t *testing.T, dir, importPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	_, diags := load(t, dir, importPath, analyzers)
	for _, d := range diags {
		t.Errorf("unexpected diagnostic under out-of-scope path %s: %s", importPath, d)
	}
}

func load(t *testing.T, dir, importPath string, analyzers []*lint.Analyzer) (*lint.Package, []lint.Diagnostic) {
	t.Helper()
	pkgs, diags := loadMulti(t, []TestPackage{{Dir: dir, Path: importPath}}, analyzers)
	return pkgs[0], diags
}

func loadMulti(t *testing.T, specs []TestPackage, analyzers []*lint.Analyzer) ([]*lint.Package, []lint.Diagnostic) {
	t.Helper()
	loader := lint.NewLoader()
	var pkgs []*lint.Package
	for _, spec := range specs {
		pkg, err := loader.LoadDir(spec.Dir, spec.Path)
		if err != nil {
			t.Fatal(err)
		}
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("testdata package %s does not type-check: %v", spec.Dir, pkg.TypeErrors[0])
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, lint.Run(pkgs, analyzers)
}
