// The module call graph over the fact store. Edges come from three
// sources: statically resolved calls (direct, method, deferred),
// function-value references (method values and functions passed as
// arguments — conservatively treated as called), and interface calls
// expanded structurally: an interface call edge goes to the matching
// method of every analyzed type whose method set covers the
// interface's full method set by name and package-qualified signature.
// Structural matching keeps resolution independent of the loader's
// per-package type universes.
package lint

import "sort"

// Graph is the resolved call graph.
type Graph struct {
	facts *Facts
	// edges maps caller to sorted callee IDs (in-set and out-of-set).
	edges map[FuncID][]FuncID
	// needsCtx memoizes NeedsCtx (0 unknown, 1 visiting/false, 2 true,
	// 3 false).
	needsCtx map[FuncID]int8
}

// NewGraph builds the graph, expanding interface calls against the
// module's type facts.
func NewGraph(f *Facts) *Graph {
	g := &Graph{
		facts:    f,
		edges:    make(map[FuncID][]FuncID),
		needsCtx: make(map[FuncID]int8),
	}
	allTypes := f.Types()
	for _, s := range f.Funcs() {
		seen := make(map[FuncID]bool)
		var out []FuncID
		add := func(id FuncID) {
			if id != "" && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		for i := range s.Calls {
			c := &s.Calls[i]
			if c.Iface != nil {
				for _, impl := range resolveIface(allTypes, c.Iface) {
					add(impl)
				}
				continue
			}
			add(c.Callee)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		g.edges[s.ID] = out
	}
	return g
}

// resolveIface returns the FuncIDs of every analyzed type's method
// matching the interface call, for types that structurally implement
// the full interface.
func resolveIface(allTypes []*TypeFacts, call *IfaceCall) []FuncID {
	var out []FuncID
	for _, tf := range allTypes {
		ok := true
		for _, m := range call.MethodSet {
			tm, has := tf.Methods[m.Name]
			if !has || tm.Sig != m.Sig {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if tm, has := tf.Methods[call.Method]; has {
			out = append(out, tm.ID)
		}
	}
	return out
}

// Callees returns the sorted outgoing edges of id.
func (g *Graph) Callees(id FuncID) []FuncID {
	return g.edges[id]
}

// Reachable returns every function reachable from the roots (roots
// included, when they exist in the fact store), following only edges
// into summarized functions.
func (g *Graph) Reachable(roots ...FuncID) map[FuncID]bool {
	seen := make(map[FuncID]bool)
	var stack []FuncID
	for _, r := range roots {
		if g.facts.Func(r) != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, callee := range g.edges[id] {
			if seen[callee] || g.facts.Func(callee) == nil {
				continue
			}
			seen[callee] = true
			stack = append(stack, callee)
		}
	}
	return seen
}

// NeedsCtx reports whether calling id from a context-carrying function
// drops that context: id has no context parameter of its own, yet it
// (or an in-set context-less callee, transitively) roots a fresh
// context.Background()/TODO() into a context-accepting function. The
// stored-in-a-struct-field plumbing pattern does not count — there the
// context was supplied at construction. Cycles resolve to false
// (optimistic: a cycle with no Background root drops nothing).
func (g *Graph) NeedsCtx(id FuncID) bool {
	switch g.needsCtx[id] {
	case 2:
		return true
	case 1, 3:
		return false
	}
	s := g.facts.Func(id)
	if s == nil || s.HasCtxParam {
		g.needsCtx[id] = 3
		return false
	}
	g.needsCtx[id] = 1 // visiting
	result := false
	for i := range s.Calls {
		c := &s.Calls[i]
		if c.CalleeHasCtx && c.CtxArg == CtxArgBackground {
			result = true
			break
		}
		if !c.CalleeHasCtx && c.Callee != "" && g.facts.Func(c.Callee) != nil {
			if g.NeedsCtx(c.Callee) {
				result = true
				break
			}
		}
	}
	if result {
		g.needsCtx[id] = 2
	} else {
		g.needsCtx[id] = 3
	}
	return result
}

// CtxRoot returns one Background-rooting function explaining why
// NeedsCtx(id) is true: id itself when it constructs the Background
// context, else the first callee on a dropping path. Returns "" when
// NeedsCtx(id) is false.
func (g *Graph) CtxRoot(id FuncID) FuncID {
	if !g.NeedsCtx(id) {
		return ""
	}
	s := g.facts.Func(id)
	for i := range s.Calls {
		c := &s.Calls[i]
		if c.CalleeHasCtx && c.CtxArg == CtxArgBackground {
			return id
		}
		if !c.CalleeHasCtx && c.Callee != "" && g.facts.Func(c.Callee) != nil && g.NeedsCtx(c.Callee) {
			return g.CtxRoot(c.Callee)
		}
	}
	return id
}
