package checks

import (
	"go/ast"
	"go/token"

	"flowdiff/internal/lint"
)

// floatCmpScope: the packages that compare delay/PC/flow statistics. The
// paper's comparisons are epsilon-based; exact float equality silently
// diverges between the serial and sharded pipelines (different summation
// orders) and between architectures.
var floatCmpScope = []string{
	"flowdiff/internal/core/signature",
	"flowdiff/internal/core/diff",
	"flowdiff/internal/stats",
}

// FloatCmp flags == / != between floating-point operands and map types
// keyed by floats inside the statistics-comparing packages. Test files
// are exempt: asserting an exact expected value of a deterministic
// computation is the point of a regression test.
var FloatCmp = &lint.Analyzer{
	Name:          "floatcmp",
	Doc:           "flags float equality and float map keys in signature/diff/stats: use stats.ApproxEqual / stats.NearZero (epsilon) instead",
	SkipTestFiles: true,
	Run:           runFloatCmp,
}

func runFloatCmp(pass *lint.Pass) {
	if pass.Pkg == nil || !inScope(pass.Pkg.Path(), floatCmpScope...) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if !isFloat(pass.TypeOf(e.X)) && !isFloat(pass.TypeOf(e.Y)) {
					return true
				}
				if bothConst(pass, e.X, e.Y) {
					return true
				}
				if isNaNIdiom(e) {
					return true // x != x is the canonical NaN test
				}
				pass.Reportf(e.OpPos, "floating-point %s comparison: use stats.ApproxEqual / stats.NearZero so shard summation order cannot flip the result", e.Op)
			case *ast.MapType:
				if isFloat(pass.TypeOf(e.Key)) {
					pass.Reportf(e.Key.Pos(), "map keyed by floating-point values: nearly-equal keys hash apart, so lookups depend on bit-exact arithmetic")
				}
			}
			return true
		})
	}
}

func bothConst(pass *lint.Pass, x, y ast.Expr) bool {
	if pass.TypesInfo == nil {
		return false
	}
	xv, yv := pass.TypesInfo.Types[x], pass.TypesInfo.Types[y]
	return xv.Value != nil && yv.Value != nil
}

func isNaNIdiom(e *ast.BinaryExpr) bool {
	x, okX := e.X.(*ast.Ident)
	y, okY := e.Y.(*ast.Ident)
	return okX && okY && x.Name == y.Name
}
