package checks

import (
	"go/token"
	"sort"

	"flowdiff/internal/lint"
)

// ObsSpanRoots maps each instrumented pipeline root (by FuncID) to the
// span names a call into it must be able to reach — the contract that
// keeps the obs timeline complete enough to diagnose a run. The table
// is a variable so the analyzer's tests can swap in fixture roots.
var ObsSpanRoots = map[string][]string{
	"flowdiff.BuildSignaturesContext": {
		"flowdiff.build",
		"signature.extract",
		"signature.groups",
		"signature.app",
		"signature.infra",
		"signature.stability",
	},
	"flowdiff.BuildSignaturesReaderContext": {
		"flowdiff.build",
		"signature.extract",
	},
	"flowdiff.CompareContext": {
		"flowdiff.compare",
		"flowdiff.build",
		"diff.compare",
		"diagnose.tally",
	},
	"flowdiff.DiffContext": {
		"diff.compare",
	},
	"flowdiff.DiagnoseContext": {
		"diagnose.tally",
	},
	"(*flowdiff.Monitor).FlushContext": {
		"monitor.flush",
	},
}

// ObsSpan guards the observability contract: span names are a static
// registry. Every obs.Span / Registry.Span call must pass a
// compile-time constant name, each name must be opened from exactly one
// function module-wide (so a timeline entry maps back to one stage),
// and every instrumented pipeline root in ObsSpanRoots must reach an
// open of each span name its documentation promises.
var ObsSpan = &lint.Analyzer{
	Name:          "obsspan",
	Doc:           "flags dynamic or duplicated span names and instrumented pipeline roots that no longer reach their promised spans",
	SkipTestFiles: true,
	NeedsFacts:    true,
	Run:           runObsSpan,
}

func runObsSpan(pass *lint.Pass) {
	if pass.Pkg == nil || pass.Facts == nil || pass.Graph == nil {
		return
	}
	path := pass.Pkg.Path()

	// Module-wide span sites, grouped by name; diagnostics are emitted
	// only for sites in the current package so each fires exactly once.
	type site struct {
		pos  token.Pos
		fn   *lint.FuncSummary
		posn token.Position
	}
	byName := make(map[string][]site)
	for _, s := range pass.Facts.Funcs() {
		for _, sp := range s.Spans {
			if sp.Dynamic {
				if s.Pkg == path {
					pass.Reportf(sp.Pos, "span name is not a compile-time constant: the obs registry must be static")
				}
				continue
			}
			byName[sp.Name] = append(byName[sp.Name], site{sp.Pos, s, pass.Fset.Position(sp.Pos)})
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sites := byName[name]
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].posn.Filename != sites[j].posn.Filename {
				return sites[i].posn.Filename < sites[j].posn.Filename
			}
			return sites[i].posn.Offset < sites[j].posn.Offset
		})
		for _, dup := range sites[1:] {
			if dup.fn.Pkg != path {
				continue
			}
			pass.Reportf(dup.pos, "span name %q is already opened by %s: registry names must be unique module-wide", name, sites[0].fn.ID)
		}
	}

	// Coverage: each root declared in this package must reach every span
	// its table entry promises.
	roots := make([]string, 0, len(ObsSpanRoots))
	for root := range ObsSpanRoots {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	for _, root := range roots {
		s := pass.Facts.Func(lint.FuncID(root))
		if s == nil || s.Pkg != path {
			continue
		}
		reach := pass.Graph.Reachable(lint.FuncID(root))
		opened := make(map[string]bool)
		for id := range reach {
			for _, sp := range pass.Facts.Func(id).Spans {
				if !sp.Dynamic {
					opened[sp.Name] = true
				}
			}
		}
		for _, want := range ObsSpanRoots[root] {
			if !opened[want] {
				pass.Reportf(s.Pos, "instrumented root %s no longer reaches an open of span %q promised by the obs registry", root, want)
			}
		}
	}
}
