package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"flowdiff/internal/lint"
)

// errCheckScope: the operator-facing entry points. A dropped error in a
// CLI or in the controller's network path turns a failed diagnosis into a
// silently wrong one, which is worse than a crash for a system whose
// whole job is producing trustworthy reports.
var errCheckScope = []string{
	"flowdiff/cmd",
	"flowdiff/internal/controller",
}

// errCheckExempt lists call targets whose error is conventionally
// ignorable when writing to an interactive stream.
var errCheckExempt = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

// errCheckDeferScope extends the deferred-discard rule to the flow-log
// writers: a `defer w.Close()` that drops the flush error can truncate
// a capture silently, which the reader only discovers segments later.
var errCheckDeferScope = []string{
	"flowdiff/internal/flowlog",
}

// ErrCheck flags expression statements that discard a returned error in
// cmd/ and internal/controller, and — additionally under
// internal/flowlog — deferred Close/Flush/Sync calls that discard the
// error of a write-side resource (a file opened for writing, a buffered
// writer, an in-module *Writer type). Read-side closes (os.Open files,
// connections) stay exempt: there is no buffered data to lose. Test
// files are exempt (tests discard errors from helpers they immediately
// assert on).
var ErrCheck = &lint.Analyzer{
	Name:          "errcheck",
	Doc:           "flags discarded error returns in cmd/ and internal/controller, including deferred closes of writable resources",
	SkipTestFiles: true,
	Run:           runErrCheck,
}

func runErrCheck(pass *lint.Pass) {
	if pass.Pkg == nil {
		return
	}
	path := pass.Pkg.Path()
	plain := inScope(path, errCheckScope...)
	deferred := plain || inScope(path, errCheckDeferScope...)
	if !plain && !deferred {
		return
	}
	for _, f := range pass.Files {
		if plain {
			ast.Inspect(f, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(pass, call) || exemptCall(pass, call) {
					return true
				}
				pass.Reportf(call.Pos(), "error returned by %s is discarded: handle it or assign to _ with a reason", callName(call))
				return true
			})
		}
		if deferred {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkDeferredDiscards(pass, fd)
			}
		}
	}
}

// checkDeferredDiscards flags `defer x.Close()` (and Flush/Sync) inside
// fd when the discarded error belongs to a write-side resource.
func checkDeferredDiscards(pass *lint.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		call := def.Call
		if call == nil || !returnsError(pass, call) {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Close", "Flush", "Sync":
		default:
			return true
		}
		why := writableReceiver(pass, sel, fd)
		if why == "" {
			return true
		}
		pass.Reportf(def.Pos(), "error returned by deferred %s is discarded: %s; capture it (e.g. into a named error return)", callName(call), why)
		return true
	})
}

// writableReceiver classifies sel's receiver as a write-side resource,
// returning a non-empty reason when the deferred close must not drop
// its error.
func writableReceiver(pass *lint.Pass, sel *ast.SelectorExpr, fd *ast.FuncDecl) string {
	t := pass.TypeOf(sel.X)
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	switch full {
	case "os.File":
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && boundToWritableOpen(pass, id, fd) {
			return "the file was opened for writing, so the close carries the final flush"
		}
		return ""
	case "bufio.Writer":
		return "unflushed buffered writes are lost silently"
	}
	if inScope(named.Obj().Pkg().Path(), "flowdiff") && strings.Contains(named.Obj().Name(), "Writer") {
		return "the writer's close finalizes buffered output"
	}
	return ""
}

// namedOf unwraps a possible pointer to its named type.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// boundToWritableOpen reports whether id is assigned, anywhere in fd,
// from os.Create or os.OpenFile — the write-side file constructors.
func boundToWritableOpen(pass *lint.Pass, id *ast.Ident, fd *ast.FuncDecl) bool {
	target := pass.ObjectOf(id)
	if target == nil {
		return false
	}
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fsel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.ObjectOf(fsel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		if fn.Name() != "Create" && fn.Name() != "OpenFile" {
			return true
		}
		for _, lhs := range as.Lhs {
			if lid, ok := lhs.(*ast.Ident); ok && pass.ObjectOf(lid) == target {
				found = true
			}
		}
		return !found
	})
	return found
}

func returnsError(pass *lint.Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	check := func(one types.Type) bool {
		return one != nil && types.Implements(one, errIface)
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if check(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return check(t)
}

func exemptCall(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	// fmt.Fprint* to the process's standard streams: the write can only
	// fail when the terminal is gone, at which point nobody is reading.
	if fn.Pkg().Path() == "fmt" && len(call.Args) > 0 {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			if dst, ok := call.Args[0].(*ast.SelectorExpr); ok {
				if x, ok := dst.X.(*ast.Ident); ok {
					if pn, ok := pass.ObjectOf(x).(*types.PkgName); ok && pn.Imported().Path() == "os" &&
						(dst.Sel.Name == "Stderr" || dst.Sel.Name == "Stdout") {
						return true
					}
				}
			}
		}
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		// (*strings.Builder) and (*bytes.Buffer) writes are documented to
		// never return a non-nil error.
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok && named.Obj().Pkg() != nil {
			full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			return full == "strings.Builder" || full == "bytes.Buffer"
		}
		return false
	}
	return errCheckExempt[fn.Pkg().Path()+"."+fn.Name()]
}

func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
