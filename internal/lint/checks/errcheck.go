package checks

import (
	"go/ast"
	"go/types"

	"flowdiff/internal/lint"
)

// errCheckScope: the operator-facing entry points. A dropped error in a
// CLI or in the controller's network path turns a failed diagnosis into a
// silently wrong one, which is worse than a crash for a system whose
// whole job is producing trustworthy reports.
var errCheckScope = []string{
	"flowdiff/cmd",
	"flowdiff/internal/controller",
}

// errCheckExempt lists call targets whose error is conventionally
// ignorable when writing to an interactive stream.
var errCheckExempt = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

// ErrCheck flags expression statements that discard a returned error in
// cmd/ and internal/controller. Test files are exempt (tests discard
// errors from helpers they immediately assert on).
var ErrCheck = &lint.Analyzer{
	Name:          "errcheck",
	Doc:           "flags discarded error returns in cmd/ and internal/controller",
	SkipTestFiles: true,
	Run:           runErrCheck,
}

func runErrCheck(pass *lint.Pass) {
	if pass.Pkg == nil || !inScope(pass.Pkg.Path(), errCheckScope...) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) || exemptCall(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error returned by %s is discarded: handle it or assign to _ with a reason", callName(call))
			return true
		})
	}
}

func returnsError(pass *lint.Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	check := func(one types.Type) bool {
		return one != nil && types.Implements(one, errIface)
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if check(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return check(t)
}

func exemptCall(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	// fmt.Fprint* to the process's standard streams: the write can only
	// fail when the terminal is gone, at which point nobody is reading.
	if fn.Pkg().Path() == "fmt" && len(call.Args) > 0 {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			if dst, ok := call.Args[0].(*ast.SelectorExpr); ok {
				if x, ok := dst.X.(*ast.Ident); ok {
					if pn, ok := pass.ObjectOf(x).(*types.PkgName); ok && pn.Imported().Path() == "os" &&
						(dst.Sel.Name == "Stderr" || dst.Sel.Name == "Stdout") {
						return true
					}
				}
			}
		}
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		// (*strings.Builder) and (*bytes.Buffer) writes are documented to
		// never return a non-nil error.
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok && named.Obj().Pkg() != nil {
			full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			return full == "strings.Builder" || full == "bytes.Buffer"
		}
		return false
	}
	return errCheckExempt[fn.Pkg().Path()+"."+fn.Name()]
}

func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
