package checks

import (
	"go/ast"
	"sort"
	"strings"

	"flowdiff/internal/lint"
)

// SentinelErr guards the public error contract: every error that crosses
// an exported function of the root flowdiff package must carry a stable
// errors.Is identity — one of the package sentinels from errors.go,
// wrapped via fmt.Errorf's %w verb. The check is interprocedural: a
// return that merely propagates a callee's error is fine exactly when
// the fact store proves the callee (transitively) wraps a sentinel; an
// ad-hoc errors.New, a fmt.Errorf without %w, or a propagation from an
// in-module callee with no sentinel anywhere in its chain is flagged at
// the return that exports it.
//
// Errors originating outside the module (stdlib, I/O) are trusted at
// the fact level; the boundary wrap in the root package is where the
// flowdiff identity must be attached.
var SentinelErr = &lint.Analyzer{
	Name:          "sentinelerr",
	Doc:           "flags errors crossing exported flowdiff functions without wrapping a sentinel from errors.go via %w",
	SkipTestFiles: true,
	NeedsFacts:    true,
	Run:           runSentinelErr,
}

func runSentinelErr(pass *lint.Pass) {
	if pass.Pkg == nil || pass.Pkg.Path() != "flowdiff" || pass.Facts == nil {
		return
	}
	pf := pass.Facts.Package(pass.Pkg.Path())
	if pf == nil {
		return
	}
	ids := make([]string, 0, len(pf.Funcs))
	for id := range pf.Funcs {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		s := pf.Funcs[lint.FuncID(id)]
		if !s.Exported || !s.ReturnsError || !exportedReceiver(string(s.ID)) {
			continue
		}
		for _, r := range s.ErrReturns {
			switch r.Kind {
			case lint.ErrReturnUnwrapped:
				pass.Reportf(r.Pos, "error without a sentinel identity crosses the public API (%s); wrap a sentinel from errors.go via %%w", r.Desc)
			case lint.ErrReturnDeps:
				for _, dep := range r.Deps {
					ds := pass.Facts.Func(dep)
					if ds == nil || ds.SentinelWrapped {
						continue
					}
					pass.Reportf(r.Pos, "error propagated from %s crosses the public API without a sentinel identity; wrap a sentinel from errors.go via %%w", dep)
					break
				}
			}
		}
	}
}

// exportedReceiver reports whether a FuncID's receiver type (when it is
// a method) is exported; plain functions always are at this point.
func exportedReceiver(id string) bool {
	if !strings.HasPrefix(id, "(") {
		return true
	}
	end := strings.IndexByte(id, ')')
	if end < 0 {
		return true
	}
	recv := id[1:end] // "*pkg/path.T" or "pkg/path.T"
	if dot := strings.LastIndexByte(recv, '.'); dot >= 0 {
		recv = recv[dot+1:]
	}
	return ast.IsExported(recv)
}
