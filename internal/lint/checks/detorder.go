package checks

import (
	"sort"

	"flowdiff/internal/lint"
)

// DetOrderRoots lists the determinism-critical entry points (by
// FuncID): everything these reach feeds a Report or Signatures value
// that must come out byte-identical at any worker count. A variable so
// the analyzer's tests can swap in fixture roots.
var DetOrderRoots = []string{
	"flowdiff.BuildSignatures",
	"flowdiff.BuildSignaturesContext",
	"flowdiff.BuildSignaturesReader",
	"flowdiff.BuildSignaturesReaderContext",
	"flowdiff.Compare",
	"flowdiff.CompareContext",
	"flowdiff/internal/core/diagnose.RankSuspects",
	"flowdiff/internal/core/diagnose.RankSuspectsContext",
	"flowdiff/internal/core/taskmine.Mine",
	"flowdiff/internal/core/taskmine.MineContext",
	"flowdiff/internal/core/taskmine.MineWithOptions",
	"flowdiff/internal/core/taskmine.MineWithOptionsContext",
}

// DetOrder is the interprocedural extension of mapiter: it follows
// map-iteration order across function boundaries. Within the set of
// functions reachable from DetOrderRoots, it flags
//
//   - a call whose result the fact store proves is in map-iteration
//     order, when the caller neither sorts that result nor returns it
//     for its own caller to sort (returning propagates the
//     map-ordered fact upward instead, so the report lands once, where
//     the order is finally consumed);
//   - a determinism root whose own return value carries map-iteration
//     order all the way out;
//   - an append to a struct field inside map iteration (the report
//     field write mapiter's ident-only check cannot see) in any
//     reachable function.
var DetOrder = &lint.Analyzer{
	Name:          "detorder",
	Doc:           "flags map-iteration order reaching the outputs of determinism-critical roots through any chain of calls",
	SkipTestFiles: true,
	NeedsFacts:    true,
	Run:           runDetOrder,
}

func runDetOrder(pass *lint.Pass) {
	if pass.Pkg == nil || pass.Facts == nil || pass.Graph == nil {
		return
	}
	path := pass.Pkg.Path()
	pf := pass.Facts.Package(path)
	if pf == nil {
		return
	}

	// reachedBy[f] = the first root (sorted order) that reaches f.
	roots := append([]string(nil), DetOrderRoots...)
	sort.Strings(roots)
	reachedBy := make(map[lint.FuncID]string)
	isRoot := make(map[lint.FuncID]bool)
	for _, root := range roots {
		id := lint.FuncID(root)
		if pass.Facts.Func(id) == nil {
			continue
		}
		isRoot[id] = true
		for f := range pass.Graph.Reachable(id) {
			if _, seen := reachedBy[f]; !seen {
				reachedBy[f] = root
			}
		}
	}
	if len(reachedBy) == 0 {
		return
	}

	ids := make([]string, 0, len(pf.Funcs))
	for id := range pf.Funcs {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, idStr := range ids {
		id := lint.FuncID(idStr)
		root, reachable := reachedBy[id]
		if !reachable {
			continue
		}
		s := pf.Funcs[id]
		if isRoot[id] && s.MapOrderedReturn {
			pass.Reportf(s.MapOrderedPos, "map-iteration order reaches the output of determinism root %s (via %s); sort before returning", id, s.MapOrderedVia)
		}
		for i := range s.Calls {
			c := &s.Calls[i]
			if c.ValueRef || c.Callee == "" || c.ResultSorted || c.ResultReturned {
				continue
			}
			cs := pass.Facts.Func(c.Callee)
			if cs == nil || !cs.MapOrderedReturn {
				continue
			}
			pass.Reportf(c.Pos, "result of %s is in map-iteration order (%s) and is consumed unsorted on a path reachable from %s", c.Callee, cs.MapOrderedVia, root)
		}
		for _, fa := range s.FieldMapAppends {
			pass.Reportf(fa.Pos, "append to field %q inside map iteration, reachable from %s: emitted order is nondeterministic; sort the field afterwards", fa.Target, root)
		}
	}
}
