// Package checks holds FlowDiff's repo-specific analyzers. Each one
// machine-checks an invariant the pipeline's correctness argument leans
// on; DESIGN.md ("Determinism invariants") documents the mapping.
package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"flowdiff/internal/lint"
)

// All returns every analyzer in the suite, in stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		MapIter,
		WallClock,
		FloatCmp,
		LockSafe,
		ErrCheck,
		CtxFlow,
		SentinelErr,
		SpawnJoin,
		ObsSpan,
		DetOrder,
	}
}

// inScope reports whether the package's import path falls under one of
// the given path prefixes (whole segments, so "flowdiff/internal/core"
// matches "flowdiff/internal/core/diff" but not ".../corelike").
func inScope(pkgPath string, prefixes ...string) bool {
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isString reports whether t's underlying type is a string type.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// declaredOutside reports whether id resolves to a variable declared
// outside the [from, to) position range (i.e. state shared with code
// beyond that region). Non-variables and unresolved identifiers are not
// "outside" — there is nothing shared to race on.
func declaredOutside(pass *lint.Pass, id *ast.Ident, from, to ast.Node) bool {
	obj := pass.ObjectOf(id)
	if obj == nil {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	return obj.Pos() < from.Pos() || obj.Pos() >= to.End()
}

// funcScopeOf walks up the enclosing-node stack to the innermost function
// body containing the node at stack top, returning its body (or nil at
// package level).
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// inspectWithStack walks every file in the pass, maintaining the stack of
// enclosing nodes (stack excludes n itself).
func inspectWithStack(pass *lint.Pass, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			descend := visit(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}
