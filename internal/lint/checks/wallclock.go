package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"flowdiff/internal/lint"
)

// wallClockScope lists the packages that must be pure functions of the
// log's virtual clock (paper §IV–V: signatures and simulation replay the
// log's timestamps; reading the host clock or the global RNG makes a run
// irreproducible).
var wallClockScope = []string{
	"flowdiff/internal/core",
	"flowdiff/internal/simnet",
	"flowdiff/internal/switchsim",
	"flowdiff/internal/flowlog",
}

// wallClockInstrumented lists packages brought into scope by the obs
// layer: their production code carries span timers, so every clock read
// must route through the injectable obs.Clock (Registry.Now/Since) —
// a direct time.Now would put untestable wall-clock reads inside
// instrumented stages. Matching is exact, not by prefix: "flowdiff"
// must not sweep flowdiff/cmd or flowdiff/examples. Unlike the
// virtual-time scope, _test.go files are exempt here — these packages'
// tests exercise real concurrency (goroutine settling, cancellation
// timing) and legitimately sleep on the host clock. The obs package
// itself is the sanctioned clock owner and stays out of scope.
var wallClockInstrumented = map[string]bool{
	"flowdiff":                   true,
	"flowdiff/internal/parallel": true,
}

// bannedTimeFuncs reach the host's wall clock (or schedule against it).
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// allowedRandFuncs construct explicitly seeded generators and are the
// sanctioned replacement for the global source.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// WallClock forbids wall-clock reads and the globally seeded RNG inside
// the simulator and signature packages.
var WallClock = &lint.Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/Since/timers and global math/rand in virtual-time packages (simulation must be a pure function of the log)",
	Run:  runWallClock,
}

func runWallClock(pass *lint.Pass) {
	if pass.Pkg == nil {
		return
	}
	instrumented := wallClockInstrumented[pass.Pkg.Path()]
	if !instrumented && !inScope(pass.Pkg.Path(), wallClockScope...) {
		return
	}
	for _, f := range pass.Files {
		if instrumented && strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are seeded instances
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTimeFuncs[fn.Name()] {
					if instrumented {
						pass.Reportf(sel.Pos(), "time.%s reads the wall clock directly: instrumented stages must go through the injectable obs.Clock (Registry.Now/Since)", fn.Name())
					} else {
						pass.Reportf(sel.Pos(), "time.%s reads the wall clock: this package must be a pure function of the log's virtual time", fn.Name())
					}
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "global %s.%s is implicitly seeded: use an explicit *rand.Rand (rand.New(rand.NewSource(seed))) so runs are reproducible", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
}
