package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"flowdiff/internal/lint"
)

// SpawnJoin guards the no-leaked-goroutines discipline: every `go`
// statement needs a provable join so a finished pipeline leaves nothing
// running. Two joins are recognized, both purely structural:
//
//   - WaitGroup: the goroutine closure calls wg.Done() (usually
//     deferred) on a sync.WaitGroup that the spawning function Add()s
//     before the `go` statement and Wait()s after it — or, for a
//     WaitGroup stored in a struct field, Wait()ed anywhere in the
//     package (the Serve/Close split).
//   - Channel: the goroutine sends on or closes a channel declared
//     outside it, and the spawning function receives from (or ranges
//     over) that channel after the `go` statement.
//
// `go` statements whose body is not a closure cannot be proven and are
// flagged; parallel.For* runs workers through its own joined WaitGroup,
// so worker closures never spawn bare goroutines themselves. Known
// fire-and-forget goroutines (a detached HTTP server) carry a reasoned
// //lint:ignore.
var SpawnJoin = &lint.Analyzer{
	Name:          "spawnjoin",
	Doc:           "flags go statements with no provable join (balanced WaitGroup Add/Done/Wait or a drained channel)",
	SkipTestFiles: true,
	Run:           runSpawnJoin,
}

func runSpawnJoin(pass *lint.Pass) {
	if pass.Pkg == nil {
		return
	}
	path := pass.Pkg.Path()
	if path != "flowdiff" && !inScope(path, "flowdiff/internal", "flowdiff/cmd") {
		return
	}

	// Package-wide Wait() sites on struct-field WaitGroups, for the
	// spawn-in-Serve / join-in-Close pattern.
	fieldWaits := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj, method := wgTarget(pass, call)
			if obj == nil || method != "Wait" {
				return true
			}
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				fieldWaits[obj] = true
			}
			return true
		})
	}

	inspectWithStack(pass, func(n ast.Node, stack []ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		decl := enclosingDecl(stack)
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			pass.Reportf(g.Pos(), "go statement calls a named function: no join is provable here; spawn a closure that signals a WaitGroup or channel, or use parallel.For")
			return true
		}
		if decl == nil {
			pass.Reportf(g.Pos(), "go statement outside any function declaration has no provable join")
			return true
		}
		if waitGroupJoin(pass, g, lit, decl, fieldWaits) || channelJoin(pass, g, lit, decl) {
			return true
		}
		pass.Reportf(g.Pos(), "goroutine has no provable join: no balanced WaitGroup Add/Done/Wait and no channel drained by the spawner")
		return true
	})
}

// enclosingDecl returns the outermost FuncDecl on the stack.
func enclosingDecl(stack []ast.Node) *ast.FuncDecl {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// wgTarget resolves call as a method call on a sync.WaitGroup value,
// returning the identity of the WaitGroup (the local variable object,
// or the struct field object for s.wg) and the method name.
func wgTarget(pass *lint.Pass, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	recv := pass.TypeOf(sel.X)
	if !isWaitGroup(recv) {
		return nil, ""
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return pass.ObjectOf(x), sel.Sel.Name
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[x]; ok {
			return s.Obj(), sel.Sel.Name
		}
	case *ast.UnaryExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && x.Op == token.AND {
			return pass.ObjectOf(id), sel.Sel.Name
		}
	}
	return nil, ""
}

// isWaitGroup reports whether t (possibly a pointer) is sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// waitGroupJoin proves the WaitGroup pattern for one go statement: the
// closure Done()s a WaitGroup that is Add()ed before the spawn and
// Wait()ed after it in the same declaration (or, for a field-held
// WaitGroup, Wait()ed anywhere in the package).
func waitGroupJoin(pass *lint.Pass, g *ast.GoStmt, lit *ast.FuncLit, decl *ast.FuncDecl, fieldWaits map[types.Object]bool) bool {
	// WaitGroups Done()d inside the goroutine body.
	doneOn := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if obj, method := wgTarget(pass, call); obj != nil && method == "Done" {
				doneOn[obj] = true
			}
		}
		return true
	})
	if len(doneOn) == 0 {
		return false
	}
	added := make(map[types.Object]bool)
	waited := make(map[types.Object]bool)
	ast.Inspect(decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj, method := wgTarget(pass, call)
		if obj == nil || !doneOn[obj] {
			return true
		}
		switch method {
		case "Add":
			if call.Pos() < g.Pos() {
				added[obj] = true
			}
		case "Wait":
			if call.Pos() > g.Pos() {
				waited[obj] = true
			}
		}
		return true
	})
	for obj := range doneOn {
		if added[obj] && (waited[obj] || fieldWaits[obj]) {
			return true
		}
	}
	return false
}

// channelJoin proves the channel pattern: the goroutine sends on or
// closes an outer channel that the spawning declaration receives from
// (or ranges over) after the go statement.
func channelJoin(pass *lint.Pass, g *ast.GoStmt, lit *ast.FuncLit, decl *ast.FuncDecl) bool {
	// Channels signalled from inside the goroutine body.
	signalled := make(map[types.Object]bool)
	note := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil && obj.Pos() < lit.Pos() {
				signalled[obj] = true
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			note(s.Chan)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin && len(s.Args) == 1 {
					note(s.Args[0])
				}
			}
		}
		return true
	})
	if len(signalled) == 0 {
		return false
	}
	received := false
	ast.Inspect(decl, func(n ast.Node) bool {
		if received || n == nil || n.End() <= g.End() {
			return !received
		}
		switch s := n.(type) {
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
					if obj := pass.ObjectOf(id); obj != nil && signalled[obj] {
						received = true
					}
				}
			}
		case *ast.RangeStmt:
			if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil && signalled[obj] {
					received = true
				}
			}
		}
		return !received
	})
	return received
}
