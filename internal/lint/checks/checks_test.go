package checks_test

import (
	"testing"

	"flowdiff/internal/lint/checks"
	"flowdiff/internal/lint/linttest"
)

// Each analyzer is pinned against a testdata package seeded with
// violations and golden `// want` diagnostics. Path-scoped analyzers are
// additionally re-run over the same files under an out-of-scope pretend
// import path and must stay silent.

func TestMapIter(t *testing.T) {
	linttest.Run(t, "testdata/src/mapiter", "flowdiff/internal/example/mapiter", checks.MapIter)
}

func TestWallClock(t *testing.T) {
	linttest.Run(t, "testdata/src/wallclock", "flowdiff/internal/simnet/clockpkg", checks.WallClock)
}

func TestWallClockScopedToVirtualTimePackages(t *testing.T) {
	linttest.RunExpectNone(t, "testdata/src/wallclock", "flowdiff/internal/controller/clockpkg", checks.WallClock)
}

// The instrumented scope (root flowdiff, internal/parallel) bans direct
// wall-clock reads in production code but exempts _test.go files.
func TestWallClockInstrumentedScope(t *testing.T) {
	linttest.Run(t, "testdata/src/wallclock_instrumented", "flowdiff/internal/parallel", checks.WallClock)
}

// The instrumented scope matches exact package paths only: the root
// "flowdiff" entry must not sweep flowdiff/cmd or flowdiff/examples.
func TestWallClockInstrumentedScopeIsExact(t *testing.T) {
	linttest.RunExpectNone(t, "testdata/src/wallclock_instrumented", "flowdiff/cmd/flowdiff", checks.WallClock)
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, "testdata/src/floatcmp", "flowdiff/internal/core/diff/cmppkg", checks.FloatCmp)
}

func TestFloatCmpScopedToStatsPackages(t *testing.T) {
	linttest.RunExpectNone(t, "testdata/src/floatcmp", "flowdiff/internal/workload/cmppkg", checks.FloatCmp)
}

func TestLockSafe(t *testing.T) {
	linttest.Run(t, "testdata/src/locksafe", "flowdiff/internal/example/locksafe", checks.LockSafe)
}

func TestErrCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/errcheck", "flowdiff/cmd/errpkg", checks.ErrCheck)
}

func TestErrCheckScopedToEntryPoints(t *testing.T) {
	linttest.RunExpectNone(t, "testdata/src/errcheck", "flowdiff/internal/stats/errpkg", checks.ErrCheck)
}

// The whole suite over every testdata package at once must reproduce
// exactly the union of the golden diagnostics — analyzers must not
// interfere with each other.
func TestSuiteDisjoint(t *testing.T) {
	linttest.Run(t, "testdata/src/wallclock", "flowdiff/internal/simnet/clockpkg", checks.All()...)
}
