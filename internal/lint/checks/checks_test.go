package checks_test

import (
	"testing"

	"flowdiff/internal/lint/checks"
	"flowdiff/internal/lint/linttest"
)

// Each analyzer is pinned against a testdata package seeded with
// violations and golden `// want` diagnostics. Path-scoped analyzers are
// additionally re-run over the same files under an out-of-scope pretend
// import path and must stay silent.

func TestMapIter(t *testing.T) {
	linttest.Run(t, "testdata/src/mapiter", "flowdiff/internal/example/mapiter", checks.MapIter)
}

func TestWallClock(t *testing.T) {
	linttest.Run(t, "testdata/src/wallclock", "flowdiff/internal/simnet/clockpkg", checks.WallClock)
}

func TestWallClockScopedToVirtualTimePackages(t *testing.T) {
	linttest.RunExpectNone(t, "testdata/src/wallclock", "flowdiff/internal/controller/clockpkg", checks.WallClock)
}

// The instrumented scope (root flowdiff, internal/parallel) bans direct
// wall-clock reads in production code but exempts _test.go files.
func TestWallClockInstrumentedScope(t *testing.T) {
	linttest.Run(t, "testdata/src/wallclock_instrumented", "flowdiff/internal/parallel", checks.WallClock)
}

// The instrumented scope matches exact package paths only: the root
// "flowdiff" entry must not sweep flowdiff/cmd or flowdiff/examples.
func TestWallClockInstrumentedScopeIsExact(t *testing.T) {
	linttest.RunExpectNone(t, "testdata/src/wallclock_instrumented", "flowdiff/cmd/flowdiff", checks.WallClock)
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, "testdata/src/floatcmp", "flowdiff/internal/core/diff/cmppkg", checks.FloatCmp)
}

func TestFloatCmpScopedToStatsPackages(t *testing.T) {
	linttest.RunExpectNone(t, "testdata/src/floatcmp", "flowdiff/internal/workload/cmppkg", checks.FloatCmp)
}

func TestLockSafe(t *testing.T) {
	linttest.Run(t, "testdata/src/locksafe", "flowdiff/internal/example/locksafe", checks.LockSafe)
}

func TestErrCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/errcheck", "flowdiff/cmd/errpkg", checks.ErrCheck)
}

func TestErrCheckScopedToEntryPoints(t *testing.T) {
	linttest.RunExpectNone(t, "testdata/src/errcheck", "flowdiff/internal/stats/errpkg", checks.ErrCheck)
}

func TestErrCheckDeferredInFlowlog(t *testing.T) {
	linttest.Run(t, "testdata/src/errcheck_defer", "flowdiff/internal/flowlog/deferpkg", checks.ErrCheck)
}

func TestErrCheckDeferredInEntryPoints(t *testing.T) {
	linttest.Run(t, "testdata/src/errcheck_defer", "flowdiff/cmd/deferpkg", checks.ErrCheck)
}

func TestErrCheckDeferredOutOfScope(t *testing.T) {
	linttest.RunExpectNone(t, "testdata/src/errcheck_defer", "flowdiff/internal/stats/deferpkg", checks.ErrCheck)
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "testdata/src/ctxflow", "flowdiff/internal/ctxfix", checks.CtxFlow)
}

// cmd/ and examples are where root contexts belong: out of scope.
func TestCtxFlowScopedToLibraryCode(t *testing.T) {
	linttest.RunExpectNone(t, "testdata/src/ctxflow", "flowdiff/cmd/ctxfix", checks.CtxFlow)
}

// The deprecation policy of the context-first redesign: an exported
// *Context name in the root package must carry a Deprecated: doc
// paragraph (the legacy-forwarder idiom) — new spellings are flagged.
func TestCtxFlowDeprecatedForwarders(t *testing.T) {
	linttest.Run(t, "testdata/src/ctxflow_root", "flowdiff", checks.CtxFlow)
}

// The policy binds the public boundary only: the same code under
// internal/ names its functions however it likes.
func TestCtxFlowDeprecatedForwardersScopedToRoot(t *testing.T) {
	linttest.RunExpectNone(t, "testdata/src/ctxflow_root", "flowdiff/internal/ctxfix", checks.CtxFlow)
}

func TestSentinelErr(t *testing.T) {
	linttest.Run(t, "testdata/src/sentinelerr", "flowdiff", checks.SentinelErr)
}

// The sentinel contract binds the public boundary only — the exact
// root package path, not internal packages.
func TestSentinelErrScopedToRootPackage(t *testing.T) {
	linttest.RunExpectNone(t, "testdata/src/sentinelerr", "flowdiff/internal/rootfix", checks.SentinelErr)
}

func TestSpawnJoin(t *testing.T) {
	linttest.Run(t, "testdata/src/spawnjoin", "flowdiff/internal/sjfix", checks.SpawnJoin)
}

func TestSpawnJoinScopedToProductionTree(t *testing.T) {
	linttest.RunExpectNone(t, "testdata/src/spawnjoin", "flowdiff/examples/sjfix", checks.SpawnJoin)
}

func TestObsSpan(t *testing.T) {
	saved := checks.ObsSpanRoots
	checks.ObsSpanRoots = map[string][]string{
		"flowdiff/internal/obsfix.GoodContext": {"fix.good", "fix.stage"},
		"flowdiff/internal/obsfix.BareContext": {"fix.bare", "fix.missing"},
	}
	defer func() { checks.ObsSpanRoots = saved }()
	linttest.RunMulti(t, []linttest.TestPackage{
		{Dir: "testdata/src/obsfake", Path: "flowdiff/internal/obs"},
		{Dir: "testdata/src/obsspan", Path: "flowdiff/internal/obsfix"},
	}, checks.ObsSpan)
}

// Span detection matches the registry's full import path: the same
// shapes against an obs stand-in at a foreign path stay silent.
func TestObsSpanMatchesRealRegistryPathOnly(t *testing.T) {
	linttest.RunMulti(t, []linttest.TestPackage{
		{Dir: "testdata/src/obsfake", Path: "example.com/obs"},
		{Dir: "testdata/src/obsspan_outofscope", Path: "example.com/obsfix"},
	}, checks.ObsSpan)
}

func TestDetOrder(t *testing.T) {
	saved := checks.DetOrderRoots
	checks.DetOrderRoots = []string{
		"flowdiff/internal/dofix.Root",
		"flowdiff/internal/dofix.SortedRoot",
		"flowdiff/internal/dofix.Consume",
		"flowdiff/internal/dofix.FieldRoot",
	}
	defer func() { checks.DetOrderRoots = saved }()
	linttest.Run(t, "testdata/src/detorder", "flowdiff/internal/dofix", checks.DetOrder)
}

// With the real root table (none of which exist in the fixture) the
// whole package sits outside every root's cone: silent.
func TestDetOrderQuietOutsideRootCones(t *testing.T) {
	linttest.RunExpectNone(t, "testdata/src/detorder", "flowdiff/internal/dofix", checks.DetOrder)
}

// The whole suite over every testdata package at once must reproduce
// exactly the union of the golden diagnostics — analyzers must not
// interfere with each other.
func TestSuiteDisjoint(t *testing.T) {
	linttest.Run(t, "testdata/src/wallclock", "flowdiff/internal/simnet/clockpkg", checks.All()...)
}
