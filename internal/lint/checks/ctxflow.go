package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"flowdiff/internal/lint"
)

// CtxFlow guards the context-plumbing contract of the public API: every
// *Context entry point must thread its ctx through to every
// context-accepting callee it reaches, and library code must never
// construct its own root context. Concretely, in the root package and
// under internal/:
//
//   - context.Background()/context.TODO() constructed while a ctx
//     parameter is lexically in scope is a dropped context;
//   - outside ctx scope, a fresh root context is allowed only in the
//     documented wrapper idiom — passed directly as a call argument
//     (`func Foo() { return FooContext(context.Background(), ...) }`);
//   - a ctx-carrying function calling a context-less callee that
//     (transitively, via the module call graph) roots a fresh
//     Background into a context-accepting function drops its ctx just
//     as surely — the *Context variant should be called instead.
//
// In the root package only, it additionally enforces the deprecation
// policy of the context-first API redesign: an exported function or
// method named *Context may exist only as a documented legacy
// forwarder — its doc comment must carry a "Deprecated:" paragraph
// pointing at the canonical short name. New context-taking API takes
// ctx under the short name directly; a fresh *Context spelling without
// the deprecation marker is flagged.
//
// cmd/ and examples are out of scope: a main function is exactly where
// root contexts belong.
var CtxFlow = &lint.Analyzer{
	Name:          "ctxflow",
	Doc:           "flags dropped contexts: context.Background()/TODO() in library code outside the wrapper idiom, ctx-carrying functions calling wrappers that root their own context, and new exported *Context names outside the deprecated-forwarder idiom",
	SkipTestFiles: true,
	NeedsFacts:    true,
	Run:           runCtxFlow,
}

func runCtxFlow(pass *lint.Pass) {
	if pass.Pkg == nil {
		return
	}
	path := pass.Pkg.Path()
	if path != "flowdiff" && !inScope(path, "flowdiff/internal") {
		return
	}
	if path == "flowdiff" {
		checkDeprecatedForwarders(pass)
	}

	// Syntactic rules: fresh root contexts.
	inspectWithStack(pass, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isCtxRootCall(pass, call) {
			return true
		}
		name := call.Fun.(*ast.SelectorExpr).Sel.Name
		if ctxInScope(pass, stack) {
			pass.Reportf(call.Pos(), "context.%s() constructed while a ctx parameter is in scope: thread the existing ctx instead", name)
			return true
		}
		if !directCallArg(call, stack) {
			pass.Reportf(call.Pos(), "context.%s() in library code outside the wrapper idiom: accept a ctx parameter or pass the fresh context directly to the *Context variant", name)
		}
		return true
	})

	// Interprocedural rule: ctx-carrying functions must not call
	// context-less callees that root their own Background downstream.
	if pass.Facts == nil || pass.Graph == nil {
		return
	}
	pf := pass.Facts.Package(path)
	if pf == nil {
		return
	}
	for _, s := range pf.Funcs {
		if !s.HasCtxParam {
			continue
		}
		for i := range s.Calls {
			c := &s.Calls[i]
			if c.ValueRef || c.Callee == "" || c.CalleeHasCtx {
				continue
			}
			if pass.Facts.Func(c.Callee) == nil || !pass.Graph.NeedsCtx(c.Callee) {
				continue
			}
			root := pass.Graph.CtxRoot(c.Callee)
			if root == c.Callee {
				pass.Reportf(c.Pos, "call to %s drops ctx: it roots its own context.Background(); call the *Context variant or thread ctx", c.CalleeName)
			} else {
				pass.Reportf(c.Pos, "call to %s drops ctx: it reaches %s, which roots its own context.Background(); call the *Context variant or thread ctx", c.CalleeName, root)
			}
		}
	}
}

// checkDeprecatedForwarders enforces the root package's deprecation
// policy: every exported *Context function or method must be a
// documented legacy forwarder (doc comment carrying "Deprecated:").
// The canonical public API is context-first under the short names; a
// new *Context spelling without the marker is a policy violation.
func checkDeprecatedForwarders(pass *lint.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			name := fn.Name.Name
			if !ast.IsExported(name) || name == "Context" || !strings.HasSuffix(name, "Context") {
				continue
			}
			if hasDeprecationParagraph(fn.Doc) {
				continue
			}
			pass.Reportf(fn.Name.Pos(), "exported %s outside the deprecated-forwarder idiom: the public API is context-first — put ctx on %s and keep %s only as a forwarder whose doc carries a Deprecated: paragraph", name, strings.TrimSuffix(name, "Context"), name)
		}
	}
}

// hasDeprecationParagraph reports whether doc contains a conventional
// deprecation marker: a line beginning "Deprecated:" (go/doc's
// definition), not merely the word appearing mid-sentence.
func hasDeprecationParagraph(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}

// isCtxRootCall reports whether call is context.Background() or
// context.TODO().
func isCtxRootCall(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}

// ctxInScope reports whether any enclosing function on the stack takes a
// context.Context parameter.
func ctxInScope(pass *lint.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var sig *types.Signature
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			if obj, ok := pass.ObjectOf(fn.Name).(*types.Func); ok {
				sig, _ = obj.Type().(*types.Signature)
			}
		case *ast.FuncLit:
			sig, _ = pass.TypeOf(fn).(*types.Signature)
		default:
			continue
		}
		if sig == nil {
			continue
		}
		params := sig.Params()
		for j := 0; j < params.Len(); j++ {
			if isCtxType(params.At(j).Type()) {
				return true
			}
		}
	}
	return false
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// directCallArg reports whether call appears directly as an argument of
// its parent call expression — the wrapper idiom position.
func directCallArg(call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, arg := range parent.Args {
		if ast.Unparen(arg) == call {
			return true
		}
	}
	return false
}
