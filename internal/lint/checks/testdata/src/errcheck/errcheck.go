// Seeded violations for the errcheck analyzer: operator-facing entry
// points must not drop errors on the floor.
package errcheck

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func twoValues() (int, error) { return 0, nil }

func pureValue() int { return 7 }

func discards() {
	mayFail()   // want "error returned by mayFail is discarded"
	twoValues() // want "error returned by twoValues is discarded"
	pureValue()
}

func handledOK() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail()
	return nil
}

func streamsOK(f *os.File) {
	fmt.Fprintln(os.Stderr, "usage: ...")
	fmt.Fprintf(os.Stdout, "result\n")
	fmt.Println("hello")
	var b strings.Builder
	b.WriteString("never fails")
	fmt.Fprintln(f, "to a real file") // want "error returned by fmt.Fprintln is discarded"
}
