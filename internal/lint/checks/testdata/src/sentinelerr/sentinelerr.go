// Seeds for the sentinelerr analyzer: errors crossing exported
// functions of the root package with and without sentinel identities.
package flowdiff

import (
	"errors"
	"fmt"
	"os"
)

// ErrThing is the package sentinel.
var ErrThing = errors.New("thing")

func helperBad() error  { return errors.New("no identity") }
func helperGood() error { return fmt.Errorf("wrap: %w", ErrThing) }

// ExportedAdHoc exports an identity-less error.
func ExportedAdHoc() error {
	return errors.New("nope") // want "error without a sentinel identity crosses the public API"
}

// ExportedNoVerb wraps nothing.
func ExportedNoVerb(n int) error {
	return fmt.Errorf("bad %d", n) // want "error without a sentinel identity crosses the public API"
}

// ExportedPropagatesBad re-wraps a callee whose chain never carries a
// sentinel.
func ExportedPropagatesBad() error {
	if err := helperBad(); err != nil {
		return fmt.Errorf("op: %w", err) // want "error propagated from flowdiff.helperBad crosses the public API"
	}
	return nil
}

// ExportedPropagatesGood re-wraps a sentinel-wrapped chain: clean.
func ExportedPropagatesGood() error {
	if err := helperGood(); err != nil {
		return fmt.Errorf("op: %w", err)
	}
	return nil
}

// ExportedSentinel wraps the sentinel directly: clean.
func ExportedSentinel() error { return fmt.Errorf("op: %w", ErrThing) }

// ExportedStdlib propagates an out-of-module error: trusted at the fact
// boundary, no finding.
func ExportedStdlib(path string) error {
	_, err := os.Open(path)
	if err != nil {
		return err
	}
	return nil
}

// internalAdHoc is not the public boundary.
func internalAdHoc() error { return errors.New("fine here") }

// Pub is an exported receiver: its methods are public API.
type Pub struct{}

// Fail exports an identity-less error through a method.
func (p *Pub) Fail() error {
	return errors.New("method") // want "error without a sentinel identity crosses the public API"
}

// hidden is unexported: its exported methods are not public API.
type hidden struct{}

func (h *hidden) Fail() error { return errors.New("unexported receiver") }
