// Seeds for the detorder analyzer: map-iteration order crossing
// function boundaries on paths reachable from determinism roots. The
// root list is swapped in by the test.
package dofix

import "sort"

// keys returns map keys in iteration order (the fact the analyzer
// follows interprocedurally; mapiter flags the append site itself).
func keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// Root returns the map-ordered result unsorted: the order reaches the
// root's own output.
func Root(m map[string]int) []string {
	return keys(m) // want "map-iteration order reaches the output of determinism root"
}

// SortedRoot rinses the order before returning: clean.
func SortedRoot(m map[string]int) []string {
	ks := keys(m)
	sort.Strings(ks)
	return ks
}

// Consume folds the map-ordered slice into its result without sorting.
func Consume(m map[string]int) string {
	ks := keys(m) // want "result of flowdiff/internal/dofix.keys is in map-iteration order"
	out := ""
	for _, k := range ks {
		out += k
	}
	return out
}

type report struct{ items []string }

// fill appends to a struct field inside map iteration — the emission
// mapiter's ident-only check cannot see.
func fill(r *report, m map[string]int) {
	for k := range m {
		r.items = append(r.items, k) // want "append to field \"items\" inside map iteration"
	}
}

// FieldRoot reaches fill.
func FieldRoot(m map[string]int) []string {
	var r report
	fill(&r, m)
	return r.items
}

// unreachable is outside every root's cone: detorder stays quiet even
// though the order fact holds (mapiter would still flag keys itself).
func unreachable(m map[string]int) []string {
	return keys(m)
}
