// Seeded violations for the locksafe analyzer: copied locks guard
// nothing, and go closures must not write captured state unguarded.
package locksafe

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func copyParam(g guarded) int { // want "parameter receives guarded.mu: sync.Mutex by value"
	return g.n
}

func ptrParamOK(g *guarded) int {
	return g.n
}

func assignCopy(g *guarded) {
	cp := *g // want "assignment copies guarded.mu: sync.Mutex by value"
	cp.n++
}

func freshLiteralOK() *guarded {
	g := guarded{n: 1}
	return &g
}

func passByValue(g *guarded) int {
	return copyParam(*g) // want "call passes guarded.mu: sync.Mutex by value"
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range value copies guarded.mu: sync.Mutex by value"
		total += g.n
	}
	return total
}

func wgParam(wg sync.WaitGroup) { // want "parameter receives sync.WaitGroup by value"
	wg.Wait()
}

func goUnguarded() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n++ // want "goroutine writes captured variable n without a lock in scope"
		close(done)
	}()
	<-done
	return n
}

func goGuardedOK(mu *sync.Mutex) int {
	n := 0
	done := make(chan struct{})
	go func() {
		mu.Lock()
		n++
		mu.Unlock()
		close(done)
	}()
	<-done
	return n
}

func goIndexedOK(out []int) {
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = i * 2
		}()
	}
	wg.Wait()
}

func goLocalOK() {
	go func() {
		local := 0
		local++
		_ = local
	}()
}

// RWMutex-bearing structs (the memoizing-resolver pattern) are guarded
// the same way plain Mutex holders are.
type cache struct {
	mu sync.RWMutex
	m  map[string]int
}

func rwCopyParam(c cache) int { // want "parameter receives cache.mu: sync.RWMutex by value"
	return len(c.m)
}

func rwGuardedOK(c *cache, k string) int {
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		return v
	}
	c.mu.Lock()
	c.m[k] = 1
	c.mu.Unlock()
	return 1
}
