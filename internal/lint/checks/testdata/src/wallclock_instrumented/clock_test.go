// Test files in the instrumented scope are exempt: they drive real
// concurrency (goroutine settling, cancellation timing) and may sleep
// on the host clock. No diagnostics expected anywhere in this file.
package clockpkg

import "time"

func settle() {
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}
