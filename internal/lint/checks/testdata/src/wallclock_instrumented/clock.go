// Seeded violations for the wallclock analyzer's instrumented scope:
// production code in the root flowdiff and internal/parallel packages
// must route clock reads through the injectable obs.Clock.
package clockpkg

import "time"

func badNow() time.Time {
	return time.Now() // want "time.Now reads the wall clock directly: instrumented stages must go through the injectable obs.Clock"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock directly"
}

func goodVirtualTime(now time.Duration) time.Duration {
	return now + 3*time.Millisecond
}
