// The span detection matches obs.Span by full import path: the same
// shapes against an obs stand-in at a foreign path must stay silent.
package obsfix

import (
	"context"

	"example.com/obs"
)

// Dynamic would be a finding if example.com/obs were the real registry.
func Dynamic(ctx context.Context, name string) {
	defer obs.Span(ctx, name).End()
}

// DupA opens the same name as DupB.
func DupA(ctx context.Context) {
	defer obs.Span(ctx, "foreign.same").End()
}

// DupB duplicates DupA.
func DupB(ctx context.Context) {
	defer obs.Span(ctx, "foreign.same").End()
}
