// Seeds for the ctxflow analyzer: fresh root contexts in library code
// and ctx-carrying functions that call context-dropping wrappers.
package ctxfix

import "context"

func sink(ctx context.Context) error { return ctx.Err() }

// DoContext is the proper ctx-threading entry point.
func DoContext(ctx context.Context) error { return sink(ctx) }

// Do is the documented wrapper idiom: Background passed directly to the
// *Context variant from a function with no ctx of its own. Allowed.
func Do() error { return DoContext(context.Background()) }

// Drop has a ctx in scope and constructs another one anyway.
func Drop(ctx context.Context) error {
	return sink(context.Background()) // want "constructed while a ctx parameter is in scope"
}

// DropInClosure: the closure itself has no ctx parameter, but the
// enclosing function does — still a dropped context.
func DropInClosure(ctx context.Context) error {
	f := func() error {
		return sink(context.Background()) // want "constructed while a ctx parameter is in scope"
	}
	return f()
}

// Stash roots a context outside the wrapper-argument position.
func Stash() context.Context {
	c := context.TODO() // want "in library code outside the wrapper idiom"
	return c
}

// Indirect carries a ctx but calls the context-less wrapper, dropping it.
func Indirect(ctx context.Context) error {
	return Do() // want "call to Do drops ctx: it roots its own context"
}

// hop is context-less and reaches Do's Background root transitively.
func hop() error { return Do() }

// Deep carries a ctx and drops it through the chain hop -> Do.
func Deep(ctx context.Context) error {
	return hop() // want "call to hop drops ctx: it reaches flowdiff/internal/ctxfix.Do, which roots"
}

// Threaded plumbs its ctx everywhere: clean.
func Threaded(ctx context.Context) error {
	if err := sink(ctx); err != nil {
		return err
	}
	return DoContext(ctx)
}
