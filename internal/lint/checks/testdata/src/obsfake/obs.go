// Package obs is a minimal stand-in for flowdiff/internal/obs, loaded
// under that import path so the summary layer's span detection (which
// matches obs.Span and Registry.Span by FullName) fires in goldens.
// The bodies deliberately do not forward to each other: the stand-in
// must not open spans of its own.
package obs

import "context"

// SpanTimer mimics the real span handle.
type SpanTimer struct{}

// End stops the timer.
func (t *SpanTimer) End() {}

// Registry mimics the real metrics registry.
type Registry struct{}

// Span starts a stage timer.
func (r *Registry) Span(name string) *SpanTimer { return &SpanTimer{} }

// From extracts the context's registry.
func From(ctx context.Context) *Registry { return &Registry{} }

// Span starts a stage timer against the context's registry.
func Span(ctx context.Context, name string) *SpanTimer { return &SpanTimer{} }
