// Seeded violations for the wallclock analyzer: the simulator and
// signature packages must be pure functions of the log's virtual clock.
package wallclock

import (
	"math/rand"
	"time"
)

func badNow() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func badTimer() *time.Timer {
	return time.NewTimer(time.Second) // want "time.NewTimer reads the wall clock"
}

func badSleep() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func badGlobalRand() int {
	return rand.Intn(10) // want "global rand.Intn is implicitly seeded"
}

func goodSeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func goodVirtualTime(now time.Duration) time.Duration {
	return now + 3*time.Millisecond
}
