// Seeds for the spawnjoin analyzer: go statements with and without a
// provable join.
package sjfix

import "sync"

func worker() {}

// Named spawns a function the analyzer cannot see into.
func Named() {
	go worker() // want "go statement calls a named function"
}

// Balanced is the canonical Add-before / Done-inside / Wait-after shape.
func Balanced(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// PointerWG joins through a *sync.WaitGroup: same proof.
func PointerWG() {
	wg := &sync.WaitGroup{}
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// NoWait never waits after the spawn.
func NoWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "goroutine has no provable join"
		defer wg.Done()
	}()
}

// NoAdd waits on a counter nothing incremented before the spawn.
func NoAdd() {
	var wg sync.WaitGroup
	go func() { // want "goroutine has no provable join"
		defer wg.Done()
	}()
	wg.Wait()
}

// Drained joins through a channel receive.
func Drained() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}

// Ranged joins through close + range.
func Ranged() int {
	ch := make(chan int)
	go func() {
		ch <- 1
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// Undrained sends on a channel the spawner never receives from.
func Undrained() chan int {
	ch := make(chan int)
	go func() { ch <- 1 }() // want "goroutine has no provable join"
	return ch
}

// Server spawns in Serve and joins in Close: the field-held WaitGroup
// proof spans functions.
type Server struct{ wg sync.WaitGroup }

// Serve spawns the worker goroutine.
func (s *Server) Serve() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
	}()
}

// Close joins it.
func (s *Server) Close() {
	s.wg.Wait()
}

// Leaky has a field WaitGroup that nothing ever waits on.
type Leaky struct{ wg sync.WaitGroup }

// Spawn has an Add and a Done but no Wait anywhere in the package.
func (l *Leaky) Spawn() {
	l.wg.Add(1)
	go func() { // want "goroutine has no provable join"
		defer l.wg.Done()
	}()
}
