// Seeded violations for the floatcmp analyzer: statistics comparison
// must be epsilon-based, never bit-exact.
package floatcmp

func eq(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func neq(a, b float64) bool {
	return a != b // want "floating-point != comparison"
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want "floating-point == comparison"
}

func nanIdiomOK(x float64) bool {
	return x != x
}

func orderingOK(a, b float64) bool {
	return a < b || a >= b
}

func intEqOK(a, b int) bool {
	return a == b
}

var badKey map[float64]int // want "map keyed by floating-point values"

func makesBadKey() map[float64]string { // want "map keyed by floating-point values"
	return make(map[float64]string) // want "map keyed by floating-point values"
}

var goodKey map[string]float64
