// Seeded violations for the mapiter analyzer: map iteration order must
// never leak into results.
package mapiter

import "sort"

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside map iteration"
	}
	return out
}

func appendThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func appendThenSortSlice(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sendOnChannel(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "send on channel inside map iteration"
	}
}

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation into sum inside map iteration"
	}
	return sum
}

func intAccumOK(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

func stringConcat(m map[string]string) string {
	var s string
	for _, v := range m {
		s += v // want "string concatenation into s inside map iteration"
	}
	return s
}

func indexWriteOK(m map[string]int) map[string]int {
	out := make(map[string]int)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// The worker-local merge pattern: additive integer accumulation into a
// key-indexed map entry commutes, so iteration order cannot leak.
func indexAccumOK(m map[string]int) map[string]int {
	total := make(map[string]int)
	for k, v := range m {
		total[k] += v
	}
	return total
}

func localAppendOK(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

func sliceRangeOK(xs []string, out []string) []string {
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
