// Seeds for the deferred-discard extension of errcheck: closes of
// write-side resources must not drop their error, while read-side
// closes stay conventional.
package deferpkg

import (
	"bufio"
	"net"
	"os"
)

// WriteOut defers Close on a file opened for writing: the close carries
// the final flush.
func WriteOut(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "error returned by deferred f.Close is discarded"
	_, err = f.WriteString("x")
	return err
}

// AppendOut goes through os.OpenFile: same write-side binding.
func AppendOut(path string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want "error returned by deferred f.Close is discarded"
	_, err = f.WriteString("x")
	return err
}

// ReadIn defers Close on a read-only file: exempt, nothing buffered.
func ReadIn(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 8)
	_, err = f.Read(buf)
	return err
}

// Buffered defers Flush on a bufio.Writer.
func Buffered(f *os.File) {
	bw := bufio.NewWriter(f)
	defer bw.Flush() // want "error returned by deferred bw.Flush is discarded"
	_, _ = bw.WriteString("x")
}

// SegWriter mimics the flow-log segment writer: an in-module type whose
// Close finalizes buffered output.
type SegWriter struct{}

// Close pretends to flush.
func (w *SegWriter) Close() error { return nil }

// Segment defers Close on the in-module writer.
func Segment() {
	w := &SegWriter{}
	defer w.Close() // want "error returned by deferred w.Close is discarded"
}

// SegReader is the read-side counterpart: exempt by name.
type SegReader struct{}

// Close has nothing to flush.
func (r *SegReader) Close() error { return nil }

// ReadSegment defers Close on the in-module reader: exempt.
func ReadSegment() {
	r := &SegReader{}
	defer r.Close()
}

// Conn closes a connection: not a buffered write-side resource.
func Conn(c net.Conn) {
	defer c.Close()
}

// Explicit closes with the error checked: no defer, no finding.
func Explicit(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString("x"); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
