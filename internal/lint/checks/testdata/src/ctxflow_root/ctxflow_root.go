// Seeds for ctxflow's root-package deprecation-policy rule: exported
// *Context names must be documented legacy forwarders.
package flowdiff

import "context"

// Run is the canonical context-first entry point.
func Run(ctx context.Context, n int) error { return ctx.Err() }

// RunContext is a legacy spelling of Run.
//
// Deprecated: the public API is context-first — call Run directly.
func RunContext(ctx context.Context, n int) error { return Run(ctx, n) }

// BuildContext is a fresh *Context spelling with no deprecation marker:
// the redesign forbids minting these.
func BuildContext(ctx context.Context) error { return ctx.Err() } // want "exported BuildContext outside the deprecated-forwarder idiom"

// Engine is an exported receiver for the method-side of the rule.
type Engine struct{}

// Start is the canonical context-first method.
func (e *Engine) Start(ctx context.Context) error { return ctx.Err() }

// StartContext is a legacy spelling of Start.
//
// Deprecated: call Start directly.
func (e *Engine) StartContext(ctx context.Context) error { return e.Start(ctx) }

// StopContext lacks the Deprecated: paragraph.
func (e *Engine) StopContext(ctx context.Context) error { return ctx.Err() } // want "exported StopContext outside the deprecated-forwarder idiom"

// withContext is unexported: naming is the implementer's business.
func withContext(ctx context.Context) error { return ctx.Err() }

// Context alone is not a *Context variant of anything.
func Context() string { return "not a forwarder" }
