// Seeds for the obsspan analyzer: dynamic names, duplicate names, and
// instrumented roots that do or do not reach their promised spans. The
// root table is swapped in by the test.
package obsfix

import (
	"context"

	"flowdiff/internal/obs"
)

// GoodContext reaches both of its promised spans (one transitively).
func GoodContext(ctx context.Context) {
	defer obs.Span(ctx, "fix.good").End()
	stage(ctx)
}

func stage(ctx context.Context) {
	defer obs.Span(ctx, "fix.stage").End()
}

// BareContext promises fix.missing but never reaches an open of it.
func BareContext(ctx context.Context) { // want "BareContext no longer reaches an open of span \"fix.missing\""
	defer obs.Span(ctx, "fix.bare").End()
}

// Dynamic passes a non-constant span name.
func Dynamic(ctx context.Context, name string) {
	defer obs.Span(ctx, name).End() // want "span name is not a compile-time constant"
}

// Dup reopens a name stage already owns.
func Dup(ctx context.Context) {
	defer obs.Span(ctx, "fix.stage").End() // want "span name \"fix.stage\" is already opened by flowdiff/internal/obsfix.stage"
}

// RegistryDup duplicates through the Registry entry point too.
func RegistryDup(ctx context.Context) {
	sp := obs.From(ctx).Span("fix.good") // want "span name \"fix.good\" is already opened by flowdiff/internal/obsfix.GoodContext"
	sp.End()
}
