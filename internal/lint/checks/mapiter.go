package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"flowdiff/internal/lint"
)

// MapIter guards the sharded≡serial guarantee: any output assembled while
// ranging over a map inherits Go's randomized iteration order unless the
// keys or the result are sorted. It flags, inside `for ... range m` where
// m is a map:
//
//   - append to a slice declared outside the loop, unless the enclosing
//     function later sorts that slice (sort.Slice/Sort/Strings/...);
//   - a channel send (downstream receivers observe map order);
//   - op-assignment (+=, ...) to an outer float or string accumulator
//     (float addition is not associative; string concat is ordered —
//     integer accumulation commutes and is exempt).
//
// Writes indexed by the iteration key (out[k] = v) are order-independent
// and never flagged.
var MapIter = &lint.Analyzer{
	Name: "mapiter",
	Doc:  "flags map iteration whose order leaks into results (append/send/float-or-string accumulation without a dominating sort)",
	Run:  runMapIter,
}

func runMapIter(pass *lint.Pass) {
	inspectWithStack(pass, func(n ast.Node, stack []ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := typeAsMap(pass, rng.X); !isMap {
			return true
		}
		fnBody := enclosingFuncBody(stack)
		ast.Inspect(rng.Body, func(inner ast.Node) bool {
			switch s := inner.(type) {
			case *ast.SendStmt:
				pass.Reportf(s.Pos(), "send on channel inside map iteration: receivers observe nondeterministic order")
			case *ast.AssignStmt:
				checkMapIterAssign(pass, s, rng, fnBody)
			}
			return true
		})
		return true
	})
}

func typeAsMap(pass *lint.Pass, e ast.Expr) (*types.Map, bool) {
	t := pass.TypeOf(e)
	if t == nil {
		return nil, false
	}
	m, ok := t.Underlying().(*types.Map)
	return m, ok
}

func checkMapIterAssign(pass *lint.Pass, s *ast.AssignStmt, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	// x = append(x, ...) where x is declared outside the range.
	if s.Tok == token.ASSIGN && len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if id, ok := s.Lhs[0].(*ast.Ident); ok && isAppendCall(pass, s.Rhs[0]) {
			if declaredOutside(pass, id, rng, rng) && !sortedAfter(pass, fnBody, rng, id) {
				pass.Reportf(s.Pos(), "append to %s inside map iteration without sorting it afterwards: result order is nondeterministic", id.Name)
			}
			return
		}
	}
	// Op-assign accumulation into an outer float/string.
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		return
	}
	for _, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || !declaredOutside(pass, id, rng, rng) {
			continue
		}
		t := pass.TypeOf(id)
		switch {
		case isFloat(t):
			pass.Reportf(s.Pos(), "floating-point accumulation into %s inside map iteration: float addition is not associative, so the result depends on iteration order", id.Name)
		case isString(t):
			pass.Reportf(s.Pos(), "string concatenation into %s inside map iteration: result depends on iteration order", id.Name)
		}
	}
}

func isAppendCall(pass *lint.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(id)
	if b, ok := obj.(*types.Builtin); ok {
		return b.Name() == "append"
	}
	// Fall back to the name when type info is missing (broken package).
	return obj == nil && id.Name == "append"
}

// sortedAfter reports whether, somewhere after the range statement in the
// same function body, the slice named by id is passed to a sort call —
// the "dominating sort" that makes map-order appends safe.
func sortedAfter(pass *lint.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, id *ast.Ident) bool {
	if fnBody == nil {
		return false
	}
	target := pass.ObjectOf(id)
	if target == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found || n == nil || n.End() <= rng.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if !isSortCall(pass, call.Fun) {
			return true
		}
		arg := call.Args[0]
		// Accept both sort.Slice(xs, ...) and sort.Sort(byFoo(xs)).
		ast.Inspect(arg, func(a ast.Node) bool {
			if aid, ok := a.(*ast.Ident); ok && pass.ObjectOf(aid) == target {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

func isSortCall(pass *lint.Pass, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(pkgID)
	pkgName, ok := obj.(*types.PkgName)
	if !ok {
		return false
	}
	switch pkgName.Imported().Path() {
	case "sort", "slices":
		return true
	}
	return false
}
