package checks

import (
	"go/ast"
	"go/types"

	"flowdiff/internal/lint"
)

// LockSafe guards the worker-pool plumbing: a copied sync.Mutex or
// sync.WaitGroup silently guards nothing, and a `go` closure writing to
// captured shared state without a lock in scope is a data race the race
// detector only catches when a test happens to exercise the interleaving.
//
// Check 1 (copylocks-lite): by-value copies of lock-containing structs in
// assignments, call arguments, by-value parameters/receivers, and range
// value variables. Fresh composite literals and new(...) are fine.
//
// Check 2: inside `go func() { ... }()`, direct writes (assign, ++/--) to
// a variable captured from an enclosing scope, unless the closure body
// acquires a sync lock (Lock/RLock) — element-indexed writes like
// out[i] = v are the sanctioned sharding pattern and are not flagged.
var LockSafe = &lint.Analyzer{
	Name: "locksafe",
	Doc:  "flags by-value copies of lock-containing structs and unguarded writes to captured state in go closures",
	Run:  runLockSafe,
}

func runLockSafe(pass *lint.Pass) {
	inspectWithStack(pass, func(n ast.Node, stack []ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			checkLockCopyAssign(pass, s)
		case *ast.CallExpr:
			checkLockCopyArgs(pass, s)
		case *ast.FuncDecl:
			checkLockParams(pass, s.Recv)
			checkLockParams(pass, s.Type.Params)
		case *ast.FuncLit:
			checkLockParams(pass, s.Type.Params)
		case *ast.RangeStmt:
			if s.Value != nil && lockPath(pass.TypeOf(s.Value)) != "" {
				pass.Reportf(s.Value.Pos(), "range value copies %s by value: iterate by index or over pointers", lockPath(pass.TypeOf(s.Value)))
			}
		case *ast.GoStmt:
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				checkGoClosure(pass, lit)
			}
		}
		return true
	})
}

// lockPath returns a human-readable path to the sync primitive embedded
// in t ("sync.Mutex", "Monitor.mu: sync.Mutex", ...), or "" when t holds
// none. Pointers break the containment: *sync.Mutex copies fine.
func lockPath(t types.Type) string {
	return lockPathDepth(t, 0)
}

func lockPathDepth(t types.Type, depth int) string {
	if t == nil || depth > 10 {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if p := lockPathDepth(f.Type(), depth+1); p != "" {
				return fieldPrefix(t) + f.Name() + ": " + p
			}
		}
	case *types.Array:
		return lockPathDepth(u.Elem(), depth+1)
	}
	return ""
}

func fieldPrefix(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "."
	}
	return ""
}

// freshValue reports whether e constructs a new value rather than copying
// an existing one (composite literal, new(...), or a conversion of one).
func freshValue(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		// new(T) and T{...} conversions; function calls returning a lock
		// by value are the callee's bug and flagged at its signature.
		return true
	case *ast.UnaryExpr:
		return v.Op.String() == "&"
	case *ast.ParenExpr:
		return freshValue(v.X)
	}
	return false
}

func checkLockCopyAssign(pass *lint.Pass, s *ast.AssignStmt) {
	for i, rhs := range s.Rhs {
		if len(s.Rhs) != len(s.Lhs) {
			break // tuple assignment from a call: covered by signatures
		}
		if lhs, ok := s.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
			continue // a blank assign evaluates, it does not copy
		}
		if freshValue(rhs) {
			continue
		}
		if _, isStar := rhs.(*ast.StarExpr); !isStar {
			if _, isIdent := rhs.(*ast.Ident); !isIdent {
				if _, isSel := rhs.(*ast.SelectorExpr); !isSel {
					continue
				}
			}
		}
		if p := lockPath(pass.TypeOf(rhs)); p != "" {
			pass.Reportf(s.Rhs[i].Pos(), "assignment copies %s by value: the copy guards nothing; use a pointer", p)
		}
	}
}

func checkLockCopyArgs(pass *lint.Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if freshValue(arg) {
			continue
		}
		switch arg.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		if p := lockPath(pass.TypeOf(arg)); p != "" {
			pass.Reportf(arg.Pos(), "call passes %s by value: the callee receives a detached copy; pass a pointer", p)
		}
	}
}

func checkLockParams(pass *lint.Pass, fields *ast.FieldList) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		if p := lockPath(pass.TypeOf(f.Type)); p != "" {
			pass.Reportf(f.Type.Pos(), "parameter receives %s by value: locking the copy does not lock the original; use a pointer", p)
		}
	}
}

// checkGoClosure flags unguarded writes to captured variables inside a
// goroutine launched with a function literal.
func checkGoClosure(pass *lint.Pass, lit *ast.FuncLit) {
	if closureAcquiresLock(pass, lit) {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				reportCapturedWrite(pass, lit, lhs)
			}
		case *ast.IncDecStmt:
			reportCapturedWrite(pass, lit, s.X)
		}
		return true
	})
}

func reportCapturedWrite(pass *lint.Pass, lit *ast.FuncLit, lhs ast.Expr) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if !declaredOutside(pass, id, lit, lit) {
		return
	}
	pass.Reportf(id.Pos(), "goroutine writes captured variable %s without a lock in scope: guard it with a sync primitive or communicate over a channel", id.Name)
}

// closureAcquiresLock reports whether the closure body calls Lock/RLock
// on a sync primitive (the writes inside are then assumed guarded; the
// race detector remains the ground truth for lock correctness).
func closureAcquiresLock(pass *lint.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return !found
		}
		if fn, ok := pass.ObjectOf(sel.Sel).(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			found = true
		}
		return !found
	})
	return found
}
