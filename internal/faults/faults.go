// Package faults injects the operational problems of the paper's Table I
// (and §V-A) into a running simulation: server-side overheads
// (misconfigured logging, CPU hogs), network loss and congestion,
// application crashes, host/switch shutdowns, firewall blocks, controller
// overload, and unauthorized access. Each injector perturbs exactly the
// observable the corresponding real fault perturbs, so FlowDiff's
// signatures react the way the paper reports.
package faults

import (
	"fmt"
	"time"

	"flowdiff/internal/flowlog"
	"flowdiff/internal/simnet"
	"flowdiff/internal/topology"
	"flowdiff/internal/workload"
)

// Injector applies one fault to a running network/workload.
type Injector interface {
	// Name identifies the fault (Table I row).
	Name() string
	// Apply injects the fault.
	Apply(n *simnet.Network, apps []*workload.App) error
}

// EnableLogging emulates Table I #1: misconfigured "INFO" logging on an
// application server inflates its request processing time, shifting the
// delay distribution.
type EnableLogging struct {
	Host     topology.NodeID
	Overhead time.Duration // default 40 ms
}

// Name implements Injector.
func (f EnableLogging) Name() string { return "misconfigured INFO logging" }

// Apply implements Injector.
func (f EnableLogging) Apply(_ *simnet.Network, apps []*workload.App) error {
	d := f.Overhead
	if d == 0 {
		d = 40 * time.Millisecond
	}
	for _, a := range apps {
		a.SetOverhead(f.Host, d)
	}
	return nil
}

// LinkLoss emulates Table I #2: packet loss (tc netem) on the links
// between two nodes, inflating byte counts (retransmissions) and delays.
type LinkLoss struct {
	A, B topology.NodeID
	Prob float64 // default 0.01
}

// Name implements Injector.
func (f LinkLoss) Name() string { return "packet loss on link" }

// Apply implements Injector.
func (f LinkLoss) Apply(n *simnet.Network, _ []*workload.App) error {
	p := f.Prob
	if p == 0 {
		p = 0.01
	}
	l, ok := n.Topo.LinkBetween(f.A, f.B)
	if !ok {
		return fmt.Errorf("faults: no link %s-%s", f.A, f.B)
	}
	l.LossProb = p
	return nil
}

// PathLoss applies loss on every link of the path between two hosts
// (matching the paper's "1% loss on both links connecting the web and
// application server").
type PathLoss struct {
	From, To topology.NodeID
	Prob     float64
}

// Name implements Injector.
func (f PathLoss) Name() string { return "packet loss on path" }

// Apply implements Injector.
func (f PathLoss) Apply(n *simnet.Network, _ []*workload.App) error {
	p := f.Prob
	if p == 0 {
		p = 0.01
	}
	hops, err := n.Topo.Path(f.From, f.To)
	if err != nil {
		return fmt.Errorf("faults: %w", err)
	}
	for i := 1; i < len(hops); i++ {
		l, ok := n.Topo.LinkBetween(hops[i-1].Node, hops[i].Node)
		if !ok {
			return fmt.Errorf("faults: missing link %s-%s", hops[i-1].Node, hops[i].Node)
		}
		l.LossProb = p
	}
	return nil
}

// CPUHog emulates Table I #3: a background process steals CPU on a host,
// inflating processing time.
type CPUHog struct {
	Host     topology.NodeID
	Overhead time.Duration // default 50 ms
}

// Name implements Injector.
func (f CPUHog) Name() string { return "high CPU background process" }

// Apply implements Injector.
func (f CPUHog) Apply(_ *simnet.Network, apps []*workload.App) error {
	d := f.Overhead
	if d == 0 {
		d = 50 * time.Millisecond
	}
	for _, a := range apps {
		a.SetOverhead(f.Host, d)
	}
	return nil
}

// AppCrash emulates Table I #4: the application process on a host dies;
// the host remains reachable but stops producing dependent flows.
type AppCrash struct {
	Host topology.NodeID
}

// Name implements Injector.
func (f AppCrash) Name() string { return "application crash" }

// Apply implements Injector.
func (f AppCrash) Apply(_ *simnet.Network, apps []*workload.App) error {
	for _, a := range apps {
		a.Crash(f.Host)
	}
	return nil
}

// HostShutdown emulates Table I #5: the host (or VM) goes down entirely.
type HostShutdown struct {
	Host topology.NodeID
}

// Name implements Injector.
func (f HostShutdown) Name() string { return "host/VM shutdown" }

// Apply implements Injector.
func (f HostShutdown) Apply(n *simnet.Network, _ []*workload.App) error {
	node, ok := n.Topo.Node(f.Host)
	if !ok {
		return fmt.Errorf("faults: unknown host %s", f.Host)
	}
	node.Down = true
	n.InvalidateRoutes()
	return nil
}

// FirewallBlock emulates Table I #6: an egress firewall rule blocks
// connections to (host, port).
type FirewallBlock struct {
	Host topology.NodeID
	Port uint16
}

// Name implements Injector.
func (f FirewallBlock) Name() string { return "firewall port block" }

// Apply implements Injector.
func (f FirewallBlock) Apply(_ *simnet.Network, apps []*workload.App) error {
	for _, a := range apps {
		a.BlockPort(f.Host, f.Port)
	}
	return nil
}

// BackgroundTraffic emulates Table I #7: an Iperf-style bulk transfer
// between two hosts congests the shared path — extra flows plus queueing
// delay on every traversed link.
type BackgroundTraffic struct {
	From, To topology.NodeID
	// Flows is how many bulk flows to start (default 20).
	Flows int
	// FlowBytes is the size of each flow (default 10 MB).
	FlowBytes uint64
	// Interval separates flow starts (default 500 ms).
	Interval time.Duration
	// QueueDelay is added to each traversed link's latency (default 2 ms).
	QueueDelay time.Duration
}

// Name implements Injector.
func (f BackgroundTraffic) Name() string { return "iperf background traffic" }

// Apply implements Injector.
func (f BackgroundTraffic) Apply(n *simnet.Network, _ []*workload.App) error {
	flows := f.Flows
	if flows == 0 {
		flows = 20
	}
	bytes := f.FlowBytes
	if bytes == 0 {
		bytes = 10 << 20
	}
	interval := f.Interval
	if interval == 0 {
		interval = 500 * time.Millisecond
	}
	qd := f.QueueDelay
	if qd == 0 {
		qd = 2 * time.Millisecond
	}
	src, ok := n.Topo.Node(f.From)
	if !ok {
		return fmt.Errorf("faults: unknown host %s", f.From)
	}
	dst, ok := n.Topo.Node(f.To)
	if !ok {
		return fmt.Errorf("faults: unknown host %s", f.To)
	}
	hops, err := n.Topo.Path(f.From, f.To)
	if err != nil {
		return fmt.Errorf("faults: %w", err)
	}
	for i := 1; i < len(hops); i++ {
		if l, ok := n.Topo.LinkBetween(hops[i-1].Node, hops[i].Node); ok {
			l.Latency += qd
		}
	}
	start := n.Eng.Now()
	for i := 0; i < flows; i++ {
		key := flowlog.FlowKey{
			Proto: 6, Src: src.Addr, Dst: dst.Addr,
			SrcPort: uint16(5001 + i), DstPort: 5001,
		}
		n.StartFlow(start+time.Duration(i)*interval, simnet.Flow{Key: key, Bytes: bytes})
	}
	return nil
}

// SwitchFailure kills a switch outright.
type SwitchFailure struct {
	Switch topology.NodeID
}

// Name implements Injector.
func (f SwitchFailure) Name() string { return "switch failure" }

// Apply implements Injector.
func (f SwitchFailure) Apply(n *simnet.Network, _ []*workload.App) error {
	node, ok := n.Topo.Node(f.Switch)
	if !ok {
		return fmt.Errorf("faults: unknown switch %s", f.Switch)
	}
	node.Down = true
	if sw, ok := n.Switch(f.Switch); ok {
		sw.Down = true
	}
	// Neighboring switches detect the dead links and report PORT_STATUS,
	// as real OpenFlow switches do.
	for _, l := range n.Topo.LinksAt(f.Switch) {
		peer, _, err := l.Other(f.Switch)
		if err != nil {
			return err
		}
		port, err := l.PortAt(peer)
		if err != nil {
			return err
		}
		n.ReportPortStatus(peer, port, 2 /* OFPPR_MODIFY: link down */)
	}
	n.InvalidateRoutes()
	return nil
}

// ControllerOverload inflates the controller's per-message service time.
type ControllerOverload struct {
	ServiceTime time.Duration // default 20 ms
}

// Name implements Injector.
func (f ControllerOverload) Name() string { return "controller overload" }

// Apply implements Injector.
func (f ControllerOverload) Apply(n *simnet.Network, _ []*workload.App) error {
	d := f.ServiceTime
	if d == 0 {
		d = 20 * time.Millisecond
	}
	n.SetControllerService(d)
	return nil
}

// UnauthorizedAccess starts flows from an attacker host toward a victim
// service it never normally talks to.
type UnauthorizedAccess struct {
	Attacker, Victim topology.NodeID
	Port             uint16
	Flows            int // default 10
}

// Name implements Injector.
func (f UnauthorizedAccess) Name() string { return "unauthorized access" }

// Apply implements Injector.
func (f UnauthorizedAccess) Apply(n *simnet.Network, _ []*workload.App) error {
	flows := f.Flows
	if flows == 0 {
		flows = 10
	}
	a, ok := n.Topo.Node(f.Attacker)
	if !ok {
		return fmt.Errorf("faults: unknown host %s", f.Attacker)
	}
	v, ok := n.Topo.Node(f.Victim)
	if !ok {
		return fmt.Errorf("faults: unknown host %s", f.Victim)
	}
	start := n.Eng.Now()
	for i := 0; i < flows; i++ {
		key := flowlog.FlowKey{
			Proto: 6, Src: a.Addr, Dst: v.Addr,
			SrcPort: uint16(46000 + i), DstPort: f.Port,
		}
		n.StartFlow(start+time.Duration(i)*300*time.Millisecond, simnet.Flow{Key: key, Bytes: 4096})
	}
	return nil
}
