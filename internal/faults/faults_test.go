package faults

import (
	"testing"
	"time"

	"flowdiff/internal/flowlog"
	"flowdiff/internal/simnet"
	"flowdiff/internal/topology"
	"flowdiff/internal/workload"
)

func labSetup(t *testing.T) (*simnet.Network, []*workload.App) {
	t.Helper()
	topo, err := topology.Lab()
	if err != nil {
		t.Fatal(err)
	}
	n, err := simnet.NewNetwork(topo, simnet.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var apps []*workload.App
	for i, spec := range workload.Case5Specs(workload.Case5Params{MeanA: 100, MeanB: 100, Duration: time.Minute}) {
		app, err := workload.Attach(n, spec, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
	}
	return n, apps
}

func TestInjectorNames(t *testing.T) {
	injs := []Injector{
		EnableLogging{}, LinkLoss{}, PathLoss{}, CPUHog{}, AppCrash{},
		HostShutdown{}, FirewallBlock{}, BackgroundTraffic{},
		SwitchFailure{}, ControllerOverload{}, UnauthorizedAccess{},
	}
	seen := make(map[string]bool)
	for _, in := range injs {
		name := in.Name()
		if name == "" {
			t.Errorf("%T has empty name", in)
		}
		if seen[name] {
			t.Errorf("duplicate injector name %q", name)
		}
		seen[name] = true
	}
}

func TestLinkLossAppliesToLink(t *testing.T) {
	n, apps := labSetup(t)
	if err := (LinkLoss{A: "sw1", B: "sw2", Prob: 0.03}).Apply(n, apps); err != nil {
		t.Fatal(err)
	}
	l, ok := n.Topo.LinkBetween("sw1", "sw2")
	if !ok || l.LossProb != 0.03 {
		t.Errorf("link loss not applied: %+v", l)
	}
	if err := (LinkLoss{A: "sw1", B: "nope"}).Apply(n, apps); err == nil {
		t.Error("want error for missing link")
	}
}

func TestPathLossCoversEveryHop(t *testing.T) {
	n, apps := labSetup(t)
	if err := (PathLoss{From: "S1", To: "S6", Prob: 0.02}).Apply(n, apps); err != nil {
		t.Fatal(err)
	}
	hops, err := n.Topo.Path("S1", "S6")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(hops); i++ {
		l, ok := n.Topo.LinkBetween(hops[i-1].Node, hops[i].Node)
		if !ok || l.LossProb != 0.02 {
			t.Errorf("hop %s-%s loss = %v", hops[i-1].Node, hops[i].Node, l.LossProb)
		}
	}
	if err := (PathLoss{From: "S1", To: "nope"}).Apply(n, apps); err == nil {
		t.Error("want error for unroutable path")
	}
}

func TestHostShutdownMarksNodeDown(t *testing.T) {
	n, apps := labSetup(t)
	if err := (HostShutdown{Host: "S3"}).Apply(n, apps); err != nil {
		t.Fatal(err)
	}
	node, _ := n.Topo.Node("S3")
	if !node.Down {
		t.Error("host not marked down")
	}
	if err := (HostShutdown{Host: "nope"}).Apply(n, apps); err == nil {
		t.Error("want error for unknown host")
	}
}

func TestSwitchFailureKillsDataAndControlPlane(t *testing.T) {
	n, apps := labSetup(t)
	if err := (SwitchFailure{Switch: "sw2"}).Apply(n, apps); err != nil {
		t.Fatal(err)
	}
	node, _ := n.Topo.Node("sw2")
	if !node.Down {
		t.Error("switch node not down")
	}
	sw, ok := n.Switch("sw2")
	if !ok || !sw.Down {
		t.Error("simulated datapath not down")
	}
	if err := (SwitchFailure{Switch: "nope"}).Apply(n, apps); err == nil {
		t.Error("want error for unknown switch")
	}
}

func TestControllerOverloadSetsServiceTime(t *testing.T) {
	n, apps := labSetup(t)
	if err := (ControllerOverload{ServiceTime: 7 * time.Millisecond}).Apply(n, apps); err != nil {
		t.Fatal(err)
	}
	if got := n.Config().ControllerService; got != 7*time.Millisecond {
		t.Errorf("service time = %v", got)
	}
}

func TestBackgroundTrafficStartsFlowsAndAddsQueueing(t *testing.T) {
	n, apps := labSetup(t)
	before, _ := n.Topo.LinkBetween("sw1", "sw6")
	latBefore := before.Latency
	bt := BackgroundTraffic{From: "S21", To: "S6", Flows: 5, FlowBytes: 1 << 20, QueueDelay: 3 * time.Millisecond}
	if err := bt.Apply(n, apps); err != nil {
		t.Fatal(err)
	}
	after, _ := n.Topo.LinkBetween("sw1", "sw6")
	if after.Latency != latBefore+3*time.Millisecond {
		t.Errorf("queue delay not applied: %v -> %v", latBefore, after.Latency)
	}
	n.Eng.Run(30 * time.Second)
	found := 0
	for _, key := range n.Log().Flows() {
		if key.DstPort == 5001 {
			found++
		}
	}
	if found != 5 {
		t.Errorf("background flows observed = %d, want 5", found)
	}
}

func TestUnauthorizedAccessCreatesForeignFlows(t *testing.T) {
	n, apps := labSetup(t)
	ua := UnauthorizedAccess{Attacker: "S24", Victim: "S8", Port: 3306, Flows: 4}
	if err := ua.Apply(n, apps); err != nil {
		t.Fatal(err)
	}
	n.Eng.Run(10 * time.Second)
	attacker, _ := n.Topo.Node("S24")
	found := 0
	for _, key := range n.Log().Flows() {
		if key.Src == attacker.Addr && key.DstPort == 3306 {
			found++
		}
	}
	if found != 4 {
		t.Errorf("attack flows = %d, want 4", found)
	}
}

func TestOverheadInjectorsTargetApps(t *testing.T) {
	n, apps := labSetup(t)
	for _, inj := range []Injector{
		EnableLogging{Host: "S3"},
		CPUHog{Host: "S3"},
		AppCrash{Host: "S3"},
		FirewallBlock{Host: "S8", Port: workload.PortDB},
	} {
		if err := inj.Apply(n, apps); err != nil {
			t.Errorf("%s: %v", inj.Name(), err)
		}
	}
	// Run briefly to ensure nothing panics with all faults stacked.
	for _, app := range apps {
		app.Run(0, 5*time.Second)
	}
	n.Eng.Run(6 * time.Second)
	_ = flowlog.EventPacketIn
}

func TestSwitchFailureEmitsPortStatus(t *testing.T) {
	n, apps := labSetup(t)
	if err := (SwitchFailure{Switch: "sw2"}).Apply(n, apps); err != nil {
		t.Fatal(err)
	}
	n.Eng.Run(time.Second)
	ps := n.Log().ByType(flowlog.EventPortStatus).Events
	if len(ps) == 0 {
		t.Fatal("no PORT_STATUS after switch failure")
	}
	for _, e := range ps {
		if e.Switch == "sw2" {
			t.Error("the dead switch itself cannot report")
		}
		if e.InPort == 0 {
			t.Error("PORT_STATUS missing port number")
		}
	}
}
