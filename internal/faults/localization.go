package faults

// This file holds the localization faults and scenarios: silent fabric
// degradations the evidence-voting suspect ranker (diagnose.RankSuspects)
// is built to pinpoint. Unlike the hard failures of Table I, none of
// these emit PORT_STATUS or topology changes — the only symptom is byte
// inflation (retransmissions) on the flows crossing the faulty
// component, exactly the gray-failure regime 007 targets.

import (
	"fmt"
	"time"

	"flowdiff/internal/simnet"
	"flowdiff/internal/topology"
	"flowdiff/internal/workload"
)

// AggSwitchDrop emulates correlated drops at a shared switch: every
// link incident to the switch degrades at once (a failing linecard or
// overrun shared buffer), so all traffic through the switch inflates
// regardless of which port it uses.
type AggSwitchDrop struct {
	Switch topology.NodeID
	Prob   float64 // default 0.01
}

// Name implements Injector.
func (f AggSwitchDrop) Name() string { return "correlated drops at switch" }

// Apply implements Injector.
func (f AggSwitchDrop) Apply(n *simnet.Network, _ []*workload.App) error {
	p := f.Prob
	if p == 0 {
		p = 0.01
	}
	node, ok := n.Topo.Node(f.Switch)
	if !ok || node.Kind != topology.KindSwitch {
		return fmt.Errorf("faults: unknown switch %s", f.Switch)
	}
	links := n.Topo.LinksAt(f.Switch)
	if len(links) == 0 {
		return fmt.Errorf("faults: switch %s has no links", f.Switch)
	}
	for _, l := range links {
		l.LossProb = p
	}
	return nil
}

// IncastCollapse emulates congestion collapse on an aggregator's access
// link: synchronized many-to-one bursts overrun the last-hop buffer, so
// every flow toward (or from) the aggregator sees drops. Only the
// access link degrades — the rest of the fabric is healthy.
type IncastCollapse struct {
	Aggregator topology.NodeID
	Prob       float64 // default 0.01
}

// Name implements Injector.
func (f IncastCollapse) Name() string { return "incast collapse at aggregator" }

// Apply implements Injector.
func (f IncastCollapse) Apply(n *simnet.Network, _ []*workload.App) error {
	p := f.Prob
	if p == 0 {
		p = 0.01
	}
	node, ok := n.Topo.Node(f.Aggregator)
	if !ok || node.Kind != topology.KindHost {
		return fmt.Errorf("faults: unknown aggregator host %s", f.Aggregator)
	}
	links := n.Topo.LinksAt(f.Aggregator)
	if len(links) != 1 {
		return fmt.Errorf("faults: aggregator %s has %d links, want exactly 1 access link", f.Aggregator, len(links))
	}
	links[0].LossProb = p
	return nil
}

// LocalizationScenario pairs a fabric fault with the workload that
// exercises it and the ground-truth component id the suspect ranker
// should name first.
type LocalizationScenario struct {
	Name string
	// Truth is the faulty component's id: a switch node id or a
	// topology.LinkID.
	Truth string
	// Faults are injected at the start of the problem interval.
	Faults []Injector
	// Specs are multi-tier chain workloads running in both intervals.
	Specs []workload.Spec
	// Incast are synchronized burst workloads running in both intervals.
	Incast []workload.IncastSpec
}

// localizationLoss is the loss probability used by the scenarios. The
// chain workloads send constant-size requests, so the baseline byte
// variance is zero and the FS differ falls back to its relative slack
// floor (a few percent of the mean); 12% loss inflates bytes well past
// it on every crossing flow without drowning the simulation in
// retransmissions.
const localizationLoss = 0.12

// dualChains builds two three-tier chains mirrored around the core so
// the affected path sets of the scenarios overlap only at the faulty
// component:
//
//	A: S21 (sw6) -> web S1,S2 (sw2) -> app S6,S7 (sw3) -> db S11 (sw4)
//	B: S22 (sw6) -> web S16,S17 (sw5) -> app S12,S13 (sw4) -> db S8 (sw3)
//
// Chain A descends through sw3 into sw4; chain B descends through sw5
// into sw4 and back out to sw3 — so a fault on one core link, at the
// core switch, or on one access link each produce a distinct impacted
// flow set.
func dualChains() []workload.Spec {
	ia := 200 * time.Millisecond
	a := workload.Spec{
		Name:         "chain-a",
		Client:       "S21",
		Interarrival: ia,
		Tiers: []workload.Tier{
			{Hosts: []topology.NodeID{"S1", "S2"}, Port: workload.PortWeb, Processing: workload.WebProcessing},
			{Hosts: []topology.NodeID{"S6", "S7"}, Port: workload.PortApp, Processing: workload.AppProcessing},
			{Hosts: []topology.NodeID{"S11"}, Port: workload.PortDB, Processing: workload.DBProcessing},
		},
	}
	b := workload.Spec{
		Name:         "chain-b",
		Client:       "S22",
		Interarrival: ia,
		Tiers: []workload.Tier{
			{Hosts: []topology.NodeID{"S16", "S17"}, Port: workload.PortWeb, Processing: workload.WebProcessing},
			{Hosts: []topology.NodeID{"S12", "S13"}, Port: workload.PortApp, Processing: workload.AppProcessing},
			{Hosts: []topology.NodeID{"S8"}, Port: workload.PortDB, Processing: workload.DBProcessing},
		},
	}
	return []workload.Spec{a, b}
}

// LocalizationScenarios returns the three evaluation scenarios of the
// suspect ranker, in fixed order:
//
//  1. equal-cost-link-drop — silent partial drop on the core link
//     sw1-sw4, one among the six equal-cost core links.
//  2. agg-switch-drop — correlated drops on every port of the shared
//     core switch sw1.
//  3. incast-collapse — synchronized many-to-one bursts overrun
//     aggregator S12's access link.
//
// The count-based RankComponents baseline sees only the endpoints of
// the changed flows, which never include a switch or link — evidence
// voting is what turns those endpoint pairs into a fabric location.
func LocalizationScenarios() []LocalizationScenario {
	chains := dualChains()
	return []LocalizationScenario{
		{
			Name:   "equal-cost-link-drop",
			Truth:  topology.LinkID("sw1", "sw4"),
			Faults: []Injector{LinkLoss{A: "sw1", B: "sw4", Prob: localizationLoss}},
			Specs:  chains,
		},
		{
			Name:   "agg-switch-drop",
			Truth:  "sw1",
			Faults: []Injector{AggSwitchDrop{Switch: "sw1", Prob: localizationLoss}},
			Specs:  chains,
		},
		{
			Name:   "incast-collapse",
			Truth:  topology.LinkID("S12", "sw4"),
			Faults: []Injector{IncastCollapse{Aggregator: "S12", Prob: localizationLoss}},
			Specs:  chains,
			Incast: []workload.IncastSpec{{
				// Senders mix rack-local hosts (S11, S14: short paths
				// that pin the evidence onto the access link rather
				// than the shared core link) with remote ones.
				Name:       "shuffle",
				Senders:    []topology.NodeID{"S1", "S6", "S11", "S14", "S16", "S21"},
				Aggregator: "S12",
				Period:     500 * time.Millisecond,
			}},
		},
	}
}
