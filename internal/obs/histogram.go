package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"flowdiff/internal/stats"
)

// histKeep bounds how many raw samples a Histogram retains for quantile
// estimation. Span recording is stage-granular (per group build, per
// window flush, per For call), so a few hundred samples comfortably
// cover a run; past the cap the reservoir degrades to "the most recent
// histKeep observations", which is the window operators care about on a
// long-lived monitor.
const histKeep = 512

// Histogram is a streaming duration histogram: atomic count/sum/min/max
// plus a bounded ring of recent samples from which snapshot quantiles
// (p50/p90/p99, via stats.Percentile) are computed. Observation counts
// are deterministic for deterministic inputs; the measured durations
// are wall-clock readings and are not.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64 // nanoseconds
	min   atomic.Int64 // nanoseconds; valid only when count > 0
	max   atomic.Int64 // nanoseconds

	mu   sync.Mutex
	ring []time.Duration // up to histKeep most recent samples
	next int             // ring write cursor once len(ring) == histKeep
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(1<<63 - 1))
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	n := int64(d)
	h.count.Add(1)
	h.sum.Add(n)
	for {
		m := h.min.Load()
		if n >= m || h.min.CompareAndSwap(m, n) {
			break
		}
	}
	for {
		m := h.max.Load()
		if n <= m || h.max.CompareAndSwap(m, n) {
			break
		}
	}
	h.mu.Lock()
	if len(h.ring) < histKeep {
		h.ring = append(h.ring, d)
	} else {
		h.ring[h.next] = d
		h.next = (h.next + 1) % histKeep
	}
	h.mu.Unlock()
}

// Count returns how many durations were observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of every observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Min returns the smallest observation (0 before any).
func (h *Histogram) Min() time.Duration {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest observation (0 before any).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Mean returns the average observation (0 before any).
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the p-quantile (0 <= p <= 1) over the retained
// sample reservoir. Returns 0 before any observation.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	xs := make([]float64, len(h.ring))
	for i, d := range h.ring {
		xs[i] = float64(d)
	}
	h.mu.Unlock()
	q, err := stats.Percentile(xs, p)
	if err != nil {
		return 0
	}
	return time.Duration(q)
}

// reset is called under the registry lock by Registry.Reset.
func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(int64(1<<63 - 1))
	h.max.Store(0)
	h.mu.Lock()
	h.ring = h.ring[:0]
	h.next = 0
	h.mu.Unlock()
}
