package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Snapshot is a point-in-time copy of every metric in a registry, in
// deterministic (sorted-name) order, ready for JSON encoding. It is the
// payload of the /metrics endpoint and of Registry.String (which makes
// a Registry an expvar.Var, publishable via expvar.Publish).
type Snapshot struct {
	// Counters maps counter name to its value.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps gauge name to its current level and high-water mark.
	Gauges map[string]GaugeSnapshot `json:"gauges"`
	// Histograms maps histogram name (spans appear under "span.<stage>")
	// to its duration summary.
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// GaugeSnapshot is one gauge's exported state.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistSnapshot is one duration histogram's exported state. Durations
// are nanoseconds (expvar-style raw int64s); Human carries the rounded
// mean for eyeballing curl output.
type HistSnapshot struct {
	Count int64  `json:"count"`
	SumNS int64  `json:"sum_ns"`
	MinNS int64  `json:"min_ns"`
	MaxNS int64  `json:"max_ns"`
	P50NS int64  `json:"p50_ns"`
	P90NS int64  `json:"p90_ns"`
	P99NS int64  `json:"p99_ns"`
	Human string `json:"mean"`
}

// Snapshot copies the registry's current state. A nil registry yields
// an empty (but non-nil-map) snapshot so callers can encode it blindly.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]GaugeSnapshot),
		Histograms: make(map[string]HistSnapshot),
	}
	if r == nil {
		return snap
	}
	for _, name := range sortedNames(&r.mu, r.counters) {
		snap.Counters[name] = r.Counter(name).Value()
	}
	for _, name := range sortedNames(&r.mu, r.gauges) {
		g := r.Gauge(name)
		snap.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for _, name := range sortedNames(&r.mu, r.hists) {
		h := r.Histogram(name)
		snap.Histograms[name] = HistSnapshot{
			Count: h.Count(),
			SumNS: int64(h.Sum()),
			MinNS: int64(h.Min()),
			MaxNS: int64(h.Max()),
			P50NS: int64(h.Quantile(0.50)),
			P90NS: int64(h.Quantile(0.90)),
			P99NS: int64(h.Quantile(0.99)),
			Human: h.Mean().Round(time.Microsecond).String(),
		}
	}
	return snap
}

// String renders the snapshot as JSON, making *Registry an expvar.Var:
//
//	expvar.Publish("flowdiff", obs.Default())
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		// A Snapshot is maps of plain structs; Marshal cannot fail on it.
		return "{}"
	}
	return string(b)
}

// WriteSummary renders the snapshot as the human-readable end-of-run
// report behind the -stats flag: histograms (spans first), then
// counters, then gauges, all in sorted-name order.
func WriteSummary(w io.Writer, snap Snapshot) error {
	names := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		if _, err := fmt.Fprintf(w, "timings:\n"); err != nil {
			return err
		}
		for _, name := range names {
			h := snap.Histograms[name]
			if _, err := fmt.Fprintf(w, "  %-32s n=%-6d total=%-12v mean=%-10s p99=%v\n",
				name, h.Count, time.Duration(h.SumNS).Round(time.Microsecond), h.Human,
				time.Duration(h.P99NS).Round(time.Microsecond)); err != nil {
				return err
			}
		}
	}
	names = names[:0]
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		if _, err := fmt.Fprintf(w, "counters:\n"); err != nil {
			return err
		}
		for _, name := range names {
			if _, err := fmt.Fprintf(w, "  %-32s %d\n", name, snap.Counters[name]); err != nil {
				return err
			}
		}
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		if _, err := fmt.Fprintf(w, "gauges:\n"); err != nil {
			return err
		}
		for _, name := range names {
			g := snap.Gauges[name]
			if _, err := fmt.Fprintf(w, "  %-32s %d (max %d)\n", name, g.Value, g.Max); err != nil {
				return err
			}
		}
	}
	return nil
}
