// Package obs is FlowDiff's self-instrumentation layer: atomic
// counters, gauges, streaming duration histograms, and span timers,
// collected in a Registry and exported as an expvar-compatible JSON
// snapshot or over HTTP (see http.go).
//
// The package is stdlib-only and built around three contracts:
//
//   - Observability never changes behavior. Metrics are write-only from
//     the pipeline's point of view; no instrumented stage ever reads a
//     metric back to make a decision, so diagnosis reports are
//     byte-identical with instrumentation on or off (pinned by
//     TestObsDoesNotChangeReports in the root package).
//
//   - Counters are deterministic. Everything recorded on a Counter is a
//     pure function of the input log (occurrences extracted, groups
//     discovered, windows flushed, changes emitted), so counter values
//     are identical at any Options.Parallelism. Timings (histograms)
//     and pool occupancy (gauges) are scheduling-dependent by nature
//     and carry no such guarantee. The one exception is the "parallel."
//     namespace: the pool's own dispatch counters depend on which fan
//     -out path ran and are excluded from the determinism contract.
//
//   - Time stays injectable. Registry reads wall time only through its
//     Clock, so instrumented packages never call time.Now directly —
//     the wallclock analyzer enforces this mechanically in the
//     virtual-time packages — and tests can drive spans with a fake
//     clock.
//
// A package-level Default registry serves the always-on production
// path; tests inject a fresh Registry (or nil, to disable collection
// entirely) through a context.Context via WithRegistry. Every method is
// nil-receiver safe, so a disabled registry costs a few nil checks and
// nothing else.
package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the wall-time source a Registry stamps spans with. The
// default is time.Now; tests inject a deterministic clock via SetClock.
type Clock func() time.Time

// Registry is a concurrency-safe collection of named metrics. The zero
// value is not usable; create registries with New. A nil *Registry is a
// valid "collection disabled" instance: every method no-ops.
type Registry struct {
	mu       sync.RWMutex
	clock    Clock
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New creates an empty registry reading time.Now.
func New() *Registry {
	return &Registry{
		clock:    time.Now,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = New()

// Default returns the package-level registry the always-on
// instrumentation records into when no registry travels in the context.
func Default() *Registry { return defaultRegistry }

// SetClock replaces the registry's time source (nil restores time.Now).
func (r *Registry) SetClock(c Clock) {
	if r == nil {
		return
	}
	if c == nil {
		c = time.Now
	}
	r.mu.Lock()
	r.clock = c
	r.mu.Unlock()
}

// Now reads the registry's clock. A nil registry returns the zero time,
// which is fine: every consumer of the value is itself nil-safe.
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	r.mu.RLock()
	c := r.clock
	r.mu.RUnlock()
	return c()
}

// Since returns the elapsed time between t and the registry's clock.
func (r *Registry) Since(t time.Time) time.Duration {
	if r == nil {
		return 0
	}
	return r.Now().Sub(t)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every metric (the names stay registered). Tests use it to
// scope assertions on the Default registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.cur.Store(0)
		g.max.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// names returns the sorted metric names of one kind; callers hold no
// lock. Sorting keeps every snapshot and summary deterministic (the
// mapiter analyzer forbids leaking map order into output).
func sortedNames[M any](mu *sync.RWMutex, m map[string]M) []string {
	mu.RLock()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	mu.RUnlock()
	sort.Strings(names)
	return names
}

// Counter is a monotonically increasing atomic counter. Record only
// deterministic quantities on counters (see the package comment).
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level with a high-water mark: Add tracks
// the current value and remembers the maximum it ever reached (pool
// occupancy uses this — the snapshot's ".max" is the widest the pool
// ever ran).
type Gauge struct {
	cur atomic.Int64
	max atomic.Int64
}

// Add moves the gauge by delta (negative to decrement) and updates the
// high-water mark.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	v := g.cur.Add(delta)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Set forces the gauge to v and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.cur.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.cur.Load()
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// ctxKey carries a *Registry in a context.Context.
type ctxKey struct{}

// WithRegistry returns a context carrying r. Passing nil explicitly
// disables collection for everything downstream (distinct from "no
// registry in the context", which falls back to Default).
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// From extracts the registry from ctx: the one placed by WithRegistry
// (which may deliberately be nil = disabled), or Default when the
// context carries none.
func From(ctx context.Context) *Registry {
	if ctx == nil {
		return Default()
	}
	if v, ok := ctx.Value(ctxKey{}).(*Registry); ok {
		return v
	}
	return Default()
}
