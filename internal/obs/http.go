package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry's JSON snapshot (the /metrics payload).
// A nil registry serves an empty snapshot.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		// String() is the expvar rendering; reusing it keeps the two
		// export paths byte-identical.
		if _, err := w.Write([]byte(r.String() + "\n")); err != nil {
			// The client hung up mid-write; nothing to clean up.
			return
		}
	})
}

// NewMux bundles the full diagnostics surface:
//
//	/metrics          JSON snapshot of r
//	/debug/vars      expvar (stdlib memstats + anything Publish'd)
//	/debug/pprof/...  net/http/pprof profiles
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the diagnostics endpoint on addr in a background
// goroutine and returns the bound address (useful with ":0") and a stop
// function. The flowdiff and dcsim binaries hang this off
// -metrics-addr.
func Serve(addr string, r *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewMux(r)}
	//lint:ignore spawnjoin deliberately detached: the server goroutine exits when srv.Close (returned to the caller as the stop function) shuts the listener, and Serve's contract is fire-and-forget
	go func() {
		// ErrServerClosed is the normal shutdown path; any other error
		// means the listener died, which the owner observes by the
		// endpoint disappearing — there is no caller left to return it to.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), srv.Close, nil
}
