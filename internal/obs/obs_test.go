package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := New()
	c := r.Counter("events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("events") != c {
		t.Error("Counter is not idempotent per name")
	}

	g := r.Gauge("active")
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if got := g.Value(); got != 1 {
		t.Errorf("gauge value = %d, want 1", got)
	}
	if got := g.Max(); got != 5 {
		t.Errorf("gauge max = %d, want 5", got)
	}

	h := r.Histogram("flush")
	for _, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		h.Observe(d)
	}
	if got := h.Count(); got != 3 {
		t.Errorf("hist count = %d, want 3", got)
	}
	if got := h.Sum(); got != 60*time.Millisecond {
		t.Errorf("hist sum = %v, want 60ms", got)
	}
	if got := h.Min(); got != 10*time.Millisecond {
		t.Errorf("hist min = %v, want 10ms", got)
	}
	if got := h.Max(); got != 30*time.Millisecond {
		t.Errorf("hist max = %v, want 30ms", got)
	}
	if got := h.Mean(); got != 20*time.Millisecond {
		t.Errorf("hist mean = %v, want 20ms", got)
	}
	if got := h.Quantile(0.5); got != 20*time.Millisecond {
		t.Errorf("hist p50 = %v, want 20ms", got)
	}
}

// TestNilRegistryIsDisabled pins the "obs off" contract: a nil registry
// (and everything it hands out) is a total no-op, so WithRegistry(ctx,
// nil) disables collection without a single branch in instrumented code.
func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Add(2)
	r.Histogram("z").Observe(time.Second)
	r.Span("stage").End()
	r.SetClock(func() time.Time { return time.Time{} })
	r.Reset()
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter = %d, want 0", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("nil snapshot not empty: %+v", snap)
	}

	ctx := WithRegistry(context.Background(), nil)
	if got := From(ctx); got != nil {
		t.Errorf("From(WithRegistry(nil)) = %v, want nil", got)
	}
	Span(ctx, "stage").End() // must not panic or touch Default
}

func TestFromDefaultsAndInjection(t *testing.T) {
	if got := From(context.Background()); got != Default() {
		t.Error("From(background) should be the Default registry")
	}
	r := New()
	if got := From(WithRegistry(context.Background(), r)); got != r {
		t.Error("From should return the injected registry")
	}
}

// TestSpanUsesInjectedClock pins the Clock seam: spans must read time
// only through the registry clock, so a fake clock fully determines the
// recorded duration.
func TestSpanUsesInjectedClock(t *testing.T) {
	r := New()
	now := time.Unix(0, 0)
	r.SetClock(func() time.Time { return now })
	sp := r.Span("stage")
	now = now.Add(250 * time.Millisecond)
	sp.End()
	h := r.Histogram(SpanPrefix + "stage")
	if got := h.Max(); got != 250*time.Millisecond {
		t.Errorf("span recorded %v, want 250ms", got)
	}
	if got := h.Count(); got != 1 {
		t.Errorf("span count = %d, want 1", got)
	}
}

func TestSnapshotAndExpvarString(t *testing.T) {
	r := New()
	r.Counter("a").Add(7)
	r.Gauge("b").Add(2)
	r.Histogram("c").Observe(time.Millisecond)

	var decoded Snapshot
	if err := json.Unmarshal([]byte(r.String()), &decoded); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if decoded.Counters["a"] != 7 {
		t.Errorf("decoded counter a = %d, want 7", decoded.Counters["a"])
	}
	if decoded.Gauges["b"].Max != 2 {
		t.Errorf("decoded gauge b max = %d, want 2", decoded.Gauges["b"].Max)
	}
	if decoded.Histograms["c"].Count != 1 {
		t.Errorf("decoded hist c count = %d, want 1", decoded.Histograms["c"].Count)
	}

	r.Reset()
	snap := r.Snapshot()
	if snap.Counters["a"] != 0 || snap.Histograms["c"].Count != 0 {
		t.Errorf("Reset did not zero metrics: %+v", snap)
	}
}

func TestWriteSummary(t *testing.T) {
	r := New()
	r.Counter("monitor.windows").Add(3)
	r.Gauge("parallel.active").Add(2)
	r.Histogram("span.extract").Observe(5 * time.Millisecond)
	var sb strings.Builder
	if err := WriteSummary(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"span.extract", "monitor.windows", "parallel.active", "timings:", "counters:", "gauges:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := New()
	r.Counter("hits").Inc()
	srv := httptest.NewServer(NewMux(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, body)
	}
	if snap.Counters["hits"] != 1 {
		t.Errorf("/metrics hits = %d, want 1", snap.Counters["hits"])
	}

	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
	if code, _ := get("/debug/vars"); code != http.StatusOK {
		t.Errorf("/debug/vars status = %d", code)
	}
}

func TestServeBindsAndStops(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if err := stop(); err != nil {
		t.Errorf("stop: %v", err)
	}
}

// TestConcurrentMetricOps hammers one registry from many goroutines so
// -race proves the atomics and locking are sound, and the totals prove
// no update is lost.
func TestConcurrentMetricOps(t *testing.T) {
	r := New()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Gauge("g").Add(-1)
				r.Histogram("h").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("h").Count(); got != workers*perWorker {
		t.Errorf("hist count = %d, want %d", got, workers*perWorker)
	}
}
