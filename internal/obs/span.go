package obs

import (
	"context"
	"time"
)

// SpanTimer measures one execution of a named stage. End records the
// elapsed time into the registry histogram "span.<name>" — so the
// histogram's Count is "how many times the stage ran" (deterministic)
// and its Sum/quantiles are the stage's latency profile (wall clock).
// A SpanTimer is single-use and not safe for concurrent End calls; for
// concurrent executions of the same stage, start one span per
// execution (the histogram underneath is concurrency-safe).
type SpanTimer struct {
	hist  *Histogram
	reg   *Registry
	start time.Time
}

// SpanPrefix namespaces every span histogram in a registry snapshot.
const SpanPrefix = "span."

// Span starts a stage timer against the context's registry (Default
// when the context carries none, disabled when it carries nil). The
// idiom is:
//
//	defer obs.Span(ctx, "signature.extract").End()
func Span(ctx context.Context, name string) *SpanTimer {
	//lint:ignore obsspan Span is the registry entry point itself; the name is the caller's constant, and callers are where staticness is enforced
	return From(ctx).Span(name)
}

// Span starts a stage timer recording into this registry.
func (r *Registry) Span(name string) *SpanTimer {
	if r == nil {
		return nil
	}
	return &SpanTimer{hist: r.Histogram(SpanPrefix + name), reg: r, start: r.Now()}
}

// End stops the span and records its duration. Safe on a nil span.
func (s *SpanTimer) End() {
	if s == nil {
		return
	}
	s.hist.Observe(s.reg.Since(s.start))
}
