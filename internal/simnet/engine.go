// Package simnet is a discrete-event simulator of a flow-based data
// center. It combines the topology, switch, and controller substrates
// into a single virtual-time event loop: hosts start flows, OpenFlow
// switches miss and consult the controller (per-hop reactive setup as in
// Figure 3 of the paper), entries expire into FlowRemoved messages, and
// every control message is captured into a flowlog.Log with controller
// timestamps — the input to FlowDiff's modeling phase.
package simnet

import (
	"container/heap"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event executor over a virtual
// clock. The zero value is not usable; create one with NewEngine.
type Engine struct {
	now time.Duration
	pq  eventHeap
	seq uint64
}

// NewEngine creates an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn at the given virtual time. Times in the past execute
// at the current time (never before: the clock is monotonic).
func (e *Engine) Schedule(at time.Duration, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.pq, &event{at: at, seq: e.seq, fn: fn})
}

// After runs fn d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) {
	e.Schedule(e.now+d, fn)
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

// Run executes events in timestamp order until the queue is empty or the
// next event is later than until. The clock advances to each executed
// event's time; it finishes at until if the horizon was reached.
func (e *Engine) Run(until time.Duration) {
	for len(e.pq) > 0 {
		next := e.pq[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.pq)
		e.now = next.at
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll executes every queued event (including events scheduled by other
// events) until the queue drains.
func (e *Engine) RunAll() {
	for len(e.pq) > 0 {
		next := heap.Pop(&e.pq).(*event)
		e.now = next.at
		next.fn()
	}
}
