package simnet

import (
	"testing"
	"time"

	"flowdiff/internal/flowlog"
	"flowdiff/internal/topology"
)

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j%97)*time.Millisecond, func() {})
		}
		e.RunAll()
	}
}

// BenchmarkSimulateLabSecond measures simulating one virtual second of a
// busy lab fabric (new flow every 10 ms).
func BenchmarkSimulateLabSecond(b *testing.B) {
	topo, err := topology.Lab()
	if err != nil {
		b.Fatal(err)
	}
	hosts := topo.Hosts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n, err := NewNetwork(topo, Config{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			src := hosts[j%len(hosts)]
			dst := hosts[(j+13)%len(hosts)]
			if src.ID == dst.ID {
				continue
			}
			key := flowlog.FlowKey{Proto: 6, Src: src.Addr, Dst: dst.Addr,
				SrcPort: uint16(3000 + j), DstPort: 80}
			n.StartFlow(time.Duration(j)*10*time.Millisecond, Flow{Key: key, Bytes: 4096})
		}
		b.StartTimer()
		n.Eng.Run(time.Second)
	}
}
